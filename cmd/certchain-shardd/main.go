// Command certchain-shardd is the distributed topology's worker: a daemon
// that ingests assigned Zeek log partitions through the same loaders and
// sharded pipeline certchain-analyze uses, and serves the resulting partial
// analysis state as versioned canonical-JSON snapshots over HTTP.
//
//	certchain-shardd -addr 127.0.0.1:9001 -seed 1 -scale 0.01
//
// The seed/scale pair must match the coordinator's: partial state references
// analyses both sides recompute identically. Surface (see internal/dist):
//
//	POST /assign                  sealed partition assignment
//	GET  /status                  sealed status — the coordinator's heartbeat
//	GET  /partial?partition=ID    sealed partial state (404 until done)
//	GET  /healthz
//	GET  /metrics
//
// -throttle holds each observation for the given duration — the chaos knob
// the kill/requeue suite uses to keep a partition open mid-ingest.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"certchains/internal/analysis"
	"certchains/internal/campus"
	"certchains/internal/dist"
	"certchains/internal/lint"
	"certchains/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "certchain-shardd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", "127.0.0.1:9001", "listen address")
		name       = flag.String("name", "", "worker name in status responses (default: the listen address)")
		seed       = flag.Int64("seed", 1, "scenario seed for the enrichment stores; must match the coordinator")
		scale      = flag.Float64("scale", 0.01, "fraction of paper-scale volume; must match the coordinator")
		format     = flag.String("format", "tsv", "partition log format: tsv or json")
		lintPro    = flag.String("lint", "", "lint every chain; value is the check profile (paper, strict, all); must match the coordinator")
		goroutines = flag.Int("goroutines", 0, "in-process pool width per partition (0 = GOMAXPROCS); any value produces identical state")
		batch      = flag.Int("batch", 0, "streaming handoff batch size (0 = default); any value produces identical state")
		throttle   = flag.Duration("throttle", 0, "sleep this long before each observation (chaos/testing knob)")
		logFormat  = flag.String("log-format", "text", "log format: text or json")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	f := analysis.FormatTSV
	switch *format {
	case "tsv":
	case "json":
		f = analysis.FormatJSON
	default:
		return fmt.Errorf("unknown format %q (tsv or json)", *format)
	}

	cfg := campus.DefaultConfig()
	cfg.Seed = *seed
	cfg.Scale = *scale
	scenario, err := campus.Generate(cfg)
	if err != nil {
		return err
	}
	pipeline := analysis.FromScenario(scenario)
	pipeline.Batch = *batch
	if *lintPro != "" {
		pipeline.Linter = lint.New(scenario.Classifier, lint.Config{
			Now:     scenario.End(),
			Profile: *lintPro,
		})
	}

	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg, "certchain-shardd")
	workerName := *name
	if workerName == "" {
		workerName = *addr
	}
	worker := dist.NewWorker(dist.WorkerConfig{
		Name:       workerName,
		Pipeline:   pipeline,
		Format:     f,
		Goroutines: *goroutines,
		Registry:   reg,
		Throttle:   *throttle,
		AccessLog:  logger,
		Logf:       func(format string, args ...any) { logger.Info(fmt.Sprintf(format, args...)) },
	})
	defer worker.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: worker.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	logger.Info("shard worker up", "name", workerName, "addr", fmt.Sprintf("http://%s", ln.Addr()))

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
