// Command pipeline-bench measures the sharded analysis pipeline stage by
// stage, using the pipeline's own obs spans as the instrument, and writes a
// machine-readable baseline (BENCH_pipeline.json). Unlike `go test -bench`,
// which times whole runs, this reports where inside a run the time goes —
// load-free scenario analysis split into observe / observe-shard /
// observe-handoff / merge / finalize — at worker widths 1 and GOMAXPROCS,
// so a perf regression names its stage. A warmed sequential Accumulator-API
// pass additionally charges each stage its steady-state heap allocations
// (allocs_per_op / alloc_bytes_per_op), so an allocation regression names
// its stage too. cmd/bench-ratchet compares a fresh run of this harness
// against the committed baseline in CI.
//
//	pipeline-bench -scale 0.002 -iters 3 -out BENCH_pipeline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"certchains/internal/pipebench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pipeline-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed  = flag.Int64("seed", 1, "scenario seed")
		scale = flag.Float64("scale", 0.002, "scenario scale")
		iters = flag.Int("iters", 3, "iterations per width; best iteration is reported")
		out   = flag.String("out", "BENCH_pipeline.json", "output path")
	)
	flag.Parse()

	file, err := pipebench.Run(*seed, *scale, *iters)
	if err != nil {
		return err
	}
	for _, wr := range file.Runs {
		fmt.Printf("workers=%d  total %d ns/op  %.0f records/sec\n", wr.Workers, wr.TotalNSOp, wr.RecordsPerSec)
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}
