// Command pipeline-bench measures the sharded analysis pipeline stage by
// stage, using the pipeline's own obs spans as the instrument, and writes a
// machine-readable baseline (BENCH_pipeline.json). Unlike `go test -bench`,
// which times whole runs, this reports where inside a run the time goes —
// load-free scenario analysis split into observe / merge / finalize — at
// worker widths 1 and GOMAXPROCS, so a perf regression names its stage. A
// sequential Accumulator-API pass additionally charges each stage its heap
// allocations (allocs_per_op / alloc_bytes_per_op), so an allocation
// regression names its stage too.
//
//	pipeline-bench -scale 0.002 -iters 3 -out BENCH_pipeline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"certchains/internal/analysis"
	"certchains/internal/campus"
	"certchains/internal/obs"
)

type stageResult struct {
	Stage string `json:"stage"`
	// NSOp is the stage's best-iteration wall time for one full pipeline run.
	NSOp int64 `json:"ns_op"`
	// RecordsPerSec is the stage's input throughput in that iteration; 0 for
	// stages that reduce state rather than consume records (merge, finalize).
	RecordsPerSec float64 `json:"records_per_sec"`
	Records       int64   `json:"records"`
	// AllocsPerOp / AllocBytesPerOp charge the stage its heap allocations for
	// one full pipeline run, measured by a separate single-threaded
	// Accumulator-API pass (GC-fenced runtime.MemStats deltas) — concurrent
	// widths would smear allocations across stages. Stages the sequential
	// pass has no counterpart for (observe-shard) report zero.
	AllocsPerOp     int64 `json:"allocs_per_op"`
	AllocBytesPerOp int64 `json:"alloc_bytes_per_op"`
}

type widthResult struct {
	Workers       int           `json:"workers"`
	TotalNSOp     int64         `json:"total_ns_op"`
	RecordsPerSec float64       `json:"records_per_sec"`
	Stages        []stageResult `json:"stages"`
}

type benchFile struct {
	Tool         string        `json:"tool"`
	Seed         int64         `json:"seed"`
	Scale        float64       `json:"scale"`
	Iters        int           `json:"iters"`
	GOMAXPROCS   int           `json:"gomaxprocs"`
	Observations int           `json:"observations"`
	Build        obs.BuildInfo `json:"build"`
	Runs         []widthResult `json:"runs"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pipeline-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed  = flag.Int64("seed", 1, "scenario seed")
		scale = flag.Float64("scale", 0.002, "scenario scale")
		iters = flag.Int("iters", 3, "iterations per width; best iteration is reported")
		out   = flag.String("out", "BENCH_pipeline.json", "output path")
	)
	flag.Parse()

	cfg := campus.DefaultConfig()
	cfg.Seed = *seed
	cfg.Scale = *scale
	scenario, err := campus.Generate(cfg)
	if err != nil {
		return err
	}

	widths := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		widths = append(widths, n)
	}

	file := benchFile{
		Tool:         "pipeline-bench",
		Seed:         *seed,
		Scale:        *scale,
		Iters:        *iters,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Observations: len(scenario.Observations),
		Build:        obs.Build(),
	}
	allocs := measureAllocs(scenario)
	for _, w := range widths {
		wr, err := benchWidth(scenario, w, *iters)
		if err != nil {
			return err
		}
		for i := range wr.Stages {
			if st, ok := allocs[wr.Stages[i].Stage]; ok {
				wr.Stages[i].AllocsPerOp = st.allocs
				wr.Stages[i].AllocBytesPerOp = st.bytes
			}
		}
		file.Runs = append(file.Runs, wr)
		fmt.Printf("workers=%d  total %d ns/op  %.0f records/sec\n", w, wr.TotalNSOp, wr.RecordsPerSec)
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

type allocStat struct{ allocs, bytes int64 }

// measureAllocs runs the sequential Accumulator API once — Observe over each
// half, Merge of the halves (seq-rebased like the real merge path), Finalize —
// and charges each phase its GC-fenced runtime.MemStats delta. The unit is
// allocations per full stage execution, the same "op" ns_op uses. Allocation
// counts are deterministic under a single goroutine, so one pass suffices;
// wall time stays with the traced iterations.
func measureAllocs(scenario *campus.Scenario) map[string]allocStat {
	p := analysis.FromScenario(scenario)
	stats := make(map[string]allocStat)
	var m0, m1 runtime.MemStats
	snap := func() {
		runtime.GC()
		runtime.ReadMemStats(&m0)
	}
	charge := func(stage string) {
		runtime.ReadMemStats(&m1)
		stats[stage] = allocStat{
			allocs: int64(m1.Mallocs - m0.Mallocs),
			bytes:  int64(m1.TotalAlloc - m0.TotalAlloc),
		}
	}

	a, b := p.NewAccumulator(), p.NewAccumulator()
	half := len(scenario.Observations) / 2
	snap()
	for _, o := range scenario.Observations[:half] {
		a.Observe(o)
	}
	for _, o := range scenario.Observations[half:] {
		b.Observe(o)
	}
	charge("observe")

	snap()
	b.OffsetSeq(a.Observations())
	a.Merge(b)
	charge("merge")

	snap()
	a.Finalize()
	charge("finalize")
	return stats
}

// benchWidth runs the pipeline iters times at one width and keeps the
// iteration with the smallest end-to-end wall time — the least-noise sample,
// as `go test -bench` effectively reports.
func benchWidth(scenario *campus.Scenario, workers, iters int) (widthResult, error) {
	best := widthResult{Workers: workers}
	for i := 0; i < iters; i++ {
		tracer := obs.NewTracer()
		p := analysis.FromScenario(scenario)
		p.Tracer = tracer
		r := p.RunParallel(scenario.Observations, workers)
		if r == nil {
			return best, fmt.Errorf("pipeline returned no report")
		}
		total := tracer.WallNS()
		if total <= 0 {
			return best, fmt.Errorf("tracer recorded no wall time")
		}
		if best.TotalNSOp != 0 && total >= best.TotalNSOp {
			continue
		}
		best.TotalNSOp = total
		best.RecordsPerSec = float64(len(scenario.Observations)) / (float64(total) / 1e9)
		best.Stages = best.Stages[:0]
		for _, st := range tracer.Stages() {
			sr := stageResult{Stage: st.Stage, NSOp: st.WallNS, Records: st.Records}
			if st.Records > 0 && st.WallNS > 0 {
				sr.RecordsPerSec = float64(st.Records) / (float64(st.WallNS) / 1e9)
			}
			best.Stages = append(best.Stages, sr)
		}
	}
	return best, nil
}
