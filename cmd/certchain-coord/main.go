// Command certchain-coord drives the distributed analysis topology: it
// discovers Zeek log partitions, assigns them to certchain-shardd workers
// under a lease/heartbeat protocol, pulls each worker's partial state back
// as versioned canonical-JSON snapshots, and merges them into the same
// report a single process would produce — byte for byte.
//
//	certchain-coord -parts data/parts -gen 3 -local            # reference run
//	certchain-coord -parts data/parts \
//	    -workers http://127.0.0.1:9001,http://127.0.0.1:9002   # distributed
//
// -local runs every partition in-process through the identical merge path;
// the two modes emit byte-identical reports and manifest deterministic
// subsets, which `make dist-smoke` diffs. -gen N first materializes the
// seeded scenario as N partition file pairs in -parts.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"certchains/internal/analysis"
	"certchains/internal/campus"
	"certchains/internal/dist"
	"certchains/internal/lint"
	"certchains/internal/obs"
	"certchains/internal/resilience"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "certchain-coord:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		partsDir    = flag.String("parts", "", "directory of <stem>.ssl.log/<stem>.x509.log partition pairs")
		workersCSV  = flag.String("workers", "", "comma-separated certchain-shardd base URLs")
		local       = flag.Bool("local", false, "run every partition in-process instead of distributing")
		gen         = flag.Int("gen", 0, "first write the seeded scenario into -parts as this many partitions")
		seed        = flag.Int64("seed", 1, "scenario seed; must match the workers'")
		scale       = flag.Float64("scale", 0.01, "fraction of paper-scale volume; must match the workers'")
		format      = flag.String("format", "tsv", "partition log format: tsv or json")
		lintPro     = flag.String("lint", "", "lint every chain; value is the check profile (paper, strict, all); must match the workers'")
		asJSON      = flag.Bool("json", false, "emit the machine-readable JSON export instead of text")
		goroutines  = flag.Int("goroutines", 0, "-local pool width per partition (0 = GOMAXPROCS); any value produces an identical report")
		leaseTTL    = flag.Duration("lease", dist.DefaultLeaseTTL, "lease TTL; a partition unheard-of this long is requeued")
		poll        = flag.Duration("poll", dist.DefaultPoll, "worker status poll interval (the lease heartbeat)")
		manifest    = flag.String("manifest", "", "write a run provenance manifest to this path")
		tracePath   = flag.String("trace", "", "write the spliced cross-process Chrome trace (coordinator + worker spans) to this path")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /healthz on this address for the run's duration (lease, requeue, and duplicate counters)")
		logFormat   = flag.String("log-format", "text", "log format: text or json")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *partsDir == "" {
		return fmt.Errorf("need -parts")
	}
	f := analysis.FormatTSV
	switch *format {
	case "tsv":
	case "json":
		f = analysis.FormatJSON
	default:
		return fmt.Errorf("unknown format %q (tsv or json)", *format)
	}

	cfg := campus.DefaultConfig()
	cfg.Seed = *seed
	cfg.Scale = *scale
	scenario, err := campus.Generate(cfg)
	if err != nil {
		return err
	}
	pipeline := analysis.FromScenario(scenario)
	if *lintPro != "" {
		pipeline.Linter = lint.New(scenario.Classifier, lint.Config{
			Now:     scenario.End(),
			Profile: *lintPro,
		})
	}

	if *gen > 0 {
		if _, err := dist.WritePartitions(scenario.Observations, *partsDir, *gen, f); err != nil {
			return err
		}
		logger.Info("wrote partitions", "dir", *partsDir, "count", *gen)
	}
	parts, err := dist.DiscoverPartitions(*partsDir)
	if err != nil {
		return err
	}
	logger.Info("discovered partitions", "count", len(parts))

	var workers []string
	for _, w := range strings.Split(*workersCSV, ",") {
		if w = strings.TrimSpace(w); w != "" {
			workers = append(workers, strings.TrimRight(w, "/"))
		}
	}
	if !*local && len(workers) == 0 {
		return fmt.Errorf("need -workers (or -local)")
	}

	tracer := obs.NewTracer()
	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg, "certchain-coord")
	if *metricsAddr != "" {
		stopMetrics, err := serveMetrics(*metricsAddr, reg, logger)
		if err != nil {
			return err
		}
		defer stopMetrics()
	}
	coord := dist.NewCoordinator(dist.CoordConfig{
		Pipeline:   pipeline,
		Workers:    workers,
		Format:     f,
		Goroutines: *goroutines,
		LeaseTTL:   *leaseTTL,
		Poll:       *poll,
		Retry:      resilience.DefaultPolicy(),
		Registry:   reg,
		Tracer:     tracer,
		Logf:       func(format string, args ...any) { logger.Info(fmt.Sprintf(format, args...)) },
	})

	var res *dist.Result
	if *local {
		res, err = coord.RunLocal(ctx, parts)
	} else {
		res, err = coord.Run(ctx, parts)
	}
	if err != nil {
		return err
	}
	logger.Info("run complete",
		"partitions", res.Partitions, "observations", res.Observations,
		"requeues", res.Requeues, "duplicates", res.Duplicates)
	if res.WorkerMetrics != nil {
		// Fold the workers' shards into the coordinator's registry: a final
		// -metrics-addr scrape shows the whole topology's counters, not just
		// the lease protocol's.
		if err := reg.Merge(res.WorkerMetrics); err != nil {
			logger.Warn("merge worker metrics", "err", err)
		}
	}

	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := res.WriteTrace(tf, tracer); err != nil {
			tf.Close()
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
		logger.Info("wrote trace", "path", *tracePath,
			"run_id", res.RunID, "worker_span_sets", len(res.PartitionTraces))
	}

	var reportBytes []byte
	if *asJSON {
		reportBytes, err = res.Report.JSON()
		if err != nil {
			return err
		}
	} else {
		reportBytes = []byte(res.Report.Render())
	}
	os.Stdout.Write(reportBytes)
	if *asJSON {
		fmt.Println()
	}

	if *manifest != "" {
		man := &obs.Manifest{
			Tool:         "certchain-coord",
			Seed:         *seed,
			Scale:        *scale,
			Workers:      max(len(workers), 1),
			Flags:        setFlags(),
			Inputs:       res.Inputs,
			Stages:       tracer.Stages(),
			ReportSHA256: obs.SHA256Hex(reportBytes),
			WallNS:       tracer.WallNS(),
			Build:        obs.Build(),
		}
		if err := man.WriteFile(*manifest); err != nil {
			return err
		}
		logger.Info("wrote manifest", "path", *manifest, "report_sha256", man.ReportSHA256)
	}
	return nil
}

func setFlags() map[string]string {
	flags := make(map[string]string)
	flag.Visit(func(f *flag.Flag) { flags[f.Name] = f.Value.String() })
	return flags
}

// serveMetrics exposes the coordinator's registry while the run is in
// flight — the lease, requeue, and duplicate counters are scrapeable live
// instead of vanishing with the process. The surface rides the shared
// serving middleware like every other daemon's.
func serveMetrics(addr string, reg *obs.Registry, logger *slog.Logger) (func(), error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/healthz", obs.HealthzHandler(reg, nil, nil))
	h := obs.NewHTTPMetrics(reg).Middleware(mux, logger, "/metrics", "/healthz")
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	logger.Info("metrics up", "addr", fmt.Sprintf("http://%s/metrics", ln.Addr()))
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}, nil
}
