// Process-level e2e for the distributed topology: build the real binaries,
// run three shard workers plus a coordinator against a partitioned corpus,
// and require the report to be byte-identical to the in-process reference —
// including a chaos run that SIGKILLs a worker mid-partition.
package main_test

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"certchains/internal/obs"
)

// buildBinaries compiles certchain-coord and certchain-shardd once per test
// binary and returns their paths.
func buildBinaries(t *testing.T) (coord, shardd string) {
	t.Helper()
	dir := t.TempDir()
	coord = filepath.Join(dir, "certchain-coord")
	shardd = filepath.Join(dir, "certchain-shardd")
	for bin, pkg := range map[string]string{coord: ".", shardd: "../certchain-shardd"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	return coord, shardd
}

// freePorts reserves n distinct loopback ports.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	for i := range ports {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = ln.Addr().(*net.TCPAddr).Port
		ln.Close()
	}
	return ports
}

func waitHealthy(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	client := &http.Client{Timeout: time.Second}
	for time.Now().Before(deadline) {
		req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, url+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("worker at %s never became healthy", url)
}

func startShard(t *testing.T, bin string, port int, extra ...string) *exec.Cmd {
	t.Helper()
	args := append([]string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-scale", "0.002",
	}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	waitHealthy(t, fmt.Sprintf("http://127.0.0.1:%d", port))
	return cmd
}

func runCoord(t *testing.T, bin, partsDir string, extra ...string) []byte {
	t.Helper()
	args := append([]string{
		"-parts", partsDir,
		"-scale", "0.002",
	}, extra...)
	cmd := exec.Command(bin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("certchain-coord %s: %v\nstderr:\n%s", strings.Join(args, " "), err, stderr.String())
	}
	t.Logf("coord stderr:\n%s", stderr.String())
	return stdout.Bytes()
}

// TestDistProcessEquivalence is the N-processes rung of the equivalence
// claim at full process isolation: 3 shard daemons + coordinator vs the
// single-process -local run, byte for byte.
func TestDistProcessEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binaries; skipped in -short")
	}
	coord, shardd := buildBinaries(t)
	partsDir := filepath.Join(t.TempDir(), "parts")

	// Reference: single process, sequential, generating the partitions.
	ref := runCoord(t, coord, partsDir, "-gen", "3", "-local", "-goroutines", "1")

	ports := freePorts(t, 3)
	var workers []string
	for _, p := range ports {
		startShard(t, shardd, p)
		workers = append(workers, fmt.Sprintf("http://127.0.0.1:%d", p))
	}
	got := runCoord(t, coord, partsDir, "-workers", strings.Join(workers, ","))
	if !bytes.Equal(got, ref) {
		t.Error("distributed report diverges from single-process -local run")
	}

	// JSON export too.
	refJSON := runCoord(t, coord, partsDir, "-local", "-json")
	gotJSON := runCoord(t, coord, partsDir, "-workers", strings.Join(workers, ","), "-json")
	if !bytes.Equal(gotJSON, refJSON) {
		t.Error("distributed JSON export diverges from single-process -local run")
	}
}

// TestDistProcessTrace is the real-binary rung of the spliced-trace claim:
// a distributed run's -trace artifact is one Chrome trace carrying spans
// from the coordinator process and every worker process — validated with
// the same checker CI's obs-check invokes.
func TestDistProcessTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binaries; skipped in -short")
	}
	coord, shardd := buildBinaries(t)
	partsDir := filepath.Join(t.TempDir(), "parts")
	tracePath := filepath.Join(t.TempDir(), "run.trace.json")

	ports := freePorts(t, 2)
	var workers []string
	for _, p := range ports {
		startShard(t, shardd, p)
		workers = append(workers, fmt.Sprintf("http://127.0.0.1:%d", p))
	}
	runCoord(t, coord, partsDir,
		"-gen", "3",
		"-workers", strings.Join(workers, ","),
		"-trace", tracePath,
	)

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	// Coordinator + 2 workers = 3 process tracks; every dist stage plus the
	// workers' pipeline stages must have spans.
	if err := obs.ValidateSplicedChromeTrace(data, 3,
		"dist-ingest", "dist-merge", "finalize", "observe", "dist-encode"); err != nil {
		t.Fatalf("spliced trace: %v", err)
	}
	procs, err := obs.ChromeTraceProcesses(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 3 {
		t.Fatalf("trace has %d process tracks (%v), want 3", len(procs), procs)
	}
}

// TestDistChaosKillWorker SIGKILLs a throttled worker mid-partition. The
// lease expires, the coordinator requeues to the survivors, and the final
// report must still be byte-identical to the single-process run.
func TestDistChaosKillWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binaries; skipped in -short")
	}
	coord, shardd := buildBinaries(t)
	partsDir := filepath.Join(t.TempDir(), "parts")
	ref := runCoord(t, coord, partsDir, "-gen", "3", "-local", "-goroutines", "1")

	ports := freePorts(t, 3)
	// Worker 0 crawls: its throttle guarantees whatever partition it holds
	// is still mid-ingest when the SIGKILL lands.
	victim := startShard(t, shardd, ports[0], "-throttle", "250ms")
	var workers []string
	for i, p := range ports {
		if i > 0 {
			startShard(t, shardd, p)
		}
		workers = append(workers, fmt.Sprintf("http://127.0.0.1:%d", p))
	}

	killed := make(chan struct{})
	go func() {
		defer close(killed)
		// Let the coordinator assign and the victim start crawling, then
		// kill -9 — no shutdown handler, no goodbye.
		time.Sleep(1500 * time.Millisecond)
		victim.Process.Signal(syscall.SIGKILL)
		victim.Wait()
	}()

	got := runCoord(t, coord, partsDir,
		"-workers", strings.Join(workers, ","),
		"-lease", "1s",
		"-poll", "50ms",
	)
	<-killed
	if !bytes.Equal(got, ref) {
		t.Error("post-chaos report diverges from single-process run")
	}
}
