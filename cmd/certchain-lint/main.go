// Command certchain-lint is the chain doctor as a CLI: it lints a delivered
// certificate chain — from a PEM file or scanned live from a TLS endpoint —
// and proposes the repaired delivery (§6.2's tooling recommendation).
//
// Usage:
//
//	certchain-lint -pem fullchain.pem
//	certchain-lint -sni example.com 192.0.2.7:443
package main

import (
	"context"
	"crypto/x509"
	"encoding/pem"
	"flag"
	"fmt"
	"os"
	"time"

	"certchains"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "certchain-lint:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		pemPath = flag.String("pem", "", "PEM file containing the delivered chain, leaf first")
		sni     = flag.String("sni", "", "SNI to offer when scanning an endpoint")
		timeout = flag.Duration("timeout", 5*time.Second, "scan timeout")
	)
	flag.Parse()

	var ch certchains.Chain
	switch {
	case *pemPath != "":
		var err error
		ch, err = loadPEMChain(*pemPath)
		if err != nil {
			return err
		}
	case flag.NArg() == 1:
		sc := certchains.NewScanner(*timeout)
		res := sc.Scan(context.Background(), flag.Arg(0), *sni)
		if res.Err != nil {
			return res.Err
		}
		ch = res.Chain
	default:
		return fmt.Errorf("pass -pem <file> or exactly one host:port target")
	}
	if len(ch) == 0 {
		return fmt.Errorf("no certificates found")
	}

	classifier := certchains.NewClassifier(certchains.NewTrustDB())
	linter := certchains.NewLinter(classifier, certchains.LintConfig{})

	fmt.Printf("chain of %d certificate(s):\n", len(ch))
	for i, m := range ch {
		fmt.Printf("  [%d] subject=%q issuer=%q bc=%s\n", i, m.Subject.String(), m.Issuer.String(), m.BC)
	}

	a := classifier.Analyze(ch)
	fmt.Printf("\nstructure: verdict=%s mismatch-ratio=%.2f unnecessary=%d\n",
		a.Verdict, a.MismatchRatio, len(a.Unnecessary))

	findings := linter.Chain(ch)
	if len(findings) == 0 {
		fmt.Println("lint: clean")
	}
	for _, f := range findings {
		fmt.Printf("lint: %s\n", f)
	}
	info, warn, errs := certchains.LintSummary(findings)
	fmt.Printf("lint summary: %d info, %d warnings, %d errors\n", info, warn, errs)

	r := certchains.RepairWithClock(a, time.Now())
	if !r.Fixable {
		fmt.Println("\nrepair: not repairable from the presented certificates")
		return nil
	}
	if len(r.Actions) == 0 {
		fmt.Println("\nrepair: delivery already minimal")
		return nil
	}
	fmt.Println("\nrepair plan:")
	for _, act := range r.Actions {
		fmt.Printf("  %s: %s\n", act.Kind, act.Reason)
	}
	fmt.Printf("proposed delivery (%d certs):\n", len(r.Chain))
	for i, m := range r.Chain {
		fmt.Printf("  [%d] %s\n", i, m.Subject.String())
	}
	return nil
}

func loadPEMChain(path string) (certchains.Chain, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ch certchains.Chain
	for len(data) > 0 {
		var block *pem.Block
		block, data = pem.Decode(data)
		if block == nil {
			break
		}
		if block.Type != "CERTIFICATE" {
			continue
		}
		cert, err := x509.ParseCertificate(block.Bytes)
		if err != nil {
			return nil, fmt.Errorf("parse certificate %d: %w", len(ch), err)
		}
		ch = append(ch, certchains.CertificateFromX509(cert))
	}
	return ch, nil
}
