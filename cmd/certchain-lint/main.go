// Command certchain-lint is the chain doctor as a CLI: it lints a delivered
// certificate chain — from a PEM file or scanned live from a TLS endpoint —
// and proposes the repaired delivery (§6.2's tooling recommendation). With
// -corpus it instead lints every chain of a Zeek log corpus through the
// sharded pipeline and prints the per-check prevalence table.
//
// Usage:
//
//	certchain-lint -pem fullchain.pem
//	certchain-lint -sni example.com 192.0.2.7:443
//	certchain-lint -pem fullchain.pem -sarif > findings.sarif
//	certchain-lint -corpus -ssl data/ssl.log -x509 data/x509.log -seed 1
//	certchain-lint -list-checks -profile paper
package main

import (
	"context"
	"crypto/x509"
	"encoding/pem"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"certchains"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "certchain-lint:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		pemPath = flag.String("pem", "", "PEM file containing the delivered chain, leaf first")
		sni     = flag.String("sni", "", "SNI to offer when scanning an endpoint")
		timeout = flag.Duration("timeout", 5*time.Second, "scan timeout")
		profile = flag.String("profile", "", "check profile: paper, strict, or all (default all)")
		list    = flag.Bool("list-checks", false, "print every check of the selected profile and exit")
		asJSON  = flag.Bool("json", false, "emit findings (or the corpus summary) as JSON")
		asSARIF = flag.Bool("sarif", false, "emit findings as SARIF 2.1.0")
		nowFlag = flag.String("now", "", "reference time for validity checks, RFC 3339 (default wall clock)")
		corpus  = flag.Bool("corpus", false, "corpus mode: lint a Zeek log corpus instead of one chain")
		sslPath = flag.String("ssl", "", "path to ssl.log (corpus mode)")
		x5Path  = flag.String("x509", "", "path to x509.log (corpus mode)")
		format  = flag.String("format", "tsv", "log format for -ssl/-x509: tsv or json")
		seed    = flag.Int64("seed", 1, "scenario seed the corpus logs were generated against")
		scale   = flag.Float64("scale", 0.01, "scenario scale the corpus logs were generated against")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "pipeline worker count (corpus mode); any value produces an identical table")
	)
	flag.Parse()

	cfg := certchains.LintConfig{Profile: *profile}
	if *nowFlag != "" {
		t, err := time.Parse(time.RFC3339, *nowFlag)
		if err != nil {
			return fmt.Errorf("bad -now %q: %w", *nowFlag, err)
		}
		cfg.Now = t
	}

	if *list {
		return listChecks(cfg)
	}
	if *corpus {
		return lintCorpus(cfg, *sslPath, *x5Path, *format, *seed, *scale, *workers, *asJSON)
	}

	var ch certchains.Chain
	artifact := "chain"
	switch {
	case *pemPath != "":
		var err error
		ch, err = loadPEMChain(*pemPath)
		if err != nil {
			return err
		}
		artifact = *pemPath
	case flag.NArg() == 1:
		sc := certchains.NewScanner(*timeout)
		res := sc.Scan(context.Background(), flag.Arg(0), *sni)
		if res.Err != nil {
			return res.Err
		}
		ch = res.Chain
		artifact = flag.Arg(0)
	default:
		return fmt.Errorf("pass -pem <file> or exactly one host:port target")
	}
	if len(ch) == 0 {
		return fmt.Errorf("no certificates found")
	}

	classifier := certchains.NewClassifier(certchains.NewTrustDB())
	linter := certchains.NewLinter(classifier, cfg)

	a := classifier.Analyze(ch)
	findings := linter.Chain(ch)

	if *asJSON {
		return certchains.WriteLintJSON(os.Stdout, findings)
	}
	if *asSARIF {
		return certchains.WriteLintSARIF(os.Stdout, linter, artifact, findings)
	}

	fmt.Printf("chain of %d certificate(s):\n", len(ch))
	for i, m := range ch {
		fmt.Printf("  [%d] subject=%q issuer=%q bc=%s\n", i, m.Subject.String(), m.Issuer.String(), m.BC)
	}

	fmt.Printf("\nstructure: verdict=%s mismatch-ratio=%.2f unnecessary=%d\n",
		a.Verdict, a.MismatchRatio, len(a.Unnecessary))

	if len(findings) == 0 {
		fmt.Println("lint: clean")
	}
	for _, f := range findings {
		fmt.Printf("lint: %s\n", f)
	}
	info, warn, errs := certchains.LintSummary(findings)
	fmt.Printf("lint summary: %d info, %d warnings, %d errors\n", info, warn, errs)

	r := certchains.RepairWithClock(a, time.Now())
	if !r.Fixable {
		fmt.Println("\nrepair: not repairable from the presented certificates")
		return nil
	}
	if len(r.Actions) == 0 {
		fmt.Println("\nrepair: delivery already minimal")
		return nil
	}
	fmt.Println("\nrepair plan:")
	for _, act := range r.Actions {
		fmt.Printf("  %s: %s\n", act.Kind, act.Reason)
	}
	fmt.Printf("proposed delivery (%d certs):\n", len(r.Chain))
	for i, m := range r.Chain {
		fmt.Printf("  [%d] %s\n", i, m.Subject.String())
	}
	return nil
}

// listChecks prints the check inventory of the selected profile: stable ID,
// severity, scope, profiles, description, and the paper citation.
func listChecks(cfg certchains.LintConfig) error {
	linter := certchains.NewLinter(certchains.NewClassifier(certchains.NewTrustDB()), cfg)
	checks := linter.EnabledChecks()
	fmt.Printf("%d check(s) enabled under profile %q:\n\n", len(checks), linter.Config().Profile)
	for _, c := range checks {
		fmt.Printf("%-26s %-5s %-5s %s\n", c.ID, c.Severity, c.Scope, c.Description)
		fmt.Printf("%-26s %-5s %-5s cite: %s\n", "", "", "", c.Citation)
	}
	return nil
}

// lintCorpus streams a Zeek log corpus through the sharded pipeline with
// linting enabled and prints the corpus prevalence table. The reference
// time defaults to the regenerated scenario's collection end so the table
// is reproducible.
func lintCorpus(cfg certchains.LintConfig, sslPath, x5Path, format string, seed int64, scale float64, workers int, asJSON bool) error {
	if sslPath == "" || x5Path == "" {
		return fmt.Errorf("corpus mode needs both -ssl and -x509")
	}
	f := certchains.ZeekFormatTSV
	switch format {
	case "tsv":
	case "json":
		f = certchains.ZeekFormatJSON
	default:
		return fmt.Errorf("unknown format %q (tsv or json)", format)
	}

	scenarioCfg := certchains.DefaultScenarioConfig()
	scenarioCfg.Seed = seed
	scenarioCfg.Scale = scale
	scenario, err := certchains.GenerateScenario(scenarioCfg)
	if err != nil {
		return err
	}
	if cfg.Now.IsZero() {
		cfg.Now = scenario.End()
	}
	pipeline := certchains.PipelineFromScenario(scenario)
	pipeline.Linter = certchains.NewLinter(scenario.Classifier, cfg)

	sslF, err := os.Open(sslPath)
	if err != nil {
		return err
	}
	defer sslF.Close()
	x5F, err := os.Open(x5Path)
	if err != nil {
		return err
	}
	defer x5F.Close()

	obsCh := make(chan *certchains.Observation, 256)
	loadErr := make(chan error, 1)
	go func() {
		defer close(obsCh)
		loadErr <- certchains.StreamZeekLogs(f, sslF, x5F, func(o *certchains.Observation) error {
			obsCh <- o
			return nil
		})
	}()
	report := pipeline.RunStream(obsCh, workers)
	if err := <-loadErr; err != nil {
		return err
	}
	if report.Lint == nil {
		return fmt.Errorf("pipeline produced no lint summary")
	}
	if asJSON {
		data, err := report.JSON()
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
		fmt.Println()
		return nil
	}
	fmt.Print(report.Lint.Render())
	return nil
}

func loadPEMChain(path string) (certchains.Chain, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ch certchains.Chain
	for len(data) > 0 {
		var block *pem.Block
		block, data = pem.Decode(data)
		if block == nil {
			break
		}
		if block.Type != "CERTIFICATE" {
			continue
		}
		cert, err := x509.ParseCertificate(block.Bytes)
		if err != nil {
			return nil, fmt.Errorf("parse certificate %d: %w", len(ch), err)
		}
		ch = append(ch, certchains.CertificateFromX509(cert))
	}
	return ch, nil
}
