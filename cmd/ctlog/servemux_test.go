// In-process coverage for the -serve admin surface: /metrics must pass the
// exposition-format checker and /healthz must report the build revision and
// tree size from the same registry.
package main

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"certchains/internal/campus"
	"certchains/internal/obs"
)

func TestServeMuxAdminEndpoints(t *testing.T) {
	cfg := campus.DefaultConfig()
	cfg.Seed = 1
	cfg.Scale = 0.002
	scenario, err := campus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mux := serveMux(scenario.CT)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if err := obs.ValidateExposition(rec.Body.Bytes()); err != nil {
		t.Errorf("/metrics fails conformance: %v\n%s", err, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("/healthz status %d", rec.Code)
	}
	var doc struct {
		Status        string  `json:"status"`
		BuildRevision string  `json:"build_revision"`
		TreeSize      float64 `json:"tree_size"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/healthz is not JSON: %v\n%s", err, rec.Body.String())
	}
	if doc.Status != "ok" {
		t.Errorf("status = %q", doc.Status)
	}
	if doc.BuildRevision == "" {
		t.Error("build_revision empty")
	}
	if doc.TreeSize != float64(scenario.CT.Size()) {
		t.Errorf("tree_size = %v, want %d", doc.TreeSize, scenario.CT.Size())
	}

	// The CT API itself stays mounted beside the admin endpoints.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/ct/v1/get-sth", nil))
	if rec.Code != 200 {
		t.Errorf("/ct/v1/get-sth status %d", rec.Code)
	}
}
