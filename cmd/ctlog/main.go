// Command ctlog demonstrates the Certificate Transparency substrate: it
// populates a log from a campus scenario, prints the signed tree head,
// answers crt.sh-style domain queries, and verifies an inclusion proof —
// the machinery the interception detector (§3.2.1) and the CT-compliance
// check (§4.2) are built on.
//
// Usage:
//
//	ctlog -seed 1 -scale 0.005 -query www.example.com
package main

import (
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"certchains/internal/campus"
	"certchains/internal/ctlog"
	"certchains/internal/merkle"
	"certchains/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ctlog:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed  = flag.Int64("seed", 1, "scenario seed")
		scale = flag.Float64("scale", 0.005, "scenario scale")
		query = flag.String("query", "", "domain to query (crt.sh style)")
		serve = flag.String("serve", "", "serve the RFC 6962-style HTTP API on this address (e.g. 127.0.0.1:8634)")
	)
	flag.Parse()

	cfg := campus.DefaultConfig()
	cfg.Seed = *seed
	cfg.Scale = *scale
	scenario, err := campus.Generate(cfg)
	if err != nil {
		return err
	}
	log := scenario.CT

	sth := log.TreeHead(time.Now())
	fmt.Printf("log %q: %d entries\n", log.Name(), sth.TreeSize)
	fmt.Printf("tree head: %s\n", hex.EncodeToString(sth.RootHash[:]))
	fmt.Printf("STH signature valid: %v\n", log.VerifySTH(sth))

	// Verify an inclusion proof for the first entry end to end.
	if sth.TreeSize > 0 {
		entry := log.GetEntries(0, 1)[0]
		proof, err := log.InclusionProof(entry.Index, sth.TreeSize)
		if err != nil {
			return err
		}
		ok := merkle.VerifyInclusion(ctlog.LeafHashOf(entry), entry.Index, sth.TreeSize, proof, sth.RootHash)
		fmt.Printf("inclusion proof for entry 0 (%s): %v (%d hashes)\n",
			entry.Cert.Subject.CommonName(), ok, len(proof))
	}

	if *query != "" {
		entries := log.QueryDomain(*query)
		fmt.Printf("\n%d entries for %q:\n", len(entries), *query)
		for _, e := range entries {
			fmt.Printf("  #%d issuer=%q notBefore=%s notAfter=%s\n",
				e.Index, e.Cert.Issuer.String(),
				e.Cert.NotBefore.Format("2006-01-02"), e.Cert.NotAfter.Format("2006-01-02"))
		}
	}

	if *serve != "" {
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			return err
		}
		server := &http.Server{
			Handler:           serveMux(log),
			ReadHeaderTimeout: 5 * time.Second,
		}
		// Serve until interrupted, then drain in-flight requests before
		// exiting so monitors mid-download are not cut off. The handler is
		// registered before the announcement so an interrupt arriving right
		// after the line appears is never fatal. The announced address is the
		// listener's (not the flag's), so ":0" announces the real port.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		fmt.Printf("\nserving CT API on http://%s/ct/v1/ (get-sth, get-entries, get-proof, get-consistency, query, add-chain; admin: /metrics, /healthz)\n", ln.Addr())
		serveErr := make(chan error, 1)
		go func() { serveErr <- server.Serve(ln) }()
		select {
		case err := <-serveErr:
			return err
		case <-ctx.Done():
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := server.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
				return err
			}
			fmt.Println("ctlog: shut down cleanly")
			return nil
		}
	}
	return nil
}

// serveMux is the -serve surface: the RFC 6962-style API plus the standard
// admin endpoints every serving binary in this repository exposes. Tree
// metrics refresh from the log on each scrape, /healthz reads the build
// revision back out of the same registry /metrics renders, and the whole
// surface is wrapped in the shared serving telemetry (obs.HTTPMetrics), so
// a scrape also shows per-route latency and size histograms.
func serveMux(log *ctlog.Log) http.Handler {
	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg, "ctlog")
	treeSize := reg.Gauge("ctlog_tree_size", "Entries in the CT log's Merkle tree.")
	refresh := func() { treeSize.With().Set(float64(log.Size())) }

	mux := http.NewServeMux()
	mux.Handle("/ct/v1/", log.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		refresh()
		reg.Handler().ServeHTTP(w, r)
	})
	hz := obs.HealthzHandler(reg, map[string]string{"tree_size": "ctlog_tree_size"}, nil)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		refresh()
		hz.ServeHTTP(w, r)
	})
	logger := obs.NewDeterministicLogger(os.Stderr, slog.LevelInfo)
	return obs.NewHTTPMetrics(reg).Middleware(mux, logger,
		"/ct/v1/", "/metrics", "/healthz")
}
