// Process-level e2e for -serve: the CT API server must exit cleanly on
// SIGINT (draining in-flight requests) instead of dying mid-response.
package main_test

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestServeShutsDownOnInterrupt(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "ctlog")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-scale", "0.002", "-serve", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	serving := make(chan bool, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			t.Log(line)
			if strings.Contains(line, "serving CT API") {
				serving <- true
			}
		}
	}()
	select {
	case <-serving:
	case <-time.After(60 * time.Second):
		t.Fatal("server never announced itself")
	}

	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exited uncleanly on SIGINT: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit after SIGINT")
	}
}
