// Process-level e2e for -serve: the CT API server must exit cleanly on
// SIGINT (draining in-flight requests) instead of dying mid-response, and
// its live admin endpoints must report build identity and tree state.
package main_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"certchains/internal/obs"
)

func TestServeShutsDownOnInterrupt(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "ctlog")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-scale", "0.002", "-serve", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	serving := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			t.Log(line)
			if strings.Contains(line, "serving CT API") {
				serving <- line
			}
		}
	}()
	var announce string
	select {
	case announce = <-serving:
	case <-time.After(60 * time.Second):
		t.Fatal("server never announced itself")
	}

	// The announcement carries the real bound address (the flag says :0);
	// exercise the admin surface while the server is live.
	_, rest, ok := strings.Cut(announce, "http://")
	if !ok {
		t.Fatalf("announcement has no URL: %q", announce)
	}
	addr, _, ok := strings.Cut(rest, "/")
	if !ok || addr == "" {
		t.Fatalf("announcement URL malformed: %q", announce)
	}
	checkAdminSurface(t, addr)

	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exited uncleanly on SIGINT: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit after SIGINT")
	}
}

// checkAdminSurface asserts the live /healthz reports a build revision and
// a positive tree size, and /metrics passes the exposition checker — built
// binaries carry VCS stamping, so this covers the stamped-path behavior the
// in-process serveMux test cannot.
func checkAdminSurface(t *testing.T, addr string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Status        string  `json:"status"`
		BuildRevision string  `json:"build_revision"`
		TreeSize      float64 `json:"tree_size"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("healthz is not JSON: %v\n%s", err, body)
	}
	if doc.Status != "ok" {
		t.Errorf("healthz status = %q", doc.Status)
	}
	if doc.BuildRevision == "" {
		t.Errorf("healthz build_revision empty: %s", body)
	}
	if doc.TreeSize <= 0 {
		t.Errorf("healthz tree_size = %v, want > 0", doc.TreeSize)
	}

	resp, err = http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Errorf("/metrics fails conformance: %v", err)
	}
	if !strings.Contains(string(body), "ctlog_tree_size ") {
		t.Errorf("/metrics missing tree size gauge:\n%s", body)
	}
}
