// Command certchain-scan is the retrospective scanner of §5: it connects to
// TLS endpoints, records the chain each presents, and prints a structural
// verdict per endpoint.
//
// Usage:
//
//	certchain-scan host1:443 host2:8443 ...
//	certchain-scan -sni example.com 192.0.2.1:443
//	certchain-scan -demo            # spin up a local farm and scan it
//	certchain-scan -baseline-ssl old/ssl.log -baseline-x509 old/x509.log host:443
//
// With a baseline, each scanned chain is compared against the chain the same
// SNI served during the logged period — the paper's then-vs-now comparison.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"certchains/internal/analysis"
	"certchains/internal/certmodel"
	"certchains/internal/chain"
	"certchains/internal/pki"
	"certchains/internal/scanner"
	"certchains/internal/serverfarm"
	"certchains/internal/trustdb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "certchain-scan:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		sni      = flag.String("sni", "", "server name to offer (default: derived per target)")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-connection timeout")
		parallel = flag.Int("parallel", 8, "concurrent scans")
		retries  = flag.Int("retries", 3, "retries per target after a transient failure")
		demo     = flag.Bool("demo", false, "start a local demo farm and scan it")
		baseSSL  = flag.String("baseline-ssl", "", "prior ssl.log for then-vs-now comparison")
		baseX509 = flag.String("baseline-x509", "", "prior x509.log for then-vs-now comparison")
	)
	flag.Parse()

	// Baseline: SNI -> previously observed chain.
	baseline := make(map[string]certmodel.Chain)
	if *baseSSL != "" || *baseX509 != "" {
		if *baseSSL == "" || *baseX509 == "" {
			return fmt.Errorf("baseline needs both -baseline-ssl and -baseline-x509")
		}
		sslF, err := os.Open(*baseSSL)
		if err != nil {
			return err
		}
		defer sslF.Close()
		x5F, err := os.Open(*baseX509)
		if err != nil {
			return err
		}
		defer x5F.Close()
		observations, err := analysis.Load(sslF, x5F)
		if err != nil {
			return err
		}
		for _, o := range observations {
			if o.Domain != "" && len(o.Chain) > 0 {
				if _, dup := baseline[o.Domain]; !dup {
					baseline[o.Domain] = o.Chain
				}
			}
		}
		fmt.Printf("baseline: %d domains with prior chains\n", len(baseline))
	}

	sc := scanner.New(*timeout)
	sc.Retry.MaxAttempts = 1 + *retries
	cl := chain.NewClassifier(trustdb.New())

	var targets []scanner.Target
	if *demo {
		farm := serverfarm.New()
		defer farm.Close()
		mint := pki.NewMint(1, time.Now())
		root, err := mint.NewRoot(pki.Name("Demo Root", "Demo"))
		if err != nil {
			return err
		}
		inter, err := root.NewIntermediate(pki.Name("Demo CA", "Demo"))
		if err != nil {
			return err
		}
		leaf, err := inter.IssueLeaf(pki.Name("demo.test"), pki.WithSANs("demo.test"))
		if err != nil {
			return err
		}
		stray, err := mint.SelfSigned(pki.Name("leftover"))
		if err != nil {
			return err
		}
		srv, err := farm.Add("demo.test", pki.Chain(leaf, inter.Cert, stray))
		if err != nil {
			return err
		}
		targets = append(targets, scanner.Target{Addr: srv.Addr, SNI: "demo.test"})
		// Trust the demo root so classification has a public side.
		cl.DB.AddRoot(trustdb.StoreMozilla, root.Cert.Meta)
	} else {
		if flag.NArg() == 0 {
			return fmt.Errorf("no targets; pass host:port arguments or -demo")
		}
		for _, addr := range flag.Args() {
			targets = append(targets, scanner.Target{Addr: addr, SNI: *sni})
		}
	}

	results := sc.ScanAll(context.Background(), targets, *parallel)
	for _, res := range results {
		if res.Err != nil {
			fmt.Printf("%-24s %s after %d attempt(s): %v\n", res.Addr, res.Outcome, res.Attempts, res.Err)
			continue
		}
		a := cl.Analyze(res.Chain)
		fmt.Printf("%-24s %d certs  category=%s  verdict=%s  unnecessary=%d  (%.0f ms)\n",
			res.Addr, len(res.Chain), a.Category, a.Verdict, len(a.Unnecessary),
			float64(res.Duration.Microseconds())/1000)
		for i, m := range res.Chain {
			fmt.Printf("    [%d] subject=%q issuer=%q\n", i, m.Subject.String(), m.Issuer.String())
		}
		if old, ok := baseline[res.SNI]; ok {
			cmp := scanner.Compare(cl, res.Addr, old, res.Chain)
			fmt.Printf("    then-vs-now: %s (%d certs) -> %s (%d certs), new verdict %s\n",
				cmp.OldCategory, cmp.OldLen, cmp.NewCategory, cmp.NewLen, cmp.NewVerdict)
		}
	}
	// Sweep summary: unreachable servers are outcomes, not aborts (§5's
	// retrospective scan reports what it could not reach).
	summary := scanner.Summarize(results)
	fmt.Printf("sweep: %d targets", len(results))
	for _, outcome := range []string{scanner.OutcomeOK, scanner.OutcomeEmpty, scanner.OutcomeHandshake, scanner.OutcomeDial} {
		if n := summary[outcome]; n > 0 {
			fmt.Printf("  %s=%d", outcome, n)
		}
	}
	fmt.Println()
	return nil
}
