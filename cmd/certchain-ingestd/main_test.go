// Process-level e2e: build the real binary, run it in demo mode, interrupt
// it, and require a clean exit with a final snapshot — the shutdown path an
// operator actually exercises.
package main_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"certchains/internal/obs"
)

func TestSignalShutdownWritesSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "certchain-ingestd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	dir := t.TempDir()
	snap := filepath.Join(dir, "ingest.snapshot")
	cmd := exec.Command(bin,
		"-demo",
		"-addr", "127.0.0.1:0",
		"-scale", "0.002",
		"-speed", "1e9",
		"-window", "168h",
		"-poll", "50ms",
		"-snapshot", snap,
		"-snapshot-every", "-1s",
		"-ssl", filepath.Join(dir, "ssl.log"),
		"-x509", filepath.Join(dir, "x509.log"),
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Follow the daemon's log: wait for the capture to finish replaying,
	// then interrupt it.
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	waitFor := func(marker string) string {
		t.Helper()
		deadline := time.After(60 * time.Second)
		for {
			select {
			case line, ok := <-lines:
				if !ok {
					t.Fatalf("daemon exited before logging %q", marker)
				}
				t.Log(line)
				if strings.Contains(line, marker) {
					return line
				}
			case <-deadline:
				t.Fatalf("timed out waiting for %q", marker)
			}
		}
	}
	announce := waitFor("admin surface on")
	waitFor("capture complete")
	// Give the poll loop a few ticks to drain the tail.
	time.Sleep(500 * time.Millisecond)

	// The announcement names the real bound address; exercise the live admin
	// surface before shutting down.
	addr := adminAddr(t, announce)
	checkHealthz(t, "http://"+addr+"/healthz")
	checkMetrics(t, "http://"+addr+"/metrics")

	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	waitFor("final snapshot written")

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGINT")
	}

	st, err := os.Stat(snap)
	if err != nil {
		t.Fatalf("final snapshot missing: %v", err)
	}
	if st.Size() == 0 {
		t.Fatal("final snapshot is empty")
	}
}

// adminAddr extracts host:port from the daemon's announcement line
// ("... admin surface on http://127.0.0.1:PORT/ ...").
func adminAddr(t *testing.T, line string) string {
	t.Helper()
	_, rest, ok := strings.Cut(line, "http://")
	if !ok {
		t.Fatalf("announcement has no URL: %q", line)
	}
	addr, _, ok := strings.Cut(rest, "/")
	if !ok || addr == "" {
		t.Fatalf("announcement URL malformed: %q", line)
	}
	return addr
}

// checkHealthz asserts the liveness document reports a build revision and
// the snapshot age sourced from the shared registry.
func checkHealthz(t *testing.T, url string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d: %s", resp.StatusCode, body)
	}
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("healthz is not JSON: %v\n%s", err, body)
	}
	if doc["status"] != "ok" {
		t.Errorf("healthz status field = %v", doc["status"])
	}
	if rev, _ := doc["build_revision"].(string); rev == "" {
		t.Errorf("healthz build_revision empty: %s", body)
	}
	if _, ok := doc["snapshot_age_seconds"]; !ok {
		t.Errorf("healthz missing snapshot_age_seconds: %s", body)
	}
}

// checkMetrics asserts the exposition parses cleanly and carries the build
// info series.
func checkMetrics(t *testing.T, url string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Errorf("/metrics fails conformance: %v", err)
	}
	if !strings.Contains(string(body), "certchain_build_info{") {
		t.Errorf("/metrics missing build info series")
	}
}
