// Command certchain-ingestd is the streaming counterpart of
// certchain-analyze: a long-running daemon that tails live Zeek
// ssl.log/x509.log files, joins the two streams incrementally, folds closed
// time windows into an analysis ring, and serves windowed reports plus
// operational metrics over HTTP.
//
//	certchain-ingestd -ssl /var/zeek/ssl.log -x509 /var/zeek/x509.log \
//	    -seed 1 -snapshot /var/lib/certchain/ingest.snapshot
//
// The seed/scale pair rebuilds the same trust stores, CT log, and
// interception registry the logs were generated against, exactly as
// certchain-analyze's log-file mode does. With -snapshot the daemon persists
// its full state (tail offsets, join buffer, open windows, analysis ring)
// periodically and on shutdown, and resumes from it on restart without
// re-reading history.
//
// Admin surface (see internal/ingest):
//
//	GET /report?window=1h|24h|all&format=text|json
//	GET /healthz
//	GET /metrics
//	GET /debug/pprof/...
//
// -demo replays a generated campus capture into the tailed files at -speed×
// log time, so the whole loop can be watched live without a Zeek install:
//
//	certchain-ingestd -demo -addr 127.0.0.1:8844
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"certchains/internal/analysis"
	"certchains/internal/campus"
	"certchains/internal/ingest"
	"certchains/internal/lint"
	"certchains/internal/obs"
	"certchains/internal/resilience"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "certchain-ingestd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		sslPath    = flag.String("ssl", "", "path to the live ssl.log")
		x5Path     = flag.String("x509", "", "path to the live x509.log")
		format     = flag.String("format", "tsv", "log format: tsv or json")
		addr       = flag.String("addr", "127.0.0.1:8844", "admin listen address")
		seed       = flag.Int64("seed", 1, "scenario seed for the enrichment stores")
		scale      = flag.Float64("scale", 0.01, "fraction of paper-scale volume")
		window     = flag.Duration("window", analysis.DefaultWindowInterval, "analysis window interval")
		buckets    = flag.Int("buckets", analysis.DefaultWindowBuckets, "live windows kept before spilling to the all-time aggregate")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "fold worker count; any value produces identical reports")
		batch      = flag.Int("batch", 0, "streaming handoff batch size (0 = default); any value produces identical reports")
		certCap    = flag.Int("cert-cap", 0, "join certificate index cap (0 = default, negative = unbounded)")
		pendingCap = flag.Int("pending-cap", 0, "join pending-connection cap (0 = default, negative = unbounded)")
		snapshot   = flag.String("snapshot", "", "state snapshot path (enables resume across restarts)")
		snapEvery  = flag.Duration("snapshot-every", 30*time.Second, "periodic snapshot interval (negative disables)")
		poll       = flag.Duration("poll", 500*time.Millisecond, "tail poll interval")
		ioRetries  = flag.Int("io-retries", 3, "retries per poll/snapshot after a transient I/O failure")
		lintPro    = flag.String("lint", "", "lint every chain; value is the check profile (paper, strict, all)")
		demo       = flag.Bool("demo", false, "replay a generated capture into the tailed files")
		speed      = flag.Float64("speed", 500000, "demo replay speed: log seconds per wall second")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this path (stopped at shutdown)")
		memProfile = flag.String("memprofile", "", "write a heap profile to this path at shutdown")
		logFormat  = flag.String("log-format", "text", "log format: text or json")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				logger.Error("heap profile", "err", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				logger.Error("heap profile", "err", err)
			}
		}()
	}

	cfg := campus.DefaultConfig()
	cfg.Seed = *seed
	cfg.Scale = *scale
	scenario, err := campus.Generate(cfg)
	if err != nil {
		return err
	}
	pipeline := analysis.FromScenario(scenario)
	pipeline.Batch = *batch
	if *lintPro != "" {
		pipeline.Linter = lint.New(scenario.Classifier, lint.Config{
			Now:     scenario.End(),
			Profile: *lintPro,
		})
	}

	isJSON := false
	switch *format {
	case "tsv":
	case "json":
		isJSON = true
	default:
		return fmt.Errorf("unknown format %q (tsv or json)", *format)
	}

	if *demo {
		if *sslPath == "" || *x5Path == "" {
			dir, err := os.MkdirTemp("", "certchain-ingestd-demo-")
			if err != nil {
				return err
			}
			*sslPath = filepath.Join(dir, "ssl.log")
			*x5Path = filepath.Join(dir, "x509.log")
			logger.Info("demo logs", "dir", dir)
		}
		go func() {
			if err := runDemo(ctx, logger, scenario, *sslPath, *x5Path, isJSON, *speed); err != nil && ctx.Err() == nil {
				logger.Error("demo replay", "err", err)
			}
		}()
	}
	if *sslPath == "" || *x5Path == "" {
		return fmt.Errorf("need both -ssl and -x509 (or -demo)")
	}

	ioPolicy := resilience.DefaultPolicy()
	ioPolicy.MaxAttempts = 1 + *ioRetries
	ing, resumed, err := ingest.RestoreOrNew(pipeline, ingest.Config{
		SSLPath:      *sslPath,
		X509Path:     *x5Path,
		JSON:         isJSON,
		Window:       analysis.WindowConfig{Interval: *window, Buckets: *buckets, Workers: *workers},
		CertCap:      *certCap,
		PendingCap:   *pendingCap,
		SnapshotPath: *snapshot,
		Retry:        ioPolicy,
		AccessLog:    logger,
	})
	if err != nil {
		return err
	}
	if resumed {
		logger.Info("resumed from snapshot", "path", *snapshot, "observations", ing.Stats().Observations)
	}

	d := ingest.NewDaemon(ing, ingest.DaemonConfig{
		Addr:          *addr,
		Poll:          *poll,
		SnapshotEvery: *snapEvery,
		Retry:         ioPolicy,
		// The daemon speaks printf; fold its lines into the structured
		// logger's message field.
		Logf: func(format string, args ...any) { logger.Info(fmt.Sprintf(format, args...)) },
	})
	return d.Run(ctx)
}

// runDemo replays the scenario into the tailed log files, pacing records so
// that `speed` log seconds pass per wall second. The writers flush in small
// batches, so the daemon sees the capture arrive live.
func runDemo(ctx context.Context, logger *slog.Logger, s *campus.Scenario, sslPath, x5Path string, isJSON bool, speed float64) error {
	if speed <= 0 {
		return fmt.Errorf("demo speed must be positive")
	}
	sslF, err := os.Create(sslPath)
	if err != nil {
		return err
	}
	defer sslF.Close()
	x5F, err := os.Create(x5Path)
	if err != nil {
		return err
	}
	defer x5F.Close()

	var wallStart, logStart time.Time
	pace := func(ts time.Time) error {
		if logStart.IsZero() {
			logStart, wallStart = ts, time.Now()
			return nil
		}
		due := wallStart.Add(time.Duration(float64(ts.Sub(logStart)) / speed))
		wait := time.Until(due)
		if wait <= 0 {
			return ctx.Err()
		}
		t := time.NewTimer(wait)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	}
	logger.Info("demo: replaying capture", "observations", len(s.Observations), "speed", speed)
	err = campus.Replay(s.Observations, sslF, x5F, campus.ReplayOptions{
		MaxConnsPerObservation: 4,
		JSON:                   isJSON,
		BatchRecords:           16,
		Pace:                   pace,
	})
	if err == nil {
		logger.Info("demo: capture complete")
	}
	return err
}
