// Command certchain-vet runs the project's static-analysis suite over the
// source tree: determinism (wall clock, unseeded rand, map-ordered output),
// mergefields (Merge/snapshot field completeness on every accumulator),
// resilience (network and sleep paths must use the internal/resilience
// seams), hotpath (allocation ratchet for //certchain:hotpath files), and
// locks (no blocking operations under a mutex, no defer-unlock in loops).
//
// Suppressions live in the checked-in .certchain-vet.json allowlist; every
// entry carries a mandatory reason, and entries whose path matches no file
// fail the run (stale-allowlist check). The command exits non-zero when any
// non-allowlisted finding or stale entry remains, so `make vet` and CI gate
// on it.
//
// Usage:
//
//	certchain-vet [-analyzers determinism,mergefields,...] [-format text|json|sarif]
//	              [-artifact vet.json] [-config .certchain-vet.json] [-tests] [root]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"certchains/internal/analyzers/vet"
)

func main() {
	var (
		analyzersFlag = flag.String("analyzers", "",
			"comma-separated analyzers to run (default all: "+strings.Join(vet.Names(), ",")+")")
		format   = flag.String("format", "text", "output format: text, json, or sarif")
		artifact = flag.String("artifact", "",
			"also write a JSON report to this file (CI artifact), independent of -format")
		configPath = flag.String("config", "",
			"allowlist config (default: <root>/"+vet.DefaultConfigName+" when present)")
		tests = flag.Bool("tests", false, "analyze _test.go files too")
	)
	flag.Parse()

	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}

	cfgPath := *configPath
	optional := false
	if cfgPath == "" {
		cfgPath = filepath.Join(root, vet.DefaultConfigName)
		optional = true
	}
	cfg, err := vet.LoadConfig(cfgPath, optional)
	if err != nil {
		fatal(err)
	}

	var names []string
	if *analyzersFlag != "" {
		names = strings.Split(*analyzersFlag, ",")
	}
	res, err := vet.Run(vet.Options{
		Root:         root,
		Analyzers:    names,
		IncludeTests: *tests,
		Config:       cfg,
	})
	if err != nil {
		fatal(err)
	}

	if *artifact != "" {
		f, err := os.Create(*artifact)
		if err != nil {
			fatal(err)
		}
		if err := vet.WriteJSON(f, res); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	switch *format {
	case "text":
		err = vet.WriteText(os.Stdout, res)
	case "json":
		err = vet.WriteJSON(os.Stdout, res)
	case "sarif":
		err = vet.WriteSARIF(os.Stdout, res)
	default:
		err = fmt.Errorf("certchain-vet: unknown format %q (want text, json, or sarif)", *format)
	}
	if err != nil {
		fatal(err)
	}

	if n := len(res.Findings) + len(res.Stale); n > 0 {
		fmt.Fprintf(os.Stderr, "certchain-vet: %d finding(s), %d stale allowlist entr(ies), %d suppressed\n",
			len(res.Findings), len(res.Stale), res.Suppressed)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "certchain-vet:", err)
	os.Exit(1)
}
