// Command certchain-serve runs a local TLS server farm presenting the kinds
// of chains the paper observes — a clean public-style chain, a chain with an
// unnecessary appended certificate, a hybrid government-style chain, and a
// self-signed single — so certchain-scan (or openssl s_client) has real
// endpoints to examine.
//
// Usage:
//
//	certchain-serve -seed 1 [-hold]
//
// Without -hold the farm starts, prints its endpoints, and exits; with -hold
// it serves until interrupted.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"certchains/internal/pki"
	"certchains/internal/serverfarm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "certchain-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed = flag.Int64("seed", 1, "mint seed")
		hold = flag.Bool("hold", false, "keep serving until interrupted")
	)
	flag.Parse()

	mint := pki.NewMint(*seed, time.Now())
	farm := serverfarm.New()
	defer farm.Close()
	if err := populate(mint, farm); err != nil {
		return err
	}
	for _, s := range farm.Servers() {
		fmt.Printf("%-28s %s  (%d certs)\n", s.Domain, s.Addr, len(s.Chain))
	}
	if *hold {
		fmt.Println("serving; interrupt to stop")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
	return nil
}

func populate(mint *pki.Mint, farm *serverfarm.Farm) error {
	root, err := mint.NewRoot(pki.Name("Serve Root CA", "ServeOrg"))
	if err != nil {
		return err
	}
	inter, err := root.NewIntermediate(pki.Name("Serve Issuing CA", "ServeOrg"))
	if err != nil {
		return err
	}

	// Clean public-style chain.
	leaf, err := inter.IssueLeaf(pki.Name("clean.example.test"), pki.WithSANs("clean.example.test"))
	if err != nil {
		return err
	}
	if _, err := farm.Add("clean.example.test", pki.Chain(leaf, inter.Cert)); err != nil {
		return err
	}

	// Chain with an unnecessary appended certificate (the HP "tester"
	// pattern of Appendix F.2).
	leaf2, err := inter.IssueLeaf(pki.Name("extra.example.test"), pki.WithSANs("extra.example.test"))
	if err != nil {
		return err
	}
	tester, err := mint.SelfSigned(pki.Name("tester"))
	if err != nil {
		return err
	}
	if _, err := farm.Add("extra.example.test", pki.Chain(leaf2, inter.Cert, tester)); err != nil {
		return err
	}

	// Hybrid: non-public signing CA certified by the public program
	// (Table 6 pattern).
	signing, err := inter.NewIntermediate(pki.Name("Agency CA B3", "Government Agency"))
	if err != nil {
		return err
	}
	leaf3, err := signing.IssueLeaf(pki.Name("portal.agency.test"), pki.WithSANs("portal.agency.test"))
	if err != nil {
		return err
	}
	if _, err := farm.Add("portal.agency.test", pki.Chain(leaf3, signing.Cert, inter.Cert)); err != nil {
		return err
	}

	// Self-signed single-certificate server (the §4.3 majority).
	selfSigned, err := mint.SelfSigned(pki.Name("printer.campus.test"), pki.WithSANs("printer.campus.test"))
	if err != nil {
		return err
	}
	_, err = farm.Add("printer.campus.test", pki.Chain(selfSigned))
	return err
}
