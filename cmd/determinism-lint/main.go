// Command determinism-lint is a thin alias over `certchain-vet
// -analyzers=determinism`, kept so existing Make targets, CI jobs, and
// muscle memory keep working. The hardcoded allowlist it used to carry now
// lives in the checked-in .certchain-vet.json (with a reason per entry); the
// -allow flag remains for ad-hoc extra fragments and is applied on top.
//
// Exit codes match the original: 0 clean, 1 on findings or error.
//
// Usage:
//
//	determinism-lint [-allow cmd/,examples/] [-tests] [root]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"certchains/internal/analyzers/vet"
)

func main() {
	var (
		allow = flag.String("allow", "",
			"comma-separated path fragments to skip, on top of .certchain-vet.json")
		tests = flag.Bool("tests", false, "analyze _test.go files too")
	)
	flag.Parse()

	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}

	cfg, err := vet.LoadConfig(filepath.Join(root, vet.DefaultConfigName), true)
	if err != nil {
		fatal(err)
	}
	for _, frag := range strings.Split(*allow, ",") {
		if frag = strings.TrimSpace(frag); frag != "" {
			cfg.Allow = append(cfg.Allow, vet.AllowEntry{
				Analyzers: []string{"determinism"},
				Path:      frag,
				Reason:    "determinism-lint -allow flag",
			})
		}
	}

	res, err := vet.Run(vet.Options{
		Root:         root,
		Analyzers:    []string{"determinism"},
		IncludeTests: *tests,
		Config:       cfg,
		// -allow fragments are free-form; don't fail them as stale.
		SkipStaleCheck: true,
	})
	if err != nil {
		fatal(err)
	}
	for _, f := range res.Findings {
		fmt.Println(vet.FindingString(f))
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "determinism-lint: %d finding(s)\n", len(res.Findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "determinism-lint:", err)
	os.Exit(1)
}
