// Command determinism-lint runs the project's determinism analyzer over the
// source tree: report-producing code must not read the wall clock, draw from
// the shared math/rand source, or emit output while ranging over a map (see
// internal/analyzers/determinism). It exits non-zero when any finding
// remains, so `make lint` and CI gate on it.
//
// Usage:
//
//	determinism-lint [-allow cmd/,examples/] [-tests] [root]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"certchains/internal/analyzers/determinism"
)

// defaultAllowlist exempts the code where wall-clock time is the feature,
// not a bug: CLIs and examples (user-facing clocks), the live TLS scanner
// (handshake timing), the CT log's HTTP front end (tree-head timestamps),
// the lint engine's own wall-clock default for interactive use, the
// ingest daemon (poll pacing and snapshot age are operational clocks — the
// analysis it feeds stays keyed by log time), and the observability layer's
// single clock seam (internal/obs/clock.go) — every wall-clock read in obs
// funnels through it, and manifests/traces keep timing data out of the
// deterministic report contract by construction. The resilience layer has
// the same shape: internal/resilience/clock.go is its only wall-clock
// contact (the process-wide jitter seed fallback and the real backoff
// sleeps); tests that need determinism pin Policy.JitterSeed and inject
// Policy.Sleep, so jitter never reaches report bytes.
const defaultAllowlist = "cmd/,examples/,internal/scanner/,internal/ctlog/http.go,internal/lint/lint.go,internal/ingest/,internal/obs/clock.go,internal/resilience/clock.go"

func main() {
	var (
		allow = flag.String("allow", defaultAllowlist,
			"comma-separated path fragments to skip")
		tests = flag.Bool("tests", false, "analyze _test.go files too")
	)
	flag.Parse()

	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}

	cfg := determinism.Config{IncludeTests: *tests}
	for _, frag := range strings.Split(*allow, ",") {
		if frag = strings.TrimSpace(frag); frag != "" {
			cfg.Allowlist = append(cfg.Allowlist, frag)
		}
	}

	findings, err := determinism.AnalyzeDir(root, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "determinism-lint:", err)
		os.Exit(1)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "determinism-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
