// Process-level smoke over the observability artifacts (the same checks the
// CI obs-smoke job runs): a real certchain-analyze invocation with -trace and
// -manifest must produce a Chrome trace with one span set per declared
// pipeline stage and a manifest that passes schema validation, whose report
// digest matches the bytes the run printed.
package main_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"certchains/internal/obs"
)

func TestObsArtifactsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "certchain-analyze")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	manifestPath := filepath.Join(dir, "run.manifest.json")
	cmd := exec.Command(bin,
		"-scale", "0.002",
		"-workers", "2",
		"-json",
		"-revisit=false",
		"-trace", tracePath,
		"-manifest", manifestPath,
	)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}

	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	if err := obs.ValidateChromeTrace(traceData, "observe", "observe-shard", "merge", "finalize"); err != nil {
		t.Errorf("trace invalid: %v", err)
	}

	manifestData, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	if err := obs.ValidateManifest(manifestData); err != nil {
		t.Errorf("manifest invalid: %v", err)
	}

	var m obs.Manifest
	if err := json.Unmarshal(manifestData, &m); err != nil {
		t.Fatal(err)
	}
	if m.Tool != "certchain-analyze" {
		t.Errorf("manifest tool = %q", m.Tool)
	}
	if m.Workers != 2 {
		t.Errorf("manifest workers = %d, want 2", m.Workers)
	}
	// -json prints the report bytes plus one trailing newline.
	printed := bytes.TrimSuffix(stdout.Bytes(), []byte("\n"))
	if got := obs.SHA256Hex(printed); m.ReportSHA256 != got {
		t.Errorf("manifest report_sha256 = %s, but printed report hashes to %s", m.ReportSHA256, got)
	}
	if m.Flags["scale"] != "0.002" {
		t.Errorf("manifest flags = %v, missing scale", m.Flags)
	}
	if sub, err := m.DeterministicSubset(); err != nil || len(sub) == 0 {
		t.Errorf("deterministic subset: %v", err)
	}
}
