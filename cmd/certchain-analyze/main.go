// Command certchain-analyze runs the full measurement pipeline and prints
// every table and figure of the paper's evaluation, plus the §5 revisit
// summary.
//
// Two input modes:
//
//	certchain-analyze -seed 1 -scale 0.01            # generate in memory
//	certchain-analyze -ssl data/ssl.log -x509 data/x509.log -seed 1
//
// The log-file mode still needs the seed so the pipeline rebuilds the same
// trust stores, CT log, and interception registry the logs were generated
// against — exactly how the paper's enrichment consults external databases.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"

	"certchains/internal/analysis"
	"certchains/internal/campus"
	"certchains/internal/chain"
	"certchains/internal/graph"
	"certchains/internal/lint"
	"certchains/internal/obs"
	"certchains/internal/paper"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "certchain-analyze:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed    = flag.Int64("seed", 1, "scenario seed")
		scale   = flag.Float64("scale", 0.01, "fraction of paper-scale volume (in-memory mode)")
		sslPath = flag.String("ssl", "", "path to ssl.log (enables log-file mode)")
		x5Path  = flag.String("x509", "", "path to x509.log (log-file mode)")
		revisit = flag.Bool("revisit", true, "also run the §5 retrospective comparison")
		asJSON  = flag.Bool("json", false, "emit the machine-readable JSON export instead of text")
		format  = flag.String("format", "tsv", "log format for -ssl/-x509: tsv or json")
		dotDir  = flag.String("dot", "", "also write figure5/7/8 Graphviz files into this directory")
		verify  = flag.Bool("verify", false, "check every measured value against the paper's reported targets")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "pipeline worker count; any value produces an identical report")
		batch   = flag.Int("batch", 0, "streaming handoff batch size (0 = default); any value produces an identical report")
		lintPro = flag.String("lint", "", "lint every chain and append a corpus prevalence table; value is the check profile (paper, strict, all)")

		tracePath    = flag.String("trace", "", "write a Chrome trace-event JSON file of the run's stage spans (view in chrome://tracing or Perfetto)")
		manifestPath = flag.String("manifest", "", "write a run provenance manifest (seed, flags, input digests, stage costs, build info) to this path")
		metricsAddr  = flag.String("metrics-addr", "", "serve /metrics (Prometheus text format) on this address for the duration of the run")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProfile   = flag.String("memprofile", "", "write a heap profile to this path at exit")
		logFormat    = flag.String("log-format", "text", "diagnostic log format: text or json")
		logLevel     = flag.String("log-level", "info", "diagnostic log level: debug, info, warn, error")
	)
	flag.Parse()

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				logger.Error("heap profile", "err", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				logger.Error("heap profile", "err", err)
			}
		}()
	}

	tracer := obs.NewTracer()
	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg, "certchain-analyze")
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		go func() { _ = http.Serve(ln, mux) }()
		logger.Info("metrics", "addr", fmt.Sprintf("http://%s/metrics", ln.Addr()))
	}

	cfg := campus.DefaultConfig()
	cfg.Seed = *seed
	cfg.Scale = *scale
	scenario, err := campus.Generate(cfg)
	if err != nil {
		return err
	}

	pipeline := analysis.FromScenario(scenario)
	pipeline.Workers = *workers
	pipeline.Batch = *batch
	pipeline.Tracer = tracer
	if *lintPro != "" {
		// The scenario's collection end is the deterministic reference time:
		// the same inputs always produce the same lint prevalence table.
		pipeline.Linter = lint.New(scenario.Classifier, lint.Config{
			Now:     scenario.End(),
			Profile: *lintPro,
		})
	}

	observations := scenario.Observations
	var report *analysis.Report
	var inputs []obs.InputDigest
	if *sslPath != "" || *x5Path != "" {
		if *sslPath == "" || *x5Path == "" {
			return fmt.Errorf("log-file mode needs both -ssl and -x509")
		}
		for _, path := range []string{*sslPath, *x5Path} {
			d, err := obs.DigestFile(path)
			if err != nil {
				return err
			}
			inputs = append(inputs, d)
		}
		sslF, err := os.Open(*sslPath)
		if err != nil {
			return err
		}
		defer sslF.Close()
		x5F, err := os.Open(*x5Path)
		if err != nil {
			return err
		}
		defer x5F.Close()
		f := analysis.FormatTSV
		switch *format {
		case "tsv":
		case "json":
			f = analysis.FormatJSON
		default:
			return fmt.Errorf("unknown format %q (tsv or json)", *format)
		}
		// Stream the Zeek join straight into the sharded pipeline; the
		// observation slice is only retained when -dot needs a second pass.
		obsCh := make(chan *campus.Observation, 256)
		loadErr := make(chan error, 1)
		loaded := 0
		observations = nil
		loadSpan := tracer.Start("load", "load/zeek")
		go func() {
			defer close(obsCh)
			err := analysis.LoadFormatFunc(f, sslF, x5F, func(o *campus.Observation) error {
				loaded++
				if *dotDir != "" {
					observations = append(observations, o)
				}
				obsCh <- o
				return nil
			})
			loadSpan.SetRecords(int64(loaded))
			loadSpan.End()
			loadErr <- err
		}()
		report = pipeline.RunStream(obsCh, *workers)
		if err := <-loadErr; err != nil {
			return err
		}
		fmt.Printf("loaded %d chain observations from logs\n\n", loaded)
	} else {
		report = pipeline.Run(observations)
	}
	var reportBytes []byte
	if *asJSON {
		data, err := report.JSON()
		if err != nil {
			return err
		}
		reportBytes = data
	} else {
		reportBytes = []byte(report.Render())
	}

	// Artifacts cover both output modes; emit them before the JSON early
	// return. All pipeline spans have ended by now, so stage aggregates are
	// final.
	fillRunMetrics(reg, tracer)
	emitArtifacts := func() error {
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				return err
			}
			if err := tracer.WriteChromeTrace(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			logger.Info("wrote trace", "path", *tracePath)
		}
		if *manifestPath != "" {
			man := buildManifest(*seed, *scale, *workers, inputs, tracer, reportBytes)
			if err := man.WriteFile(*manifestPath); err != nil {
				return err
			}
			logger.Info("wrote manifest", "path", *manifestPath, "report_sha256", man.ReportSHA256)
		}
		return nil
	}

	if *asJSON {
		os.Stdout.Write(reportBytes)
		fmt.Println()
		return emitArtifacts()
	}
	os.Stdout.Write(reportBytes)
	if err := emitArtifacts(); err != nil {
		return err
	}

	if *revisit {
		fmt.Println()
		rr := analysis.AnalyzeRevisit(scenario.Classifier, scenario.Revisit, "Lets Encrypt")
		fmt.Print(rr.Render())
	}

	if *verify {
		fmt.Println("\nPaper-vs-measured verification:")
		checks := paper.Verify(report)
		checks = append(checks, paper.VerifyRevisit(analysis.AnalyzeRevisit(scenario.Classifier, scenario.Revisit, "Lets Encrypt"))...)
		failed := 0
		for _, c := range checks {
			fmt.Println(" ", c)
			if !c.Pass {
				failed++
			}
		}
		fmt.Printf("%d checks, %d failed\n", len(checks), failed)
		if failed > 0 {
			return fmt.Errorf("%d reproduction checks failed", failed)
		}
	}

	if *dotDir != "" {
		if err := writeDOTFigures(scenario, observations, *dotDir); err != nil {
			return err
		}
		fmt.Printf("\nwrote figure5.dot, figure7.dot, figure8.dot to %s (render with `dot -Tsvg`)\n", *dotDir)
	}
	return nil
}

// buildManifest assembles the run's provenance record. Flags record only
// what was explicitly set; the deterministic subset additionally drops
// operational flags (workers, artifact paths), so equivalent runs at any
// width produce byte-identical subsets.
func buildManifest(seed int64, scale float64, workers int, inputs []obs.InputDigest, tracer *obs.Tracer, reportBytes []byte) *obs.Manifest {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	flags := make(map[string]string)
	flag.Visit(func(f *flag.Flag) { flags[f.Name] = f.Value.String() })
	return &obs.Manifest{
		Tool:         "certchain-analyze",
		Seed:         seed,
		Scale:        scale,
		Workers:      workers,
		Flags:        flags,
		Inputs:       inputs,
		Stages:       tracer.Stages(),
		ReportSHA256: obs.SHA256Hex(reportBytes),
		WallNS:       tracer.WallNS(),
		Build:        obs.Build(),
	}
}

// fillRunMetrics publishes the finished run's stage costs to the registry
// behind -metrics-addr: per-stage record and span totals as gauges and each
// stage's wall time as a duration histogram observation.
func fillRunMetrics(reg *obs.Registry, tracer *obs.Tracer) {
	records := reg.Gauge("certchain_stage_records", "Records processed per pipeline stage.", "stage")
	spans := reg.Gauge("certchain_stage_spans", "Spans recorded per pipeline stage.", "stage")
	dur := reg.Histogram("certchain_stage_duration_seconds", "Wall time per pipeline stage.", obs.DefaultDurationBuckets, "stage")
	for _, st := range tracer.Stages() {
		records.With(st.Stage).Set(float64(st.Records))
		spans.With(st.Stage).Set(float64(st.Spans))
		dur.With(st.Stage).Observe(float64(st.WallNS) / 1e9)
	}
}

// writeDOTFigures regenerates Figures 5, 7 and 8 as Graphviz files.
func writeDOTFigures(scenario *campus.Scenario, observations []*campus.Observation, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	graphs := map[string]struct {
		cat  chain.Category
		opts graph.DOTOptions
	}{
		"figure5.dot": {chain.Hybrid, graph.DOTOptions{Name: "figure5_hybrid", MaxNodes: 800}},
		"figure7.dot": {chain.NonPublicDBOnly, graph.DOTOptions{Name: "figure7_nonpub", MaxNodes: 800}},
		"figure8.dot": {chain.Interception, graph.DOTOptions{Name: "figure8_interception", OmitLeaves: true, MaxNodes: 800}},
	}
	names := make([]string, 0, len(graphs))
	for name := range graphs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		spec := graphs[name]
		g := graph.New()
		for _, o := range observations {
			if len(o.Chain) > 30 {
				continue
			}
			a := scenario.Classifier.Analyze(o.Chain)
			if a.Category != spec.cat {
				continue
			}
			g.AddChain(o.Chain, a.Classes)
		}
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := g.WriteDOT(f, spec.opts); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
