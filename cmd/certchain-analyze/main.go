// Command certchain-analyze runs the full measurement pipeline and prints
// every table and figure of the paper's evaluation, plus the §5 revisit
// summary.
//
// Two input modes:
//
//	certchain-analyze -seed 1 -scale 0.01            # generate in memory
//	certchain-analyze -ssl data/ssl.log -x509 data/x509.log -seed 1
//
// The log-file mode still needs the seed so the pipeline rebuilds the same
// trust stores, CT log, and interception registry the logs were generated
// against — exactly how the paper's enrichment consults external databases.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"certchains/internal/analysis"
	"certchains/internal/campus"
	"certchains/internal/chain"
	"certchains/internal/graph"
	"certchains/internal/lint"
	"certchains/internal/paper"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "certchain-analyze:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed    = flag.Int64("seed", 1, "scenario seed")
		scale   = flag.Float64("scale", 0.01, "fraction of paper-scale volume (in-memory mode)")
		sslPath = flag.String("ssl", "", "path to ssl.log (enables log-file mode)")
		x5Path  = flag.String("x509", "", "path to x509.log (log-file mode)")
		revisit = flag.Bool("revisit", true, "also run the §5 retrospective comparison")
		asJSON  = flag.Bool("json", false, "emit the machine-readable JSON export instead of text")
		format  = flag.String("format", "tsv", "log format for -ssl/-x509: tsv or json")
		dotDir  = flag.String("dot", "", "also write figure5/7/8 Graphviz files into this directory")
		verify  = flag.Bool("verify", false, "check every measured value against the paper's reported targets")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "pipeline worker count; any value produces an identical report")
		lintPro = flag.String("lint", "", "lint every chain and append a corpus prevalence table; value is the check profile (paper, strict, all)")
	)
	flag.Parse()

	cfg := campus.DefaultConfig()
	cfg.Seed = *seed
	cfg.Scale = *scale
	scenario, err := campus.Generate(cfg)
	if err != nil {
		return err
	}

	pipeline := analysis.FromScenario(scenario)
	pipeline.Workers = *workers
	if *lintPro != "" {
		// The scenario's collection end is the deterministic reference time:
		// the same inputs always produce the same lint prevalence table.
		pipeline.Linter = lint.New(scenario.Classifier, lint.Config{
			Now:     scenario.End(),
			Profile: *lintPro,
		})
	}

	observations := scenario.Observations
	var report *analysis.Report
	if *sslPath != "" || *x5Path != "" {
		if *sslPath == "" || *x5Path == "" {
			return fmt.Errorf("log-file mode needs both -ssl and -x509")
		}
		sslF, err := os.Open(*sslPath)
		if err != nil {
			return err
		}
		defer sslF.Close()
		x5F, err := os.Open(*x5Path)
		if err != nil {
			return err
		}
		defer x5F.Close()
		f := analysis.FormatTSV
		switch *format {
		case "tsv":
		case "json":
			f = analysis.FormatJSON
		default:
			return fmt.Errorf("unknown format %q (tsv or json)", *format)
		}
		// Stream the Zeek join straight into the sharded pipeline; the
		// observation slice is only retained when -dot needs a second pass.
		obsCh := make(chan *campus.Observation, 256)
		loadErr := make(chan error, 1)
		loaded := 0
		observations = nil
		go func() {
			defer close(obsCh)
			loadErr <- analysis.LoadFormatFunc(f, sslF, x5F, func(o *campus.Observation) error {
				loaded++
				if *dotDir != "" {
					observations = append(observations, o)
				}
				obsCh <- o
				return nil
			})
		}()
		report = pipeline.RunStream(obsCh, *workers)
		if err := <-loadErr; err != nil {
			return err
		}
		fmt.Printf("loaded %d chain observations from logs\n\n", loaded)
	} else {
		report = pipeline.Run(observations)
	}
	if *asJSON {
		data, err := report.JSON()
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
		fmt.Println()
		return nil
	}
	fmt.Print(report.Render())

	if *revisit {
		fmt.Println()
		rr := analysis.AnalyzeRevisit(scenario.Classifier, scenario.Revisit, "Lets Encrypt")
		fmt.Print(rr.Render())
	}

	if *verify {
		fmt.Println("\nPaper-vs-measured verification:")
		checks := paper.Verify(report)
		checks = append(checks, paper.VerifyRevisit(analysis.AnalyzeRevisit(scenario.Classifier, scenario.Revisit, "Lets Encrypt"))...)
		failed := 0
		for _, c := range checks {
			fmt.Println(" ", c)
			if !c.Pass {
				failed++
			}
		}
		fmt.Printf("%d checks, %d failed\n", len(checks), failed)
		if failed > 0 {
			return fmt.Errorf("%d reproduction checks failed", failed)
		}
	}

	if *dotDir != "" {
		if err := writeDOTFigures(scenario, observations, *dotDir); err != nil {
			return err
		}
		fmt.Printf("\nwrote figure5.dot, figure7.dot, figure8.dot to %s (render with `dot -Tsvg`)\n", *dotDir)
	}
	return nil
}

// writeDOTFigures regenerates Figures 5, 7 and 8 as Graphviz files.
func writeDOTFigures(scenario *campus.Scenario, observations []*campus.Observation, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	graphs := map[string]struct {
		cat  chain.Category
		opts graph.DOTOptions
	}{
		"figure5.dot": {chain.Hybrid, graph.DOTOptions{Name: "figure5_hybrid", MaxNodes: 800}},
		"figure7.dot": {chain.NonPublicDBOnly, graph.DOTOptions{Name: "figure7_nonpub", MaxNodes: 800}},
		"figure8.dot": {chain.Interception, graph.DOTOptions{Name: "figure8_interception", OmitLeaves: true, MaxNodes: 800}},
	}
	names := make([]string, 0, len(graphs))
	for name := range graphs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		spec := graphs[name]
		g := graph.New()
		for _, o := range observations {
			if len(o.Chain) > 30 {
				continue
			}
			a := scenario.Classifier.Analyze(o.Chain)
			if a.Category != spec.cat {
				continue
			}
			g.AddChain(o.Chain, a.Classes)
		}
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := g.WriteDOT(f, spec.opts); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
