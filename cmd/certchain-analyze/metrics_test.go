// In-process coverage for the -metrics-addr surface: the registry
// fillRunMetrics populates from a traced run must render a conformant
// exposition with one stage sample set per traced stage.
package main

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"certchains/internal/obs"
)

func TestFillRunMetricsConformance(t *testing.T) {
	clock := func() func() time.Time {
		t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
		n := 0
		return func() time.Time { n++; return t0.Add(time.Duration(n) * time.Millisecond) }
	}()
	tracer := obs.NewTracerClock(clock)
	sp := tracer.Start("observe", "observe").SetRecords(100)
	sh := tracer.Start("observe-shard", "observe/shard0").SetRecords(100)
	sh.End()
	sp.End()
	m := tracer.Start("merge", "merge")
	m.End()

	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg, "certchain-analyze")
	fillRunMetrics(reg, tracer)

	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if err := obs.ValidateExposition(rec.Body.Bytes()); err != nil {
		t.Fatalf("/metrics fails conformance: %v\n%s", err, body)
	}
	for _, want := range []string{
		`certchain_stage_records{stage="observe"} 100`,
		`certchain_stage_spans{stage="merge"} 1`,
		`certchain_stage_duration_seconds_count{stage="observe-shard"} 1`,
		`certchain_build_info{component="certchain-analyze"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}
