// Command certchain-gen generates a synthetic campus dataset — the Zeek
// ssl.log and x509.log files the paper's pipeline consumes — from a seed and
// a scale factor.
//
// Usage:
//
//	certchain-gen -out ./data -seed 1 -scale 0.01 -max-conns 50
//
// The scale factor multiplies the paper's bulk counts (731,175 chains /
// 259.30 M connections); structural absolutes (the 321 hybrid chains, the 80
// interception issuers) are always generated in full.
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"certchains/internal/analysis"
	"certchains/internal/campus"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "certchain-gen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out      = flag.String("out", "data", "output directory for ssl.log and x509.log")
		seed     = flag.Int64("seed", 1, "scenario seed (same seed, same dataset)")
		scale    = flag.Float64("scale", 0.01, "fraction of paper-scale volume")
		maxConns = flag.Int64("max-conns", 50, "cap on ssl.log rows per chain observation (0 = unbounded)")
		format   = flag.String("format", "tsv", "log format: tsv (Zeek default) or json (ND-JSON)")
		gzipOut  = flag.Bool("gzip", false, "gzip-compress the log files (.gz suffix)")
	)
	flag.Parse()

	cfg := campus.DefaultConfig()
	cfg.Seed = *seed
	cfg.Scale = *scale
	scenario, err := campus.Generate(cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	suffix := ""
	if *gzipOut {
		suffix = ".gz"
	}
	sslPath := filepath.Join(*out, "ssl.log"+suffix)
	x509Path := filepath.Join(*out, "x509.log"+suffix)
	sslF, err := os.Create(sslPath)
	if err != nil {
		return err
	}
	defer sslF.Close()
	x509F, err := os.Create(x509Path)
	if err != nil {
		return err
	}
	defer x509F.Close()
	var sslW io.Writer = sslF
	var x509W io.Writer = x509F
	var gzClosers []*gzip.Writer
	if *gzipOut {
		gs, gx := gzip.NewWriter(sslF), gzip.NewWriter(x509F)
		sslW, x509W = gs, gx
		gzClosers = append(gzClosers, gs, gx)
	}

	opts := analysis.WriteOptions{MaxConnsPerObservation: *maxConns}
	switch *format {
	case "tsv":
	case "json":
		opts.Format = analysis.FormatJSON
	default:
		return fmt.Errorf("unknown format %q (tsv or json)", *format)
	}
	if err := analysis.Write(scenario.Observations, sslW, x509W, opts); err != nil {
		return err
	}
	for _, g := range gzClosers {
		if err := g.Close(); err != nil {
			return err
		}
	}

	tot := scenario.Totals()
	fmt.Printf("generated %d chain observations (seed=%d scale=%g)\n", len(scenario.Observations), *seed, *scale)
	for cat, n := range tot.Chains {
		fmt.Printf("  %-20s %8d chains  %12d connections\n", cat.String(), n, tot.Conns[cat])
	}
	fmt.Printf("wrote %s and %s\n", sslPath, x509Path)
	return nil
}
