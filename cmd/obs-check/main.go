// Command obs-check validates observability artifacts from the shell — the
// CI smoke jobs' single entry point for every schema gate the obs package
// defines. Each flag names an artifact; all given artifacts must pass or
// the command exits non-zero naming the first failure.
//
//	obs-check -trace run.trace.json -min-procs 3 -stages dist-ingest,dist-merge,finalize
//	obs-check -manifest run.manifest.json
//	obs-check -serve-bench BENCH_serve.json
//	obs-check -exposition metrics.prom
//
// -trace runs obs.ValidateSplicedChromeTrace: structural Chrome trace-event
// checks, the required stage set, and (with -min-procs > 1) spans from at
// least that many distinct processes — how dist-smoke proves the spliced
// cross-process artifact really carries coordinator and worker tracks.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"certchains/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obs-check:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		trace      = flag.String("trace", "", "validate this Chrome trace-event file")
		minProcs   = flag.Int("min-procs", 1, "with -trace: require spans from at least this many distinct processes")
		stagesCSV  = flag.String("stages", "", "with -trace: comma-separated stages that must each have at least one span")
		manifest   = flag.String("manifest", "", "validate this run provenance manifest")
		serveBench = flag.String("serve-bench", "", "validate this BENCH_serve.json document")
		exposition = flag.String("exposition", "", "validate this Prometheus exposition text file")
	)
	flag.Parse()
	if *trace == "" && *manifest == "" && *serveBench == "" && *exposition == "" {
		flag.Usage()
		return fmt.Errorf("nothing to check: give -trace, -manifest, -serve-bench, or -exposition")
	}

	checks := []struct {
		path  string
		check func([]byte) error
	}{
		{*trace, func(data []byte) error {
			var stages []string
			for _, s := range strings.Split(*stagesCSV, ",") {
				if s = strings.TrimSpace(s); s != "" {
					stages = append(stages, s)
				}
			}
			return obs.ValidateSplicedChromeTrace(data, *minProcs, stages...)
		}},
		{*manifest, obs.ValidateManifest},
		{*serveBench, obs.ValidateServeBench},
		{*exposition, obs.ValidateExposition},
	}
	for _, c := range checks {
		if c.path == "" {
			continue
		}
		data, err := os.ReadFile(c.path)
		if err != nil {
			return err
		}
		if err := c.check(data); err != nil {
			return fmt.Errorf("%s: %w", c.path, err)
		}
		fmt.Printf("obs-check: %s ok\n", c.path)
	}
	return nil
}
