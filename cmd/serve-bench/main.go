// Command serve-bench is the serving-layer load harness: it boots an
// in-process certchain-ingestd admin surface, replays a seeded campus
// capture into the tailed logs so ingest is genuinely running, and drives
// GET /report (text and JSON) at sustained concurrency. The result is
// BENCH_serve.json — p50/p95/p99 latency, QPS, and error counts per route —
// the serving-path baseline ROADMAP's serving item calls for, validated by
// obs.ValidateServeBench in CI.
//
//	serve-bench -seed 1 -scale 0.01 -concurrency 4 -duration 2s -out BENCH_serve.json
//
// Latency quantiles come from a client-side obs histogram via
// Series.Quantile — the same estimator Prometheus's histogram_quantile
// applies to the daemon's own certchain_http_request_seconds series, so the
// committed baseline and a dashboard read agree. The harness also scrapes
// the daemon's /metrics once and fails if the exposition does not pass
// obs.ValidateExposition — the serving telemetry is load-tested and
// conformance-checked in one pass.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"certchains/internal/analysis"
	"certchains/internal/campus"
	"certchains/internal/ingest"
	"certchains/internal/obs"
	"certchains/internal/resilience"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve-bench:", err)
		os.Exit(1)
	}
}

// benchRoutes are the driven report variants; the label is the route name
// BENCH_serve.json carries, the query is what the client requests.
var benchRoutes = []struct{ label, query string }{
	{"/report", "/report"},
	{"/report?format=json", "/report?format=json"},
}

func run() error {
	var (
		seed        = flag.Int64("seed", 1, "scenario seed")
		scale       = flag.Float64("scale", 0.01, "fraction of paper-scale volume")
		concurrency = flag.Int("concurrency", 4, "concurrent report clients")
		duration    = flag.Duration("duration", 2*time.Second, "measured load window")
		warmup      = flag.Duration("warmup", 300*time.Millisecond, "unmeasured warmup before the window")
		out         = flag.String("out", "BENCH_serve.json", "output path")
	)
	flag.Parse()
	if *concurrency < 1 {
		return fmt.Errorf("concurrency must be >= 1")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cfg := campus.DefaultConfig()
	cfg.Seed = *seed
	cfg.Scale = *scale
	scenario, err := campus.Generate(cfg)
	if err != nil {
		return err
	}

	// The daemon tails real files; the replay goroutine below feeds them for
	// the whole bench so /report is served from a moving, mid-ingest state.
	dir, err := os.MkdirTemp("", "serve-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	sslPath := filepath.Join(dir, "ssl.log")
	x5Path := filepath.Join(dir, "x509.log")
	for _, p := range []string{sslPath, x5Path} {
		if err := os.WriteFile(p, nil, 0o644); err != nil {
			return err
		}
	}

	ing := ingest.New(analysis.FromScenario(scenario), ingest.Config{
		SSLPath:  sslPath,
		X509Path: x5Path,
	})
	d := ingest.NewDaemon(ing, ingest.DaemonConfig{
		Addr: "127.0.0.1:0",
		Poll: 50 * time.Millisecond,
	})
	daemonErr := make(chan error, 1)
	go func() { daemonErr <- d.Run(ctx) }()
	select {
	case <-d.Started():
	case err := <-daemonErr:
		return fmt.Errorf("daemon never started: %w", err)
	}
	base := "http://" + d.Addr()

	// Pace the replay across the full bench (warmup + window), so ingest
	// keeps folding new observations while clients read.
	go replay(ctx, scenario, sslPath, x5Path, *warmup+*duration)

	client := &http.Client{Timeout: 30 * time.Second}
	reg := obs.NewRegistry()
	latency := reg.Histogram("servebench_request_seconds",
		"Client-observed /report latency.", obs.DefaultDurationBuckets, "route")
	// allLatency folds every route into one series for the headline
	// quantiles — observed alongside the per-route series, since bucket
	// counts sum commutatively either way.
	allLatency := reg.Histogram("servebench_all_request_seconds",
		"Client-observed latency across all routes.", obs.DefaultDurationBuckets).With()
	var requests, errors [2]atomic.Int64

	var recording atomic.Bool
	var wg sync.WaitGroup
	loadCtx, stopLoad := context.WithCancel(ctx)
	defer stopLoad()
	for c := 0; c < *concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; loadCtx.Err() == nil; i++ {
				ri := i % len(benchRoutes)
				t0 := time.Now()
				ok := fetch(loadCtx, client, base+benchRoutes[ri].query)
				if loadCtx.Err() != nil {
					return // aborted mid-request by the window closing
				}
				if recording.Load() {
					sec := time.Since(t0).Seconds()
					latency.With(benchRoutes[ri].label).Observe(sec)
					allLatency.Observe(sec)
					requests[ri].Add(1)
					if !ok {
						errors[ri].Add(1)
					}
				}
			}
		}(c)
	}

	if err := resilience.Sleep(ctx, *warmup); err != nil {
		return err
	}
	recording.Store(true)
	t0 := time.Now()
	if err := resilience.Sleep(ctx, *duration); err != nil {
		return err
	}
	// On a loaded box a short window can close before any in-flight request
	// completes; stretch it until at least one sample lands so the baseline
	// is always well-formed. QPS uses the stretched window, so the numbers
	// stay honest.
	for requests[0].Load()+requests[1].Load() == 0 && time.Since(t0) < *duration+time.Minute {
		if err := resilience.Sleep(ctx, 50*time.Millisecond); err != nil {
			return err
		}
	}
	recording.Store(false)
	window := time.Since(t0)
	stopLoad()
	wg.Wait()

	// Conformance gate: the daemon's exposition under load must validate.
	if err := checkExposition(ctx, client, base); err != nil {
		return err
	}

	bench := obs.ServeBench{
		Tool:        "serve-bench",
		Seed:        *seed,
		Scale:       *scale,
		Concurrency: *concurrency,
		DurationNS:  window.Nanoseconds(),
		Build:       obs.Build(),
	}
	for ri, rt := range benchRoutes {
		s := latency.With(rt.label)
		bench.Routes = append(bench.Routes, obs.ServeBenchRoute{
			Route:    rt.label,
			Requests: requests[ri].Load(),
			Errors:   errors[ri].Load(),
			Latency: obs.ServeBenchLatency{
				P50Sec: s.Quantile(0.50),
				P95Sec: s.Quantile(0.95),
				P99Sec: s.Quantile(0.99),
			},
		})
		bench.Requests += requests[ri].Load()
		bench.Errors += errors[ri].Load()
	}
	bench.Latency = obs.ServeBenchLatency{
		P50Sec: allLatency.Quantile(0.50), P95Sec: allLatency.Quantile(0.95), P99Sec: allLatency.Quantile(0.99),
	}
	bench.QPS = float64(bench.Requests) / window.Seconds()

	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := obs.ValidateServeBench(data); err != nil {
		return fmt.Errorf("self-check: %w", err)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("serve-bench: %d requests (%d errors) at %.0f req/s over %s, p50 %.2fms p95 %.2fms p99 %.2fms -> %s\n",
		bench.Requests, bench.Errors, bench.QPS, window.Round(time.Millisecond),
		bench.Latency.P50Sec*1e3, bench.Latency.P95Sec*1e3, bench.Latency.P99Sec*1e3, *out)

	cancel()
	return <-daemonErr
}

// fetch drives one request and reports whether it succeeded (transport OK
// and status 200). The body is drained so connections are reused.
func fetch(ctx context.Context, client *http.Client, url string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false
	}
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// checkExposition scrapes /metrics once after the load and validates the
// daemon's exposition — including the middleware's serving families — with
// the repository's Prometheus conformance checker.
func checkExposition(ctx context.Context, client *http.Client, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("scrape /metrics: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return fmt.Errorf("scrape /metrics: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape /metrics: status %d", resp.StatusCode)
	}
	if err := obs.ValidateExposition(body); err != nil {
		return fmt.Errorf("daemon exposition under load: %w", err)
	}
	return nil
}

// replay feeds the scenario into the tailed logs, paced so the capture
// spans roughly the whole bench.
func replay(ctx context.Context, s *campus.Scenario, sslPath, x5Path string, span time.Duration) {
	sslF, err := os.OpenFile(sslPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	defer sslF.Close()
	x5F, err := os.OpenFile(x5Path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	defer x5F.Close()

	var wallStart, logStart time.Time
	campus.Replay(s.Observations, sslF, x5F, campus.ReplayOptions{
		MaxConnsPerObservation: 4,
		BatchRecords:           16,
		Pace: func(ts time.Time) error {
			if logStart.IsZero() {
				logStart, wallStart = ts, time.Now()
				return nil
			}
			logSpan := s.End().Sub(logStart)
			if logSpan <= 0 {
				return ctx.Err()
			}
			frac := float64(ts.Sub(logStart)) / float64(logSpan)
			due := wallStart.Add(time.Duration(frac * float64(span)))
			wait := time.Until(due)
			if wait <= 0 {
				return ctx.Err()
			}
			return resilience.Sleep(ctx, wait)
		},
	})
}
