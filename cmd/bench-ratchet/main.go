// Command bench-ratchet is the CI gate on pipeline performance: it replays
// the pipeline benchmark harness with the committed baseline's own seed,
// scale, and iteration count, then compares the fresh run against
// BENCH_pipeline.json. The run fails when the observe stage loses more than
// the records/sec budget (default 10%) or any stage's allocs_per_op grows
// beyond a small jitter allowance — improvements always pass, so the
// committed baseline only ratchets forward (regenerate it with
// cmd/pipeline-bench after an intentional optimization).
//
//	bench-ratchet -baseline BENCH_pipeline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"certchains/internal/obs"
	"certchains/internal/pipebench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench-ratchet:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		baselinePath = flag.String("baseline", "BENCH_pipeline.json", "committed baseline to ratchet against")
		rpsBudget    = flag.Float64("max-rps-regression", 0, "override fractional observe records/sec budget (0 = default)")
		allocBudget  = flag.Float64("max-alloc-growth", -1, "override fractional allocs_per_op budget (-1 = default)")
		retries      = flag.Int("retries", 2, "extra fresh runs before a wall-clock failure is final")
		freshOut     = flag.String("fresh-out", "", "also write the fresh run's document here")
	)
	flag.Parse()

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	if err := obs.ValidatePipelineBench(data); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var baseline obs.PipelineBench
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}

	budget := obs.DefaultPipelineRatchet()
	if *rpsBudget > 0 {
		budget.MaxRPSRegression = *rpsBudget
	}
	if *allocBudget >= 0 {
		budget.MaxAllocGrowth = *allocBudget
	}

	// The fresh side gets double the baseline's iterations, and a wall-clock
	// failure is retried: scheduler noise on a shared runner then fails
	// toward passing, while a genuine regression (the slow paths this gate
	// exists for are multiples, not percentages) fails every attempt.
	// Allocation counts are deterministic, so their verdict never flips.
	iters := 2 * baseline.Iters
	fmt.Printf("baseline %s: seed=%d scale=%g iters=%d; fresh runs use iters=%d\n",
		*baselinePath, baseline.Seed, baseline.Scale, baseline.Iters, iters)
	var lastErr error
	for attempt := 0; attempt <= *retries; attempt++ {
		fresh, err := pipebench.Run(baseline.Seed, baseline.Scale, iters)
		if err != nil {
			return fmt.Errorf("fresh run: %w", err)
		}
		freshData, err := json.MarshalIndent(fresh, "", "  ")
		if err != nil {
			return err
		}
		if err := obs.ValidatePipelineBench(append(freshData, '\n')); err != nil {
			return fmt.Errorf("fresh run: %w", err)
		}
		if *freshOut != "" {
			if err := os.WriteFile(*freshOut, append(freshData, '\n'), 0o644); err != nil {
				return err
			}
		}
		for _, br := range baseline.Runs {
			if fr := fresh.Run(br.Workers); fr != nil {
				bo, fo := br.Stage("observe"), fr.Stage("observe")
				fmt.Printf("attempt %d workers=%d  observe %.0f -> %.0f records/sec  allocs %d -> %d\n",
					attempt+1, br.Workers, bo.RecordsPerSec, fo.RecordsPerSec, bo.AllocsPerOp, fo.AllocsPerOp)
			}
		}
		lastErr = obs.ComparePipelineBench(&baseline, fresh, budget)
		if lastErr == nil {
			fmt.Println("ratchet ok")
			return nil
		}
		fmt.Fprintln(os.Stderr, "bench-ratchet:", lastErr)
	}
	return lastErr
}
