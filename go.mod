module certchains

go 1.22
