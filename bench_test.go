// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md §4 for the experiment index), plus ablations of the design
// choices DESIGN.md §6 calls out. Each benchmark measures the computation
// that produces the artifact and asserts its headline shape, so the suite
// doubles as an end-to-end regression check.
package certchains

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"certchains/internal/analysis"
	"certchains/internal/campus"
	"certchains/internal/certmodel"
	"certchains/internal/chain"
	"certchains/internal/dn"
	"certchains/internal/graph"
	"certchains/internal/intercept"
	"certchains/internal/lint"
	"certchains/internal/pki"
	"certchains/internal/scanner"
	"certchains/internal/serverfarm"
	"certchains/internal/validate"
)

// benchScale keeps generation fast while preserving every structural
// absolute (321 hybrids, 80 interception issuers, taxonomy counts).
const benchScale = 0.002

var (
	benchOnce     sync.Once
	benchScenario *campus.Scenario
	benchReport   *analysis.Report
)

func benchSetup(b *testing.B) (*campus.Scenario, *analysis.Report) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := campus.DefaultConfig()
		cfg.Scale = benchScale
		s, err := campus.Generate(cfg)
		if err != nil {
			panic(err)
		}
		benchScenario = s
		benchReport = analysis.FromScenario(s).Run(s.Observations)
	})
	return benchScenario, benchReport
}

// filterObs selects observations by category.
func filterObs(s *campus.Scenario, cat chain.Category) []*campus.Observation {
	var out []*campus.Observation
	for _, o := range s.Observations {
		if o.Category == cat {
			out = append(out, o)
		}
	}
	return out
}

// --- Table 1: interception issuer categories --------------------------------

func BenchmarkTable1_InterceptionCategories(b *testing.B) {
	s, _ := benchSetup(b)
	obs := filterObs(s, chain.Interception)
	det := intercept.NewDetector(s.DB, s.CT)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flagged := 0
		for _, o := range obs {
			if o.Domain == "" {
				continue
			}
			if det.Examine(o.Chain[0], o.Domain, o.First) == intercept.IssuerMismatch {
				flagged++
			}
		}
		if flagged == 0 {
			b.Fatal("no interception issuers detected")
		}
	}
	b.ReportMetric(float64(s.InterceptRegistry.Len()), "issuers")
}

// --- Table 2: chain category statistics --------------------------------------

func BenchmarkTable2_ChainStats(b *testing.B) {
	s, _ := benchSetup(b)
	p := analysis.FromScenario(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := p.Run(s.Observations)
		if r.Table2.PerCategory[chain.Hybrid].Chains != 321 {
			b.Fatal("hybrid chain count drifted")
		}
	}
	b.ReportMetric(float64(len(s.Observations)), "chains")
}

// observationBytes approximates the input volume one observation carries
// into the pipeline (fingerprints, DNs, endpoint strings), so the parallel
// benchmark can report throughput via b.SetBytes.
func observationBytes(o *campus.Observation) int64 {
	n := int64(len(o.ServerIP) + len(o.Domain) + 16)
	for _, ip := range o.ClientIPs {
		n += int64(len(ip))
	}
	for _, m := range o.Chain {
		n += int64(len(m.FP) + len(m.SerialHex))
		n += int64(len(m.Issuer.Normalized()) + len(m.Subject.Normalized()))
	}
	return n
}

// BenchmarkPipelineParallel sweeps the worker pool width over the Table 2
// workload: the same full-report run BenchmarkTable2_ChainStats measures
// sequentially, at each shard count. Compare ns/op across sub-benchmarks for
// the scaling curve; every width asserts the same headline shape, so the
// sweep also re-checks determinism under load.
func BenchmarkPipelineParallel(b *testing.B) {
	s, _ := benchSetup(b)
	p := analysis.FromScenario(s)
	var inputBytes int64
	for _, o := range s.Observations {
		inputBytes += observationBytes(o)
	}
	widths := []int{1, 2, 4, 8, runtime.GOMAXPROCS(0)}
	for _, w := range widths {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.SetBytes(inputBytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := p.RunParallel(s.Observations, w)
				if r.Table2.PerCategory[chain.Hybrid].Chains != 321 {
					b.Fatal("hybrid chain count drifted")
				}
			}
			b.ReportMetric(float64(len(s.Observations)), "chains")
		})
	}
}

// --- Table 3: hybrid taxonomy -------------------------------------------------

func BenchmarkTable3_HybridTaxonomy(b *testing.B) {
	s, _ := benchSetup(b)
	obs := filterObs(s, chain.Hybrid)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := make(map[chain.HybridCategory]int)
		for _, o := range obs {
			counts[chain.ClassifyHybrid(s.Classifier.Analyze(o.Chain))]++
		}
		if counts[chain.HybridNoComplete] != 215 || counts[chain.HybridContainsComplete] != 70 {
			b.Fatalf("taxonomy drifted: %v", counts)
		}
	}
}

// --- Table 4: port distribution -----------------------------------------------

func BenchmarkTable4_PortDistribution(b *testing.B) {
	s, _ := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hist := make(map[int]int64)
		for _, o := range filterObs(s, chain.Interception) {
			hist[o.Port] += o.Conns
		}
		var total, p8013 int64
		for port, c := range hist {
			total += c
			if port == 8013 {
				p8013 = c
			}
		}
		if float64(p8013)/float64(total) < 0.25 {
			b.Fatal("8013 share drifted below Table 4's shape")
		}
	}
}

// --- Table 5: validation method comparison -------------------------------------

func BenchmarkTable5_ValidationComparison(b *testing.B) {
	corpus, err := validate.BuildCorpus(5, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp := validate.Compare(corpus.Chains, corpus.Registry)
		if cmp.KeySignature[validate.OutcomeUnrecognizedKey] != 3 ||
			cmp.KeySignature[validate.OutcomeParseError] != 1 {
			b.Fatal("Table 5 rare cases drifted")
		}
	}
	b.ReportMetric(float64(len(corpus.Chains)), "chains")
}

// --- Table 6: complete-path hybrid entities -------------------------------------

func BenchmarkTable6_CompletePathEntities(b *testing.B) {
	s, _ := benchSetup(b)
	obs := filterObs(s, chain.Hybrid)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gov, corp := 0, 0
		for _, o := range obs {
			a := s.Classifier.Analyze(o.Chain)
			if chain.ClassifyHybrid(a) != chain.HybridCompleteNonPubToPub {
				continue
			}
			if o.Chain[0].Issuer.Organization() == "Government" {
				gov++
			} else {
				corp++
			}
		}
		if gov != 16 || corp != 10 {
			b.Fatalf("Table 6 drifted: gov=%d corp=%d", gov, corp)
		}
	}
}

// --- Table 7: no-complete-path categorization -----------------------------------

func BenchmarkTable7_NoPathCategories(b *testing.B) {
	s, _ := benchSetup(b)
	obs := filterObs(s, chain.Hybrid)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := make(map[chain.NoPathCategory]int)
		for _, o := range obs {
			a := s.Classifier.Analyze(o.Chain)
			if chain.ClassifyHybrid(a) == chain.HybridNoComplete {
				counts[chain.ClassifyNoPath(a)]++
			}
		}
		if counts[chain.NoPathSelfSignedLeafMismatch] != 108 {
			b.Fatalf("Table 7 drifted: %v", counts)
		}
	}
}

// --- Table 8: multi-certificate structure ----------------------------------------

func BenchmarkTable8_MultiCertPaths(b *testing.B) {
	s, _ := benchSetup(b)
	var multi []certmodel.Chain
	for _, o := range filterObs(s, chain.NonPublicDBOnly) {
		if len(o.Chain) > 1 && len(o.Chain) <= 30 {
			multi = append(multi, o.Chain)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matched := 0
		for _, ch := range multi {
			if s.Classifier.Analyze(ch).MatchedVerdict == chain.VerdictCompletePath {
				matched++
			}
		}
		if float64(matched)/float64(len(multi)) < 0.97 {
			b.Fatal("matched-path share drifted below Table 8's shape")
		}
	}
	b.ReportMetric(float64(len(multi)), "multi-chains")
}

// --- Figure 1: chain-length CDFs --------------------------------------------------

func BenchmarkFigure1_ChainLengthCDF(b *testing.B) {
	s, _ := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := analysis.FromScenario(s).Run(s.Observations)
		if r.Figure1.CDF[chain.NonPublicDBOnly].Share(1) < 0.70 {
			b.Fatal("Figure 1 non-public single-cert share drifted")
		}
		if len(r.Figure1.Excluded) != 3 {
			b.Fatal("pathological exclusions drifted")
		}
	}
}

// --- Figure 4: contains-path structure matrix --------------------------------------

func BenchmarkFigure4_ContainsPathStructures(b *testing.B) {
	s, r := benchSetup(b)
	_ = r
	p := analysis.FromScenario(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := p.Run(s.Observations)
		if len(rep.Figure4.Chains) != 70 {
			b.Fatalf("Figure 4 has %d chains", len(rep.Figure4.Chains))
		}
	}
}

// --- Figures 5, 7, 8: co-occurrence graphs ------------------------------------------

func benchGraph(b *testing.B, cat chain.Category, dropLeaves bool) *graph.Graph {
	b.Helper()
	s, _ := benchSetup(b)
	obs := filterObs(s, cat)
	var g *graph.Graph
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g = graph.New()
		for _, o := range obs {
			if len(o.Chain) > 30 {
				continue
			}
			a := s.Classifier.Analyze(o.Chain)
			g.AddChain(o.Chain, a.Classes)
		}
		if dropLeaves {
			g = g.WithoutLeaves()
		}
		if g.NodeCount() == 0 {
			b.Fatal("empty graph")
		}
		g.Components()
	}
	return g
}

func BenchmarkFigure5_HybridGraph(b *testing.B) {
	g := benchGraph(b, chain.Hybrid, false)
	pub, npub := g.ClassCounts()
	if pub == 0 || npub == 0 {
		b.Fatal("hybrid graph must mix classes")
	}
}

func BenchmarkFigure7_NonPubGraph(b *testing.B) {
	g := benchGraph(b, chain.NonPublicDBOnly, false)
	if len(g.ComplexIntermediates(3)) == 0 {
		b.Fatal("Appendix I complex intermediates missing")
	}
}

func BenchmarkFigure8_InterceptionGraph(b *testing.B) {
	g := benchGraph(b, chain.Interception, true)
	l, _, _ := g.RoleCounts()
	if l != 0 {
		b.Fatal("Figure 8 must omit leaves")
	}
}

// --- Figure 6: mismatch-ratio distribution --------------------------------------------

func BenchmarkFigure6_MismatchRatios(b *testing.B) {
	s, _ := benchSetup(b)
	obs := filterObs(s, chain.Hybrid)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		atOrAbove, total := 0, 0
		for _, o := range obs {
			a := s.Classifier.Analyze(o.Chain)
			if chain.ClassifyHybrid(a) != chain.HybridNoComplete {
				continue
			}
			total++
			if a.MismatchRatio >= 0.5 {
				atOrAbove++
			}
		}
		share := float64(atOrAbove) / float64(total)
		if share < 0.50 || share > 0.63 {
			b.Fatalf("Figure 6 share drifted: %v", share)
		}
	}
}

// --- §4.2: establishment rates and CT compliance -----------------------------------------

func BenchmarkSec42_EstablishmentRates(b *testing.B) {
	s, _ := benchSetup(b)
	obs := filterObs(s, chain.Hybrid)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var est, tot [3]int64
		logged, anchored := 0, 0
		for _, o := range obs {
			a := s.Classifier.Analyze(o.Chain)
			var idx int
			switch a.Verdict {
			case chain.VerdictCompletePath:
				idx = 0
			case chain.VerdictContainsPath:
				idx = 1
			default:
				idx = 2
			}
			est[idx] += o.Established
			tot[idx] += o.Conns
			if chain.ClassifyHybrid(a) == chain.HybridCompleteNonPubToPub {
				anchored++
				if s.CT.Contains(o.Chain[0].FP) {
					logged++
				}
			}
		}
		rc := float64(est[0]) / float64(tot[0])
		rn := float64(est[2]) / float64(tot[2])
		if rc <= rn {
			b.Fatal("establishment ordering drifted")
		}
		if logged != anchored {
			b.Fatal("CT compliance drifted")
		}
	}
}

// --- §4.3: non-public chain characteristics -------------------------------------------------

func BenchmarkSec43_NonPubChains(b *testing.B) {
	s, _ := benchSetup(b)
	obs := filterObs(s, chain.NonPublicDBOnly)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		single, selfSigned := 0, 0
		for _, o := range obs {
			if len(o.Chain) != 1 {
				continue
			}
			single++
			if o.Chain[0].SelfSigned() {
				selfSigned++
			}
		}
		if float64(selfSigned)/float64(single) < 0.88 {
			b.Fatal("self-signed share drifted")
		}
	}
}

// --- §5: retrospective scan over real TLS ----------------------------------------------------

func BenchmarkSec5_RetrospectiveScan(b *testing.B) {
	mint := pki.NewMint(55, time.Now())
	root, err := mint.NewRoot(pki.Name("Bench Root"))
	if err != nil {
		b.Fatal(err)
	}
	inter, err := root.NewIntermediate(pki.Name("Bench CA"))
	if err != nil {
		b.Fatal(err)
	}
	leaf, err := inter.IssueLeaf(pki.Name("bench.example.test"), pki.WithSANs("bench.example.test"))
	if err != nil {
		b.Fatal(err)
	}
	farm := serverfarm.New()
	defer farm.Close()
	srv, err := farm.Add("bench.example.test", pki.Chain(leaf, inter.Cert))
	if err != nil {
		b.Fatal(err)
	}
	sc := scanner.New(5 * time.Second)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sc.Scan(ctx, srv.Addr, "bench.example.test")
		if res.Err != nil || len(res.Chain) != 2 {
			b.Fatalf("scan failed: %+v", res)
		}
	}
}

// --- §6.1: bandwidth and latency cost of unnecessary certificates ------------------------------

// BenchmarkSec61_HandshakeOverhead measures real TLS handshakes against a
// server delivering a clean two-certificate chain vs the same chain bloated
// with unnecessary certificates — the §6.1 cost the paper identifies. The
// bytes metric reports the extra certificate payload per handshake.
func BenchmarkSec61_HandshakeOverhead(b *testing.B) {
	mint := pki.NewMint(61, time.Now())
	root, err := mint.NewRoot(pki.Name("OH Root"))
	if err != nil {
		b.Fatal(err)
	}
	inter, err := root.NewIntermediate(pki.Name("OH CA"))
	if err != nil {
		b.Fatal(err)
	}
	leaf, err := inter.IssueLeaf(pki.Name("oh.example.test"), pki.WithSANs("oh.example.test"))
	if err != nil {
		b.Fatal(err)
	}
	// Bloat: four unnecessary self-signed certificates appended.
	var bloat []*pki.Certificate
	for i := 0; i < 4; i++ {
		c, err := mint.SelfSigned(pki.Name(fmt.Sprintf("bloat-%d", i)))
		if err != nil {
			b.Fatal(err)
		}
		bloat = append(bloat, c)
	}

	clean := pki.Chain(leaf, inter.Cert)
	bloated := append(pki.Chain(leaf, inter.Cert), bloat...)

	farm := serverfarm.New()
	defer farm.Close()
	cleanSrv, err := farm.Add("oh.example.test", clean)
	if err != nil {
		b.Fatal(err)
	}
	bloatSrv, err := farm.Add("oh.example.test", bloated)
	if err != nil {
		b.Fatal(err)
	}
	sc := scanner.New(5 * time.Second)
	ctx := context.Background()

	chainBytes := func(chain []*pki.Certificate) int {
		total := 0
		for _, c := range chain {
			total += len(c.Raw)
		}
		return total
	}
	overhead := chainBytes(bloated) - chainBytes(clean)

	b.Run("clean-chain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := sc.Scan(ctx, cleanSrv.Addr, "oh.example.test")
			if res.Err != nil || len(res.Chain) != 2 {
				b.Fatalf("scan: %+v", res)
			}
		}
		b.ReportMetric(float64(chainBytes(clean)), "chain-bytes")
	})
	b.Run("bloated-chain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := sc.Scan(ctx, bloatSrv.Addr, "oh.example.test")
			if res.Err != nil || len(res.Chain) != 6 {
				b.Fatalf("scan: %+v", res)
			}
		}
		b.ReportMetric(float64(chainBytes(bloated)), "chain-bytes")
		b.ReportMetric(float64(overhead), "wasted-bytes")
	})
}

// --- Ablations (DESIGN.md §6) ------------------------------------------------------------------

// BenchmarkAblation_DNCompare compares the normalized-string DN equality the
// analyzer uses against the order-insensitive multiset comparison.
func BenchmarkAblation_DNCompare(b *testing.B) {
	x := dn.MustParse("CN=app.service.example,OU=Platform,O=Example Corp,C=US")
	y := dn.MustParse("CN=app.service.example,OU=Platform,O=Example Corp,C=US")
	b.Run("normalized-equal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !x.Equal(y) {
				b.Fatal("not equal")
			}
		}
	})
	b.Run("multiset-equalish", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !dn.Equalish(x, y) {
				b.Fatal("not equal")
			}
		}
	})
}

// exhaustiveBestRun is the ablation baseline for matched-path search: test
// every contiguous window instead of splitting at mismatched links.
func exhaustiveBestRun(cl *chain.Classifier, ch certmodel.Chain) int {
	best := 0
	for start := 0; start < len(ch); start++ {
		for end := start; end < len(ch); end++ {
			ok := true
			for i := start; i < end; i++ {
				if !ch[i].Issuer.Equal(ch[i+1].Subject) {
					ok = false
					break
				}
			}
			if ok && end-start+1 > best {
				best = end - start + 1
			}
		}
	}
	return best
}

func BenchmarkAblation_PathSearch(b *testing.B) {
	s, _ := benchSetup(b)
	var chains []certmodel.Chain
	for _, o := range filterObs(s, chain.Hybrid) {
		chains = append(chains, o.Chain)
	}
	b.Run("linear-runs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, ch := range chains {
				s.Classifier.Analyze(ch)
			}
		}
	})
	b.Run("exhaustive-windows", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, ch := range chains {
				exhaustiveBestRun(s.Classifier, ch)
			}
		}
	})
}

// BenchmarkAblation_CTQuery compares the domain-indexed CT query against a
// full scan of the log entries.
func BenchmarkAblation_CTQuery(b *testing.B) {
	s, _ := benchSetup(b)
	log := s.CT
	size := log.Size()
	if size == 0 {
		b.Fatal("empty CT log")
	}
	domain := log.GetEntries(0, 1)[0].Cert.Subject.CommonName()
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(log.QueryDomain(domain)) == 0 {
				b.Fatal("no entries")
			}
		}
	})
	b.Run("linear-scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			found := 0
			for _, e := range log.GetEntries(0, size) {
				if e.Cert.Subject.CommonName() == domain {
					found++
				}
			}
			if found == 0 {
				b.Fatal("no entries")
			}
		}
	})
}

// BenchmarkAblation_ZeekParse compares streaming Zeek log parsing with a
// split-everything-at-once baseline.
func BenchmarkAblation_ZeekParse(b *testing.B) {
	s, _ := benchSetup(b)
	var subset []*campus.Observation
	for i, o := range s.Observations {
		if i%20 == 0 && len(o.Chain) <= 30 {
			subset = append(subset, o)
		}
	}
	var ssl, x509 bytes.Buffer
	if err := analysis.Write(subset, &ssl, &x509, analysis.WriteOptions{MaxConnsPerObservation: 5}); err != nil {
		b.Fatal(err)
	}
	sslData, x509Data := ssl.Bytes(), x509.Bytes()

	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			obs, err := analysis.Load(bytes.NewReader(sslData), bytes.NewReader(x509Data))
			if err != nil || len(obs) == 0 {
				b.Fatal(err)
			}
		}
	})
	b.Run("read-all-then-join", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			all, err := io.ReadAll(bytes.NewReader(sslData))
			if err != nil {
				b.Fatal(err)
			}
			obs, err := analysis.Load(bytes.NewReader(all), bytes.NewReader(x509Data))
			if err != nil || len(obs) == 0 {
				b.Fatal(err)
			}
		}
	})
}

// --- §6.2 tooling: lint, repair, store completion ----------------------------------------------

func BenchmarkSec62_LintAndRepair(b *testing.B) {
	s, _ := benchSetup(b)
	l := lint.New(s.Classifier, lint.Config{Now: s.End()})
	var chains []certmodel.Chain
	for _, o := range filterObs(s, chain.Hybrid) {
		chains = append(chains, o.Chain)
	}
	b.Run("lint", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			findings := 0
			for _, ch := range chains {
				findings += len(l.Chain(ch))
			}
			if findings == 0 {
				b.Fatal("hybrid population produced no lint findings")
			}
		}
	})
	b.Run("repair", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fixable := 0
			for _, ch := range chains {
				if chain.ProposeRepair(s.Classifier.Analyze(ch)).Fixable {
					fixable++
				}
			}
			if fixable == 0 {
				b.Fatal("nothing repairable")
			}
		}
	})
	b.Run("store-completion", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			completable := 0
			for _, ch := range chains {
				if chain.StoreCompletable(s.DB, s.Classifier.Analyze(ch)) {
					completable++
				}
			}
			if completable == 0 {
				b.Fatal("nothing store-completable")
			}
		}
	})
}

// --- full pipeline + report rendering ---------------------------------------------------------

func BenchmarkFullReportRender(b *testing.B) {
	_, r := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := r.Render()
		if len(out) < 1000 {
			b.Fatal("render too short")
		}
	}
}

// BenchmarkScenarioGeneration measures dataset generation itself.
func BenchmarkScenarioGeneration(b *testing.B) {
	cfg := campus.DefaultConfig()
	cfg.Scale = 0.001
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := campus.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = fmt.Sprintf
