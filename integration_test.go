package certchains_test

import (
	"testing"

	"certchains"
	"certchains/internal/chain"
)

// TestRepairImprovesPopulation runs the §6.2 tooling over the entire
// generated hybrid population: every chain that contains a complete matched
// path must repair to a clean complete path, and re-analysis of the
// repaired deliveries must show zero unnecessary certificates — the
// end-to-end payoff of the paper's recommendation.
func TestRepairImprovesPopulation(t *testing.T) {
	cfg := certchains.DefaultScenarioConfig()
	cfg.Scale = 0.001
	cfg.Seed = 4242
	s, err := certchains.GenerateScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var (
		repaired, unfixable int
	)
	for _, o := range s.Observations {
		if o.TLS13 || s.Classifier.Categorize(o.Chain) != certchains.Hybrid {
			continue
		}
		a := s.Classifier.Analyze(o.Chain)
		if a.Verdict != certchains.VerdictContainsPath {
			continue
		}
		r := chain.ProposeRepair(a)
		if !r.Fixable {
			unfixable++
			continue
		}
		repaired++
		ra := s.Classifier.Analyze(r.Chain)
		if ra.Verdict != certchains.VerdictCompletePath {
			t.Fatalf("repaired chain re-analyzes as %v (original %v)", ra.Verdict, a.Verdict)
		}
		if len(ra.Unnecessary) != 0 {
			t.Fatalf("repaired chain still has unnecessary certs: %v", ra.Unnecessary)
		}
		// The repair never grows the delivery.
		if len(r.Chain) > len(o.Chain) {
			t.Fatal("repair grew the chain")
		}
	}
	// All 70 contains-path hybrids are repairable by construction.
	if repaired != 70 || unfixable != 0 {
		t.Errorf("repaired %d, unfixable %d; want 70/0", repaired, unfixable)
	}
}

// TestStoreCompletionDivergencePopulation quantifies §6.1 across the whole
// no-path hybrid population: chains with a public leaf complete via the
// store; chains with non-public leaves do not.
func TestStoreCompletionDivergencePopulation(t *testing.T) {
	cfg := certchains.DefaultScenarioConfig()
	cfg.Scale = 0.001
	cfg.Seed = 77
	s, err := certchains.GenerateScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	completable, notCompletable := 0, 0
	for _, o := range s.Observations {
		if o.TLS13 || s.Classifier.Categorize(o.Chain) != certchains.Hybrid {
			continue
		}
		a := s.Classifier.Analyze(o.Chain)
		if a.Verdict != certchains.VerdictNoPath {
			continue
		}
		if certchains.StoreCompletable(s.DB, a) {
			completable++
		} else {
			notCompletable++
		}
	}
	// 61 chains have a public-issued head that the store can chain to an
	// anchor: the 56 missing-issuer chains (public leaf, intermediate not
	// delivered) plus the 5 truncated chains whose head is itself a public
	// intermediate. The remaining 154 no-path chains start at non-public
	// certificates and stay unvalidatable for every client.
	if completable != 61 {
		t.Errorf("store-completable = %d, want 61 (56 missing-issuer + 5 truncated)", completable)
	}
	if completable+notCompletable != 215 {
		t.Errorf("no-path population = %d, want 215", completable+notCompletable)
	}
}
