package certchains_test

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"certchains"
)

// TestFacadeEndToEnd exercises the public API the way the README shows it:
// generate, analyze, render, revisit, Zeek round trip.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := certchains.DefaultScenarioConfig()
	cfg.Scale = 0.001
	cfg.Seed = 9
	scenario, err := certchains.GenerateScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report := certchains.Analyze(scenario)
	out := report.Render()
	if !strings.Contains(out, "Table 3") || !strings.Contains(out, "321") {
		t.Error("render missing hybrid table")
	}

	rr := certchains.AnalyzeRevisit(scenario)
	if rr.HybridReachable != 270 {
		t.Errorf("revisit reachable = %d", rr.HybridReachable)
	}

	var ssl, x509 bytes.Buffer
	subset := scenario.Observations
	if len(subset) > 50 {
		subset = subset[:50]
	}
	if err := certchains.WriteZeekLogs(subset, &ssl, &x509, 5); err != nil {
		t.Fatal(err)
	}
	loaded, err := certchains.LoadZeekLogs(&ssl, &x509)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(subset) {
		t.Errorf("round trip %d != %d", len(loaded), len(subset))
	}
}

func TestFacadeChainAnalysis(t *testing.T) {
	db := certchains.NewTrustDB()
	nb := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	mk := func(issuer, subject string, bc certchains.BasicConstraints) *certchains.Certificate {
		return &certchains.Certificate{
			FP:        certchains.Fingerprint(issuer + "|" + subject),
			Issuer:    certchains.MustParseDN(issuer),
			Subject:   certchains.MustParseDN(subject),
			NotBefore: nb,
			NotAfter:  nb.AddDate(1, 0, 0),
			BC:        bc,
		}
	}
	root := mk("CN=Root", "CN=Root", certchains.BCTrue)
	db.AddRoot(certchains.StoreMozilla, root)
	cl := certchains.NewClassifier(db)

	a := cl.Analyze(certchains.Chain{
		mk("CN=Root", "CN=leaf.example.com", certchains.BCFalse),
		root,
	})
	if a.Category != certchains.PublicDBOnly {
		t.Errorf("category = %v", a.Category)
	}
	if a.Verdict != certchains.VerdictCompletePath {
		t.Errorf("verdict = %v", a.Verdict)
	}
	if !a.AnchoredToPublicRoot(db) {
		t.Error("should anchor")
	}
}

func TestFacadeDGA(t *testing.T) {
	nb := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	c := &certchains.Certificate{
		Issuer:    certchains.MustParseDN("CN=www.qzxkvjwp.com"),
		Subject:   certchains.MustParseDN("CN=www.zqpxkvtj.com"),
		NotBefore: nb,
		NotAfter:  nb.AddDate(0, 0, 60),
	}
	if !certchains.IsDGACertificate(c) {
		t.Error("DGA certificate not detected through the facade")
	}
}

func TestFacadeCTLogAndDetector(t *testing.T) {
	ct, err := certchains.NewCTLog("facade", 3)
	if err != nil {
		t.Fatal(err)
	}
	db := certchains.NewTrustDB()
	nb := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	leaf := &certchains.Certificate{
		FP:        "f1",
		Issuer:    certchains.MustParseDN("CN=Some CA"),
		Subject:   certchains.MustParseDN("CN=site.example.com"),
		NotBefore: nb,
		NotAfter:  nb.AddDate(1, 0, 0),
		SAN:       []string{"site.example.com"},
	}
	if _, err := ct.AddChain(certchains.Chain{leaf}, nb); err != nil {
		t.Fatal(err)
	}
	det := certchains.NewInterceptionDetector(db, ct)
	observed := &certchains.Certificate{
		FP:        "f2",
		Issuer:    certchains.MustParseDN("CN=Middlebox CA"),
		Subject:   certchains.MustParseDN("CN=site.example.com"),
		NotBefore: nb,
		NotAfter:  nb.AddDate(1, 0, 0),
	}
	v := det.Examine(observed, "site.example.com", nb.AddDate(0, 2, 0))
	if v.String() != "issuer-mismatch" {
		t.Errorf("verdict = %v", v)
	}
}

func TestFacadeMintFarmScanner(t *testing.T) {
	mint := certchains.NewMint(17, time.Now())
	root, err := mint.NewRoot(certchains.PkixName("Facade Root", "F"))
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := root.IssueLeaf(certchains.PkixName("f.example.test"), certchains.WithSANs("f.example.test"))
	if err != nil {
		t.Fatal(err)
	}
	farm := certchains.NewServerFarm()
	defer farm.Close()
	srv, err := farm.Add("f.example.test", []*certchains.RealCertificate{leaf, root.Cert})
	if err != nil {
		t.Fatal(err)
	}
	sc := certchains.NewScanner(5 * time.Second)
	res := sc.Scan(context.Background(), srv.Addr, "f.example.test")
	if res.Err != nil || len(res.Chain) != 2 {
		t.Fatalf("scan: %+v", res)
	}

	// Validation policies through the facade.
	browser := certchains.NewValidationClient(certchains.PolicyBrowser, root.Cert.X509)
	if err := browser.Validate([]*certchains.RealCertificate{leaf, root.Cert}, "f.example.test", time.Now()); err != nil {
		t.Errorf("browser validation: %v", err)
	}
	strict := certchains.NewValidationClient(certchains.PolicyStrictPresented, root.Cert.X509)
	if err := strict.Validate([]*certchains.RealCertificate{leaf, root.Cert}, "f.example.test", time.Now()); err != nil {
		t.Errorf("strict validation: %v", err)
	}
}

func TestFacadeGraph(t *testing.T) {
	g := certchains.NewCertGraph()
	nb := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	a := &certchains.Certificate{FP: "a", Issuer: certchains.MustParseDN("CN=I"), Subject: certchains.MustParseDN("CN=S"), NotBefore: nb, NotAfter: nb.AddDate(1, 0, 0)}
	b := &certchains.Certificate{FP: "b", Issuer: certchains.MustParseDN("CN=R"), Subject: certchains.MustParseDN("CN=I"), NotBefore: nb, NotAfter: nb.AddDate(1, 0, 0)}
	g.AddChain(certchains.Chain{a, b}, nil)
	if g.NodeCount() != 2 || g.EdgeCount() != 1 {
		t.Errorf("graph = %d nodes %d edges", g.NodeCount(), g.EdgeCount())
	}
}
