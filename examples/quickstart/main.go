// Quickstart: build a trust database, analyze a few delivered certificate
// chains with the structure analyzer, and print the verdicts — the minimal
// round trip through the library's core API.
package main

import (
	"fmt"
	"time"

	"certchains"
)

func main() {
	// A small trust database: one public root and its disclosed
	// intermediate, standing in for the Mozilla/Apple/Microsoft stores and
	// CCADB.
	db := certchains.NewTrustDB()
	root := cert("CN=Example Trust Root,O=TrustCo", "CN=Example Trust Root,O=TrustCo", certchains.BCTrue)
	db.AddRoot(certchains.StoreMozilla, root)
	inter := cert("CN=Example Trust Root,O=TrustCo", "CN=TrustCo Issuing CA,O=TrustCo", certchains.BCTrue)
	if err := db.AddCCADBIntermediate(inter); err != nil {
		panic(err)
	}
	classifier := certchains.NewClassifier(db)

	chains := []struct {
		name  string
		chain certchains.Chain
	}{
		// A correct public chain: leaf plus issuing CA, root omitted.
		{"well-formed public chain", certchains.Chain{
			cert("CN=TrustCo Issuing CA,O=TrustCo", "CN=www.shop.example", certchains.BCFalse),
			inter,
		}},
		// The same chain with an unnecessary self-signed certificate
		// appended — the misconfiguration the paper ties to connection
		// failures.
		{"chain with unnecessary certificate", certchains.Chain{
			cert("CN=TrustCo Issuing CA,O=TrustCo", "CN=www.shop.example", certchains.BCFalse),
			inter,
			cert("CN=tester", "CN=tester", certchains.BCAbsent),
		}},
		// A self-signed single, the dominant non-public-DB species.
		{"self-signed single", certchains.Chain{
			cert("CN=printer.campus.example", "CN=printer.campus.example", certchains.BCAbsent),
		}},
		// A government-style hybrid: non-public signing CA certified by
		// the public program.
		{"hybrid anchored to public root", certchains.Chain{
			cert("CN=Agency CA B3,O=Government", "CN=portal.agency.example", certchains.BCFalse),
			cert("CN=TrustCo Issuing CA,O=TrustCo", "CN=Agency CA B3,O=Government", certchains.BCTrue),
			inter,
		}},
	}

	for _, entry := range chains {
		name, ch := entry.name, entry.chain
		a := classifier.Analyze(ch)
		fmt.Printf("%s:\n", name)
		fmt.Printf("  category: %s\n", a.Category)
		fmt.Printf("  verdict:  %s\n", a.Verdict)
		fmt.Printf("  mismatch ratio: %.2f\n", a.MismatchRatio)
		if len(a.Unnecessary) > 0 {
			for _, i := range a.Unnecessary {
				fmt.Printf("  unnecessary certificate at position %d: %s\n", i+1, ch[i].Subject.String())
			}
		}
		if a.Complete != nil {
			fmt.Printf("  complete matched path: positions %d..%d, anchored to public root: %v\n",
				a.Complete.Start+1, a.Complete.End+1, a.AnchoredToPublicRoot(db))
		}
		fmt.Println()
	}
}

// cert fabricates a log-level certificate like Zeek would record it.
func cert(issuer, subject string, bc certchains.BasicConstraints) *certchains.Certificate {
	iss := certchains.MustParseDN(issuer)
	sub := certchains.MustParseDN(subject)
	nb := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	na := nb.AddDate(1, 0, 0)
	return &certchains.Certificate{
		FP:        "fp-" + certchains.Fingerprint(subject+"|"+issuer),
		Issuer:    iss,
		Subject:   sub,
		NotBefore: nb,
		NotAfter:  na,
		BC:        bc,
	}
}
