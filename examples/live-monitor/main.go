// Live monitor: the whole streaming loop in one process. A generated campus
// capture is replayed into a pair of Zeek log files at high speed while an
// ingest daemon tails them, joins ssl↔x509 incrementally, folds closed time
// windows, and serves reports over HTTP. The example polls the daemon's own
// admin surface — exactly what an operator's curl or Prometheus scrape would
// see — then interrupts it and restarts from the snapshot to show that no
// history is re-read.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"certchains/internal/analysis"
	"certchains/internal/campus"
	"certchains/internal/ingest"
	"certchains/internal/resilience"
)

// adminClient polls the daemon's admin surface; the timeout bounds a stuck
// scrape the way any operator's probe would.
var adminClient = &http.Client{Timeout: 5 * time.Second}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "live-monitor:", err)
		os.Exit(1)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "live-monitor-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	sslPath := filepath.Join(dir, "ssl.log")
	x509Path := filepath.Join(dir, "x509.log")
	snapPath := filepath.Join(dir, "ingest.snapshot")

	cfg := campus.DefaultConfig()
	cfg.Scale = 0.002
	scenario, err := campus.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("capture: %d observations across the collection period\n", len(scenario.Observations))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Replay the capture into the log files in the background, paced so the
	// three-month collection passes in a few wall seconds.
	replayDone := make(chan error, 1)
	go func() { replayDone <- replay(ctx, scenario, sslPath, x509Path) }()

	ingCfg := ingest.Config{
		SSLPath:      sslPath,
		X509Path:     x509Path,
		Window:       analysis.WindowConfig{Interval: 7 * 24 * time.Hour},
		SnapshotPath: snapPath,
	}
	daemonErr := make(chan error, 1)
	d := ingest.NewDaemon(ingest.New(analysis.FromScenario(scenario), ingCfg), ingest.DaemonConfig{
		Addr: "127.0.0.1:0",
		Poll: 50 * time.Millisecond,
	})
	go func() { daemonErr <- d.Run(ctx) }()
	<-d.Started()
	base := "http://" + d.Addr()
	fmt.Printf("daemon:  %s\n\n", base)

	// Watch the stream arrive through the admin surface.
	for i := 0; i < 3; i++ {
		if err := resilience.Sleep(ctx, 2*time.Second); err != nil {
			return err
		}
		var health struct {
			Observations int `json:"observations"`
			Joiner       struct {
				Joined int64 `json:"joined"`
			} `json:"joiner"`
			FoldedWindows int64  `json:"folded_windows"`
			Watermark     string `json:"watermark"`
		}
		if err := getJSON(ctx, base+"/healthz", &health); err != nil {
			return err
		}
		fmt.Printf("t+%-2ds  joined=%-6d folded windows=%-3d observations=%-5d watermark=%s\n",
			2*(i+1), health.Joiner.Joined, health.FoldedWindows, health.Observations, health.Watermark)
	}
	if err := <-replayDone; err != nil {
		return err
	}

	// Interrupt the daemon: it drains the HTTP server and persists a final
	// snapshot.
	cancel()
	if err := <-daemonErr; err != nil {
		return err
	}
	st, err := os.Stat(snapPath)
	if err != nil {
		return err
	}
	fmt.Printf("\ninterrupted: final snapshot %d KiB\n", st.Size()/1024)

	// Restart from the snapshot. Nothing is re-read: the restored tail
	// offsets already point at the end of both logs.
	ing, resumed, err := ingest.RestoreOrNew(analysis.FromScenario(scenario), ingCfg)
	if err != nil {
		return err
	}
	defer ing.Close()
	fmt.Printf("restarted: resumed=%v, %d observations already folded\n", resumed, ing.Stats().Observations)
	if err := ing.Finish(); err != nil {
		return err
	}

	fmt.Println("\nall-time report after resume (first lines):")
	fmt.Println(firstLines(ing.Report(0).Render(), 8))
	return nil
}

func replay(ctx context.Context, s *campus.Scenario, sslPath, x509Path string) error {
	sslF, err := os.Create(sslPath)
	if err != nil {
		return err
	}
	defer sslF.Close()
	x509F, err := os.Create(x509Path)
	if err != nil {
		return err
	}
	defer x509F.Close()
	var wallStart, logStart time.Time
	const speed = 2e6 // log seconds per wall second
	return campus.Replay(s.Observations, sslF, x509F, campus.ReplayOptions{
		MaxConnsPerObservation: 4,
		BatchRecords:           16,
		Pace: func(ts time.Time) error {
			if logStart.IsZero() {
				logStart, wallStart = ts, time.Now()
				return nil
			}
			due := wallStart.Add(time.Duration(float64(ts.Sub(logStart)) / speed))
			if d := time.Until(due); d > 0 {
				return resilience.Sleep(ctx, d)
			}
			return nil
		},
	})
}

func getJSON(ctx context.Context, url string, into any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := adminClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, into)
}

func firstLines(s string, n int) string {
	end := 0
	for i := 0; i < len(s) && n > 0; i++ {
		if s[i] == '\n' {
			n--
			end = i
		}
	}
	return s[:end]
}
