// Live interception: the full Appendix B scenario over real sockets. An
// honest origin serves www.bank.test with a CT-logged certificate; a
// middlebox (the Fortinet/Zscaler device class of Table 1) sits in front,
// terminating TLS with a forged certificate minted by its inspection CA and
// relaying the plaintext. A scanner observes both paths, and the §3.2.1 CT
// cross-reference flags the interceptor.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"certchains"
	"certchains/internal/middlebox"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "live-interception:", err)
		os.Exit(1)
	}
}

func run() error {
	now := time.Now()
	mint := certchains.NewMint(2026, now)

	// The honest side: a public-style CA, its leaf, and a CT log entry.
	honest, err := mint.NewRoot(certchains.PkixName("Honest Public Root", "Honest CA Inc"))
	if err != nil {
		return err
	}
	leaf, err := honest.IssueLeaf(certchains.PkixName("www.bank.test"), certchains.WithSANs("www.bank.test"))
	if err != nil {
		return err
	}
	farm := certchains.NewServerFarm()
	defer farm.Close()
	origin, err := farm.Add("www.bank.test", []*certchains.RealCertificate{leaf, honest.Cert})
	if err != nil {
		return err
	}

	ct, err := certchains.NewCTLog("public-log", 1)
	if err != nil {
		return err
	}
	if _, err := ct.AddChain(certchains.Chain{leaf.Meta, honest.Cert.Meta}, now.Add(-24*time.Hour)); err != nil {
		return err
	}
	db := certchains.NewTrustDB()
	db.AddRoot(certchains.StoreMozilla, honest.Cert.Meta)

	// The interceptor: an inspection CA and a live proxy in front of the
	// origin.
	inspect, err := mint.NewRoot(certchains.PkixName("Corp SSL Inspection CA", "Corp Security"))
	if err != nil {
		return err
	}
	proxy, err := middlebox.New(inspect, origin.Addr)
	if err != nil {
		return err
	}
	defer proxy.Close()

	fmt.Printf("origin:     %s\n", origin.Addr)
	fmt.Printf("middlebox:  %s (inspection CA %q)\n\n", proxy.Addr, "Corp SSL Inspection CA")

	sc := certchains.NewScanner(5 * time.Second)
	det := certchains.NewInterceptionDetector(db, ct)

	for _, target := range []struct{ label, addr string }{
		{"direct to origin", origin.Addr},
		{"through middlebox", proxy.Addr},
	} {
		res := sc.Scan(context.Background(), target.addr, "www.bank.test")
		if res.Err != nil {
			return res.Err
		}
		verdict := det.Examine(res.Chain[0], "www.bank.test", now)
		fmt.Printf("%-18s leaf issuer=%-40q CT cross-reference: %s\n",
			target.label, res.Chain[0].Issuer.String(), verdict)
	}
	return nil
}
