// Retrospective scan: the §5 workflow over a real network stack. A local
// TLS server farm plays the role of the previously observed servers — one
// migrated to an automated public CA, one still serving a chain with an
// unnecessary certificate, one still self-signed — and a real TLS client
// scans them, re-analyzes the presented chains, and demonstrates the
// Chrome-vs-OpenSSL validation divergence on the misconfigured chain.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"certchains"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "retrospective-scan:", err)
		os.Exit(1)
	}
}

func run() error {
	now := time.Now()
	mint := certchains.NewMint(2024, now)

	// The public program the migrated server now uses.
	root, err := mint.NewRoot(certchains.PkixName("ISRG-like Root X1", "Lets Encrypt Analog"))
	if err != nil {
		return err
	}
	inter, err := root.NewIntermediate(certchains.PkixName("R3-like Issuing CA", "Lets Encrypt Analog"))
	if err != nil {
		return err
	}

	farm := certchains.NewServerFarm()
	defer farm.Close()

	// Server 1: migrated to the public CA (the 231-of-270 outcome).
	migratedLeaf, err := inter.IssueLeaf(certchains.PkixName("migrated.example.test"), certchains.WithSANs("migrated.example.test"))
	if err != nil {
		return err
	}
	migrated, err := farm.Add("migrated.example.test", []*certchains.RealCertificate{migratedLeaf, inter.Cert})
	if err != nil {
		return err
	}

	// Server 2: still hybrid with an unnecessary trailing certificate
	// (one of the 3 chains §5 validated with both Chrome and OpenSSL).
	dirtyLeaf, err := inter.IssueLeaf(certchains.PkixName("stubborn.example.test"), certchains.WithSANs("stubborn.example.test"))
	if err != nil {
		return err
	}
	stray, err := mint.SelfSigned(certchains.PkixName("tester"))
	if err != nil {
		return err
	}
	dirty, err := farm.Add("stubborn.example.test", []*certchains.RealCertificate{dirtyLeaf, inter.Cert, stray})
	if err != nil {
		return err
	}

	// Server 3: still a self-signed single (the non-public majority).
	selfSigned, err := mint.SelfSigned(certchains.PkixName("printer.campus.test"), certchains.WithSANs("printer.campus.test"))
	if err != nil {
		return err
	}
	single, err := farm.Add("printer.campus.test", []*certchains.RealCertificate{selfSigned})
	if err != nil {
		return err
	}

	// Trust database for classification: the public root and its
	// disclosed intermediate.
	db := certchains.NewTrustDB()
	db.AddRoot(certchains.StoreMozilla, root.Cert.Meta)
	if err := db.AddCCADBIntermediate(inter.Cert.Meta); err != nil {
		return err
	}
	classifier := certchains.NewClassifier(db)

	// Scan all three servers with the real TLS client.
	sc := certchains.NewScanner(5 * time.Second)
	fmt.Println("scan results:")
	for _, srv := range []struct {
		domain, addr string
	}{
		{migrated.Domain, migrated.Addr},
		{dirty.Domain, dirty.Addr},
		{single.Domain, single.Addr},
	} {
		res := sc.Scan(context.Background(), srv.addr, srv.domain)
		if res.Err != nil {
			// An unreachable server is a recorded outcome, not an abort —
			// the sweep carries on to the remaining targets.
			fmt.Printf("  %-26s %s after %d attempt(s): %v\n", srv.domain, res.Outcome, res.Attempts, res.Err)
			continue
		}
		a := classifier.Analyze(res.Chain)
		fmt.Printf("  %-26s %d certs  category=%-20s verdict=%-22s unnecessary=%d\n",
			srv.domain, len(res.Chain), a.Category, a.Verdict, len(a.Unnecessary))
	}

	// The validation divergence: the browser-style client completes the
	// path from its store and tolerates the unnecessary certificate; the
	// strict presented-chain client rejects it.
	fmt.Println("\nvalidation divergence on the misconfigured chain:")
	presented := []*certchains.RealCertificate{dirtyLeaf, inter.Cert, stray}
	browser := certchains.NewValidationClient(certchains.PolicyBrowser, root.Cert.X509)
	strict := certchains.NewValidationClient(certchains.PolicyStrictPresented, root.Cert.X509)
	if err := browser.Validate(presented, "stubborn.example.test", now); err != nil {
		fmt.Printf("  browser policy: REJECT (%v)\n", err)
	} else {
		fmt.Println("  browser policy: ACCEPT (trust-store completion ignores the stray certificate)")
	}
	if err := strict.Validate(presented, "stubborn.example.test", now); err != nil {
		fmt.Println("  strict presented-chain policy: REJECT (the stray certificate breaks the path)")
	} else {
		fmt.Println("  strict presented-chain policy: ACCEPT")
	}
	return nil
}
