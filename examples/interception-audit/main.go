// Interception audit: detect TLS interception middleboxes the way §3.2.1
// does — populate a CT log with the genuine certificates of popular
// domains, then cross-reference observed leaf issuers against CT records
// for the same domain and validity window. Issuer mismatches expose the
// middlebox.
package main

import (
	"fmt"
	"time"

	"certchains"
)

func main() {
	if err := run(); err != nil {
		panic(err)
	}
}

func run() error {
	now := time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC)

	// Public side: a trusted CA whose issuance is CT-logged.
	db := certchains.NewTrustDB()
	rootDN := certchains.MustParseDN("CN=Honest Root CA,O=Honest")
	root := &certchains.Certificate{
		FP: "fp-root", Issuer: rootDN, Subject: rootDN,
		NotBefore: now.AddDate(-5, 0, 0), NotAfter: now.AddDate(10, 0, 0),
		BC: certchains.BCTrue,
	}
	db.AddRoot(certchains.StoreMozilla, root)

	ct, err := certchains.NewCTLog("audit-log", 7)
	if err != nil {
		return err
	}

	// The genuine certificates for three popular domains, logged by the
	// honest CA.
	domains := []string{"www.bank.example", "mail.campus.example", "videos.stream.example"}
	for _, d := range domains {
		leaf := &certchains.Certificate{
			FP:        certchains.Fingerprint("fp-real-" + d),
			Issuer:    rootDN,
			Subject:   certchains.MustParseDN("CN=" + d),
			NotBefore: now.AddDate(0, -3, 0),
			NotAfter:  now.AddDate(1, 0, 0),
			SAN:       []string{d},
		}
		if _, err := ct.AddChain(certchains.Chain{leaf, root}, now.AddDate(0, -3, 0)); err != nil {
			return err
		}
	}

	detector := certchains.NewInterceptionDetector(db, ct)

	// Observations from the campus vantage: one genuine, one intercepted,
	// one internal-only.
	observations := []struct {
		label  string
		issuer string
		domain string
	}{
		{"genuine connection", "CN=Honest Root CA,O=Honest", "www.bank.example"},
		{"middlebox connection", "CN=Zscaler SSL Inspection CA,O=Zscaler Inc.", "www.bank.example"},
		{"internal service (no CT record)", "CN=Corp Internal CA,O=Corp", "wiki.corp.internal"},
	}
	for _, o := range observations {
		leaf := &certchains.Certificate{
			FP:        certchains.Fingerprint("fp-obs-" + o.domain + o.issuer),
			Issuer:    certchains.MustParseDN(o.issuer),
			Subject:   certchains.MustParseDN("CN=" + o.domain),
			NotBefore: now.AddDate(0, -1, 0),
			NotAfter:  now.AddDate(1, 0, 0),
		}
		verdict := detector.Examine(leaf, o.domain, now)
		fmt.Printf("%-32s issuer=%-45q -> %s\n", o.label, o.issuer, verdict)
	}

	fmt.Println()
	fmt.Println("CT log state:")
	sth := ct.TreeHead(now)
	fmt.Printf("  %d entries, STH signature valid: %v\n", sth.TreeSize, ct.VerifySTH(sth))
	for _, d := range domains {
		issuers := ct.IssuersFor(d, now)
		fmt.Printf("  %-24s logged issuers: %d\n", d, len(issuers))
	}
	return nil
}
