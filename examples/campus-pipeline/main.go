// Campus pipeline: generate a small synthetic campus dataset, round-trip it
// through Zeek log files on disk, run the full analysis pipeline on the
// reloaded data, and print the paper's tables and figures — the end-to-end
// measurement workflow of the paper at laptop scale.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"certchains"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "campus-pipeline:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := certchains.DefaultScenarioConfig()
	cfg.Seed = 42
	cfg.Scale = 0.002
	scenario, err := certchains.GenerateScenario(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("generated %d chain observations\n", len(scenario.Observations))

	// Materialize as Zeek logs — the exact files the paper's collection
	// produced — then reload them, as a real deployment would.
	dir, err := os.MkdirTemp("", "campus-pipeline")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	sslPath := filepath.Join(dir, "ssl.log")
	x509Path := filepath.Join(dir, "x509.log")

	sslF, err := os.Create(sslPath)
	if err != nil {
		return err
	}
	x509F, err := os.Create(x509Path)
	if err != nil {
		return err
	}
	if err := certchains.WriteZeekLogs(scenario.Observations, sslF, x509F, 10); err != nil {
		return err
	}
	sslF.Close()
	x509F.Close()

	sslIn, err := os.Open(sslPath)
	if err != nil {
		return err
	}
	defer sslIn.Close()
	x509In, err := os.Open(x509Path)
	if err != nil {
		return err
	}
	defer x509In.Close()
	observations, err := certchains.LoadZeekLogs(sslIn, x509In)
	if err != nil {
		return err
	}
	fmt.Printf("reloaded %d observations from %s\n\n", len(observations), dir)

	pipeline := certchains.NewPipeline(scenario.DB, scenario.CT, scenario.Classifier, scenario.InterceptRegistry)
	report := pipeline.Run(observations)
	fmt.Print(report.Render())

	fmt.Println()
	fmt.Print(certchains.AnalyzeRevisit(scenario).Render())
	return nil
}
