// Chain doctor: the §6.2 tooling recommendation made concrete. Given
// misconfigured chains (the patterns the paper catalogs in Appendix F), the
// doctor lints each one, explains what is wrong in the paper's terms, and
// proposes the repaired delivery.
package main

import (
	"fmt"
	"time"

	"certchains"
)

func main() {
	now := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)

	db := certchains.NewTrustDB()
	root := cert(now, "CN=Doctor Root CA,O=TrustCo", "CN=Doctor Root CA,O=TrustCo", certchains.BCTrue, "")
	db.AddRoot(certchains.StoreMozilla, root)
	inter := cert(now, "CN=Doctor Root CA,O=TrustCo", "CN=Doctor Issuing CA,O=TrustCo", certchains.BCTrue, "")
	if err := db.AddCCADBIntermediate(inter); err != nil {
		panic(err)
	}
	classifier := certchains.NewClassifier(db)
	linter := certchains.NewLinter(classifier, certchains.LintConfig{Now: now})

	patients := []struct {
		name  string
		chain certchains.Chain
	}{
		{
			// Appendix F.2: HP "tester" — valid chain + self-signed junk.
			"tester appended (F.2)",
			certchains.Chain{
				cert(now, "CN=Doctor Issuing CA,O=TrustCo", "CN=webauth.printer.example", certchains.BCFalse, "webauth.printer.example"),
				inter,
				root,
				cert(now, "CN=tester", "CN=tester", certchains.BCAbsent, ""),
			},
		},
		{
			// Appendix F.2: Let's Encrypt staging placeholder leaked to prod.
			"staging placeholder (F.2)",
			certchains.Chain{
				cert(now, "CN=Doctor Issuing CA,O=TrustCo", "CN=blog.example", certchains.BCFalse, "blog.example"),
				inter,
				cert(now, "CN=Fake LE Root X1", "CN=Fake LE Intermediate X1", certchains.BCTrue, ""),
			},
		},
		{
			// Appendix F.3: localhost placeholder replacing the leaf.
			"localhost leaf (F.3)",
			certchains.Chain{
				cert(now, "EMAILADDRESS=webmaster@localhost,CN=localhost,OU=none,O=none,L=Sometown,ST=Someprovince,C=US",
					"EMAILADDRESS=webmaster@localhost,CN=localhost,OU=none,O=none,L=Sometown,ST=Someprovince,C=US",
					certchains.BCAbsent, ""),
				inter,
				root,
			},
		},
	}

	for _, p := range patients {
		fmt.Printf("━━ %s\n", p.name)
		a := classifier.Analyze(p.chain)
		fmt.Printf("   diagnosis: category=%s verdict=%s mismatch-ratio=%.2f\n",
			a.Category, a.Verdict, a.MismatchRatio)

		for _, f := range linter.Chain(p.chain) {
			fmt.Printf("   lint %s\n", f)
		}

		r := certchains.RepairWithClock(a, now)
		if !r.Fixable {
			fmt.Printf("   prescription: not repairable from presented certificates\n")
			for _, act := range r.Actions {
				fmt.Printf("     - %s: %s\n", act.Kind, act.Reason)
			}
		} else {
			for _, act := range r.Actions {
				fmt.Printf("   prescription: %s (%s)\n", act.Kind, act.Reason)
			}
			fmt.Printf("   repaired delivery (%d certs):\n", len(r.Chain))
			for i, m := range r.Chain {
				fmt.Printf("     [%d] %s\n", i, m.Subject.String())
			}
		}
		fmt.Println()
	}
}

func cert(now time.Time, issuer, subject string, bc certchains.BasicConstraints, san string) *certchains.Certificate {
	c := &certchains.Certificate{
		FP:        certchains.Fingerprint("fp|" + issuer + "|" + subject),
		Issuer:    certchains.MustParseDN(issuer),
		Subject:   certchains.MustParseDN(subject),
		NotBefore: now.AddDate(-1, 0, 0),
		NotAfter:  now.AddDate(1, 0, 0),
		BC:        bc,
	}
	if san != "" {
		c.SAN = []string{san}
	}
	return c
}
