# certchains build targets.

GO ?= go

.PHONY: all build vet lint test race bench bench-ratchet fuzz report experiments ingest-smoke obs-smoke dist-smoke serve-smoke chaos clean

all: build vet lint test

build:
	$(GO) build ./...

# Static analysis: go vet plus certchain-vet, the project-invariant suite
# (determinism, merge/snapshot completeness, resilience conventions, hot-path
# allocations, lock discipline). Suppressions live in .certchain-vet.json
# (reason required per entry; stale entries fail). The JSON artifact is what
# CI uploads.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/certchain-vet -artifact vet-report.json .

# Lint: the vet suite and — when installed — staticcheck and govulncheck.
# The external tools are gated on `command -v` so offline checkouts still
# lint; CI installs both.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo staticcheck ./...; staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo govulncheck ./...; govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping"; \
	fi

test:
	$(GO) test ./...

# Full suite under the race detector — exercises the sharded pipeline, the
# classifier/registry locks, and the detector's verdict cache concurrently.
race:
	$(GO) test -race ./...

# End-to-end smoke over the streaming ingest daemon: the batch-equivalence
# suite, the in-process daemon lifecycle, and the process-level SIGINT tests
# (real binaries, real signals, final snapshot on disk).
ingest-smoke:
	$(GO) test -count=1 -run 'TestIngestorMatchesBatch|TestDaemonGracefulShutdown' ./internal/ingest/
	$(GO) test -count=1 -run 'TestSignalShutdownWritesSnapshot' ./cmd/certchain-ingestd/
	$(GO) test -count=1 -run 'TestServeShutsDownOnInterrupt' ./cmd/ctlog/

# Observability smoke: a real certchain-analyze run's -trace and -manifest
# artifacts validate (one span set per declared stage, manifest schema),
# the manifest's deterministic subset is byte-identical across seeds ×
# worker widths, and every serving binary's /metrics passes the
# exposition-format conformance checker.
obs-smoke:
	$(GO) test -count=1 -run 'TestObsArtifactsSmoke' ./cmd/certchain-analyze/
	$(GO) test -count=1 -run 'TestManifestSubsetEquivalence' ./internal/analysis/
	$(GO) test -count=1 -run 'TestServeMuxAdminEndpoints' ./cmd/ctlog/
	$(GO) test -count=1 -run 'TestStatsPrometheusConformance|TestFillEscapesHostileLabels' ./internal/ingest/

# Distributed topology smoke: the three-rung equivalence claim — one
# sequential pass, N goroutines in one process, N worker processes — is
# byte-identical on text report, JSON export, and manifest deterministic
# subset; then the real-binary rung (3 certchain-shardd + certchain-coord vs
# the single-process -local run), including the chaos run that SIGKILLs a
# worker mid-partition and still demands identical bytes. The trace tests
# cover the cross-process spliced Chrome trace: worker span sets ride the
# partial snapshots, stale-run spans are fenced out, and the real-binary run
# emits one artifact with coordinator + every worker's tracks.
dist-smoke:
	$(GO) test -count=1 -run 'TestDistTopologyEquivalence|TestCoordWorkerDeathRequeue|TestCoordDuplicateCompletion|TestDistSplicedTrace|TestDistStaleTraceNotSpliced|TestRunLocalTrace' ./internal/dist/
	$(GO) test -count=1 -run 'TestDistProcessEquivalence|TestDistProcessTrace|TestDistChaosKillWorker' ./cmd/certchain-coord/

# Serving-telemetry smoke: the shared HTTP middleware's metric families and
# deterministic access logs (including concurrent scrapes), the quantile
# estimator, and the BENCH_serve schema validator; then a short real
# serve-bench run — its fresh output AND the committed baseline must both
# pass obs-check.
serve-smoke:
	$(GO) test -count=1 -run 'TestMiddleware|TestParseRoutes|TestSeriesQuantile|TestValidateServeBench' ./internal/obs/
	$(GO) run ./cmd/serve-bench -duration 1s -out /tmp/BENCH_serve_smoke.json
	$(GO) run ./cmd/obs-check -serve-bench /tmp/BENCH_serve_smoke.json
	$(GO) run ./cmd/obs-check -serve-bench BENCH_serve.json

# Chaos suite: every fault-injection matrix under the race detector —
# scanner dial faults, ctlog HTTP faults, middlebox upstream timeout/retry,
# zeek tailer file faults (including the fault-plan fuzzer's corpus), and
# the ingest chaos-equivalence suite (faulted runs byte-identical to
# fault-free at every worker width) — plus a coverage ratchet on the
# resilience layer itself. The floor only moves up.
RESILIENCE_COVER_FLOOR = 90
chaos:
	$(GO) test -race -count=1 ./internal/resilience/
	$(GO) test -race -count=1 -run 'TestScanChaos|TestScanAllChaos' ./internal/scanner/
	$(GO) test -race -count=1 -run 'TestCTLog' ./internal/ctlog/
	$(GO) test -race -count=1 -run 'TestProxyUpstream' ./internal/middlebox/
	$(GO) test -race -count=1 -run 'TestTailer|FuzzTailerWithFaults' ./internal/zeek/
	$(GO) test -race -count=1 -run 'TestIngestChaosEquivalence|TestIngestSnapshotWriteRetry|TestDaemonChaosE2E' ./internal/ingest/
	@cov=$$($(GO) test -count=1 -cover ./internal/resilience/ | grep -o 'coverage: [0-9.]*%' | grep -o '[0-9.]*'); \
	echo "internal/resilience coverage: $$cov% (floor $(RESILIENCE_COVER_FLOOR)%)"; \
	awk -v c="$$cov" -v f="$(RESILIENCE_COVER_FLOOR)" 'BEGIN { exit (c+0 >= f) ? 0 : 1 }' \
		|| { echo "coverage ratchet failed: $$cov% < $(RESILIENCE_COVER_FLOOR)%"; exit 1; }

# One benchmark per paper table/figure plus ablations (bench_test.go), then
# the span-driven per-stage pipeline baseline (ns/op, records/sec, and
# allocs/op per stage at workers 1 and GOMAXPROCS), then the serving-path
# baseline (p50/p95/p99 latency and QPS for /report under concurrent load
# while ingest runs).
bench:
	$(GO) test -bench=. -benchmem .
	$(GO) run ./cmd/pipeline-bench -out BENCH_pipeline.json
	$(GO) run ./cmd/serve-bench -out BENCH_serve.json

# CI gate on pipeline performance: replay the benchmark harness with the
# committed baseline's parameters and fail on >10% observe records/sec
# regression or any stage's allocs_per_op growing past a small jitter
# allowance. After an intentional optimization, regenerate the baseline with
# `go run ./cmd/pipeline-bench -out BENCH_pipeline.json` and commit it.
bench-ratchet:
	$(GO) run ./cmd/bench-ratchet -baseline BENCH_pipeline.json

# Short fuzz pass over the parsers and the shard-merge property (longer
# runs: increase -fuzztime).
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/dn/
	$(GO) test -fuzz FuzzFieldRoundTrip -fuzztime 20s ./internal/zeek/
	$(GO) test -fuzz FuzzReader -fuzztime 20s ./internal/zeek/
	$(GO) test -fuzz FuzzJSONReader -fuzztime 20s ./internal/zeek/
	$(GO) test -fuzz FuzzTailerWithFaults -fuzztime 30s ./internal/zeek/
	$(GO) test -fuzz FuzzTSVDecodeEquivalence -fuzztime 30s ./internal/zeek/
	$(GO) test -fuzz FuzzJSONDecodeEquivalence -fuzztime 30s ./internal/zeek/
	$(GO) test -fuzz FuzzShardMerge -fuzztime 30s ./internal/analysis/
	$(GO) test -fuzz FuzzRegistryMerge -fuzztime 20s ./internal/obs/
	$(GO) test -fuzz FuzzLintChain -fuzztime 30s ./internal/lint/
	$(GO) test -fuzz FuzzPartialSnapshotDecode -fuzztime 20s ./internal/analysis/

# The full paper report with paper-vs-measured verification.
report:
	$(GO) run ./cmd/certchain-analyze -scale 0.01 -verify

# Regenerate the artifacts EXPERIMENTS.md records.
experiments:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	rm -f test_output.txt bench_output.txt vet-report.json
