# certchains build targets.

GO ?= go

.PHONY: all build vet lint test race bench fuzz report experiments ingest-smoke clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet, the repo's own determinism analyzer (flags
# wall-clock reads, unseeded randomness, and map-iteration-ordered output in
# deterministic packages), and — when installed — staticcheck and govulncheck.
# The external tools are gated on `command -v` so offline checkouts still
# lint; CI installs both.
lint: vet
	$(GO) run ./cmd/determinism-lint .
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo staticcheck ./...; staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo govulncheck ./...; govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping"; \
	fi

test:
	$(GO) test ./...

# Full suite under the race detector — exercises the sharded pipeline, the
# classifier/registry locks, and the detector's verdict cache concurrently.
race:
	$(GO) test -race ./...

# End-to-end smoke over the streaming ingest daemon: the batch-equivalence
# suite, the in-process daemon lifecycle, and the process-level SIGINT tests
# (real binaries, real signals, final snapshot on disk).
ingest-smoke:
	$(GO) test -count=1 -run 'TestIngestorMatchesBatch|TestDaemonGracefulShutdown' ./internal/ingest/
	$(GO) test -count=1 -run 'TestSignalShutdownWritesSnapshot' ./cmd/certchain-ingestd/
	$(GO) test -count=1 -run 'TestServeShutsDownOnInterrupt' ./cmd/ctlog/

# One benchmark per paper table/figure plus ablations (bench_test.go).
bench:
	$(GO) test -bench=. -benchmem .

# Short fuzz pass over the parsers and the shard-merge property (longer
# runs: increase -fuzztime).
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/dn/
	$(GO) test -fuzz FuzzFieldRoundTrip -fuzztime 20s ./internal/zeek/
	$(GO) test -fuzz FuzzReader -fuzztime 20s ./internal/zeek/
	$(GO) test -fuzz FuzzJSONReader -fuzztime 20s ./internal/zeek/
	$(GO) test -fuzz FuzzShardMerge -fuzztime 30s ./internal/analysis/
	$(GO) test -fuzz FuzzLintChain -fuzztime 30s ./internal/lint/

# The full paper report with paper-vs-measured verification.
report:
	$(GO) run ./cmd/certchain-analyze -scale 0.01 -verify

# Regenerate the artifacts EXPERIMENTS.md records.
experiments:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	rm -f test_output.txt bench_output.txt
