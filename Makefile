# certchains build targets.

GO ?= go

.PHONY: all build vet test race bench fuzz report experiments clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector — exercises the sharded pipeline, the
# classifier/registry locks, and the detector's verdict cache concurrently.
race:
	$(GO) test -race ./...

# One benchmark per paper table/figure plus ablations (bench_test.go).
bench:
	$(GO) test -bench=. -benchmem .

# Short fuzz pass over the parsers and the shard-merge property (longer
# runs: increase -fuzztime).
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/dn/
	$(GO) test -fuzz FuzzFieldRoundTrip -fuzztime 20s ./internal/zeek/
	$(GO) test -fuzz FuzzReader -fuzztime 20s ./internal/zeek/
	$(GO) test -fuzz FuzzJSONReader -fuzztime 20s ./internal/zeek/
	$(GO) test -fuzz FuzzShardMerge -fuzztime 30s ./internal/analysis/

# The full paper report with paper-vs-measured verification.
report:
	$(GO) run ./cmd/certchain-analyze -scale 0.01 -verify

# Regenerate the artifacts EXPERIMENTS.md records.
experiments:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	rm -f test_output.txt bench_output.txt
