package certchains_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"certchains"
)

// runCmd executes one of the repo's commands via `go run` and returns its
// combined output. These are end-to-end smoke tests of the actual binaries.
func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLIGenAndAnalyze(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI e2e in -short mode")
	}
	dir := t.TempDir()
	out := runCmd(t, "./cmd/certchain-gen", "-out", dir, "-scale", "0.001", "-max-conns", "5")
	if !strings.Contains(out, "wrote") {
		t.Errorf("gen output: %s", out)
	}
	for _, f := range []string{"ssl.log", "x509.log"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}

	out = runCmd(t, "./cmd/certchain-analyze",
		"-ssl", filepath.Join(dir, "ssl.log"),
		"-x509", filepath.Join(dir, "x509.log"),
		"-scale", "0.001", "-revisit=false")
	for _, want := range []string{"Table 1", "Table 3", "321", "Figure 6"} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q", want)
		}
	}
}

func TestCLIAnalyzeJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI e2e in -short mode")
	}
	out := runCmd(t, "./cmd/certchain-analyze", "-scale", "0.001", "-json")
	if !strings.Contains(out, `"table3_hybrid"`) || !strings.Contains(out, `"total": 321`) {
		t.Errorf("JSON export missing hybrid absolutes:\n%.500s", out)
	}
}

func TestCLIServeAndScanDemo(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI e2e in -short mode")
	}
	out := runCmd(t, "./cmd/certchain-scan", "-demo")
	if !strings.Contains(out, "verdict=contains-matched-path") {
		t.Errorf("scan demo should flag the unnecessary certificate:\n%s", out)
	}
	out = runCmd(t, "./cmd/certchain-serve")
	if !strings.Contains(out, "printer.campus.test") {
		t.Errorf("serve output: %s", out)
	}
}

func TestCLICTLog(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI e2e in -short mode")
	}
	out := runCmd(t, "./cmd/ctlog", "-scale", "0.001")
	for _, want := range []string{"tree head:", "STH signature valid: true", "inclusion proof for entry 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("ctlog output missing %q:\n%s", want, out)
		}
	}
}

func TestCLILintPEM(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI e2e in -short mode")
	}
	// Mint a chain with an unnecessary certificate and write it as PEM.
	mint := certchains.NewMint(88, time.Now())
	root, err := mint.NewRoot(certchains.PkixName("Lint Root"))
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := root.IssueLeaf(certchains.PkixName("lint.example.test"), certchains.WithSANs("lint.example.test"))
	if err != nil {
		t.Fatal(err)
	}
	stray, err := mint.SelfSigned(certchains.PkixName("tester"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "chain.pem")
	var pemData []byte
	for _, c := range []*certchains.RealCertificate{leaf, root.Cert, stray} {
		pemData = append(pemData, c.PEM()...)
	}
	if err := os.WriteFile(path, pemData, 0o644); err != nil {
		t.Fatal(err)
	}

	out := runCmd(t, "./cmd/certchain-lint", "-pem", path)
	for _, want := range []string{"chain of 3 certificate(s)", "unnecessary-certificates", "drop-unnecessary", "proposed delivery"} {
		if !strings.Contains(out, want) {
			t.Errorf("lint output missing %q:\n%s", want, out)
		}
	}

	jsonOut := runCmd(t, "./cmd/certchain-lint", "-pem", path, "-json")
	for _, want := range []string{`"findings"`, `"unnecessary-certificates"`, `"summary"`} {
		if !strings.Contains(jsonOut, want) {
			t.Errorf("lint -json output missing %q:\n%s", want, jsonOut)
		}
	}

	sarifOut := runCmd(t, "./cmd/certchain-lint", "-pem", path, "-sarif")
	for _, want := range []string{"sarif-2.1.0", `"certchain-lint"`, "unnecessary-certificates", path} {
		if !strings.Contains(sarifOut, want) {
			t.Errorf("lint -sarif output missing %q:\n%s", want, sarifOut)
		}
	}

	listOut := runCmd(t, "./cmd/certchain-lint", "-list-checks", "-profile", "paper")
	for _, want := range []string{`profile "paper"`, "unnecessary-certificates", "cite:"} {
		if !strings.Contains(listOut, want) {
			t.Errorf("lint -list-checks output missing %q:\n%s", want, listOut)
		}
	}
}

func TestCLILintCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI e2e in -short mode")
	}
	dir := t.TempDir()
	runCmd(t, "./cmd/certchain-gen", "-seed", "5", "-scale", "0.001", "-out", dir)
	args := []string{"./cmd/certchain-lint", "-corpus",
		"-ssl", filepath.Join(dir, "ssl.log"), "-x509", filepath.Join(dir, "x509.log"),
		"-seed", "5", "-scale", "0.001", "-profile", "strict"}
	out := runCmd(t, args...)
	for _, want := range []string{`Corpus lint (profile "strict")`, "basic-constraints-absent", "serial-reuse clusters"} {
		if !strings.Contains(out, want) {
			t.Errorf("corpus lint output missing %q:\n%s", want, out)
		}
	}
	// The prevalence table must not depend on the worker count.
	one := runCmd(t, append(args[:len(args):len(args)], "-workers", "1")...)
	six := runCmd(t, append(args[:len(args):len(args)], "-workers", "6")...)
	if one != six {
		t.Errorf("corpus lint output differs between 1 and 6 workers:\n%s\n---\n%s", one, six)
	}
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping examples e2e in -short mode")
	}
	cases := []struct {
		path string
		want string
	}{
		{"./examples/quickstart", "complete matched path: positions 1..2"},
		{"./examples/interception-audit", "issuer-mismatch"},
		{"./examples/chain-doctor", "prescription: drop-unnecessary"},
		{"./examples/retrospective-scan", "strict presented-chain policy: REJECT"},
		{"./examples/live-interception", "CT cross-reference: issuer-mismatch"},
	}
	for _, c := range cases {
		out := runCmd(t, c.path)
		if !strings.Contains(out, c.want) {
			t.Errorf("%s output missing %q:\n%s", c.path, c.want, out)
		}
	}
}

func TestExampleCampusPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping examples e2e in -short mode")
	}
	out := runCmd(t, "./examples/campus-pipeline")
	for _, want := range []string{"reloaded", "Table 3", "321", "§5 Revisit"} {
		if !strings.Contains(out, want) {
			t.Errorf("campus-pipeline output missing %q", want)
		}
	}
}
