// Package scanner implements the retrospective TLS scan of §5: a real TLS
// client (the `openssl s_client -showcerts` analog) that connects to
// servers, records the exact certificate chain each presents, and feeds the
// result back through the structure analyzer for the then-vs-now
// comparison.
package scanner

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"net"
	"time"

	"certchains/internal/certmodel"
	"certchains/internal/chain"
	"certchains/internal/obs"
	"certchains/internal/resilience"
)

// Outcome is the graceful-degradation verdict for one scanned endpoint: a
// sweep never aborts on an unreachable server, it records what happened and
// moves on (§5's retrospective scan hit plenty of dead hosts).
const (
	OutcomeOK        = "ok"               // handshake completed, chain captured
	OutcomeEmpty     = "empty-chain"      // handshake completed, no certificates
	OutcomeDial      = "dial-failed"      // could not connect after retries
	OutcomeHandshake = "handshake-failed" // connected but TLS never completed
)

// Result is one scanned endpoint.
type Result struct {
	// Addr is the endpoint scanned.
	Addr string
	// SNI is the server name sent in the handshake.
	SNI string
	// Chain is the presented chain in delivery order (leaf first), as the
	// log-level model the analyzer consumes.
	Chain certmodel.Chain
	// Raw holds the presented DER certificates.
	Raw [][]byte
	// Err is the connection or handshake error, nil on success.
	Err error
	// Outcome is the degradation verdict (one of the Outcome* constants).
	Outcome string
	// Attempts is how many connection attempts the retry budget spent.
	Attempts int
	// Duration is the wall time of the scan, including retries.
	Duration time.Duration
}

// Reachable reports whether the scan obtained a chain.
func (r *Result) Reachable() bool {
	return r.Err == nil && len(r.Chain) > 0
}

// Scanner dials endpoints and captures presented chains.
type Scanner struct {
	// Timeout bounds each connection attempt (each retry gets a fresh one).
	Timeout time.Duration
	// Dialer overrides the network dialer (tests inject failures or wrap it
	// with a resilience fault plan).
	Dialer func(ctx context.Context, network, addr string) (net.Conn, error)
	// Retry is the per-target retry budget. The zero value makes a single
	// attempt; New installs resilience.DefaultPolicy.
	Retry resilience.Policy
	// Metrics, when set, books scan attempts and retries into the shared
	// obs registry.
	Metrics *resilience.Metrics
	// Tracer, when set, records one "scan" span per ScanAll sweep. The span
	// is opened by the coordinator before any connection launches, so its
	// position in the trace is deterministic even though scan durations are
	// pure wall clock.
	Tracer *obs.Tracer
}

// New returns a scanner with the given per-connection timeout and the
// default retry budget.
func New(timeout time.Duration) *Scanner {
	return &Scanner{Timeout: timeout, Retry: resilience.DefaultPolicy()}
}

// Scan connects to addr, completes a TLS handshake offering sni, and
// records the presented chain. Certificate verification is disabled — the
// point is to observe what the server sends, not to judge it (judging is
// the analyzer's job). Transient failures (refused, reset, timed out) are
// retried within the scanner's Retry budget; the final error and attempt
// count are recorded on the result, never surfaced as an abort.
func (s *Scanner) Scan(ctx context.Context, addr, sni string) *Result {
	start := time.Now()
	res := &Result{Addr: addr, SNI: sni, Outcome: OutcomeDial}

	policy := s.Retry.WithMetrics(s.Metrics)
	attempts, err := policy.Do(ctx, "scan.target", func(ctx context.Context) error {
		return s.scanOnce(ctx, addr, sni, res)
	})
	res.Attempts = attempts
	res.Err = err
	if err == nil {
		res.Outcome = OutcomeOK
		if len(res.Chain) == 0 {
			res.Outcome = OutcomeEmpty
		}
	}
	res.Duration = time.Since(start)
	return res
}

// scanOnce is one connection attempt; it resets the result's chain state so
// a retried attempt never mixes certificates from a partial predecessor.
func (s *Scanner) scanOnce(ctx context.Context, addr, sni string, res *Result) error {
	res.Raw, res.Chain = nil, nil

	dialCtx := ctx
	if s.Timeout > 0 {
		var cancel context.CancelFunc
		dialCtx, cancel = context.WithTimeout(ctx, s.Timeout)
		defer cancel()
	}
	dial := s.Dialer
	if dial == nil {
		var d net.Dialer
		dial = d.DialContext
	}
	conn, err := dial(dialCtx, "tcp", addr)
	if err != nil {
		res.Outcome = OutcomeDial
		return attemptErr(fmt.Errorf("scanner: dial %s: %w", addr, err), dialCtx, ctx)
	}
	defer conn.Close()

	tc := tls.Client(conn, &tls.Config{
		ServerName:         sni,
		InsecureSkipVerify: true, // observation, not validation
		MinVersion:         tls.VersionTLS12,
	})
	if err := tc.HandshakeContext(dialCtx); err != nil {
		res.Outcome = OutcomeHandshake
		return attemptErr(fmt.Errorf("scanner: handshake %s: %w", addr, err), dialCtx, ctx)
	}
	for _, cert := range tc.ConnectionState().PeerCertificates {
		res.Raw = append(res.Raw, cert.Raw)
		res.Chain = append(res.Chain, certmodel.FromX509(cert))
	}
	return nil
}

// attemptErr marks err retryable when the per-attempt deadline fired while
// the sweep's own context is still alive — that's a slow server, not a
// cancelled scan.
func attemptErr(err error, attemptCtx, parent context.Context) error {
	if attemptCtx.Err() != nil && parent.Err() == nil {
		return resilience.MarkRetryable(err)
	}
	return err
}

// Target pairs an endpoint with the SNI to offer.
type Target struct {
	Addr string
	SNI  string
}

// ScanAll scans targets with bounded concurrency, preserving input order in
// the result slice.
func (s *Scanner) ScanAll(ctx context.Context, targets []Target, parallelism int) []*Result {
	if parallelism < 1 {
		parallelism = 1
	}
	sp := s.Tracer.Start("scan", "scan").
		SetRecords(int64(len(targets))).
		Arg("parallelism", int64(parallelism))
	defer sp.End()
	results := make([]*Result, len(targets))
	sem := make(chan struct{}, parallelism)
	done := make(chan int)
	for i, t := range targets {
		go func(i int, t Target) {
			sem <- struct{}{}
			results[i] = s.Scan(ctx, t.Addr, t.SNI)
			<-sem
			done <- i
		}(i, t)
	}
	for range targets {
		<-done
	}
	var reachable, attempts int64
	for _, r := range results {
		if r.Reachable() {
			reachable++
		}
		attempts += int64(r.Attempts)
	}
	sp.Arg("reachable", reachable)
	sp.Arg("attempts", attempts)
	return results
}

// Summarize tallies sweep outcomes — the graceful-degradation report a CLI
// prints instead of aborting on the first unreachable server.
func Summarize(results []*Result) map[string]int {
	out := make(map[string]int)
	for _, r := range results {
		out[r.Outcome]++
	}
	return out
}

// Comparison is the then-vs-now verdict for one server (§5).
type Comparison struct {
	Addr string
	// OldCategory / NewCategory are the §3.2.2 categories then and now.
	OldCategory chain.Category
	NewCategory chain.Category
	// OldLen / NewLen are the chain lengths.
	OldLen, NewLen int
	// NewVerdict is the structural verdict of the scanned chain.
	NewVerdict chain.Verdict
}

// Compare analyzes a scanned chain against its historical observation.
func Compare(cl *chain.Classifier, addr string, oldChain, newChain certmodel.Chain) *Comparison {
	oldA := cl.Analyze(oldChain)
	newA := cl.Analyze(newChain)
	return &Comparison{
		Addr:        addr,
		OldCategory: oldA.Category,
		NewCategory: newA.Category,
		OldLen:      len(oldChain),
		NewLen:      len(newChain),
		NewVerdict:  newA.Verdict,
	}
}

// RootsFromDER parses trusted roots for verification-enabled scans.
func RootsFromDER(ders ...[]byte) (*x509.CertPool, error) {
	pool := x509.NewCertPool()
	for _, der := range ders {
		c, err := x509.ParseCertificate(der)
		if err != nil {
			return nil, fmt.Errorf("scanner: parse root: %w", err)
		}
		pool.AddCert(c)
	}
	return pool, nil
}
