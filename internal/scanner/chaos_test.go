package scanner

import (
	"context"
	"testing"
	"time"

	"certchains/internal/obs"
	"certchains/internal/resilience"
)

// Chaos matrix for the scanner: every plan here eventually succeeds, so the
// chaos-equivalence contract applies — the captured chain must be identical
// to the fault-free scan's, faults may only change attempt counts and retry
// metrics.

// chaosScanner builds a scanner whose dial path runs through the fault plan
// and whose retry policy is fully deterministic (seeded jitter, no real
// sleeping).
func chaosScanner(plan *resilience.Plan, m *resilience.Metrics) *Scanner {
	s := New(5 * time.Second)
	s.Dialer = plan.Dial("scan.dial", nil)
	s.Retry.JitterSeed = 7
	s.Retry.Sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	s.Metrics = m
	return s
}

func TestScanChaosMatrix(t *testing.T) {
	env := newFarmEnv(t)

	cases := []struct {
		name   string
		faults []resilience.Fault
	}{
		{"fault-free", nil},
		{"dial-fail-then-ok", []resilience.Fault{
			{Op: "scan.dial", Attempt: 1, Kind: resilience.DialRefused},
		}},
		{"dial-fail-twice-then-ok", []resilience.Fault{
			{Op: "scan.dial", Attempt: 1, Kind: resilience.DialRefused},
			{Op: "scan.dial", Attempt: 2, Kind: resilience.DialRefused},
		}},
		{"reset-then-ok", []resilience.Fault{
			{Op: "scan.dial", Attempt: 1, Kind: resilience.ConnReset},
		}},
		{"refuse-reset-then-ok", []resilience.Fault{
			{Op: "scan.dial", Attempt: 1, Kind: resilience.DialRefused},
			{Op: "scan.dial", Attempt: 2, Kind: resilience.ConnReset},
		}},
	}

	// The fault-free reference chain.
	ref := New(5*time.Second).Scan(context.Background(), env.clean.Addr, "clean.example.com")
	if ref.Err != nil {
		t.Fatal(ref.Err)
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			m := resilience.NewMetrics(reg)
			plan := resilience.NewPlan(c.faults...)
			plan.SetMetrics(m)
			s := chaosScanner(plan, m)

			res := s.Scan(context.Background(), env.clean.Addr, "clean.example.com")
			if res.Err != nil {
				t.Fatalf("eventually-successful plan must succeed: %v\nplan: %s", res.Err, plan.Describe())
			}
			if res.Outcome != OutcomeOK {
				t.Errorf("outcome = %q", res.Outcome)
			}

			// Equivalence: the captured chain is byte-identical to the
			// fault-free scan.
			if got, want := res.Chain.Key(), ref.Chain.Key(); got != want {
				t.Errorf("chain diverged under faults:\n got %s\nwant %s", got, want)
			}
			if len(res.Raw) != len(ref.Raw) {
				t.Fatalf("raw cert count = %d, want %d", len(res.Raw), len(ref.Raw))
			}
			for i := range res.Raw {
				if string(res.Raw[i]) != string(ref.Raw[i]) {
					t.Errorf("raw cert %d differs from fault-free scan", i)
				}
			}

			// Accounting: every planned fault fired, attempts = failures + 1,
			// and the registry's retry counter equals the injector's failing
			// fault count.
			if plan.Pending() != 0 {
				t.Errorf("unplayed faults: %s", plan.Describe())
			}
			wantAttempts := plan.FailureCount() + 1
			if res.Attempts != wantAttempts {
				t.Errorf("attempts = %d, want %d", res.Attempts, wantAttempts)
			}
			if got := resilience.RetryTotal(reg); got != float64(plan.FailureCount()) {
				t.Errorf("retries metric = %v, want %d", got, plan.FailureCount())
			}
			if got := resilience.FaultTotal(reg); got != float64(plan.InjectedCount()) {
				t.Errorf("fault metric = %v, want %d", got, plan.InjectedCount())
			}
		})
	}
}

func TestScanChaosBudgetExhaustion(t *testing.T) {
	env := newFarmEnv(t)
	reg := obs.NewRegistry()
	m := resilience.NewMetrics(reg)
	// More failures than the budget allows: the scan records a degradation
	// outcome instead of succeeding — and never aborts the sweep.
	plan := resilience.NewPlan(
		resilience.Fault{Op: "scan.dial", Attempt: 1, Kind: resilience.DialRefused},
		resilience.Fault{Op: "scan.dial", Attempt: 2, Kind: resilience.DialRefused},
		resilience.Fault{Op: "scan.dial", Attempt: 3, Kind: resilience.DialRefused},
		resilience.Fault{Op: "scan.dial", Attempt: 4, Kind: resilience.DialRefused},
	)
	plan.SetMetrics(m)
	s := chaosScanner(plan, m)

	res := s.Scan(context.Background(), env.clean.Addr, "clean.example.com")
	if res.Err == nil {
		t.Fatal("exhausted budget must surface the error")
	}
	if !resilience.IsInjected(res.Err) {
		t.Errorf("err = %v, want injected", res.Err)
	}
	if res.Outcome != OutcomeDial {
		t.Errorf("outcome = %q, want %q", res.Outcome, OutcomeDial)
	}
	if res.Attempts != s.Retry.MaxAttempts {
		t.Errorf("attempts = %d, want %d", res.Attempts, s.Retry.MaxAttempts)
	}
	if v, ok := reg.Value("resilience_giveups_total", "scan.target"); !ok || v != 1 {
		t.Errorf("giveups = %v, %v", v, ok)
	}
}

func TestScanAllChaosSweepDegradesGracefully(t *testing.T) {
	env := newFarmEnv(t)
	reg := obs.NewRegistry()
	m := resilience.NewMetrics(reg)
	// First dial of the sweep is refused once; a dead address never answers.
	// The plan's per-op counter is shared across the sweep, so keep the
	// concurrency at 1 for a deterministic fault placement.
	plan := resilience.NewPlan(
		resilience.Fault{Op: "scan.dial", Attempt: 1, Kind: resilience.DialRefused},
	)
	plan.SetMetrics(m)
	s := chaosScanner(plan, m)

	targets := []Target{
		{Addr: env.clean.Addr, SNI: "clean.example.com"},
		{Addr: "127.0.0.1:1", SNI: "dead.example.com"}, // nothing listens on port 1
		{Addr: env.single.Addr, SNI: "printer.local"},
	}
	results := s.ScanAll(context.Background(), targets, 1)
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Err != nil || results[0].Outcome != OutcomeOK {
		t.Errorf("clean target: err=%v outcome=%q", results[0].Err, results[0].Outcome)
	}
	if results[1].Err == nil || results[1].Outcome != OutcomeDial {
		t.Errorf("dead target must degrade: err=%v outcome=%q", results[1].Err, results[1].Outcome)
	}
	if results[2].Err != nil {
		t.Errorf("sweep must continue past a dead server: %v", results[2].Err)
	}
	sum := Summarize(results)
	if sum[OutcomeOK] != 2 || sum[OutcomeDial] != 1 {
		t.Errorf("summary = %v", sum)
	}
}
