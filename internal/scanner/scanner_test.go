package scanner

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"certchains/internal/certmodel"
	"certchains/internal/chain"
	"certchains/internal/pki"
	"certchains/internal/serverfarm"
	"certchains/internal/trustdb"
)

var clock = time.Now()

// farmEnv starts a farm with a clean chain, a misconfigured chain, and a
// self-signed single.
type farmEnv struct {
	farm   *serverfarm.Farm
	clean  *serverfarm.Server
	dirty  *serverfarm.Server
	single *serverfarm.Server
	root   *pki.CA
	inter  *pki.CA
}

func newFarmEnv(t *testing.T) *farmEnv {
	t.Helper()
	m := pki.NewMint(31, clock)
	root, err := m.NewRoot(pki.Name("Farm Root", "Farm"))
	if err != nil {
		t.Fatal(err)
	}
	inter, err := root.NewIntermediate(pki.Name("Farm Issuing CA", "Farm"))
	if err != nil {
		t.Fatal(err)
	}
	leafA, err := inter.IssueLeaf(pki.Name("clean.example.com"), pki.WithSANs("clean.example.com"))
	if err != nil {
		t.Fatal(err)
	}
	leafB, err := inter.IssueLeaf(pki.Name("dirty.example.com"), pki.WithSANs("dirty.example.com"))
	if err != nil {
		t.Fatal(err)
	}
	stray, err := m.SelfSigned(pki.Name("tester"))
	if err != nil {
		t.Fatal(err)
	}
	selfSigned, err := m.SelfSigned(pki.Name("printer.local"), pki.WithSANs("printer.local"))
	if err != nil {
		t.Fatal(err)
	}

	farm := serverfarm.New()
	t.Cleanup(farm.Close)
	clean, err := farm.Add("clean.example.com", pki.Chain(leafA, inter.Cert))
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := farm.Add("dirty.example.com", pki.Chain(leafB, inter.Cert, stray))
	if err != nil {
		t.Fatal(err)
	}
	single, err := farm.Add("printer.local", pki.Chain(selfSigned))
	if err != nil {
		t.Fatal(err)
	}
	return &farmEnv{farm: farm, clean: clean, dirty: dirty, single: single, root: root, inter: inter}
}

func TestScanCapturesPresentedChain(t *testing.T) {
	env := newFarmEnv(t)
	s := New(5 * time.Second)

	res := s.Scan(context.Background(), env.clean.Addr, "clean.example.com")
	if res.Err != nil {
		t.Fatalf("scan: %v", res.Err)
	}
	if !res.Reachable() {
		t.Fatal("clean server should be reachable")
	}
	if len(res.Chain) != 2 {
		t.Fatalf("captured %d certs, want 2", len(res.Chain))
	}
	if res.Chain[0].Subject.CommonName() != "clean.example.com" {
		t.Errorf("leaf CN = %q", res.Chain[0].Subject.CommonName())
	}
	if res.Chain[1].Subject.CommonName() != "Farm Issuing CA" {
		t.Errorf("second cert CN = %q", res.Chain[1].Subject.CommonName())
	}
	if res.Duration <= 0 {
		t.Error("duration not recorded")
	}
}

func TestScanSeesUnnecessaryCertificate(t *testing.T) {
	env := newFarmEnv(t)
	s := New(5 * time.Second)
	res := s.Scan(context.Background(), env.dirty.Addr, "dirty.example.com")
	if res.Err != nil {
		t.Fatalf("scan: %v", res.Err)
	}
	if len(res.Chain) != 3 {
		t.Fatalf("captured %d certs, want 3 (incl. unnecessary)", len(res.Chain))
	}
	if res.Chain[2].Subject.CommonName() != "tester" {
		t.Errorf("unnecessary cert CN = %q", res.Chain[2].Subject.CommonName())
	}

	// The analyzer must flag the extra certificate.
	db := trustdb.New()
	db.AddRoot(trustdb.StoreMozilla, env.root.Cert.Meta)
	if err := db.AddCCADBIntermediate(env.inter.Cert.Meta); err != nil {
		t.Fatal(err)
	}
	cl := chain.NewClassifier(db)
	a := cl.Analyze(res.Chain)
	if a.Verdict != chain.VerdictContainsPath {
		t.Errorf("verdict = %v, want contains-path", a.Verdict)
	}
	if len(a.Unnecessary) != 1 || a.Unnecessary[0] != 2 {
		t.Errorf("unnecessary = %v", a.Unnecessary)
	}
}

func TestScanSelfSignedSingle(t *testing.T) {
	env := newFarmEnv(t)
	s := New(5 * time.Second)
	res := s.Scan(context.Background(), env.single.Addr, "printer.local")
	if res.Err != nil {
		t.Fatalf("scan: %v", res.Err)
	}
	if len(res.Chain) != 1 || !res.Chain[0].SelfSigned() {
		t.Errorf("chain = %d certs, self-signed=%v", len(res.Chain), len(res.Chain) > 0 && res.Chain[0].SelfSigned())
	}
}

func TestScanUnreachable(t *testing.T) {
	s := New(500 * time.Millisecond)
	// A listener that is immediately closed: connection refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	res := s.Scan(context.Background(), addr, "gone.example.com")
	if res.Err == nil {
		t.Fatal("scan of closed port must fail")
	}
	if res.Reachable() {
		t.Error("unreachable endpoint must not be Reachable")
	}
}

func TestScanDialerInjection(t *testing.T) {
	s := New(time.Second)
	wantErr := errors.New("injected failure")
	s.Dialer = func(ctx context.Context, network, addr string) (net.Conn, error) {
		return nil, wantErr
	}
	res := s.Scan(context.Background(), "198.51.100.1:443", "x")
	if !errors.Is(res.Err, wantErr) {
		t.Errorf("err = %v, want injected", res.Err)
	}
}

func TestScanAll(t *testing.T) {
	env := newFarmEnv(t)
	s := New(5 * time.Second)
	targets := []Target{
		{Addr: env.clean.Addr, SNI: "clean.example.com"},
		{Addr: env.dirty.Addr, SNI: "dirty.example.com"},
		{Addr: env.single.Addr, SNI: "printer.local"},
	}
	results := s.ScanAll(context.Background(), targets, 2)
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	wantLens := []int{2, 3, 1}
	for i, res := range results {
		if res == nil || res.Err != nil {
			t.Fatalf("result %d failed: %+v", i, res)
		}
		if len(res.Chain) != wantLens[i] {
			t.Errorf("result %d chain len = %d, want %d (order must be preserved)", i, len(res.Chain), wantLens[i])
		}
	}
}

func TestCompare(t *testing.T) {
	env := newFarmEnv(t)
	db := trustdb.New()
	db.AddRoot(trustdb.StoreMozilla, env.root.Cert.Meta)
	if err := db.AddCCADBIntermediate(env.inter.Cert.Meta); err != nil {
		t.Fatal(err)
	}
	cl := chain.NewClassifier(db)

	oldChain := certmodel.Chain{env.single.Chain[0].Meta} // was self-signed single
	s := New(5 * time.Second)
	res := s.Scan(context.Background(), env.clean.Addr, "clean.example.com")
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	cmp := Compare(cl, env.clean.Addr, oldChain, res.Chain)
	if cmp.OldCategory != chain.NonPublicDBOnly {
		t.Errorf("old category = %v", cmp.OldCategory)
	}
	if cmp.NewCategory != chain.PublicDBOnly {
		t.Errorf("new category = %v", cmp.NewCategory)
	}
	if cmp.OldLen != 1 || cmp.NewLen != 2 {
		t.Errorf("lengths = %d -> %d", cmp.OldLen, cmp.NewLen)
	}
	if cmp.NewVerdict != chain.VerdictCompletePath {
		t.Errorf("new verdict = %v", cmp.NewVerdict)
	}
}

func TestFarmLookupAndClose(t *testing.T) {
	env := newFarmEnv(t)
	if _, ok := env.farm.Lookup("clean.example.com"); !ok {
		t.Error("Lookup must find the server")
	}
	if _, ok := env.farm.Lookup("missing.example.com"); ok {
		t.Error("Lookup must miss unknown domains")
	}
	if got := len(env.farm.Servers()); got != 3 {
		t.Errorf("Servers = %d", got)
	}
}

func TestFarmRejectsBadChains(t *testing.T) {
	farm := serverfarm.New()
	defer farm.Close()
	if _, err := farm.Add("x", nil); err == nil {
		t.Error("empty chain must be rejected")
	}
	m := pki.NewMint(5, clock)
	root, _ := m.NewRoot(pki.Name("R"))
	leaf, _ := root.IssueLeaf(pki.Name("x.example.com"))
	leaf.Key = nil
	if _, err := farm.Add("x", pki.Chain(leaf)); !errors.Is(err, serverfarm.ErrNoLeafKey) {
		t.Errorf("err = %v, want ErrNoLeafKey", err)
	}
}

func TestRootsFromDER(t *testing.T) {
	m := pki.NewMint(6, clock)
	root, _ := m.NewRoot(pki.Name("R"))
	pool, err := RootsFromDER(root.Cert.Raw)
	if err != nil || pool == nil {
		t.Fatalf("RootsFromDER: %v", err)
	}
	if _, err := RootsFromDER([]byte{0x30, 0x01}); err == nil {
		t.Error("bad DER must error")
	}
}
