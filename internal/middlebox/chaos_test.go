package middlebox

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"net"
	"testing"
	"time"

	"certchains/internal/obs"
	"certchains/internal/resilience"
)

// intercept dials the proxy as a client would and returns the forged chain.
func interceptedChain(t *testing.T, addr, sni string) []*x509.Certificate {
	t.Helper()
	conn, err := tls.Dial("tcp", addr, &tls.Config{
		ServerName:         sni,
		InsecureSkipVerify: true,
		MinVersion:         tls.VersionTLS12,
	})
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	defer conn.Close()
	return conn.ConnectionState().PeerCertificates
}

func TestProxyUpstreamTimeoutFires(t *testing.T) {
	e := newEnv(t)
	// An upstream that never answers: the dial blocks until the per-connection
	// context expires. Before the timeout context existed this handler would
	// have pinned its goroutine forever on context.Background().
	dialed := make(chan struct{}, 1)
	e.proxy.Tune(func(p *Proxy) {
		p.UpstreamTimeout = 150 * time.Millisecond
		p.DialUpstream = func(ctx context.Context, addr string) (net.Conn, error) {
			dialed <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		}
	})

	conn, err := tls.Dial("tcp", e.proxy.Addr, &tls.Config{
		ServerName:         "www.bank.test",
		InsecureSkipVerify: true,
		MinVersion:         tls.VersionTLS12,
	})
	if err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	defer conn.Close()
	<-dialed

	// The handler must give up and drop the connection promptly: a read on
	// the client side unblocks with an error well before the test deadline.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected the proxy to drop the connection")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("proxy held the connection %v after upstream timed out", elapsed)
	}
}

func TestProxyZeroTimeoutStillBoundedByConstructor(t *testing.T) {
	e := newEnv(t)
	if e.proxy.UpstreamTimeout != DefaultUpstreamTimeout {
		t.Fatalf("New must install DefaultUpstreamTimeout, got %v", e.proxy.UpstreamTimeout)
	}
}

func TestProxyUpstreamDialRetries(t *testing.T) {
	e := newEnv(t)
	reg := obs.NewRegistry()
	m := resilience.NewMetrics(reg)
	plan := resilience.NewPlan(
		resilience.Fault{Op: "middlebox.dial", Attempt: 1, Kind: resilience.DialRefused},
	)
	plan.SetMetrics(m)

	// The proxy dials upstream after the client handshake completes, so the
	// dialed channel is the only safe point to read the plan's counters.
	faultDial := plan.Dial("middlebox.dial", nil)
	dialOK := make(chan struct{})
	e.proxy.Tune(func(p *Proxy) {
		p.DialUpstream = func(ctx context.Context, addr string) (net.Conn, error) {
			c, err := faultDial(ctx, "tcp", addr)
			if err == nil {
				close(dialOK)
			}
			return c, err
		}
		p.Retry = resilience.DefaultPolicy()
		p.Retry.JitterSeed = 5
		p.Retry.Sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
		p.Metrics = m
	})

	// Despite the first upstream dial being refused, the interception still
	// completes: the client sees the forged chain end to end.
	chain := interceptedChain(t, e.proxy.Addr, "www.bank.test")
	if len(chain) != 2 {
		t.Fatalf("forged chain length = %d, want 2", len(chain))
	}
	if got := chain[1].Subject.CommonName; got != "Corp SSL Inspection CA" {
		t.Errorf("issuer = %q, want the inspection CA", got)
	}

	select {
	case <-dialOK:
	case <-time.After(5 * time.Second):
		t.Fatal("upstream dial never succeeded despite a retry budget")
	}
	if plan.Pending() != 0 {
		t.Errorf("unplayed faults: %s", plan.Describe())
	}
	if got := resilience.RetryTotal(reg); got != float64(plan.FailureCount()) {
		t.Errorf("retries metric = %v, want %d", got, plan.FailureCount())
	}
	if got := resilience.FaultTotal(reg); got != float64(plan.InjectedCount()) {
		t.Errorf("fault metric = %v, want %d", got, plan.InjectedCount())
	}
}
