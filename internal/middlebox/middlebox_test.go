package middlebox

import (
	"context"
	"crypto/tls"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"certchains/internal/certmodel"
	"certchains/internal/ctlog"
	"certchains/internal/intercept"
	"certchains/internal/pki"
	"certchains/internal/scanner"
	"certchains/internal/serverfarm"
	"certchains/internal/trustdb"
)

// env stands up the full interception scenario: an honest origin server
// whose certificate is CT-logged, and a middlebox in front of it.
type env struct {
	origin  *serverfarm.Server
	farm    *serverfarm.Farm
	proxy   *Proxy
	honest  *pki.CA
	inspect *pki.CA
	ct      *ctlog.Log
	db      *trustdb.DB
}

func newEnv(t *testing.T) *env {
	t.Helper()
	mint := pki.NewMint(7001, time.Now())

	honest, err := mint.NewRoot(pki.Name("Honest Root CA", "Honest"))
	if err != nil {
		t.Fatal(err)
	}
	originLeaf, err := honest.IssueLeaf(pki.Name("www.bank.test"), pki.WithSANs("www.bank.test"))
	if err != nil {
		t.Fatal(err)
	}
	farm := serverfarm.New()
	t.Cleanup(farm.Close)
	origin, err := farm.Add("www.bank.test", pki.Chain(originLeaf, honest.Cert))
	if err != nil {
		t.Fatal(err)
	}

	inspect, err := mint.NewRoot(pki.Name("Corp SSL Inspection CA", "Corp Security"))
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := New(inspect, origin.Addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	ct, err := ctlog.New("mb-test", 9)
	if err != nil {
		t.Fatal(err)
	}
	// The honest certificate is CT-logged, as public issuance is.
	if _, err := ct.AddChain(certmodel.Chain{originLeaf.Meta, honest.Cert.Meta}, time.Now().Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}
	db := trustdb.New()
	db.AddRoot(trustdb.StoreMozilla, honest.Cert.Meta)
	return &env{origin: origin, farm: farm, proxy: proxy, honest: honest, inspect: inspect, ct: ct, db: db}
}

func TestProxyForgesChainPerSNI(t *testing.T) {
	e := newEnv(t)
	sc := scanner.New(5 * time.Second)

	// Scanning the origin directly shows the honest chain.
	direct := sc.Scan(context.Background(), e.origin.Addr, "www.bank.test")
	if direct.Err != nil {
		t.Fatal(direct.Err)
	}
	if direct.Chain[0].Issuer.CommonName() != "Honest Root CA" {
		t.Errorf("direct issuer = %q", direct.Chain[0].Issuer.CommonName())
	}

	// Scanning through the middlebox shows the forged chain.
	intercepted := sc.Scan(context.Background(), e.proxy.Addr, "www.bank.test")
	if intercepted.Err != nil {
		t.Fatal(intercepted.Err)
	}
	if got := intercepted.Chain[0].Issuer.CommonName(); got != "Corp SSL Inspection CA" {
		t.Errorf("intercepted issuer = %q, want the inspection CA", got)
	}
	if len(intercepted.Chain) != 2 {
		t.Errorf("intercepted chain length = %d, want 2 (forged leaf + inspection CA)", len(intercepted.Chain))
	}
	// Same subject, different issuer: the §3.2.1 signal.
	if intercepted.Chain[0].Subject.CommonName() != "www.bank.test" {
		t.Errorf("forged subject = %q", intercepted.Chain[0].Subject.CommonName())
	}
	if e.proxy.MintedFor() != 1 {
		t.Errorf("minted for %d SNIs, want 1", e.proxy.MintedFor())
	}
	// Re-scan reuses the cached forgery.
	again := sc.Scan(context.Background(), e.proxy.Addr, "www.bank.test")
	if again.Err != nil || e.proxy.MintedFor() != 1 {
		t.Errorf("forgery not cached: minted=%d err=%v", e.proxy.MintedFor(), again.Err)
	}
}

func TestDetectorFlagsTheProxy(t *testing.T) {
	e := newEnv(t)
	sc := scanner.New(5 * time.Second)
	res := sc.Scan(context.Background(), e.proxy.Addr, "www.bank.test")
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	det := intercept.NewDetector(e.db, e.ct)
	if v := det.Examine(res.Chain[0], "www.bank.test", time.Now()); v != intercept.IssuerMismatch {
		t.Errorf("detector verdict = %v, want issuer-mismatch", v)
	}
	// The honest chain is not flagged.
	direct := sc.Scan(context.Background(), e.origin.Addr, "www.bank.test")
	if direct.Err != nil {
		t.Fatal(direct.Err)
	}
	if v := det.Examine(direct.Chain[0], "www.bank.test", time.Now()); v != intercept.NotCandidate {
		t.Errorf("honest verdict = %v, want not-candidate", v)
	}
}

func TestProxyRelaysBytes(t *testing.T) {
	// An origin that echoes one line back, behind the proxy.
	mint := pki.NewMint(7002, time.Now())
	ca, err := mint.NewRoot(pki.Name("Echo Root"))
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.IssueLeaf(pki.Name("echo.test"), pki.WithSANs("echo.test"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := &tls.Config{
		Certificates: []tls.Certificate{{Certificate: [][]byte{leaf.Raw, ca.Cert.Raw}, PrivateKey: leaf.Key}},
		MinVersion:   tls.VersionTLS12,
	}
	originLn, err := tls.Listen("tcp", "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer originLn.Close()
	go func() {
		for {
			c, err := originLn.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 64)
				n, err := c.Read(buf)
				if err != nil {
					return
				}
				c.Write(buf[:n])
			}(c)
		}
	}()

	inspect, err := mint.NewRoot(pki.Name("Relay Inspection CA"))
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := New(inspect, originLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	conn, err := tls.Dial("tcp", proxy.Addr, &tls.Config{ServerName: "echo.test", InsecureSkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("hello through the middlebox\n")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatalf("read back: %v", err)
	}
	if string(buf) != string(msg) {
		t.Errorf("echoed %q, want %q", buf, msg)
	}
	// The client sees the inspection CA's chain, not the origin's.
	if got := conn.ConnectionState().PeerCertificates[0].Issuer.CommonName; got != "Relay Inspection CA" {
		t.Errorf("relay chain issuer = %q", got)
	}
}

func TestProxyUpstreamFailure(t *testing.T) {
	mint := pki.NewMint(7003, time.Now())
	inspect, err := mint.NewRoot(pki.Name("Fail Inspection CA"))
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := New(inspect, "127.0.0.1:1") // nothing listens there
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	proxy.Tune(func(p *Proxy) {
		p.DialUpstream = func(ctx context.Context, addr string) (net.Conn, error) {
			return nil, errors.New("injected upstream failure")
		}
	})
	// The client handshake still succeeds (the forged chain is delivered);
	// the connection then just ends — matching appliance behaviour when
	// the origin is unreachable.
	conn, err := tls.Dial("tcp", proxy.Addr, &tls.Config{ServerName: "x.test", InsecureSkipVerify: true})
	if err != nil {
		t.Fatalf("handshake should succeed: %v", err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Error("read should fail after upstream dial failure")
	}
}

func TestProxyCloseIdempotent(t *testing.T) {
	mint := pki.NewMint(7004, time.Now())
	inspect, _ := mint.NewRoot(pki.Name("C"))
	proxy, err := New(inspect, "127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	if err := proxy.Close(); err != nil {
		t.Errorf("first close: %v", err)
	}
	if err := proxy.Close(); err == nil {
		t.Error("second close should report already closed")
	}
}
