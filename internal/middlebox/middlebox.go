// Package middlebox implements a working TLS interception proxy — the
// device class behind the paper's TLS-interception chain category (§3.2.1,
// Appendix B, Table 1). It terminates the client's TLS session with a
// certificate minted on the fly by its inspection CA for whatever SNI the
// client requested, then opens its own TLS session to the origin and relays
// bytes — exactly the ssl-tls-deep-inspection behaviour of the Fortinet/
// Zscaler class of appliances.
//
// It exists so the detection pipeline can be demonstrated against a real
// interceptor over real sockets: a scanner pointed at the proxy observes
// the forged chain, and the CT cross-reference flags the issuer mismatch.
package middlebox

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"certchains/internal/pki"
)

// Proxy is a running interception middlebox.
type Proxy struct {
	// Addr is the listener address clients connect to.
	Addr string

	ca       *pki.CA
	upstream string
	ln       net.Listener

	mu     sync.Mutex
	minted map[string]*tls.Certificate
	closed bool
	wg     sync.WaitGroup

	// DialUpstream overrides upstream dialing (tests inject failures);
	// nil means a plain TCP dial.
	DialUpstream func(ctx context.Context, addr string) (net.Conn, error)
}

// New starts a proxy that intercepts TLS for clients and forwards to the
// upstream TLS server at upstreamAddr. The inspection CA signs the forged
// leaves; in deployments its root is force-installed on client machines,
// which is why campus traffic shows these chains at all.
func New(ca *pki.CA, upstreamAddr string) (*Proxy, error) {
	p := &Proxy{
		ca:       ca,
		upstream: upstreamAddr,
		minted:   make(map[string]*tls.Certificate),
	}
	cfg := &tls.Config{
		GetCertificate: p.getCertificate,
		MinVersion:     tls.VersionTLS12,
		MaxVersion:     tls.VersionTLS12,
	}
	ln, err := tls.Listen("tcp", "127.0.0.1:0", cfg)
	if err != nil {
		return nil, fmt.Errorf("middlebox: listen: %w", err)
	}
	p.ln = ln
	p.Addr = ln.Addr().String()
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// getCertificate forges a certificate for the requested server name, signed
// by the inspection CA, caching per SNI like real appliances do.
func (p *Proxy) getCertificate(hello *tls.ClientHelloInfo) (*tls.Certificate, error) {
	name := hello.ServerName
	if name == "" {
		name = "unknown.intercepted.invalid"
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if cert, ok := p.minted[name]; ok {
		return cert, nil
	}
	leaf, err := p.ca.IssueLeaf(pki.Name(name), pki.WithSANs(name))
	if err != nil {
		return nil, fmt.Errorf("middlebox: forge leaf for %q: %w", name, err)
	}
	cert := &tls.Certificate{
		Certificate: [][]byte{leaf.Raw, p.ca.Cert.Raw},
		PrivateKey:  leaf.Key,
		Leaf:        leaf.X509,
	}
	p.minted[name] = cert
	return cert, nil
}

// MintedFor returns how many distinct SNIs the proxy has forged leaves for.
func (p *Proxy) MintedFor() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.minted)
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go func(c net.Conn) {
			defer p.wg.Done()
			defer c.Close()
			p.handle(c)
		}(conn)
	}
}

// handle completes the client-side handshake (delivering the forged chain),
// opens the upstream TLS session, and relays bytes until either side closes.
func (p *Proxy) handle(clientConn net.Conn) {
	tc, ok := clientConn.(*tls.Conn)
	if !ok {
		return
	}
	if err := tc.HandshakeContext(context.Background()); err != nil {
		return
	}

	dial := p.DialUpstream
	if dial == nil {
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	raw, err := dial(context.Background(), p.upstream)
	if err != nil {
		return // client handshake already succeeded; connection just drops
	}
	defer raw.Close()
	upstream := tls.Client(raw, &tls.Config{
		ServerName:         tc.ConnectionState().ServerName,
		InsecureSkipVerify: true, // middleboxes re-validate out of band, if at all
		MinVersion:         tls.VersionTLS12,
	})
	if err := upstream.HandshakeContext(context.Background()); err != nil {
		return
	}
	defer upstream.Close()

	// Bidirectional relay: the "deep inspection" point where appliances
	// scan plaintext.
	done := make(chan struct{}, 2)
	go func() {
		io.Copy(upstream, tc)
		done <- struct{}{}
	}()
	go func() {
		io.Copy(tc, upstream)
		done <- struct{}{}
	}()
	<-done
}

// Close stops the proxy and waits for in-flight connections.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return errors.New("middlebox: already closed")
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}
