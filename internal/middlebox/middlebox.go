// Package middlebox implements a working TLS interception proxy — the
// device class behind the paper's TLS-interception chain category (§3.2.1,
// Appendix B, Table 1). It terminates the client's TLS session with a
// certificate minted on the fly by its inspection CA for whatever SNI the
// client requested, then opens its own TLS session to the origin and relays
// bytes — exactly the ssl-tls-deep-inspection behaviour of the Fortinet/
// Zscaler class of appliances.
//
// It exists so the detection pipeline can be demonstrated against a real
// interceptor over real sockets: a scanner pointed at the proxy observes
// the forged chain, and the CT cross-reference flags the issuer mismatch.
package middlebox

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"certchains/internal/pki"
	"certchains/internal/resilience"
)

// DefaultUpstreamTimeout bounds the upstream dial-plus-handshake (and the
// client-side handshake) when the proxy is built with New. Real appliances
// give up on dead origins; context.Background() never would.
const DefaultUpstreamTimeout = 10 * time.Second

// Proxy is a running interception middlebox.
type Proxy struct {
	// Addr is the listener address clients connect to.
	Addr string

	ca       *pki.CA
	upstream string
	ln       net.Listener

	mu     sync.Mutex
	minted map[string]*tls.Certificate
	closed bool
	wg     sync.WaitGroup

	// DialUpstream overrides upstream dialing (tests inject failures);
	// nil means a plain TCP dial. Set via Tune once the proxy is running.
	DialUpstream func(ctx context.Context, addr string) (net.Conn, error)
	// UpstreamTimeout bounds each connection's upstream dial and handshake
	// (and the client-side handshake). Zero means no deadline — New sets
	// DefaultUpstreamTimeout. Set via Tune once the proxy is running.
	UpstreamTimeout time.Duration
	// Retry is the upstream dial retry budget; the zero value dials once.
	// Set via Tune once the proxy is running.
	Retry resilience.Policy
	// Metrics, when set, books upstream dial retries into the shared obs
	// registry. Set via Tune once the proxy is running.
	Metrics *resilience.Metrics
}

// Tune adjusts the proxy's tunable fields (upstream dialer, timeout, retry
// policy, metrics) under the proxy's lock. The accept loop starts inside New,
// so direct field writes afterwards would race with in-flight handlers.
func (p *Proxy) Tune(f func(*Proxy)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f(p)
}

// New starts a proxy that intercepts TLS for clients and forwards to the
// upstream TLS server at upstreamAddr. The inspection CA signs the forged
// leaves; in deployments its root is force-installed on client machines,
// which is why campus traffic shows these chains at all.
func New(ca *pki.CA, upstreamAddr string) (*Proxy, error) {
	p := &Proxy{
		ca:              ca,
		upstream:        upstreamAddr,
		minted:          make(map[string]*tls.Certificate),
		UpstreamTimeout: DefaultUpstreamTimeout,
	}
	cfg := &tls.Config{
		GetCertificate: p.getCertificate,
		MinVersion:     tls.VersionTLS12,
		MaxVersion:     tls.VersionTLS12,
	}
	ln, err := tls.Listen("tcp", "127.0.0.1:0", cfg)
	if err != nil {
		return nil, fmt.Errorf("middlebox: listen: %w", err)
	}
	p.ln = ln
	p.Addr = ln.Addr().String()
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// getCertificate forges a certificate for the requested server name, signed
// by the inspection CA, caching per SNI like real appliances do.
func (p *Proxy) getCertificate(hello *tls.ClientHelloInfo) (*tls.Certificate, error) {
	name := hello.ServerName
	if name == "" {
		name = "unknown.intercepted.invalid"
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if cert, ok := p.minted[name]; ok {
		return cert, nil
	}
	leaf, err := p.ca.IssueLeaf(pki.Name(name), pki.WithSANs(name))
	if err != nil {
		return nil, fmt.Errorf("middlebox: forge leaf for %q: %w", name, err)
	}
	cert := &tls.Certificate{
		Certificate: [][]byte{leaf.Raw, p.ca.Cert.Raw},
		PrivateKey:  leaf.Key,
		Leaf:        leaf.X509,
	}
	p.minted[name] = cert
	return cert, nil
}

// MintedFor returns how many distinct SNIs the proxy has forged leaves for.
func (p *Proxy) MintedFor() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.minted)
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go func(c net.Conn) {
			defer p.wg.Done()
			defer c.Close()
			p.handle(c)
		}(conn)
	}
}

// handle completes the client-side handshake (delivering the forged chain),
// opens the upstream TLS session, and relays bytes until either side closes.
// Every setup step runs under UpstreamTimeout, so a dead origin or a stalled
// client hello can never pin a handler goroutine forever.
func (p *Proxy) handle(clientConn net.Conn) {
	tc, ok := clientConn.(*tls.Conn)
	if !ok {
		return
	}
	p.mu.Lock()
	timeout, dial, retry, metrics := p.UpstreamTimeout, p.DialUpstream, p.Retry, p.Metrics
	p.mu.Unlock()

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if err := tc.HandshakeContext(ctx); err != nil {
		return
	}

	if dial == nil {
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	var raw net.Conn
	_, err := retry.WithMetrics(metrics).Do(ctx, "middlebox.dial", func(ctx context.Context) error {
		var derr error
		raw, derr = dial(ctx, p.upstream)
		return derr
	})
	if err != nil {
		return // client handshake already succeeded; connection just drops
	}
	defer raw.Close()
	upstream := tls.Client(raw, &tls.Config{
		ServerName:         tc.ConnectionState().ServerName,
		InsecureSkipVerify: true, // middleboxes re-validate out of band, if at all
		MinVersion:         tls.VersionTLS12,
	})
	if err := upstream.HandshakeContext(ctx); err != nil {
		return
	}
	defer upstream.Close()

	// Bidirectional relay: the "deep inspection" point where appliances
	// scan plaintext.
	done := make(chan struct{}, 2)
	go func() {
		io.Copy(upstream, tc)
		done <- struct{}{}
	}()
	go func() {
		io.Copy(tc, upstream)
		done <- struct{}{}
	}()
	<-done
}

// Close stops the proxy and waits for in-flight connections.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return errors.New("middlebox: already closed")
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}
