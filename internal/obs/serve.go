package obs

import (
	"encoding/json"
	"net/http"
	"sort"
)

// Handler serves the registry as a Prometheus /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// HealthzHandler serves a JSON liveness document sourced from the shared
// registry: status, the build revision (from the certchain_build_info
// series), and every gauge/counter the fields function projects. extra,
// when non-nil, is invoked per request and its pairs are merged in — the
// place for handler-local state that is not a metric.
func HealthzHandler(reg *Registry, fields map[string]string, extra func() map[string]any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		doc := map[string]any{"status": "ok"}
		if info := reg.InfoLabels("certchain_build_info"); info != nil {
			doc["build_revision"] = info["revision"]
			doc["go_version"] = info["go_version"]
		} else {
			doc["build_revision"] = Build().Revision()
		}
		// fields maps JSON key → registry family name (label-less series).
		keys := make([]string, 0, len(fields))
		for k := range fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if v, ok := reg.Value(fields[k]); ok {
				doc[k] = v
			}
		}
		if extra != nil {
			for k, v := range extra() {
				doc[k] = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(doc)
	})
}
