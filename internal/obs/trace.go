package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer records stage spans. Creation order is the export order, so code
// that starts spans deterministically (sequential stage code; shard spans
// started by the coordinator before the workers launch) produces a
// deterministic span sequence even though the recorded wall-clock durations
// vary run to run — the separation DESIGN.md §11's determinism rules rest
// on.
//
// A nil *Tracer is a valid no-op: every method works on nil, so
// instrumented code never branches on whether tracing is enabled.
type Tracer struct {
	mu    sync.Mutex
	clock func() time.Time
	spans []*Span
}

// Span is one timed stage interval.
type Span struct {
	tr *Tracer
	// Stage is the logical pipeline stage ("load", "observe", ...); spans
	// aggregate by stage in manifests.
	Stage string
	// Name is the display name (e.g. "observe/shard3").
	Name string
	// TID renders as the Chrome trace thread id (shard index).
	TID int

	start, end time.Time
	ended      bool
	// records is the number of input records this span processed; only
	// width-invariant counts belong here (see Manifest).
	records int64
	// args are extra numeric attributes, exported under Chrome trace args.
	args map[string]int64
}

// NewTracer returns a tracer on the wall clock.
func NewTracer() *Tracer { return NewTracerClock(wallNow) }

// NewTracerClock returns a tracer on an injected clock — the determinism
// seam tests use.
func NewTracerClock(clock func() time.Time) *Tracer {
	return &Tracer{clock: clock}
}

// Start opens a span. Safe on a nil tracer (returns a nil span whose
// methods no-op).
func (t *Tracer) Start(stage, name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &Span{tr: t, Stage: stage, Name: name, start: t.clock()}
	t.spans = append(t.spans, sp)
	return sp
}

// SetTID tags the span with a thread id (shard index) for the trace view.
func (s *Span) SetTID(tid int) *Span {
	if s == nil {
		return s
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.TID = tid
	return s
}

// SetRecords records how many input records the span processed.
func (s *Span) SetRecords(n int64) *Span {
	if s == nil {
		return s
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.records = n
	return s
}

// AddRecords accumulates processed records (streaming shards).
func (s *Span) AddRecords(n int64) *Span {
	if s == nil {
		return s
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.records += n
	return s
}

// Arg attaches one numeric attribute exported in the trace's args block.
func (s *Span) Arg(key string, v int64) *Span {
	if s == nil {
		return s
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.args == nil {
		s.args = make(map[string]int64)
	}
	s.args[key] = v
	return s
}

// End closes the span. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if !s.ended {
		s.end = s.tr.clock()
		s.ended = true
	}
}

// StageStat is the per-stage aggregate a manifest carries: span count,
// total records, and total wall time across the stage's spans.
type StageStat struct {
	Stage   string `json:"stage"`
	Spans   int    `json:"spans"`
	Records int64  `json:"records"`
	WallNS  int64  `json:"wall_ns"`
}

// Stages aggregates spans by stage, in first-start order. Unfinished spans
// contribute zero duration.
func (t *Tracer) Stages() []StageStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := make(map[string]int)
	var out []StageStat
	for _, sp := range t.spans {
		i, ok := idx[sp.Stage]
		if !ok {
			i = len(out)
			idx[sp.Stage] = i
			out = append(out, StageStat{Stage: sp.Stage})
		}
		out[i].Spans++
		out[i].Records += sp.records
		if sp.ended {
			out[i].WallNS += sp.end.Sub(sp.start).Nanoseconds()
		}
	}
	return out
}

// WallNS is the wall time from the first span's start to the latest span
// end; 0 with no finished spans.
func (t *Tracer) WallNS() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var base, last time.Time
	for _, sp := range t.spans {
		if base.IsZero() || sp.start.Before(base) {
			base = sp.start
		}
		if sp.ended && sp.end.After(last) {
			last = sp.end
		}
	}
	if base.IsZero() || last.IsZero() {
		return 0
	}
	return last.Sub(base).Nanoseconds()
}

// traceEvent is one Chrome trace-event object, loadable in chrome://tracing
// and Perfetto. Spans use the "X" complete-event form; spliced multi-process
// traces additionally carry "M" process_name metadata events, whose args
// hold a string — hence the map[string]any.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`  // microseconds relative to trace start
	Dur  int64          `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the Chrome trace "JSON object format".
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the spans as Chrome trace-event JSON. Events
// appear in span creation order; timestamps are microseconds relative to
// the earliest span start.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: nil tracer has no trace")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var base time.Time
	for _, sp := range t.spans {
		if base.IsZero() || sp.start.Before(base) {
			base = sp.start
		}
	}
	out := traceFile{TraceEvents: make([]traceEvent, 0, len(t.spans)), DisplayTimeUnit: "ms"}
	for _, sp := range t.spans {
		ev := traceEvent{
			Name: sp.Name,
			Cat:  sp.Stage,
			Ph:   "X",
			TS:   sp.start.Sub(base).Microseconds(),
			PID:  1,
			TID:  sp.TID,
		}
		if sp.ended {
			ev.Dur = sp.end.Sub(sp.start).Microseconds()
		}
		if sp.records != 0 || len(sp.args) > 0 {
			ev.Args = make(map[string]any, len(sp.args)+1)
			for k, v := range sp.args {
				ev.Args[k] = v
			}
			if sp.records != 0 {
				ev.Args["records"] = sp.records
			}
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ValidateChromeTrace checks that data is a structurally valid Chrome
// trace-event file: an object with a traceEvents array whose events carry a
// name, a complete-event or metadata phase, and non-negative times — and
// that every required stage appears as at least one span category. The
// obs-smoke CI job runs this over certchain-analyze's -trace output; the
// dist-smoke job runs it over the coordinator's spliced cross-process trace.
func ValidateChromeTrace(data []byte, requiredStages ...string) error {
	f, err := decodeChromeTrace(data)
	if err != nil {
		return err
	}
	stages := make(map[string]int)
	spans := 0
	for i, ev := range f.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("obs: trace event %d has no name", i)
		}
		switch ev.Ph {
		case "M":
			// Metadata names a process or thread; it carries no timing.
			continue
		case "X":
		default:
			return fmt.Errorf("obs: trace event %d (%s): phase %q, want complete event \"X\" or metadata \"M\"", i, ev.Name, ev.Ph)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			return fmt.Errorf("obs: trace event %d (%s): negative time", i, ev.Name)
		}
		spans++
		stages[ev.Cat]++
	}
	if spans == 0 {
		return fmt.Errorf("obs: trace has no span events")
	}
	var missing []string
	for _, st := range requiredStages {
		if stages[st] == 0 {
			missing = append(missing, st)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("obs: trace missing required stage span(s): %v", missing)
	}
	return nil
}

func decodeChromeTrace(data []byte) (*traceFile, error) {
	var f traceFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("obs: trace JSON: %w", err)
	}
	if len(f.TraceEvents) == 0 {
		return nil, fmt.Errorf("obs: trace has no events")
	}
	return &f, nil
}

// ChromeTraceProcesses returns the sorted distinct PIDs that contribute span
// (phase "X") events to the trace — metadata-only processes do not count. A
// spliced cross-process trace from an N-worker run reports N+1 processes.
func ChromeTraceProcesses(data []byte) ([]int, error) {
	f, err := decodeChromeTrace(data)
	if err != nil {
		return nil, err
	}
	seen := make(map[int]bool)
	var pids []int
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" || seen[ev.PID] {
			continue
		}
		seen[ev.PID] = true
		pids = append(pids, ev.PID)
	}
	sort.Ints(pids)
	return pids, nil
}
