package obs

import (
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary's build, read once from
// runtime/debug.ReadBuildInfo.
type BuildInfo struct {
	GoVersion   string `json:"go_version"`
	Path        string `json:"path,omitempty"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the binary's build info. Fields missing from the embedded
// build metadata (test binaries, -buildvcs=false) stay empty.
func Build() BuildInfo {
	buildOnce.Do(func() {
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.GoVersion = bi.GoVersion
		buildInfo.Path = bi.Path
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.VCSRevision = s.Value
			case "vcs.time":
				buildInfo.VCSTime = s.Value
			case "vcs.modified":
				buildInfo.VCSModified = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// Revision is the VCS revision, or "unknown" when the binary was built
// without VCS stamping — health endpoints always report a non-empty value.
func (b BuildInfo) Revision() string {
	if b.VCSRevision == "" {
		return "unknown"
	}
	return b.VCSRevision
}

// RegisterBuildInfo publishes the standard *_info series for a component:
//
//	certchain_build_info{component="...",go_version="...",revision="..."} 1
//
// Health handlers read the revision back via Registry.InfoLabels, so
// /metrics and /healthz report from the same source.
func RegisterBuildInfo(r *Registry, component string) {
	b := Build()
	r.Gauge("certchain_build_info",
		"Build identity of the serving binary (value is always 1).",
		"component", "go_version", "revision").
		With(component, b.GoVersion, b.Revision()).Set(1)
}
