package obs

import (
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// HTTP serving telemetry, shared by every daemon in the repository
// (certchain-ingestd, certchain-shardd, certchain-coord, ctlog -serve): a
// per-route latency histogram, a per-route response-size histogram, a
// request counter by route/method/code, and an in-flight gauge, all in the
// daemon's existing registry — plus structured access logs. The access log
// line carries no timestamps or durations (latency lives in the histogram),
// so under the deterministic slog handler equal request sequences log
// byte-identically; that is what the middleware's conformance tests pin.

// DefaultSizeBuckets spans one header's worth of bytes to a full corpus
// report, the range of one admin response.
var DefaultSizeBuckets = []float64{
	256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216,
}

// HTTPMetrics books the serving families into a registry once; Middleware
// then wraps any handler with them. One HTTPMetrics per daemon — wrapping
// several muxes with the same instance aggregates into the same families.
type HTTPMetrics struct {
	requests  *Family
	latency   *Family
	respBytes *Family
	inflight  *Series
	clock     func() time.Time
}

// NewHTTPMetrics registers the HTTP serving families in reg.
func NewHTTPMetrics(reg *Registry) *HTTPMetrics {
	return &HTTPMetrics{
		requests: reg.Counter("certchain_http_requests_total",
			"HTTP requests served, by route, method, and status code.", "route", "method", "code"),
		latency: reg.Histogram("certchain_http_request_seconds",
			"HTTP request latency by route.", DefaultDurationBuckets, "route"),
		respBytes: reg.Histogram("certchain_http_response_bytes",
			"HTTP response body bytes by route.", DefaultSizeBuckets, "route"),
		inflight: reg.Gauge("certchain_http_inflight_requests",
			"HTTP requests currently being served.").With(),
		clock: wallNow,
	}
}

// withClock injects a deterministic clock — the middleware tests' seam.
func (m *HTTPMetrics) withClock(clock func() time.Time) *HTTPMetrics {
	m.clock = clock
	return m
}

// routePattern is one known route: an optional method, an exact path or a
// "/"-terminated prefix, and the label the metrics carry.
type routePattern struct {
	label  string
	method string
	path   string
	prefix bool
}

// parseRoutes compiles ServeMux-style patterns ("GET /status", "/report",
// "/debug/pprof/") into matchers, longest path first so the most specific
// route wins.
func parseRoutes(patterns []string) []routePattern {
	rps := make([]routePattern, 0, len(patterns))
	for _, pat := range patterns {
		rp := routePattern{label: pat, path: pat}
		if method, path, ok := strings.Cut(pat, " "); ok && !strings.HasPrefix(pat, "/") {
			rp.method, rp.path = method, path
		}
		rp.prefix = strings.HasSuffix(rp.path, "/") && rp.path != "/"
		rps = append(rps, rp)
	}
	sort.SliceStable(rps, func(i, j int) bool { return len(rps[i].path) > len(rps[j].path) })
	return rps
}

// RouteOther labels requests that match no registered route. Folding them
// into one label keeps the metric cardinality bounded no matter what paths
// clients probe.
const RouteOther = "other"

func resolveRoute(rps []routePattern, r *http.Request) string {
	for _, rp := range rps {
		if rp.method != "" && rp.method != r.Method {
			continue
		}
		if rp.prefix {
			if strings.HasPrefix(r.URL.Path, rp.path) {
				return rp.label
			}
			continue
		}
		if r.URL.Path == rp.path {
			return rp.label
		}
	}
	return RouteOther
}

// statusRecorder captures the response code and body size on the way out.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.code == 0 {
		sr.code = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.code == 0 {
		sr.code = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(b)
	sr.bytes += int64(n)
	return n, err
}

// Flush forwards streaming (pprof profiles, long reports) to the underlying
// writer when it supports it.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Middleware wraps next with the serving telemetry. routes are the surface's
// known patterns ("GET /status", "/report", "/debug/pprof/"); a request is
// labeled with the longest match, or RouteOther. logger, when non-nil,
// receives one access-log record per request (msg "http": route, method,
// code, bytes). Metrics and the log line are recorded even when next
// panics, and the in-flight gauge never leaks.
func (m *HTTPMetrics) Middleware(next http.Handler, logger *slog.Logger, routes ...string) http.Handler {
	rps := parseRoutes(routes)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := resolveRoute(rps, r)
		start := m.clock()
		sr := &statusRecorder{ResponseWriter: w}
		m.inflight.Inc()
		defer func() {
			rec := recover()
			m.inflight.Add(-1)
			code := sr.code
			if code == 0 {
				// Handler wrote nothing: the server surfaces 200 — or 500 if
				// it panicked first. The telemetry needs a concrete label
				// either way.
				code = http.StatusOK
				if rec != nil {
					code = http.StatusInternalServerError
				}
			}
			m.latency.With(route).Observe(m.clock().Sub(start).Seconds())
			m.respBytes.With(route).Observe(float64(sr.bytes))
			m.requests.With(route, r.Method, strconv.Itoa(code)).Inc()
			if logger != nil {
				logger.Info("http",
					"route", route, "method", r.Method, "code", code, "bytes", sr.bytes)
			}
			if rec != nil {
				panic(rec)
			}
		}()
		next.ServeHTTP(sr, r)
	})
}
