package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds a structured logger for the CLIs and the daemon. format
// is "text" or "json"; level names follow slog ("debug", "info", "warn",
// "error").
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (text or json)", format)
	}
}

// ParseLogLevel maps a flag value to a slog.Level.
func ParseLogLevel(s string) (slog.Level, error) {
	var l slog.Level
	if err := l.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error)", s)
	}
	return l, nil
}

// NewDeterministicLogger is the test seam: a text logger whose records omit
// the time attribute, so equal event sequences log byte-identically.
func NewDeterministicLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{
		Level: level,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) == 0 && a.Key == slog.TimeKey {
				return slog.Attr{}
			}
			return a
		},
	}))
}
