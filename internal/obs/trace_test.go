package obs

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock ticks a fixed step per read — the injectable-clock seam that
// keeps span *content* deterministic while real runs record real wall time.
// The counter is atomic so concurrent readers (the middleware's scrape
// test) stay race-free; sequential tests see the same 1,2,3… ticks.
func fakeClock(step time.Duration) func() time.Time {
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var n atomic.Int64
	return func() time.Time {
		return t0.Add(time.Duration(n.Add(1)) * step)
	}
}

func TestTracerStagesDeterministic(t *testing.T) {
	tr := NewTracerClock(fakeClock(time.Millisecond))
	// clock reads: start a=1ms, start b=2ms, end b=3ms, start c=4ms,
	// end c=5ms, end a=6ms.
	a := tr.Start("observe", "observe").SetRecords(100)
	b := tr.Start("observe-shard", "observe/shard0").SetTID(0).SetRecords(60)
	b.End()
	c := tr.Start("observe-shard", "observe/shard1").SetTID(1).SetRecords(40)
	c.End()
	a.End()

	stages := tr.Stages()
	if len(stages) != 2 {
		t.Fatalf("Stages() = %d entries, want 2: %+v", len(stages), stages)
	}
	if stages[0].Stage != "observe" || stages[1].Stage != "observe-shard" {
		t.Errorf("stage order = %q, %q; want first-start order observe, observe-shard", stages[0].Stage, stages[1].Stage)
	}
	if stages[0].Spans != 1 || stages[0].Records != 100 {
		t.Errorf("observe aggregate = %+v", stages[0])
	}
	if stages[1].Spans != 2 || stages[1].Records != 100 {
		t.Errorf("observe-shard aggregate = %+v (want 2 spans, 100 records)", stages[1])
	}
	if want := int64(5 * time.Millisecond); stages[0].WallNS != want {
		t.Errorf("observe wall = %d, want %d", stages[0].WallNS, want)
	}
	if want := int64(2 * time.Millisecond); stages[1].WallNS != want {
		t.Errorf("observe-shard wall = %d, want %d (1ms per shard)", stages[1].WallNS, want)
	}
	if want := int64(5 * time.Millisecond); tr.WallNS() != want {
		t.Errorf("WallNS = %d, want %d (first start to last end)", tr.WallNS(), want)
	}
}

func TestSpanEndTwiceKeepsFirst(t *testing.T) {
	tr := NewTracerClock(fakeClock(time.Millisecond))
	sp := tr.Start("s", "s")
	sp.End()
	first := tr.WallNS()
	sp.End()
	if tr.WallNS() != first {
		t.Errorf("second End moved the end time: %d -> %d", first, tr.WallNS())
	}
}

func TestUnfinishedSpanContributesZeroDuration(t *testing.T) {
	tr := NewTracerClock(fakeClock(time.Millisecond))
	tr.Start("open", "open").SetRecords(5)
	st := tr.Stages()
	if st[0].WallNS != 0 {
		t.Errorf("unfinished span wall = %d, want 0", st[0].WallNS)
	}
	if st[0].Records != 5 {
		t.Errorf("unfinished span records = %d, want 5", st[0].Records)
	}
	if tr.WallNS() != 0 {
		t.Errorf("WallNS with no finished span = %d, want 0", tr.WallNS())
	}
}

// TestNilTracer pins the no-op contract: instrumented code never branches on
// whether tracing is enabled.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("s", "s")
	if sp != nil {
		t.Fatal("nil tracer returned a non-nil span")
	}
	sp.SetTID(1).SetRecords(2).AddRecords(3).Arg("k", 4)
	sp.End()
	if tr.Stages() != nil {
		t.Error("nil tracer has stages")
	}
	if tr.WallNS() != 0 {
		t.Error("nil tracer has wall time")
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Error("nil tracer wrote a trace")
	}
}

func TestWriteChromeTraceAndValidate(t *testing.T) {
	tr := NewTracerClock(fakeClock(time.Millisecond))
	a := tr.Start("load", "load/zeek").SetRecords(10)
	a.End()
	b := tr.Start("merge", "merge").Arg("partials", 4)
	b.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if err := ValidateChromeTrace(data, "load", "merge"); err != nil {
		t.Errorf("trace fails its own validator: %v", err)
	}
	if err := ValidateChromeTrace(data, "load", "merge", "finalize"); err == nil {
		t.Error("validator missed an absent required stage")
	} else if !strings.Contains(err.Error(), "finalize") {
		t.Errorf("missing-stage error does not name the stage: %v", err)
	}
	out := string(data)
	for _, want := range []string{`"name": "load/zeek"`, `"cat": "merge"`, `"ph": "X"`, `"records": 10`, `"partials": 4`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace JSON missing %s:\n%s", want, out)
		}
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":       "nope",
		"unknown fields": `{"traceEvents":[],"bogus":1}`,
		"no events":      `{"traceEvents":[],"displayTimeUnit":"ms"}`,
		"unnamed event":  `{"traceEvents":[{"name":"","cat":"s","ph":"X","ts":0,"dur":1,"pid":1,"tid":0}],"displayTimeUnit":"ms"}`,
		"wrong phase":    `{"traceEvents":[{"name":"e","cat":"s","ph":"B","ts":0,"dur":1,"pid":1,"tid":0}],"displayTimeUnit":"ms"}`,
		"negative time":  `{"traceEvents":[{"name":"e","cat":"s","ph":"X","ts":-1,"dur":1,"pid":1,"tid":0}],"displayTimeUnit":"ms"}`,
	}
	for name, doc := range cases {
		if err := ValidateChromeTrace([]byte(doc)); err == nil {
			t.Errorf("%s: accepted invalid trace", name)
		}
	}
}
