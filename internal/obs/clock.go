// The package's single wall-clock seam. Every other file in internal/obs is
// clock-free: tracers and loggers take their clock from here by default and
// accept an injected replacement, so tests (and the determinism suite) can
// drive spans with a synthetic clock while production code reads real time.
// This file — and only this file — is allowlisted in cmd/determinism-lint.
package obs

import "time"

// wallNow is the production clock behind NewTracer. Deterministic callers
// inject their own clock via NewTracerClock instead.
func wallNow() time.Time { return time.Now() }
