package obs

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests served.", "method")
	c.With("get").Inc()
	c.With("get").Add(2)
	c.With("post").Inc()
	if v := c.With("get").Value(); v != 3 {
		t.Errorf("counter get = %v, want 3", v)
	}
	if v, ok := r.Value("requests_total", "post"); !ok || v != 1 {
		t.Errorf("Value(requests_total, post) = %v, %v; want 1, true", v, ok)
	}
	g := r.Gauge("depth", "Queue depth.")
	g.With().Set(7)
	g.With().Set(4)
	if v, ok := r.Value("depth"); !ok || v != 4 {
		t.Errorf("gauge after Set = %v, %v; want 4, true", v, ok)
	}
	if _, ok := r.Value("absent"); ok {
		t.Error("Value on absent family reported ok")
	}
	if _, ok := r.Value("requests_total", "delete"); ok {
		t.Error("Value on absent series reported ok")
	}
}

func TestReRegisterReturnsSameFamily(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "X.", "l")
	b := r.Counter("x_total", "X.", "l")
	if a != b {
		t.Error("re-registering an identical family returned a new one")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering with a different kind did not panic")
		}
	}()
	r.Gauge("x_total", "X.", "l")
}

func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("bbb_total", "Second family.").With().Add(2)
	g := r.Gauge("aaa", "First family.", "site")
	g.With("alpha").Set(1.5)
	g.With("beta").Set(-3)
	r.Counter("ccc_total", "Headers only, no samples yet.")

	// Series sort by their encoded key (length-prefixed values), so the
	// shorter "beta" precedes "alpha"; any fixed total order satisfies the
	// byte-identity contract.
	want := strings.Join([]string{
		`# HELP aaa First family.`,
		`# TYPE aaa gauge`,
		`aaa{site="beta"} -3`,
		`aaa{site="alpha"} 1.5`,
		`# HELP bbb_total Second family.`,
		`# TYPE bbb_total counter`,
		`bbb_total 2`,
		`# HELP ccc_total Headers only, no samples yet.`,
		`# TYPE ccc_total counter`,
		``,
	}, "\n")
	if got := r.Text(); got != want {
		t.Errorf("Text:\n%s\nwant:\n%s", got, want)
	}
	if err := ValidateExposition([]byte(r.Text())); err != nil {
		t.Errorf("golden output fails conformance: %v", err)
	}
}

// TestEscaping pins satellite #1: label values and HELP text with
// backslashes, quotes, and newlines must render escaped — the bug class the
// hand-rolled ingest writer had — and the escaped output must pass the
// conformance checker.
func TestEscaping(t *testing.T) {
	r := NewRegistry()
	f := r.Gauge("m", "Help with \\ backslash\nand newline.", "subject")
	f.With(`CN="O\U", left`).Set(1)
	f.With("line1\nline2").Set(2)

	text := r.Text()
	for _, want := range []string{
		`# HELP m Help with \\ backslash\nand newline.`,
		`m{subject="CN=\"O\\U\", left"} 1`,
		`m{subject="line1\nline2"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if strings.Count(text, "\n") != 4 {
		t.Errorf("escaped output has %d newlines, want 4 (raw newline leaked):\n%q", strings.Count(text, "\n"), text)
	}
	if err := ValidateExposition([]byte(text)); err != nil {
		t.Errorf("escaped output fails conformance: %v", err)
	}
}

func TestHistogramRendering(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{1, 2})
	s := h.With()
	s.Observe(0.5)
	s.Observe(1.5)
	s.Observe(3)
	if v := s.Value(); v != 3 {
		t.Errorf("histogram Value (count) = %v, want 3", v)
	}
	want := strings.Join([]string{
		`# HELP lat_seconds Latency.`,
		`# TYPE lat_seconds histogram`,
		`lat_seconds_bucket{le="1"} 1`,
		`lat_seconds_bucket{le="2"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		`lat_seconds_sum 5`,
		`lat_seconds_count 3`,
		``,
	}, "\n")
	if got := r.Text(); got != want {
		t.Errorf("histogram rendering:\n%s\nwant:\n%s", got, want)
	}
	if err := ValidateExposition([]byte(r.Text())); err != nil {
		t.Errorf("histogram output fails conformance: %v", err)
	}
}

func TestFormatValueSpecials(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("v", "Specials.", "k")
	g.With("pinf").Set(math.Inf(1))
	g.With("ninf").Set(math.Inf(-1))
	g.With("nan").Set(math.NaN())
	text := r.Text()
	for _, want := range []string{`v{k="pinf"} +Inf`, `v{k="ninf"} -Inf`, `v{k="nan"} NaN`} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	if err := ValidateExposition([]byte(text)); err != nil {
		t.Errorf("special values fail conformance: %v", err)
	}
}

func TestInfoLabels(t *testing.T) {
	r := NewRegistry()
	if r.InfoLabels("nope") != nil {
		t.Error("InfoLabels on absent family is non-nil")
	}
	f := r.Gauge("build_info", "Build.", "component", "revision")
	f.With("ingestd", "abc123").Set(1)
	got := r.InfoLabels("build_info")
	if got["component"] != "ingestd" || got["revision"] != "abc123" {
		t.Errorf("InfoLabels = %v", got)
	}
	f.With("other", "def456").Set(1)
	if r.InfoLabels("build_info") != nil {
		t.Error("InfoLabels with two series is non-nil")
	}
}

func TestMergeErrors(t *testing.T) {
	base := func() *Registry {
		r := NewRegistry()
		r.Counter("m", "M.", "l").With("x").Inc()
		return r
	}
	kind := NewRegistry()
	kind.Gauge("m", "M.", "l").With("x").Set(1)
	if err := base().Merge(kind); err == nil {
		t.Error("kind mismatch merged without error")
	}
	schema := NewRegistry()
	schema.Counter("m", "M.", "other").With("x").Inc()
	if err := base().Merge(schema); err == nil {
		t.Error("label schema mismatch merged without error")
	}
	h1 := NewRegistry()
	h1.Histogram("h", "H.", []float64{1, 2}).With().Observe(1)
	h2 := NewRegistry()
	h2.Histogram("h", "H.", []float64{1, 3}).With().Observe(1)
	if err := h1.Merge(h2); err == nil {
		t.Error("bucket bounds mismatch merged without error")
	}
	r := base()
	if err := r.Merge(nil); err != nil {
		t.Errorf("Merge(nil): %v", err)
	}
	if err := r.Merge(r); err != nil {
		t.Errorf("Merge(self): %v", err)
	}
}

// regSpec describes a registry as data so the property tests can materialize
// the same logical registry any number of times (Merge mutates its
// receiver).
type regSpec struct {
	counters map[string]map[string]float64 // family -> label value -> total
	observes map[string][]float64          // histogram family -> observations
}

func (sp regSpec) build() *Registry {
	r := NewRegistry()
	for name, series := range sp.counters {
		f := r.Counter(name, "P.", "l")
		for lv, v := range series {
			f.With(lv).Add(v)
		}
	}
	for name, obs := range sp.observes {
		f := r.Histogram(name, "P.", []float64{0.25, 0.5, 1})
		for _, v := range obs {
			f.With().Observe(v)
		}
	}
	return r
}

// randomSpec derives a registry spec from a seeded generator: a handful of
// families drawn from a fixed namespace so merges overlap and adopt both.
func randomSpec(rng *rand.Rand) regSpec {
	sp := regSpec{counters: map[string]map[string]float64{}, observes: map[string][]float64{}}
	names := []string{"alpha_total", "beta_total", "gamma_total"}
	labels := []string{"a", "b", "c"}
	for _, name := range names {
		if rng.Intn(2) == 0 {
			continue
		}
		sp.counters[name] = map[string]float64{}
		for _, lv := range labels {
			if rng.Intn(2) == 0 {
				sp.counters[name][lv] = float64(rng.Intn(100))
			}
		}
	}
	if rng.Intn(2) == 0 {
		n := rng.Intn(5)
		obs := make([]float64, n)
		for i := range obs {
			obs[i] = rng.Float64() * 2
		}
		sp.observes["delta_seconds"] = obs
	}
	return sp
}

// TestMergeCommutativeAssociative is the registry mirror of the shard-merge
// property (FuzzShardMerge): merge order must never change the rendered
// exposition, because shard registries fan in concurrently in any order.
func TestMergeCommutativeAssociative(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randomSpec(rng), randomSpec(rng), randomSpec(rng)

		ab := a.build()
		if err := ab.Merge(b.build()); err != nil {
			t.Fatalf("seed %d: a·b: %v", seed, err)
		}
		ba := b.build()
		if err := ba.Merge(a.build()); err != nil {
			t.Fatalf("seed %d: b·a: %v", seed, err)
		}
		if ab.Text() != ba.Text() {
			t.Errorf("seed %d: merge is not commutative:\n%s\nvs\n%s", seed, ab.Text(), ba.Text())
		}

		abc := a.build()
		if err := abc.Merge(b.build()); err != nil {
			t.Fatal(err)
		}
		if err := abc.Merge(c.build()); err != nil {
			t.Fatal(err)
		}
		bc := b.build()
		if err := bc.Merge(c.build()); err != nil {
			t.Fatal(err)
		}
		aBC := a.build()
		if err := aBC.Merge(bc); err != nil {
			t.Fatal(err)
		}
		if abc.Text() != aBC.Text() {
			t.Errorf("seed %d: merge is not associative:\n%s\nvs\n%s", seed, abc.Text(), aBC.Text())
		}
	}
}

// FuzzRegistryMerge lets the fuzzer drive the same property over arbitrary
// seeds, mirroring FuzzShardMerge in internal/analysis.
func FuzzRegistryMerge(f *testing.F) {
	f.Add(int64(1), int64(2))
	f.Add(int64(42), int64(7))
	f.Fuzz(func(t *testing.T, s1, s2 int64) {
		a := randomSpec(rand.New(rand.NewSource(s1)))
		b := randomSpec(rand.New(rand.NewSource(s2)))
		ab := a.build()
		if err := ab.Merge(b.build()); err != nil {
			t.Fatal(err)
		}
		ba := b.build()
		if err := ba.Merge(a.build()); err != nil {
			t.Fatal(err)
		}
		if ab.Text() != ba.Text() {
			t.Errorf("merge order changed the exposition (seeds %d, %d)", s1, s2)
		}
		if err := ValidateExposition([]byte(ab.Text())); err != nil {
			t.Errorf("merged exposition fails conformance: %v", err)
		}
	})
}
