package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func validServeBench() ServeBench {
	lat := ServeBenchLatency{P50Sec: 0.002, P95Sec: 0.01, P99Sec: 0.05}
	return ServeBench{
		Tool:        "serve-bench",
		Seed:        42,
		Scale:       1,
		Concurrency: 8,
		DurationNS:  2_000_000_000,
		Requests:    1000,
		Errors:      2,
		QPS:         500,
		Latency:     lat,
		Routes: []ServeBenchRoute{
			{Route: "/report", Requests: 600, Errors: 2, Latency: lat},
			{Route: "/report?format=json", Requests: 400, Latency: lat},
		},
		Build: BuildInfo{GoVersion: "go1.23"},
	}
}

func TestValidateServeBench(t *testing.T) {
	data, err := json.Marshal(validServeBench())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateServeBench(data); err != nil {
		t.Errorf("valid document rejected: %v", err)
	}

	mutations := map[string]func(*ServeBench){
		"wrong tool":         func(b *ServeBench) { b.Tool = "pipeline-bench" },
		"zero concurrency":   func(b *ServeBench) { b.Concurrency = 0 },
		"zero duration":      func(b *ServeBench) { b.DurationNS = 0 },
		"no requests":        func(b *ServeBench) { b.Requests = 0 },
		"errors > requests":  func(b *ServeBench) { b.Errors = b.Requests + 1 },
		"zero qps":           func(b *ServeBench) { b.QPS = 0 },
		"non-monotone":       func(b *ServeBench) { b.Latency.P95Sec = b.Latency.P99Sec * 2 },
		"negative quantile":  func(b *ServeBench) { b.Latency.P50Sec = -1 },
		"no routes":          func(b *ServeBench) { b.Routes = nil },
		"empty route name":   func(b *ServeBench) { b.Routes[0].Route = "" },
		"duplicate route":    func(b *ServeBench) { b.Routes[1].Route = b.Routes[0].Route },
		"route sum mismatch": func(b *ServeBench) { b.Routes[0].Requests++ },
		"route err mismatch": func(b *ServeBench) { b.Routes[0].Errors = 0 },
		"route non-monotone": func(b *ServeBench) { b.Routes[1].Latency.P50Sec = 99 },
		"missing build":      func(b *ServeBench) { b.Build = BuildInfo{} },
	}
	for name, mutate := range mutations {
		b := validServeBench()
		mutate(&b)
		data, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateServeBench(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := ValidateServeBench([]byte("not json")); err == nil {
		t.Error("non-JSON accepted")
	} else if !strings.Contains(err.Error(), "serve-bench JSON") {
		t.Errorf("JSON error unclear: %v", err)
	}
}
