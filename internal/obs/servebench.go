package obs

import (
	"encoding/json"
	"fmt"
)

// ServeBench is the BENCH_serve.json schema: the serving-layer latency
// baseline cmd/serve-bench writes after driving a daemon's /report surface
// at sustained concurrency while ingest runs. Quantiles come from the
// harness's client-side obs histogram (Series.Quantile), so the committed
// baseline and a dashboard's histogram_quantile over the daemon's own
// middleware series use the same estimator. CI validates both the committed
// baseline and each smoke run's output with ValidateServeBench.
type ServeBench struct {
	Tool        string  `json:"tool"` // "serve-bench"
	Seed        int64   `json:"seed"`
	Scale       float64 `json:"scale"`
	Concurrency int     `json:"concurrency"`
	// DurationNS is the measured load window (excluding warmup).
	DurationNS int64 `json:"duration_ns"`
	// Requests and Errors count every request issued in the window; an
	// error is a transport failure or a non-200 status.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// QPS is Requests divided by the window.
	QPS float64 `json:"qps"`
	// Latency aggregates all routes; Routes breaks the same data down.
	Latency ServeBenchLatency `json:"latency"`
	Routes  []ServeBenchRoute `json:"routes"`
	Build   BuildInfo         `json:"build"`
}

// ServeBenchLatency carries the baseline quantiles in seconds.
type ServeBenchLatency struct {
	P50Sec float64 `json:"p50_seconds"`
	P95Sec float64 `json:"p95_seconds"`
	P99Sec float64 `json:"p99_seconds"`
}

// ServeBenchRoute is one driven route's share of the run.
type ServeBenchRoute struct {
	Route    string            `json:"route"`
	Requests int64             `json:"requests"`
	Errors   int64             `json:"errors"`
	Latency  ServeBenchLatency `json:"latency"`
}

func (l ServeBenchLatency) check() error {
	if l.P50Sec < 0 || l.P95Sec < 0 || l.P99Sec < 0 {
		return fmt.Errorf("negative latency quantile")
	}
	if l.P50Sec > l.P95Sec || l.P95Sec > l.P99Sec {
		return fmt.Errorf("quantiles not monotone: p50=%g p95=%g p99=%g", l.P50Sec, l.P95Sec, l.P99Sec)
	}
	return nil
}

// ValidateServeBench is the schema gate for a BENCH_serve.json document:
// required fields present, counts consistent, quantiles monotone.
func ValidateServeBench(data []byte) error {
	var b ServeBench
	if err := json.Unmarshal(data, &b); err != nil {
		return fmt.Errorf("obs: serve-bench JSON: %w", err)
	}
	if b.Tool != "serve-bench" {
		return fmt.Errorf("obs: serve-bench tool %q, want \"serve-bench\"", b.Tool)
	}
	if b.Concurrency < 1 {
		return fmt.Errorf("obs: serve-bench concurrency %d < 1", b.Concurrency)
	}
	if b.DurationNS <= 0 {
		return fmt.Errorf("obs: serve-bench duration_ns %d <= 0", b.DurationNS)
	}
	if b.Requests <= 0 {
		return fmt.Errorf("obs: serve-bench made no requests")
	}
	if b.Errors < 0 || b.Errors > b.Requests {
		return fmt.Errorf("obs: serve-bench errors %d out of range (requests %d)", b.Errors, b.Requests)
	}
	if b.QPS <= 0 {
		return fmt.Errorf("obs: serve-bench qps %g <= 0", b.QPS)
	}
	if err := b.Latency.check(); err != nil {
		return fmt.Errorf("obs: serve-bench latency: %w", err)
	}
	if len(b.Routes) == 0 {
		return fmt.Errorf("obs: serve-bench has no routes")
	}
	var reqSum, errSum int64
	seen := make(map[string]bool)
	for _, rt := range b.Routes {
		if rt.Route == "" {
			return fmt.Errorf("obs: serve-bench route with empty name")
		}
		if seen[rt.Route] {
			return fmt.Errorf("obs: serve-bench route %q duplicated", rt.Route)
		}
		seen[rt.Route] = true
		if rt.Requests < 0 || rt.Errors < 0 || rt.Errors > rt.Requests {
			return fmt.Errorf("obs: serve-bench route %q counts inconsistent", rt.Route)
		}
		if err := rt.Latency.check(); err != nil {
			return fmt.Errorf("obs: serve-bench route %q latency: %w", rt.Route, err)
		}
		reqSum += rt.Requests
		errSum += rt.Errors
	}
	if reqSum != b.Requests || errSum != b.Errors {
		return fmt.Errorf("obs: serve-bench route counts (%d req, %d err) disagree with totals (%d req, %d err)",
			reqSum, errSum, b.Requests, b.Errors)
	}
	if b.Build.GoVersion == "" {
		return fmt.Errorf("obs: serve-bench missing build.go_version")
	}
	return nil
}
