package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Cross-process trace splicing: a distributed run's spans are recorded by
// tracers in different processes whose wall clocks are not comparable, so a
// worker ships its span set as offsets relative to its own first span
// (SpanSnapshot), and the coordinator splices the sets into one Chrome trace
// with one pid per process. Within a pid, timestamps are internally
// consistent; across pids, only the coordinator-chosen order is meaningful —
// which is exactly the Chrome trace viewer's model (one track group per
// process). The spliced artifact is operational telemetry: it never feeds
// report bytes, so topology and timing churn cannot perturb the equivalence
// claim.

// SpanSnapshot is one span in wire form: stage, name, and timings as
// microsecond offsets from the owning tracer's earliest span start. The
// snapshot crosses process boundaries inside the dist layer's sealed
// envelopes, so it carries no absolute times.
type SpanSnapshot struct {
	Stage   string           `json:"stage"`
	Name    string           `json:"name"`
	TID     int              `json:"tid,omitempty"`
	StartUS int64            `json:"start_us"`
	DurUS   int64            `json:"dur_us"`
	Records int64            `json:"records,omitempty"`
	Args    map[string]int64 `json:"args,omitempty"`
}

// Snapshot exports the tracer's spans in creation order, timestamps rebased
// to the earliest span start. Unfinished spans export zero duration.
func (t *Tracer) Snapshot() []SpanSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var base time.Time
	for _, sp := range t.spans {
		if base.IsZero() || sp.start.Before(base) {
			base = sp.start
		}
	}
	out := make([]SpanSnapshot, 0, len(t.spans))
	for _, sp := range t.spans {
		ss := SpanSnapshot{
			Stage:   sp.Stage,
			Name:    sp.Name,
			TID:     sp.TID,
			StartUS: sp.start.Sub(base).Microseconds(),
			Records: sp.records,
		}
		if sp.ended {
			ss.DurUS = sp.end.Sub(sp.start).Microseconds()
		}
		if len(sp.args) > 0 {
			ss.Args = make(map[string]int64, len(sp.args))
			for k, v := range sp.args {
				ss.Args[k] = v
			}
		}
		out = append(out, ss)
	}
	return out
}

// ProcessTrace groups one process's spans for splicing: a display name, the
// Chrome trace pid, and the span set in the order the process recorded them.
type ProcessTrace struct {
	Process string         `json:"process"`
	PID     int            `json:"pid"`
	Spans   []SpanSnapshot `json:"spans,omitempty"`
}

// WriteSplicedChromeTrace exports multiple processes' span sets as one
// Chrome trace-event file: per process, a process_name metadata event
// followed by its spans, emitted in the order given (the coordinator orders
// itself first, then workers deterministically). Processes with empty span
// sets are skipped entirely — a worker that contributed no spans leaves no
// track. The output passes ValidateChromeTrace.
func WriteSplicedChromeTrace(w io.Writer, procs []ProcessTrace) error {
	out := traceFile{DisplayTimeUnit: "ms"}
	for _, proc := range procs {
		if len(proc.Spans) == 0 {
			continue
		}
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: "process_name",
			Ph:   "M",
			PID:  proc.PID,
			Args: map[string]any{"name": proc.Process},
		})
		for _, sp := range proc.Spans {
			ev := traceEvent{
				Name: sp.Name,
				Cat:  sp.Stage,
				Ph:   "X",
				TS:   sp.StartUS,
				Dur:  sp.DurUS,
				PID:  proc.PID,
				TID:  sp.TID,
			}
			if sp.Records != 0 || len(sp.Args) > 0 {
				ev.Args = make(map[string]any, len(sp.Args)+1)
				for k, v := range sp.Args {
					ev.Args[k] = v
				}
				if sp.Records != 0 {
					ev.Args["records"] = sp.Records
				}
			}
			out.TraceEvents = append(out.TraceEvents, ev)
		}
	}
	if len(out.TraceEvents) == 0 {
		return fmt.Errorf("obs: spliced trace has no spans")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ValidateSplicedChromeTrace checks a spliced cross-process trace: it must
// pass ValidateChromeTrace (including the required stages) and carry spans
// from at least minProcesses distinct pids. The dist-smoke CI job runs this
// over the coordinator's -trace artifact.
func ValidateSplicedChromeTrace(data []byte, minProcesses int, requiredStages ...string) error {
	if err := ValidateChromeTrace(data, requiredStages...); err != nil {
		return err
	}
	pids, err := ChromeTraceProcesses(data)
	if err != nil {
		return err
	}
	if len(pids) < minProcesses {
		sort.Ints(pids)
		return fmt.Errorf("obs: spliced trace has spans from %d process(es) %v, want >= %d", len(pids), pids, minProcesses)
	}
	return nil
}
