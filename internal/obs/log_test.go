package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	for _, format := range []string{"", "text", "json"} {
		if _, err := NewLogger(&buf, format, slog.LevelInfo); err != nil {
			t.Errorf("format %q: %v", format, err)
		}
	}
	if _, err := NewLogger(&buf, "xml", slog.LevelInfo); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestNewLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "json", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("capture complete", "observations", 42)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json log line is not JSON: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "capture complete" || rec["observations"] != float64(42) {
		t.Errorf("json record = %v", rec)
	}
}

func TestNewLoggerLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "text", slog.LevelWarn)
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("hidden")
	logger.Warn("visible")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Error("info record passed a warn-level logger")
	}
	if !strings.Contains(out, "visible") {
		t.Error("warn record missing")
	}
}

func TestParseLogLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"WARN":  slog.LevelWarn,
		"error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Error("unknown level accepted")
	}
}

// TestDeterministicLogger pins the test seam: identical event sequences log
// byte-identically because the time attribute is stripped.
func TestDeterministicLogger(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		logger := NewDeterministicLogger(&buf, slog.LevelInfo)
		logger.Info("window folded", "bucket", 3, "records", 120)
		logger.Warn("late connection", "window", "2026-01-01T00:00:00Z")
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two identical sequences differ:\n%s\nvs\n%s", a, b)
	}
	if strings.Contains(a, "time=") {
		t.Errorf("deterministic logger leaked a time attribute:\n%s", a)
	}
	if !strings.Contains(a, "msg=\"window folded\"") {
		t.Errorf("unexpected record shape:\n%s", a)
	}
}
