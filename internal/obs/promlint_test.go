package obs

import (
	"strings"
	"testing"
)

// TestValidateExpositionAccepts covers well-formed documents, including the
// corners the repo's writers produce: header-only families, escaped label
// values, special float spellings, histogram blocks, and timestamps.
func TestValidateExpositionAccepts(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"plain":       "up 1\n",
		"header only": "# HELP x_total X.\n# TYPE x_total counter\n",
		"labels":      "# TYPE m gauge\nm{a=\"1\",b=\"2\"} 3\n",
		"escapes":     `m{v="q\"uote\\back\nnl"} 1` + "\n",
		"specials":    "a +Inf\nb -Inf\nc NaN\n",
		"timestamp":   "m 1 1700000000\n",
		"comment":     "# just a comment\nm 1\n",
		"histogram": strings.Join([]string{
			"# TYPE h histogram",
			`h_bucket{le="1"} 1`,
			`h_bucket{le="+Inf"} 2`,
			"h_sum 2.5",
			"h_count 2",
			"",
		}, "\n"),
	}
	for name, doc := range cases {
		if err := ValidateExposition([]byte(doc)); err != nil {
			t.Errorf("%s: unexpected error: %v\n%s", name, err, doc)
		}
	}
}

// TestValidateExpositionRejects pins the bug classes the checker exists for.
func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"bad value":            "m one\n",
		"extra fields":         "m 1 2 3\n",
		"bad metric name":      "1m 1\n",
		"bad label name":       `m{0bad="x"} 1` + "\n",
		"unquoted label":       "m{a=1} 1\n",
		"unterminated block":   `m{a="x" 1` + "\n",
		"unterminated value":   `m{a="x} 1` + "\n",
		"illegal escape":       `m{a="\q"} 1` + "\n",
		"dangling backslash":   `m{a="x\"} 1` + "\n",
		"missing eq":           `m{abc} 1` + "\n",
		"duplicate series":     "m{a=\"x\"} 1\nm{a=\"x\"} 2\n",
		"unknown TYPE":         "# TYPE m enum\n",
		"TYPE missing type":    "# TYPE m\n",
		"duplicate TYPE":       "# TYPE m counter\n# TYPE m counter\n",
		"TYPE after samples":   "# HELP m M.\nm 1\n# TYPE m counter\n",
		"interleaved families": "# TYPE a counter\n# TYPE b counter\na 1\n",
		"help bad escape":      `# HELP m bad \t escape` + "\n",
		"no space after hash":  "#HELP m M.\n",
		"bad TYPE name":        "# TYPE 9m counter\n",
		"bad timestamp":        "m 1 later\n",
	}
	for name, doc := range cases {
		if err := ValidateExposition([]byte(doc)); err == nil {
			t.Errorf("%s: accepted invalid exposition:\n%s", name, doc)
		}
	}
}

// TestValidateExpositionRawQuote is the exact hand-rolled-writer bug the
// issue names: an unescaped double quote inside a label value truncates the
// value and must be flagged.
func TestValidateExpositionRawQuote(t *testing.T) {
	doc := `m{subject="CN="O\U", left"} 1` + "\n"
	if err := ValidateExposition([]byte(doc)); err == nil {
		t.Error("accepted a label value with an unescaped double quote")
	}
}

func TestBaseFamilySuffixes(t *testing.T) {
	fams := map[string]*familyState{"h": {}, "real_count": {}}
	if got := baseFamily("h_bucket", fams); got != "h" {
		t.Errorf("baseFamily(h_bucket) = %q, want h", got)
	}
	if got := baseFamily("real_count", fams); got != "real_count" {
		t.Errorf("baseFamily(real_count) = %q; exact family must win over suffix stripping", got)
	}
	if got := baseFamily("other_sum", fams); got != "other_sum" {
		t.Errorf("baseFamily(other_sum) = %q, want other_sum (unknown base)", got)
	}
}
