package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Manifest is a run's provenance record, emitted next to every report: what
// inputs, seed, and stage costs produced it. The full manifest carries
// wall-clock timings and build info; DeterministicSubset strips everything
// that may legitimately vary between equivalent runs, leaving a canonical
// JSON document that is byte-identical across worker widths (pinned by the
// seeds×widths equivalence suite).
type Manifest struct {
	// Tool is the producing binary ("certchain-analyze").
	Tool string `json:"tool"`
	// Seed and Scale are the scenario parameters.
	Seed  int64   `json:"seed"`
	Scale float64 `json:"scale"`
	// Workers is the shard width the run used (reports are width-invariant;
	// the manifest records the width for cost attribution).
	Workers int `json:"workers"`
	// Flags are the invocation's set flags, name → value.
	Flags map[string]string `json:"flags,omitempty"`
	// Inputs digest every input file consumed.
	Inputs []InputDigest `json:"inputs,omitempty"`
	// Stages are the tracer's per-stage aggregates.
	Stages []StageStat `json:"stages,omitempty"`
	// ReportSHA256 is the hex digest of the rendered report bytes.
	ReportSHA256 string `json:"report_sha256,omitempty"`
	// WallNS is the end-to-end wall time of the traced run.
	WallNS int64 `json:"wall_ns,omitempty"`
	// Build identifies the producing binary's build.
	Build BuildInfo `json:"build"`
}

// InputDigest identifies one input file by content.
type InputDigest struct {
	Path   string `json:"path"`
	SHA256 string `json:"sha256"`
	Bytes  int64  `json:"bytes"`
}

// DigestFile hashes one input file.
func DigestFile(path string) (InputDigest, error) {
	f, err := os.Open(path)
	if err != nil {
		return InputDigest{}, err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return InputDigest{}, fmt.Errorf("obs: digest %s: %w", path, err)
	}
	return InputDigest{Path: path, SHA256: hex.EncodeToString(h.Sum(nil)), Bytes: n}, nil
}

// DigestBytes digests in-memory input (reports, generated corpora).
func DigestBytes(name string, data []byte) InputDigest {
	sum := sha256.Sum256(data)
	return InputDigest{Path: name, SHA256: hex.EncodeToString(sum[:]), Bytes: int64(len(data))}
}

// SHA256Hex is the hex digest of data, for Manifest.ReportSHA256.
func SHA256Hex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// nondeterministicFlags are invocation flags excluded from the
// deterministic subset: widths, artifact paths, and operational knobs that
// never influence report bytes.
var nondeterministicFlags = map[string]bool{
	"workers":      true,
	"trace":        true,
	"manifest":     true,
	"cpuprofile":   true,
	"memprofile":   true,
	"metrics-addr": true,
	"log-format":   true,
	"log-level":    true,
	// Distributed-topology knobs: which processes ran the partitions, how
	// leases were paced, and chaos throttles never reach report bytes.
	"local":      true,
	"lease":      true,
	"poll":       true,
	"goroutines": true,
	"addr":       true,
	"name":       true,
	"throttle":   true,
}

// deterministicStage is a stage's width-invariant projection: the total
// records a stage processed is a pure function of the input (shards
// partition the same records), while span counts and wall times are not.
type deterministicStage struct {
	Stage   string `json:"stage"`
	Records int64  `json:"records"`
}

// deterministicManifest is the canonical subset; field order is the
// canonical serialization order.
type deterministicManifest struct {
	Tool         string               `json:"tool"`
	Seed         int64                `json:"seed"`
	Scale        float64              `json:"scale"`
	Flags        map[string]string    `json:"flags,omitempty"`
	Inputs       []InputDigest        `json:"inputs,omitempty"`
	Stages       []deterministicStage `json:"stages,omitempty"`
	ReportSHA256 string               `json:"report_sha256,omitempty"`
}

// DeterministicSubset renders the manifest's width- and timing-independent
// core as canonical JSON: fixed field order, sorted map keys
// (encoding/json sorts), stages sorted by name, operational flags dropped.
// Two equivalent runs — any worker width, any machine, same inputs —
// produce byte-identical subsets.
func (m *Manifest) DeterministicSubset() ([]byte, error) {
	d := deterministicManifest{
		Tool:         m.Tool,
		Seed:         m.Seed,
		Scale:        m.Scale,
		Inputs:       append([]InputDigest(nil), m.Inputs...),
		ReportSHA256: m.ReportSHA256,
	}
	if len(m.Flags) > 0 {
		d.Flags = make(map[string]string)
		for k, v := range m.Flags {
			if !nondeterministicFlags[k] {
				d.Flags[k] = v
			}
		}
		if len(d.Flags) == 0 {
			d.Flags = nil
		}
	}
	for _, st := range m.Stages {
		d.Stages = append(d.Stages, deterministicStage{Stage: st.Stage, Records: st.Records})
	}
	sort.Slice(d.Stages, func(i, j int) bool { return d.Stages[i].Stage < d.Stages[j].Stage })
	sort.Slice(d.Inputs, func(i, j int) bool { return d.Inputs[i].Path < d.Inputs[j].Path })
	return json.Marshal(d)
}

// JSON renders the full manifest, indented, with a trailing newline.
func (m *Manifest) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile writes the full manifest to path.
func (m *Manifest) WriteFile(path string) error {
	data, err := m.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ValidateManifest is the schema checker the obs-smoke CI job runs over an
// emitted manifest file: required fields present, digests well-formed,
// stage aggregates sane.
func ValidateManifest(data []byte) error {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("obs: manifest JSON: %w", err)
	}
	if m.Tool == "" {
		return fmt.Errorf("obs: manifest missing tool")
	}
	if m.Workers < 1 {
		return fmt.Errorf("obs: manifest workers %d < 1", m.Workers)
	}
	if m.Build.GoVersion == "" {
		return fmt.Errorf("obs: manifest missing build.go_version")
	}
	if len(m.Stages) == 0 {
		return fmt.Errorf("obs: manifest has no stages")
	}
	for _, st := range m.Stages {
		if st.Stage == "" {
			return fmt.Errorf("obs: manifest stage with empty name")
		}
		if st.Spans < 1 {
			return fmt.Errorf("obs: manifest stage %q has no spans", st.Stage)
		}
		if st.Records < 0 || st.WallNS < 0 {
			return fmt.Errorf("obs: manifest stage %q has negative aggregates", st.Stage)
		}
	}
	for _, in := range m.Inputs {
		if err := checkHex256(in.SHA256); err != nil {
			return fmt.Errorf("obs: manifest input %q: %w", in.Path, err)
		}
	}
	if m.ReportSHA256 != "" {
		if err := checkHex256(m.ReportSHA256); err != nil {
			return fmt.Errorf("obs: manifest report_sha256: %w", err)
		}
	}
	// The deterministic subset must itself be derivable.
	if _, err := m.DeterministicSubset(); err != nil {
		return fmt.Errorf("obs: manifest subset: %w", err)
	}
	return nil
}

func checkHex256(s string) error {
	if len(s) != 64 {
		return fmt.Errorf("digest %q is not 64 hex chars", s)
	}
	if _, err := hex.DecodeString(s); err != nil {
		return fmt.Errorf("digest %q is not hex", s)
	}
	return nil
}
