// Package obs is the repository's unified observability layer: a stdlib-only
// metrics registry (counters, gauges, histograms with labels, commutative
// Merge riding the shard contract), stage spans with an injectable clock and
// Chrome trace-event export, run provenance manifests with a deterministic
// subset, structured slog helpers, and build info — shared by the batch
// pipeline, the streaming ingest daemon, and every serving CLI.
//
// Determinism rules (see DESIGN.md §11): metric *values* may carry wall-time
// quantities (uptime, durations), but everything obs renders is emitted in a
// fixed order, so equal states produce byte-identical text. The only
// wall-clock read in the package lives in clock.go; all other timing is
// injected.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind is a metric family's type.
type Kind int

const (
	// KindCounter is a monotonically accumulated total.
	KindCounter Kind = iota
	// KindGauge is a point-in-time value.
	KindGauge
	// KindHistogram is a bucketed distribution.
	KindHistogram
)

// String returns the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families. All methods are safe for concurrent use.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*Family)}
}

// Family is one named metric with a fixed label schema. Series materialize
// lazily per label-value combination.
type Family struct {
	reg     *Registry
	name    string
	help    string
	kind    Kind
	labels  []string  // label names, in declaration order
	buckets []float64 // histogram upper bounds, ascending (+Inf implied)
	series  map[string]*Series
}

// Series is one (family, label values) time series.
type Series struct {
	fam    *Family
	values []string
	// counter/gauge value
	val float64
	// histogram state: per-bucket counts aligned with fam.buckets, plus the
	// implicit +Inf bucket at the end.
	bucketCounts []uint64
	sum          float64
	count        uint64
}

func (r *Registry) family(name, help string, kind Kind, buckets []float64, labels []string) *Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, f.kind))
		}
		if len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with %d labels (was %d)", name, len(labels), len(f.labels)))
		}
		return f
	}
	f := &Family{
		reg:     r,
		name:    name,
		help:    help,
		kind:    kind,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]*Series),
	}
	r.families[name] = f
	return f
}

// Counter registers (or returns) a counter family with the given label
// names.
func (r *Registry) Counter(name, help string, labels ...string) *Family {
	return r.family(name, help, KindCounter, nil, labels)
}

// Gauge registers (or returns) a gauge family with the given label names.
func (r *Registry) Gauge(name, help string, labels ...string) *Family {
	return r.family(name, help, KindGauge, nil, labels)
}

// Histogram registers (or returns) a histogram family. buckets are ascending
// upper bounds; the +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Family {
	if len(buckets) == 0 {
		buckets = DefaultDurationBuckets
	}
	return r.family(name, help, KindHistogram, buckets, labels)
}

// DefaultDurationBuckets spans microseconds to minutes in seconds, the
// range of one pipeline stage.
var DefaultDurationBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 30, 60, 300,
}

// seriesKey encodes label values unambiguously (values may contain any
// byte; a length prefix keeps concatenations distinct).
func seriesKey(values []string) string {
	var b strings.Builder
	for _, v := range values {
		fmt.Fprintf(&b, "%d:%s;", len(v), v)
	}
	return b.String()
}

// With returns the series for the given label values (count must match the
// family's label names), creating it at zero.
func (f *Family) With(values ...string) *Series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.reg.mu.Lock()
	defer f.reg.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &Series{fam: f, values: append([]string(nil), values...)}
		if f.kind == KindHistogram {
			s.bucketCounts = make([]uint64, len(f.buckets)+1)
		}
		f.series[key] = s
	}
	return s
}

// Inc adds one to a counter or gauge.
func (s *Series) Inc() { s.Add(1) }

// Add accumulates into a counter or gauge.
func (s *Series) Add(delta float64) {
	s.fam.reg.mu.Lock()
	defer s.fam.reg.mu.Unlock()
	s.val += delta
}

// Set replaces a gauge's (or scrape-refreshed counter's) value. Counters
// exported from a consistent snapshot (the ingest daemon's Stats) refresh
// via Set rather than tracking deltas; Merge still sums.
func (s *Series) Set(v float64) {
	s.fam.reg.mu.Lock()
	defer s.fam.reg.mu.Unlock()
	s.val = v
}

// Observe folds one measurement into a histogram.
func (s *Series) Observe(v float64) {
	s.fam.reg.mu.Lock()
	defer s.fam.reg.mu.Unlock()
	idx := sort.SearchFloat64s(s.fam.buckets, v)
	// SearchFloat64s returns the first bucket whose bound is >= v, which is
	// exactly the cumulative-le bucket; values above every bound land in
	// +Inf.
	s.bucketCounts[idx]++
	s.sum += v
	s.count++
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of a histogram series from
// its bucket counts, interpolating linearly within the containing bucket —
// the same estimator Prometheus's histogram_quantile applies server-side,
// so a client-side baseline (serve-bench) and a dashboard read of the same
// histogram agree. Observations in the +Inf bucket clamp to the largest
// finite bound; a series with no observations (or a non-histogram series)
// reports 0.
func (s *Series) Quantile(q float64) float64 {
	s.fam.reg.mu.Lock()
	defer s.fam.reg.mu.Unlock()
	if s.fam.kind != KindHistogram || s.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	bounds := s.fam.buckets
	target := q * float64(s.count)
	var cum float64
	for i, n := range s.bucketCounts {
		if n == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		if i >= len(bounds) {
			// +Inf bucket: no finite upper bound to interpolate toward.
			return bounds[len(bounds)-1]
		}
		hi := bounds[i]
		if cum+float64(n) >= target {
			frac := (target - cum) / float64(n)
			return lo + frac*(hi-lo)
		}
		cum += float64(n)
	}
	return bounds[len(bounds)-1]
}

// Value returns a counter/gauge value, or a histogram's observation count.
func (s *Series) Value() float64 {
	s.fam.reg.mu.Lock()
	defer s.fam.reg.mu.Unlock()
	if s.fam.kind == KindHistogram {
		return float64(s.count)
	}
	return s.val
}

// Value looks up a series value by family name and label values; ok is
// false when either is unknown.
func (r *Registry) Value(name string, labelValues ...string) (v float64, ok bool) {
	r.mu.Lock()
	f, okF := r.families[name]
	if !okF {
		r.mu.Unlock()
		return 0, false
	}
	s, okS := f.series[seriesKey(labelValues)]
	r.mu.Unlock()
	if !okS {
		return 0, false
	}
	return s.Value(), true
}

// InfoLabels returns the label name→value map of the family's single series
// — the idiom for *_info metrics (build info). It returns nil when the
// family is absent or has zero or multiple series.
func (r *Registry) InfoLabels(name string) map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok || len(f.series) != 1 {
		return nil
	}
	for _, s := range f.series {
		out := make(map[string]string, len(f.labels))
		for i, n := range f.labels {
			out[n] = s.values[i]
		}
		return out
	}
	return nil
}

// Merge folds other into r: counters, gauges, and histograms all sum, so
// Merge is commutative and associative — the same contract the analysis
// shard merge rides. Families present only in other are adopted. Merging
// families that disagree on kind, label schema, or buckets returns an
// error.
func (r *Registry) Merge(other *Registry) error {
	if other == nil || other == r {
		return nil
	}
	// Lock ordering: registries are merged under both locks; callers never
	// merge in both directions concurrently (shard merges are fan-in).
	r.mu.Lock()
	defer r.mu.Unlock()
	other.mu.Lock()
	defer other.mu.Unlock()

	names := make([]string, 0, len(other.families))
	for name := range other.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		of := other.families[name]
		f, ok := r.families[name]
		if !ok {
			f = &Family{
				reg:     r,
				name:    of.name,
				help:    of.help,
				kind:    of.kind,
				labels:  append([]string(nil), of.labels...),
				buckets: append([]float64(nil), of.buckets...),
				series:  make(map[string]*Series),
			}
			r.families[name] = f
		} else {
			if f.kind != of.kind {
				return fmt.Errorf("obs: merge %q: kind %v vs %v", name, f.kind, of.kind)
			}
			if strings.Join(f.labels, ",") != strings.Join(of.labels, ",") {
				return fmt.Errorf("obs: merge %q: label schema mismatch", name)
			}
			if len(f.buckets) != len(of.buckets) {
				return fmt.Errorf("obs: merge %q: bucket count mismatch", name)
			}
			for i := range f.buckets {
				if f.buckets[i] != of.buckets[i] {
					return fmt.Errorf("obs: merge %q: bucket bounds mismatch", name)
				}
			}
		}
		for key, os := range of.series {
			s, ok := f.series[key]
			if !ok {
				s = &Series{fam: f, values: append([]string(nil), os.values...)}
				if f.kind == KindHistogram {
					s.bucketCounts = make([]uint64, len(f.buckets)+1)
				}
				f.series[key] = s
			}
			s.val += os.val
			s.sum += os.sum
			s.count += os.count
			for i := range os.bucketCounts {
				s.bucketCounts[i] += os.bucketCounts[i]
			}
		}
	}
	return nil
}

// escapeHelp escapes a HELP line per the Prometheus exposition format:
// backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// escapeLabelValue escapes a label value per the Prometheus exposition
// format: backslash, double-quote, and newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// formatValue renders a sample value: integers without exponent, specials
// as +Inf/-Inf/NaN.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelBlock renders {a="x",b="y"} from parallel name/value slices plus
// optional extra pairs (the histogram `le`); empty input renders nothing.
func labelBlock(names, values []string, extra ...string) string {
	if len(names) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	emit := func(n, v string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(v))
		b.WriteByte('"')
	}
	for i, n := range names {
		emit(n, values[i])
	}
	for i := 0; i+1 < len(extra); i += 2 {
		emit(extra[i], extra[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// WriteText renders the registry in Prometheus text exposition format
// (version 0.0.4): families sorted by name, series sorted by label values,
// HELP and label values escaped. Equal registry states produce identical
// bytes.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.families[name]
		// A registered family renders its header even before any series
		// exists: dashboards see the metric's type immediately, and a scrape
		// taken before the first sample still documents the full surface.
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		keys := make([]string, 0, len(f.series))
		for key := range f.series {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			s := f.series[key]
			if f.kind != KindHistogram {
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelBlock(f.labels, s.values), formatValue(s.val)); err != nil {
					return err
				}
				continue
			}
			cum := uint64(0)
			for i, bound := range f.buckets {
				cum += s.bucketCounts[i]
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					labelBlock(f.labels, s.values, "le", formatValue(bound)), cum); err != nil {
					return err
				}
			}
			cum += s.bucketCounts[len(f.buckets)]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				labelBlock(f.labels, s.values, "le", "+Inf"), cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelBlock(f.labels, s.values), formatValue(s.sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelBlock(f.labels, s.values), s.count); err != nil {
				return err
			}
		}
	}
	return nil
}

// Text renders WriteText to a string.
func (r *Registry) Text() string {
	var b strings.Builder
	// strings.Builder never errors.
	_ = r.WriteText(&b)
	return b.String()
}
