package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// ValidateExposition is a line-format conformance checker for the Prometheus
// text exposition format (version 0.0.4), strict enough to catch the
// escaping bugs a hand-rolled writer produces: unescaped double quotes or
// raw newlines in label values, malformed metric/label names, samples with
// no parsable value, HELP/TYPE lines for a different metric than the samples
// that follow, and duplicate series. The conformance tests run it over the
// /metrics output of every serving binary.
func ValidateExposition(data []byte) error {
	families := make(map[string]*familyState)
	seenSeries := make(map[string]bool)
	var lastTyped string

	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseCommentLine(line)
			if err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			if kind == "" { // plain comment
				continue
			}
			if !validMetricName(name) {
				return fmt.Errorf("line %d: invalid metric name %q in %s line", lineNo, name, kind)
			}
			st := families[name]
			if st == nil {
				st = &familyState{}
				families[name] = st
			}
			switch kind {
			case "HELP":
				if err := checkEscapes(rest, false); err != nil {
					return fmt.Errorf("line %d: HELP text: %w", lineNo, err)
				}
			case "TYPE":
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown TYPE %q", lineNo, rest)
				}
				if st.seenSample {
					return fmt.Errorf("line %d: TYPE %s appears after its samples", lineNo, name)
				}
				if st.typ != "" {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				st.typ = rest
				lastTyped = name
			}
			continue
		}

		name, labels, err := parseSampleLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		base := baseFamily(name, families)
		if st := families[base]; st != nil {
			st.seenSample = true
			// The exposition format groups a family's samples under its
			// HELP/TYPE header; a sample for a *different* typed family in
			// the middle of a block means the writer interleaved families.
			if lastTyped != "" && base != lastTyped {
				return fmt.Errorf("line %d: sample for %s inside the %s block", lineNo, base, lastTyped)
			}
		}
		key := name + "{" + labels + "}"
		if seenSeries[key] {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seenSeries[key] = true
	}
	return nil
}

// parseCommentLine splits "# HELP name text" / "# TYPE name type"; kind is
// empty for plain comments.
func parseCommentLine(line string) (kind, name, rest string, err error) {
	body := strings.TrimPrefix(line, "#")
	if !strings.HasPrefix(body, " ") {
		return "", "", "", fmt.Errorf("comment line missing space after #")
	}
	body = body[1:]
	switch {
	case strings.HasPrefix(body, "HELP "):
		kind, body = "HELP", body[len("HELP "):]
	case strings.HasPrefix(body, "TYPE "):
		kind, body = "TYPE", body[len("TYPE "):]
	default:
		return "", "", "", nil
	}
	sp := strings.IndexByte(body, ' ')
	if sp < 0 {
		// HELP with empty text is legal; TYPE requires the type word.
		if kind == "TYPE" {
			return "", "", "", fmt.Errorf("TYPE line missing type")
		}
		return kind, body, "", nil
	}
	return kind, body[:sp], body[sp+1:], nil
}

// parseSampleLine validates `name{labels} value [timestamp]` and returns
// the metric name and the raw label block (for series identity).
func parseSampleLine(line string) (name, labels string, err error) {
	rest := line
	end := 0
	for end < len(rest) && isNameChar(rest[end], end == 0) {
		end++
	}
	name = rest[:end]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("invalid metric name at %q", truncate(line))
	}
	rest = rest[end:]
	if strings.HasPrefix(rest, "{") {
		blockEnd := findLabelBlockEnd(rest)
		if blockEnd < 0 {
			return "", "", fmt.Errorf("unterminated label block at %q", truncate(line))
		}
		labels = rest[1:blockEnd]
		if err := validateLabels(labels); err != nil {
			return "", "", err
		}
		rest = rest[blockEnd+1:]
	}
	rest = strings.TrimPrefix(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", fmt.Errorf("expected value [timestamp] after %q", name)
	}
	if err := validSampleValue(fields[0]); err != nil {
		return "", "", fmt.Errorf("metric %s: %w", name, err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", "", fmt.Errorf("metric %s: bad timestamp %q", name, fields[1])
		}
	}
	return name, labels, nil
}

// findLabelBlockEnd returns the index of the closing brace of a label
// block, honoring quoted values with escapes; -1 when unterminated.
func findLabelBlockEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		c := s[i]
		switch {
		case inQuote && c == '\\':
			i++ // skip escaped char
		case c == '"':
			inQuote = !inQuote
		case !inQuote && c == '}':
			return i
		case !inQuote && c == '\n':
			return -1
		}
	}
	return -1
}

// validateLabels checks each `name="value"` pair: legal label names, quoted
// values, and only the three legal escapes inside.
func validateLabels(block string) error {
	rest := block
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return fmt.Errorf("label pair missing '=' in %q", truncate(block))
		}
		lname := rest[:eq]
		if !validLabelName(lname) {
			return fmt.Errorf("invalid label name %q", lname)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return fmt.Errorf("label %s: value not quoted", lname)
		}
		rest = rest[1:]
		i := 0
		for {
			if i >= len(rest) {
				return fmt.Errorf("label %s: unterminated value", lname)
			}
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					return fmt.Errorf("label %s: dangling backslash", lname)
				}
				switch rest[i+1] {
				case '\\', '"', 'n':
					i += 2
					continue
				default:
					return fmt.Errorf("label %s: illegal escape \\%c", lname, rest[i+1])
				}
			}
			if c == '"' {
				break
			}
			if c == '\n' {
				return fmt.Errorf("label %s: raw newline in value", lname)
			}
			i++
		}
		rest = rest[i+1:]
		if rest == "" {
			break
		}
		if !strings.HasPrefix(rest, ",") {
			return fmt.Errorf("label %s: expected ',' between pairs", lname)
		}
		rest = rest[1:]
	}
	return nil
}

// checkEscapes verifies HELP text uses only legal escapes (backslash,
// and \n; quote escaping is label-value-only).
func checkEscapes(s string, labelValue bool) error {
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			continue
		}
		if i+1 >= len(s) {
			return fmt.Errorf("dangling backslash")
		}
		switch s[i+1] {
		case '\\', 'n':
		case '"':
			if !labelValue {
				return fmt.Errorf(`\" escape is only legal in label values`)
			}
		default:
			return fmt.Errorf("illegal escape \\%c", s[i+1])
		}
		i++
	}
	return nil
}

// validSampleValue accepts Go/Prometheus float syntax plus the spec's
// +Inf/-Inf/NaN spellings.
func validSampleValue(s string) error {
	switch s {
	case "+Inf", "-Inf", "Inf", "NaN":
		return nil
	}
	if _, err := strconv.ParseFloat(s, 64); err != nil {
		return fmt.Errorf("bad sample value %q", s)
	}
	return nil
}

func isNameChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "__name__" {
		return s != ""
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// familyState tracks one declared family while validating.
type familyState struct {
	typ        string
	seenSample bool
}

// baseFamily strips histogram/summary sample suffixes to find the family a
// sample belongs to, preferring an exact family match (a counter literally
// named *_count stays itself).
func baseFamily(name string, families map[string]*familyState) string {
	if _, ok := families[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suffix) {
			base := strings.TrimSuffix(name, suffix)
			if _, ok := families[base]; ok {
				return base
			}
		}
	}
	return name
}

func truncate(s string) string {
	if len(s) > 60 {
		return s[:60] + "..."
	}
	return s
}
