package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func pipelineBenchFixture() *PipelineBench {
	return &PipelineBench{
		Tool:         "pipeline-bench",
		Seed:         1,
		Scale:        0.002,
		Iters:        3,
		GOMAXPROCS:   8,
		Observations: 1879,
		Build:        BuildInfo{GoVersion: "go1.24"},
		Runs: []PipelineBenchRun{{
			Workers:       1,
			TotalNSOp:     10_000_000,
			RecordsPerSec: 187_900,
			Stages: []PipelineBenchStage{
				{Stage: "observe", NSOp: 8_000_000, RecordsPerSec: 234_875, Records: 1879, AllocsPerOp: 50_000, AllocBytesPerOp: 2 << 20},
				{Stage: "observe-shard", NSOp: 7_500_000, Records: 1879, RecordsPerSec: 250_533},
				{Stage: "merge", NSOp: 500_000, AllocsPerOp: 7_000, AllocBytesPerOp: 1 << 19},
				{Stage: "finalize", NSOp: 1_500_000, AllocsPerOp: 2_700, AllocBytesPerOp: 1 << 18},
				{Stage: StageObserveHandoff, NSOp: 500_000},
			},
		}},
	}
}

func marshalBench(t *testing.T, b *PipelineBench) []byte {
	t.Helper()
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestValidatePipelineBench(t *testing.T) {
	if err := ValidatePipelineBench(marshalBench(t, pipelineBenchFixture())); err != nil {
		t.Fatalf("valid fixture rejected: %v", err)
	}

	cases := []struct {
		name    string
		mutate  func(*PipelineBench)
		wantSub string
	}{
		{"wrong tool", func(b *PipelineBench) { b.Tool = "serve-bench" }, "tool"},
		{"no runs", func(b *PipelineBench) { b.Runs = nil }, "no runs"},
		{"zero observations", func(b *PipelineBench) { b.Observations = 0 }, "observations"},
		{"missing build", func(b *PipelineBench) { b.Build.GoVersion = "" }, "go_version"},
		{"duplicate width", func(b *PipelineBench) { b.Runs = append(b.Runs, b.Runs[0]) }, "duplicated"},
		{"duplicate stage", func(b *PipelineBench) {
			b.Runs[0].Stages = append(b.Runs[0].Stages, b.Runs[0].Stages[2])
		}, "duplicated"},
		{"missing observe", func(b *PipelineBench) { b.Runs[0].Stages[0].Stage = "decode" }, "observe"},
		{"negative allocs", func(b *PipelineBench) { b.Runs[0].Stages[2].AllocsPerOp = -1 }, "negative"},
		{"handoff mismatch", func(b *PipelineBench) { b.Runs[0].Stage(StageObserveHandoff).NSOp = 1 }, "observe-handoff"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := pipelineBenchFixture()
			tc.mutate(b)
			err := ValidatePipelineBench(marshalBench(t, b))
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestPipelineRatchet(t *testing.T) {
	budget := DefaultPipelineRatchet()
	base := pipelineBenchFixture()

	t.Run("identical run passes", func(t *testing.T) {
		if err := ComparePipelineBench(base, pipelineBenchFixture(), budget); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("improvement passes", func(t *testing.T) {
		fresh := pipelineBenchFixture()
		fresh.Runs[0].Stage("observe").RecordsPerSec *= 3
		fresh.Runs[0].Stage("observe").AllocsPerOp /= 10
		if err := ComparePipelineBench(base, fresh, budget); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("small regression within budget passes", func(t *testing.T) {
		fresh := pipelineBenchFixture()
		fresh.Runs[0].Stage("observe").RecordsPerSec *= 0.95
		fresh.Runs[0].Stage("merge").AllocsPerOp += 50 // inside AllocSlack
		if err := ComparePipelineBench(base, fresh, budget); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("rps regression fails", func(t *testing.T) {
		fresh := pipelineBenchFixture()
		fresh.Runs[0].Stage("observe").RecordsPerSec *= 0.85
		err := ComparePipelineBench(base, fresh, budget)
		if err == nil || !strings.Contains(err.Error(), "below floor") {
			t.Fatalf("error %v, want rps floor violation", err)
		}
	})
	t.Run("alloc growth fails", func(t *testing.T) {
		fresh := pipelineBenchFixture()
		st := fresh.Runs[0].Stage("observe")
		st.AllocsPerOp = st.AllocsPerOp*2 + 1000
		err := ComparePipelineBench(base, fresh, budget)
		if err == nil || !strings.Contains(err.Error(), "allocs_per_op") {
			t.Fatalf("error %v, want alloc ceiling violation", err)
		}
	})
	t.Run("no matching width fails", func(t *testing.T) {
		fresh := pipelineBenchFixture()
		fresh.Runs[0].Workers = 16
		err := ComparePipelineBench(base, fresh, budget)
		if err == nil || !strings.Contains(err.Error(), "matched no worker widths") {
			t.Fatalf("error %v, want no-match failure", err)
		}
	})
	t.Run("missing stage in fresh run fails", func(t *testing.T) {
		fresh := pipelineBenchFixture()
		stages := fresh.Runs[0].Stages
		fresh.Runs[0].Stages = append(stages[:2:2], stages[3:]...) // drop merge
		err := ComparePipelineBench(base, fresh, budget)
		if err == nil || !strings.Contains(err.Error(), "missing from fresh run") {
			t.Fatalf("error %v, want missing-stage failure", err)
		}
	})
}
