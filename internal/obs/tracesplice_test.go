package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTracerSnapshotRebasesToEarliestStart(t *testing.T) {
	tr := NewTracerClock(fakeClock(time.Millisecond))
	// clock reads: start a=1ms, start b=2ms, end b=3ms, end a=4ms.
	a := tr.Start("dist-ingest", "partition0").SetTID(0).SetRecords(7)
	b := tr.Start("dist-encode", "encode0").Arg("bytes", 128)
	b.End()
	a.End()

	snaps := tr.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("Snapshot() = %d spans, want 2", len(snaps))
	}
	if snaps[0].StartUS != 0 {
		t.Errorf("first span start = %dus, want 0 (rebased to earliest start)", snaps[0].StartUS)
	}
	if snaps[0].DurUS != 3000 || snaps[1].DurUS != 1000 {
		t.Errorf("durations = %dus, %dus; want 3000, 1000", snaps[0].DurUS, snaps[1].DurUS)
	}
	if snaps[1].StartUS != 1000 {
		t.Errorf("second span start = %dus, want 1000", snaps[1].StartUS)
	}
	if snaps[0].Records != 7 || snaps[1].Args["bytes"] != 128 {
		t.Errorf("records/args lost in snapshot: %+v", snaps)
	}

	var nilTr *Tracer
	if nilTr.Snapshot() != nil {
		t.Error("nil tracer produced a snapshot")
	}
}

func TestTracerSnapshotUnfinishedSpanZeroDuration(t *testing.T) {
	tr := NewTracerClock(fakeClock(time.Millisecond))
	tr.Start("open", "open")
	snaps := tr.Snapshot()
	if len(snaps) != 1 || snaps[0].DurUS != 0 {
		t.Errorf("unfinished span snapshot = %+v, want one span with zero duration", snaps)
	}
}

// workerSpans builds a plausible shipped span set: a dist-ingest span per
// partition plus its encode span, exactly what a shard daemon snapshots.
func workerSpans(partition int, durUS int64) []SpanSnapshot {
	return []SpanSnapshot{
		{Stage: "dist-ingest", Name: "partition", TID: partition, StartUS: 0, DurUS: durUS,
			Records: 10, Args: map[string]int64{"partition": int64(partition)}},
		{Stage: "dist-encode", Name: "encode", TID: partition, StartUS: durUS, DurUS: durUS / 2},
	}
}

func TestWriteSplicedChromeTrace(t *testing.T) {
	procs := []ProcessTrace{
		{Process: "coordinator", PID: 1, Spans: []SpanSnapshot{
			{Stage: "dist-ingest", Name: "dist-ingest", StartUS: 0, DurUS: 9000, Records: 30},
			{Stage: "dist-merge", Name: "dist-merge", StartUS: 9000, DurUS: 500, Records: 3},
			{Stage: "finalize", Name: "finalize", StartUS: 9500, DurUS: 200},
		}},
		{Process: "worker http://127.0.0.1:1001", PID: 2, Spans: workerSpans(0, 4000)},
		{Process: "worker http://127.0.0.1:1002", PID: 3, Spans: workerSpans(1, 3000)},
	}
	var buf bytes.Buffer
	if err := WriteSplicedChromeTrace(&buf, procs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if err := ValidateSplicedChromeTrace(data, 3, "dist-ingest", "dist-merge", "finalize"); err != nil {
		t.Errorf("spliced trace fails its own validator: %v", err)
	}
	pids, err := ChromeTraceProcesses(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(pids) != 3 || pids[0] != 1 || pids[2] != 3 {
		t.Errorf("ChromeTraceProcesses = %v, want [1 2 3]", pids)
	}
	out := string(data)
	for _, want := range []string{`"ph": "M"`, `"name": "process_name"`, "coordinator", "worker http://127.0.0.1:1001"} {
		if !strings.Contains(out, want) {
			t.Errorf("spliced trace missing %s:\n%s", want, out)
		}
	}
}

// TestSplicedTraceDuplicateTIDsAcrossWorkers pins that two workers may both
// use tid 0 for their first partition: pids keep the tracks apart, so the
// validator must accept the duplicate thread ids.
func TestSplicedTraceDuplicateTIDsAcrossWorkers(t *testing.T) {
	procs := []ProcessTrace{
		{Process: "w1", PID: 2, Spans: workerSpans(0, 1000)},
		{Process: "w2", PID: 3, Spans: workerSpans(0, 2000)},
	}
	var buf bytes.Buffer
	if err := WriteSplicedChromeTrace(&buf, procs); err != nil {
		t.Fatal(err)
	}
	if err := ValidateSplicedChromeTrace(buf.Bytes(), 2, "dist-ingest"); err != nil {
		t.Errorf("duplicate TIDs across processes rejected: %v", err)
	}
}

// TestSplicedTraceOutOfOrderTimestamps pins that splicing never reorders or
// rejects span sets whose starts are not monotone — each process's offsets
// are internally consistent but the shipped order is creation order, which
// concurrent partitions interleave.
func TestSplicedTraceOutOfOrderTimestamps(t *testing.T) {
	procs := []ProcessTrace{
		{Process: "w1", PID: 2, Spans: []SpanSnapshot{
			{Stage: "dist-ingest", Name: "late", TID: 1, StartUS: 5000, DurUS: 100},
			{Stage: "dist-ingest", Name: "early", TID: 0, StartUS: 0, DurUS: 100},
		}},
	}
	var buf bytes.Buffer
	if err := WriteSplicedChromeTrace(&buf, procs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if err := ValidateSplicedChromeTrace(data, 1, "dist-ingest"); err != nil {
		t.Errorf("out-of-order starts rejected: %v", err)
	}
	// Creation order survives: "late" is emitted before "early".
	out := string(data)
	if strings.Index(out, `"late"`) > strings.Index(out, `"early"`) {
		t.Error("splicing reordered spans; shipped creation order must survive")
	}
}

func TestSplicedTraceEmptyWorkerSpanSets(t *testing.T) {
	// An empty worker leaves no track — not even its metadata event.
	procs := []ProcessTrace{
		{Process: "coordinator", PID: 1, Spans: []SpanSnapshot{
			{Stage: "dist-merge", Name: "dist-merge", StartUS: 0, DurUS: 100},
		}},
		{Process: "idle-worker", PID: 2},
	}
	var buf bytes.Buffer
	if err := WriteSplicedChromeTrace(&buf, procs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if strings.Contains(string(data), "idle-worker") {
		t.Error("empty worker left a metadata track in the trace")
	}
	if err := ValidateSplicedChromeTrace(data, 1, "dist-merge"); err != nil {
		t.Errorf("trace with one live process rejected: %v", err)
	}
	if err := ValidateSplicedChromeTrace(data, 2); err == nil {
		t.Error("validator counted the empty worker as a process")
	} else if !strings.Contains(err.Error(), "want >= 2") {
		t.Errorf("min-process error unclear: %v", err)
	}

	// All-empty splice is an error, not an empty file.
	if err := WriteSplicedChromeTrace(&bytes.Buffer{}, []ProcessTrace{{Process: "w", PID: 2}}); err == nil {
		t.Error("all-empty splice produced a trace")
	}
}

// TestValidateChromeTraceMetadataOnly pins that a trace of only "M" events
// (no spans) is invalid: the artifact must show work, not just process names.
func TestValidateChromeTraceMetadataOnly(t *testing.T) {
	doc := `{"traceEvents":[{"name":"process_name","ph":"M","ts":0,"dur":0,"pid":1,"tid":0,"args":{"name":"x"}}],"displayTimeUnit":"ms"}`
	if err := ValidateChromeTrace([]byte(doc)); err == nil {
		t.Error("metadata-only trace accepted")
	} else if !strings.Contains(err.Error(), "no span events") {
		t.Errorf("metadata-only error unclear: %v", err)
	}
}
