package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testManifest() *Manifest {
	return &Manifest{
		Tool:    "certchain-analyze",
		Seed:    1,
		Scale:   0.002,
		Workers: 4,
		Flags: map[string]string{
			"seed":    "1",
			"scale":   "0.002",
			"workers": "4",
			"trace":   "/tmp/trace.json",
		},
		Inputs: []InputDigest{
			{Path: "x509.log", SHA256: strings.Repeat("b", 64), Bytes: 20},
			{Path: "ssl.log", SHA256: strings.Repeat("a", 64), Bytes: 10},
		},
		Stages: []StageStat{
			{Stage: "observe", Spans: 1, Records: 100, WallNS: 5000},
			{Stage: "merge", Spans: 1, Records: 0, WallNS: 100},
		},
		ReportSHA256: strings.Repeat("c", 64),
		WallNS:       123456,
		Build:        BuildInfo{GoVersion: "go1.23"},
	}
}

// TestDeterministicSubsetWidthInvariant pins satellite #3's core claim: two
// manifests from equivalent runs that differ in everything operational —
// worker width, span counts, wall times, artifact-path flags, field order —
// reduce to byte-identical canonical subsets.
func TestDeterministicSubsetWidthInvariant(t *testing.T) {
	a := testManifest()

	b := testManifest()
	b.Workers = 1
	b.WallNS = 999999
	b.Flags["workers"] = "1"
	b.Flags["trace"] = "/elsewhere/trace.json"
	b.Flags["cpuprofile"] = "/tmp/cpu.out"
	b.Build = BuildInfo{GoVersion: "go1.24", VCSRevision: "deadbeef"}
	// Scramble orders and operational stage data.
	b.Inputs[0], b.Inputs[1] = b.Inputs[1], b.Inputs[0]
	b.Stages = []StageStat{
		{Stage: "merge", Spans: 3, Records: 0, WallNS: 7},
		{Stage: "observe", Spans: 9, Records: 100, WallNS: 1},
	}

	subA, err := a.DeterministicSubset()
	if err != nil {
		t.Fatal(err)
	}
	subB, err := b.DeterministicSubset()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(subA, subB) {
		t.Errorf("equivalent runs produced different subsets:\n%s\nvs\n%s", subA, subB)
	}

	// The subset must still distinguish genuinely different runs.
	c := testManifest()
	c.Seed = 2
	subC, _ := c.DeterministicSubset()
	if bytes.Equal(subA, subC) {
		t.Error("subset does not reflect the seed")
	}
	d := testManifest()
	d.Stages[0].Records = 99
	subD, _ := d.DeterministicSubset()
	if bytes.Equal(subA, subD) {
		t.Error("subset does not reflect stage record counts")
	}
}

func TestDeterministicSubsetShape(t *testing.T) {
	sub, err := testManifest().DeterministicSubset()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(sub, &doc); err != nil {
		t.Fatalf("subset is not JSON: %v", err)
	}
	for _, forbidden := range []string{"workers", "wall_ns", "build"} {
		if _, ok := doc[forbidden]; ok {
			t.Errorf("subset carries operational field %q", forbidden)
		}
	}
	if strings.Contains(string(sub), "trace.json") {
		t.Error("subset carries an operational flag value")
	}
	if !strings.Contains(string(sub), `"seed":1`) {
		t.Errorf("subset missing seed: %s", sub)
	}
	// Stages sort by name; spans and wall times are stripped.
	if !strings.Contains(string(sub), `"stages":[{"stage":"merge","records":0},{"stage":"observe","records":100}]`) {
		t.Errorf("subset stages not canonical: %s", sub)
	}
	// Inputs sort by path.
	if si, sx := strings.Index(string(sub), "ssl.log"), strings.Index(string(sub), "x509.log"); si < 0 || sx < 0 || si > sx {
		t.Errorf("subset inputs not sorted by path: %s", sub)
	}
}

func TestValidateManifestAccepts(t *testing.T) {
	data, err := testManifest().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(data, []byte("\n")) {
		t.Error("JSON() output missing trailing newline")
	}
	if err := ValidateManifest(data); err != nil {
		t.Errorf("valid manifest rejected: %v", err)
	}
}

func TestValidateManifestRejects(t *testing.T) {
	mutate := func(f func(*Manifest)) []byte {
		m := testManifest()
		f(m)
		data, err := m.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := map[string][]byte{
		"not json":       []byte("nope"),
		"missing tool":   mutate(func(m *Manifest) { m.Tool = "" }),
		"zero workers":   mutate(func(m *Manifest) { m.Workers = 0 }),
		"no build":       mutate(func(m *Manifest) { m.Build = BuildInfo{} }),
		"no stages":      mutate(func(m *Manifest) { m.Stages = nil }),
		"unnamed stage":  mutate(func(m *Manifest) { m.Stages[0].Stage = "" }),
		"spanless stage": mutate(func(m *Manifest) { m.Stages[0].Spans = 0 }),
		"negative wall":  mutate(func(m *Manifest) { m.Stages[0].WallNS = -1 }),
		"short digest":   mutate(func(m *Manifest) { m.Inputs[0].SHA256 = "abc" }),
		"non-hex digest": mutate(func(m *Manifest) { m.Inputs[0].SHA256 = strings.Repeat("z", 64) }),
		"bad report sha": mutate(func(m *Manifest) { m.ReportSHA256 = "short" }),
	}
	for name, data := range cases {
		if err := ValidateManifest(data); err == nil {
			t.Errorf("%s: accepted invalid manifest", name)
		}
	}
}

func TestDigests(t *testing.T) {
	payload := []byte("certificate chains beyond public issuers")
	d := DigestBytes("mem", payload)
	if d.Path != "mem" || d.Bytes != int64(len(payload)) {
		t.Errorf("DigestBytes metadata = %+v", d)
	}
	if d.SHA256 != SHA256Hex(payload) {
		t.Error("DigestBytes and SHA256Hex disagree")
	}

	path := filepath.Join(t.TempDir(), "input.log")
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	fd, err := DigestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fd.SHA256 != d.SHA256 || fd.Bytes != d.Bytes {
		t.Errorf("DigestFile = %+v, want digest %s over %d bytes", fd, d.SHA256, d.Bytes)
	}
	if _, err := DigestFile(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Error("DigestFile on a missing file did not error")
	}
}

func TestManifestWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.manifest.json")
	if err := testManifest().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateManifest(data); err != nil {
		t.Errorf("written manifest invalid: %v", err)
	}
}
