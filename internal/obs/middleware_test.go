package obs

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func testMux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, strings.Repeat("r", 600))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "profile")
	})
	mux.HandleFunc("/fail", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusServiceUnavailable)
	})
	mux.HandleFunc("/panic", func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	})
	return mux
}

const testRoutes = "/report,/healthz,/debug/pprof/,/fail,/panic"

func newTestMiddleware(logw io.Writer) (*Registry, http.Handler) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg).withClock(fakeClock(time.Millisecond))
	var logger *slog.Logger
	if logw != nil {
		logger = NewDeterministicLogger(logw, slog.LevelInfo)
	}
	return reg, m.Middleware(testMux(), logger, strings.Split(testRoutes, ",")...)
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestMiddlewareRecordsRouteMetrics(t *testing.T) {
	reg, h := newTestMiddleware(nil)
	get(t, h, "/report")
	get(t, h, "/report")
	get(t, h, "/healthz")
	get(t, h, "/fail")
	get(t, h, "/debug/pprof/heap")
	get(t, h, "/no/such/path")

	cases := []struct {
		labels []string
		want   float64
	}{
		{[]string{"/report", "GET", "200"}, 2},
		{[]string{"/healthz", "GET", "200"}, 1},
		{[]string{"/fail", "GET", "503"}, 1},
		{[]string{"/debug/pprof/", "GET", "200"}, 1},
		{[]string{RouteOther, "GET", "404"}, 1},
	}
	for _, c := range cases {
		if v, ok := reg.Value("certchain_http_requests_total", c.labels...); !ok || v != c.want {
			t.Errorf("requests_total%v = %v (ok=%v), want %v", c.labels, v, ok, c.want)
		}
	}
	if v, ok := reg.Value("certchain_http_request_seconds", "/report"); !ok || v != 2 {
		t.Errorf("latency histogram count for /report = %v (ok=%v), want 2", v, ok)
	}
	if v, ok := reg.Value("certchain_http_inflight_requests"); !ok || v != 0 {
		t.Errorf("inflight after quiesce = %v (ok=%v), want 0", v, ok)
	}
	// Response-size histogram saw the 600-byte report body: p100 lands in
	// the 1024 bucket, above the 256 bound.
	fam := reg.Histogram("certchain_http_response_bytes", "", DefaultSizeBuckets, "route")
	if q := fam.With("/report").Quantile(1); q <= 256 || q > 1024 {
		t.Errorf("response-bytes p100 for /report = %v, want in (256, 1024]", q)
	}
}

func TestMiddlewareAccessLogDeterministic(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		_, h := newTestMiddleware(&buf)
		get(t, h, "/report")
		get(t, h, "/fail")
		get(t, h, "/unknown")
		return buf.String()
	}
	first := run()
	want := "level=INFO msg=http route=/report method=GET code=200 bytes=600\n" +
		"level=INFO msg=http route=/fail method=GET code=503 bytes=5\n" +
		"level=INFO msg=http route=other method=GET code=404 bytes=19\n"
	if first != want {
		t.Errorf("access log:\n%s\nwant:\n%s", first, want)
	}
	if second := run(); second != first {
		t.Errorf("equal request sequences logged differently:\n%s\nvs\n%s", first, second)
	}
}

func TestMiddlewarePanicAccounted(t *testing.T) {
	var buf bytes.Buffer
	reg, h := newTestMiddleware(&buf)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("middleware swallowed the handler panic")
			}
		}()
		get(t, h, "/panic")
	}()
	if v, ok := reg.Value("certchain_http_requests_total", "/panic", "GET", "500"); !ok || v != 1 {
		t.Errorf("panicking request not counted as 500: v=%v ok=%v", v, ok)
	}
	if v, _ := reg.Value("certchain_http_inflight_requests"); v != 0 {
		t.Errorf("inflight leaked after panic: %v", v)
	}
	if !strings.Contains(buf.String(), "route=/panic method=GET code=500") {
		t.Errorf("panicking request missing from access log: %q", buf.String())
	}
}

// TestMiddlewareConcurrentScrapes drives traffic and /metrics scrapes
// concurrently; every scrape must pass ValidateExposition. Run under -race
// this also pins that the middleware and the renderer share the registry
// safely.
func TestMiddlewareConcurrentScrapes(t *testing.T) {
	reg, h := newTestMiddleware(nil)
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/", h)

	const loops = 50
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			paths := []string{"/report", "/healthz", "/fail", "/nope"}
			for i := 0; i < loops; i++ {
				rec := httptest.NewRecorder()
				mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, paths[(g+i)%len(paths)], nil))
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < loops; i++ {
			rec := httptest.NewRecorder()
			mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
			if rec.Code != http.StatusOK {
				errc <- fmt.Errorf("scrape %d: status %d", i, rec.Code)
				return
			}
			if err := ValidateExposition(rec.Body.Bytes()); err != nil {
				errc <- fmt.Errorf("scrape %d: %w", i, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if v, _ := reg.Value("certchain_http_inflight_requests"); v != 0 {
		t.Errorf("inflight after concurrent run = %v, want 0", v)
	}
}

func TestParseRoutesMethodAndPrefix(t *testing.T) {
	rps := parseRoutes([]string{"GET /status", "/partial", "/debug/pprof/", "POST /assign", "/"})
	req := func(method, path string) *http.Request {
		return httptest.NewRequest(method, path, nil)
	}
	cases := []struct {
		method, path, want string
	}{
		{"GET", "/status", "GET /status"},
		{"POST", "/status", RouteOther},
		{"POST", "/assign", "POST /assign"},
		{"GET", "/partial", "/partial"},
		{"GET", "/debug/pprof/heap", "/debug/pprof/"},
		{"GET", "/", "/"},
		{"GET", "/elsewhere", RouteOther},
	}
	for _, c := range cases {
		if got := resolveRoute(rps, req(c.method, c.path)); got != c.want {
			t.Errorf("resolveRoute(%s %s) = %q, want %q", c.method, c.path, got, c.want)
		}
	}
}
