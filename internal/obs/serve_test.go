package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r, "test")
	r.Counter("hits_total", "Hits.").With().Add(5)

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "hits_total 5") {
		t.Errorf("missing sample:\n%s", body)
	}
	if !strings.Contains(body, `certchain_build_info{component="test"`) {
		t.Errorf("missing build info series:\n%s", body)
	}
	if err := ValidateExposition(rec.Body.Bytes()); err != nil {
		t.Errorf("handler output fails conformance: %v", err)
	}
}

func TestHealthzHandler(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r, "test")
	r.Gauge("certchain_snapshot_age_seconds", "Age.").With().Set(-1)

	h := HealthzHandler(r,
		map[string]string{"snapshot_age_seconds": "certchain_snapshot_age_seconds", "absent": "no_such_family"},
		func() map[string]any { return map[string]any{"windows": 3} })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))

	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("healthz is not JSON: %v\n%s", err, rec.Body.String())
	}
	if doc["status"] != "ok" {
		t.Errorf("status = %v", doc["status"])
	}
	if rev, _ := doc["build_revision"].(string); rev == "" {
		t.Error("build_revision empty; health must always report one")
	}
	if doc["snapshot_age_seconds"] != float64(-1) {
		t.Errorf("snapshot_age_seconds = %v, want -1", doc["snapshot_age_seconds"])
	}
	if _, ok := doc["absent"]; ok {
		t.Error("absent metric projected into healthz")
	}
	if doc["windows"] != float64(3) {
		t.Errorf("extra field windows = %v, want 3", doc["windows"])
	}
}

// TestHealthzWithoutBuildInfo: with no build-info series the handler falls
// back to the process build, whose Revision() is never empty.
func TestHealthzWithoutBuildInfo(t *testing.T) {
	r := NewRegistry()
	rec := httptest.NewRecorder()
	HealthzHandler(r, nil, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if rev, _ := doc["build_revision"].(string); rev == "" {
		t.Error("fallback build_revision empty")
	}
}

func TestBuildInfo(t *testing.T) {
	b := Build()
	if b.GoVersion == "" {
		t.Error("Build().GoVersion empty in a test binary")
	}
	if (BuildInfo{}).Revision() != "unknown" {
		t.Error("empty BuildInfo.Revision() != unknown")
	}
	if (BuildInfo{VCSRevision: "abc"}).Revision() != "abc" {
		t.Error("Revision() does not pass through a real revision")
	}
}
