package obs

import (
	"fmt"
	"sort"
)

// Registry snapshot codec: the distributed analysis ships each worker's
// metric shard to the coordinator, which folds them through Registry.Merge —
// the same commutative contract every other accumulator rides. The codec is
// canonical (families sorted by name, series sorted by label values), so
// equal registries serialize byte-identically and sealed snapshots digest
// stably.

// RegistrySnapshot is the serialized form of a Registry.
type RegistrySnapshot struct {
	Families []FamilySnapshot `json:"families,omitempty"`
}

// FamilySnapshot is one serialized metric family.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help,omitempty"`
	Kind    int              `json:"kind"`
	Labels  []string         `json:"labels,omitempty"`
	Buckets []float64        `json:"buckets,omitempty"`
	Series  []SeriesSnapshot `json:"series,omitempty"`
}

// SeriesSnapshot is one serialized time series. Value carries the
// counter/gauge value; histogram series carry the per-bucket counts (the
// implicit +Inf bucket last), sum, and count instead.
type SeriesSnapshot struct {
	Values       []string `json:"values,omitempty"`
	Value        float64  `json:"value,omitempty"`
	BucketCounts []uint64 `json:"bucket_counts,omitempty"`
	Sum          float64  `json:"sum,omitempty"`
	Count        uint64   `json:"count,omitempty"`
}

// Snapshot serializes the registry.
func (r *Registry) Snapshot() *RegistrySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	s := &RegistrySnapshot{}
	for _, name := range names {
		f := r.families[name]
		fs := FamilySnapshot{
			Name:    f.name,
			Help:    f.help,
			Kind:    int(f.kind),
			Labels:  append([]string(nil), f.labels...),
			Buckets: append([]float64(nil), f.buckets...),
		}
		keys := make([]string, 0, len(f.series))
		for key := range f.series {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			se := f.series[key]
			fs.Series = append(fs.Series, SeriesSnapshot{
				Values:       append([]string(nil), se.values...),
				Value:        se.val,
				BucketCounts: append([]uint64(nil), se.bucketCounts...),
				Sum:          se.sum,
				Count:        se.count,
			})
		}
		s.Families = append(s.Families, fs)
	}
	return s
}

// RegistryFromSnapshot rebuilds a registry. Malformed snapshots (unknown
// kinds, label-arity mismatches, bucket-count mismatches) return errors —
// the codec now parses network input, so it must degrade to an error, never
// a panic.
func RegistryFromSnapshot(s *RegistrySnapshot) (*Registry, error) {
	r := NewRegistry()
	if s == nil {
		return r, nil
	}
	for _, fs := range s.Families {
		if fs.Name == "" {
			return nil, fmt.Errorf("obs: registry snapshot family with empty name")
		}
		var f *Family
		switch Kind(fs.Kind) {
		case KindCounter:
			f = r.Counter(fs.Name, fs.Help, fs.Labels...)
		case KindGauge:
			f = r.Gauge(fs.Name, fs.Help, fs.Labels...)
		case KindHistogram:
			if len(fs.Buckets) == 0 {
				return nil, fmt.Errorf("obs: registry snapshot histogram %q has no buckets", fs.Name)
			}
			f = r.Histogram(fs.Name, fs.Help, fs.Buckets, fs.Labels...)
		default:
			return nil, fmt.Errorf("obs: registry snapshot family %q has unknown kind %d", fs.Name, fs.Kind)
		}
		for _, ss := range fs.Series {
			if len(ss.Values) != len(fs.Labels) {
				return nil, fmt.Errorf("obs: registry snapshot %q series has %d label values, want %d",
					fs.Name, len(ss.Values), len(fs.Labels))
			}
			se := f.With(ss.Values...)
			r.mu.Lock()
			se.val = ss.Value
			se.sum = ss.Sum
			se.count = ss.Count
			if Kind(fs.Kind) == KindHistogram {
				if len(ss.BucketCounts) != len(fs.Buckets)+1 {
					r.mu.Unlock()
					return nil, fmt.Errorf("obs: registry snapshot %q series has %d bucket counts, want %d",
						fs.Name, len(ss.BucketCounts), len(fs.Buckets)+1)
				}
				copy(se.bucketCounts, ss.BucketCounts)
			}
			r.mu.Unlock()
		}
	}
	return r, nil
}
