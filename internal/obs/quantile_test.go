package obs

import (
	"math"
	"testing"
)

func TestSeriesQuantile(t *testing.T) {
	reg := NewRegistry()
	s := reg.Histogram("q_seconds", "q", []float64{0.1, 1, 10}).With()
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		s.Observe(v)
	}
	cases := []struct {
		q, want float64
	}{
		{0.25, 0.1},   // target lands exactly on the first bucket's bound
		{0.5, 1},      // exactly on the second bucket's bound
		{0.375, 0.55}, // halfway through bucket (0.1, 1]
		{1, 10},       // +Inf observation clamps to the largest finite bound
		{0, 0},        // q=0 interpolates to the first bucket's lower edge
		{-1, 0},       // clamped into [0, 1]
		{2, 10},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestSeriesQuantileDegenerate(t *testing.T) {
	reg := NewRegistry()
	if got := reg.Histogram("empty_seconds", "e", []float64{1, 2}).With().Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile = %v, want 0", got)
	}
	c := reg.Counter("hits_total", "h").With()
	c.Add(10)
	if got := c.Quantile(0.5); got != 0 {
		t.Errorf("counter Quantile = %v, want 0", got)
	}
	// Every observation above the largest bound: clamp, never +Inf or NaN.
	s := reg.Histogram("hot_seconds", "h", []float64{0.1, 1}).With()
	s.Observe(99)
	if got := s.Quantile(0.5); got != 1 {
		t.Errorf("all-overflow Quantile = %v, want clamp to 1", got)
	}
}
