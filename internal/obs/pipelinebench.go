package obs

import (
	"encoding/json"
	"fmt"
)

// PipelineBench is the BENCH_pipeline.json schema: the per-stage pipeline
// baseline cmd/pipeline-bench writes and cmd/bench-ratchet enforces. Stage
// wall times come from the pipeline's own spans; allocation counts from a
// GC-fenced sequential pass. The observe span encloses the observe-shard
// worker spans, so those two rows overlap by construction — the derived
// observe-handoff row (observe minus the shard sum) restores additivity:
// observe-handoff + observe-shard + merge + finalize covers the run without
// double-counting.
type PipelineBench struct {
	Tool         string             `json:"tool"` // "pipeline-bench"
	Seed         int64              `json:"seed"`
	Scale        float64            `json:"scale"`
	Iters        int                `json:"iters"`
	GOMAXPROCS   int                `json:"gomaxprocs"`
	Observations int                `json:"observations"`
	Build        BuildInfo          `json:"build"`
	Runs         []PipelineBenchRun `json:"runs"`
}

// PipelineBenchRun is one worker width's best iteration.
type PipelineBenchRun struct {
	Workers       int                  `json:"workers"`
	TotalNSOp     int64                `json:"total_ns_op"`
	RecordsPerSec float64              `json:"records_per_sec"`
	Stages        []PipelineBenchStage `json:"stages"`
}

// PipelineBenchStage is one stage of that run.
type PipelineBenchStage struct {
	Stage string `json:"stage"`
	// NSOp is the stage's wall time for one full pipeline run.
	NSOp int64 `json:"ns_op"`
	// RecordsPerSec is the stage's input throughput; 0 for stages that
	// reduce state rather than consume records (merge, finalize).
	RecordsPerSec float64 `json:"records_per_sec"`
	Records       int64   `json:"records"`
	// AllocsPerOp / AllocBytesPerOp charge the stage its steady-state heap
	// allocations for one full pipeline run, measured by a warmed
	// single-threaded pass. Stages with no sequential counterpart
	// (observe-shard, observe-handoff) report zero.
	AllocsPerOp     int64 `json:"allocs_per_op"`
	AllocBytesPerOp int64 `json:"alloc_bytes_per_op"`
}

// StageObserveHandoff is the derived stage name: the slice of the observe
// span not spent inside any observe-shard span (fan-out/fan-in overhead).
const StageObserveHandoff = "observe-handoff"

// Run returns the run at the given worker width, or nil.
func (b *PipelineBench) Run(workers int) *PipelineBenchRun {
	for i := range b.Runs {
		if b.Runs[i].Workers == workers {
			return &b.Runs[i]
		}
	}
	return nil
}

// Stage returns the named stage of the run, or nil.
func (r *PipelineBenchRun) Stage(name string) *PipelineBenchStage {
	for i := range r.Stages {
		if r.Stages[i].Stage == name {
			return &r.Stages[i]
		}
	}
	return nil
}

// ValidatePipelineBench is the schema gate for a BENCH_pipeline.json
// document: required fields present, counts consistent, stages unique, the
// observe stage present with throughput, and — when the derived
// observe-handoff row exists — exactly the clamped difference between the
// observe span and the observe-shard sum.
func ValidatePipelineBench(data []byte) error {
	var b PipelineBench
	if err := json.Unmarshal(data, &b); err != nil {
		return fmt.Errorf("obs: pipeline-bench JSON: %w", err)
	}
	if b.Tool != "pipeline-bench" {
		return fmt.Errorf("obs: pipeline-bench tool %q, want \"pipeline-bench\"", b.Tool)
	}
	if b.Iters < 1 {
		return fmt.Errorf("obs: pipeline-bench iters %d < 1", b.Iters)
	}
	if b.GOMAXPROCS < 1 {
		return fmt.Errorf("obs: pipeline-bench gomaxprocs %d < 1", b.GOMAXPROCS)
	}
	if b.Observations <= 0 {
		return fmt.Errorf("obs: pipeline-bench observations %d <= 0", b.Observations)
	}
	if b.Build.GoVersion == "" {
		return fmt.Errorf("obs: pipeline-bench missing build.go_version")
	}
	if len(b.Runs) == 0 {
		return fmt.Errorf("obs: pipeline-bench has no runs")
	}
	widths := make(map[int]bool)
	for _, r := range b.Runs {
		if r.Workers < 1 {
			return fmt.Errorf("obs: pipeline-bench run workers %d < 1", r.Workers)
		}
		if widths[r.Workers] {
			return fmt.Errorf("obs: pipeline-bench width %d duplicated", r.Workers)
		}
		widths[r.Workers] = true
		if r.TotalNSOp <= 0 {
			return fmt.Errorf("obs: pipeline-bench width %d total_ns_op %d <= 0", r.Workers, r.TotalNSOp)
		}
		if r.RecordsPerSec <= 0 {
			return fmt.Errorf("obs: pipeline-bench width %d records_per_sec %g <= 0", r.Workers, r.RecordsPerSec)
		}
		if len(r.Stages) == 0 {
			return fmt.Errorf("obs: pipeline-bench width %d has no stages", r.Workers)
		}
		seen := make(map[string]bool)
		var shardNS int64
		for _, st := range r.Stages {
			if st.Stage == "" {
				return fmt.Errorf("obs: pipeline-bench width %d stage with empty name", r.Workers)
			}
			if seen[st.Stage] {
				return fmt.Errorf("obs: pipeline-bench width %d stage %q duplicated", r.Workers, st.Stage)
			}
			seen[st.Stage] = true
			if st.NSOp < 0 || st.Records < 0 || st.AllocsPerOp < 0 || st.AllocBytesPerOp < 0 {
				return fmt.Errorf("obs: pipeline-bench width %d stage %q has a negative count", r.Workers, st.Stage)
			}
			if st.RecordsPerSec < 0 {
				return fmt.Errorf("obs: pipeline-bench width %d stage %q records_per_sec %g < 0", r.Workers, st.Stage, st.RecordsPerSec)
			}
			if st.Stage == "observe-shard" {
				shardNS = st.NSOp
			}
		}
		observe := r.Stage("observe")
		if observe == nil {
			return fmt.Errorf("obs: pipeline-bench width %d missing observe stage", r.Workers)
		}
		if observe.RecordsPerSec <= 0 {
			return fmt.Errorf("obs: pipeline-bench width %d observe records_per_sec %g <= 0", r.Workers, observe.RecordsPerSec)
		}
		if h := r.Stage(StageObserveHandoff); h != nil {
			want := observe.NSOp - shardNS
			if want < 0 {
				want = 0
			}
			if h.NSOp != want {
				return fmt.Errorf("obs: pipeline-bench width %d observe-handoff %d ns, want observe - observe-shard = %d ns",
					r.Workers, h.NSOp, want)
			}
		}
	}
	return nil
}

// PipelineRatchet is the regression budget ComparePipelineBench enforces.
type PipelineRatchet struct {
	// MaxRPSRegression is the largest tolerated fractional drop in the
	// observe stage's records_per_sec (0.10 = a fresh run may be up to 10%
	// slower than the committed baseline).
	MaxRPSRegression float64
	// MaxAllocGrowth is the largest tolerated fractional growth in any
	// stage's allocs_per_op, on top of AllocSlack absolute allocations of
	// headroom for runtime jitter (map growth, timer internals).
	MaxAllocGrowth float64
	AllocSlack     int64
}

// DefaultPipelineRatchet is the budget `make bench-ratchet` and CI use.
func DefaultPipelineRatchet() PipelineRatchet {
	return PipelineRatchet{MaxRPSRegression: 0.10, MaxAllocGrowth: 0.02, AllocSlack: 64}
}

// ComparePipelineBench ratchets a fresh pipeline-bench run against the
// committed baseline: for every worker width present in both documents, the
// fresh observe stage may not lose more than MaxRPSRegression of the
// baseline's records/sec, and no stage's allocs_per_op may grow beyond the
// budget. Improvements always pass — the ratchet only tightens.
func ComparePipelineBench(baseline, fresh *PipelineBench, budget PipelineRatchet) error {
	matched := 0
	for _, br := range baseline.Runs {
		fr := fresh.Run(br.Workers)
		if fr == nil {
			continue
		}
		matched++
		bObs, fObs := br.Stage("observe"), fr.Stage("observe")
		if bObs == nil || fObs == nil {
			return fmt.Errorf("obs: ratchet width %d: observe stage missing", br.Workers)
		}
		floor := bObs.RecordsPerSec * (1 - budget.MaxRPSRegression)
		if fObs.RecordsPerSec < floor {
			return fmt.Errorf("obs: ratchet width %d: observe %.0f records/sec below floor %.0f (baseline %.0f, budget %.0f%%)",
				br.Workers, fObs.RecordsPerSec, floor, bObs.RecordsPerSec, budget.MaxRPSRegression*100)
		}
		for _, bst := range br.Stages {
			if bst.AllocsPerOp == 0 {
				continue
			}
			fst := fr.Stage(bst.Stage)
			if fst == nil {
				return fmt.Errorf("obs: ratchet width %d: stage %q missing from fresh run", br.Workers, bst.Stage)
			}
			ceil := bst.AllocsPerOp + int64(float64(bst.AllocsPerOp)*budget.MaxAllocGrowth) + budget.AllocSlack
			if fst.AllocsPerOp > ceil {
				return fmt.Errorf("obs: ratchet width %d: stage %q allocs_per_op %d above ceiling %d (baseline %d)",
					br.Workers, bst.Stage, fst.AllocsPerOp, ceil, bst.AllocsPerOp)
			}
		}
	}
	if matched == 0 {
		return fmt.Errorf("obs: ratchet matched no worker widths between baseline and fresh run")
	}
	return nil
}
