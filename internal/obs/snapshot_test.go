package obs

import (
	"encoding/json"
	"testing"
)

func populatedRegistry() *Registry {
	r := NewRegistry()
	r.Counter("jobs_total", "Jobs.", "state").With("done").Add(3)
	r.Counter("jobs_total", "Jobs.", "state").With("failed").Add(1)
	r.Gauge("depth", "Queue depth.").With().Set(7)
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1, 10}, "op")
	h.With("fetch").Observe(0.05)
	h.With("fetch").Observe(2.5)
	h.With("merge").Observe(0.5)
	return r
}

func TestRegistrySnapshotRoundTrip(t *testing.T) {
	r := populatedRegistry()
	want := r.Text()

	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	again, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Fatal("snapshot of unchanged registry is not byte-stable")
	}

	var s RegistrySnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	restored, err := RegistryFromSnapshot(&s)
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.Text(); got != want {
		t.Fatalf("restored registry renders differently:\n--- want\n%s\n--- got\n%s", want, got)
	}
}

func TestRegistrySnapshotMergesLikeLiveRegistries(t *testing.T) {
	// Restored shards must merge exactly as the live registries would: the
	// coordinator only ever sees the serialized form.
	a, b := populatedRegistry(), NewRegistry()
	b.Counter("jobs_total", "Jobs.", "state").With("done").Add(5)
	b.Histogram("latency_seconds", "Latency.", []float64{0.1, 1, 10}, "op").With("fetch").Observe(0.2)

	direct := NewRegistry()
	if err := direct.Merge(a); err != nil {
		t.Fatal(err)
	}
	if err := direct.Merge(b); err != nil {
		t.Fatal(err)
	}

	viaWire := NewRegistry()
	for _, src := range []*Registry{a, b} {
		data, err := json.Marshal(src.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		var s RegistrySnapshot
		if err := json.Unmarshal(data, &s); err != nil {
			t.Fatal(err)
		}
		restored, err := RegistryFromSnapshot(&s)
		if err != nil {
			t.Fatal(err)
		}
		if err := viaWire.Merge(restored); err != nil {
			t.Fatal(err)
		}
	}
	if direct.Text() != viaWire.Text() {
		t.Fatalf("wire merge differs from direct merge:\n--- direct\n%s\n--- wire\n%s", direct.Text(), viaWire.Text())
	}
}

func TestRegistryFromSnapshotRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		s    *RegistrySnapshot
	}{
		{"empty family name", &RegistrySnapshot{Families: []FamilySnapshot{{Name: ""}}}},
		{"unknown kind", &RegistrySnapshot{Families: []FamilySnapshot{{Name: "x", Kind: 9}}}},
		{"histogram without buckets", &RegistrySnapshot{Families: []FamilySnapshot{{Name: "x", Kind: int(KindHistogram)}}}},
		{"label arity mismatch", &RegistrySnapshot{Families: []FamilySnapshot{{
			Name: "x", Kind: int(KindCounter), Labels: []string{"a"},
			Series: []SeriesSnapshot{{Values: []string{"1", "2"}}},
		}}}},
		{"bucket count mismatch", &RegistrySnapshot{Families: []FamilySnapshot{{
			Name: "x", Kind: int(KindHistogram), Buckets: []float64{1},
			Series: []SeriesSnapshot{{BucketCounts: []uint64{1}}},
		}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := RegistryFromSnapshot(tc.s); err == nil {
				t.Fatal("malformed snapshot restored without error")
			}
		})
	}
	if r, err := RegistryFromSnapshot(nil); err != nil || r == nil {
		t.Fatalf("nil snapshot: %v", err)
	}
}
