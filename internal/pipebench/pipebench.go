// Package pipebench is the pipeline benchmark harness behind
// cmd/pipeline-bench and cmd/bench-ratchet: it measures the sharded analysis
// pipeline stage by stage using the pipeline's own obs spans, charges each
// stage its steady-state heap allocations with a warmed GC-fenced sequential
// pass, and emits the obs.PipelineBench document the CI ratchet enforces.
package pipebench

import (
	"fmt"
	"runtime"

	"certchains/internal/analysis"
	"certchains/internal/campus"
	"certchains/internal/obs"
)

// Run generates the benchmark scenario and measures it at worker widths 1
// and GOMAXPROCS, iters iterations each, keeping each width's best
// (least-noise) iteration — the sample `go test -bench` effectively reports.
func Run(seed int64, scale float64, iters int) (*obs.PipelineBench, error) {
	cfg := campus.DefaultConfig()
	cfg.Seed = seed
	cfg.Scale = scale
	scenario, err := campus.Generate(cfg)
	if err != nil {
		return nil, err
	}

	widths := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		widths = append(widths, n)
	}

	file := &obs.PipelineBench{
		Tool:         "pipeline-bench",
		Seed:         seed,
		Scale:        scale,
		Iters:        iters,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Observations: len(scenario.Observations),
		Build:        obs.Build(),
	}
	allocs := measureAllocs(scenario)
	for _, w := range widths {
		wr, err := benchWidth(scenario, w, iters)
		if err != nil {
			return nil, err
		}
		for i := range wr.Stages {
			if st, ok := allocs[wr.Stages[i].Stage]; ok {
				wr.Stages[i].AllocsPerOp = st.allocs
				wr.Stages[i].AllocBytesPerOp = st.bytes
			}
		}
		file.Runs = append(file.Runs, wr)
	}
	return file, nil
}

type allocStat struct{ allocs, bytes int64 }

// measureAllocs runs the sequential Accumulator API — Observe over each
// half, Merge of the halves (seq-rebased like the real merge path),
// Finalize — and charges each phase its GC-fenced runtime.MemStats delta.
// The unit is allocations per full stage execution, the same "op" ns_op
// uses. A full warm-up pass runs first so one-time cache fills (interned
// strings, per-Meta DN key memos) are not charged to the measured pass: the
// committed baseline tracks the steady state the ratchet protects.
// Allocation counts are deterministic under a single goroutine, so one
// measured pass suffices; wall time stays with the traced iterations.
func measureAllocs(scenario *campus.Scenario) map[string]allocStat {
	half := len(scenario.Observations) / 2
	pass := func(p *analysis.Pipeline, charge func(stage string), snap func()) {
		a, b := p.NewAccumulator(), p.NewAccumulator()
		snap()
		for _, o := range scenario.Observations[:half] {
			a.Observe(o)
		}
		for _, o := range scenario.Observations[half:] {
			b.Observe(o)
		}
		charge("observe")

		snap()
		b.OffsetSeq(a.Observations())
		a.Merge(b)
		charge("merge")

		snap()
		a.Finalize()
		charge("finalize")
	}

	// Warm-up: full pass, nothing charged.
	pass(analysis.FromScenario(scenario), func(string) {}, func() {})

	stats := make(map[string]allocStat)
	var m0, m1 runtime.MemStats
	snap := func() {
		runtime.GC()
		runtime.ReadMemStats(&m0)
	}
	charge := func(stage string) {
		runtime.ReadMemStats(&m1)
		stats[stage] = allocStat{
			allocs: int64(m1.Mallocs - m0.Mallocs),
			bytes:  int64(m1.TotalAlloc - m0.TotalAlloc),
		}
	}
	pass(analysis.FromScenario(scenario), charge, snap)
	return stats
}

// benchWidth runs the pipeline iters times at one width and keeps the
// iteration with the smallest end-to-end wall time. The tracer's observe
// span encloses the observe-shard worker spans (even at workers=1), so
// summing raw stage rows would double-count the observe phase; the derived
// observe-handoff row — observe minus the shard sum, clamped at zero —
// carries the fan-out/fan-in overhead and restores additivity.
func benchWidth(scenario *campus.Scenario, workers, iters int) (obs.PipelineBenchRun, error) {
	best := obs.PipelineBenchRun{Workers: workers}
	for i := 0; i < iters; i++ {
		tracer := obs.NewTracer()
		p := analysis.FromScenario(scenario)
		p.Tracer = tracer
		r := p.RunParallel(scenario.Observations, workers)
		if r == nil {
			return best, fmt.Errorf("pipeline returned no report")
		}
		total := tracer.WallNS()
		if total <= 0 {
			return best, fmt.Errorf("tracer recorded no wall time")
		}
		if best.TotalNSOp != 0 && total >= best.TotalNSOp {
			continue
		}
		best.TotalNSOp = total
		best.RecordsPerSec = float64(len(scenario.Observations)) / (float64(total) / 1e9)
		best.Stages = best.Stages[:0]
		var observeNS, shardNS int64
		for _, st := range tracer.Stages() {
			sr := obs.PipelineBenchStage{Stage: st.Stage, NSOp: st.WallNS, Records: st.Records}
			if st.Records > 0 && st.WallNS > 0 {
				sr.RecordsPerSec = float64(st.Records) / (float64(st.WallNS) / 1e9)
			}
			switch st.Stage {
			case "observe":
				observeNS = st.WallNS
			case "observe-shard":
				shardNS = st.WallNS
			}
			best.Stages = append(best.Stages, sr)
		}
		handoff := observeNS - shardNS
		if handoff < 0 {
			handoff = 0
		}
		best.Stages = append(best.Stages, obs.PipelineBenchStage{
			Stage: obs.StageObserveHandoff,
			NSOp:  handoff,
		})
	}
	return best, nil
}
