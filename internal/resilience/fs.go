package resilience

import (
	"io"
	"io/fs"
	"os"
)

// The tailer-facing filesystem seam. zeek.Tailer (and anything else that
// follows growing files) opens and stats files through this interface so a
// fault plan can sit between the code and the kernel. The real
// implementation is OS; FaultFS layers a plan's open/stat/read faults on
// top of any inner FS.

// File is the subset of *os.File the tailer needs.
type File interface {
	io.Reader
	io.Seeker
	io.Closer
	// Stat mirrors os.File.Stat; the FileInfos it returns must be
	// os.SameFile-comparable with the FS-level Stat's.
	Stat() (fs.FileInfo, error)
}

// FS opens and stats named files. Implementations must return FileInfos
// compatible with os.SameFile (rotation detection depends on it).
type FS interface {
	Open(name string) (File, error)
	Stat(name string) (fs.FileInfo, error)
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Open(name string) (File, error)        { return os.Open(name) }
func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// FaultFS layers a plan's faults over an inner FS. Operations are named
// "<op>.open", "<op>.stat", and "<op>.read", each with its own attempt
// counter, so plans can target (say) the third read of the ssl tail
// specifically. Read faults never consume bytes, so a retried poll resumes
// exactly where the failed one stopped.
type FaultFS struct {
	plan  *Plan
	op    string
	inner FS
}

// FS wraps inner (nil defaults to OS) with the plan's faults under the
// given operation prefix.
func (p *Plan) FS(op string, inner FS) FS {
	if inner == nil {
		inner = OS
	}
	if p == nil {
		return inner
	}
	return &FaultFS{plan: p, op: op, inner: inner}
}

// Open implements FS.
func (f *FaultFS) Open(name string) (File, error) {
	if fault, ok := f.plan.next(f.op + ".open"); ok {
		switch fault.Kind {
		case OpenErr:
			return nil, injectedErr(fault, fs.ErrPermission)
		default:
			return nil, injectedErr(fault, fs.ErrPermission)
		}
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{plan: f.plan, op: f.op, f: file}, nil
}

// Stat implements FS.
func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	if fault, ok := f.plan.next(f.op + ".stat"); ok {
		return nil, injectedErr(fault, fs.ErrPermission)
	}
	return f.inner.Stat(name)
}

// faultFile routes reads through the plan; Seek, Close, and Stat pass
// through (their failure modes are covered by the stat/open seams).
type faultFile struct {
	plan *Plan
	op   string
	f    File
}

func (ff *faultFile) Read(b []byte) (int, error) {
	fault, ok := ff.plan.next(ff.op + ".read")
	if !ok {
		return ff.f.Read(b)
	}
	switch fault.Kind {
	case ReadErr:
		return 0, injectedErr(fault, io.ErrUnexpectedEOF)
	case ShortRead:
		n := fault.N
		if n <= 0 {
			n = 1
		}
		if n < len(b) {
			b = b[:n]
		}
		return ff.f.Read(b)
	case SlowRead:
		sleepFor(fault.Delay)
		return ff.f.Read(b)
	default:
		return 0, injectedErr(fault, io.ErrUnexpectedEOF)
	}
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) { return ff.f.Seek(offset, whence) }
func (ff *faultFile) Close() error                                 { return ff.f.Close() }
func (ff *faultFile) Stat() (fs.FileInfo, error)                   { return ff.f.Stat() }
