// Package resilience is the repository's I/O fault-tolerance layer: a
// seeded, deterministic fault injector for tests and a shared retry policy
// for production code.
//
// The paper's retrospective scan (§5/§7) and the campus capture both live
// with flaky reality — unreachable servers, mid-handshake resets,
// rotated and truncated logs. Every network and file I/O path in this
// repository (the scanner sweep, the ctlog HTTP client, the middlebox
// upstream dial, the ingest tailer and snapshot writer) routes through this
// package's retry.Policy, and every one of those paths can be exercised
// under an injected fault Plan that deterministically misbehaves at chosen
// (operation, attempt) points while recording each injected fault for
// assertion.
//
// The chaos-equivalence contract (DESIGN.md §12): for any fault plan in
// which every operation eventually succeeds, the final analysis report and
// the manifest's DeterministicSubset are byte-identical to the fault-free
// run — faults may only change retry counters and spans, never results.
package resilience

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// DialRefused makes a dial fail with a connection-refused error.
	DialRefused Kind = iota
	// ConnReset makes a dial succeed but the returned connection reset on
	// first read — the mid-handshake reset case (the TLS client writes its
	// ClientHello, then the read of the ServerHello fails).
	ConnReset
	// ReadErr makes one read call fail without consuming any bytes.
	ReadErr
	// ShortRead caps one read call at N bytes (a partial read; not an
	// error — exercises callers' short-read handling).
	ShortRead
	// SlowRead delays one read call by Delay before reading normally.
	SlowRead
	// WriteErr makes one write call fail without writing any bytes.
	WriteErr
	// HTTPStatus synthesizes an HTTP response with status Status (the
	// 5xx-then-ok case) without contacting the server.
	HTTPStatus
	// HTTPTimeout makes a round trip fail with a timeout error without
	// contacting the server.
	HTTPTimeout
	// OpenErr makes a file open fail.
	OpenErr
	// StatErr makes a file stat fail.
	StatErr
	// External records a fault the test harness performed out of band (a
	// real file truncation or rotation race scripted by the test); the
	// injector only books it so fault counts stay assertable.
	External
)

var kindNames = map[Kind]string{
	DialRefused: "dial-refused",
	ConnReset:   "conn-reset",
	ReadErr:     "read-err",
	ShortRead:   "short-read",
	SlowRead:    "slow-read",
	WriteErr:    "write-err",
	HTTPStatus:  "http-status",
	HTTPTimeout: "http-timeout",
	OpenErr:     "open-err",
	StatErr:     "stat-err",
	External:    "external",
}

// String returns the metric-label form of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind-%d", int(k))
}

// Fails reports whether a fault of this kind surfaces as an error to the
// wrapped operation (ShortRead, SlowRead, and External degrade but do not
// fail). Eventually-successful chaos plans assert that the retry counters
// equal the number of failing faults injected.
func (k Kind) Fails() bool {
	switch k {
	case ShortRead, SlowRead, External:
		return false
	}
	return true
}

// Fault is one planned misbehaviour: on the Attempt-th invocation of
// operation Op, inject Kind.
type Fault struct {
	// Op is the wrapped operation's name (e.g. "scan.dial", "tail.ssl.read").
	Op string
	// Attempt is the 1-based invocation index the fault fires on.
	Attempt int
	// Kind selects the misbehaviour.
	Kind Kind
	// Status is the synthesized response code for HTTPStatus faults.
	Status int
	// Delay is the injected latency for SlowRead faults.
	Delay time.Duration
	// N caps the byte count for ShortRead faults.
	N int
	// Err overrides the injected error (nil picks a kind-appropriate one).
	Err error
}

func (f Fault) String() string {
	return fmt.Sprintf("%s@%d:%s", f.Op, f.Attempt, f.Kind)
}

type faultKey struct {
	op      string
	attempt int
}

// Plan is a deterministic fault schedule keyed by (operation, attempt).
// Wrap an I/O seam with one of the Dial / RoundTripper / Reader / Writer /
// FS methods; each invocation of the wrapped operation increments that
// operation's attempt counter, and when (op, attempt) matches a planned
// fault, the fault is injected and recorded. All methods are safe for
// concurrent use; per-operation attempt order is the injection order.
//
// A nil *Plan is valid and injects nothing, so production constructors can
// thread an optional plan without branching.
type Plan struct {
	mu       sync.Mutex
	faults   map[faultKey]Fault
	attempts map[string]int
	injected []Fault

	// metrics, when set, books each injected fault into
	// resilience_faults_injected_total{op,kind}.
	metrics *Metrics
}

// NewPlan returns a plan holding the given faults.
func NewPlan(faults ...Fault) *Plan {
	p := &Plan{
		faults:   make(map[faultKey]Fault),
		attempts: make(map[string]int),
	}
	for _, f := range faults {
		p.Add(f)
	}
	return p
}

// Add schedules one fault. Adding a second fault for the same (op, attempt)
// replaces the first.
func (p *Plan) Add(f Fault) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.faults[faultKey{f.Op, f.Attempt}] = f
}

// SetMetrics books injected faults into reg's
// resilience_faults_injected_total{op,kind} counter, so chaos suites can
// assert the registry agrees with the injector's own record.
func (p *Plan) SetMetrics(m *Metrics) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.metrics = m
}

// next advances op's attempt counter and returns the fault planned for this
// invocation, if any. Injected faults are recorded.
func (p *Plan) next(op string) (Fault, bool) {
	if p == nil {
		return Fault{}, false
	}
	p.mu.Lock()
	p.attempts[op]++
	f, ok := p.faults[faultKey{op, p.attempts[op]}]
	var m *Metrics
	if ok {
		p.injected = append(p.injected, f)
		m = p.metrics
	}
	p.mu.Unlock()
	if ok && m != nil {
		m.FaultInjected(f.Op, f.Kind)
	}
	return f, ok
}

// RecordExternal books a fault the test harness performed out of band (a
// real truncation or rotation race), so total fault counts include scripted
// file damage.
func (p *Plan) RecordExternal(op string) {
	if p == nil {
		return
	}
	f := Fault{Op: op, Kind: External}
	p.mu.Lock()
	p.injected = append(p.injected, f)
	m := p.metrics
	p.mu.Unlock()
	if m != nil {
		m.FaultInjected(op, External)
	}
}

// Injected returns a copy of every fault injected so far, in injection
// order.
func (p *Plan) Injected() []Fault {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Fault(nil), p.injected...)
}

// InjectedCount is the total number of injected faults.
func (p *Plan) InjectedCount() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.injected)
}

// FailureCount is the number of injected faults that surfaced as errors
// (Kind.Fails) — the count an eventually-successful run's retry metrics
// must equal.
func (p *Plan) FailureCount() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, f := range p.injected {
		if f.Kind.Fails() {
			n++
		}
	}
	return n
}

// InjectedByOp returns per-operation injected-fault counts.
func (p *Plan) InjectedByOp() map[string]int {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int)
	for _, f := range p.injected {
		out[f.Op]++
	}
	return out
}

// Pending is the number of planned faults not yet injected — zero once an
// eventually-successful plan has fully played out.
func (p *Plan) Pending() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	pending := 0
	for key := range p.faults {
		if key.attempt > p.attempts[key.op] {
			pending++
		}
	}
	return pending
}

// Describe renders the plan's schedule sorted by (op, attempt), for test
// failure messages.
func (p *Plan) Describe() string {
	if p == nil {
		return "(no plan)"
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	keys := make([]faultKey, 0, len(p.faults))
	for k := range p.faults {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].op != keys[j].op {
			return keys[i].op < keys[j].op
		}
		return keys[i].attempt < keys[j].attempt
	})
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += " "
		}
		out += p.faults[k].String()
	}
	if out == "" {
		return "(empty plan)"
	}
	return out
}

// errInjected tags every synthesized error so tests (and error chains) can
// recognize injector output.
var errInjected = errors.New("resilience: injected fault")

// IsInjected reports whether err originated from a fault plan.
func IsInjected(err error) bool { return errors.Is(err, errInjected) }
