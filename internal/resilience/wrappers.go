package resilience

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"syscall"
	"time"
)

// This file wraps the I/O seams the fault injector drives: dial functions,
// HTTP round trippers, readers, and writers. Each wrapper consults the plan
// once per invocation; un-faulted invocations pass straight through.

// DialFunc is the net.Dialer.DialContext shape every dial seam in the
// repository uses.
type DialFunc func(ctx context.Context, network, addr string) (net.Conn, error)

// injectedErr builds the error a failing fault surfaces, chaining both the
// errInjected marker and a kind-appropriate cause so retryability
// classification sees the same errno a real failure would carry.
func injectedErr(f Fault, cause error) error {
	if f.Err != nil {
		return fmt.Errorf("%w: %s: %w", errInjected, f.Op, f.Err)
	}
	return fmt.Errorf("%w: %s: %w", errInjected, f.Op, cause)
}

// timeoutErr is an injected error satisfying net.Error with Timeout()=true.
type timeoutErr struct{ op string }

func (e *timeoutErr) Error() string   { return "resilience: injected timeout: " + e.op }
func (e *timeoutErr) Timeout() bool   { return true }
func (e *timeoutErr) Temporary() bool { return true }
func (e *timeoutErr) Unwrap() error   { return errInjected }

// Dial wraps dial so the plan can refuse dials or hand back connections
// that reset mid-handshake. nil dial defaults to a plain TCP dialer.
func (p *Plan) Dial(op string, dial DialFunc) DialFunc {
	if dial == nil {
		var d net.Dialer
		dial = d.DialContext
	}
	if p == nil {
		return dial
	}
	return func(ctx context.Context, network, addr string) (net.Conn, error) {
		f, ok := p.next(op)
		if !ok {
			return dial(ctx, network, addr)
		}
		switch f.Kind {
		case DialRefused:
			return nil, injectedErr(f, syscall.ECONNREFUSED)
		case ConnReset:
			// The dial "succeeds" but the first read resets — without
			// touching the real server, so the reset is invisible to it.
			return &resetConn{fault: f}, nil
		case SlowRead:
			conn, err := dial(ctx, network, addr)
			if err != nil {
				return nil, err
			}
			return &slowConn{Conn: conn, delay: f.Delay}, nil
		case HTTPTimeout:
			return nil, &timeoutErr{op: f.Op}
		default:
			return nil, injectedErr(f, syscall.ECONNREFUSED)
		}
	}
}

// resetConn accepts writes (the ClientHello leaves) and resets the first
// read (the ServerHello never arrives) — a mid-handshake reset.
type resetConn struct {
	fault Fault
}

func (c *resetConn) Read(p []byte) (int, error)       { return 0, injectedErr(c.fault, syscall.ECONNRESET) }
func (c *resetConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c *resetConn) Close() error                     { return nil }
func (c *resetConn) LocalAddr() net.Addr              { return fakeAddr{} }
func (c *resetConn) RemoteAddr() net.Addr             { return fakeAddr{} }
func (c *resetConn) SetDeadline(time.Time) error      { return nil }
func (c *resetConn) SetReadDeadline(time.Time) error  { return nil }
func (c *resetConn) SetWriteDeadline(time.Time) error { return nil }

type fakeAddr struct{}

func (fakeAddr) Network() string { return "fault" }
func (fakeAddr) String() string  { return "injected" }

// slowConn delays every read by delay; used for slow-server simulation.
type slowConn struct {
	net.Conn
	delay time.Duration
}

func (c *slowConn) Read(p []byte) (int, error) {
	time.Sleep(c.delay)
	return c.Conn.Read(p)
}

// RoundTripper wraps an http.RoundTripper so the plan can synthesize 5xx
// responses and timeouts without contacting the server. nil inner defaults
// to http.DefaultTransport.
func (p *Plan) RoundTripper(op string, inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	if p == nil {
		return inner
	}
	return roundTripFunc(func(req *http.Request) (*http.Response, error) {
		f, ok := p.next(op)
		if !ok {
			return inner.RoundTrip(req)
		}
		switch f.Kind {
		case HTTPStatus:
			status := f.Status
			if status == 0 {
				status = http.StatusServiceUnavailable
			}
			body := fmt.Sprintf("injected %d for %s", status, f.Op)
			return &http.Response{
				Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
				StatusCode:    status,
				Proto:         "HTTP/1.1",
				ProtoMajor:    1,
				ProtoMinor:    1,
				Header:        http.Header{"Content-Type": []string{"text/plain"}},
				Body:          io.NopCloser(strings.NewReader(body)),
				ContentLength: int64(len(body)),
				Request:       req,
			}, nil
		case HTTPTimeout:
			return nil, &timeoutErr{op: f.Op}
		case ConnReset, DialRefused:
			return nil, injectedErr(f, syscall.ECONNRESET)
		default:
			return nil, injectedErr(f, syscall.ECONNRESET)
		}
	})
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }

// Reader wraps r so the plan can fail, shorten, or delay individual read
// calls. A failed read consumes no bytes, so retrying callers observe the
// same stream a fault-free run would.
func (p *Plan) Reader(op string, r io.Reader) io.Reader {
	if p == nil {
		return r
	}
	return &faultReader{plan: p, op: op, r: r}
}

type faultReader struct {
	plan *Plan
	op   string
	r    io.Reader
}

func (fr *faultReader) Read(b []byte) (int, error) {
	f, ok := fr.plan.next(fr.op)
	if !ok {
		return fr.r.Read(b)
	}
	switch f.Kind {
	case ReadErr:
		return 0, injectedErr(f, io.ErrUnexpectedEOF)
	case ShortRead:
		n := f.N
		if n <= 0 {
			n = 1
		}
		if n < len(b) {
			b = b[:n]
		}
		return fr.r.Read(b)
	case SlowRead:
		time.Sleep(f.Delay)
		return fr.r.Read(b)
	default:
		return 0, injectedErr(f, io.ErrUnexpectedEOF)
	}
}

// Writer wraps w so the plan can fail individual write calls without
// writing any bytes — the atomic snapshot writer's transient-failure case.
func (p *Plan) Writer(op string, w io.Writer) io.Writer {
	if p == nil {
		return w
	}
	return &faultWriter{plan: p, op: op, w: w}
}

type faultWriter struct {
	plan *Plan
	op   string
	w    io.Writer
}

func (fw *faultWriter) Write(b []byte) (int, error) {
	f, ok := fw.plan.next(fw.op)
	if !ok {
		return fw.w.Write(b)
	}
	switch f.Kind {
	case WriteErr:
		return 0, injectedErr(f, syscall.EIO)
	default:
		return 0, injectedErr(f, syscall.EIO)
	}
}
