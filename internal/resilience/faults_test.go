package resilience

import (
	"context"
	"crypto/tls"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"certchains/internal/obs"
)

func TestKindStrings(t *testing.T) {
	for k := DialRefused; k <= External; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "kind-") {
			t.Errorf("kind %d has no name: %q", int(k), s)
		}
	}
	if Kind(99).String() != "kind-99" {
		t.Error("unknown kind must render numerically")
	}
}

func TestKindFails(t *testing.T) {
	failing := []Kind{DialRefused, ConnReset, ReadErr, WriteErr, HTTPStatus, HTTPTimeout, OpenErr, StatErr}
	degrading := []Kind{ShortRead, SlowRead, External}
	for _, k := range failing {
		if !k.Fails() {
			t.Errorf("%s must count as a failing fault", k)
		}
	}
	for _, k := range degrading {
		if k.Fails() {
			t.Errorf("%s must not count as a failing fault", k)
		}
	}
}

func TestPlanScheduling(t *testing.T) {
	p := NewPlan(
		Fault{Op: "a", Attempt: 1, Kind: ReadErr},
		Fault{Op: "a", Attempt: 3, Kind: ReadErr},
		Fault{Op: "b", Attempt: 2, Kind: ShortRead},
	)
	if got := p.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want 3", got)
	}
	// a: fault, clean, fault. b: clean, fault (degrading).
	seq := []struct {
		op   string
		want bool
	}{
		{"a", true}, {"a", false}, {"a", true},
		{"b", false}, {"b", true},
	}
	for i, s := range seq {
		if _, ok := p.next(s.op); ok != s.want {
			t.Fatalf("step %d (%s): injected=%v, want %v", i, s.op, ok, s.want)
		}
	}
	if got := p.InjectedCount(); got != 3 {
		t.Errorf("InjectedCount = %d, want 3", got)
	}
	if got := p.FailureCount(); got != 2 {
		t.Errorf("FailureCount = %d, want 2 (ShortRead degrades, not fails)", got)
	}
	if got := p.Pending(); got != 0 {
		t.Errorf("Pending = %d, want 0 after plan plays out", got)
	}
	byOp := p.InjectedByOp()
	if byOp["a"] != 2 || byOp["b"] != 1 {
		t.Errorf("InjectedByOp = %v", byOp)
	}
	inj := p.Injected()
	if len(inj) != 3 || inj[0].Op != "a" || inj[2].Op != "b" {
		t.Errorf("Injected order = %v", inj)
	}
}

func TestPlanAddReplaces(t *testing.T) {
	p := NewPlan(Fault{Op: "x", Attempt: 1, Kind: ReadErr})
	p.Add(Fault{Op: "x", Attempt: 1, Kind: ShortRead, N: 2})
	f, ok := p.next("x")
	if !ok || f.Kind != ShortRead {
		t.Fatalf("replacement fault not used: %v %v", f, ok)
	}
}

func TestPlanRecordExternal(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPlan()
	p.SetMetrics(NewMetrics(reg))
	p.RecordExternal("tail.rotate")
	if p.InjectedCount() != 1 || p.FailureCount() != 0 {
		t.Fatalf("external fault counts wrong: injected=%d failures=%d", p.InjectedCount(), p.FailureCount())
	}
	if got := FaultTotal(reg); got != 1 {
		t.Fatalf("FaultTotal = %v, want 1", got)
	}
}

func TestNilPlanIsNoop(t *testing.T) {
	var p *Plan
	if _, ok := p.next("x"); ok {
		t.Fatal("nil plan injected a fault")
	}
	p.RecordExternal("x")
	p.SetMetrics(nil)
	if p.InjectedCount() != 0 || p.FailureCount() != 0 || p.Pending() != 0 {
		t.Fatal("nil plan counts must be zero")
	}
	if p.Injected() != nil || p.InjectedByOp() != nil {
		t.Fatal("nil plan slices must be nil")
	}
	if p.Describe() != "(no plan)" {
		t.Fatal("nil plan Describe")
	}
	// Wrappers pass straight through on a nil plan.
	if p.Reader("x", strings.NewReader("hi")) == nil {
		t.Fatal("nil plan Reader")
	}
	if p.FS("x", nil) != OS {
		t.Fatal("nil plan FS must return the inner FS")
	}
	if p.RoundTripper("x", http.DefaultTransport) == nil {
		t.Fatal("nil plan RoundTripper")
	}
	if p.Dial("x", nil) == nil {
		t.Fatal("nil plan Dial")
	}
}

func TestDescribe(t *testing.T) {
	p := NewPlan(
		Fault{Op: "b", Attempt: 1, Kind: ReadErr},
		Fault{Op: "a", Attempt: 2, Kind: DialRefused},
		Fault{Op: "a", Attempt: 1, Kind: ConnReset},
	)
	want := "a@1:conn-reset a@2:dial-refused b@1:read-err"
	if got := p.Describe(); got != want {
		t.Errorf("Describe = %q, want %q", got, want)
	}
	if NewPlan().Describe() != "(empty plan)" {
		t.Error("empty plan Describe")
	}
}

func TestDialRefusedThenOK(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()

	p := NewPlan(Fault{Op: "dial", Attempt: 1, Kind: DialRefused})
	dial := p.Dial("dial", nil)

	_, err = dial(context.Background(), "tcp", ln.Addr().String())
	if err == nil || !IsInjected(err) {
		t.Fatalf("first dial: err = %v, want injected", err)
	}
	if !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("injected refusal must classify like a real one: %v", err)
	}
	if !DefaultRetryable(err) {
		t.Fatal("injected refusal must be retryable")
	}
	conn, err := dial(context.Background(), "tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("second dial: %v", err)
	}
	conn.Close()
}

func TestDialConnReset(t *testing.T) {
	p := NewPlan(Fault{Op: "dial", Attempt: 1, Kind: ConnReset})
	dial := p.Dial("dial", func(context.Context, string, string) (net.Conn, error) {
		t.Fatal("real dial must not run for a ConnReset fault")
		return nil, nil
	})
	conn, err := dial(context.Background(), "tcp", "example.invalid:443")
	if err != nil {
		t.Fatalf("ConnReset dial must succeed: %v", err)
	}
	defer conn.Close()
	// The ClientHello leaves fine…
	if n, err := conn.Write([]byte("hello")); n != 5 || err != nil {
		t.Fatalf("write: %d, %v", n, err)
	}
	// …but the ServerHello never arrives.
	_, err = conn.Read(make([]byte, 1))
	if !errors.Is(err, syscall.ECONNRESET) || !IsInjected(err) {
		t.Fatalf("read: %v, want injected ECONNRESET", err)
	}
	// Conn plumbing for TLS.
	if conn.LocalAddr().Network() != "fault" || conn.RemoteAddr().String() != "injected" {
		t.Error("fake addrs wrong")
	}
	if conn.SetDeadline(time.Time{}) != nil || conn.SetReadDeadline(time.Time{}) != nil || conn.SetWriteDeadline(time.Time{}) != nil {
		t.Error("deadline setters must be no-ops")
	}
}

func TestDialConnResetFailsTLSHandshake(t *testing.T) {
	// End-to-end: a TLS handshake over a reset conn fails retryably.
	p := NewPlan(Fault{Op: "dial", Attempt: 1, Kind: ConnReset})
	conn, err := p.Dial("dial", nil)(context.Background(), "tcp", "example.invalid:443")
	if err != nil {
		t.Fatal(err)
	}
	tconn := tls.Client(conn, &tls.Config{InsecureSkipVerify: true})
	err = tconn.HandshakeContext(context.Background())
	if err == nil {
		t.Fatal("handshake must fail on a reset conn")
	}
	if !DefaultRetryable(err) {
		t.Fatalf("mid-handshake reset must classify retryable: %v", err)
	}
}

func TestDialSlowRead(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		c.Write([]byte("x"))
		c.Close()
	}()
	p := NewPlan(Fault{Op: "dial", Attempt: 1, Kind: SlowRead, Delay: 20 * time.Millisecond})
	conn, err := p.Dial("dial", nil)(context.Background(), "tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("slow read returned in %v, want >= 20ms", elapsed)
	}
}

func TestDialTimeoutAndDefaultKinds(t *testing.T) {
	p := NewPlan(
		Fault{Op: "dial", Attempt: 1, Kind: HTTPTimeout},
		Fault{Op: "dial", Attempt: 2, Kind: WriteErr}, // unexpected kind → refused
	)
	dial := p.Dial("dial", nil)
	_, err := dial(context.Background(), "tcp", "example.invalid:443")
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() || !nerr.Temporary() {
		t.Fatalf("timeout fault: %v", err)
	}
	if nerr.Error() == "" {
		t.Fatal("timeout error text empty")
	}
	_, err = dial(context.Background(), "tcp", "example.invalid:443")
	if !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("default dial kind: %v", err)
	}
}

func TestDialCustomErr(t *testing.T) {
	custom := errors.New("custom cause")
	p := NewPlan(Fault{Op: "dial", Attempt: 1, Kind: DialRefused, Err: custom})
	_, err := p.Dial("dial", nil)(context.Background(), "tcp", "example.invalid:443")
	if !errors.Is(err, custom) || !IsInjected(err) {
		t.Fatalf("custom error not chained: %v", err)
	}
}

func TestRoundTripperHTTPStatus(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		io.WriteString(w, "real")
	}))
	defer srv.Close()

	p := NewPlan(
		Fault{Op: "get", Attempt: 1, Kind: HTTPStatus, Status: 503},
		Fault{Op: "get", Attempt: 2, Kind: HTTPStatus}, // default status
	)
	client := &http.Client{Transport: p.RoundTripper("get", nil)}

	for want := range []int{503, 503} {
		resp, err := client.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 503 {
			t.Fatalf("attempt %d: status %d, want 503", want, resp.StatusCode)
		}
		if !strings.Contains(string(body), "injected") {
			t.Fatalf("synthesized body = %q", body)
		}
	}
	if hits != 0 {
		t.Fatalf("server saw %d hits during injected responses", hits)
	}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "real" || hits != 1 {
		t.Fatalf("third attempt must reach the server: body=%q hits=%d", body, hits)
	}
}

func TestRoundTripperTimeoutAndReset(t *testing.T) {
	p := NewPlan(
		Fault{Op: "get", Attempt: 1, Kind: HTTPTimeout},
		Fault{Op: "get", Attempt: 2, Kind: ConnReset},
		Fault{Op: "get", Attempt: 3, Kind: ReadErr}, // default → reset
	)
	rt := p.RoundTripper("get", nil)
	req, _ := http.NewRequest("GET", "http://example.invalid/", nil)

	_, err := rt.RoundTrip(req)
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("timeout: %v", err)
	}
	_, err = rt.RoundTrip(req)
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("reset: %v", err)
	}
	_, err = rt.RoundTrip(req)
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("default kind: %v", err)
	}
}

func TestReaderFaults(t *testing.T) {
	p := NewPlan(
		Fault{Op: "r", Attempt: 1, Kind: ReadErr},
		Fault{Op: "r", Attempt: 2, Kind: ShortRead, N: 3},
		Fault{Op: "r", Attempt: 4, Kind: ShortRead}, // N=0 → 1 byte
		Fault{Op: "r", Attempt: 5, Kind: SlowRead, Delay: time.Millisecond},
		Fault{Op: "r", Attempt: 6, Kind: WriteErr}, // unexpected kind → read error
	)
	src := strings.NewReader("abcdefghij")
	r := p.Reader("r", src)
	buf := make([]byte, 8)

	// 1: failed read consumes nothing.
	n, err := r.Read(buf)
	if n != 0 || !errors.Is(err, io.ErrUnexpectedEOF) || !IsInjected(err) {
		t.Fatalf("ReadErr: n=%d err=%v", n, err)
	}
	// 2: short read caps at 3 bytes — and resumes from byte 0.
	n, err = r.Read(buf)
	if n != 3 || err != nil || string(buf[:n]) != "abc" {
		t.Fatalf("ShortRead: n=%d err=%v buf=%q", n, err, buf[:n])
	}
	// 3: clean read gets the rest of the buffer's worth.
	n, err = r.Read(buf)
	if n != 7 || err != nil || string(buf[:n]) != "defghij" {
		t.Fatalf("clean: n=%d err=%v buf=%q", n, err, buf[:n])
	}
	// 4: default short read = 1 byte, at EOF here.
	src.Reset("zz")
	n, _ = r.Read(buf)
	if n != 1 || buf[0] != 'z' {
		t.Fatalf("ShortRead default: n=%d", n)
	}
	// 5: slow read still returns data.
	n, err = r.Read(buf)
	if n != 1 || err != nil {
		t.Fatalf("SlowRead: n=%d err=%v", n, err)
	}
	// 6: unexpected kind degrades to a read error.
	src.Reset("q")
	n, err = r.Read(buf)
	if n != 0 || !IsInjected(err) {
		t.Fatalf("default kind: n=%d err=%v", n, err)
	}
}

func TestWriterFaults(t *testing.T) {
	p := NewPlan(
		Fault{Op: "w", Attempt: 1, Kind: WriteErr},
		Fault{Op: "w", Attempt: 3, Kind: ReadErr}, // unexpected kind → write error
	)
	var sb strings.Builder
	w := p.Writer("w", &sb)

	n, err := w.Write([]byte("lost"))
	if n != 0 || !errors.Is(err, syscall.EIO) || !IsInjected(err) {
		t.Fatalf("WriteErr: n=%d err=%v", n, err)
	}
	if n, err := w.Write([]byte("kept")); n != 4 || err != nil {
		t.Fatalf("clean write: n=%d err=%v", n, err)
	}
	if _, err := w.Write([]byte("x")); !IsInjected(err) {
		t.Fatalf("default kind: %v", err)
	}
	if sb.String() != "kept" {
		t.Fatalf("writer state = %q, want only the clean write", sb.String())
	}
	var np *Plan
	if np.Writer("w", &sb) != io.Writer(&sb) {
		t.Fatal("nil plan Writer must return inner")
	}
}

func TestFaultFS(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	if err := os.WriteFile(path, []byte("line1\nline2\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	p := NewPlan(
		Fault{Op: "tail.open", Attempt: 1, Kind: OpenErr},
		Fault{Op: "tail.stat", Attempt: 1, Kind: StatErr},
		Fault{Op: "tail.read", Attempt: 1, Kind: ReadErr},
	)
	fsys := p.FS("tail", nil)

	// First open fails, second succeeds.
	if _, err := fsys.Open(path); !IsInjected(err) {
		t.Fatalf("open fault: %v", err)
	}
	f, err := fsys.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// First stat fails, second succeeds and matches the file's own Stat.
	if _, err := fsys.Stat(path); !IsInjected(err) {
		t.Fatalf("stat fault: %v", err)
	}
	di, err := fsys.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if !os.SameFile(di, fi) {
		t.Fatal("FaultFS FileInfos must stay os.SameFile-compatible")
	}

	// First read fails without consuming; the retry reads from byte 0.
	buf := make([]byte, 6)
	if n, err := f.Read(buf); n != 0 || !IsInjected(err) {
		t.Fatalf("read fault: n=%d err=%v", n, err)
	}
	if n, err := io.ReadFull(f, buf); n != 6 || err != nil || string(buf) != "line1\n" {
		t.Fatalf("retried read: n=%d err=%v buf=%q", n, err, buf)
	}

	// Seek passes through.
	if off, err := f.Seek(0, io.SeekStart); off != 0 || err != nil {
		t.Fatalf("seek: %d %v", off, err)
	}

	if p.Pending() != 0 {
		t.Fatalf("plan not fully played out: %s", p.Describe())
	}
	if p.InjectedCount() != 3 || p.FailureCount() != 3 {
		t.Fatalf("counts: injected=%d failures=%d", p.InjectedCount(), p.FailureCount())
	}
}

func TestFaultFSOpenPropagatesRealErrors(t *testing.T) {
	p := NewPlan()
	fsys := p.FS("tail", nil)
	if _, err := fsys.Open(filepath.Join(t.TempDir(), "missing")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("real open error must pass through: %v", err)
	}
}

func TestPlanMetricsMatchInjectorRecord(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	p := NewPlan(
		Fault{Op: "a", Attempt: 1, Kind: ReadErr},
		Fault{Op: "b", Attempt: 1, Kind: DialRefused},
	)
	p.SetMetrics(m)
	r := p.Reader("a", strings.NewReader("x"))
	r.Read(make([]byte, 1))
	p.Dial("b", nil)(context.Background(), "tcp", "example.invalid:1")
	p.RecordExternal("c")

	if got := FaultTotal(reg); got != float64(p.InjectedCount()) {
		t.Fatalf("registry fault total %v != injector record %d", got, p.InjectedCount())
	}
	if v, ok := reg.Value("resilience_faults_injected_total", "a", "read-err"); !ok || v != 1 {
		t.Errorf("faults{a,read-err} = %v, %v", v, ok)
	}
}

func TestPlanConcurrentUse(t *testing.T) {
	p := NewPlan(
		Fault{Op: "par", Attempt: 3, Kind: ReadErr},
		Fault{Op: "par", Attempt: 7, Kind: ReadErr},
	)
	done := make(chan int, 10)
	for i := 0; i < 10; i++ {
		go func() {
			injected := 0
			if _, ok := p.next("par"); ok {
				injected++
			}
			done <- injected
		}()
	}
	total := 0
	for i := 0; i < 10; i++ {
		total += <-done
	}
	if total != 2 || p.InjectedCount() != 2 {
		t.Fatalf("concurrent injection count = %d (recorded %d), want 2", total, p.InjectedCount())
	}
}
