package resilience

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"syscall"
	"time"
)

// Policy is a capped-exponential-backoff retry schedule shared by every
// network and file I/O path in the repository. The zero value retries
// nothing (one attempt, no delay); DefaultPolicy is the production shape.
//
// Backoff jitter is deterministic: the fraction applied to attempt k of
// operation op is a pure function of (JitterSeed, op, k), so a seeded run
// replays the exact same delays. A zero JitterSeed draws one process-level
// seed from the wall clock (clock.go — the package's only wall-clock read),
// which is what production wants: correlated retries across a fleet
// re-collide forever without per-process jitter.
type Policy struct {
	// MaxAttempts bounds total attempts (including the first); values < 1
	// mean a single attempt.
	MaxAttempts int
	// BaseDelay is the delay before the first retry (default 50ms when
	// retries are enabled).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (default 2s).
	MaxDelay time.Duration
	// Multiplier grows the delay per retry (default 2).
	Multiplier float64
	// Jitter is the ± fraction applied to each delay, in [0, 1).
	Jitter float64
	// JitterSeed makes the jitter sequence deterministic; 0 draws a
	// process-level seed from the wall clock.
	JitterSeed int64
	// Classify overrides retryability classification (nil uses
	// DefaultRetryable).
	Classify func(error) bool
	// Sleep overrides the inter-attempt wait (nil waits on a real timer,
	// honoring ctx cancellation). Tests inject an instant sleep.
	Sleep func(ctx context.Context, d time.Duration) error
	// Metrics, when set, books attempts, retries, give-ups, and backoff
	// delays into the shared obs registry.
	Metrics *Metrics
}

// DefaultPolicy is the production retry shape: 4 attempts, 50ms base
// doubling to a 2s cap, 20% jitter.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts: 4,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Multiplier:  2,
		Jitter:      0.2,
	}
}

// WithMetrics returns a copy of the policy booking into m.
func (p Policy) WithMetrics(m *Metrics) Policy {
	p.Metrics = m
	return p
}

// Do runs fn until it succeeds, returns a non-retryable error, exhausts
// MaxAttempts, or ctx ends. It returns the number of attempts made and the
// final error. Context cancellation always wins: a ctx error is returned
// as-is and never retried, and the backoff sleep itself is context-aware,
// so a deadline fires mid-wait rather than after it.
func (p Policy) Do(ctx context.Context, op string, fn func(ctx context.Context) error) (attempts int, err error) {
	maxAttempts := p.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	classify := p.Classify
	if classify == nil {
		classify = DefaultRetryable
	}
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			if err == nil {
				err = cerr
			}
			return attempt - 1, err
		}
		p.Metrics.Attempt(op)
		err = fn(ctx)
		if err == nil {
			return attempt, nil
		}
		if attempt >= maxAttempts || !classify(err) || ctx.Err() != nil {
			p.Metrics.GiveUp(op)
			return attempt, err
		}
		d := p.delay(op, attempt)
		p.Metrics.Retry(op, d)
		if serr := p.sleep(ctx, d); serr != nil {
			// The context died during backoff; surface the attempt error
			// with the cancellation chained for classification.
			return attempt, fmt.Errorf("%w (retry aborted: %v)", err, serr)
		}
	}
}

// delay computes the backoff before retry #attempt (1-based), with the
// deterministic jitter described on Policy.
func (p Policy) delay(op string, attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	maxD := p.MaxDelay
	if maxD <= 0 {
		maxD = 2 * time.Second
	}
	d := float64(base)
	for i := 1; i < attempt; i++ {
		d *= mult
		if d >= float64(maxD) {
			d = float64(maxD)
			break
		}
	}
	if p.Jitter > 0 {
		u := jitter01(p.seed(), op, attempt)
		d *= 1 + p.Jitter*(2*u-1)
	}
	if d > float64(maxD) {
		d = float64(maxD)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

func (p Policy) seed() int64 {
	if p.JitterSeed != 0 {
		return p.JitterSeed
	}
	return processSeed()
}

// jitter01 maps (seed, op, attempt) to a uniform-ish fraction in [0, 1)
// via FNV-1a — stateless, so concurrent retries never contend and a replay
// reproduces every delay.
func jitter01(seed int64, op string, attempt int) float64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(seed) >> (8 * i))
	}
	h.Write(buf[:])
	io.WriteString(h, op)
	buf[0] = byte(attempt)
	buf[1] = byte(attempt >> 8)
	buf[2] = byte(attempt >> 16)
	buf[3] = byte(attempt >> 24)
	h.Write(buf[:4])
	return float64(h.Sum64()>>11) / float64(1<<53)
}

func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	return sleepCtx(ctx, d)
}

// --- retryability classification ----------------------------------------

// StatusError carries an HTTP status through an error chain so the
// classifier can distinguish a 503 (retryable) from a 404 (not).
type StatusError struct {
	Code int
	Body string
}

func (e *StatusError) Error() string {
	if e.Body == "" {
		return fmt.Sprintf("status %d", e.Code)
	}
	return fmt.Sprintf("status %d: %s", e.Code, e.Body)
}

// Retryable reports whether the status is worth retrying: 5xx, plus 408
// (request timeout) and 429 (throttled).
func (e *StatusError) Retryable() bool {
	return e.Code >= 500 || e.Code == 408 || e.Code == 429
}

type markedErr struct {
	err       error
	retryable bool
}

func (m *markedErr) Error() string   { return m.err.Error() }
func (m *markedErr) Unwrap() error   { return m.err }
func (m *markedErr) Retryable() bool { return m.retryable }

// MarkRetryable forces err to classify as retryable.
func MarkRetryable(err error) error {
	if err == nil {
		return nil
	}
	return &markedErr{err: err, retryable: true}
}

// MarkPermanent forces err to classify as non-retryable.
func MarkPermanent(err error) error {
	if err == nil {
		return nil
	}
	return &markedErr{err: err, retryable: false}
}

// DefaultRetryable is the shared transient-failure classification:
//
//   - context cancellation and deadline expiry are never retryable (the
//     caller gave up, not the network);
//   - anything carrying a Retryable() bool (StatusError, marked errors)
//     answers for itself;
//   - network timeouts, connection refusals/resets, broken pipes, DNS
//     hiccups, and truncated streams (io.ErrUnexpectedEOF) are retryable;
//   - everything else — parse errors, certificate failures, logic errors —
//     is permanent.
func DefaultRetryable(err error) bool {
	if err == nil {
		return false
	}
	// Explicit marks outrank the context rule: a per-attempt timeout wraps
	// context.DeadlineExceeded (net dial errors do since Go 1.20) but is
	// retryable when only the attempt's deadline fired, and the caller says
	// so with MarkRetryable.
	var marked interface{ Retryable() bool }
	if errors.As(err, &marked) {
		return marked.Retryable()
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return true
	}
	for _, errno := range []syscall.Errno{
		syscall.ECONNREFUSED, syscall.ECONNRESET, syscall.ECONNABORTED,
		syscall.EPIPE, syscall.ETIMEDOUT, syscall.EAGAIN, syscall.EIO,
	} {
		if errors.Is(err, errno) {
			return true
		}
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var dnsErr *net.DNSError
	if errors.As(err, &dnsErr) {
		return dnsErr.IsTimeout || dnsErr.IsTemporary
	}
	return false
}
