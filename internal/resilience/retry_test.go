package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"

	"certchains/internal/obs"
)

// instant is the injected no-wait sleep every deterministic test uses.
func instant(ctx context.Context, d time.Duration) error { return ctx.Err() }

// testPolicy is a deterministic 4-attempt policy that never really sleeps.
func testPolicy() Policy {
	p := DefaultPolicy()
	p.JitterSeed = 42
	p.Sleep = instant
	return p
}

func TestDoSucceedsFirstTry(t *testing.T) {
	calls := 0
	attempts, err := testPolicy().Do(context.Background(), "op", func(context.Context) error {
		calls++
		return nil
	})
	if err != nil || attempts != 1 || calls != 1 {
		t.Fatalf("attempts=%d calls=%d err=%v", attempts, calls, err)
	}
}

func TestDoRetriesThenSucceeds(t *testing.T) {
	calls := 0
	attempts, err := testPolicy().Do(context.Background(), "op", func(context.Context) error {
		calls++
		if calls < 3 {
			return syscall.ECONNREFUSED
		}
		return nil
	})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if attempts != 3 || calls != 3 {
		t.Fatalf("attempts=%d calls=%d, want 3", attempts, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	p := testPolicy()
	p.MaxAttempts = 2
	calls := 0
	attempts, err := p.Do(context.Background(), "op", func(context.Context) error {
		calls++
		return syscall.ECONNRESET
	})
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("err = %v", err)
	}
	if attempts != 2 || calls != 2 {
		t.Fatalf("attempts=%d calls=%d, want 2", attempts, calls)
	}
}

func TestDoStopsOnPermanentError(t *testing.T) {
	perm := errors.New("bad certificate")
	calls := 0
	attempts, err := testPolicy().Do(context.Background(), "op", func(context.Context) error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) || attempts != 1 || calls != 1 {
		t.Fatalf("attempts=%d calls=%d err=%v — opaque errors must not retry", attempts, calls, err)
	}
}

func TestDoZeroValuePolicySingleAttempt(t *testing.T) {
	var p Policy
	p.Sleep = instant
	calls := 0
	attempts, err := p.Do(context.Background(), "op", func(context.Context) error {
		calls++
		return syscall.ECONNREFUSED
	})
	if attempts != 1 || calls != 1 || err == nil {
		t.Fatalf("zero policy must make exactly one attempt: attempts=%d calls=%d err=%v", attempts, calls, err)
	}
}

func TestDoHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	attempts, err := testPolicy().Do(ctx, "op", func(context.Context) error {
		calls++
		return nil
	})
	if calls != 0 || attempts != 0 {
		t.Fatalf("cancelled ctx must prevent attempts: calls=%d attempts=%d", calls, attempts)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestDoContextCancelledMidRetryLoop(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	_, err := testPolicy().Do(ctx, "op", func(context.Context) error {
		calls++
		cancel()
		return syscall.ECONNREFUSED
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (ctx death must stop the loop)", calls)
	}
	if err == nil {
		t.Fatal("want error")
	}
}

func TestDoContextDeadlineDuringRealSleep(t *testing.T) {
	// Real sleep path: a 10ms deadline must abort a 10s backoff promptly.
	p := DefaultPolicy()
	p.BaseDelay = 10 * time.Second
	p.MaxDelay = 10 * time.Second
	p.JitterSeed = 1
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := p.Do(ctx, "op", func(context.Context) error { return syscall.ECONNREFUSED })
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("backoff ignored the context deadline (%v)", elapsed)
	}
	if !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("err = %v, want the attempt error with the cancellation chained", err)
	}
}

func TestDelayGrowsAndCaps(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: 400 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{100, 200, 400, 400, 400}
	for i, w := range want {
		if d := p.delay("op", i+1); d != w*time.Millisecond {
			t.Errorf("delay(%d) = %v, want %v", i+1, d, w*time.Millisecond)
		}
	}
}

func TestDelayJitterDeterministicAndBounded(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Hour, Multiplier: 2, Jitter: 0.2, JitterSeed: 7}
	d1 := p.delay("op", 1)
	d2 := p.delay("op", 1)
	if d1 != d2 {
		t.Fatalf("jitter not deterministic: %v vs %v", d1, d2)
	}
	lo, hi := 80*time.Millisecond, 120*time.Millisecond
	if d1 < lo || d1 > hi {
		t.Fatalf("jittered delay %v outside ±20%% of 100ms", d1)
	}
	// A different op lands elsewhere in the jitter window (overwhelmingly).
	other := p.delay("other-op", 1)
	if other == d1 {
		t.Logf("note: two ops hashed to the same jitter (possible but unlikely)")
	}
}

func TestJitter01Range(t *testing.T) {
	for i := 0; i < 1000; i++ {
		u := jitter01(99, fmt.Sprintf("op%d", i), i)
		if u < 0 || u >= 1 {
			t.Fatalf("jitter01 out of range: %v", u)
		}
	}
}

func TestProcessSeedStable(t *testing.T) {
	a, b := processSeed(), processSeed()
	if a != b || a == 0 {
		t.Fatalf("process seed must be stable and nonzero: %d %d", a, b)
	}
	// Unseeded policy uses it without crashing.
	p := Policy{Jitter: 0.5}
	if d := p.delay("op", 1); d <= 0 {
		t.Fatalf("unseeded jittered delay = %v", d)
	}
}

func TestSleepCtx(t *testing.T) {
	if err := sleepCtx(context.Background(), 0); err != nil {
		t.Fatalf("zero sleep: %v", err)
	}
	if err := sleepCtx(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("short sleep: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sleepCtx(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sleep: %v", err)
	}
}

func TestStatusErrorClassification(t *testing.T) {
	cases := []struct {
		code int
		want bool
	}{
		{500, true}, {503, true}, {599, true}, {429, true}, {408, true},
		{404, false}, {400, false}, {200, false},
	}
	for _, c := range cases {
		e := &StatusError{Code: c.code}
		if got := DefaultRetryable(fmt.Errorf("wrap: %w", e)); got != c.want {
			t.Errorf("status %d retryable = %v, want %v", c.code, got, c.want)
		}
		if e.Error() == "" {
			t.Errorf("status %d: empty error text", c.code)
		}
	}
	if (&StatusError{Code: 503, Body: "overloaded"}).Error() != "status 503: overloaded" {
		t.Error("StatusError body not rendered")
	}
}

func TestDefaultRetryable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, false},
		{"wrapped-canceled", fmt.Errorf("op: %w", context.Canceled), false},
		{"refused", syscall.ECONNREFUSED, true},
		{"reset", syscall.ECONNRESET, true},
		{"aborted", syscall.ECONNABORTED, true},
		{"pipe", syscall.EPIPE, true},
		{"etimedout", syscall.ETIMEDOUT, true},
		{"eio", syscall.EIO, true},
		{"unexpected-eof", io.ErrUnexpectedEOF, true},
		{"wrapped-refused", fmt.Errorf("dial: %w", syscall.ECONNREFUSED), true},
		{"opaque", errors.New("parse error"), false},
		{"plain-eof", io.EOF, false},
		{"marked-retryable", MarkRetryable(errors.New("flaky")), true},
		{"marked-permanent", MarkPermanent(syscall.ECONNREFUSED), false},
		{"marked-attempt-timeout", MarkRetryable(fmt.Errorf("dial: %w", context.DeadlineExceeded)), true},
		{"dns-timeout", &net.DNSError{IsTimeout: true}, true},
		{"dns-notfound", &net.DNSError{IsNotFound: true}, false},
		{"net-timeout", &timeoutErr{op: "x"}, true},
		{"op-error-timeout", &net.OpError{Op: "dial", Err: &timeoutErr{op: "y"}}, true},
	}
	for _, c := range cases {
		if got := DefaultRetryable(c.err); got != c.want {
			t.Errorf("%s: retryable = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestMarkersPreserveChain(t *testing.T) {
	base := errors.New("base")
	if !errors.Is(MarkRetryable(base), base) || !errors.Is(MarkPermanent(base), base) {
		t.Fatal("marked errors must unwrap to the original")
	}
	if MarkRetryable(nil) != nil || MarkPermanent(nil) != nil {
		t.Fatal("marking nil must stay nil")
	}
	if MarkRetryable(base).Error() != "base" {
		t.Fatal("marker must not change the message")
	}
}

func TestCustomClassify(t *testing.T) {
	p := testPolicy()
	p.Classify = func(err error) bool { return err.Error() == "again" }
	calls := 0
	_, err := p.Do(context.Background(), "op", func(context.Context) error {
		calls++
		if calls == 1 {
			return errors.New("again")
		}
		return errors.New("done")
	})
	if calls != 2 || err == nil || err.Error() != "done" {
		t.Fatalf("calls=%d err=%v", calls, err)
	}
}

func TestDoMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	p := testPolicy().WithMetrics(m)
	p.MaxAttempts = 3
	calls := 0
	if _, err := p.Do(context.Background(), "flaky", func(context.Context) error {
		calls++
		if calls < 3 {
			return syscall.ECONNRESET
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// One permanent failure books a give-up.
	if _, err := p.Do(context.Background(), "doomed", func(context.Context) error {
		return errors.New("permanent")
	}); err == nil {
		t.Fatal("want error")
	}

	if v, ok := reg.Value("resilience_attempts_total", "flaky"); !ok || v != 3 {
		t.Errorf("attempts{flaky} = %v, %v", v, ok)
	}
	if v, ok := reg.Value("resilience_retries_total", "flaky"); !ok || v != 2 {
		t.Errorf("retries{flaky} = %v, %v", v, ok)
	}
	if v, ok := reg.Value("resilience_giveups_total", "doomed"); !ok || v != 1 {
		t.Errorf("giveups{doomed} = %v, %v", v, ok)
	}
	if got := RetryTotal(reg); got != 2 {
		t.Errorf("RetryTotal = %v, want 2", got)
	}
	if got := FaultTotal(reg); got != 0 {
		t.Errorf("FaultTotal = %v, want 0 (no injector attached)", got)
	}
}

func TestNilMetricsSafe(t *testing.T) {
	var m *Metrics
	m.Attempt("op")
	m.Retry("op", time.Second)
	m.GiveUp("op")
	m.FaultInjected("op", ReadErr)
}

func TestParseSample(t *testing.T) {
	cases := []struct {
		line string
		name string
		val  float64
		ok   bool
	}{
		{`resilience_retries_total{op="a"} 3`, "resilience_retries_total", 3, true},
		{`plain_metric 1.5`, "plain_metric", 1.5, true},
		{`# HELP x y`, "", 0, false},
		{``, "", 0, false},
		{`garbage`, "", 0, false},
	}
	for _, c := range cases {
		name, val, ok := parseSample(c.line)
		if name != c.name || val != c.val || ok != c.ok {
			t.Errorf("parseSample(%q) = (%q, %v, %v)", c.line, name, val, ok)
		}
	}
}
