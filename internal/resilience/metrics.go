package resilience

import (
	"strconv"
	"strings"
	"time"

	"certchains/internal/obs"
)

// Metrics books retry and fault-injection activity into the shared obs
// registry, so the chaos suite can assert "retry counters equal injected
// failure counts" against the same surface /metrics serves. A nil *Metrics
// is a valid no-op, mirroring the obs.Tracer convention.
type Metrics struct {
	attempts *obs.Family // resilience_attempts_total{op}
	retries  *obs.Family // resilience_retries_total{op}
	giveups  *obs.Family // resilience_giveups_total{op}
	backoff  *obs.Family // resilience_backoff_seconds{op}
	faults   *obs.Family // resilience_faults_injected_total{op,kind}
}

// NewMetrics registers the resilience metric families in reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		attempts: reg.Counter("resilience_attempts_total",
			"I/O operation attempts, including first tries.", "op"),
		retries: reg.Counter("resilience_retries_total",
			"Retries after a retryable failure.", "op"),
		giveups: reg.Counter("resilience_giveups_total",
			"Operations abandoned: attempts exhausted or error permanent.", "op"),
		backoff: reg.Histogram("resilience_backoff_seconds",
			"Backoff delay before each retry.", nil, "op"),
		faults: reg.Counter("resilience_faults_injected_total",
			"Faults injected by a test plan (zero in production).", "op", "kind"),
	}
}

// Attempt books one attempt of op.
func (m *Metrics) Attempt(op string) {
	if m == nil {
		return
	}
	m.attempts.With(op).Inc()
}

// Retry books one retry of op after a backoff delay d.
func (m *Metrics) Retry(op string, d time.Duration) {
	if m == nil {
		return
	}
	m.retries.With(op).Inc()
	m.backoff.With(op).Observe(d.Seconds())
}

// GiveUp books one abandoned op.
func (m *Metrics) GiveUp(op string) {
	if m == nil {
		return
	}
	m.giveups.With(op).Inc()
}

// FaultInjected books one injected fault.
func (m *Metrics) FaultInjected(op string, kind Kind) {
	if m == nil {
		return
	}
	m.faults.With(op, kind.String()).Inc()
}

// RetryTotal sums resilience_retries_total across all ops in reg — the
// number the chaos-equivalence suite compares to Plan.FailureCount.
func RetryTotal(reg *obs.Registry) float64 {
	return sumFamily(reg, "resilience_retries_total")
}

// FaultTotal sums resilience_faults_injected_total across all ops and
// kinds in reg.
func FaultTotal(reg *obs.Registry) float64 {
	return sumFamily(reg, "resilience_faults_injected_total")
}

// sumFamily totals every series of one family by scraping the registry's
// own text rendering — the same bytes /metrics serves, so the assertion
// covers the export path too.
func sumFamily(reg *obs.Registry, family string) float64 {
	total := 0.0
	for _, line := range strings.Split(reg.Text(), "\n") {
		name, val, ok := parseSample(line)
		if ok && name == family {
			total += val
		}
	}
	return total
}

// parseSample splits one exposition line into its bare family name and
// value; comment and malformed lines report ok=false.
func parseSample(line string) (name string, val float64, ok bool) {
	if line == "" || strings.HasPrefix(line, "#") {
		return "", 0, false
	}
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", 0, false
	}
	v, err := strconv.ParseFloat(line[sp+1:], 64)
	if err != nil {
		return "", 0, false
	}
	name = line[:sp]
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	return name, v, true
}
