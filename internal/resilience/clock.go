// The package's jitter-and-sleep seam — its only contact with wall time.
// Every delay the retry policy takes routes through sleepCtx (injectable
// via Policy.Sleep), and the only nondeterministic value the package ever
// produces is the process-level jitter seed drawn here when a Policy leaves
// JitterSeed zero. Deterministic callers (tests, the chaos suite) set
// JitterSeed and inject a Sleep, and never touch this file's code paths.
// This file — and only this file — is allowlisted in cmd/determinism-lint
// for this package.
package resilience

import (
	"context"
	"sync"
	"time"
)

var (
	seedOnce sync.Once
	procSeed int64
)

// processSeed draws one wall-clock seed per process, so un-seeded policies
// across a fleet jitter differently (the whole point of jitter) while any
// single process still backs off reproducibly within a run.
func processSeed() int64 {
	seedOnce.Do(func() {
		procSeed = time.Now().UnixNano()
		if procSeed == 0 {
			procSeed = 1
		}
	})
	return procSeed
}

// Sleep waits d or until ctx ends, whichever is first. It is the sanctioned
// replacement for bare time.Sleep outside this package (the resilience
// static-analysis rule flags raw sleeps): callers get cancellation for free
// and tests can drive them through a context instead of wall time.
func Sleep(ctx context.Context, d time.Duration) error {
	return sleepCtx(ctx, d)
}

// sleepCtx waits d or until ctx ends, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// sleepFor is the injector's delay primitive for SlowRead faults.
func sleepFor(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}
