package merkle

import (
	"encoding/hex"
	"fmt"
	"testing"
	"testing/quick"
)

// RFC 6962 §2.1.3 test vectors: the example tree over the 7 leaves below.
var rfcLeaves = [][]byte{
	{},
	{0x00},
	{0x10},
	{0x20, 0x21},
	{0x30, 0x31},
	{0x40, 0x41, 0x42, 0x43},
	{0x50, 0x51, 0x52, 0x53, 0x54, 0x55, 0x56, 0x57},
	{0x60, 0x61, 0x62, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6a, 0x6b, 0x6c, 0x6d, 0x6e, 0x6f},
}

// Known roots for prefixes of the RFC test leaves (from RFC 9162 §2.1.5 /
// certificate-transparency-go test data).
var rfcRoots = map[int]string{
	1: "6e340b9cffb37a989ca544e6bb780a2c78901d3fb33738768511a30617afa01d",
	2: "fac54203e7cc696cf0dfcb42c92a1d9dbaf70ad9e621f4bd8d98662f00e3c125",
	3: "aeb6bcfe274b70a14fb067a5e5578264db0fa9b51af5e0ba159158f329e06e77",
	4: "d37ee418976dd95753c1c73862b9398fa2a2cf9b4ff0fdfe8b30cd95209614b7",
	5: "4e3bbb1f7b478dcfe71fb631631519a3bca12c9aefca1612bfce4c13a86264d4",
	6: "76e67dadbcdf1e10e1b74ddc608abd2f98dfb16fbce75277b5232a127f2087ef",
	7: "ddb89be403809e325750d3d263cd78929c2942b7942a34b77e122c9594a74c8c",
	8: "5dc9da79a70659a9ad559cb701ded9a2ab9d823aad2f4960cfe370eff4604328",
}

func TestEmptyRoot(t *testing.T) {
	want := "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
	if got := hexRoot(New().Root()); got != want {
		t.Errorf("empty root = %s, want %s", got, want)
	}
}

func TestRFCVectors(t *testing.T) {
	tr := New()
	for i, leaf := range rfcLeaves {
		tr.Append(leaf)
		want, ok := rfcRoots[i+1]
		if !ok {
			continue
		}
		if got := hexRoot(tr.Root()); got != want {
			t.Errorf("root at size %d = %s, want %s", i+1, got, want)
		}
	}
}

func TestRootAtHistorical(t *testing.T) {
	tr := New()
	for _, leaf := range rfcLeaves {
		tr.Append(leaf)
	}
	// Historical roots must still match after later appends.
	for n, want := range rfcRoots {
		if got := hexRoot(tr.RootAt(uint64(n))); got != want {
			t.Errorf("RootAt(%d) = %s, want %s", n, got, want)
		}
	}
}

func TestRootAtPanicsBeyondSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RootAt beyond size should panic")
		}
	}()
	New().RootAt(1)
}

func TestInclusionProofsAllSizes(t *testing.T) {
	tr := New()
	const N = 130
	for i := 0; i < N; i++ {
		tr.Append([]byte(fmt.Sprintf("leaf-%d", i)))
	}
	for n := uint64(1); n <= N; n += 7 {
		root := tr.RootAt(n)
		for i := uint64(0); i < n; i += 3 {
			proof, err := tr.InclusionProof(i, n)
			if err != nil {
				t.Fatalf("InclusionProof(%d,%d): %v", i, n, err)
			}
			lh, _ := tr.LeafHashAt(i)
			if !VerifyInclusion(lh, i, n, proof, root) {
				t.Fatalf("inclusion proof failed for leaf %d in tree %d", i, n)
			}
		}
	}
}

func TestInclusionProofRejectsTampering(t *testing.T) {
	tr := New()
	for i := 0; i < 10; i++ {
		tr.Append([]byte{byte(i)})
	}
	root := tr.Root()
	proof, _ := tr.InclusionProof(3, 10)
	lh, _ := tr.LeafHashAt(3)

	// Wrong leaf hash.
	if VerifyInclusion(LeafHash([]byte{99}), 3, 10, proof, root) {
		t.Error("verification must fail for a different leaf")
	}
	// Wrong index.
	if VerifyInclusion(lh, 4, 10, proof, root) {
		t.Error("verification must fail for the wrong index")
	}
	// Corrupted proof element.
	if len(proof) > 0 {
		bad := append([]Hash(nil), proof...)
		bad[0][0] ^= 0xff
		if VerifyInclusion(lh, 3, 10, bad, root) {
			t.Error("verification must fail for a corrupted proof")
		}
	}
	// Truncated proof.
	if VerifyInclusion(lh, 3, 10, proof[:len(proof)-1], root) {
		t.Error("verification must fail for a truncated proof")
	}
	// Extended proof.
	if VerifyInclusion(lh, 3, 10, append(append([]Hash(nil), proof...), Hash{}), root) {
		t.Error("verification must fail for an over-long proof")
	}
	// Index >= size.
	if VerifyInclusion(lh, 10, 10, proof, root) {
		t.Error("verification must fail for index == size")
	}
}

func TestInclusionProofErrors(t *testing.T) {
	tr := New()
	tr.Append([]byte("a"))
	if _, err := tr.InclusionProof(0, 5); err == nil {
		t.Error("proof for tree size beyond current size should fail")
	}
	if _, err := tr.InclusionProof(1, 1); err == nil {
		t.Error("proof for leaf index >= size should fail")
	}
	if _, err := tr.LeafHashAt(3); err == nil {
		t.Error("LeafHashAt out of range should fail")
	}
}

func TestConsistencyProofs(t *testing.T) {
	tr := New()
	const N = 100
	for i := 0; i < N; i++ {
		tr.Append([]byte(fmt.Sprintf("entry %d", i)))
	}
	for m := uint64(0); m <= N; m += 5 {
		for n := m; n <= N; n += 9 {
			proof, err := tr.ConsistencyProof(m, n)
			if err != nil {
				t.Fatalf("ConsistencyProof(%d,%d): %v", m, n, err)
			}
			if !VerifyConsistency(m, n, tr.RootAt(m), tr.RootAt(n), proof) {
				t.Fatalf("consistency proof failed for %d -> %d", m, n)
			}
		}
	}
}

func TestConsistencyRejectsForgery(t *testing.T) {
	tr := New()
	for i := 0; i < 20; i++ {
		tr.Append([]byte{byte(i)})
	}
	proof, _ := tr.ConsistencyProof(7, 20)
	r7, r20 := tr.RootAt(7), tr.RootAt(20)

	other := New()
	for i := 0; i < 7; i++ {
		other.Append([]byte{byte(100 + i)})
	}
	if VerifyConsistency(7, 20, other.Root(), r20, proof) {
		t.Error("consistency must fail for a different old root")
	}
	if VerifyConsistency(7, 20, r7, other.Root(), proof) {
		t.Error("consistency must fail for a different new root")
	}
	if len(proof) > 1 && VerifyConsistency(7, 20, r7, r20, proof[:1]) {
		t.Error("consistency must fail for a truncated proof")
	}
	if VerifyConsistency(21, 20, r7, r20, proof) {
		t.Error("consistency must fail when m > n")
	}
	if !VerifyConsistency(0, 20, Hash{}, r20, nil) {
		t.Error("empty tree is consistent with anything given an empty proof")
	}
	if VerifyConsistency(0, 20, Hash{}, r20, proof) {
		t.Error("m == 0 with a non-empty proof must fail")
	}
	if !VerifyConsistency(20, 20, r20, r20, nil) {
		t.Error("m == n with equal roots and empty proof must verify")
	}
}

func TestConsistencyProofErrors(t *testing.T) {
	tr := New()
	tr.Append([]byte("x"))
	if _, err := tr.ConsistencyProof(0, 9); err == nil {
		t.Error("consistency proof beyond size should fail")
	}
	if _, err := tr.ConsistencyProof(2, 1); err == nil {
		t.Error("consistency proof with m > n should fail")
	}
}

func TestZeroValueTreeUsable(t *testing.T) {
	var tr Tree
	tr.Append([]byte("a"))
	tr.Append([]byte("b"))
	if tr.Size() != 2 {
		t.Errorf("Size = %d, want 2", tr.Size())
	}
	proof, err := tr.InclusionProof(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	lh, _ := tr.LeafHashAt(0)
	if !VerifyInclusion(lh, 0, 2, proof, tr.Root()) {
		t.Error("zero-value tree proofs must verify")
	}
}

// Property: for random tree sizes and indices, generated inclusion proofs
// always verify and a flipped leaf never does.
func TestQuickInclusion(t *testing.T) {
	tr := New()
	const N = 64
	for i := 0; i < N; i++ {
		tr.Append([]byte{byte(i), byte(i >> 4)})
	}
	f := func(iRaw, nRaw uint16) bool {
		n := uint64(nRaw)%N + 1
		i := uint64(iRaw) % n
		proof, err := tr.InclusionProof(i, n)
		if err != nil {
			return false
		}
		lh, _ := tr.LeafHashAt(i)
		if !VerifyInclusion(lh, i, n, proof, tr.RootAt(n)) {
			return false
		}
		bad := lh
		bad[5] ^= 1
		return !VerifyInclusion(bad, i, n, proof, tr.RootAt(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: consistency proofs between random (m, n) pairs verify.
func TestQuickConsistency(t *testing.T) {
	tr := New()
	const N = 64
	for i := 0; i < N; i++ {
		tr.Append([]byte{byte(i * 3)})
	}
	f := func(mRaw, nRaw uint16) bool {
		n := uint64(nRaw)%N + 1
		m := uint64(mRaw) % (n + 1)
		proof, err := tr.ConsistencyProof(m, n)
		if err != nil {
			return false
		}
		return VerifyConsistency(m, n, tr.RootAt(m), tr.RootAt(n), proof)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAppend(b *testing.B) {
	tr := New()
	data := []byte("benchmark leaf entry data")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Append(data)
	}
}

func BenchmarkRoot1024(b *testing.B) {
	tr := New()
	for i := 0; i < 1024; i++ {
		tr.Append([]byte{byte(i), byte(i >> 8)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Root()
	}
}

func BenchmarkInclusionProof(b *testing.B) {
	tr := New()
	for i := 0; i < 4096; i++ {
		tr.Append([]byte{byte(i), byte(i >> 8)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.InclusionProof(uint64(i)%4096, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

func hexRoot(h Hash) string { return hex.EncodeToString(h[:]) }
