// Package merkle implements the RFC 6962 Merkle hash tree used by
// Certificate Transparency logs: leaf/node hashing with domain separation,
// root computation, audit (inclusion) proofs, and consistency proofs between
// tree sizes, together with their verifiers.
//
// The tree is append-only and stores leaf hashes; interior hashes are
// computed on demand with memoization of full subtrees so that appending N
// leaves and answering proofs is O(N log N) overall.
package merkle

import (
	"crypto/sha256"
	"errors"
	"fmt"
)

// HashSize is the size of tree hashes in bytes (SHA-256).
const HashSize = sha256.Size

// Hash is a node or root hash.
type Hash [HashSize]byte

// Domain-separation prefixes per RFC 6962 §2.1.
const (
	leafPrefix = 0x00
	nodePrefix = 0x01
)

// LeafHash computes the RFC 6962 leaf hash: SHA-256(0x00 || data).
func LeafHash(data []byte) Hash {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	h.Write(data)
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// NodeHash computes the RFC 6962 interior hash: SHA-256(0x01 || left || right).
func NodeHash(left, right Hash) Hash {
	h := sha256.New()
	h.Write([]byte{nodePrefix})
	h.Write(left[:])
	h.Write(right[:])
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// EmptyRoot is the root of the empty tree: SHA-256 of the empty string.
func EmptyRoot() Hash {
	return sha256.Sum256(nil)
}

// Tree is an append-only Merkle tree over opaque leaf data.
// The zero value is an empty tree ready to use.
type Tree struct {
	leaves []Hash
	// roots caches the hash of the full subtree covering leaves
	// [i*2^k, (i+1)*2^k) keyed by (k, i); only full subtrees are cached
	// because they are immutable once complete.
	cache map[cacheKey]Hash
}

type cacheKey struct {
	level uint
	index uint64
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{cache: make(map[cacheKey]Hash)}
}

// Size returns the number of leaves.
func (t *Tree) Size() uint64 {
	return uint64(len(t.leaves))
}

// Append adds a leaf (by its data) and returns its index.
func (t *Tree) Append(data []byte) uint64 {
	return t.AppendHash(LeafHash(data))
}

// AppendHash adds a precomputed leaf hash and returns its index.
func (t *Tree) AppendHash(h Hash) uint64 {
	if t.cache == nil {
		t.cache = make(map[cacheKey]Hash)
	}
	idx := uint64(len(t.leaves))
	t.leaves = append(t.leaves, h)
	return idx
}

// LeafHashAt returns the stored hash of leaf i.
func (t *Tree) LeafHashAt(i uint64) (Hash, error) {
	if i >= t.Size() {
		return Hash{}, fmt.Errorf("merkle: leaf index %d out of range (size %d)", i, t.Size())
	}
	return t.leaves[i], nil
}

// Root returns the current tree head (MTH of all leaves).
func (t *Tree) Root() Hash {
	return t.RootAt(t.Size())
}

// RootAt returns the tree head over the first n leaves. It panics if
// n exceeds the current size (programming error in callers that track size).
func (t *Tree) RootAt(n uint64) Hash {
	if n > t.Size() {
		panic(fmt.Sprintf("merkle: RootAt(%d) beyond size %d", n, t.Size()))
	}
	if n == 0 {
		return EmptyRoot()
	}
	return t.subtreeHash(0, n)
}

// subtreeHash computes MTH over leaves [lo, hi) per RFC 6962 §2.1:
// split at the largest power of two strictly less than the range size.
func (t *Tree) subtreeHash(lo, hi uint64) Hash {
	n := hi - lo
	if n == 1 {
		return t.leaves[lo]
	}
	// Full, aligned subtrees are immutable: cache them.
	var key cacheKey
	cacheable := false
	if n&(n-1) == 0 && lo%n == 0 {
		key = cacheKey{level: log2(n), index: lo / n}
		if h, ok := t.cache[key]; ok {
			return h
		}
		cacheable = true
	}
	k := largestPowerOfTwoBelow(n)
	h := NodeHash(t.subtreeHash(lo, lo+k), t.subtreeHash(lo+k, hi))
	if cacheable {
		t.cache[key] = h
	}
	return h
}

func largestPowerOfTwoBelow(n uint64) uint64 {
	k := uint64(1)
	for k*2 < n {
		k *= 2
	}
	return k
}

func log2(n uint64) uint {
	var l uint
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// Errors returned by proof construction.
var (
	ErrIndexOutOfRange = errors.New("merkle: index out of range")
	ErrBadTreeSize     = errors.New("merkle: invalid tree size")
)

// InclusionProof returns the audit path for leaf index i in the tree of the
// first n leaves (RFC 6962 §2.1.1).
func (t *Tree) InclusionProof(i, n uint64) ([]Hash, error) {
	if n > t.Size() {
		return nil, fmt.Errorf("%w: tree size %d > size %d", ErrBadTreeSize, n, t.Size())
	}
	if i >= n {
		return nil, fmt.Errorf("%w: leaf %d, tree size %d", ErrIndexOutOfRange, i, n)
	}
	return t.path(i, 0, n), nil
}

func (t *Tree) path(i, lo, hi uint64) []Hash {
	n := hi - lo
	if n == 1 {
		return nil
	}
	k := largestPowerOfTwoBelow(n)
	if i-lo < k {
		p := t.path(i, lo, lo+k)
		return append(p, t.subtreeHash(lo+k, hi))
	}
	p := t.path(i, lo+k, hi)
	return append(p, t.subtreeHash(lo, lo+k))
}

// VerifyInclusion checks an audit path: that leaf (with hash leafHash) at
// index i is included in the tree of size n with head root. The algorithm
// follows RFC 9162 §2.1.3.2.
func VerifyInclusion(leafHash Hash, i, n uint64, proof []Hash, root Hash) bool {
	if i >= n {
		return false
	}
	fn, sn := i, n-1
	r := leafHash
	for _, p := range proof {
		if sn == 0 {
			return false // proof longer than the path
		}
		if fn&1 == 1 || fn == sn {
			r = NodeHash(p, r)
			if fn&1 == 0 {
				// Right-border node: climb until fn is odd or exhausted.
				for fn&1 == 0 && fn != 0 {
					fn >>= 1
					sn >>= 1
				}
			}
		} else {
			r = NodeHash(r, p)
		}
		fn >>= 1
		sn >>= 1
	}
	return sn == 0 && r == root
}

// ConsistencyProof returns the RFC 6962 §2.1.2 consistency proof between the
// tree of the first m leaves and the tree of the first n leaves (m <= n).
func (t *Tree) ConsistencyProof(m, n uint64) ([]Hash, error) {
	if n > t.Size() {
		return nil, fmt.Errorf("%w: tree size %d > size %d", ErrBadTreeSize, n, t.Size())
	}
	if m > n {
		return nil, fmt.Errorf("%w: old size %d > new size %d", ErrBadTreeSize, m, n)
	}
	if m == 0 || m == n {
		return nil, nil
	}
	return t.subproof(m, 0, n, true), nil
}

func (t *Tree) subproof(m, lo, hi uint64, completeSubtree bool) []Hash {
	n := hi - lo
	if m == n {
		if completeSubtree {
			return nil
		}
		return []Hash{t.subtreeHash(lo, hi)}
	}
	k := largestPowerOfTwoBelow(n)
	if m <= k {
		p := t.subproof(m, lo, lo+k, completeSubtree)
		return append(p, t.subtreeHash(lo+k, hi))
	}
	p := t.subproof(m-k, lo+k, hi, false)
	return append(p, t.subtreeHash(lo, lo+k))
}

// VerifyConsistency checks that the tree with head root2 at size n is an
// append-only extension of the tree with head root1 at size m.
func VerifyConsistency(m, n uint64, root1, root2 Hash, proof []Hash) bool {
	switch {
	case m > n:
		return false
	case m == n:
		return len(proof) == 0 && root1 == root2
	case m == 0:
		// Any tree is consistent with the empty tree; RFC requires an
		// empty proof.
		return len(proof) == 0
	}
	// Implementation follows RFC 9162 §2.1.4.2 verification algorithm.
	if len(proof) == 0 {
		return false
	}
	node, last := m-1, n-1
	for node%2 == 1 {
		node /= 2
		last /= 2
	}
	p := proof
	var fr, sr Hash
	if node > 0 {
		fr, sr = p[0], p[0]
		p = p[1:]
	} else {
		fr, sr = root1, root1
	}
	for ; node > 0 || last > 0; node, last = node/2, last/2 {
		if node%2 == 1 {
			if len(p) == 0 {
				return false
			}
			fr = NodeHash(p[0], fr)
			sr = NodeHash(p[0], sr)
			p = p[1:]
		} else if node < last {
			if len(p) == 0 {
				return false
			}
			sr = NodeHash(sr, p[0])
			p = p[1:]
		}
	}
	return fr == root1 && sr == root2 && len(p) == 0
}
