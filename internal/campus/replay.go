package campus

import (
	"fmt"
	"io"
	"sort"
	"time"

	"certchains/internal/zeek"
)

// Replay expands observations into Zeek ssl.log / x509.log record streams in
// global timestamp order — the order a live Zeek worker writes them — so the
// output can drive the streaming ingest daemon like a real capture. The
// records themselves are exactly the ones the batch exporter
// (analysis.Write) produces for the same options: the connection expansion
// formulas are shared, only the file order differs (batch groups rows by
// observation; a live log interleaves them by time).
//
// Certificates sort ahead of connections at equal timestamps, matching
// Zeek's behavior of logging a handshake's x509 entries as the handshake
// completes; every fuid is therefore on disk before the first ssl row that
// references it.
//
// Replay itself never consults the wall clock: pacing is delegated to the
// Pace callback so library determinism is preserved and callers choose
// real-time, accelerated, or unpaced emission.
type ReplayOptions struct {
	// MaxConnsPerObservation caps the ssl.log rows emitted per observation;
	// 0 means no cap. Ratios are preserved under sampling exactly as in the
	// batch exporter.
	MaxConnsPerObservation int64
	// JSON selects ND-JSON output instead of TSV.
	JSON bool
	// BatchRecords flushes the writers every N records (default 64), so a
	// tailing reader sees progress instead of one buffered burst.
	BatchRecords int
	// Pace, when set, is called with each record's log timestamp before the
	// record is written. A live monitor sleeps here to convert simulated
	// time into wall time; returning an error aborts the replay.
	Pace func(ts time.Time) error
}

// replayRecord is one log row tagged for the global sort.
type replayRecord struct {
	ts  time.Time
	ord int // generation order: stable tiebreak
	x   *zeek.X509Record
	s   *zeek.SSLRecord
}

// replaySink pairs the two format writers with their flush hooks.
type replaySink struct {
	writeSSL  func(*zeek.SSLRecord) error
	writeX509 func(*zeek.X509Record) error
	flush     func() error
	close     func(at time.Time) error
}

func newReplaySink(json bool, ssl, x509 io.Writer, open time.Time) *replaySink {
	if json {
		sslW := zeek.NewJSONSSLWriter(ssl)
		x509W := zeek.NewJSONX509Writer(x509)
		return &replaySink{
			writeSSL:  sslW.Write,
			writeX509: x509W.Write,
			flush: func() error {
				if err := sslW.Flush(); err != nil {
					return err
				}
				return x509W.Flush()
			},
			close: func(time.Time) error {
				if err := sslW.Close(); err != nil {
					return err
				}
				return x509W.Close()
			},
		}
	}
	sslW := zeek.NewSSLWriter(ssl, open)
	x509W := zeek.NewX509Writer(x509, open)
	return &replaySink{
		writeSSL:  sslW.Write,
		writeX509: x509W.Write,
		flush: func() error {
			if err := sslW.Flush(); err != nil {
				return err
			}
			return x509W.Flush()
		},
		close: func(at time.Time) error {
			if err := sslW.Close(at); err != nil {
				return err
			}
			return x509W.Close(at)
		},
	}
}

// Replay writes the observation set as time-ordered live logs. See
// ReplayOptions for the contract.
func Replay(observations []*Observation, ssl, x509 io.Writer, opts ReplayOptions) error {
	if opts.BatchRecords <= 0 {
		opts.BatchRecords = 64
	}
	var recs []*replayRecord
	uid := 0
	ord := 0
	add := func(r *replayRecord) {
		r.ord = ord
		ord++
		recs = append(recs, r)
	}

	// A certificate is logged the first time any handshake delivers it, so
	// its record must carry the earliest First among ALL observations whose
	// chain contains it — observation slice order is not time order.
	certFirst := make(map[string]time.Time)
	for _, o := range observations {
		for _, m := range o.Chain {
			if t, ok := certFirst[string(m.FP)]; !ok || o.First.Before(t) {
				certFirst[string(m.FP)] = o.First
			}
		}
	}

	seenCert := make(map[string]bool)
	for _, o := range observations {
		fuids := make([]string, len(o.Chain))
		for i, m := range o.Chain {
			fuids[i] = string(m.FP)
			if !seenCert[fuids[i]] {
				seenCert[fuids[i]] = true
				first := certFirst[fuids[i]]
				add(&replayRecord{ts: first, x: zeek.FromMeta(m, first)})
			}
		}
		conns := o.Conns
		if opts.MaxConnsPerObservation > 0 && conns > opts.MaxConnsPerObservation {
			conns = opts.MaxConnsPerObservation
		}
		span := o.Last.Sub(o.First)
		for i := int64(0); i < conns; i++ {
			uid++
			ts := o.First
			if conns > 1 && span > 0 {
				ts = o.First.Add(time.Duration(i * int64(span) / (conns - 1)))
			}
			established := i*o.Conns/conns < o.Established
			noSNI := o.Conns > 0 && i*o.Conns/conns >= o.Conns-o.NoSNI
			sni := o.Domain
			if noSNI {
				sni = ""
			}
			clientIP := "10.0.0.1"
			if len(o.ClientIPs) > 0 {
				clientIP = o.ClientIPs[int(i)%len(o.ClientIPs)]
			}
			version := "TLSv12"
			if o.TLS13 {
				version = "TLSv13"
			}
			add(&replayRecord{ts: ts, s: &zeek.SSLRecord{
				TS:             ts,
				UID:            fmt.Sprintf("C%08x", uid),
				OrigH:          clientIP,
				OrigP:          32768 + int(i%28000),
				RespH:          o.ServerIP,
				RespP:          o.Port,
				Version:        version,
				Cipher:         "TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256",
				ServerName:     sni,
				Established:    established,
				CertChainFUIDs: fuids,
			}})
		}
	}

	sort.SliceStable(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if !a.ts.Equal(b.ts) {
			return a.ts.Before(b.ts)
		}
		// Certificates land before connections at the same instant.
		if (a.x != nil) != (b.x != nil) {
			return a.x != nil
		}
		return a.ord < b.ord
	})

	var open, closeAt time.Time
	if len(recs) > 0 {
		open, closeAt = recs[0].ts, recs[len(recs)-1].ts
	}
	sink := newReplaySink(opts.JSON, ssl, x509, open)
	for i, r := range recs {
		if opts.Pace != nil {
			if err := opts.Pace(r.ts); err != nil {
				return err
			}
		}
		var err error
		if r.x != nil {
			err = sink.writeX509(r.x)
		} else {
			err = sink.writeSSL(r.s)
		}
		if err != nil {
			return fmt.Errorf("campus: replay record: %w", err)
		}
		if (i+1)%opts.BatchRecords == 0 {
			if err := sink.flush(); err != nil {
				return err
			}
		}
	}
	return sink.close(closeAt)
}
