// Replay emitter tests live in an external package so they can compare the
// live-ordered streams against the batch exporter/loader in
// internal/analysis (which imports campus).
package campus_test

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"certchains/internal/analysis"
	"certchains/internal/campus"
	"certchains/internal/zeek"
)

func replayScenario(t *testing.T) *campus.Scenario {
	t.Helper()
	cfg := campus.DefaultConfig()
	cfg.Seed = 7
	cfg.Scale = 0.002
	s, err := campus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func readAllRecords(t *testing.T, data []byte) []zeek.Record {
	t.Helper()
	recs, err := zeek.NewReader(bytes.NewReader(data)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// obsKey canonicalizes a loaded observation for multiset comparison.
func obsKey(o *campus.Observation) string {
	return strings.Join([]string{
		o.Chain.Key(), o.ServerIP, fmt.Sprint(o.Port), o.Domain,
		fmt.Sprint(o.TLS13), fmt.Sprint(o.Conns), fmt.Sprint(o.Established),
		fmt.Sprint(o.NoSNI), o.First.UTC().String(), o.Last.UTC().String(),
		strings.Join(o.ClientIPs, ","),
	}, "§")
}

func sortedKeys(obs []*campus.Observation) []string {
	keys := make([]string, len(obs))
	for i, o := range obs {
		keys[i] = obsKey(o)
	}
	sort.Strings(keys)
	return keys
}

func TestReplayTimeOrderedAndJoinable(t *testing.T) {
	s := replayScenario(t)
	var ssl, x509 bytes.Buffer
	var paced []time.Time
	err := campus.Replay(s.Observations, &ssl, &x509, campus.ReplayOptions{
		MaxConnsPerObservation: 4,
		Pace:                   func(ts time.Time) error { paced = append(paced, ts); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}

	// Pace sees every record, in non-decreasing log time.
	for i := 1; i < len(paced); i++ {
		if paced[i].Before(paced[i-1]) {
			t.Fatalf("pace timestamps regress at %d: %v < %v", i, paced[i], paced[i-1])
		}
	}

	// Both files are timestamp-ordered, and every referenced certificate was
	// logged at or before its connection — the watermark joiner's invariant.
	certTS := make(map[string]time.Time)
	var prev time.Time
	for i, rec := range readAllRecords(t, x509.Bytes()) {
		ts, _ := rec.GetTime("ts")
		if i > 0 && ts.Before(prev) {
			t.Fatalf("x509.log regresses at row %d", i)
		}
		prev = ts
		x, err := zeek.ParseX509Record(rec)
		if err != nil {
			t.Fatal(err)
		}
		if _, dup := certTS[x.ID]; !dup {
			certTS[x.ID] = ts
		}
	}
	sslRecs := readAllRecords(t, ssl.Bytes())
	prev = time.Time{}
	for i, rec := range sslRecs {
		ts, _ := rec.GetTime("ts")
		if i > 0 && ts.Before(prev) {
			t.Fatalf("ssl.log regresses at row %d", i)
		}
		prev = ts
		r, err := zeek.ParseSSLRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		for _, fuid := range r.CertChainFUIDs {
			cts, ok := certTS[fuid]
			if !ok {
				t.Fatalf("row %d references unlogged certificate %s", i, fuid)
			}
			if cts.After(ts) {
				t.Fatalf("certificate %s logged after its connection (%v > %v)", fuid, cts, ts)
			}
		}
	}

	// The incremental joiner over the merged time-ordered stream joins every
	// connection: no orphans in a clean replay.
	x509Recs := readAllRecords(t, x509.Bytes())
	var joined int64
	j := zeek.NewIncrementalJoiner(0, 0, func(c *zeek.Connection) error { joined++; return nil })
	xi := 0
	for _, rec := range sslRecs {
		ts, _ := rec.GetTime("ts")
		for xi < len(x509Recs) {
			xts, _ := x509Recs[xi].GetTime("ts")
			if xts.After(ts) {
				break
			}
			if err := j.AddX509Record(x509Recs[xi]); err != nil {
				t.Fatal(err)
			}
			xi++
		}
		if err := j.AddSSLRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	for ; xi < len(x509Recs); xi++ {
		if err := j.AddX509Record(x509Recs[xi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Finish(); err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st.Orphans != 0 || joined != int64(len(sslRecs)) {
		t.Fatalf("joiner stats %+v, joined %d of %d", st, joined, len(sslRecs))
	}
}

// TestReplayMatchesBatchExporter: the live-ordered streams must aggregate
// back to exactly the observations the batch exporter's streams do — same
// rows, different file order.
func TestReplayMatchesBatchExporter(t *testing.T) {
	s := replayScenario(t)
	const maxConns = 4

	var lssl, lx509 bytes.Buffer
	if err := campus.Replay(s.Observations, &lssl, &lx509, campus.ReplayOptions{MaxConnsPerObservation: maxConns}); err != nil {
		t.Fatal(err)
	}
	var bssl, bx509 bytes.Buffer
	if err := analysis.Write(s.Observations, &bssl, &bx509, analysis.WriteOptions{MaxConnsPerObservation: maxConns}); err != nil {
		t.Fatal(err)
	}

	live, err := analysis.Load(bytes.NewReader(lssl.Bytes()), bytes.NewReader(lx509.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := analysis.Load(bytes.NewReader(bssl.Bytes()), bytes.NewReader(bx509.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(live) == 0 {
		t.Fatal("replay produced no observations")
	}
	if !reflect.DeepEqual(sortedKeys(live), sortedKeys(batch)) {
		t.Errorf("replay aggregates differ from batch exporter (%d vs %d observations)", len(live), len(batch))
	}
}

func TestReplayJSONFormat(t *testing.T) {
	s := replayScenario(t)
	var jssl, jx509, tssl, tx509 bytes.Buffer
	if err := campus.Replay(s.Observations, &jssl, &jx509, campus.ReplayOptions{MaxConnsPerObservation: 3, JSON: true}); err != nil {
		t.Fatal(err)
	}
	if err := campus.Replay(s.Observations, &tssl, &tx509, campus.ReplayOptions{MaxConnsPerObservation: 3}); err != nil {
		t.Fatal(err)
	}
	jobs, err := analysis.LoadFormat(analysis.FormatJSON, bytes.NewReader(jssl.Bytes()), bytes.NewReader(jx509.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	tobs, err := analysis.Load(bytes.NewReader(tssl.Bytes()), bytes.NewReader(tx509.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sortedKeys(jobs), sortedKeys(tobs)) {
		t.Error("JSON replay aggregates differ from TSV replay")
	}
}
