package campus

import (
	"fmt"
	"time"

	"certchains/internal/certmodel"
	"certchains/internal/chain"
	"certchains/internal/dn"
)

// Hybrid population absolutes (Tables 3, 6, 7 — these are structural
// constants of the paper, not scaled quantities).
const (
	hybridCompleteNonPubToPub = 26 // 16 government + 10 corporate (Table 6)
	hybridCompleteGovernment  = 16
	hybridCompletePubToPrv    = 10
	hybridContainsComplete    = 70
	hybridContainsFakeLE      = 14
	hybridNoPath              = 215

	hybridNoPathSelfSignedMismatch = 108
	hybridNoPathSelfSignedValidSub = 13
	hybridNoPathAllMismatched      = 61
	hybridNoPathPartial            = 27
	hybridNoPathRootAppended       = 5
	hybridNoPathRootMismatch       = 1

	// Connections: 38,085 on no-path chains, the rest of 78,260 elsewhere.
	hybridNoPathConns  = 38085
	hybridRestConns    = paperHybridConns - hybridNoPathConns
	hybridNoPathIPs    = 4987
	hybridServersMulti = 19 // servers presenting multiple distinct chains

	hybridEstComplete = 0.9756
	hybridEstContains = 0.9204
	hybridEstNoPath   = 0.5742
)

// generateHybrid emits exactly 321 hybrid chains with the paper's taxonomy.
func (s *Scenario) generateHybrid() {
	popAll := s.ipPool.take(paperHybridClientIPs)
	popNoPath := s.pickClientIPs(popAll, hybridNoPathIPs)

	nRest := hybridCompleteNonPubToPub + hybridCompletePubToPrv + hybridContainsComplete
	restConns := s.split(hybridRestConns, nRest)
	noPathConns := s.split(hybridNoPathConns, hybridNoPath)
	restIdx, noPathIdx := 0, 0
	emit := func(ch certmodel.Chain, domain string, est float64, noPath bool) *Observation {
		var conns int64
		var pop []string
		if noPath {
			conns = noPathConns[noPathIdx]
			noPathIdx++
			pop = popNoPath
		} else {
			conns = restConns[restIdx]
			restIdx++
			pop = popAll
		}
		first, last := s.window()
		o := &Observation{
			Chain:       ch,
			Category:    chain.Hybrid,
			ServerIP:    s.serverIP(),
			Port:        s.hybridPort(),
			Domain:      domain,
			Conns:       conns,
			Established: s.establishSplit(conns, est),
			ClientIPs:   s.pickClientIPs(pop, 1+s.rng.IntN(40)),
			First:       first,
			Last:        last,
		}
		s.Observations = append(s.Observations, o)
		s.hybridServers = append(s.hybridServers, o)
		return o
	}

	s.genHybridCompleteNonPubToPub(emit)
	s.genHybridCompletePubToPrv(emit)
	s.genHybridContains(emit)
	s.genHybridNoPath(emit)

	// 19 servers present multiple distinct hybrid chains: collapse pairs
	// onto shared server endpoints.
	for i := 0; i < hybridServersMulti; i++ {
		a := s.hybridServers[2*i]
		b := s.hybridServers[2*i+1]
		b.ServerIP = a.ServerIP
		b.Domain = a.Domain
	}
}

// hybridPort follows Table 4: 97.21% on 443.
var hybridPorts = weightedPorts{
	{443, 9721}, {8443, 136}, {8088, 122}, {25, 18}, {9191, 1},
}

func (s *Scenario) hybridPort() int {
	return hybridPorts.pick(s)
}

// genHybridCompleteNonPubToPub builds the 26 Table 6 chains: a non-public
// signing CA, itself certified by a public issuer, anchored to a public
// root; the leaves are CT-logged (§4.2 compliance finding). 3 carry expired
// leaves, the worst by more than five years.
func (s *Scenario) genHybridCompleteNonPubToPub(emit func(certmodel.Chain, string, float64, bool) *Observation) {
	type entity struct {
		signingCA dn.DN
		domain    string
		country   string
	}
	entities := make([]entity, 0, hybridCompleteNonPubToPub)
	// Government deployments (Korea, Brazil, USA — Table 6).
	govDefs := []struct{ ca, dom, c string }{
		{"Veterans Affairs CA B3", "portal.va.example.gov", "US"},
		{"GPKI Gov Korea CA", "minwon.korea.example.kr", "KR"},
		{"ICP-Brasil AC Final", "servicos.iti.example.br", "BR"},
	}
	for i := 0; i < hybridCompleteGovernment; i++ {
		d := govDefs[i%len(govDefs)]
		entities = append(entities, entity{
			signingCA: dnFor(fmt.Sprintf("%s %d", d.ca, i+1), "Government", d.c),
			domain:    fmt.Sprintf("svc%d.%s", i, d.dom),
			country:   d.c,
		})
	}
	// Corporate deployments (Symantec, SignKorea and others).
	corpDefs := []string{"Symantec Private SSL SHA1 CA", "SignKorea Private CA", "Corporate Private CA"}
	for i := hybridCompleteGovernment; i < hybridCompleteNonPubToPub; i++ {
		d := corpDefs[i%len(corpDefs)]
		entities = append(entities, entity{
			signingCA: dnFor(fmt.Sprintf("%s %d", d, i), "Enterprise", "US"),
			domain:    fmt.Sprintf("private%d.%s", i, s.randDomain()),
			country:   "US",
		})
	}

	for i, e := range entities {
		pub := s.pickPublicCA()
		iss := pub.issuing[0]
		// The signing CA's certificate is issued by the public program
		// (so it is classified public-DB issued) while the leaf it signs
		// is non-public-DB issued (the signing CA is in no store).
		signingCert := s.pki.mkCert(iss.Cert.Subject, e.signingCA, withBC(certmodel.BCTrue), withValidity(6*365*24*time.Hour))
		var leafOpts []certOpt
		leafOpts = append(leafOpts, withBC(certmodel.BCFalse), withSANs(e.domain))
		switch i {
		case 3: // expired > 5 years
			leafOpts = append(leafOpts, withBackdate(6*365*24*time.Hour), withValidity(365*24*time.Hour))
		case 7, 11: // mildly expired
			leafOpts = append(leafOpts, withBackdate(400*24*time.Hour), withValidity(365*24*time.Hour))
		default:
			leafOpts = append(leafOpts, withValidity(2*365*24*time.Hour))
		}
		leaf := s.pki.mkCert(e.signingCA, dnFor(e.domain, "", e.country), leafOpts...)
		ch := certmodel.Chain{leaf, signingCert, iss.Cert}
		// §4.2: all 26 anchored non-public leaves are properly CT-logged.
		s.CT.AddChain(ch, s.Config.Start.AddDate(0, 0, -30))
		emit(ch, e.domain, hybridEstComplete, false)
	}
}

// genHybridCompletePubToPrv builds the 10 Scalyr/Canal+-pattern chains
// (Appendix F.1): public leaf and two intermediates followed by a
// non-public certificate whose subject matches the preceding issuer.
func (s *Scenario) genHybridCompletePubToPrv(emit func(certmodel.Chain, string, float64, bool) *Observation) {
	backends := []string{"app.scalyr.example.com", "backend.canal-plus.example.com"}
	for i := 0; i < hybridCompletePubToPrv; i++ {
		pub := s.pickPublicCA()
		iss := pub.issuing[0]
		domain := fmt.Sprintf("node%d.%s", i, backends[i%len(backends)])
		leaf := iss.leaf(dnFor(domain, "", ""), withSANs(domain))
		// The private tail: subject equals the public root's subject so
		// the issuer–subject walk stays matched, but its own issuer is the
		// organization itself.
		tail := s.pki.mkCert(
			dnFor("Scalyr Internal CA", "Scalyr", "US"),
			pub.root.Cert.Subject,
			withBC(certmodel.BCTrue), withValidity(5*365*24*time.Hour))
		ch := certmodel.Chain{leaf, iss.Cert, pub.root.Cert, tail}
		s.CT.AddChain(ch, s.randTime())
		emit(ch, domain, 0.9849, false)
	}
}

// genHybridContains builds the 70 contains-complete chains: 14 Fake LE
// staging placeholders, plus corporate/append misconfigurations (HP
// "tester", Athenz, extra roots, leaf-first chains) per Appendix F.2.
func (s *Scenario) genHybridContains(emit func(certmodel.Chain, string, float64, bool) *Observation) {
	le := s.publicCAs[0] // the Lets Encrypt analog
	fakeLE := s.pki.mkCert(
		dnFor("Fake LE Root X1", "", ""),
		dnFor("Fake LE Intermediate X1", "", ""),
		withBC(certmodel.BCTrue), withValidity(5*365*24*time.Hour))

	for i := 0; i < hybridContainsComplete; i++ {
		domain := fmt.Sprintf("host%d.%s", i, s.randDomain())
		base, ca := s.issuePublicChain(domain, true)
		var ch certmodel.Chain
		switch {
		case i < hybridContainsFakeLE:
			// Staging placeholder appended after a valid Lets Encrypt
			// path (the --test-cert leak).
			iss := le.issuing[i%len(le.issuing)]
			leaf := iss.leaf(dnFor(domain, "", ""), withSANs(domain))
			ch = certmodel.Chain{leaf, iss.Cert, le.root.Cert, fakeLE}
		case i < 34:
			// Self-signed corporate cert appended (HP tester pattern).
			tester := s.pki.mkCert(dnFor("tester", "", ""), dnFor("tester", "", ""))
			ch = append(base, tester)
		case i < 48:
			// Athenz service-auth cert appended.
			athenz := s.pki.mkCert(
				dnFor("Athenz Self Signed CA", "Athenz", "US"),
				dnFor("Athenz Self Signed CA", "Athenz", "US"))
			ch = append(base, athenz)
		case i < 60:
			// Leaf-first: an unrelated non-public leaf precedes the
			// complete matched path.
			extra := s.pki.mkCert(dnFor("Old Internal CA", "", ""), dnFor("legacy."+domain, "", ""), withBC(certmodel.BCFalse))
			ch = append(certmodel.Chain{extra}, base...)
		default:
			// Non-public root plus a second public root appended.
			privRoot := s.pki.mkCert(dnFor("Branch Office Root", "", ""), dnFor("Branch Office Root", "", ""))
			other := s.publicCAs[(s.indexOfCA(ca)+1)%len(s.publicCAs)]
			ch = append(base, privRoot, other.root.Cert)
		}
		s.CT.AddChain(ch, s.randTime())
		emit(ch, domain, hybridEstContains, false)
	}
}

func (s *Scenario) indexOfCA(ca *publicCA) int {
	for i, c := range s.publicCAs {
		if c == ca {
			return i
		}
	}
	return 0
}

// localhostDN is the recurring self-signed leaf DN of Appendix F.3.
func localhostDN() dn.DN {
	return dn.FromMap(
		"EMAILADDRESS", "webmaster@localhost",
		"CN", "localhost",
		"OU", "none",
		"O", "none",
		"L", "Sometown",
		"ST", "Someprovince",
		"C", "US",
	)
}

// mkCAChainTail fabricates a matched run of k CA certificates (child
// first): every issuer–subject pair inside the run matches, every member is
// CA=TRUE (so the run can never be a complete matched path), and the topmost
// member is issued by a public program so the surrounding chain classifies
// as hybrid.
func (s *Scenario) mkCAChainTail(k int) certmodel.Chain {
	pub := s.pickPublicCA()
	org := s.randDomain()
	names := make([]dn.DN, k+1)
	for i := 0; i < k; i++ {
		names[i] = dnFor(fmt.Sprintf("%s Tier %d CA", org, k-i), org, "US")
	}
	names[k] = pub.issuing[0].Cert.Subject // issuer of the topmost member
	out := make(certmodel.Chain, k)
	for i := 0; i < k; i++ {
		out[i] = s.pki.mkCert(names[i+1], names[i], withBC(certmodel.BCTrue))
	}
	return out
}

// genHybridNoPath builds the 215 Table 7 chains. Within the 215, 56 chains
// carry a public-DB leaf without its issuing intermediate (the §4.2
// sub-finding): 35 inside the all-mismatched group and 21 inside the
// partial group. Tail lengths are calibrated so the mismatch-ratio
// distribution spans 0.1–1.0 with ≈56.74% at or above 0.5 (Figure 6).
func (s *Scenario) genHybridNoPath(emit func(certmodel.Chain, string, float64, bool) *Observation) {
	// --- 108 self-signed non-public leaf + mismatches; 100 use the
	// localhost DN verbatim.
	for i := 0; i < hybridNoPathSelfSignedMismatch; i++ {
		var leaf *certmodel.Meta
		if i < 100 {
			d := localhostDN()
			leaf = s.pki.mkCert(d, d)
		} else {
			d := dnFor("selfhost"+fmt.Sprint(i)+".corp", "", "")
			leaf = s.pki.mkCert(d, d)
		}
		domain := fmt.Sprintf("nopath%d.%s", i, s.randDomain())
		// The leaf link always mismatches and a stray certificate always
		// terminates the chain (so the remainder is never a fully valid
		// sub-chain — that is the separate 13-chain category). The ratio
		// is 2/(k+1): 15 chains land at >= 0.5, 93 below, down to 0.1.
		var k int
		switch {
		case i < 10:
			k = 1 // ratio 1.0
		case i < 15:
			k = 3 // ratio 0.5
		case i < 40:
			k = 4 + s.rng.IntN(2) // 0.40 or 0.33
		case i < 70:
			k = 6 + s.rng.IntN(4) // 0.29 .. 0.20
		case i < 100:
			k = 10 + s.rng.IntN(6) // 0.18 .. 0.13
		default:
			k = 17 + s.rng.IntN(6) // 0.11 .. 0.09, very long chains (Fig 1)
		}
		ch := append(certmodel.Chain{leaf}, s.mkCAChainTail(k)...)
		stray := s.pki.mkCert(dnFor("Stray Issuer", "", ""), dnFor("stray.dev", "", ""))
		ch = append(ch, stray)
		emit(ch, domain, hybridEstNoPath, true)
	}

	// --- 13 self-signed cert replacing the leaf of a valid sub-chain.
	for i := 0; i < hybridNoPathSelfSignedValidSub; i++ {
		d := dnFor(fmt.Sprintf("replaced%d.example", i), "", "")
		leaf := s.pki.mkCert(d, d)
		domain := fmt.Sprintf("replaced%d.%s", i, s.randDomain())
		pub, _ := s.issuePublicChain(domain, true)
		ch := append(certmodel.Chain{leaf}, pub[1:]...) // intermediate + root, fully matched
		emit(ch, domain, hybridEstNoPath, true)
	}

	// --- 61 all-mismatched; 35 carry a public leaf missing its issuer.
	for i := 0; i < hybridNoPathAllMismatched; i++ {
		domain := fmt.Sprintf("allmis%d.%s", i, s.randDomain())
		var head *certmodel.Meta
		if i < 35 {
			pub, _ := s.issuePublicChain(domain, false)
			head = pub[0] // public leaf, issuer deliberately not delivered
		} else {
			head = s.pki.mkCert(dnFor("Lost CA "+fmt.Sprint(i), "", ""), dnFor(domain, "", ""), withBC(certmodel.BCFalse))
		}
		// junk1 is issued by a public root so non-public heads still yield
		// a hybrid chain; its links mismatch on both sides.
		pubRoot := s.pickPublicCA().root
		junk1 := s.pki.mkCert(pubRoot.Cert.Subject, dnFor("Junk CA B", "", ""), withBC(certmodel.BCTrue))
		ch := certmodel.Chain{head, junk1}
		// Public-headed chains need a non-public member to stay hybrid;
		// non-public-headed ones get the extra junk half the time.
		if i < 35 || s.rng.Float64() < 0.5 {
			junk2 := s.pki.mkCert(dnFor("Junk Root C", "", ""), dnFor("Junk CA D", "", ""), withBC(certmodel.BCTrue))
			ch = append(ch, junk2)
		}
		emit(ch, domain, hybridEstNoPath, true)
	}

	// --- 27 partial; 21 carry a public leaf missing its issuer.
	for i := 0; i < hybridNoPathPartial; i++ {
		domain := fmt.Sprintf("partial%d.%s", i, s.randDomain())
		var head *certmodel.Meta
		if i < 21 {
			pub, _ := s.issuePublicChain(domain, false)
			head = pub[0]
		} else {
			head = s.pki.mkCert(dnFor("Detached CA", "", ""), dnFor(domain, "", ""), withBC(certmodel.BCFalse))
		}
		// A matched CA pair that does not connect to the head; the top is
		// issued by a public root to keep the chain hybrid.
		org := s.randDomain()
		pubRoot := s.pickPublicCA().root
		mid := s.pki.mkCert(dnFor(org+" Root", org, "US"), dnFor(org+" CA", org, "US"), withBC(certmodel.BCTrue))
		top := s.pki.mkCert(pubRoot.Cert.Subject, dnFor(org+" Root", org, "US"), withBC(certmodel.BCTrue))
		ch := certmodel.Chain{head, mid, top}
		emit(ch, domain, hybridEstNoPath, true)
	}

	// --- 5 non-public root appended to a truncated public sub-chain.
	for i := 0; i < hybridNoPathRootAppended; i++ {
		domain := fmt.Sprintf("trunc%d.%s", i, s.randDomain())
		pub, _ := s.issuePublicChain(domain, true)
		sub := pub[1:] // drop the leaf: intermediate + root, matched
		d := dnFor(fmt.Sprintf("Appliance Root %d", i), "", "")
		privRoot := s.pki.mkCert(d, d)
		ch := append(sub.Clone(), privRoot)
		emit(ch, domain, hybridEstNoPath, true)
	}

	// --- 1 non-public root amid mismatches. A public-issued CA in the
	// middle keeps the chain hybrid; every link mismatches and the tail is
	// a non-public self-signed root.
	{
		domain := "oddball." + s.randDomain()
		head := s.pki.mkCert(dnFor("Unrelated CA", "", ""), dnFor(domain, "", ""), withBC(certmodel.BCFalse))
		pubRoot := s.pickPublicCA().root
		mid := s.pki.mkCert(pubRoot.Cert.Subject, dnFor("Orphaned Issuing CA", "", ""), withBC(certmodel.BCTrue))
		d := dnFor("Lone Private Root", "", "")
		privRoot := s.pki.mkCert(d, d)
		emit(certmodel.Chain{head, mid, privRoot}, domain, hybridEstNoPath, true)
	}
}

var _ = time.Second
