package campus

import (
	"fmt"
	"time"

	"certchains/internal/certmodel"
	"certchains/internal/chain"
	"certchains/internal/dn"
	"certchains/internal/trustdb"
)

// publicCA describes one synthetic public certificate authority program.
type publicCA struct {
	name    string
	root    *metaCA
	issuing []*metaCA
	// weight is the relative share of public-DB-only chains it issues.
	weight int
}

// The synthetic public CA programs. "Lets Encrypt" analog is deliberately
// prominent: the §5 migration target.
var publicCADefs = []struct {
	org     string
	root    string
	issuing []string
	country string
	weight  int
	stores  []string
}{
	{"Lets Encrypt", "ISRG Root X1", []string{"R3", "E1"}, "US", 40,
		[]string{trustdb.StoreMozilla, trustdb.StoreApple, trustdb.StoreMicrosoft}},
	{"DigiCert Inc", "DigiCert Global Root CA", []string{"DigiCert TLS RSA SHA256 2020 CA1", "DigiCert SHA2 Secure Server CA"}, "US", 22,
		[]string{trustdb.StoreMozilla, trustdb.StoreApple, trustdb.StoreMicrosoft}},
	{"Sectigo Limited", "AAA Certificate Services", []string{"Sectigo RSA Domain Validation Secure Server CA"}, "GB", 14,
		[]string{trustdb.StoreMozilla, trustdb.StoreApple, trustdb.StoreMicrosoft}},
	{"GoDaddy.com, Inc.", "Go Daddy Root Certificate Authority - G2", []string{"Go Daddy Secure Certificate Authority - G2"}, "US", 8,
		[]string{trustdb.StoreMozilla, trustdb.StoreMicrosoft}},
	{"GlobalSign", "GlobalSign Root CA", []string{"GlobalSign RSA OV SSL CA 2018"}, "BE", 8,
		[]string{trustdb.StoreMozilla, trustdb.StoreApple}},
	{"Amazon", "Amazon Root CA 1", []string{"Amazon RSA 2048 M01"}, "US", 8,
		[]string{trustdb.StoreMozilla, trustdb.StoreApple, trustdb.StoreMicrosoft}},
}

// buildPublicPKI mints the public hierarchy, fills the root stores and
// CCADB, and registers cross-signing relationships.
func (s *Scenario) buildPublicPKI() {
	for _, def := range publicCADefs {
		root := s.pki.newRootCA(dnFor(def.root, def.org, def.country))
		ca := &publicCA{name: def.org, root: root, weight: def.weight}
		for _, st := range def.stores {
			s.DB.AddRoot(st, root.Cert)
		}
		for _, issName := range def.issuing {
			iss := root.intermediate(dnFor(issName, def.org, def.country))
			ca.issuing = append(ca.issuing, iss)
			if err := s.DB.AddCCADBIntermediate(iss.Cert); err != nil {
				// Programming error: the intermediate was just minted
				// under a stored root.
				panic(fmt.Sprintf("campus: CCADB rejection: %v", err))
			}
		}
		s.publicCAs = append(s.publicCAs, ca)
	}

	// One cross-signing relationship mirroring the Sectigo/AAA disclosure
	// the paper consults: leaves naming the Sectigo issuing CA may chain to
	// the AAA root's alternate subject.
	sectigo := s.publicCAs[2]
	alt := dnFor("USERTrust RSA Certification Authority", "The USERTRUST Network", "US")
	altRoot := s.pki.newRootCA(alt)
	s.DB.AddRoot(trustdb.StoreMozilla, altRoot.Cert)
	s.Classifier.CrossSigns.Add(sectigo.issuing[0].Cert.Subject, alt)
	s.crossRoot = altRoot
}

// pickPublicCA selects a public CA by configured weight.
func (s *Scenario) pickPublicCA() *publicCA {
	total := 0
	for _, ca := range s.publicCAs {
		total += ca.weight
	}
	n := s.rng.IntN(total)
	for _, ca := range s.publicCAs {
		n -= ca.weight
		if n < 0 {
			return ca
		}
	}
	return s.publicCAs[len(s.publicCAs)-1]
}

// issuePublicChain mints a correct public chain for the host: leaf +
// issuing CA, optionally including the root (Figure 1: ~60% of public
// chains have length 2 because the root is omitted).
func (s *Scenario) issuePublicChain(host string, includeRoot bool) (certmodel.Chain, *publicCA) {
	ca := s.pickPublicCA()
	iss := ca.issuing[s.rng.IntN(len(ca.issuing))]
	leaf := iss.leaf(dnFor(host, "", ""), withSANs(host), withValidity(90*24*time.Hour*time.Duration(1+s.rng.IntN(8))))
	ch := certmodel.Chain{leaf, iss.Cert}
	if includeRoot {
		ch = append(ch, ca.root.Cert)
	}
	return ch, ca
}

// generatePublicOnly emits the public-DB-only population. Length mix per
// Figure 1: ~62% length 2, ~25% length 3, ~9% length 1 (leaf only), ~4%
// length 4 (extra cross-signed root).
func (s *Scenario) generatePublicOnly() {
	n := s.scaled(paperPublicChains)
	conns := s.split(int64(float64(n)*120), n) // public traffic volume is not a paper target
	pop := s.ipPool.take(s.scaled(200000))
	for i := 0; i < n; i++ {
		host := s.randHost()
		var ch certmodel.Chain
		switch r := s.rng.Float64(); {
		case r < 0.62:
			ch, _ = s.issuePublicChain(host, false)
		case r < 0.87:
			ch, _ = s.issuePublicChain(host, true)
		case r < 0.96:
			partial, _ := s.issuePublicChain(host, false)
			ch = partial[:1]
		default:
			full, _ := s.issuePublicChain(host, true)
			ch = append(full, s.crossRoot.Cert)
		}
		// Log the leaf in CT: public issuers CT-log by policy.
		s.CT.AddChain(ch, s.randTime())

		first, last := s.window()
		c := conns[i]
		o := &Observation{
			Chain:       ch,
			Category:    chain.PublicDBOnly,
			ServerIP:    s.serverIP(),
			Port:        443,
			Domain:      host,
			Conns:       c,
			Established: s.establishSplit(c, 0.99),
			ClientIPs:   s.pickClientIPs(pop, 1+s.rng.IntN(12)),
			First:       first,
			Last:        last,
		}
		s.Observations = append(s.Observations, o)
	}
}

// dn re-exported helper for tests needing the scenario's DN shape.
var _ = dn.FromMap
