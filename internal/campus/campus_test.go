package campus

import (
	"testing"
	"time"

	"certchains/internal/chain"
	"certchains/internal/dga"
	"certchains/internal/intercept"
	"certchains/internal/trustdb"
)

// testScenario generates a small scenario shared across tests (generation is
// the expensive step; tests share one instance per seed).
func testScenario(t *testing.T) *Scenario {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Scale = 0.002
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGenerateRejectsBadScale(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("zero scale must be rejected")
	}
	cfg.Scale = -1
	if _, err := Generate(cfg); err == nil {
		t.Error("negative scale must be rejected")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.0005
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Observations) != len(b.Observations) {
		t.Fatalf("observation counts differ: %d vs %d", len(a.Observations), len(b.Observations))
	}
	for i := range a.Observations {
		oa, ob := a.Observations[i], b.Observations[i]
		if oa.Chain.Key() != ob.Chain.Key() || oa.Conns != ob.Conns || oa.ServerIP != ob.ServerIP ||
			oa.Port != ob.Port || oa.Established != ob.Established {
			t.Fatalf("observation %d differs between identical seeds", i)
		}
	}
	if a.CT.Size() != b.CT.Size() {
		t.Error("CT logs differ between identical seeds")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.0005
	a, _ := Generate(cfg)
	cfg.Seed = 77
	b, _ := Generate(cfg)
	same := 0
	n := len(a.Observations)
	if len(b.Observations) < n {
		n = len(b.Observations)
	}
	for i := 0; i < n; i++ {
		if a.Observations[i].Chain.Key() == b.Observations[i].Chain.Key() {
			same++
		}
	}
	if same == n {
		t.Error("different seeds produced identical datasets")
	}
}

func TestCategoryMixMatchesClassifier(t *testing.T) {
	s := testScenario(t)
	for i, o := range s.Observations {
		if o.TLS13 {
			if len(o.Chain) != 0 {
				t.Fatalf("observation %d: TLS 1.3 observation carries a chain", i)
			}
			continue
		}
		got := s.Classifier.Categorize(o.Chain)
		if got != o.Category {
			t.Fatalf("observation %d: generator intended %v, classifier derived %v (chain %v)",
				i, o.Category, got, describe(o))
		}
	}
}

func describe(o *Observation) []string {
	var out []string
	for _, m := range o.Chain {
		out = append(out, "S="+m.Subject.String()+" I="+m.Issuer.String())
	}
	return out
}

func TestHybridPopulationExactCounts(t *testing.T) {
	s := testScenario(t)
	counts := make(map[chain.HybridCategory]int)
	noPath := make(map[chain.NoPathCategory]int)
	for _, o := range s.Observations {
		if o.Category != chain.Hybrid {
			continue
		}
		a := s.Classifier.Analyze(o.Chain)
		hc := chain.ClassifyHybrid(a)
		counts[hc]++
		if hc == chain.HybridNoComplete {
			noPath[chain.ClassifyNoPath(a)]++
		}
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 321 {
		t.Fatalf("hybrid chains = %d, want 321", total)
	}
	if counts[chain.HybridCompleteNonPubToPub] != 26 {
		t.Errorf("non-pub-to-pub = %d, want 26", counts[chain.HybridCompleteNonPubToPub])
	}
	if counts[chain.HybridCompletePubToPrv] != 10 {
		t.Errorf("pub-to-prv = %d, want 10", counts[chain.HybridCompletePubToPrv])
	}
	if counts[chain.HybridContainsComplete] != 70 {
		t.Errorf("contains = %d, want 70", counts[chain.HybridContainsComplete])
	}
	if counts[chain.HybridNoComplete] != 215 {
		t.Errorf("no-complete = %d, want 215", counts[chain.HybridNoComplete])
	}
	// Table 7 exact counts.
	if noPath[chain.NoPathSelfSignedLeafMismatch] != 108 {
		t.Errorf("self-signed+mismatch = %d, want 108", noPath[chain.NoPathSelfSignedLeafMismatch])
	}
	if noPath[chain.NoPathSelfSignedLeafValidSub] != 13 {
		t.Errorf("self-signed+valid-sub = %d, want 13", noPath[chain.NoPathSelfSignedLeafValidSub])
	}
	if noPath[chain.NoPathAllMismatched] != 61 {
		t.Errorf("all-mismatched = %d, want 61", noPath[chain.NoPathAllMismatched])
	}
	if noPath[chain.NoPathPartial] != 27 {
		t.Errorf("partial = %d, want 27", noPath[chain.NoPathPartial])
	}
	if noPath[chain.NoPathPrivateRootAppended] != 5 {
		t.Errorf("root-appended = %d, want 5", noPath[chain.NoPathPrivateRootAppended])
	}
	if noPath[chain.NoPathPrivateRootMismatch] != 1 {
		t.Errorf("root+mismatch = %d, want 1", noPath[chain.NoPathPrivateRootMismatch])
	}
}

func TestAnchoredHybridLeavesAreCTLogged(t *testing.T) {
	s := testScenario(t)
	checked := 0
	for _, o := range s.Observations {
		if o.Category != chain.Hybrid {
			continue
		}
		a := s.Classifier.Analyze(o.Chain)
		if chain.ClassifyHybrid(a) != chain.HybridCompleteNonPubToPub {
			continue
		}
		checked++
		if !a.AnchoredToPublicRoot(s.DB) {
			t.Errorf("non-pub-to-pub chain not anchored: %v", describe(o))
		}
		if !s.CT.Contains(o.Chain[0].FP) {
			t.Errorf("anchored non-public leaf %s not CT-logged", o.Chain[0].Subject.CommonName())
		}
	}
	if checked != 26 {
		t.Errorf("checked %d chains, want 26", checked)
	}
}

func TestInterceptionDetectable(t *testing.T) {
	s := testScenario(t)
	det := intercept.NewDetector(s.DB, s.CT)
	flagged := make(map[string]bool)
	for _, o := range s.Observations {
		if o.Category != chain.Interception || o.Domain == "" {
			continue
		}
		v := det.Examine(o.Chain[0], o.Domain, o.First)
		if v == intercept.IssuerMismatch {
			flagged[o.Chain[0].Issuer.Normalized()] = true
		}
	}
	// Every registered interception entity should be discoverable through
	// at least one of its issuers' observations.
	if len(flagged) < s.InterceptRegistry.Len()/2 {
		t.Errorf("only %d issuer DNs flagged; registry has %d entities", len(flagged), s.InterceptRegistry.Len())
	}
	if s.InterceptRegistry.Len() != 80 {
		t.Errorf("registry = %d issuers, want 80", s.InterceptRegistry.Len())
	}
}

func TestNonPublicShapes(t *testing.T) {
	s := testScenario(t)
	var single, singleSelf, multi, dgaCount int
	var pathological int
	for _, o := range s.Observations {
		if o.Category != chain.NonPublicDBOnly {
			continue
		}
		if len(o.Chain) > 30 {
			pathological++
			continue
		}
		if len(o.Chain) == 1 {
			single++
			if o.Chain[0].SelfSigned() {
				singleSelf++
			}
			if dga.IsDGACertificate(o.Chain[0]) {
				dgaCount++
			}
		} else {
			multi++
		}
	}
	if pathological != 3 {
		t.Errorf("pathological chains = %d, want 3", pathological)
	}
	frac := float64(single) / float64(single+multi)
	if frac < 0.70 || frac > 0.86 {
		t.Errorf("single-cert share = %v, want ≈0.781", frac)
	}
	selfFrac := float64(singleSelf) / float64(single)
	if selfFrac < 0.88 || selfFrac > 0.99 {
		t.Errorf("self-signed share = %v, want ≈0.9419", selfFrac)
	}
	if dgaCount == 0 {
		t.Error("no DGA cluster certificates detected")
	}
}

func TestRevisitPlanShape(t *testing.T) {
	s := testScenario(t)
	p := s.Revisit
	if p == nil {
		t.Fatal("revisit plan missing")
	}
	if len(p.Hybrid) != 321 {
		t.Fatalf("revisit hybrid servers = %d, want 321", len(p.Hybrid))
	}
	reach := 0
	toPublic, toNonPub, stillHybrid := 0, 0, 0
	for _, rs := range p.Hybrid {
		if !rs.Reachable {
			continue
		}
		reach++
		cat := s.Classifier.Categorize(rs.NewChain)
		switch cat {
		case chain.PublicDBOnly:
			toPublic++
		case chain.NonPublicDBOnly:
			toNonPub++
		case chain.Hybrid:
			stillHybrid++
		}
	}
	if reach != 270 {
		t.Errorf("reachable = %d, want 270", reach)
	}
	if toPublic != 231 {
		t.Errorf("to public = %d, want 231", toPublic)
	}
	if toNonPub != 4 {
		t.Errorf("to non-public = %d, want 4", toNonPub)
	}
	if stillHybrid != 35 {
		t.Errorf("still hybrid = %d, want 35", stillHybrid)
	}
	if len(p.NonPub) == 0 {
		t.Fatal("no non-public revisit servers")
	}
	var nowMulti int
	for _, rs := range p.NonPub {
		if s.Classifier.Categorize(rs.NewChain) != chain.NonPublicDBOnly {
			t.Fatalf("revisit non-pub server %s serves %v", rs.Domain, s.Classifier.Categorize(rs.NewChain))
		}
		if len(rs.NewChain) > 1 {
			nowMulti++
		}
	}
	frac := float64(nowMulti) / float64(len(p.NonPub))
	if frac < 0.70 || frac > 0.88 {
		t.Errorf("now-multi share = %v, want ≈0.794", frac)
	}
	if !p.ScanTime.After(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)) {
		t.Error("scan time must be in 2024")
	}
}

func TestTotalsAggregation(t *testing.T) {
	s := testScenario(t)
	tot := s.Totals()
	if tot.Chains[chain.Hybrid] != 321 {
		t.Errorf("hybrid chains = %d", tot.Chains[chain.Hybrid])
	}
	for _, cat := range []chain.Category{chain.PublicDBOnly, chain.NonPublicDBOnly, chain.Hybrid, chain.Interception} {
		if tot.Chains[cat] == 0 {
			t.Errorf("no chains in category %v", cat)
		}
		if tot.Conns[cat] == 0 {
			t.Errorf("no connections in category %v", cat)
		}
		if tot.Established[cat] > tot.Conns[cat] {
			t.Errorf("category %v: established exceeds total", cat)
		}
		if tot.ClientIPs[cat] == 0 {
			t.Errorf("no client IPs in category %v", cat)
		}
	}
	// Non-public-DB-only dominates connection volume (Table 2 shape).
	if tot.Conns[chain.NonPublicDBOnly] <= tot.Conns[chain.Hybrid] {
		t.Error("non-public connections should dwarf hybrid connections")
	}
}

func TestTrustDBPopulated(t *testing.T) {
	s := testScenario(t)
	if s.DB.Size() < 7 {
		t.Errorf("trust DB has only %d entries", s.DB.Size())
	}
	// The classifier must classify a public leaf correctly.
	found := false
	for _, o := range s.Observations {
		if o.Category == chain.PublicDBOnly {
			if s.DB.Classify(o.Chain[0]) != trustdb.IssuedByPublicDB {
				t.Error("public leaf misclassified")
			}
			found = true
			break
		}
	}
	if !found {
		t.Error("no public observations generated")
	}
}

func TestSplitPreservesTotal(t *testing.T) {
	s := testScenario(t)
	for _, total := range []int64{10, 1000, 99999} {
		for _, n := range []int{1, 7, 100} {
			parts := s.split(total, n)
			var sum int64
			for _, p := range parts {
				if p < 1 {
					t.Fatalf("split produced non-positive part %d", p)
				}
				sum += p
			}
			// The repair step can fail only when parts can't absorb the
			// diff; totals must match whenever total >= n.
			if total >= int64(n) && sum != total {
				t.Errorf("split(%d, %d) sums to %d", total, n, sum)
			}
		}
	}
}

func TestObservationEstablishRate(t *testing.T) {
	o := &Observation{Conns: 200, Established: 150}
	if o.EstablishRate() != 0.75 {
		t.Errorf("rate = %v", o.EstablishRate())
	}
	empty := &Observation{}
	if empty.EstablishRate() != 0 {
		t.Error("zero-conn rate must be 0")
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Scale = 0.001
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
