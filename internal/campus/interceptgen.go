package campus

import (
	"fmt"

	"certchains/internal/certmodel"
	"certchains/internal/chain"
	"certchains/internal/dn"
	"certchains/internal/intercept"
)

// Table 1 structural absolutes: 80 interception issuers across six sectors,
// with the paper's connection shares (percent × 100) and client IP counts.
var interceptSectors = []struct {
	category   intercept.Category
	issuers    int
	connShare  int // basis points of interception connections
	paperIPs   int
	vendorSeed []string
}{
	{intercept.CategorySecurityNetwork, 31, 9474, 17915,
		[]string{"Zscaler", "McAfee Web Gateway", "FireEye", "Fortinet FortiGate", "Palo Alto Networks", "Blue Coat ProxySG", "Sophos", "Cisco Umbrella"}},
	{intercept.CategoryBusinessCorporate, 27, 499, 4787,
		[]string{"Freddie Mac", "Meridian Holdings", "Apex Manufacturing", "Crestline Logistics"}},
	{intercept.CategoryHealthEducation, 10, 2, 35,
		[]string{"Securly", "District Public Schools", "Lakeside Health System"}},
	{intercept.CategoryGovernment, 6, 24, 25,
		[]string{"US Department Gateway", "State Agency Proxy"}},
	{intercept.CategoryBankFinance, 3, 1, 14,
		[]string{"Nationwide", "First Meridian Bank"}},
	{intercept.CategoryOther, 3, 0, 73,
		[]string{"Community Org", "Regional Coop"}},
}

// Interception port mix (Table 4): 8013 is Fortinet's interception port.
var interceptPorts = weightedPorts{
	{8013, 3540}, {4437, 2514}, {14430, 1634}, {443, 1336}, {514, 353}, {10443, 623},
}

// Figure 1 / §4.3 shapes.
const (
	interceptSingleShare     = 0.1324
	interceptSingleSelfShare = 0.9343
	interceptMatchedShare    = 0.9894
	interceptContainsShare   = 56.0 / (56.0 + 2764.0)
)

// interceptionIssuer is one generated middlebox CA.
type interceptionIssuer struct {
	reg      *intercept.Issuer
	root     *metaCA
	issuing  *metaCA
	category intercept.Category
}

// generateInterception emits the interception population and registers the
// 80 issuers in the scenario registry and classifier.
func (s *Scenario) generateInterception() {
	// Popular destination domains whose genuine certificates are CT-logged
	// by public issuers — the cross-reference baseline.
	nPopular := 40 + s.scaled(160)
	popular := make([]string, nPopular)
	for i := range popular {
		popular[i] = fmt.Sprintf("www.%s", s.randDomain())
		real, _ := s.issuePublicChain(popular[i], false)
		s.CT.AddChain(real, s.Config.Start.AddDate(0, 0, -60))
	}

	// Build the 80 issuers.
	var issuers []*interceptionIssuer
	for _, sec := range interceptSectors {
		for i := 0; i < sec.issuers; i++ {
			vendor := sec.vendorSeed[i%len(sec.vendorSeed)]
			name := vendor
			if i >= len(sec.vendorSeed) {
				name = fmt.Sprintf("%s Unit %d", vendor, i)
			}
			rootDN := dnFor(name+" Root CA", name, "US")
			interDN := dnFor(name+" SSL Inspection CA", name, "US")
			root := s.pki.newSelfSignedIssuer(rootDN)
			issuing := root.intermediate(interDN, withBC(s.subsequentBC()))
			ii := &interceptionIssuer{
				reg:      &intercept.Issuer{DN: interDN, Name: name, Category: sec.category},
				root:     root,
				issuing:  issuing,
				category: sec.category,
			}
			issuers = append(issuers, ii)
			s.InterceptRegistry.Add(ii.reg)
			// The classifier learns the issuer set after detection; the
			// scenario pre-registers it as the paper's enrichment output.
			s.Classifier.AddInterceptionIssuer(interDN)
			s.Classifier.AddInterceptionIssuer(rootDN)
		}
	}

	nChains := s.scaled(paperInterceptChains)
	totalConns := int64(float64(paperInterceptConns) * s.Config.Scale)
	singleCount := 0

	// Allocate chains and connections to sectors by connection share;
	// every issuer gets at least one chain.
	for si, sec := range interceptSectors {
		secIssuers := issuersOf(issuers, sec.category)
		secChains := nChains * sec.connShare / 10000
		if secChains < len(secIssuers) {
			secChains = len(secIssuers)
		}
		secConns := totalConns * int64(sec.connShare) / 10000
		if secConns < int64(secChains) {
			secConns = int64(secChains)
		}
		connSplit := s.split(secConns, secChains)
		pop := s.ipPool.take(max(1, s.scaled(sec.paperIPs)))

		for ci := 0; ci < secChains; ci++ {
			ii := secIssuers[ci%len(secIssuers)]
			domain := popular[s.rng.IntN(len(popular))]
			if ci < len(secIssuers) {
				// Guarantee each issuer at least one CT-referencable
				// observation so detection finds all 80.
				domain = popular[(si*31+ci)%len(popular)]
			}
			var ch certmodel.Chain
			r := s.rng.Float64()
			switch {
			case r < interceptSingleShare:
				singleCount++
				// Every 15th single-certificate chain carries distinct
				// issuer/subject names: 14/15 ≈ the paper's 93.43%
				// self-signed share, deterministic at any scale.
				if singleCount%15 != 0 {
					d := dnFor(domain, ii.reg.Name, "US")
					ch = certmodel.Chain{s.pki.mkCert(d, d)}
					// Self-signed forgeries carry the vendor in O=; the
					// enrichment step attributes them to the entity.
					s.Classifier.AddInterceptionIssuer(d)
				} else {
					leaf := ii.issuing.leaf(dnFor(domain, "", ""), withBC(s.maybeAbsentBC(0.4)), withSANs(domain))
					ch = certmodel.Chain{leaf}
				}
			case r < interceptSingleShare+(1-interceptSingleShare)*interceptMatchedShare:
				// The dominant 3-cert matched chain: forged leaf +
				// inspection CA + vendor root.
				leaf := ii.issuing.leaf(dnFor(domain, "", ""), withSANs(domain))
				ch = certmodel.Chain{leaf, ii.issuing.Cert, ii.root.Cert}
			case s.rng.Float64() < interceptContainsShare:
				// Matched pair plus an unrelated stale middlebox cert.
				leaf := ii.issuing.leaf(dnFor(domain, "", ""), withSANs(domain))
				stale := s.pki.mkCert(dnFor("Retired Inspection CA", ii.reg.Name, "US"), dnFor("Old Gateway", ii.reg.Name, "US"))
				ch = certmodel.Chain{leaf, ii.issuing.Cert, stale}
			default:
				// No matched path: leaf with a mismatched middle.
				leaf := ii.issuing.leaf(dnFor(domain, "", ""), withSANs(domain))
				wrong := s.pki.mkCert(dnFor(ii.reg.Name+" Legacy Root", ii.reg.Name, "US"), dnFor(ii.reg.Name+" Legacy CA", ii.reg.Name, "US"), withBC(certmodel.BCTrue))
				ch = certmodel.Chain{leaf, wrong}
			}
			first, last := s.window()
			conns := connSplit[ci]
			o := &Observation{
				Chain:       ch,
				Category:    chain.Interception,
				ServerIP:    s.serverIP(),
				Port:        interceptPorts.pick(s),
				Domain:      domain,
				Conns:       conns,
				Established: s.establishSplit(conns, 0.96),
				ClientIPs:   s.pickClientIPs(pop, 1+s.rng.IntN(8)),
				First:       first,
				Last:        last,
			}
			s.Observations = append(s.Observations, o)
		}
	}
}

func issuersOf(all []*interceptionIssuer, c intercept.Category) []*interceptionIssuer {
	var out []*interceptionIssuer
	for _, i := range all {
		if i.category == c {
			out = append(out, i)
		}
	}
	return out
}

var _ = dn.FromMap
