package campus

import (
	"fmt"
	"strings"
	"time"

	"certchains/internal/certmodel"
	"certchains/internal/dn"
)

// metaPKI fabricates log-level certificates (certmodel.Meta) at scale —
// the campus pipeline never sees raw DER (§3.1), so generation at the log
// level is both faithful and fast. Fingerprints are synthetic but stable.
type metaPKI struct {
	s      *Scenario
	serial int64
}

func newMetaPKI(s *Scenario) *metaPKI {
	return &metaPKI{s: s, serial: 1}
}

func (p *metaPKI) nextSerial() string {
	p.serial++
	return fmt.Sprintf("%x", p.serial)
}

// certSpec holds optional knobs for mkCert.
type certSpec struct {
	bc       certmodel.BasicConstraints
	validity time.Duration
	backdate time.Duration
	anchor   time.Time
	sans     []string
	keyAlg   certmodel.KeyAlgorithm
	keyBits  int
}

type certOpt func(*certSpec)

func withBC(bc certmodel.BasicConstraints) certOpt {
	return func(s *certSpec) { s.bc = bc }
}

func withValidity(d time.Duration) certOpt {
	return func(s *certSpec) { s.validity = d }
}

// withBackdate shifts the validity window into the past (expired certs).
func withBackdate(d time.Duration) certOpt {
	return func(s *certSpec) { s.backdate = d }
}

// withIssuedAround anchors the validity window near t instead of the
// scenario start — used for the 2024 revisit-era certificates.
func withIssuedAround(t time.Time) certOpt {
	return func(s *certSpec) { s.anchor = t }
}

func withSANs(sans ...string) certOpt {
	return func(s *certSpec) { s.sans = sans }
}

func withRSA(bits int) certOpt {
	return func(s *certSpec) { s.keyAlg = certmodel.KeyRSA; s.keyBits = bits }
}

// mkCert fabricates one certificate.
func (p *metaPKI) mkCert(issuer, subject dn.DN, opts ...certOpt) *certmodel.Meta {
	spec := certSpec{
		bc:       certmodel.BCAbsent,
		validity: 365 * 24 * time.Hour,
		keyAlg:   certmodel.KeyECDSA,
		keyBits:  256,
	}
	for _, o := range opts {
		o(&spec)
	}
	anchor := p.s.Config.Start
	if !spec.anchor.IsZero() {
		anchor = spec.anchor
	}
	nb := anchor.Add(-time.Duration(p.s.rng.Int64N(int64(180 * 24 * time.Hour))))
	nb = nb.Add(-spec.backdate)
	na := nb.Add(spec.validity)
	serial := p.nextSerial()
	return &certmodel.Meta{
		FP:        certmodel.SyntheticFingerprint(issuer, subject, serial, nb, na),
		Issuer:    issuer.Clone(),
		Subject:   subject.Clone(),
		SerialHex: serial,
		NotBefore: nb,
		NotAfter:  na,
		KeyAlg:    spec.keyAlg,
		KeyBits:   spec.keyBits,
		BC:        spec.bc,
		SAN:       append([]string(nil), spec.sans...),
	}
}

// metaCA is a fabricated certificate authority.
type metaCA struct {
	pki  *metaPKI
	Cert *certmodel.Meta
}

// newRootCA fabricates a self-signed root with CA=TRUE and 15y validity.
func (p *metaPKI) newRootCA(subject dn.DN) *metaCA {
	cert := p.mkCert(subject, subject, withBC(certmodel.BCTrue), withValidity(15*365*24*time.Hour))
	return &metaCA{pki: p, Cert: cert}
}

// newSelfSignedIssuer fabricates a self-signed non-public-DB root. Like
// most subsequent-position non-public certificates it omits basicConstraints
// at the §4.3 rate (78.32%), otherwise asserting CA=TRUE.
func (p *metaPKI) newSelfSignedIssuer(subject dn.DN) *metaCA {
	cert := p.mkCert(subject, subject, withValidity(10*365*24*time.Hour),
		withBC(p.s.subsequentBC()))
	return &metaCA{pki: p, Cert: cert}
}

// intermediate issues a CA certificate under this CA.
func (ca *metaCA) intermediate(subject dn.DN, opts ...certOpt) *metaCA {
	opts = append([]certOpt{withBC(certmodel.BCTrue), withValidity(8 * 365 * 24 * time.Hour)}, opts...)
	cert := ca.pki.mkCert(ca.Cert.Subject, subject, opts...)
	return &metaCA{pki: ca.pki, Cert: cert}
}

// leaf issues an end-entity certificate under this CA.
func (ca *metaCA) leaf(subject dn.DN, opts ...certOpt) *certmodel.Meta {
	opts = append([]certOpt{withBC(certmodel.BCFalse)}, opts...)
	return ca.pki.mkCert(ca.Cert.Subject, subject, opts...)
}

// dnFor builds the standard DN shape used across the scenario.
func dnFor(cn string, org string, country string) dn.DN {
	pairs := []string{"CN", cn}
	if org != "" {
		pairs = append(pairs, "O", org)
	}
	if country != "" {
		pairs = append(pairs, "C", country)
	}
	return dn.FromMap(pairs...)
}

// --- name and address generation -----------------------------------------

var domainWords = []string{
	"blue", "river", "stone", "cloud", "pixel", "nova", "summit", "cedar",
	"orbit", "lumen", "quanta", "vertex", "harbor", "maple", "crest", "atlas",
	"delta", "ember", "falcon", "garnet", "helix", "iris", "jade", "krypton",
	"lotus", "meadow", "nimbus", "onyx", "prairie", "quill", "raven", "sage",
	"tundra", "umber", "violet", "willow", "xenon", "yonder", "zephyr", "acorn",
}

var domainSuffixes = []string{"com", "net", "org", "edu", "io", "dev"}

// randDomain produces a plausible (non-gibberish) domain name.
func (s *Scenario) randDomain() string {
	a := domainWords[s.rng.IntN(len(domainWords))]
	b := domainWords[s.rng.IntN(len(domainWords))]
	tld := domainSuffixes[s.rng.IntN(len(domainSuffixes))]
	return fmt.Sprintf("%s%s%d.%s", a, b, s.rng.IntN(1000), tld)
}

// randHost produces a host under a fresh domain.
func (s *Scenario) randHost() string {
	sub := []string{"www", "api", "portal", "mail", "vpn", "app"}[s.rng.IntN(6)]
	return sub + "." + s.randDomain()
}

// consonants used for gibberish DGA labels (vowel-free so the detector's
// linguistic score flags them, as real DGA output does).
const dgaAlphabet = "bcdfghjklmnpqrstvwxz"

// randDGAName produces a www.<random>.com name matching the §4.3 cluster.
func (s *Scenario) randDGAName() string {
	n := 7 + s.rng.IntN(6)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(dgaAlphabet[s.rng.IntN(len(dgaAlphabet))])
	}
	return "www." + b.String() + ".com"
}

// clientIPPool hands out unique NATted campus client addresses.
type clientIPPool struct {
	next int
}

func (p *clientIPPool) take(n int) []string {
	out := make([]string, n)
	for i := range out {
		v := p.next
		p.next++
		out[i] = fmt.Sprintf("10.%d.%d.%d", 16+(v>>16)&0x3f, (v>>8)&0xff, v&0xff)
	}
	return out
}

// serverIP hands out unique external server addresses.
func (s *Scenario) serverIP() string {
	return fmt.Sprintf("%d.%d.%d.%d", 20+s.rng.IntN(180), s.rng.IntN(256), s.rng.IntN(256), 1+s.rng.IntN(254))
}

// pickClientIPs selects k addresses from a pre-allocated population slice,
// without replacement when k <= len(pop).
func (s *Scenario) pickClientIPs(pop []string, k int) []string {
	if k >= len(pop) {
		return append([]string(nil), pop...)
	}
	// Rejection sampling of k distinct indices: k is small relative to the
	// pool, so this stays O(k) instead of O(len(pop)).
	seen := make(map[int]bool, k)
	out := make([]string, 0, k)
	for len(out) < k {
		j := s.rng.IntN(len(pop))
		if seen[j] {
			continue
		}
		seen[j] = true
		out = append(out, pop[j])
	}
	return out
}
