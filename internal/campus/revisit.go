package campus

import (
	"fmt"
	"time"

	"certchains/internal/certmodel"
)

// §5 revisit absolutes and shapes.
const (
	revisitHybridReachable   = 270
	revisitHybridToPublic    = 231
	revisitHybridToPublicLE  = 180 // "the majority being Let's Encrypt"
	revisitHybridToNonPub    = 4
	revisitHybridStillHybrid = 35
	revisitHybridStillClean  = 9 // complete path, no unnecessary certs
	revisitHybridStillExtra  = 3 // complete path with unnecessary certs

	paperRevisitNonPubServers = 12404
	revisitNonPubNowMulti     = 0.7940
	revisitNonPubPrevMulti    = 0.3900 // of the now-multi servers
	revisitNonPubPrevSelf     = 0.5344
	revisitNonPubNewComplete  = 0.9761
)

// RevisitServer pairs a campus-period observation with the chain the same
// server delivers at scan time (November 2024).
type RevisitServer struct {
	Domain   string
	ServerIP string
	// Old is the campus-period observation.
	Old *Observation
	// Reachable reports whether the 2024 scan could connect.
	Reachable bool
	// NewChain is the chain delivered at scan time (nil when unreachable).
	NewChain certmodel.Chain
}

// RevisitPlan is the §5 retrospective dataset.
type RevisitPlan struct {
	// ScanTime is the retrospective scan instant (November 2024).
	ScanTime time.Time
	// Hybrid covers the 321 servers that delivered hybrid chains.
	Hybrid []*RevisitServer
	// NonPub covers the SNI-bearing non-public-DB-only servers the scan
	// could extract (12,404 at paper scale).
	NonPub []*RevisitServer
}

// generateRevisit builds the plan from the recorded server populations.
func (s *Scenario) generateRevisit() {
	plan := &RevisitPlan{ScanTime: time.Date(2024, 11, 15, 0, 0, 0, 0, time.UTC)}

	// --- hybrid servers ---------------------------------------------------
	le := s.publicCAs[0]
	for i, o := range s.hybridServers {
		rs := &RevisitServer{Domain: o.Domain, ServerIP: o.ServerIP, Old: o}
		switch {
		case i >= revisitHybridReachable:
			// 51 servers no longer reachable.
			rs.Reachable = false
		case i < revisitHybridToPublicLE:
			rs.Reachable = true
			rs.NewChain = s.revisitPublicChain(le, o.Domain, plan.ScanTime)
		case i < revisitHybridToPublic:
			rs.Reachable = true
			other := s.publicCAs[1+s.rng.IntN(len(s.publicCAs)-1)]
			rs.NewChain = s.revisitPublicChain(other, o.Domain, plan.ScanTime)
		case i < revisitHybridToPublic+revisitHybridToNonPub:
			// 4 servers now deliver non-public-DB-only chains.
			rs.Reachable = true
			d := dnFor(o.Domain, "", "")
			rs.NewChain = certmodel.Chain{s.pki.mkCert(d, d, withValidity(2*365*24*time.Hour), withIssuedAround(plan.ScanTime))}
		default:
			// 35 still hybrid: 9 clean complete, 3 complete+unnecessary,
			// 23 without a matched path.
			rs.Reachable = true
			j := i - revisitHybridToPublic - revisitHybridToNonPub
			switch {
			case j < revisitHybridStillClean:
				rs.NewChain = s.revisitHybridComplete(o.Domain, false)
			case j < revisitHybridStillClean+revisitHybridStillExtra:
				rs.NewChain = s.revisitHybridComplete(o.Domain, true)
			default:
				d := localhostDN()
				leaf := s.pki.mkCert(d, d)
				pub, _ := s.issuePublicChain(o.Domain, true)
				rs.NewChain = append(certmodel.Chain{leaf}, pub[len(pub)-1:]...)
			}
		}
		plan.Hybrid = append(plan.Hybrid, rs)
	}

	// --- non-public-DB-only servers ---------------------------------------
	// The scan reaches the SNI-bearing servers; composition follows the
	// §5 previous-type mix.
	nTarget := s.scaled(paperRevisitNonPubServers)
	var oldMulti, oldSelf, oldDistinct []*Observation
	for _, o := range s.nonPubServers {
		switch {
		case len(o.Chain) > 1:
			oldMulti = append(oldMulti, o)
		case o.Chain[0].SelfSigned():
			oldSelf = append(oldSelf, o)
		default:
			oldDistinct = append(oldDistinct, o)
		}
	}
	nowMulti := int(float64(nTarget) * revisitNonPubNowMulti)
	nowSingle := nTarget - nowMulti

	wantPrevMulti := int(float64(nowMulti) * revisitNonPubPrevMulti)
	wantPrevSelf := int(float64(nowMulti) * revisitNonPubPrevSelf)
	wantPrevDistinct := nowMulti - wantPrevMulti - wantPrevSelf

	take := func(src []*Observation, n int) []*Observation {
		if n > len(src) {
			n = len(src)
		}
		return src[:n]
	}
	prevMulti := take(oldMulti, wantPrevMulti)
	prevSelf := take(oldSelf, wantPrevSelf)
	prevDistinct := take(oldDistinct, wantPrevDistinct)

	org := "revisit-upgraded"
	root := s.pki.newSelfSignedIssuer(dnFor(org+" Root CA", org, "US"))
	emitNew := func(o *Observation, multi bool) {
		rs := &RevisitServer{Domain: o.Domain, ServerIP: o.ServerIP, Old: o, Reachable: true}
		if multi {
			if s.rng.Float64() < revisitNonPubNewComplete {
				rs.NewChain = s.privateMatchedChain(root, o.Domain, 2+s.rng.IntN(2))
			} else {
				ch := s.privateMatchedChain(root, o.Domain, 2)
				stray := s.pki.mkCert(dnFor("Leftover CA", "", ""), dnFor("leftover."+o.Domain, "", ""))
				rs.NewChain = append(ch, stray)
			}
		} else {
			d := dnFor(o.Domain, "", "")
			rs.NewChain = certmodel.Chain{s.pki.mkCert(d, d, withValidity(3*365*24*time.Hour), withIssuedAround(plan.ScanTime))}
		}
		plan.NonPub = append(plan.NonPub, rs)
	}
	for _, o := range prevMulti {
		emitNew(o, true)
	}
	for _, o := range prevSelf {
		emitNew(o, true)
	}
	for _, o := range prevDistinct {
		emitNew(o, true)
	}
	// The remaining servers still deliver single certificates; prefer
	// leftovers from the self-signed pool.
	rest := append(append([]*Observation(nil), oldSelf[len(prevSelf):]...), oldMulti[len(prevMulti):]...)
	for i := 0; i < nowSingle && i < len(rest); i++ {
		emitNew(rest[i], false)
	}

	s.Revisit = plan
}

// revisitPublicChain mints the 2024-era public chain for a migrated server.
func (s *Scenario) revisitPublicChain(ca *publicCA, domain string, at time.Time) certmodel.Chain {
	iss := ca.issuing[s.rng.IntN(len(ca.issuing))]
	leaf := s.pki.mkCert(iss.Cert.Subject, dnFor(domain, "", ""),
		withBC(certmodel.BCFalse), withSANs(domain), withValidity(90*24*time.Hour),
		withIssuedAround(at))
	return certmodel.Chain{leaf, iss.Cert}
}

// revisitHybridComplete mints a 2024 hybrid complete path, optionally with
// an unnecessary trailing certificate (the 3 chains §5 validated against
// Chrome and OpenSSL).
func (s *Scenario) revisitHybridComplete(domain string, extra bool) certmodel.Chain {
	pub := s.pickPublicCA()
	iss := pub.issuing[0]
	signing := s.pki.mkCert(iss.Cert.Subject, dnFor("Private Signing CA 2024", "Org", "US"), withBC(certmodel.BCTrue))
	leaf := s.pki.mkCert(signing.Subject, dnFor(domain, "", ""), withBC(certmodel.BCFalse), withSANs(domain))
	ch := certmodel.Chain{leaf, signing, iss.Cert}
	if extra {
		stray := s.pki.mkCert(dnFor("tester", "", ""), dnFor("tester", "", ""))
		ch = append(ch, stray)
	}
	return ch
}

var _ = fmt.Sprintf
