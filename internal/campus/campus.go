// Package campus generates the synthetic campus-network dataset that stands
// in for the paper's IRB-restricted Zeek logs (DESIGN.md substitution table).
//
// Given a seed and a scale factor, Generate builds a complete measurement
// scenario: the public Web PKI (trust stores, CCADB, CT log), the private
// and interception CA populations, and twelve months of TLS connection
// observations whose statistical structure follows the paper's published
// shapes — category mix (Table 2), chain-length distributions (Figure 1),
// hybrid chain taxonomy (Tables 3, 6, 7), interception issuer sectors
// (Table 1), port mixes (Table 4), SNI rates, establishment rates, the DGA
// cluster, and the pathological oversized chains.
//
// Everything is deterministic: the same (seed, scale) pair reproduces the
// same dataset byte for byte.
package campus

import (
	"fmt"
	"math/rand/v2"
	"time"

	"certchains/internal/certmodel"
	"certchains/internal/chain"
	"certchains/internal/ctlog"
	"certchains/internal/intercept"
	"certchains/internal/trustdb"
)

// Config controls scenario generation.
type Config struct {
	// Seed drives every random choice.
	Seed int64
	// Scale multiplies the paper-scale bulk counts (chains, connections,
	// client IPs). The hybrid population (321 chains) and the interception
	// issuer set (80) are structural absolutes and do not scale.
	Scale float64
	// Start is the first day of collection; the paper's window opens
	// 2020-09-01.
	Start time.Time
	// Months is the collection length; the paper observed 12.
	Months int
}

// DefaultConfig mirrors the paper's collection at 1% volume, a size every
// laptop-scale analysis completes in seconds.
func DefaultConfig() Config {
	return Config{
		Seed:   1,
		Scale:  0.01,
		Start:  time.Date(2020, 9, 1, 0, 0, 0, 0, time.UTC),
		Months: 12,
	}
}

// Paper-scale constants (Table 2 and §4): counts the generator scales.
const (
	paperPublicChains    = 530000
	paperNonPubChains    = 118743
	paperInterceptChains = 81818

	paperNonPubConns    = 216470000
	paperHybridConns    = 78260
	paperInterceptConns = 42750000

	paperNonPubClientIPs    = 231228
	paperHybridClientIPs    = 11933
	paperInterceptClientIPs = 19149
)

// Observation is the aggregate view of one delivered chain at one server —
// every downstream table is computed from these.
type Observation struct {
	// Chain is the delivered certificate sequence, leaf first.
	Chain certmodel.Chain
	// Category is the generator's intended §3.2.2 category; the analysis
	// pipeline re-derives it independently and the two must agree.
	Category chain.Category
	// ServerIP and Port locate the server.
	ServerIP string
	Port     int
	// Domain is the SNI clients send; empty when connections carry none.
	Domain string
	// Conns counts TLS connections delivering this chain.
	Conns int64
	// Established counts connections with a completed handshake.
	Established int64
	// NoSNI counts connections lacking SNI (subset of Conns).
	NoSNI int64
	// ClientIPs are the distinct (NATted) client addresses observed.
	ClientIPs []string
	// First and Last bound the observation window.
	First, Last time.Time
	// TLS13 marks connections whose certificates the passive vantage
	// cannot observe (§6.3); such observations carry no chain and their
	// Category field is meaningless.
	TLS13 bool
}

// EstablishRate returns the connection establishment rate.
func (o *Observation) EstablishRate() float64 {
	if o.Conns == 0 {
		return 0
	}
	return float64(o.Established) / float64(o.Conns)
}

// Scenario is the complete generated dataset.
type Scenario struct {
	Config Config
	// DB holds the synthetic root stores and CCADB.
	DB *trustdb.DB
	// CT is the CT log (crt.sh substitute), populated with every
	// publicly-anchored leaf the synthetic Web PKI issued.
	CT *ctlog.Log
	// Classifier is pre-configured with the trust DB, the identified
	// interception issuers and cross-signing registry.
	Classifier *chain.Classifier
	// InterceptRegistry holds the curated interception issuers (Table 1).
	InterceptRegistry *intercept.Registry
	// Observations is the full connection dataset.
	Observations []*Observation
	// Revisit is the §5 retrospective plan.
	Revisit *RevisitPlan

	// pki carries the synthetic CA metadata used during generation.
	pki       *metaPKI
	rng       *rand.Rand
	ipPool    *clientIPPool
	publicCAs []*publicCA
	crossRoot *metaCA
	// hybridServers records the 321 hybrid observations for the revisit.
	hybridServers []*Observation
	// nonPubServers records non-public-DB-only observations with SNI.
	nonPubServers []*Observation
}

// Generate builds the scenario.
func Generate(cfg Config) (*Scenario, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("campus: scale must be positive, got %v", cfg.Scale)
	}
	if cfg.Months <= 0 {
		cfg.Months = 12
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2020, 9, 1, 0, 0, 0, 0, time.UTC)
	}
	ct, err := ctlog.New("campus-ct", cfg.Seed^0x5eed)
	if err != nil {
		return nil, fmt.Errorf("campus: create CT log: %w", err)
	}
	s := &Scenario{
		Config:            cfg,
		DB:                trustdb.New(),
		CT:                ct,
		InterceptRegistry: intercept.NewRegistry(),
		rng:               rand.New(rand.NewPCG(uint64(cfg.Seed), 0x9e3779b97f4a7c15)),
		ipPool:            &clientIPPool{},
	}
	s.pki = newMetaPKI(s)
	s.Classifier = chain.NewClassifier(s.DB)

	s.buildPublicPKI()
	s.generatePublicOnly()
	s.generateNonPublicOnly()
	s.generateHybrid()
	s.generateInterception()
	s.generateTLS13()
	s.generateRevisit()
	return s, nil
}

// generateTLS13 emits the §6.3 blind spot: TLS 1.3 connections whose
// certificates passive monitoring cannot capture — "about a quarter of TLS
// connections". They appear in ssl.log with no certificate chain and are
// counted but not categorized.
func (s *Scenario) generateTLS13() {
	var visible int64
	for _, o := range s.Observations {
		visible += o.Conns
	}
	// tls13 / (tls13 + visible) = 0.25  =>  tls13 = visible / 3.
	target := visible / 3
	if target == 0 {
		return
	}
	n := 50 + s.scaled(2000)
	split := s.split(target, n)
	pop := s.ipPool.take(s.scaled(40000))
	for i := 0; i < n; i++ {
		first, last := s.window()
		s.Observations = append(s.Observations, &Observation{
			TLS13:       true,
			ServerIP:    s.serverIP(),
			Port:        443,
			Domain:      s.randHost(),
			Conns:       split[i],
			Established: s.establishSplit(split[i], 0.99),
			ClientIPs:   s.pickClientIPs(pop, 1+s.rng.IntN(10)),
			First:       first,
			Last:        last,
		})
	}
}

// scaled converts a paper-scale count to this scenario's size (minimum 1).
func (s *Scenario) scaled(paperCount int) int {
	n := int(float64(paperCount)*s.Config.Scale + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// End returns the end of the collection window.
func (s *Scenario) End() time.Time {
	return s.Config.Start.AddDate(0, s.Config.Months, 0)
}

// randTime returns a uniformly random instant inside the window.
func (s *Scenario) randTime() time.Time {
	span := s.End().Sub(s.Config.Start)
	return s.Config.Start.Add(time.Duration(s.rng.Int64N(int64(span))))
}

// window returns a random (first, last) observation pair in order.
func (s *Scenario) window() (time.Time, time.Time) {
	a, b := s.randTime(), s.randTime()
	if b.Before(a) {
		a, b = b, a
	}
	return a, b
}

// split distributes total units into n parts with multiplicative jitter,
// preserving the exact total.
func (s *Scenario) split(total int64, n int) []int64 {
	if n <= 0 {
		return nil
	}
	// Draw jittered weights, then allocate proportionally with a floor of
	// one unit each; the remainder spreads one unit at a time so the total
	// is exact whenever total >= n.
	weights := make([]float64, n)
	var wsum float64
	for i := range weights {
		weights[i] = 0.25 + s.rng.Float64()*1.75
		wsum += weights[i]
	}
	out := make([]int64, n)
	var sum int64
	for i := range out {
		out[i] = int64(float64(total) * weights[i] / wsum)
		if out[i] < 1 {
			out[i] = 1
		}
		sum += out[i]
	}
	for i := 0; sum > total && i < n; i++ {
		if out[i] > 1 {
			give := out[i] - 1
			if give > sum-total {
				give = sum - total
			}
			out[i] -= give
			sum -= give
		}
	}
	for i := 0; sum < total; i++ {
		out[i%n]++
		sum++
	}
	return out
}

// establishSplit splits conns into (established, rest) at the given rate,
// rounding stochastically so small observations still average correctly.
func (s *Scenario) establishSplit(conns int64, rate float64) int64 {
	est := float64(conns) * rate
	n := int64(est)
	if s.rng.Float64() < est-float64(n) {
		n++
	}
	if n > conns {
		n = conns
	}
	return n
}

// Totals aggregates the scenario per category — the generator-side ground
// truth for Table 2.
type Totals struct {
	Chains      map[chain.Category]int
	Conns       map[chain.Category]int64
	Established map[chain.Category]int64
	ClientIPs   map[chain.Category]int
}

// Totals computes the aggregate counts.
func (s *Scenario) Totals() Totals {
	t := Totals{
		Chains:      make(map[chain.Category]int),
		Conns:       make(map[chain.Category]int64),
		Established: make(map[chain.Category]int64),
		ClientIPs:   make(map[chain.Category]int),
	}
	ipSets := make(map[chain.Category]map[string]bool)
	for _, o := range s.Observations {
		if o.TLS13 {
			continue
		}
		t.Chains[o.Category]++
		t.Conns[o.Category] += o.Conns
		t.Established[o.Category] += o.Established
		set := ipSets[o.Category]
		if set == nil {
			set = make(map[string]bool)
			ipSets[o.Category] = set
		}
		for _, ip := range o.ClientIPs {
			set[ip] = true
		}
	}
	for c, set := range ipSets {
		t.ClientIPs[c] = len(set)
	}
	return t
}
