package campus

import (
	"fmt"
	"time"

	"certchains/internal/certmodel"
	"certchains/internal/chain"
	"certchains/internal/dn"
)

// §4.3 / Figure 1 shape constants for the non-public-DB-only population.
const (
	nonPubSingleShare       = 0.7810 // single-certificate chains
	nonPubSelfSignedShare   = 0.9419 // of single-cert chains
	nonPubNoSNIShare        = 0.8670 // of single-cert connections
	nonPubMultiMatchedShare = 0.9976 // multi-cert chains that are matched paths
	// Of the non-matched multi-cert remainder, the paper counts 142
	// contains vs 87 none.
	nonPubContainsShare = 142.0 / (142.0 + 87.0)

	// DGA cluster absolutes (scaled): 21,880 connections from 761 IPs.
	paperDGAConns   = 21880
	paperDGAIPs     = 761
	paperDGACerts   = 400 // cluster size; paper reports the cluster, not a count
	dgaMinValidityD = 4
	dgaMaxValidityD = 365
)

// Table 4 port mixes.
var nonPubSinglePorts = weightedPorts{
	{443, 4629}, {8888, 2152}, {33854, 1908}, {13000, 422}, {25, 130}, {9000, 759},
}

var nonPubMultiPorts = weightedPorts{
	{443, 8351}, {8531, 418}, {9093, 285}, {38881, 181}, {6443, 145}, {8080, 620},
}

type weightedPorts []struct {
	port   int
	weight int
}

func (w weightedPorts) pick(s *Scenario) int {
	total := 0
	for _, p := range w {
		total += p.weight
	}
	n := s.rng.IntN(total)
	for _, p := range w {
		n -= p.weight
		if n < 0 {
			return p.port
		}
	}
	return w[0].port
}

// generateNonPublicOnly emits the non-public-DB-only population: the
// self-signed sea, the DGA cluster, multi-certificate private hierarchies,
// the complex-PKI structures of Appendix I, and the three pathological
// oversized chains.
func (s *Scenario) generateNonPublicOnly() {
	n := s.scaled(paperNonPubChains)
	nSingle := int(float64(n) * nonPubSingleShare)
	nMulti := n - nSingle
	nDGA := s.scaled(paperDGACerts)
	if nDGA > nSingle/10 {
		nDGA = nSingle / 10
	}
	nSelfSigned := int(float64(nSingle) * nonPubSelfSignedShare)
	nDistinct := nSingle - nSelfSigned
	if nDGA > nDistinct {
		nDGA = nDistinct
	}

	pop := s.ipPool.take(s.scaled(paperNonPubClientIPs))
	connBudget := int64(float64(paperNonPubConns) * s.Config.Scale)
	dgaConnBudget := int64(float64(paperDGAConns) * s.Config.Scale)
	if dgaConnBudget < int64(nDGA) {
		dgaConnBudget = int64(nDGA)
	}
	singleConns := s.split(connBudget*7/10, nSelfSigned)
	distinctConns := s.split(connBudget*1/10, nDistinct-nDGA)
	dgaConns := s.split(dgaConnBudget, nDGA)
	multiConns := s.split(connBudget*2/10, nMulti)

	dgaPop := s.pickClientIPs(pop, min(s.scaled(paperDGAIPs), len(pop)))

	// --- single-certificate, self-signed (the 94.19%) -------------------
	for i := 0; i < nSelfSigned; i++ {
		name := s.randHost()
		subject := dnFor(name, "", "")
		cert := s.pki.mkCert(subject, subject,
			withValidity(time.Duration(1+s.rng.IntN(10))*365*24*time.Hour),
			withBC(s.maybeAbsentBC(0.5531)))
		s.emitNonPub(certmodel.Chain{cert}, name, nonPubSinglePorts.pick(s), singleConns[i], 0.72, pop, nonPubNoSNIShare)
	}

	// --- single-certificate, distinct issuer/subject: DGA cluster -------
	for i := 0; i < nDGA; i++ {
		issuer := dnFor(s.randDGAName(), "", "")
		subject := dnFor(s.randDGAName(), "", "")
		days := dgaMinValidityD + s.rng.IntN(dgaMaxValidityD-dgaMinValidityD+1)
		cert := s.pki.mkCert(issuer, subject, withValidity(time.Duration(days)*24*time.Hour))
		first, last := s.window()
		c := dgaConns[i]
		o := &Observation{
			Chain:       certmodel.Chain{cert},
			Category:    chain.NonPublicDBOnly,
			ServerIP:    s.serverIP(),
			Port:        443,
			Domain:      subject.CommonName(),
			Conns:       c,
			Established: s.establishSplit(c, 0.35),
			NoSNI:       c / 2,
			ClientIPs:   s.pickClientIPs(dgaPop, 1+s.rng.IntN(4)),
			First:       first,
			Last:        last,
		}
		s.Observations = append(s.Observations, o)
	}

	// --- single-certificate, distinct issuer/subject: non-DGA -----------
	for i := 0; i < nDistinct-nDGA; i++ {
		org := s.randDomain()
		issuer := dnFor("CA "+org, org, "US")
		subject := dnFor("device."+org, org, "US")
		cert := s.pki.mkCert(issuer, subject, withValidity(3*365*24*time.Hour),
			withBC(s.maybeAbsentBC(0.5531)))
		s.emitNonPub(certmodel.Chain{cert}, subject.CommonName(), nonPubSinglePorts.pick(s), distinctConns[i], 0.60, pop, 0.5)
	}

	// --- multi-certificate private hierarchies ---------------------------
	// A pool of private CA families; most chains are straightforward
	// (intermediates linked to at most two others), a few form the complex
	// structures of Appendix I.
	nFamilies := 1 + nMulti/40
	families := make([]*metaCA, 0, nFamilies)
	for i := 0; i < nFamilies; i++ {
		org := s.randDomain()
		families = append(families, s.pki.newSelfSignedIssuer(dnFor(org+" Root CA", org, "US")))
	}
	// Complex hub: one intermediate seen with >= 3 other intermediates.
	hubOrg := "megacorp.example"
	hubRoot := s.pki.newSelfSignedIssuer(dnFor(hubOrg+" Root", hubOrg, "US"))
	hub := hubRoot.intermediate(dnFor(hubOrg+" Policy CA", hubOrg, "US"), withBC(certmodel.BCAbsent))
	hubSubs := make([]*metaCA, 4)
	for i := range hubSubs {
		hubSubs[i] = hub.intermediate(dnFor(fmt.Sprintf("%s Issuing CA %d", hubOrg, i+1), hubOrg, "US"), withBC(certmodel.BCAbsent))
	}

	for i := 0; i < nMulti; i++ {
		var ch certmodel.Chain
		host := s.randHost()
		r := s.rng.Float64()
		switch {
		case i < 4*len(hubSubs): // complex-PKI chains through the hub
			sub := hubSubs[i%len(hubSubs)]
			// Leaves of non-public issuers frequently omit
			// basicConstraints (55.31% first-position).
			leaf := sub.leaf(dnFor(host, hubOrg, "US"), withBC(s.maybeAbsentBC(0.5531)))
			ch = certmodel.Chain{leaf, sub.Cert, hub.Cert, hubRoot.Cert}
		case r < nonPubMultiMatchedShare:
			fam := families[s.rng.IntN(len(families))]
			length := 2 + s.rng.IntN(3)
			ch = s.privateMatchedChain(fam, host, length)
		case r < nonPubMultiMatchedShare+(1-nonPubMultiMatchedShare)*nonPubContainsShare:
			fam := families[s.rng.IntN(len(families))]
			ch = s.privateMatchedChain(fam, host, 2)
			// Unrelated extra certificate appended.
			stray := s.pki.mkCert(dnFor("Stray CA", "", ""), dnFor("stray."+s.randDomain(), "", ""))
			ch = append(ch, stray)
		default:
			// No matched path at all.
			a := s.pki.mkCert(dnFor("Mis CA 1", "", ""), dnFor(host, "", ""), withBC(s.maybeAbsentBC(0.5531)))
			b := s.pki.mkCert(dnFor("Mis CA 2", "", ""), dnFor("other-"+s.randDomain(), "", ""))
			ch = certmodel.Chain{a, b}
		}
		s.emitNonPub(ch, host, nonPubMultiPorts.pick(s), multiConns[i], 0.80, pop, 0.05)
	}

	// --- pathological oversized chains (Figure 1 exclusions) ------------
	for _, length := range []int{3822, 921, 41} {
		iss := dnFor("Broken Generator CA", "", "")
		ch := make(certmodel.Chain, length)
		for j := range ch {
			ch[j] = s.pki.mkCert(iss, dnFor(fmt.Sprintf("pad-%d.invalid", j), "", ""))
		}
		first, _ := s.window()
		o := &Observation{
			Chain:       ch,
			Category:    chain.NonPublicDBOnly,
			ServerIP:    s.serverIP(),
			Port:        443,
			Domain:      "",
			Conns:       1,
			Established: 0, // all three yielded unestablished connections
			NoSNI:       1,
			ClientIPs:   s.pickClientIPs(pop, 1),
			First:       first,
			Last:        first,
		}
		s.Observations = append(s.Observations, o)
	}
}

// maybeAbsentBC returns BCAbsent with probability p, else BCFalse —
// modelling the §4.3 basicConstraints omission rates.
func (s *Scenario) maybeAbsentBC(p float64) certmodel.BasicConstraints {
	if s.rng.Float64() < p {
		return certmodel.BCAbsent
	}
	return certmodel.BCFalse
}

// privateMatchedChain mints a fully matched private chain of the given
// length under the family root. Subsequent-position certificates omit
// basicConstraints at the §4.3 rate (78.32%).
func (s *Scenario) privateMatchedChain(root *metaCA, host string, length int) certmodel.Chain {
	cas := []*metaCA{root}
	for len(cas) < length-1 {
		parent := cas[len(cas)-1]
		name := parent.Cert.Subject.Organization()
		sub := parent.intermediate(
			dnFor(fmt.Sprintf("%s Issuing CA %d", name, len(cas)), name, "US"),
			withBC(s.subsequentBC()))
		cas = append(cas, sub)
	}
	// Build leaf-first, ending at the root.
	issuerCA := cas[len(cas)-1]
	leaf := issuerCA.leaf(dnFor(host, "", ""), withBC(s.maybeAbsentBC(0.5531)), withSANs(host))
	ch := certmodel.Chain{leaf}
	for i := len(cas) - 1; i >= 0; i-- {
		ch = append(ch, cas[i].Cert)
	}
	return ch
}

// subsequentBC models basicConstraints on non-first-position certificates:
// absent 78.32% of the time, else CA=TRUE.
func (s *Scenario) subsequentBC() certmodel.BasicConstraints {
	if s.rng.Float64() < 0.7832 {
		return certmodel.BCAbsent
	}
	return certmodel.BCTrue
}

// emitNonPub appends a non-public-DB-only observation and tracks servers
// with SNI for the §5 revisit.
func (s *Scenario) emitNonPub(ch certmodel.Chain, domain string, port int, conns int64, estRate float64, pop []string, noSNIShare float64) {
	first, last := s.window()
	noSNI := int64(float64(conns) * noSNIShare)
	if noSNI > conns {
		noSNI = conns
	}
	sni := domain
	if noSNI == conns {
		sni = ""
	}
	o := &Observation{
		Chain:       ch,
		Category:    chain.NonPublicDBOnly,
		ServerIP:    s.serverIP(),
		Port:        port,
		Domain:      sni,
		Conns:       conns,
		Established: s.establishSplit(conns, estRate),
		NoSNI:       noSNI,
		ClientIPs:   s.pickClientIPs(pop, 1+s.rng.IntN(6)),
		First:       first,
		Last:        last,
	}
	s.Observations = append(s.Observations, o)
	if sni != "" {
		s.nonPubServers = append(s.nonPubServers, o)
	}
}

var _ = dn.FromMap
