package zeek

import (
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"certchains/internal/certmodel"
	"certchains/internal/dn"
)

// The differential wall: FastJoin/FastJoinJSON are pinned byte-identical to
// Join/JoinJSON — same joined rows in the same order, same per-row errors,
// same stream errors, on ANY input — with the legacy decoder as the oracle.

// metaSnap is a comparable deep view of a Meta. Meta itself carries
// unexported atomic memo fields, so reflect.DeepEqual on *Meta would compare
// memo state rather than decoded content.
type metaSnap struct {
	FP              certmodel.Fingerprint
	Issuer, Subject dn.DN
	SerialHex       string
	NotBefore       time.Time
	NotAfter        time.Time
	KeyAlg          certmodel.KeyAlgorithm
	KeyBits         int
	BC              certmodel.BasicConstraints
	SAN             []string
	SigAlg          string
}

func snapMeta(m *certmodel.Meta) metaSnap {
	return metaSnap{
		FP: m.FP, Issuer: m.Issuer, Subject: m.Subject, SerialHex: m.SerialHex,
		NotBefore: m.NotBefore, NotAfter: m.NotAfter, KeyAlg: m.KeyAlg,
		KeyBits: m.KeyBits, BC: m.BC, SAN: m.SAN, SigAlg: m.SigAlg,
	}
}

// connSnap is one callback event: either a joined row (deep-copied out of
// the pooled record) or a per-row error string.
type connSnap struct {
	Err   string
	SSL   SSLRecord
	Chain []metaSnap
}

type joinFunc func(ssl, x509 io.Reader, fn func(*Connection, error) error) error

// collectJoin drains one join implementation into comparable events plus the
// stream-level error string.
func collectJoin(join joinFunc, ssl, x509 string) (events []connSnap, streamErr string) {
	err := join(strings.NewReader(ssl), strings.NewReader(x509), func(c *Connection, err error) error {
		if err != nil {
			events = append(events, connSnap{Err: err.Error()})
			return nil
		}
		s := connSnap{SSL: *c.SSL}
		s.SSL.CertChainFUIDs = append([]string(nil), c.SSL.CertChainFUIDs...)
		for _, m := range c.Chain {
			s.Chain = append(s.Chain, snapMeta(m))
		}
		events = append(events, s)
		return nil
	})
	if err != nil {
		streamErr = err.Error()
	}
	return events, streamErr
}

func diffJoins(t *testing.T, legacy, fast joinFunc, ssl, x509 string) {
	t.Helper()
	wantEv, wantErr := collectJoin(legacy, ssl, x509)
	gotEv, gotErr := collectJoin(fast, ssl, x509)
	if wantErr != gotErr {
		t.Fatalf("stream error diverged:\nlegacy: %q\nfast:   %q\nssl:\n%q\nx509:\n%q", wantErr, gotErr, ssl, x509)
	}
	if len(wantEv) != len(gotEv) {
		t.Fatalf("event count diverged: legacy %d, fast %d\nssl:\n%q\nx509:\n%q", len(wantEv), len(gotEv), ssl, x509)
	}
	for i := range wantEv {
		if !reflect.DeepEqual(wantEv[i], gotEv[i]) {
			t.Fatalf("event %d diverged:\nlegacy: %+v\nfast:   %+v\nssl:\n%q\nx509:\n%q", i, wantEv[i], gotEv[i], ssl, x509)
		}
	}
}

const tsvSSLHeader = "#separator \\x09\n#fields\tts\tuid\tid.orig_h\tid.orig_p\tid.resp_h\tid.resp_p\tversion\tcipher\tserver_name\tresumed\testablished\tcert_chain_fuids\n"

const tsvX509Header = "#fields\tts\tid\tcertificate.version\tcertificate.serial\tcertificate.subject\tcertificate.issuer\tcertificate.not_valid_before\tcertificate.not_valid_after\tcertificate.key_alg\tcertificate.sig_alg\tcertificate.key_type\tcertificate.key_length\tbasic_constraints.ca\tsan.dns\n"

const tsvSeedX509Row = "1700000000.5\tFa1\t3\t0AbC\tCN=leaf,O=Campus\tCN=Inter CA\t1690000000.0\t1790000000.0\trsa\tsha256WithRSAEncryption\trsa\t2048\tF\texample.edu,www.example.edu\n"

const tsvSeedSSLRow = "1700000001.25\tCu1\t10.0.0.1\t51234\t10.0.0.2\t443\tTLSv12\tTLS_AES_128_GCM_SHA256\texample.edu\tF\tT\tFa1\n"

// tsvSeedCases feed the TSV differential fuzzer and are replayed as plain
// deterministic tests; [0] is the ssl stream, [1] the x509 stream.
var tsvSeedCases = [][2]string{
	{tsvSSLHeader + tsvSeedSSLRow, tsvX509Header + tsvSeedX509Row},
	// Sentinels, escapes, vectors with empties.
	{tsvSSLHeader + "1.5\tCu2\t-\t-\t(empty)\t0\t-\t-\t\\x2d\tT\tF\tFa1,Fa2\n",
		tsvX509Header + tsvSeedX509Row + "2.0\tFa2\t3\t-\tCN=mid\\x2ccomma\tCN=Root\t-\t-\t-\t-\tecdsa\t256\tT\t-\n"},
	// Duplicate x509 id (first wins), unknown fuid, missing ts/uid rows.
	{tsvSSLHeader + "-\tCu3\t-\t-\t-\t0\t-\t-\t-\tF\tF\t-\n2.0\t-\t-\t0\t-\t0\t-\t-\t-\tF\tF\t-\n3.0\tCu4\t-\t0\t-\t0\t-\t-\t-\tF\tF\tFmissing\n",
		tsvX509Header + tsvSeedX509Row + tsvSeedX509Row},
	// Truncated final lines (mid-write tolerance), CRLF, blank lines.
	{tsvSSLHeader + "\r\n" + tsvSeedSSLRow + "9.0\tCutoff\t10.0.0.9", tsvX509Header + "1.0\tFa1\t3"},
	// Wrong field count (terminated: error), data before header.
	{tsvSSLHeader + "1.0\tonly-two\n", "1.0\tFa1\n"},
	// Header variants: bare #fields, re-declared header mid-stream, dup names.
	{"#fields\n1.0\n#fields\tts\tuid\tuid\n1.0\tA\tB\n", "#fields\tts\tid\n1.0\tF1\n"},
	// Escape torture: dangling backslash, malformed hex, escaped separator.
	{tsvSSLHeader + "1.0\tC\\x5c1\t\\xZZ\t1\t\\x\t2\t\\\t-\t\\x2D\tT\tT\t-\n", tsvX509Header},
}

func FuzzTSVDecodeEquivalence(f *testing.F) {
	for _, c := range tsvSeedCases {
		f.Add(c[0], c[1])
	}
	f.Fuzz(func(t *testing.T, ssl, x509 string) {
		if len(ssl)+len(x509) > 1<<16 {
			t.Skip("oversized input")
		}
		diffJoins(t, Join, FastJoin, ssl, x509)
	})
}

const jsonSSLRow = `{"ts":1700000001.25,"uid":"Cu1","id.orig_h":"10.0.0.1","id.orig_p":51234,"id.resp_h":"10.0.0.2","id.resp_p":443,"version":"TLSv12","cipher":"TLS_AES_128_GCM_SHA256","server_name":"example.edu","resumed":false,"established":true,"cert_chain_fuids":["Fa1"]}` + "\n"

const jsonX509Row = `{"ts":1700000000.5,"id":"Fa1","certificate.version":3,"certificate.serial":"0AbC","certificate.subject":"CN=leaf,O=Campus","certificate.issuer":"CN=Inter CA","certificate.not_valid_before":1690000000,"certificate.not_valid_after":1790000000,"certificate.key_alg":"rsa","certificate.sig_alg":"sha256WithRSAEncryption","certificate.key_type":"rsa","certificate.key_length":2048,"basic_constraints.ca":false,"san.dns":["example.edu","www.example.edu"]}` + "\n"

// jsonSeedCases feed the ND-JSON differential fuzzer and are replayed as
// plain deterministic tests; [0] is the ssl stream, [1] the x509 stream.
var jsonSeedCases = [][2]string{
	{jsonSSLRow, jsonX509Row},
	// Nulls, sentinel strings, empty strings and arrays, unknown keys.
	{`{"ts":2,"uid":"Cu2","server_name":null,"version":"-","cipher":"","cert_chain_fuids":[],"extra":[1,"x",null]}` + "\n",
		`{"ts":2,"id":"Fa1","certificate.subject":"","certificate.issuer":null,"basic_constraints.ca":null,"san.dns":null}` + "\n"},
	// Escapes and nested values force the legacy fallback; duplicate keys.
	{`{"ts":3,"uid":"C\u00753","nested":{"a":1}}` + "\n" + `{"ts":4,"uid":"Cu4","uid":"Cu5"}` + "\n",
		`{"ts":3,"id":"F\t1"}` + "\n"},
	// Numeric edges: exponents, -0, huge, non-integral ports, out-of-range,
	// and grammar the legacy parser rejects.
	{`{"ts":1e9,"uid":"Cu6","id.orig_p":3.5,"id.resp_p":-0,"cert_chain_fuids":["a","b"]}` + "\n" + `{"ts":01,"uid":"bad"}` + "\n",
		`{"ts":1.0e-3,"id":"F6","certificate.key_length":1e999}` + "\n"},
	// Type surprises: string ts, numeric uid, bool where string expected.
	{`{"ts":"5.5","uid":"Cu7","version":7,"resumed":"T"}` + "\n", `{"ts":6,"id":7}` + "\n"},
	// Malformed JSON (stream error), blank lines, CRLF.
	{"\r\n" + `{"ts":8,"uid":"Cu8"}` + "\r\n" + `{"ts":` + "\n", `{"ts":8,"id":"F8"}` + "\n"},
	// Missing ts / uid / id, whole-array sentinels.
	{`{"uid":"Cu9"}` + "\n" + `{"ts":9,"uid":"-"}` + "\n" + `{"ts":9,"uid":"Cu10","cert_chain_fuids":["-"]}` + "\n",
		`{"id":"F9"}` + "\n" + `{"ts":9,"id":"-"}` + "\n"},
}

func FuzzJSONDecodeEquivalence(f *testing.F) {
	for _, c := range jsonSeedCases {
		f.Add(c[0], c[1])
	}
	f.Fuzz(func(t *testing.T, ssl, x509 string) {
		if len(ssl)+len(x509) > 1<<16 {
			t.Skip("oversized input")
		}
		diffJoins(t, JoinJSON, FastJoinJSON, ssl, x509)
	})
}

// TestFastJoinSeedEquivalence replays every fuzz seed deterministically so
// the wall holds in plain `go test` runs, not only under `make fuzz`.
func TestFastJoinSeedEquivalence(t *testing.T) {
	for i, c := range tsvSeedCases {
		t.Run(fmt.Sprintf("tsv-%d", i), func(t *testing.T) {
			diffJoins(t, Join, FastJoin, c[0], c[1])
		})
	}
	for i, c := range jsonSeedCases {
		t.Run(fmt.Sprintf("json-%d", i), func(t *testing.T) {
			diffJoins(t, JoinJSON, FastJoinJSON, c[0], c[1])
		})
	}
}

// TestFastJoinGeneratedLogs runs both decoders over writer-produced logs —
// the realistic shape the pipeline consumes — and over the same logs with
// truncation applied at every byte offset of the final record.
func TestFastJoinGeneratedLogs(t *testing.T) {
	var sslBuf, x509Buf strings.Builder
	now := time.Unix(1700000000, 0).UTC()
	xw := NewX509Writer(&x509Buf, now)
	certs := []*X509Record{
		{TS: now, ID: "Fleaf", Version: 3, Serial: "0A1B", Subject: "CN=leaf.example.edu,O=Campus", Issuer: "CN=Inter CA,O=Campus", NotValidBefore: now, NotValidAfter: now.Add(90 * 24 * time.Hour), KeyAlg: "rsa", SigAlg: "sha256WithRSAEncryption", KeyType: "rsa", KeyLength: 2048, SANDNS: []string{"leaf.example.edu", "alt.example.edu"}},
		{TS: now, ID: "Finter", Version: 3, Serial: "ff00", Subject: "CN=Inter CA,O=Campus", Issuer: "CN=Root CA", NotValidBefore: now, NotValidAfter: now.Add(3650 * 24 * time.Hour), KeyAlg: "ecdsa", SigAlg: "ecdsa-with-SHA256", KeyType: "ecdsa", KeyLength: 256},
		{TS: now, ID: "Froot", Version: 3, Serial: "01", Subject: "CN=Root CA", Issuer: "CN=Root CA", NotValidBefore: now, NotValidAfter: now.Add(7300 * 24 * time.Hour), KeyAlg: "rsa", SigAlg: "sha256WithRSAEncryption", KeyType: "rsa", KeyLength: 4096},
		// Odd values: spaces needing escapes, commas in DN values, empty SAN.
		{TS: now, ID: "Fodd", Serial: "", Subject: `CN=odd\, comma,OU=A  B`, Issuer: "CN=Inter CA,O=Campus", KeyType: "", SANDNS: nil},
	}
	ca := true
	certs[1].BasicConstraintsCA = &ca
	certs[2].BasicConstraintsCA = &ca
	for _, c := range certs {
		if err := xw.Write(c); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate id row: first record must win.
	dup := *certs[0]
	dup.KeyLength = 9999
	if err := xw.Write(&dup); err != nil {
		t.Fatal(err)
	}
	if err := xw.Close(now.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}

	sw := NewSSLWriter(&sslBuf, now)
	conns := []*SSLRecord{
		{TS: now.Add(1 * time.Second), UID: "C1", OrigH: "10.0.0.1", OrigP: 40000, RespH: "10.0.0.2", RespP: 443, Version: "TLSv13", Cipher: "TLS_AES_128_GCM_SHA256", ServerName: "leaf.example.edu", Established: true, CertChainFUIDs: []string{"Fleaf", "Finter", "Froot"}},
		{TS: now.Add(2 * time.Second), UID: "C2", RespH: "10.0.0.2", RespP: 443, Resumed: true, CertChainFUIDs: []string{"Fleaf", "Finter", "Froot"}},
		{TS: now.Add(3 * time.Second), UID: "C3", RespH: "10.0.0.3", RespP: 8443, ServerName: "odd.example.edu", CertChainFUIDs: []string{"Fodd", "Finter"}},
		{TS: now.Add(4 * time.Second), UID: "C4", RespH: "10.0.0.4", RespP: 443, CertChainFUIDs: []string{"Fgone"}}, // unknown fuid
		{TS: now.Add(5 * time.Second), UID: "C5", RespH: "10.0.0.2", RespP: 443},                                    // no chain
	}
	for _, c := range conns {
		if err := sw.Write(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(now.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}

	ssl, x509 := sslBuf.String(), x509Buf.String()
	diffJoins(t, Join, FastJoin, ssl, x509)

	// Truncate the ssl stream at every offset across its final 200 bytes:
	// the mid-write tolerance must match cut by cut.
	for cut := len(ssl) - 200; cut < len(ssl); cut++ {
		diffJoins(t, Join, FastJoin, ssl[:cut], x509)
	}
	for cut := len(x509) - 200; cut < len(x509); cut++ {
		diffJoins(t, Join, FastJoin, ssl, x509[:cut])
	}
}

// TestFastJoinJSONGeneratedLines covers the JSON fast path and its fallback
// with hand-built ND-JSON streams.
func TestFastJoinJSONGeneratedLines(t *testing.T) {
	var ssl, x509 strings.Builder
	x509.WriteString(jsonX509Row)
	x509.WriteString(`{"ts":1700000000.75,"id":"Fb2","certificate.subject":"CN=Inter CA","certificate.issuer":"CN=Root CA","basic_constraints.ca":true,"certificate.key_length":256}` + "\n")
	// Duplicate id via the fallback path (escape in an unknown key).
	x509.WriteString(`{"ts":1700000009,"id":"Fa1","certificate.key_length":9999,"note":"dup \u0064"}` + "\n")
	for i := 0; i < 50; i++ {
		ssl.WriteString(jsonSSLRow)
		fmt.Fprintf(&ssl, `{"ts":%d.5,"uid":"Cx%d","id.resp_h":"10.1.0.%d","id.resp_p":443,"cert_chain_fuids":["Fa1","Fb2"],"established":true}`+"\n", 1700000100+i, i, i%7)
	}
	ssl.WriteString(`{"ts":1700000999,"uid":"Cmiss","cert_chain_fuids":["Fnope"]}` + "\n")
	ssl.WriteString(`{"uid":"CnoTS"}` + "\n")
	diffJoins(t, JoinJSON, FastJoinJSON, ssl.String(), x509.String())
}

// TestFastJoinChainCanonical pins the chain-interning contract: every
// connection delivering the same fuid sequence shares one canonical Chain
// value, so downstream consumers can retain it without copying.
func TestFastJoinChainCanonical(t *testing.T) {
	var sslBuf, x509Buf strings.Builder
	now := time.Unix(1700000000, 0).UTC()
	xw := NewX509Writer(&x509Buf, now)
	for _, id := range []string{"Fa", "Fb"} {
		if err := xw.Write(&X509Record{TS: now, ID: id, Subject: "CN=" + id, Issuer: "CN=Root"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := xw.Close(now); err != nil {
		t.Fatal(err)
	}
	sw := NewSSLWriter(&sslBuf, now)
	for i := 0; i < 4; i++ {
		if err := sw.Write(&SSLRecord{TS: now, UID: fmt.Sprintf("C%d", i), RespH: "10.0.0.1", RespP: 443, CertChainFUIDs: []string{"Fa", "Fb"}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(now); err != nil {
		t.Fatal(err)
	}
	var chains []certmodel.Chain
	err := FastJoin(strings.NewReader(sslBuf.String()), strings.NewReader(x509Buf.String()), func(c *Connection, err error) error {
		if err != nil {
			t.Fatalf("unexpected row error: %v", err)
		}
		chains = append(chains, c.Chain)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 4 {
		t.Fatalf("got %d rows, want 4", len(chains))
	}
	for i := 1; i < len(chains); i++ {
		if &chains[0][0] != &chains[i][0] || chains[0][0] != chains[i][0] {
			t.Fatalf("chain %d is not the canonical shared value", i)
		}
	}
}
