package zeek

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestJSONSSLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONSSLWriter(&buf)
	in := &SSLRecord{
		TS:             ts0,
		UID:            "CJ1",
		OrigH:          "10.9.8.7",
		OrigP:          40001,
		RespH:          "203.0.113.9",
		RespP:          443,
		Version:        "TLSv12",
		Cipher:         "TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256",
		ServerName:     "json.example.com",
		Established:    true,
		CertChainFUIDs: []string{"Fj1", "Fj2"},
	}
	if err := w.Write(in); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 1 {
		t.Errorf("Records = %d", w.Records())
	}
	if !strings.Contains(buf.String(), `"id.orig_h":"10.9.8.7"`) {
		t.Errorf("wire format: %s", buf.String())
	}

	rec, err := NewJSONReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseSSLRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if out.UID != in.UID || out.OrigP != in.OrigP || out.ServerName != in.ServerName ||
		!out.Established || len(out.CertChainFUIDs) != 2 {
		t.Errorf("round trip = %+v", out)
	}
	if !out.TS.Equal(ts0) {
		t.Errorf("ts = %v, want %v", out.TS, ts0)
	}
}

func TestJSONSSLNoSNI(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONSSLWriter(&buf)
	w.Write(&SSLRecord{TS: ts0, UID: "CJ2", OrigH: "10.0.0.1", RespH: "1.2.3.4", RespP: 8443})
	w.Close()
	// Absent SNI must be omitted on the wire, not rendered as "".
	if strings.Contains(buf.String(), "server_name") {
		t.Errorf("unset SNI serialized: %s", buf.String())
	}
	rec, _ := NewJSONReader(&buf).Read()
	out, err := ParseSSLRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if out.ServerName != "" {
		t.Errorf("SNI = %q", out.ServerName)
	}
}

func TestJSONX509RoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONX509Writer(&buf)
	in := &X509Record{
		TS: ts0, ID: "FJx", Version: 3, Serial: "1A2B",
		Subject:        "CN=json.example.com,O=J",
		Issuer:         "CN=JSON CA,O=J",
		NotValidBefore: ts0.AddDate(0, -1, 0),
		NotValidAfter:  ts0.AddDate(1, 0, 0),
		KeyType:        "ecdsa", KeyLength: 256,
		BasicConstraintsCA: boolPtr(true),
		SANDNS:             []string{"json.example.com"},
	}
	if err := w.Write(in); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if w.Records() != 1 {
		t.Errorf("Records = %d", w.Records())
	}
	rec, err := NewJSONReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseX509Record(rec)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != "FJx" || out.Serial != "1A2B" || out.KeyLength != 256 {
		t.Errorf("round trip = %+v", out)
	}
	if out.BasicConstraintsCA == nil || !*out.BasicConstraintsCA {
		t.Error("basic constraints lost")
	}
	m, err := out.ToMeta()
	if err != nil {
		t.Fatal(err)
	}
	if m.Subject.CommonName() != "json.example.com" {
		t.Errorf("meta subject = %q", m.Subject.CommonName())
	}
	if !m.NotBefore.Equal(in.NotValidBefore) {
		t.Errorf("notBefore = %v vs %v", m.NotBefore, in.NotValidBefore)
	}
}

func TestJSONX509AbsentBC(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONX509Writer(&buf)
	w.Write(&X509Record{TS: ts0, ID: "F", Subject: "CN=a", Issuer: "CN=b",
		NotValidBefore: ts0, NotValidAfter: ts0.AddDate(1, 0, 0)})
	w.Close()
	if strings.Contains(buf.String(), "basic_constraints") {
		t.Error("absent BC serialized")
	}
	rec, _ := NewJSONReader(&buf).Read()
	out, err := ParseX509Record(rec)
	if err != nil {
		t.Fatal(err)
	}
	if out.BasicConstraintsCA != nil {
		t.Error("absent BC must stay nil")
	}
}

func TestJSONReaderErrors(t *testing.T) {
	r := NewJSONReader(strings.NewReader("not json\n"))
	if _, err := r.Read(); err == nil {
		t.Error("bad JSON line must error")
	}
	// Empty lines are skipped.
	r = NewJSONReader(strings.NewReader("\n\n{\"ts\":1.5,\"uid\":\"C\"}\n"))
	rec, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := rec.Get("uid"); v != "C" {
		t.Errorf("uid = %q", v)
	}
}

func TestJSONReadAll(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONSSLWriter(&buf)
	for i := 0; i < 4; i++ {
		w.Write(&SSLRecord{TS: ts0.Add(time.Duration(i) * time.Second), UID: "C", OrigH: "10.0.0.1", RespH: "1.1.1.1", RespP: 443})
	}
	w.Close()
	recs, err := NewJSONReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Errorf("ReadAll = %d", len(recs))
	}
}

func TestJoinJSON(t *testing.T) {
	var ssl, x509 bytes.Buffer
	xw := NewJSONX509Writer(&x509)
	xw.Write(&X509Record{TS: ts0, ID: "FL", Subject: "CN=www.j.edu", Issuer: "CN=J CA",
		NotValidBefore: ts0.AddDate(0, -1, 0), NotValidAfter: ts0.AddDate(1, 0, 0)})
	xw.Write(&X509Record{TS: ts0, ID: "FC", Subject: "CN=J CA", Issuer: "CN=J CA",
		NotValidBefore: ts0.AddDate(-1, 0, 0), NotValidAfter: ts0.AddDate(5, 0, 0)})
	xw.Close()

	sw := NewJSONSSLWriter(&ssl)
	sw.Write(&SSLRecord{TS: ts0, UID: "CJ", OrigH: "10.1.1.1", OrigP: 5000, RespH: "5.5.5.5", RespP: 443,
		ServerName: "www.j.edu", Established: true, CertChainFUIDs: []string{"FL", "FC"}})
	sw.Close()

	var joined []*Connection
	err := JoinJSON(&ssl, &x509, func(c *Connection, err error) error {
		if err != nil {
			t.Fatalf("join err: %v", err)
		}
		joined = append(joined, c)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(joined) != 1 || len(joined[0].Chain) != 2 {
		t.Fatalf("joined = %+v", joined)
	}
	if !joined[0].Chain[1].SelfSigned() {
		t.Error("CA cert should be self-signed after JSON round trip")
	}
}

func BenchmarkJSONSSLWrite(b *testing.B) {
	w := NewJSONSSLWriter(discard{})
	rec := &SSLRecord{TS: ts0, UID: "C", OrigH: "10.0.0.1", OrigP: 1, RespH: "1.1.1.1", RespP: 443,
		ServerName: "bench.example.com", Established: true, CertChainFUIDs: []string{"Fa", "Fb"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.Write(rec); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
