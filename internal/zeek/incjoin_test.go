package zeek

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// incFixture builds a small ts-sorted pair of record streams: certificates
// always logged at (or before) the connections that reference them, exactly
// like Zeek writes them.
func incFixture() (ssls []*SSLRecord, x509s []*X509Record) {
	bt := true
	cert := func(id, subject, issuer string, ts time.Time) *X509Record {
		x := &X509Record{
			TS: ts, ID: id, Version: 3, Serial: "0A",
			Subject: "CN=" + subject, Issuer: "CN=" + issuer,
			NotValidBefore: ts0.AddDate(0, -1, 0), NotValidAfter: ts0.AddDate(1, 0, 0),
			KeyAlg: "rsa", SigAlg: "sha256WithRSAEncryption", KeyType: "rsa", KeyLength: 2048,
		}
		if subject == issuer {
			x.BasicConstraintsCA = &bt
		}
		return x
	}
	conn := func(uid string, ts time.Time, sni string, fuids ...string) *SSLRecord {
		return &SSLRecord{
			TS: ts, UID: uid, OrigH: "10.0.0.1", OrigP: 40000, RespH: "192.0.2.1", RespP: 443,
			Version: "TLSv12", Cipher: "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256",
			ServerName: sni, Established: true, CertChainFUIDs: fuids,
		}
	}
	at := func(s int) time.Time { return ts0.Add(time.Duration(s) * time.Second) }

	x509s = []*X509Record{
		cert("Fleaf1", "a.example", "Inner CA", at(0)),
		cert("Froot", "Inner CA", "Inner CA", at(0)),
		cert("Fleaf2", "b.example", "Inner CA", at(10)),
		cert("Fleaf1", "a.example", "Inner CA", at(20)), // re-logged: dup
		cert("Flate", "late.example", "Inner CA", at(40)),
	}
	ssls = []*SSLRecord{
		conn("C1", at(1), "a.example", "Fleaf1", "Froot"),
		conn("C2", at(11), "b.example", "Fleaf2", "Froot"),
		conn("C3", at(12), "", "Fmissing"), // referenced cert never logged
		conn("C4", at(21), "a.example", "Fleaf1", "Froot"),
		conn("C5", at(30), ""), // TLS 1.3 style: no chain logged
		conn("C6", at(41), "late.example", "Flate"),
	}
	return
}

// feed pushes the two streams through a joiner in the interleaving given by
// pattern ('s' = next ssl record, 'x' = next x509 record), returning the
// emitted UID sequence.
func feedJoiner(t *testing.T, j *IncrementalJoiner, emitted *[]string, pattern string) {
	t.Helper()
	ssls, x509s := incFixture()
	si, xi := 0, 0
	for _, step := range pattern {
		switch step {
		case 's':
			if err := j.AddSSL(ssls[si]); err != nil {
				t.Fatal(err)
			}
			si++
		case 'x':
			if err := j.AddX509(x509s[xi]); err != nil {
				t.Fatal(err)
			}
			xi++
		}
	}
	if si != len(ssls) || xi != len(x509s) {
		t.Fatalf("pattern %q consumed %d/%d ssl, %d/%d x509", pattern, si, len(ssls), xi, len(x509s))
	}
	if err := j.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalJoinPollIndependence(t *testing.T) {
	// Each pattern is one way poll cycles could interleave the two files.
	patterns := []string{
		"xxxxxssssss", // x509 fully read first (the batch join's order)
		"ssssssxxxxx", // ssl fully read first: everything held, drained late
		"xxssxssxsxs", // alternating chunks
		"sxsxsxxssxs",
	}
	var want []string
	var wantStats JoinerStats
	for i, pat := range patterns {
		var got []string
		j := NewIncrementalJoiner(0, 0, func(c *Connection) error {
			got = append(got, c.SSL.UID)
			return nil
		})
		feedJoiner(t, j, &got, pat)
		if i == 0 {
			want, wantStats = got, j.Stats()
			// Sanity: ssl.log order, orphan dropped.
			if !reflect.DeepEqual(want, []string{"C1", "C2", "C4", "C5", "C6"}) {
				t.Fatalf("emission = %v", want)
			}
			if j.Stats().Orphans != 1 {
				t.Fatalf("orphans = %d, want 1", j.Stats().Orphans)
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("pattern %q emitted %v, want %v", pat, got, want)
		}
		if j.Stats() != wantStats {
			t.Errorf("pattern %q stats %+v, want %+v", pat, j.Stats(), wantStats)
		}
	}
}

func TestIncrementalJoinWatermarkHolds(t *testing.T) {
	ssls, x509s := incFixture()
	var got []string
	j := NewIncrementalJoiner(0, 0, func(c *Connection) error {
		got = append(got, c.SSL.UID)
		return nil
	})
	// C1 (ts+1) with its certs indexed but watermark still at ts+0: held.
	j.AddX509(x509s[0])
	j.AddX509(x509s[1])
	j.AddSSL(ssls[0])
	if len(got) != 0 || j.PendingDepth() != 1 {
		t.Fatalf("connection released before watermark passed: got=%v depth=%d", got, j.PendingDepth())
	}
	// Watermark moves to ts+10 > ts+1: C1 drains.
	j.AddX509(x509s[2])
	if !reflect.DeepEqual(got, []string{"C1"}) {
		t.Fatalf("after watermark advance: %v", got)
	}
}

func TestIncrementalJoinChainOrderAndContent(t *testing.T) {
	var conns []*Connection
	j := NewIncrementalJoiner(0, 0, func(c *Connection) error {
		conns = append(conns, c)
		return nil
	})
	var emitted []string
	feedJoiner(t, j, &emitted, "xxxxxssssss")
	if len(conns) != 5 {
		t.Fatalf("%d connections", len(conns))
	}
	c1 := conns[0]
	if len(c1.Chain) != 2 || c1.Chain[0].Subject.CommonName() != "a.example" || !c1.Chain[1].SelfSigned() {
		t.Errorf("C1 chain wrong: %v", c1.Chain)
	}
	if len(conns[3].Chain) != 0 {
		t.Errorf("C5 should have an empty chain")
	}
}

// TestIncrementalJoinBoundedMemory is the no-leak regression: orphaned fuids
// and an unbounded certificate history must not grow the joiner.
func TestIncrementalJoinBoundedMemory(t *testing.T) {
	j := NewIncrementalJoiner(4, 8, func(c *Connection) error { return nil })
	at := func(s int) time.Time { return ts0.Add(time.Duration(s) * time.Second) }
	for i := 0; i < 100; i++ {
		x := &X509Record{
			TS: at(i), ID: fmt.Sprintf("F%03d", i), Version: 3,
			Subject: "CN=s", Issuer: "CN=i",
			NotValidBefore: ts0, NotValidAfter: ts0.AddDate(1, 0, 0),
		}
		if err := j.AddX509(x); err != nil {
			t.Fatal(err)
		}
		if j.CertIndexSize() > 4 {
			t.Fatalf("cert index grew to %d past cap", j.CertIndexSize())
		}
	}
	if j.Stats().Evictions != 96 {
		t.Errorf("evictions = %d, want 96", j.Stats().Evictions)
	}
	// ssl records referencing long-evicted (or never-logged) certs: the hold
	// queue must stay bounded by the valve and the connections drop as
	// orphans instead of accumulating.
	for i := 0; i < 100; i++ {
		r := &SSLRecord{TS: at(200 + i), UID: fmt.Sprintf("C%03d", i), CertChainFUIDs: []string{"F000"}}
		if err := j.AddSSL(r); err != nil {
			t.Fatal(err)
		}
		if j.PendingDepth() > 8 {
			t.Fatalf("pending depth grew to %d past cap", j.PendingDepth())
		}
	}
	if err := j.Finish(); err != nil {
		t.Fatal(err)
	}
	if j.PendingDepth() != 0 {
		t.Errorf("pending depth = %d after Finish", j.PendingDepth())
	}
	st := j.Stats()
	if st.Orphans != 100 {
		t.Errorf("orphans = %d, want 100", st.Orphans)
	}
	if st.Forced == 0 {
		t.Error("capacity valve never fired")
	}
}

func TestIncrementalJoinStateRoundTrip(t *testing.T) {
	ssls, x509s := incFixture()

	run := func(split int) ([]string, JoinerStats) {
		var got []string
		emit := func(c *Connection) error { got = append(got, c.SSL.UID); return nil }
		j := NewIncrementalJoiner(0, 0, emit)
		// Interleave deterministically: all certs with ts <= conn ts first.
		xi := 0
		feedOne := func(i int) {
			for xi < len(x509s) && !x509s[xi].TS.After(ssls[i].TS) {
				if err := j.AddX509(x509s[xi]); err != nil {
					t.Fatal(err)
				}
				xi++
			}
			if err := j.AddSSL(ssls[i]); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < split; i++ {
			feedOne(i)
		}
		if split < len(ssls) {
			// Serialize, "crash", restore into a fresh joiner.
			data, err := json.Marshal(j.State())
			if err != nil {
				t.Fatal(err)
			}
			var state JoinerState
			if err := json.Unmarshal(data, &state); err != nil {
				t.Fatal(err)
			}
			j = NewIncrementalJoiner(0, 0, emit)
			if err := j.RestoreState(&state); err != nil {
				t.Fatal(err)
			}
			for i := split; i < len(ssls); i++ {
				feedOne(i)
			}
		}
		for ; xi < len(x509s); xi++ {
			if err := j.AddX509(x509s[xi]); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Finish(); err != nil {
			t.Fatal(err)
		}
		return got, j.Stats()
	}

	wantEmit, wantStats := run(len(ssls))
	for split := 0; split < len(ssls); split++ {
		got, stats := run(split)
		if !reflect.DeepEqual(got, wantEmit) {
			t.Errorf("split %d emitted %v, want %v", split, got, wantEmit)
		}
		if stats != wantStats {
			t.Errorf("split %d stats %+v, want %+v", split, stats, wantStats)
		}
	}
}
