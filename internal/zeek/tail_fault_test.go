package zeek

import (
	"os"
	"reflect"
	"strings"
	"testing"

	"certchains/internal/obs"
	"certchains/internal/resilience"
)

// Fault-injected tailer tests. The contract under test: a failed Poll leaves
// the tailer's position untouched, so polling again after any injected fault
// yields exactly the records a fault-free tailer would have seen — no
// duplicates, no dropped lines.

// faultTailer builds a TSV tailer whose filesystem runs through the plan
// under the "ssl" operation prefix (ops "ssl.open", "ssl.stat", "ssl.read").
func faultTailer(t *testing.T, path string, plan *resilience.Plan) *Tailer {
	t.Helper()
	tl := NewTailerFS(path, func() LineDecoder { return NewTSVDecoder() }, plan.FS("ssl", nil))
	t.Cleanup(func() { tl.Close() })
	return tl
}

// pollUntilClean polls through injected faults until one poll succeeds,
// bounded so a misbehaving plan cannot hang the test.
func pollUntilClean(t *testing.T, tl *Tailer, emit func(Record) error) (faults int) {
	t.Helper()
	for tries := 0; tries < 50; tries++ {
		err := tl.Poll(emit)
		if err == nil {
			return faults
		}
		if !resilience.IsInjected(err) {
			t.Fatalf("non-injected poll error: %v", err)
		}
		faults++
	}
	t.Fatal("poll never recovered within 50 tries")
	return
}

func TestTailerReadFaultRetryEquivalence(t *testing.T) {
	path, write, _ := tailerFixtures(t)
	write(tailHeader + "r1a\tr1b\nr2a\tr2b\nr3a\tr3b\n")

	// Fault-free reference.
	ref := NewTailer(path, func() LineDecoder { return NewTSVDecoder() })
	defer ref.Close()
	want := collectTail(t, ref)
	if len(want) != 3 {
		t.Fatalf("reference records = %d", len(want))
	}

	reg := obs.NewRegistry()
	m := resilience.NewMetrics(reg)
	plan := resilience.NewPlan(
		resilience.Fault{Op: "ssl.read", Attempt: 1, Kind: resilience.ReadErr},
	)
	plan.SetMetrics(m)
	tl := faultTailer(t, path, plan)

	var got []Record
	faults := pollUntilClean(t, tl, func(r Record) error { got = append(got, r); return nil })
	if faults != 1 {
		t.Errorf("faulted polls = %d, want 1", faults)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("records diverged after read fault:\n got %v\nwant %v", got, want)
	}
	if plan.Pending() != 0 {
		t.Errorf("unplayed faults: %s", plan.Describe())
	}
	if gotF := resilience.FaultTotal(reg); gotF != float64(plan.InjectedCount()) {
		t.Errorf("fault metric = %v, want %d", gotF, plan.InjectedCount())
	}
}

func TestTailerOpenFaultRetry(t *testing.T) {
	path, write, _ := tailerFixtures(t)
	write(tailHeader + "r1a\tr1b\n")

	plan := resilience.NewPlan(
		resilience.Fault{Op: "ssl.open", Attempt: 1, Kind: resilience.OpenErr},
	)
	tl := faultTailer(t, path, plan)

	var got []Record
	faults := pollUntilClean(t, tl, func(r Record) error { got = append(got, r); return nil })
	if faults != 1 {
		t.Errorf("faulted polls = %d, want 1", faults)
	}
	if len(got) != 1 {
		t.Fatalf("records = %d, want 1", len(got))
	}
}

func TestTailerShortAndSlowReadsDegradeOnly(t *testing.T) {
	path, write, _ := tailerFixtures(t)
	write(tailHeader + "r1a\tr1b\nr2a\tr2b\n")

	// Short and slow reads are degradations: the poll still succeeds and
	// yields every line.
	plan := resilience.NewPlan(
		resilience.Fault{Op: "ssl.read", Attempt: 1, Kind: resilience.ShortRead, N: 7},
		resilience.Fault{Op: "ssl.read", Attempt: 2, Kind: resilience.ShortRead, N: 3},
		resilience.Fault{Op: "ssl.read", Attempt: 3, Kind: resilience.SlowRead},
	)
	tl := faultTailer(t, path, plan)

	var got []Record
	if err := tl.Poll(func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatalf("degrading faults must not fail the poll: %v", err)
	}
	if len(got) != 2 {
		t.Errorf("records = %d, want 2", len(got))
	}
	if plan.Pending() != 0 {
		t.Errorf("unplayed faults: %s", plan.Describe())
	}
}

func TestTailerStatFaultDelaysRotationOnly(t *testing.T) {
	path, write, rename := tailerFixtures(t)
	write(tailHeader + "old1\tx\n")

	// The rotation check's Stat fails on the second poll — exactly when the
	// rename happens. Rotation detection slips to the next poll; nothing is
	// lost.
	plan := resilience.NewPlan(
		resilience.Fault{Op: "ssl.stat", Attempt: 2, Kind: resilience.StatErr},
	)
	tl := faultTailer(t, path, plan)

	var got []Record
	emit := func(r Record) error { got = append(got, r); return nil }
	if err := tl.Poll(emit); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("pre-rotation records = %d, want 1", len(got))
	}

	rename()
	write(tailHeader + "new1\ty\n")
	if err := tl.Poll(emit); err != nil {
		t.Fatalf("stat fault on the rotation check must degrade, not fail: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("rotation detected despite stat fault: records = %d", len(got))
	}
	if err := tl.Poll(emit); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("post-rotation records = %d, want 2", len(got))
	}
	if v, _ := got[1].Get("a"); v != "new1" {
		t.Errorf("rotated record a = %q, want new1", v)
	}
	if tl.Rotations() != 1 {
		t.Errorf("rotations = %d, want 1", tl.Rotations())
	}
	if plan.Pending() != 0 {
		t.Errorf("unplayed faults: %s", plan.Describe())
	}
}

func TestTailerTruncateMidLineWithReadFault(t *testing.T) {
	path, write, _ := tailerFixtures(t)
	write(tailHeader + "r1a\tr1b\nr2a\tr2")

	plan := resilience.NewPlan()
	tl := faultTailer(t, path, plan)

	var got []Record
	emit := func(r Record) error { got = append(got, r); return nil }
	if err := tl.Poll(emit); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("records before truncation = %d, want 1 (partial held)", len(got))
	}

	// The writer restarts the file mid-line: truncation plus a read fault on
	// the poll that discovers it. The held partial line dies with the old
	// file (it was never fully written); the new content arrives intact.
	if err := os.WriteFile(path, []byte(tailHeader+"fresh1\tz\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	plan.RecordExternal("ssl.truncate")
	// Attempt 3 is the first data read after the truncation-discovery seek,
	// so the poll that detects the restart also fails — and still loses
	// nothing on retry.
	plan.Add(resilience.Fault{Op: "ssl.read", Attempt: 3, Kind: resilience.ReadErr})
	faults := pollUntilClean(t, tl, emit)
	if faults != 1 {
		t.Errorf("faulted polls = %d, want 1", faults)
	}
	if len(got) != 2 {
		t.Fatalf("records = %d, want 2", len(got))
	}
	if v, _ := got[1].Get("a"); v != "fresh1" {
		t.Errorf("post-truncation record a = %q, want fresh1", v)
	}
	if tl.Rotations() != 1 {
		t.Errorf("rotations = %d, want 1 (truncation counts)", tl.Rotations())
	}
	if plan.InjectedCount() < 2 {
		t.Errorf("injected = %d, want external truncation + read fault recorded", plan.InjectedCount())
	}
}

// oracleRecords decodes the full final log content directly — what a tailer
// must emit regardless of how reads were chopped up or failed along the way.
func oracleRecords(content []byte) []Record {
	dec := NewTSVDecoder()
	var out []Record
	decode := func(line string) {
		line = strings.TrimSuffix(line, "\r")
		rec, err := dec.Decode(line)
		if err == nil && rec != nil {
			out = append(out, rec)
		}
	}
	s := string(content)
	for {
		i := strings.IndexByte(s, '\n')
		if i < 0 {
			break
		}
		decode(s[:i])
		s = s[i+1:]
	}
	if s != "" {
		decode(s)
	}
	return out
}

// FuzzTailerWithFaults feeds the tailer mutated log bytes in arbitrary chunk
// splits while a seeded fault plan fails opens and reads at arbitrary points.
// Invariants: the tailer never panics, injected faults never surface as
// anything but injected errors, and once the plan drains, the emitted records
// equal a direct decode of the full content — no fully-written line is ever
// dropped or duplicated.
func FuzzTailerWithFaults(f *testing.F) {
	f.Add([]byte(tailHeader+"a1\tb1\na2\tb2\n"), uint8(2), []byte{0x03, 0x41})
	f.Add([]byte(tailHeader+"a1\tb1\npartial\tli"), uint8(3), []byte{0x00})
	f.Add([]byte("no header\njust noise\n"), uint8(1), []byte{0x81, 0x22, 0xff})
	f.Add([]byte(tailHeader), uint8(2), []byte{})

	f.Fuzz(func(t *testing.T, content []byte, chunks uint8, faultSeed []byte) {
		dir := t.TempDir()
		path := dir + "/fuzz.log"

		// Derive a deterministic fault plan from the seed bytes: low bits pick
		// the attempt, the top bit picks open-vs-read.
		plan := resilience.NewPlan()
		for i, b := range faultSeed {
			if i >= 8 {
				break
			}
			attempt := int(b&0x0f) + 1
			if b&0x80 != 0 {
				plan.Add(resilience.Fault{Op: "fz.open", Attempt: attempt, Kind: resilience.OpenErr})
			} else {
				plan.Add(resilience.Fault{Op: "fz.read", Attempt: attempt, Kind: resilience.ReadErr})
			}
		}

		tl := NewTailerFS(path, func() LineDecoder { return NewTSVDecoder() }, plan.FS("fz", nil))
		defer tl.Close()

		var got []Record
		emit := func(r Record) error { got = append(got, r); return nil }

		// Append the content in 1..4 chunks, polling (with fault tolerance)
		// after each append.
		n := int(chunks%4) + 1
		for i := 0; i < n; i++ {
			lo, hi := len(content)*i/n, len(content)*(i+1)/n
			fh, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fh.Write(content[lo:hi]); err != nil {
				t.Fatal(err)
			}
			fh.Close()
			for tries := 0; tries < 40; tries++ {
				if err := tl.Poll(emit); err == nil {
					break
				} else if !resilience.IsInjected(err) {
					t.Fatalf("non-injected poll error: %v", err)
				}
			}
		}
		// Drain any remaining planned faults, then take the final clean poll
		// and flush the dangling partial line.
		for tries := 0; tries < 40 && plan.Pending() > 0; tries++ {
			tl.Poll(emit)
		}
		if err := tl.Poll(emit); err != nil {
			t.Fatalf("final poll: %v", err)
		}
		if err := tl.Finish(emit); err != nil {
			t.Fatalf("finish: %v", err)
		}

		want := oracleRecords(content)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("tailer diverged from direct decode under faults\n got %v\nwant %v\nplan %s",
				got, want, plan.Describe())
		}
	})
}
