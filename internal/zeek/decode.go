//certchain:hotpath — the fast join decodes every ssl.log/x509.log row.

package zeek

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"certchains/internal/certmodel"
	"certchains/internal/dn"
)

// FastJoin is the zero-allocation counterpart of Join: it streams ssl.log
// and x509.log in Zeek's TSV format through byte-slice decoders — no
// intermediate Record maps, no per-field string allocation — and produces
// the same joined connections in the same order with the same per-row and
// stream errors, byte for byte (pinned by the differential fuzzers in
// equiv_fuzz_test.go).
//
// Allocation economy comes from three reuses, which change the retention
// contract relative to Join:
//
//   - The *Connection and its SSL record are pooled: they are only valid
//     until fn returns, as is the CertChainFUIDs slice. Field string values
//     (and the Chain) may be retained freely.
//   - Chain values are canonical: every connection delivering the same
//     certificate sequence shares one Chain slice (read-only by contract,
//     like the *Meta values it holds).
//   - Repeated strings (DNs, SNIs, addresses, algorithm names) are
//     interned per call; certificates parse their DNs once per distinct
//     string.
func FastJoin(ssl, x509 io.Reader, fn func(c *Connection, err error) error) error {
	j := newFastJoiner()
	certs, err := j.indexX509TSV(newTSVScanner(x509))
	if err != nil {
		return err
	}
	return j.joinSSLTSV(newTSVScanner(ssl), certs, fn)
}

// FastJoinJSON is FastJoin for Zeek's ND-JSON log format. Well-formed flat
// records decode through a byte-slice tokenizer; any line outside that
// shape (escapes, nested values, type surprises, malformed JSON) re-parses
// through the legacy full-line path, so behaviour — including error text —
// is identical to JoinJSON on every input.
func FastJoinJSON(ssl, x509 io.Reader, fn func(c *Connection, err error) error) error {
	j := newFastJoiner()
	certs, err := j.indexX509JSON(newJSONScanner(x509))
	if err != nil {
		return err
	}
	return j.joinSSLJSON(newJSONScanner(ssl), certs, fn)
}

// fastJoiner carries the per-call reusable state: interners, the canonical
// chain cache, the pooled connection/record pair, and scratch buffers.
type fastJoiner struct {
	strs    certmodel.Interner
	dns     dn.Interner
	chains  map[string]certmodel.Chain
	keyBuf  []byte
	fuids   []string
	scratch []byte
	conn    Connection
	ssl     SSLRecord
	x509    x509Row
}

func newFastJoiner() *fastJoiner {
	return &fastJoiner{chains: make(map[string]certmodel.Chain)}
}

// resetSSL is the pooled record's explicit reset; the scratch slices it
// drops are re-linked by the next parse.
func (j *fastJoiner) resetSSL() { j.ssl = SSLRecord{} }

// x509Row is the reusable x509 field holder: byte views stay valid until
// the next scanner advance, which is after the row is folded into a Meta.
type x509Row struct {
	ts, nvb, nva time.Time
	tsOK         bool
	id           []byte
	serial       []byte
	subject      []byte
	issuer       []byte
	keyType      string
	sigAlg       string
	keyLen       int
	bcVal, bcSet bool
	san          []string
}

// chainFor resolves a fuid list against the certificate index, returning
// the canonical shared Chain for that sequence. The per-row error for an
// unknown fuid matches JoinRecords exactly.
func (j *fastJoiner) chainFor(certs map[string]*certmodel.Meta, uid string, fuids []string) (certmodel.Chain, error) {
	if len(fuids) == 0 {
		return nil, nil
	}
	j.keyBuf = j.keyBuf[:0]
	for _, f := range fuids {
		j.keyBuf = strconv.AppendInt(j.keyBuf, int64(len(f)), 10)
		j.keyBuf = append(j.keyBuf, ':')
		j.keyBuf = append(j.keyBuf, f...)
	}
	if ch, ok := j.chains[string(j.keyBuf)]; ok {
		return ch, nil
	}
	ch := make(certmodel.Chain, 0, len(fuids))
	for _, f := range fuids {
		m, ok := certs[f]
		if !ok {
			return nil, fmt.Errorf("zeek: connection %s references unknown certificate %s", uid, f) //certchain:coldpath per-row join-gap error path
		}
		ch = append(ch, m)
	}
	j.chains[string(j.keyBuf)] = ch
	return ch, nil
}

// deliver runs the joined-row tail of JoinRecords: resolve the chain, route
// the row or its error to the callback.
func (j *fastJoiner) deliver(certs map[string]*certmodel.Meta, r *SSLRecord, fn func(*Connection, error) error) error {
	ch, joinErr := j.chainFor(certs, r.UID, r.CertChainFUIDs)
	if joinErr != nil {
		return fn(nil, joinErr)
	}
	j.conn = Connection{SSL: r, Chain: ch}
	return fn(&j.conn, nil)
}

// buildMeta folds one parsed x509 row into the index — the indexX509Records
// tail: missing-field errors are fatal, duplicates keep the first record,
// DN parsing happens only for first-seen ids, with ToMeta's error text.
func (j *fastJoiner) buildMeta(out map[string]*certmodel.Meta, row *x509Row) error {
	if !row.tsOK {
		return errX509MissingTS
	}
	if len(row.id) == 0 {
		return errX509MissingID
	}
	if _, dup := out[string(row.id)]; dup {
		return nil // Zeek logs a certificate once per observation; first wins
	}
	issuer, err := j.dns.Parse(row.issuer)
	if err != nil {
		return fmt.Errorf("zeek: x509 %s: bad issuer: %w", row.id, err) //certchain:coldpath malformed-record error path
	}
	subject, err := j.dns.Parse(row.subject)
	if err != nil {
		return fmt.Errorf("zeek: x509 %s: bad subject: %w", row.id, err) //certchain:coldpath malformed-record error path
	}
	id := string(row.id)
	m := &certmodel.Meta{
		FP:        certmodel.Fingerprint(id),
		Issuer:    issuer,
		Subject:   subject,
		SerialHex: strings.ToLower(string(row.serial)),
		NotBefore: row.nvb,
		NotAfter:  row.nva,
		KeyAlg:    certmodel.KeyAlgorithm(row.keyType),
		KeyBits:   row.keyLen,
		SigAlg:    row.sigAlg,
		SAN:       row.san,
	}
	switch {
	case !row.bcSet:
		m.BC = certmodel.BCAbsent
	case row.bcVal:
		m.BC = certmodel.BCTrue
	default:
		m.BC = certmodel.BCFalse
	}
	out[id] = m
	return nil
}

// ---- TSV ----

// sslCols maps the ssl schema onto the current #fields directive;
// duplicate names keep the last column, like Record construction.
type sslCols struct {
	gen                                 int
	ts, uid, origH, origP, respH, respP int
	version, cipher, serverName         int
	resumed, established, chain         int
}

func (c *sslCols) refresh(s *tsvScanner) {
	*c = sslCols{gen: s.gen, ts: -1, uid: -1, origH: -1, origP: -1, respH: -1, respP: -1,
		version: -1, cipher: -1, serverName: -1, resumed: -1, established: -1, chain: -1}
	for i, f := range s.fields {
		switch f {
		case "ts":
			c.ts = i
		case "uid":
			c.uid = i
		case "id.orig_h":
			c.origH = i
		case "id.orig_p":
			c.origP = i
		case "id.resp_h":
			c.respH = i
		case "id.resp_p":
			c.respP = i
		case "version":
			c.version = i
		case "cipher":
			c.cipher = i
		case "server_name":
			c.serverName = i
		case "resumed":
			c.resumed = i
		case "established":
			c.established = i
		case "cert_chain_fuids":
			c.chain = i
		}
	}
}

type x509Cols struct {
	gen                                   int
	ts, id, serial, subject, issuer       int
	nvb, nva, sigAlg, keyType, keyLen, bc int
	san                                   int
}

func (c *x509Cols) refresh(s *tsvScanner) {
	*c = x509Cols{gen: s.gen, ts: -1, id: -1, serial: -1, subject: -1, issuer: -1,
		nvb: -1, nva: -1, sigAlg: -1, keyType: -1, keyLen: -1, bc: -1, san: -1}
	for i, f := range s.fields {
		switch f {
		case "ts":
			c.ts = i
		case "id":
			c.id = i
		case "certificate.serial":
			c.serial = i
		case "certificate.subject":
			c.subject = i
		case "certificate.issuer":
			c.issuer = i
		case "certificate.not_valid_before":
			c.nvb = i
		case "certificate.not_valid_after":
			c.nva = i
		case "certificate.sig_alg":
			c.sigAlg = i
		case "certificate.key_type":
			c.keyType = i
		case "certificate.key_length":
			c.keyLen = i
		case "basic_constraints.ca":
			c.bc = i
		case "san.dns":
			c.san = i
		}
	}
}

func (j *fastJoiner) joinSSLTSV(s *tsvScanner, certs map[string]*certmodel.Meta, fn func(*Connection, error) error) error {
	cols := sslCols{gen: -1}
	for {
		ok, err := s.scan()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if cols.gen != s.gen {
			cols.refresh(s) //certchain:coldpath once per #fields directive
		}
		if rowErr := j.parseSSLTSV(s, &cols); rowErr != nil {
			if cbErr := fn(nil, rowErr); cbErr != nil {
				return cbErr
			}
			continue
		}
		if err := j.deliver(certs, &j.ssl, fn); err != nil {
			return err
		}
	}
}

func (j *fastJoiner) parseSSLTSV(s *tsvScanner, c *sslCols) error {
	j.resetSSL()
	r := &j.ssl
	var ok bool
	if r.TS, ok = s.fieldTime(c.ts); !ok {
		return errSSLMissingTS
	}
	uid, _ := s.field(c.uid)
	if len(uid) == 0 {
		return errSSLMissingUID
	}
	r.UID = string(uid)
	r.OrigH = j.internField(s, c.origH)
	r.OrigP, _ = s.fieldInt(c.origP)
	r.RespH = j.internField(s, c.respH)
	r.RespP, _ = s.fieldInt(c.respP)
	r.Version = j.internField(s, c.version)
	r.Cipher = j.internField(s, c.cipher)
	r.ServerName = j.internField(s, c.serverName)
	r.Resumed, _ = s.fieldBool(c.resumed)
	r.Established, _ = s.fieldBool(c.established)
	r.CertChainFUIDs = j.vectorScratch(s, c.chain)
	return nil
}

// internField reads a scalar string column into the interner; absent fields
// become "" exactly as Record.Get's callers see them.
func (j *fastJoiner) internField(s *tsvScanner, c int) string {
	v, ok := s.field(c)
	if !ok {
		return ""
	}
	return j.strs.Bytes(v)
}

// vectorScratch splits a vector column into the reused fuid scratch slice
// (valid until the next row), interning each element.
func (j *fastJoiner) vectorScratch(s *tsvScanner, c int) []string {
	v, ok := s.field(c)
	if !ok || len(v) == 0 {
		return nil
	}
	j.fuids = j.fuids[:0]
	for {
		i := bytes.IndexByte(v, ',')
		if i < 0 {
			return append(j.fuids, j.strs.Bytes(v))
		}
		j.fuids = append(j.fuids, j.strs.Bytes(v[:i]))
		v = v[i+1:]
	}
}

// vectorFresh is vectorScratch into a fresh slice, for values retained
// beyond the row (certificate SANs).
func (j *fastJoiner) vectorFresh(s *tsvScanner, c int) []string {
	v, ok := s.field(c)
	if !ok || len(v) == 0 {
		return nil
	}
	out := make([]string, 0, bytes.Count(v, []byte{','})+1)
	for {
		i := bytes.IndexByte(v, ',')
		if i < 0 {
			return append(out, j.strs.Bytes(v))
		}
		out = append(out, j.strs.Bytes(v[:i]))
		v = v[i+1:]
	}
}

func (j *fastJoiner) indexX509TSV(s *tsvScanner) (map[string]*certmodel.Meta, error) {
	out := make(map[string]*certmodel.Meta)
	cols := x509Cols{gen: -1}
	for {
		ok, err := s.scan()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		if cols.gen != s.gen {
			cols.refresh(s) //certchain:coldpath once per #fields directive
		}
		row := &j.x509
		*row = x509Row{}
		row.ts, row.tsOK = s.fieldTime(cols.ts)
		row.id, _ = s.field(cols.id)
		row.serial, _ = s.field(cols.serial)
		row.subject, _ = s.field(cols.subject)
		row.issuer, _ = s.field(cols.issuer)
		row.nvb, _ = s.fieldTime(cols.nvb)
		row.nva, _ = s.fieldTime(cols.nva)
		row.sigAlg = j.internField(s, cols.sigAlg)
		row.keyType = j.internField(s, cols.keyType)
		row.keyLen, _ = s.fieldInt(cols.keyLen)
		row.bcVal, row.bcSet = s.fieldBool(cols.bc)
		row.san = j.vectorFresh(s, cols.san)
		if err := j.buildMeta(out, row); err != nil {
			return nil, err
		}
	}
}

// ---- ND-JSON ----

// JSON key dispatch tables; 0 means "not a schema field, skip".
const (
	jkTS = 1 + iota
	jkUID
	jkOrigH
	jkOrigP
	jkRespH
	jkRespP
	jkVersion
	jkCipher
	jkServerName
	jkResumed
	jkEstablished
	jkChain
	jkID
	jkSerial
	jkSubject
	jkIssuer
	jkNVB
	jkNVA
	jkKeyAlg
	jkSigAlg
	jkKeyType
	jkKeyLen
	jkBC
	jkSAN
	jkX509Version
)

var sslJSONKey = map[string]int{
	"ts": jkTS, "uid": jkUID, "id.orig_h": jkOrigH, "id.orig_p": jkOrigP,
	"id.resp_h": jkRespH, "id.resp_p": jkRespP, "version": jkVersion,
	"cipher": jkCipher, "server_name": jkServerName, "resumed": jkResumed,
	"established": jkEstablished, "cert_chain_fuids": jkChain,
}

var x509JSONKey = map[string]int{
	"ts": jkTS, "id": jkID, "certificate.version": jkX509Version,
	"certificate.serial": jkSerial, "certificate.subject": jkSubject,
	"certificate.issuer": jkIssuer, "certificate.not_valid_before": jkNVB,
	"certificate.not_valid_after": jkNVA, "certificate.key_alg": jkKeyAlg,
	"certificate.sig_alg": jkSigAlg, "certificate.key_type": jkKeyType,
	"certificate.key_length": jkKeyLen, "basic_constraints.ca": jkBC,
	"san.dns": jkSAN,
}

// jsonString parses a scalar string value with Record.Get's sentinel
// semantics: null and the unset sentinel yield "", as does the empty
// sentinel and the empty string. ok=false sends the line to the fallback.
func (j *fastJoiner) jsonString(t *jsonTok, intern bool) (string, bool) {
	switch t.peek() {
	case '"':
		s, ok := t.simpleString()
		if !ok {
			return "", false
		}
		if len(s) == 0 || string(s) == UnsetField || string(s) == EmptyField {
			return "", true
		}
		if intern {
			return j.strs.Bytes(s), true
		}
		return string(s), true
	case 'n':
		return "", t.literal("null")
	}
	return "", false
}

// jsonTime parses a numeric time value; null means absent.
func (t *jsonTok) jsonTime() (ts time.Time, set, ok bool) {
	switch c := t.peek(); {
	case c == '-' || (c >= '0' && c <= '9'):
		f, ok := t.number()
		if !ok {
			return time.Time{}, false, false
		}
		return epochToTime(f), true, true
	case c == 'n':
		return time.Time{}, false, t.literal("null")
	}
	return time.Time{}, false, false
}

// jsonInt parses a numeric value with the legacy float-render/Atoi round
// trip's semantics; null and non-integral values yield 0.
func (j *fastJoiner) jsonInt(t *jsonTok) (int, bool) {
	switch c := t.peek(); {
	case c == '-' || (c >= '0' && c <= '9'):
		f, ok := t.number()
		if !ok {
			return 0, false
		}
		return j.intFromFloat(f), true
	case c == 'n':
		return 0, t.literal("null")
	}
	return 0, false
}

// intFromFloat reproduces jsonValueToField + Record.GetInt: format the
// float and Atoi it. Safe integral floats take the direct path (their
// shortest 'f' rendering is the same integer); everything else replays the
// render/parse pair exactly.
func (j *fastJoiner) intFromFloat(f float64) int {
	if f == math.Trunc(f) && f >= -(1<<53) && f <= 1<<53 {
		return int(f)
	}
	j.scratch = strconv.AppendFloat(j.scratch[:0], f, 'f', -1, 64) //certchain:coldpath rare shape, exact-oracle fallback
	n, _ := parseIntBytes(j.scratch)
	return n
}

func (t *jsonTok) jsonBool() (v, ok bool) {
	switch t.peek() {
	case 't':
		return true, t.literal("true")
	case 'f':
		return false, t.literal("false")
	case 'n':
		return false, t.literal("null")
	}
	return false, false
}

// jsonVector parses an array of plain strings that survive the legacy
// join-then-split round trip unchanged: non-empty, comma-free, non-sentinel
// elements. Anything else (including whole-array sentinel collisions)
// falls back. dst may be a reused scratch slice.
func (j *fastJoiner) jsonVector(t *jsonTok, dst []string) ([]string, bool) {
	switch t.peek() {
	case '[':
	case 'n':
		return nil, t.literal("null")
	default:
		return nil, false
	}
	t.i++
	if t.peek() == ']' {
		t.i++
		return nil, true // empty vector renders as the empty sentinel: nil
	}
	for {
		t.ws()
		el, ok := t.simpleString()
		if !ok {
			return nil, false
		}
		if len(el) == 0 || bytes.IndexByte(el, ',') >= 0 ||
			string(el) == UnsetField || string(el) == EmptyField {
			return nil, false
		}
		dst = append(dst, j.strs.Bytes(el))
		switch t.peek() {
		case ',':
			t.i++
		case ']':
			t.i++
			return dst, true
		default:
			return nil, false
		}
	}
}

// legacyJSONRecord is the exact fallback: the legacy JSONReader's per-line
// conversion, reproducing encoding/json's error text for malformed lines.
func legacyJSONRecord(line []byte, lineNo int) (Record, error) {
	var raw map[string]any
	if err := json.Unmarshal(line, &raw); err != nil {
		return nil, fmt.Errorf("zeek: json line %d: %w", lineNo, err) //certchain:coldpath malformed-line error path
	}
	rec := make(Record, len(raw))
	for k, v := range raw {
		rec[k] = jsonValueToField(v)
	}
	return rec, nil
}

// parseSSLJSONFast decodes one flat ND-JSON ssl row into the pooled record.
// fastOK=false means the line is outside the tokenizer's subset and must be
// re-parsed through the legacy path.
func (j *fastJoiner) parseSSLJSONFast(line []byte) (rowErr error, fastOK bool) {
	t := jsonTok{b: line}
	if t.peek() != '{' {
		return nil, false
	}
	t.i++
	j.resetSSL()
	r := &j.ssl
	tsSet := false
	if t.peek() == '}' {
		t.i++
	} else {
	fields:
		for {
			t.ws()
			k, ok := t.simpleString()
			if !ok || t.peek() != ':' {
				return nil, false
			}
			t.i++
			switch sslJSONKey[string(k)] {
			case jkTS:
				var ok bool
				if r.TS, tsSet, ok = t.jsonTime(); !ok {
					return nil, false
				}
			case jkUID:
				if r.UID, ok = j.jsonString(&t, false); !ok {
					return nil, false
				}
			case jkOrigH:
				if r.OrigH, ok = j.jsonString(&t, true); !ok {
					return nil, false
				}
			case jkOrigP:
				if r.OrigP, ok = j.jsonInt(&t); !ok {
					return nil, false
				}
			case jkRespH:
				if r.RespH, ok = j.jsonString(&t, true); !ok {
					return nil, false
				}
			case jkRespP:
				if r.RespP, ok = j.jsonInt(&t); !ok {
					return nil, false
				}
			case jkVersion:
				if r.Version, ok = j.jsonString(&t, true); !ok {
					return nil, false
				}
			case jkCipher:
				if r.Cipher, ok = j.jsonString(&t, true); !ok {
					return nil, false
				}
			case jkServerName:
				if r.ServerName, ok = j.jsonString(&t, true); !ok {
					return nil, false
				}
			case jkResumed:
				if r.Resumed, ok = t.jsonBool(); !ok {
					return nil, false
				}
			case jkEstablished:
				if r.Established, ok = t.jsonBool(); !ok {
					return nil, false
				}
			case jkChain:
				if r.CertChainFUIDs, ok = j.jsonVector(&t, j.fuids[:0]); !ok {
					return nil, false
				}
				if r.CertChainFUIDs != nil {
					j.fuids = r.CertChainFUIDs
				}
			default:
				if !t.skipValue() {
					return nil, false
				}
			}
			switch t.peek() {
			case ',':
				t.i++
			case '}':
				t.i++
				break fields
			default:
				return nil, false
			}
		}
	}
	t.ws()
	if t.i != len(t.b) {
		return nil, false
	}
	if !tsSet {
		return errSSLMissingTS, true
	}
	if r.UID == "" {
		return errSSLMissingUID, true
	}
	return nil, true
}

func (j *fastJoiner) joinSSLJSON(s *jsonScanner, certs map[string]*certmodel.Meta, fn func(*Connection, error) error) error {
	for {
		ok, err := s.scan()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		rowErr, fastOK := j.parseSSLJSONFast(s.cur)
		if !fastOK {
			rec, err := legacyJSONRecord(s.cur, s.line) //certchain:coldpath anomalous-line fallback
			if err != nil {
				return err
			}
			sr, rowErr := ParseSSLRecord(rec)
			if rowErr != nil {
				if cbErr := fn(nil, rowErr); cbErr != nil {
					return cbErr
				}
				continue
			}
			if err := j.deliver(certs, sr, fn); err != nil {
				return err
			}
			continue
		}
		if rowErr != nil {
			if cbErr := fn(nil, rowErr); cbErr != nil {
				return cbErr
			}
			continue
		}
		if err := j.deliver(certs, &j.ssl, fn); err != nil {
			return err
		}
	}
}

// parseX509JSONFast decodes one flat ND-JSON x509 row into the reusable
// field holder; fastOK=false routes the line to the legacy fallback.
func (j *fastJoiner) parseX509JSONFast(line []byte) (row *x509Row, fastOK bool) {
	t := jsonTok{b: line}
	if t.peek() != '{' {
		return nil, false
	}
	t.i++
	row = &j.x509
	*row = x509Row{}
	var ok bool
	if t.peek() == '}' {
		t.i++
	} else {
	fields:
		for {
			t.ws()
			k, okK := t.simpleString()
			if !okK || t.peek() != ':' {
				return nil, false
			}
			t.i++
			switch x509JSONKey[string(k)] {
			case jkTS:
				if row.ts, row.tsOK, ok = t.jsonTime(); !ok {
					return nil, false
				}
			case jkID:
				if row.id, ok = j.jsonRawString(&t); !ok {
					return nil, false
				}
			case jkSerial:
				if row.serial, ok = j.jsonRawString(&t); !ok {
					return nil, false
				}
			case jkSubject:
				if row.subject, ok = j.jsonRawString(&t); !ok {
					return nil, false
				}
			case jkIssuer:
				if row.issuer, ok = j.jsonRawString(&t); !ok {
					return nil, false
				}
			case jkNVB:
				if row.nvb, _, ok = t.jsonTime(); !ok {
					return nil, false
				}
			case jkNVA:
				if row.nva, _, ok = t.jsonTime(); !ok {
					return nil, false
				}
			case jkKeyAlg:
				if _, ok = j.jsonString(&t, true); !ok {
					return nil, false
				}
			case jkSigAlg:
				if row.sigAlg, ok = j.jsonString(&t, true); !ok {
					return nil, false
				}
			case jkKeyType:
				if row.keyType, ok = j.jsonString(&t, true); !ok {
					return nil, false
				}
			case jkKeyLen:
				if row.keyLen, ok = j.jsonInt(&t); !ok {
					return nil, false
				}
			case jkBC:
				if t.peek() == 'n' {
					if !t.literal("null") {
						return nil, false
					}
				} else {
					if row.bcVal, ok = t.jsonBool(); !ok {
						return nil, false
					}
					row.bcSet = true
				}
			case jkSAN:
				if row.san, ok = j.jsonVector(&t, nil); !ok {
					return nil, false
				}
			case jkX509Version:
				if _, ok = j.jsonInt(&t); !ok {
					return nil, false
				}
			default:
				if !t.skipValue() {
					return nil, false
				}
			}
			switch t.peek() {
			case ',':
				t.i++
			case '}':
				t.i++
				break fields
			default:
				return nil, false
			}
		}
	}
	t.ws()
	if t.i != len(t.b) {
		return nil, false
	}
	return row, true
}

// jsonRawString parses a string value into a byte view with Record.Get's
// sentinel semantics (null/unset → nil absent view, empty sentinel → empty
// present view). The view is only valid until the next line.
func (j *fastJoiner) jsonRawString(t *jsonTok) ([]byte, bool) {
	switch t.peek() {
	case '"':
		s, ok := t.simpleString()
		if !ok {
			return nil, false
		}
		if string(s) == UnsetField {
			return nil, true
		}
		if string(s) == EmptyField {
			return s[:0], true
		}
		return s, true
	case 'n':
		return nil, t.literal("null")
	}
	return nil, false
}

func (j *fastJoiner) indexX509JSON(s *jsonScanner) (map[string]*certmodel.Meta, error) {
	out := make(map[string]*certmodel.Meta)
	for {
		ok, err := s.scan()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		row, fastOK := j.parseX509JSONFast(s.cur)
		if !fastOK {
			rec, err := legacyJSONRecord(s.cur, s.line) //certchain:coldpath anomalous-line fallback
			if err != nil {
				return nil, err
			}
			xr, err := ParseX509Record(rec)
			if err != nil {
				return nil, err
			}
			if _, dup := out[xr.ID]; dup {
				continue
			}
			m, err := xr.ToMeta()
			if err != nil {
				return nil, err
			}
			out[xr.ID] = m
			continue
		}
		if err := j.buildMeta(out, row); err != nil {
			return nil, err
		}
	}
}
