//certchain:hotpath — the byte-slice ND-JSON scanner runs once per log line.

package zeek

import (
	"bufio"
	"fmt"
	"io"
	"unicode/utf8"
)

// maxJSONLine mirrors the legacy JSONReader's bufio.Scanner token limit: a
// line at or beyond this length (excluding the newline) is the same
// too-long error the Scanner reports.
const maxJSONLine = 1 << 24

// jsonScanner is the zero-allocation analogue of JSONReader's line loop: it
// reads ND-JSON lines into a reused row buffer. Line accounting (empty
// lines count), carriage-return stripping, and the too-long and I/O error
// strings are pinned byte-identical to JSONReader by the differential
// fuzzer in equiv_fuzz_test.go.
type jsonScanner struct {
	br   *bufio.Reader
	row  []byte
	cur  []byte // current line view (row minus terminators)
	line int
	eof  bool
}

func newJSONScanner(r io.Reader) *jsonScanner {
	return &jsonScanner{br: bufio.NewReaderSize(r, 1<<16)}
}

func (s *jsonScanner) readLine() (terminated bool, err error) {
	s.row = s.row[:0]
	for {
		chunk, err := s.br.ReadSlice('\n')
		s.row = append(s.row, chunk...)
		switch err {
		case nil:
			return true, nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			s.eof = true
			return false, nil
		default:
			s.eof = true
			return false, err //certchain:coldpath I/O error path
		}
	}
}

// scan advances to the next non-empty line. It returns false at end of
// stream; the line is left in s.cur.
func (s *jsonScanner) scan() (bool, error) {
	for !s.eof {
		terminated, err := s.readLine()
		if err != nil {
			return false, fmt.Errorf("zeek: json scan: %w", err) //certchain:coldpath I/O error path
		}
		row := s.row
		if terminated {
			row = row[:len(row)-1]
		}
		// The legacy Scanner rejects the token before stripping its \r.
		if len(row) >= maxJSONLine {
			return false, fmt.Errorf("zeek: json scan: %w", bufio.ErrTooLong) //certchain:coldpath malformed-stream error path
		}
		if n := len(row); n > 0 && row[n-1] == '\r' {
			row = row[:n-1]
		}
		if terminated || len(row) > 0 {
			s.line++
		}
		if len(row) == 0 {
			continue
		}
		s.cur = row
		return true, nil
	}
	return false, nil
}

// jsonTok is a minimal tokenizer over one ND-JSON line. It recognizes only
// the flat, escape-free shape Zeek's writers emit; anything outside that
// subset makes the caller fall back to the legacy full-line parse, which
// guarantees behavioural equivalence on anomalous input (including the
// exact encoding/json error text for malformed lines).
type jsonTok struct {
	b []byte
	i int
}

func (t *jsonTok) ws() {
	for t.i < len(t.b) {
		switch t.b[t.i] {
		case ' ', '\t', '\r', '\n':
			t.i++
		default:
			return
		}
	}
}

func (t *jsonTok) peek() byte {
	t.ws()
	if t.i >= len(t.b) {
		return 0
	}
	return t.b[t.i]
}

// simpleString scans a JSON string containing no escapes, no control bytes,
// and only valid UTF-8 (encoding/json would rewrite invalid sequences), and
// returns its contents as a view into the line.
func (t *jsonTok) simpleString() ([]byte, bool) {
	b := t.b
	if t.i >= len(b) || b[t.i] != '"' {
		return nil, false
	}
	i := t.i + 1
	start := i
	for i < len(b) {
		c := b[i]
		if c == '"' {
			s := b[start:i]
			if !utf8.Valid(s) {
				return nil, false
			}
			t.i = i + 1
			return s, true
		}
		if c == '\\' || c < 0x20 {
			return nil, false
		}
		i++
	}
	return nil, false
}

// number scans a strict-grammar JSON number and converts it exactly as
// encoding/json does (both route through strconv.ParseFloat semantics).
// Out-of-range literals return ok=false so the caller falls back to the
// legacy parse and its exact error.
func (t *jsonTok) number() (float64, bool) {
	b := t.b
	i := t.i
	start := i
	if i < len(b) && b[i] == '-' {
		i++
	}
	switch {
	case i < len(b) && b[i] == '0':
		i++
	case i < len(b) && b[i] >= '1' && b[i] <= '9':
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	default:
		return 0, false
	}
	if i < len(b) && b[i] == '.' {
		i++
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return 0, false
		}
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			i++
		}
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return 0, false
		}
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	f, ok := parseFloatBytes(b[start:i])
	if !ok {
		return 0, false
	}
	t.i = i
	return f, true
}

func (t *jsonTok) literal(lit string) bool {
	if len(t.b)-t.i >= len(lit) && string(t.b[t.i:t.i+len(lit)]) == lit {
		t.i += len(lit)
		return true
	}
	return false
}

// skipValue validates and skips one value of the supported subset (string,
// number, bool, null, array of those). Nested objects and anything
// malformed return false, sending the caller to the legacy parse.
func (t *jsonTok) skipValue() bool {
	t.ws()
	if t.i >= len(t.b) {
		return false
	}
	switch c := t.b[t.i]; {
	case c == '"':
		_, ok := t.simpleString()
		return ok
	case c == '-' || (c >= '0' && c <= '9'):
		_, ok := t.number()
		return ok
	case c == 't':
		return t.literal("true")
	case c == 'f':
		return t.literal("false")
	case c == 'n':
		return t.literal("null")
	case c == '[':
		t.i++
		if t.peek() == ']' {
			t.i++
			return true
		}
		for {
			if !t.skipValue() {
				return false
			}
			switch t.peek() {
			case ',':
				t.i++
			case ']':
				t.i++
				return true
			default:
				return false
			}
		}
	default:
		return false
	}
}
