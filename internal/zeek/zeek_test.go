package zeek

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"certchains/internal/certmodel"
	"certchains/internal/dn"
)

var ts0 = time.Date(2020, 9, 1, 12, 30, 45, 0, time.UTC)

func TestWriterHeaderAndClose(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{Path: "test", Fields: []string{"a", "b"}, Types: []string{"string", "count"}, Open: ts0})
	if err := w.WriteRecord([]string{"hello", "42"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(ts0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"#separator \\x09", "#path\ttest", "#fields\ta\tb", "#types\tstring\tcount", "hello\t42", "#close\t2020-09-01-13-30-45"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if w.Records() != 1 {
		t.Errorf("Records = %d", w.Records())
	}
}

func TestWriterFieldCountMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{Path: "t", Fields: []string{"a"}, Types: []string{"string"}, Open: ts0})
	if err := w.WriteRecord([]string{"x", "y"}); err == nil {
		t.Error("mismatched value count must error")
	}
}

func TestWriterHeaderMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{Path: "t", Fields: []string{"a", "b"}, Types: []string{"string"}, Open: ts0})
	if err := w.WriteRecord([]string{"x", "y"}); err == nil {
		t.Error("fields/types mismatch must error")
	}
}

func TestEscaping(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{Path: "t", Fields: []string{"v"}, Types: []string{"string"}, Open: ts0})
	weird := "tab\there newline\nthere back\\slash"
	if err := w.WriteRecord([]string{weird}); err != nil {
		t.Fatal(err)
	}
	w.Close(ts0)

	r := NewReader(&buf)
	rec, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := rec.Get("v"); got != weird {
		t.Errorf("round trip = %q, want %q", got, weird)
	}
}

func TestUnsetAndEmpty(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{Path: "t", Fields: []string{"a", "b"}, Types: []string{"string", "string"}, Open: ts0})
	w.WriteRecord([]string{"", EmptyField})
	w.Close(ts0)

	r := NewReader(&buf)
	rec, _ := r.Read()
	if _, ok := rec.Get("a"); ok {
		t.Error("empty string should be written unset and read as absent")
	}
	if v, ok := rec.Get("b"); !ok || v != "" {
		t.Error("(empty) should read as present empty string")
	}
}

func TestReaderHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{Path: "conn", Fields: []string{"x"}, Types: []string{"string"}, Open: ts0})
	w.WriteRecord([]string{"1"})
	w.Close(ts0)
	r := NewReader(&buf)
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	h := r.Header()
	if h.Path != "conn" || len(h.Fields) != 1 || !h.Open.Equal(ts0.Truncate(time.Second)) {
		t.Errorf("header = %+v", h)
	}
}

func TestReaderErrors(t *testing.T) {
	// Data before #fields.
	r := NewReader(strings.NewReader("data\twithout\theader\n"))
	if _, err := r.Read(); err == nil {
		t.Error("data before header must error")
	}
	// Wrong column count.
	in := "#fields\ta\tb\n#types\tstring\tstring\nonly-one\n"
	r = NewReader(strings.NewReader(in))
	if _, err := r.Read(); err == nil {
		t.Error("column count mismatch must error")
	}
}

func TestReadAll(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{Path: "t", Fields: []string{"n"}, Types: []string{"count"}, Open: ts0})
	for i := 0; i < 5; i++ {
		w.WriteRecord([]string{string(rune('0' + i))})
	}
	w.Close(ts0)
	recs, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Errorf("ReadAll = %d records", len(recs))
	}
}

func TestSSLRecordRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewSSLWriter(&buf, ts0)
	in := &SSLRecord{
		TS:             ts0,
		UID:            "CUID1",
		OrigH:          "10.1.2.3",
		OrigP:          51234,
		RespH:          "93.184.216.34",
		RespP:          443,
		Version:        "TLSv12",
		Cipher:         "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256",
		ServerName:     "www.example.com",
		Established:    true,
		CertChainFUIDs: []string{"Fa", "Fb", "Fc"},
	}
	if err := w.Write(in); err != nil {
		t.Fatal(err)
	}
	w.Close(ts0)

	rec, err := NewReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseSSLRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if out.UID != in.UID || out.OrigP != in.OrigP || out.RespP != in.RespP ||
		out.ServerName != in.ServerName || !out.Established || out.Resumed {
		t.Errorf("round trip mismatch: %+v", out)
	}
	if len(out.CertChainFUIDs) != 3 || out.CertChainFUIDs[1] != "Fb" {
		t.Errorf("chain fuids = %v", out.CertChainFUIDs)
	}
	if !out.TS.Equal(ts0) {
		t.Errorf("ts = %v, want %v", out.TS, ts0)
	}
}

func TestSSLRecordNoSNI(t *testing.T) {
	var buf bytes.Buffer
	w := NewSSLWriter(&buf, ts0)
	w.Write(&SSLRecord{TS: ts0, UID: "C1", OrigH: "10.0.0.1", RespH: "1.2.3.4", RespP: 8443})
	w.Close(ts0)
	rec, _ := NewReader(&buf).Read()
	out, err := ParseSSLRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if out.ServerName != "" {
		t.Errorf("SNI = %q, want empty", out.ServerName)
	}
}

func TestParseSSLRecordMissingFields(t *testing.T) {
	if _, err := ParseSSLRecord(Record{}); err == nil {
		t.Error("missing ts must error")
	}
	if _, err := ParseSSLRecord(Record{"ts": "1598963445.0"}); err == nil {
		t.Error("missing uid must error")
	}
}

func boolPtr(b bool) *bool { return &b }

func TestX509RecordRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewX509Writer(&buf, ts0)
	in := &X509Record{
		TS: ts0, ID: "FxYz01", Version: 3, Serial: "0ABC",
		Subject:        "CN=leaf.example.com,O=Example",
		Issuer:         "CN=Example CA,O=Example",
		NotValidBefore: ts0.AddDate(0, -1, 0),
		NotValidAfter:  ts0.AddDate(1, 0, 0),
		KeyAlg:         "ecdsa", SigAlg: "ecdsa-sha256", KeyType: "ecdsa", KeyLength: 256,
		BasicConstraintsCA: boolPtr(false),
		SANDNS:             []string{"leaf.example.com", "alt.example.com"},
	}
	if err := w.Write(in); err != nil {
		t.Fatal(err)
	}
	w.Close(ts0)

	rec, err := NewReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseX509Record(rec)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Serial != in.Serial || out.KeyLength != 256 {
		t.Errorf("round trip mismatch: %+v", out)
	}
	if out.BasicConstraintsCA == nil || *out.BasicConstraintsCA {
		t.Error("basic_constraints.ca should be false")
	}
	if len(out.SANDNS) != 2 {
		t.Errorf("san.dns = %v", out.SANDNS)
	}
}

func TestX509BasicConstraintsAbsent(t *testing.T) {
	var buf bytes.Buffer
	w := NewX509Writer(&buf, ts0)
	w.Write(&X509Record{TS: ts0, ID: "F1", Subject: "CN=a", Issuer: "CN=b",
		NotValidBefore: ts0, NotValidAfter: ts0.AddDate(1, 0, 0)})
	w.Close(ts0)
	rec, _ := NewReader(&buf).Read()
	out, err := ParseX509Record(rec)
	if err != nil {
		t.Fatal(err)
	}
	if out.BasicConstraintsCA != nil {
		t.Error("absent basic constraints must stay nil through the round trip")
	}
	m, err := out.ToMeta()
	if err != nil {
		t.Fatal(err)
	}
	if m.BC != certmodel.BCAbsent {
		t.Errorf("Meta BC = %v, want absent", m.BC)
	}
}

func TestToMetaFromMetaRoundTrip(t *testing.T) {
	iss := dn.MustParse("CN=Camp CA,O=Campus")
	sub := dn.MustParse("CN=svc.campus.edu")
	m := &certmodel.Meta{
		FP:        "FABCDEF",
		Issuer:    iss,
		Subject:   sub,
		SerialHex: "1f2e",
		NotBefore: ts0,
		NotAfter:  ts0.AddDate(1, 0, 0),
		KeyAlg:    certmodel.KeyECDSA,
		KeyBits:   256,
		BC:        certmodel.BCTrue,
		SAN:       []string{"svc.campus.edu"},
	}
	rec := FromMeta(m, ts0)
	m2, err := rec.ToMeta()
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Issuer.Equal(m.Issuer) || !m2.Subject.Equal(m.Subject) {
		t.Error("DNs must survive the record round trip")
	}
	if m2.BC != certmodel.BCTrue || m2.SerialHex != "1f2e" || m2.FP != m.FP {
		t.Errorf("round trip meta = %+v", m2)
	}
}

func TestToMetaBadDN(t *testing.T) {
	r := &X509Record{TS: ts0, ID: "F1", Subject: "CN", Issuer: "CN=ok"}
	if _, err := r.ToMeta(); err == nil {
		t.Error("malformed subject DN must error")
	}
	r2 := &X509Record{TS: ts0, ID: "F1", Subject: "CN=ok", Issuer: "=bad"}
	if _, err := r2.ToMeta(); err == nil {
		t.Error("malformed issuer DN must error")
	}
}

func writeTestLogs(t *testing.T) (ssl, x509 *bytes.Buffer) {
	t.Helper()
	ssl, x509 = &bytes.Buffer{}, &bytes.Buffer{}
	xw := NewX509Writer(x509, ts0)
	certs := []struct{ id, sub, iss string }{
		{"Fleaf", "CN=www.site.edu", "CN=Site CA"},
		{"Fca", "CN=Site CA", "CN=Site Root"},
		{"Froot", "CN=Site Root", "CN=Site Root"},
	}
	for _, c := range certs {
		xw.Write(&X509Record{TS: ts0, ID: c.id, Subject: c.sub, Issuer: c.iss,
			NotValidBefore: ts0.AddDate(0, -1, 0), NotValidAfter: ts0.AddDate(1, 0, 0)})
	}
	// Duplicate certificate observation: must be deduplicated.
	xw.Write(&X509Record{TS: ts0.Add(time.Minute), ID: "Fleaf", Subject: "CN=www.site.edu", Issuer: "CN=Site CA",
		NotValidBefore: ts0.AddDate(0, -1, 0), NotValidAfter: ts0.AddDate(1, 0, 0)})
	xw.Close(ts0)

	sw := NewSSLWriter(ssl, ts0)
	sw.Write(&SSLRecord{TS: ts0, UID: "C1", OrigH: "10.0.0.5", OrigP: 40000, RespH: "5.6.7.8", RespP: 443,
		ServerName: "www.site.edu", Established: true, CertChainFUIDs: []string{"Fleaf", "Fca", "Froot"}})
	sw.Write(&SSLRecord{TS: ts0.Add(time.Second), UID: "C2", OrigH: "10.0.0.6", OrigP: 40001, RespH: "5.6.7.8", RespP: 443,
		CertChainFUIDs: []string{"Fleaf", "Fmissing"}})
	sw.Close(ts0)
	return ssl, x509
}

func TestJoin(t *testing.T) {
	ssl, x509 := writeTestLogs(t)
	var conns []*Connection
	var joinErrs []error
	err := Join(ssl, x509, func(c *Connection, err error) error {
		if err != nil {
			joinErrs = append(joinErrs, err)
			return nil
		}
		conns = append(conns, c)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(conns) != 1 {
		t.Fatalf("joined %d connections, want 1", len(conns))
	}
	if len(joinErrs) != 1 {
		t.Fatalf("join errors = %d, want 1 (missing cert)", len(joinErrs))
	}
	c := conns[0]
	if c.SSL.UID != "C1" || len(c.Chain) != 3 {
		t.Errorf("connection = %+v chain len %d", c.SSL, len(c.Chain))
	}
	if c.Chain[0].Subject.CommonName() != "www.site.edu" {
		t.Error("chain order must follow cert_chain_fuids")
	}
	if !c.Chain[2].SelfSigned() {
		t.Error("root in chain should be self-signed")
	}
}

func TestJoinCallbackAbort(t *testing.T) {
	ssl, x509 := writeTestLogs(t)
	abort := io.ErrUnexpectedEOF
	err := Join(ssl, x509, func(c *Connection, err error) error { return abort })
	if err != abort {
		t.Errorf("Join must propagate the callback error, got %v", err)
	}
}

func TestFormatTimePrecision(t *testing.T) {
	tt := time.Unix(1598963445, 123456000).UTC()
	got := FormatTime(tt)
	if got != "1598963445.123456" {
		t.Errorf("FormatTime = %q", got)
	}
}

// Property: any printable string survives the writer->reader round trip.
func TestQuickFieldRoundTrip(t *testing.T) {
	f := func(s string) bool {
		clean := strings.Map(func(r rune) rune {
			if r == 0 || r == '\r' {
				return -1
			}
			return r
		}, s)
		if clean == "" || clean == UnsetField || clean == EmptyField {
			return true
		}
		var buf bytes.Buffer
		w := NewWriter(&buf, Header{Path: "q", Fields: []string{"v"}, Types: []string{"string"}, Open: ts0})
		if err := w.WriteRecord([]string{clean}); err != nil {
			return false
		}
		if err := w.Close(ts0); err != nil {
			return false
		}
		rec, err := NewReader(&buf).Read()
		if err != nil {
			return false
		}
		got, _ := rec.Get("v")
		return got == clean
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSSLWrite(b *testing.B) {
	w := NewSSLWriter(io.Discard, ts0)
	rec := &SSLRecord{TS: ts0, UID: "C", OrigH: "10.0.0.1", OrigP: 1, RespH: "1.1.1.1", RespP: 443,
		ServerName: "bench.example.com", Established: true, CertChainFUIDs: []string{"Fa", "Fb"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.Write(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSSLParse(b *testing.B) {
	var buf bytes.Buffer
	w := NewSSLWriter(&buf, ts0)
	for i := 0; i < 1000; i++ {
		w.Write(&SSLRecord{TS: ts0, UID: "C", OrigH: "10.0.0.1", OrigP: 1, RespH: "1.1.1.1", RespP: 443,
			ServerName: "bench.example.com", Established: true, CertChainFUIDs: []string{"Fa", "Fb"}})
	}
	w.Close(ts0)
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(bytes.NewReader(data))
		n := 0
		for {
			rec, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ParseSSLRecord(rec); err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != 1000 {
			b.Fatalf("parsed %d", n)
		}
	}
}

// TestConcatenatedLogs reads two rotated log files streamed back to back —
// the header block reappears mid-stream, as when catting ssl.log.1 ssl.log.
func TestConcatenatedLogs(t *testing.T) {
	var part1, part2 bytes.Buffer
	w1 := NewSSLWriter(&part1, ts0)
	w1.Write(&SSLRecord{TS: ts0, UID: "C1", OrigH: "10.0.0.1", RespH: "1.1.1.1", RespP: 443})
	w1.Close(ts0)
	w2 := NewSSLWriter(&part2, ts0.Add(time.Hour))
	w2.Write(&SSLRecord{TS: ts0.Add(time.Hour), UID: "C2", OrigH: "10.0.0.2", RespH: "1.1.1.1", RespP: 443})
	w2.Close(ts0.Add(time.Hour))

	combined := io.MultiReader(&part1, &part2)
	recs, err := NewReader(combined).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("read %d records from rotated stream, want 2", len(recs))
	}
	uids := map[string]bool{}
	for _, r := range recs {
		u, _ := r.Get("uid")
		uids[u] = true
	}
	if !uids["C1"] || !uids["C2"] {
		t.Errorf("uids = %v", uids)
	}
}

func TestIndexX509Direct(t *testing.T) {
	var x509 bytes.Buffer
	w := NewX509Writer(&x509, ts0)
	w.Write(&X509Record{TS: ts0, ID: "Fi", Subject: "CN=i", Issuer: "CN=j",
		NotValidBefore: ts0, NotValidAfter: ts0.AddDate(1, 0, 0)})
	w.Close(ts0)
	idx, err := IndexX509(&x509)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 1 || idx["Fi"] == nil {
		t.Errorf("index = %v", idx)
	}
	// Malformed stream.
	if _, err := IndexX509(strings.NewReader("#fields\tts\n#types\ttime\nnotanumber\textra\n")); err == nil {
		t.Error("bad x509 stream must error")
	}
}

func TestWriterRecordsCounters(t *testing.T) {
	var ssl, x509 bytes.Buffer
	sw := NewSSLWriter(&ssl, ts0)
	sw.Write(&SSLRecord{TS: ts0, UID: "C", OrigH: "10.0.0.1", RespH: "1.1.1.1", RespP: 443})
	if sw.Records() != 1 {
		t.Errorf("ssl Records = %d", sw.Records())
	}
	xw := NewX509Writer(&x509, ts0)
	xw.Write(&X509Record{TS: ts0, ID: "F", Subject: "CN=a", Issuer: "CN=b",
		NotValidBefore: ts0, NotValidAfter: ts0.AddDate(1, 0, 0)})
	if xw.Records() != 1 {
		t.Errorf("x509 Records = %d", xw.Records())
	}
}

func TestCloseWithoutRecordsWritesHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{Path: "empty", Fields: []string{"a"}, Types: []string{"string"}, Open: ts0})
	if err := w.Close(ts0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "#path\tempty") || !strings.Contains(out, "#close") {
		t.Errorf("empty log missing header/trailer:\n%s", out)
	}
	// Close on a mismatched header surfaces the error.
	bad := NewWriter(&bytes.Buffer{}, Header{Path: "bad", Fields: []string{"a", "b"}, Types: []string{"string"}, Open: ts0})
	if err := bad.Close(ts0); err == nil {
		t.Error("Close with bad header must error")
	}
}

func TestFromMetaBCVariants(t *testing.T) {
	iss := dn.MustParse("CN=i")
	sub := dn.MustParse("CN=s")
	for _, bc := range []certmodel.BasicConstraints{certmodel.BCAbsent, certmodel.BCFalse, certmodel.BCTrue} {
		m := &certmodel.Meta{FP: "F", Issuer: iss, Subject: sub, NotBefore: ts0, NotAfter: ts0.AddDate(1, 0, 0), BC: bc}
		rec := FromMeta(m, ts0)
		back, err := rec.ToMeta()
		if err != nil {
			t.Fatal(err)
		}
		if back.BC != bc {
			t.Errorf("BC %v round-tripped to %v", bc, back.BC)
		}
	}
}
