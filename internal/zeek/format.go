//certchain:hotpath — the TSV reader and writer run once per log line.

// Package zeek implements the Zeek network-monitor log format and the two
// log streams the paper's pipeline consumes: ssl.log (TLS connection
// records) and x509.log (certificate records), cross-referenced through
// file-unique certificate identifiers exactly as Zeek emits them.
//
// The on-disk format is Zeek's tab-separated-value layout: a header block of
// '#'-prefixed directives (#separator, #fields, #types, ...) followed by one
// record per line, with '-' for unset fields, '(empty)' for empty values,
// and ',' separating vector elements.
package zeek

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Field separators and sentinels of the standard Zeek ASCII writer.
const (
	Separator    = "\t"
	SetSeparator = ","
	EmptyField   = "(empty)"
	UnsetField   = "-"
)

// Header describes one log stream.
type Header struct {
	Path   string
	Fields []string
	Types  []string
	Open   time.Time
}

// Writer emits records for a single log stream in Zeek ASCII format.
type Writer struct {
	w      *bufio.Writer
	header Header
	opened bool
	nrec   int
}

// NewWriter creates a writer for the given stream header.
func NewWriter(w io.Writer, h Header) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), header: h}
}

// writeHeader emits the '#'-directive block once per stream.
//
//certchain:coldpath runs once per log stream, not per record
func (w *Writer) writeHeader() error {
	h := w.header
	if len(h.Fields) != len(h.Types) {
		return fmt.Errorf("zeek: header fields/types mismatch: %d vs %d", len(h.Fields), len(h.Types))
	}
	lines := []string{
		"#separator \\x09",
		"#set_separator\t" + SetSeparator,
		"#empty_field\t" + EmptyField,
		"#unset_field\t" + UnsetField,
		"#path\t" + h.Path,
		"#open\t" + h.Open.Format("2006-01-02-15-04-05"),
		"#fields\t" + strings.Join(h.Fields, Separator),
		"#types\t" + strings.Join(h.Types, Separator),
	}
	for _, l := range lines {
		if _, err := w.w.WriteString(l + "\n"); err != nil {
			return fmt.Errorf("zeek: write header: %w", err)
		}
	}
	w.opened = true
	return nil
}

// WriteRecord writes one record; values must align with the header fields.
// Nil/empty strings are emitted as the unset sentinel.
func (w *Writer) WriteRecord(values []string) error {
	if !w.opened {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	if len(values) != len(w.header.Fields) {
		return fmt.Errorf("zeek: record has %d values, header has %d fields", len(values), len(w.header.Fields)) //certchain:coldpath caller-bug error path
	}
	for i, v := range values {
		if i > 0 {
			if err := w.w.WriteByte('\t'); err != nil {
				return err
			}
		}
		if v == "" {
			v = UnsetField
		}
		if _, err := w.w.WriteString(escapeField(v)); err != nil {
			return err
		}
	}
	w.nrec++
	return w.w.WriteByte('\n')
}

// Close flushes the stream and writes the #close trailer.
func (w *Writer) Close(at time.Time) error {
	if !w.opened {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	if _, err := w.w.WriteString("#close\t" + at.Format("2006-01-02-15-04-05") + "\n"); err != nil {
		return err
	}
	return w.w.Flush()
}

// Flush pushes buffered records to the underlying writer without closing the
// stream — what a live Zeek worker does between rotations, and what the
// replay emitter needs so a tailer sees records as they are written.
func (w *Writer) Flush() error {
	if !w.opened {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

// Records returns the number of records written so far.
func (w *Writer) Records() int { return w.nrec }

func escapeField(v string) string {
	if !strings.ContainsAny(v, "\t\n\\") && !strings.HasPrefix(v, "#") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch {
		case v[i] == '\t':
			b.WriteString("\\x09")
		case v[i] == '\n':
			b.WriteString("\\x0a")
		case v[i] == '\\':
			b.WriteString("\\\\")
		case v[i] == '#' && i == 0:
			// A leading '#' would make the data line look like a header
			// directive to readers.
			b.WriteString("\\x23")
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

func unescapeField(v string) string {
	if !strings.Contains(v, "\\") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' && i+1 < len(v) {
			switch v[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'x':
				if i+3 < len(v) {
					if n, err := strconv.ParseUint(v[i+2:i+4], 16, 8); err == nil {
						b.WriteByte(byte(n))
						i += 3
						continue
					}
				}
			}
		}
		b.WriteByte(v[i])
	}
	return b.String()
}

// Record is a parsed log line keyed by field name.
type Record map[string]string

// Get returns a field value, treating the unset sentinel as absent.
func (r Record) Get(field string) (string, bool) {
	v, ok := r[field]
	if !ok || v == UnsetField {
		return "", false
	}
	if v == EmptyField {
		return "", true
	}
	return v, true
}

// GetVector splits a vector-typed field on the set separator.
func (r Record) GetVector(field string) []string {
	v, ok := r.Get(field)
	if !ok || v == "" {
		return nil
	}
	return strings.Split(v, SetSeparator)
}

// GetBool parses a Zeek bool field ("T"/"F").
func (r Record) GetBool(field string) (value, present bool) {
	v, ok := r.Get(field)
	if !ok {
		return false, false
	}
	return v == "T", true
}

// GetTime parses a Zeek time field (epoch seconds with fraction).
func (r Record) GetTime(field string) (time.Time, bool) {
	v, ok := r.Get(field)
	if !ok {
		return time.Time{}, false
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return time.Time{}, false
	}
	sec := int64(f)
	nsec := int64((f - float64(sec)) * 1e9)
	return time.Unix(sec, nsec).UTC(), true
}

// GetInt parses a count/int field.
func (r Record) GetInt(field string) (int, bool) {
	v, ok := r.Get(field)
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Reader parses a Zeek ASCII log stream.
//
// The reader tolerates what a log consumer sees on a file that is still being
// written (or was cut off mid-write): a missing #close footer, a final data
// line without a trailing newline (parsed normally when its field count is
// right), and a final line truncated mid-record (dropped silently). Only
// newline-terminated malformed lines — corruption rather than an in-progress
// write — surface as errors.
type Reader struct {
	br     *bufio.Reader
	header Header
	line   int
	eof    bool
}

// NewReader wraps an ASCII log stream. The header block is parsed lazily on
// the first Read.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Header returns the parsed header; valid after the first successful Read.
func (r *Reader) Header() Header { return r.header }

// Read returns the next record or io.EOF.
func (r *Reader) Read() (Record, error) {
	for !r.eof {
		line, rerr := r.br.ReadString('\n')
		if rerr != nil {
			if rerr != io.EOF {
				return nil, fmt.Errorf("zeek: read: %w", rerr) //certchain:coldpath I/O error path
			}
			r.eof = true
		}
		terminated := strings.HasSuffix(line, "\n")
		line = strings.TrimSuffix(line, "\n")
		line = strings.TrimSuffix(line, "\r")
		if line == "" {
			continue
		}
		r.line++
		if strings.HasPrefix(line, "#") {
			if !terminated {
				// A directive fragment cut mid-write: not yet a directive.
				continue
			}
			parseDirective(&r.header, line)
			continue
		}
		if len(r.header.Fields) == 0 {
			return nil, fmt.Errorf("zeek: line %d: data before #fields header", r.line) //certchain:coldpath malformed-stream error path
		}
		parts := strings.Split(line, Separator)
		if len(parts) != len(r.header.Fields) {
			if !terminated {
				// The writer is mid-record; the fragment is not data yet.
				continue
			}
			return nil, fmt.Errorf("zeek: line %d: %d values for %d fields", r.line, len(parts), len(r.header.Fields)) //certchain:coldpath malformed-line error path
		}
		rec := make(Record, len(parts))
		for i, f := range r.header.Fields {
			rec[f] = unescapeField(parts[i])
		}
		return rec, nil
	}
	return nil, io.EOF
}

// parseDirective folds one '#'-prefixed header line into h. Unknown
// directives (#separator, #close, ...) are ignored.
func parseDirective(h *Header, line string) {
	parts := strings.SplitN(line, Separator, 2)
	key := parts[0]
	rest := ""
	if len(parts) > 1 {
		rest = parts[1]
	}
	switch key {
	case "#path":
		h.Path = rest
	case "#fields":
		h.Fields = strings.Split(rest, Separator)
	case "#types":
		h.Types = strings.Split(rest, Separator)
	case "#open":
		if t, err := time.Parse("2006-01-02-15-04-05", rest); err == nil {
			h.Open = t
		}
	}
}

// ReadAll drains the reader.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// FormatTime renders a Zeek time value (epoch with microsecond precision).
func FormatTime(t time.Time) string {
	return strconv.FormatFloat(float64(t.UnixNano())/1e9, 'f', 6, 64)
}

// FormatBool renders a Zeek bool.
func FormatBool(b bool) string {
	if b {
		return "T"
	}
	return "F"
}
