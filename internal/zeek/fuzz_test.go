package zeek

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// FuzzFieldRoundTrip checks that any value surviving the writer's escaping
// reads back identically — the property the whole log pipeline rests on.
func FuzzFieldRoundTrip(f *testing.F) {
	for _, seed := range []string{
		"plain", "tab\there", "newline\nthere", `back\slash`,
		"CN=x,O=y", "(empty)", "-", "mixed\t\n\\all",
	} {
		f.Add(seed)
	}
	open := time.Date(2020, 9, 1, 0, 0, 0, 0, time.UTC)
	f.Fuzz(func(t *testing.T, value string) {
		if strings.ContainsAny(value, "\r\x00") {
			return // carriage returns and NULs never appear in Zeek fields
		}
		if value == "" || value == UnsetField || value == EmptyField {
			return // sentinel collisions are documented behaviour
		}
		var buf bytes.Buffer
		w := NewWriter(&buf, Header{Path: "fuzz", Fields: []string{"v"}, Types: []string{"string"}, Open: open})
		if err := w.WriteRecord([]string{value}); err != nil {
			t.Fatalf("write %q: %v", value, err)
		}
		if err := w.Close(open); err != nil {
			t.Fatal(err)
		}
		rec, err := NewReader(&buf).Read()
		if err != nil {
			t.Fatalf("read back %q: %v", value, err)
		}
		got, ok := rec.Get("v")
		if !ok || got != value {
			t.Fatalf("round trip: wrote %q, read %q (ok=%v)", value, got, ok)
		}
	})
}

// FuzzReader feeds arbitrary bytes to the TSV reader: it must never panic
// and must either yield records or a clean error.
func FuzzReader(f *testing.F) {
	f.Add("#fields\ta\tb\n#types\tstring\tstring\nx\ty\n")
	f.Add("#separator \\x09\n#path\tssl\n")
	f.Add("junk without header\n")
	f.Fuzz(func(t *testing.T, input string) {
		r := NewReader(strings.NewReader(input))
		for i := 0; i < 1000; i++ {
			_, err := r.Read()
			if err != nil {
				return
			}
		}
	})
}

// FuzzJSONReader feeds arbitrary bytes to the ND-JSON reader.
func FuzzJSONReader(f *testing.F) {
	f.Add(`{"ts":1.5,"uid":"C","cert_chain_fuids":["a","b"]}`)
	f.Add(`{"nested":{"x":1}}`)
	f.Add("not json")
	f.Fuzz(func(t *testing.T, input string) {
		r := NewJSONReader(strings.NewReader(input))
		for i := 0; i < 1000; i++ {
			_, err := r.Read()
			if err != nil {
				return
			}
		}
	})
}
