//certchain:hotpath — the ND-JSON reader and writers run once per log line.

package zeek

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Zeek's second on-disk format: newline-delimited JSON, one object per
// record (LogAscii::use_json=T). Field names match the TSV schema; times are
// epoch seconds with fractional precision, exactly as Zeek renders them.

// JSONSSLWriter writes ssl.log records as ND-JSON.
type JSONSSLWriter struct {
	w    *bufio.Writer
	nrec int
}

// NewJSONSSLWriter creates an ND-JSON ssl.log writer.
func NewJSONSSLWriter(w io.Writer) *JSONSSLWriter {
	return &JSONSSLWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// jsonSSLRecord is the wire form; pointers express Zeek's unset fields.
type jsonSSLRecord struct {
	TS             float64  `json:"ts"`
	UID            string   `json:"uid"`
	OrigH          string   `json:"id.orig_h"`
	OrigP          int      `json:"id.orig_p"`
	RespH          string   `json:"id.resp_h"`
	RespP          int      `json:"id.resp_p"`
	Version        *string  `json:"version,omitempty"`
	Cipher         *string  `json:"cipher,omitempty"`
	ServerName     *string  `json:"server_name,omitempty"`
	Resumed        bool     `json:"resumed"`
	Established    bool     `json:"established"`
	CertChainFUIDs []string `json:"cert_chain_fuids,omitempty"`
}

func optStr(s string) *string {
	if s == "" {
		return nil
	}
	return &s
}

func epochOf(t time.Time) float64 {
	f, _ := strconv.ParseFloat(FormatTime(t), 64)
	return f
}

// Write emits one connection record.
func (w *JSONSSLWriter) Write(r *SSLRecord) error {
	rec := jsonSSLRecord{
		TS:             epochOf(r.TS),
		UID:            r.UID,
		OrigH:          r.OrigH,
		OrigP:          r.OrigP,
		RespH:          r.RespH,
		RespP:          r.RespP,
		Version:        optStr(r.Version),
		Cipher:         optStr(r.Cipher),
		ServerName:     optStr(r.ServerName),
		Resumed:        r.Resumed,
		Established:    r.Established,
		CertChainFUIDs: r.CertChainFUIDs,
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("zeek: marshal json ssl record: %w", err) //certchain:coldpath marshal error path
	}
	if _, err := w.w.Write(data); err != nil {
		return err
	}
	w.nrec++
	return w.w.WriteByte('\n')
}

// Close flushes the stream.
func (w *JSONSSLWriter) Close() error { return w.w.Flush() }

// Flush pushes buffered records without closing the stream.
func (w *JSONSSLWriter) Flush() error { return w.w.Flush() }

// Records returns the number of records written.
func (w *JSONSSLWriter) Records() int { return w.nrec }

// JSONX509Writer writes x509.log records as ND-JSON.
type JSONX509Writer struct {
	w    *bufio.Writer
	nrec int
}

// NewJSONX509Writer creates an ND-JSON x509.log writer.
func NewJSONX509Writer(w io.Writer) *JSONX509Writer {
	return &JSONX509Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

type jsonX509Record struct {
	TS             float64  `json:"ts"`
	ID             string   `json:"id"`
	Version        int      `json:"certificate.version"`
	Serial         string   `json:"certificate.serial"`
	Subject        string   `json:"certificate.subject"`
	Issuer         string   `json:"certificate.issuer"`
	NotValidBefore float64  `json:"certificate.not_valid_before"`
	NotValidAfter  float64  `json:"certificate.not_valid_after"`
	KeyAlg         *string  `json:"certificate.key_alg,omitempty"`
	SigAlg         *string  `json:"certificate.sig_alg,omitempty"`
	KeyType        *string  `json:"certificate.key_type,omitempty"`
	KeyLength      int      `json:"certificate.key_length,omitempty"`
	BasicCA        *bool    `json:"basic_constraints.ca,omitempty"`
	SANDNS         []string `json:"san.dns,omitempty"`
}

// Write emits one certificate record.
func (w *JSONX509Writer) Write(r *X509Record) error {
	rec := jsonX509Record{
		TS:             epochOf(r.TS),
		ID:             r.ID,
		Version:        r.Version,
		Serial:         r.Serial,
		Subject:        r.Subject,
		Issuer:         r.Issuer,
		NotValidBefore: epochOf(r.NotValidBefore),
		NotValidAfter:  epochOf(r.NotValidAfter),
		KeyAlg:         optStr(r.KeyAlg),
		SigAlg:         optStr(r.SigAlg),
		KeyType:        optStr(r.KeyType),
		KeyLength:      r.KeyLength,
		BasicCA:        r.BasicConstraintsCA,
		SANDNS:         r.SANDNS,
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("zeek: marshal json x509 record: %w", err) //certchain:coldpath marshal error path
	}
	if _, err := w.w.Write(data); err != nil {
		return err
	}
	w.nrec++
	return w.w.WriteByte('\n')
}

// Close flushes the stream.
func (w *JSONX509Writer) Close() error { return w.w.Flush() }

// Flush pushes buffered records without closing the stream.
func (w *JSONX509Writer) Flush() error { return w.w.Flush() }

// Records returns the number of records written.
func (w *JSONX509Writer) Records() int { return w.nrec }

// JSONReader parses an ND-JSON Zeek log stream into generic Records so the
// typed parsers (ParseSSLRecord / ParseX509Record) work on both formats.
type JSONReader struct {
	s    *bufio.Scanner
	line int
}

// NewJSONReader wraps an ND-JSON log stream.
func NewJSONReader(r io.Reader) *JSONReader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 1<<16), 1<<24)
	return &JSONReader{s: s}
}

// Read returns the next record or io.EOF. JSON values are rendered back to
// the string forms the typed parsers expect (bools as T/F, vectors joined
// with the set separator, numbers via strconv).
func (r *JSONReader) Read() (Record, error) {
	for r.s.Scan() {
		r.line++
		line := r.s.Bytes()
		if len(line) == 0 {
			continue
		}
		var raw map[string]any
		if err := json.Unmarshal(line, &raw); err != nil {
			return nil, fmt.Errorf("zeek: json line %d: %w", r.line, err) //certchain:coldpath malformed-line error path
		}
		rec := make(Record, len(raw))
		for k, v := range raw {
			rec[k] = jsonValueToField(v)
		}
		return rec, nil
	}
	if err := r.s.Err(); err != nil {
		return nil, fmt.Errorf("zeek: json scan: %w", err) //certchain:coldpath I/O error path
	}
	return nil, io.EOF
}

func jsonValueToField(v any) string {
	switch t := v.(type) {
	case nil:
		return UnsetField
	case bool:
		return FormatBool(t)
	case float64:
		return strconv.FormatFloat(t, 'f', -1, 64)
	case string:
		if t == "" {
			return EmptyField
		}
		return t
	case []any:
		out := ""
		for i, el := range t {
			if i > 0 {
				out += SetSeparator
			}
			out += jsonValueToField(el)
		}
		if out == "" {
			return EmptyField
		}
		return out
	default:
		// Unmarshal into `any` only yields this for JSON objects, which the
		// Zeek schemas never emit.
		return fmt.Sprint(t) //certchain:coldpath unexpected-type fallback
	}
}

// ReadAll drains the reader.
func (r *JSONReader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
