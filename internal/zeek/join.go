package zeek

import (
	"fmt"
	"io"

	"certchains/internal/certmodel"
)

// Connection is an ssl.log row joined with its certificate chain, the unit
// the analysis pipeline consumes.
type Connection struct {
	SSL   *SSLRecord
	Chain certmodel.Chain
}

// RecordReader yields generic log records; both the TSV Reader and the
// JSONReader implement it.
type RecordReader interface {
	Read() (Record, error)
}

// Join streams ssl.log and x509.log readers in Zeek's TSV format and
// produces joined connections. The x509 stream is indexed first
// (certificates are deduplicated by id, as Zeek reuses the same file id for
// a certificate seen many times); ssl rows referencing unknown certificate
// ids yield an error per row via the callback's err argument but do not
// stop the join — mirroring how real log pipelines tolerate x509 rotation
// gaps.
func Join(ssl, x509 io.Reader, fn func(c *Connection, err error) error) error {
	return JoinRecords(NewReader(ssl), NewReader(x509), fn)
}

// JoinJSON is Join for Zeek's ND-JSON log format.
func JoinJSON(ssl, x509 io.Reader, fn func(c *Connection, err error) error) error {
	return JoinRecords(NewJSONReader(ssl), NewJSONReader(x509), fn)
}

// JoinRecords joins pre-wrapped record streams.
func JoinRecords(ssl, x509 RecordReader, fn func(c *Connection, err error) error) error {
	certs, err := indexX509Records(x509)
	if err != nil {
		return err
	}
	r := ssl
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		sr, err := ParseSSLRecord(rec)
		if err != nil {
			if cbErr := fn(nil, err); cbErr != nil {
				return cbErr
			}
			continue
		}
		conn := &Connection{SSL: sr}
		var joinErr error
		for _, fuid := range sr.CertChainFUIDs {
			m, ok := certs[fuid]
			if !ok {
				joinErr = fmt.Errorf("zeek: connection %s references unknown certificate %s", sr.UID, fuid)
				break
			}
			conn.Chain = append(conn.Chain, m)
		}
		if joinErr != nil {
			if cbErr := fn(nil, joinErr); cbErr != nil {
				return cbErr
			}
			continue
		}
		if cbErr := fn(conn, nil); cbErr != nil {
			return cbErr
		}
	}
}

// IndexX509 reads a full TSV x509.log stream into a fingerprint-keyed map.
func IndexX509(x509 io.Reader) (map[string]*certmodel.Meta, error) {
	return indexX509Records(NewReader(x509))
}

func indexX509Records(r RecordReader) (map[string]*certmodel.Meta, error) {
	out := make(map[string]*certmodel.Meta)
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		xr, err := ParseX509Record(rec)
		if err != nil {
			return nil, err
		}
		if _, dup := out[xr.ID]; dup {
			continue // Zeek logs a certificate once per observation; first wins
		}
		m, err := xr.ToMeta()
		if err != nil {
			return nil, err
		}
		out[xr.ID] = m
	}
}
