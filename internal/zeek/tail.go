package zeek

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"strings"

	"certchains/internal/resilience"
)

// This file implements live log tailing: following a Zeek log file as the
// worker writes it, surviving partial trailing lines, in-place truncation,
// and rename-based rotation (Zeek's default ASCII writer renames ssl.log to
// ssl-<timestamp>.log and starts a fresh file each rotation interval).
//
// The tailer is deliberately poll-based (no inotify): polling is portable,
// trivially testable, and a daemon polling every few hundred milliseconds is
// indistinguishable from event-driven tailing at Zeek's log rates. Crucially
// the downstream join is poll-independent (see incjoin.go), so the poll
// cadence never changes analysis results.

// LineDecoder turns raw log lines into generic Records. Implementations keep
// whatever per-file state the format needs (the TSV header block); the tailer
// resets the decoder on rotation, when the new file carries a new header.
type LineDecoder interface {
	// Decode parses one complete line. A nil record with nil error means the
	// line carried no data (blank line, header directive, #close footer).
	Decode(line string) (Record, error)
	// Closed reports whether the stream has announced its end (#close for
	// TSV; ND-JSON streams never do).
	Closed() bool
}

// TSVDecoder decodes Zeek ASCII (TSV) log lines.
type TSVDecoder struct {
	header Header
	closed bool
	line   int
}

// NewTSVDecoder returns a decoder with no header state; the header block is
// folded in as directive lines arrive.
func NewTSVDecoder() *TSVDecoder { return &TSVDecoder{} }

// Decode implements LineDecoder.
func (d *TSVDecoder) Decode(line string) (Record, error) {
	if line == "" {
		return nil, nil
	}
	d.line++
	if strings.HasPrefix(line, "#") {
		if strings.HasPrefix(line, "#close") {
			d.closed = true
			return nil, nil
		}
		if strings.HasPrefix(line, "#open") {
			// A writer reopening the same file after #close resumes the stream.
			d.closed = false
		}
		parseDirective(&d.header, line)
		return nil, nil
	}
	if len(d.header.Fields) == 0 {
		return nil, fmt.Errorf("zeek: tail line %d: data before #fields header", d.line)
	}
	parts := strings.Split(line, Separator)
	if len(parts) != len(d.header.Fields) {
		return nil, fmt.Errorf("zeek: tail line %d: %d values for %d fields", d.line, len(parts), len(d.header.Fields))
	}
	rec := make(Record, len(parts))
	for i, f := range d.header.Fields {
		rec[f] = unescapeField(parts[i])
	}
	return rec, nil
}

// Closed implements LineDecoder.
func (d *TSVDecoder) Closed() bool { return d.closed }

// Header returns the header parsed so far.
func (d *TSVDecoder) Header() Header { return d.header }

// restore reinstates header state from a snapshot, so a tailer resuming
// mid-file does not need to re-read the header block.
func (d *TSVDecoder) restore(fields []string, closed bool) {
	if len(fields) > 0 {
		d.header.Fields = fields
	}
	d.closed = closed
}

// JSONDecoder decodes ND-JSON log lines. It is stateless: every line is a
// self-contained object.
type JSONDecoder struct {
	line int
}

// NewJSONDecoder returns an ND-JSON line decoder.
func NewJSONDecoder() *JSONDecoder { return &JSONDecoder{} }

// Decode implements LineDecoder.
func (d *JSONDecoder) Decode(line string) (Record, error) {
	if line == "" {
		return nil, nil
	}
	d.line++
	var raw map[string]any
	if err := json.Unmarshal([]byte(line), &raw); err != nil {
		return nil, fmt.Errorf("zeek: tail json line %d: %w", d.line, err)
	}
	rec := make(Record, len(raw))
	for k, v := range raw {
		rec[k] = jsonValueToField(v)
	}
	return rec, nil
}

// Closed implements LineDecoder.
func (d *JSONDecoder) Closed() bool { return false }

// TailState is the serializable position of a tailer, persisted in daemon
// snapshots so a restart resumes tailing where it left off. Offset always
// points at a line boundary (partial reads are re-read after restore), so no
// buffered bytes need to be persisted.
type TailState struct {
	Offset    int64    `json:"offset"`
	Rotations int64    `json:"rotations,omitempty"`
	ParseErrs int64    `json:"parse_errs,omitempty"`
	TSVFields []string `json:"tsv_fields,omitempty"`
	Closed    bool     `json:"closed,omitempty"`
}

// Tailer follows one growing log file. All file I/O goes through a
// resilience.FS, so a fault plan can fail opens, stats, and reads at chosen
// points; a failed Poll leaves the tailer's position untouched (read faults
// consume no bytes), so the caller just polls again.
type Tailer struct {
	path   string
	newDec func() LineDecoder
	dec    LineDecoder
	fsys   resilience.FS

	f      resilience.File
	offset int64  // bytes of fully processed lines in the current file
	carry  []byte // bytes after offset still waiting for their newline
	size   int64  // file size at the last poll, for lag reporting

	rotations int64
	parseErrs int64

	resume TailState // pending seek target from Restore, applied on open
}

// NewTailer follows path, decoding lines with decoders from newDec. The file
// does not need to exist yet; polls before it appears are no-ops.
func NewTailer(path string, newDec func() LineDecoder) *Tailer {
	return NewTailerFS(path, newDec, resilience.OS)
}

// NewTailerFS is NewTailer with an explicit filesystem — the seam chaos
// tests use to inject open/stat/read faults.
func NewTailerFS(path string, newDec func() LineDecoder, fsys resilience.FS) *Tailer {
	if fsys == nil {
		fsys = resilience.OS
	}
	return &Tailer{path: path, newDec: newDec, dec: newDec(), fsys: fsys}
}

// Restore positions the tailer from a snapshot. Must be called before the
// first Poll. If the file has been rotated or truncated below the saved
// offset while the daemon was down, tailing restarts from the top of the
// current file (the rotated-away history is gone either way).
func (t *Tailer) Restore(s TailState) {
	t.resume = s
	t.rotations = s.Rotations
	t.parseErrs = s.ParseErrs
	if d, ok := t.dec.(*TSVDecoder); ok {
		d.restore(s.TSVFields, s.Closed)
	}
}

// State returns the serializable tailer position.
func (t *Tailer) State() TailState {
	s := TailState{Offset: t.offset, Rotations: t.rotations, ParseErrs: t.parseErrs}
	if d, ok := t.dec.(*TSVDecoder); ok {
		s.TSVFields = d.header.Fields
		s.Closed = d.closed
	}
	return s
}

// Poll reads everything appended since the last poll and emits each complete
// data line's record. It detects truncation (file shrank below our offset)
// and rename rotation (path now names a different file): the remainder of a
// rotated-away file is drained before switching to its replacement.
func (t *Tailer) Poll(emit func(Record) error) error {
	if t.f == nil {
		if err := t.open(); err != nil || t.f == nil {
			return err
		}
	}
	cur, err := t.f.Stat()
	if err != nil {
		return fmt.Errorf("zeek: tail %s: %w", t.path, err)
	}
	if cur.Size() < t.offset+int64(len(t.carry)) {
		// Truncated in place: the writer restarted the file under us.
		if _, err := t.f.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("zeek: tail %s: %w", t.path, err)
		}
		t.offset, t.carry = 0, nil
		t.dec = t.newDec()
		t.rotations++
	}
	named, statErr := t.fsys.Stat(t.path)
	rotated := statErr == nil && !os.SameFile(cur, named)
	if err := t.consume(emit); err != nil {
		return err
	}
	if !rotated {
		return nil
	}
	// The old file is fully drained; a dangling partial line is the writer's
	// final (unterminated) record — decode it before moving on.
	if err := t.flushCarry(emit); err != nil {
		return err
	}
	t.f.Close()
	t.f = nil
	t.offset = 0
	t.dec = t.newDec()
	t.rotations++
	if err := t.open(); err != nil || t.f == nil {
		return err
	}
	return t.consume(emit)
}

// open opens the tailed path, applying any pending restore offset. A missing
// file is not an error — the writer just has not created it yet.
func (t *Tailer) open() error {
	f, err := t.fsys.Open(t.path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("zeek: tail %s: %w", t.path, err)
	}
	t.f = f
	if t.resume.Offset > 0 {
		fi, err := f.Stat()
		if err != nil {
			return fmt.Errorf("zeek: tail %s: %w", t.path, err)
		}
		if fi.Size() >= t.resume.Offset {
			if _, err := f.Seek(t.resume.Offset, io.SeekStart); err != nil {
				return fmt.Errorf("zeek: tail %s: %w", t.path, err)
			}
			t.offset = t.resume.Offset
		} else {
			// Shorter than where we left off: rotated while down.
			t.dec = t.newDec()
			t.rotations++
		}
		t.resume = TailState{}
	}
	return nil
}

// consume reads to the current EOF, emitting every complete line.
func (t *Tailer) consume(emit func(Record) error) error {
	buf := make([]byte, 1<<16)
	for {
		n, err := t.f.Read(buf)
		if n > 0 {
			t.carry = append(t.carry, buf[:n]...)
			for {
				i := bytes.IndexByte(t.carry, '\n')
				if i < 0 {
					break
				}
				line := string(t.carry[:i])
				t.carry = t.carry[i+1:]
				t.offset += int64(i) + 1
				if err := t.decodeLine(line, emit); err != nil {
					return err
				}
			}
		}
		if err == io.EOF {
			if fi, serr := t.f.Stat(); serr == nil {
				t.size = fi.Size()
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("zeek: tail %s: %w", t.path, err)
		}
	}
}

func (t *Tailer) decodeLine(line string, emit func(Record) error) error {
	line = strings.TrimSuffix(line, "\r")
	rec, err := t.dec.Decode(line)
	if err != nil {
		// Malformed lines are counted, not fatal: a daemon must outlive one
		// corrupt record.
		t.parseErrs++
		return nil
	}
	if rec == nil {
		return nil
	}
	return emit(rec)
}

// flushCarry decodes a dangling unterminated final line, used when the file
// has reached its definite end (rotation or shutdown). Mid-record truncation
// shows up as a parse error and is counted, matching the Reader's tolerance.
func (t *Tailer) flushCarry(emit func(Record) error) error {
	if len(t.carry) == 0 {
		return nil
	}
	line := string(t.carry)
	t.offset += int64(len(t.carry))
	t.carry = nil
	return t.decodeLine(line, emit)
}

// Finish drains any unterminated final line. Call once when tailing ends for
// good (daemon shutdown after the writer closed the stream).
func (t *Tailer) Finish(emit func(Record) error) error {
	return t.flushCarry(emit)
}

// Closed reports whether the stream announced its end (#close).
func (t *Tailer) Closed() bool { return t.dec.Closed() }

// LagBytes is how far the last poll's file end is beyond what has been
// processed — 0 when fully caught up.
func (t *Tailer) LagBytes() int64 {
	lag := t.size - t.offset - int64(len(t.carry))
	if lag < 0 {
		return 0
	}
	return lag
}

// Rotations counts detected rotations and truncations.
func (t *Tailer) Rotations() int64 { return t.rotations }

// ParseErrors counts malformed lines that were dropped.
func (t *Tailer) ParseErrors() int64 { return t.parseErrs }

// Offset is the byte position of fully processed lines in the current file.
func (t *Tailer) Offset() int64 { return t.offset }

// Close releases the underlying file handle.
func (t *Tailer) Close() error {
	if t.f == nil {
		return nil
	}
	err := t.f.Close()
	t.f = nil
	return err
}
