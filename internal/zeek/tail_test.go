package zeek

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// --- Reader truncation tolerance (what a tailer sees mid-write) ---

func truncFixture(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{Path: "t", Fields: []string{"a", "b"}, Types: []string{"string", "string"}, Open: ts0})
	w.WriteRecord([]string{"r1a", "r1b"})
	w.WriteRecord([]string{"r2a", "r2b"})
	w.Close(ts0.Add(time.Hour))
	return buf.String()
}

func readAllFrom(t *testing.T, in string) []Record {
	t.Helper()
	recs, err := NewReader(strings.NewReader(in)).ReadAll()
	if err != nil {
		t.Fatalf("ReadAll(%q): %v", in, err)
	}
	return recs
}

func TestReaderMissingCloseFooter(t *testing.T) {
	full := truncFixture(t)
	noClose := full[:strings.Index(full, "#close")]
	if recs := readAllFrom(t, noClose); len(recs) != 2 {
		t.Fatalf("without #close: %d records, want 2", len(recs))
	}
}

func TestReaderUnterminatedFinalLine(t *testing.T) {
	full := truncFixture(t)
	noClose := full[:strings.Index(full, "#close")]
	// Drop the final newline: the last record is complete but unterminated.
	unterminated := strings.TrimSuffix(noClose, "\n")
	recs := readAllFrom(t, unterminated)
	if len(recs) != 2 {
		t.Fatalf("unterminated final line: %d records, want 2", len(recs))
	}
	if v, _ := recs[1].Get("b"); v != "r2b" {
		t.Errorf("final record b = %q, want r2b", v)
	}
}

func TestReaderTruncatedMidRecord(t *testing.T) {
	full := truncFixture(t)
	noClose := full[:strings.Index(full, "#close")]
	// Cut inside the last record before its field separator (mid-write): the
	// fragment must be dropped silently, keeping the complete records.
	cut := noClose[:len(noClose)-5]
	recs := readAllFrom(t, cut)
	if len(recs) != 1 {
		t.Fatalf("mid-record truncation: %d records, want 1", len(recs))
	}
}

func TestReaderTruncatedMidDirective(t *testing.T) {
	in := "#separator \\x09\n#fields\ta\tb\n#types\tstring\tstring\nv1\tv2\n#clo"
	if recs := readAllFrom(t, in); len(recs) != 1 {
		t.Fatalf("mid-directive truncation: %d records, want 1", len(recs))
	}
}

func TestReaderTerminatedBadLineStillErrors(t *testing.T) {
	in := "#fields\ta\tb\n#types\tstring\tstring\nonly-one\nv1\tv2\n"
	r := NewReader(strings.NewReader(in))
	if _, err := r.Read(); err == nil {
		t.Fatal("newline-terminated wrong-count line must still error")
	}
}

// --- Tailer ---

func tailerFixtures(t *testing.T) (path string, write func(string), rename func()) {
	t.Helper()
	dir := t.TempDir()
	path = filepath.Join(dir, "ssl.log")
	write = func(s string) {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.WriteString(f, s); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	n := 0
	rename = func() {
		n++
		if err := os.Rename(path, fmt.Sprintf("%s.%d", path, n)); err != nil {
			t.Fatal(err)
		}
	}
	return
}

func collectTail(t *testing.T, tl *Tailer) []Record {
	t.Helper()
	var got []Record
	if err := tl.Poll(func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	return got
}

const tailHeader = "#separator \\x09\n#path\tssl\n#fields\ta\tb\n#types\tstring\tstring\n"

func TestTailerIncrementalAndPartialLines(t *testing.T) {
	path, write, _ := tailerFixtures(t)
	tl := NewTailer(path, func() LineDecoder { return NewTSVDecoder() })
	defer tl.Close()

	// Nothing exists yet: polls are quiet no-ops.
	if got := collectTail(t, tl); len(got) != 0 {
		t.Fatalf("poll before file exists: %d records", len(got))
	}
	write(tailHeader + "r1a\tr1b\nr2a\tr2")
	got := collectTail(t, tl)
	if len(got) != 1 {
		t.Fatalf("first poll: %d records, want 1 (partial line held)", len(got))
	}
	// Complete the partial line and add another.
	write("b\nr3a\tr3b\n")
	got = collectTail(t, tl)
	if len(got) != 2 {
		t.Fatalf("second poll: %d records, want 2", len(got))
	}
	if v, _ := got[0].Get("b"); v != "r2b" {
		t.Errorf("carried line b = %q, want r2b", v)
	}
	if tl.LagBytes() != 0 {
		t.Errorf("LagBytes = %d after catch-up", tl.LagBytes())
	}
	// #close is recognized.
	write("#close\t2020-09-01-13-00-00\n")
	collectTail(t, tl)
	if !tl.Closed() {
		t.Error("tailer should report closed after #close")
	}
}

func TestTailerRenameRotation(t *testing.T) {
	path, write, rename := tailerFixtures(t)
	tl := NewTailer(path, func() LineDecoder { return NewTSVDecoder() })
	defer tl.Close()

	write(tailHeader + "r1a\tr1b\n")
	if got := collectTail(t, tl); len(got) != 1 {
		t.Fatalf("pre-rotation: %d records", len(got))
	}
	// Writer appends one final record (no newline), rotates, starts fresh.
	write("r2a\tr2b")
	rename()
	write(tailHeader + "s1a\ts1b\n")
	got := collectTail(t, tl)
	if len(got) != 2 {
		t.Fatalf("rotation poll: %d records, want 2 (drained final + new file)", len(got))
	}
	if v, _ := got[0].Get("a"); v != "r2a" {
		t.Errorf("drained record a = %q, want r2a", v)
	}
	if v, _ := got[1].Get("a"); v != "s1a" {
		t.Errorf("post-rotation record a = %q, want s1a", v)
	}
	if tl.Rotations() != 1 {
		t.Errorf("Rotations = %d, want 1", tl.Rotations())
	}
}

func TestTailerInPlaceTruncation(t *testing.T) {
	path, write, _ := tailerFixtures(t)
	tl := NewTailer(path, func() LineDecoder { return NewTSVDecoder() })
	defer tl.Close()

	write(tailHeader + "r1a\tr1b\nr2a\tr2b\n")
	if got := collectTail(t, tl); len(got) != 2 {
		t.Fatalf("before truncation: %d records", len(got))
	}
	// The writer restarts the file from scratch.
	if err := os.WriteFile(path, []byte(tailHeader+"t1a\tt1b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got := collectTail(t, tl)
	if len(got) != 1 {
		t.Fatalf("after truncation: %d records, want 1", len(got))
	}
	if v, _ := got[0].Get("a"); v != "t1a" {
		t.Errorf("record a = %q, want t1a", v)
	}
	if tl.Rotations() != 1 {
		t.Errorf("Rotations = %d, want 1", tl.Rotations())
	}
}

func TestTailerMalformedLineCounted(t *testing.T) {
	path, write, _ := tailerFixtures(t)
	tl := NewTailer(path, func() LineDecoder { return NewTSVDecoder() })
	defer tl.Close()

	write(tailHeader + "r1a\tr1b\nbroken-line\nr2a\tr2b\n")
	got := collectTail(t, tl)
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2 (malformed dropped)", len(got))
	}
	if tl.ParseErrors() != 1 {
		t.Errorf("ParseErrors = %d, want 1", tl.ParseErrors())
	}
}

func TestTailerStateRestore(t *testing.T) {
	path, write, _ := tailerFixtures(t)
	tl := NewTailer(path, func() LineDecoder { return NewTSVDecoder() })
	write(tailHeader + "r1a\tr1b\nr2a\tr2b\n")
	if got := collectTail(t, tl); len(got) != 2 {
		t.Fatalf("first run: %d records", len(got))
	}
	state := tl.State()
	tl.Close()

	// New records land while the daemon is down; the restored tailer must
	// pick up exactly there — header state included, since the restored
	// position is past the #fields block.
	write("r3a\tr3b\n")
	tl2 := NewTailer(path, func() LineDecoder { return NewTSVDecoder() })
	tl2.Restore(state)
	defer tl2.Close()
	got := collectTail(t, tl2)
	if len(got) != 1 {
		t.Fatalf("restored run: %d records, want 1", len(got))
	}
	if v, _ := got[0].Get("a"); v != "r3a" {
		t.Errorf("restored record a = %q, want r3a", v)
	}

	// A rotation while down (file shorter than the saved offset) restarts
	// from the top of the replacement file.
	if err := os.WriteFile(path, []byte(tailHeader+"n1a\tn1b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tl3 := NewTailer(path, func() LineDecoder { return NewTSVDecoder() })
	tl3.Restore(state)
	defer tl3.Close()
	got = collectTail(t, tl3)
	if len(got) != 1 {
		t.Fatalf("restore-after-rotation: %d records, want 1", len(got))
	}
	if v, _ := got[0].Get("a"); v != "n1a" {
		t.Errorf("record a = %q, want n1a", v)
	}
}

func TestTailerJSONLines(t *testing.T) {
	path, write, _ := tailerFixtures(t)
	tl := NewTailer(path, func() LineDecoder { return NewJSONDecoder() })
	defer tl.Close()

	write(`{"a":"r1a","n":3}` + "\n" + `{"a":"r2`)
	got := collectTail(t, tl)
	if len(got) != 1 {
		t.Fatalf("json poll: %d records, want 1", len(got))
	}
	if v, _ := got[0].Get("a"); v != "r1a" {
		t.Errorf("a = %q", v)
	}
	write(`a"}` + "\n")
	got = collectTail(t, tl)
	if len(got) != 1 {
		t.Fatalf("json second poll: %d records, want 1", len(got))
	}
	if v, _ := got[0].Get("a"); v != "r2a" {
		t.Errorf("completed a = %q", v)
	}
}
