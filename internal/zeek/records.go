//certchain:hotpath — record parsing runs once per ssl.log/x509.log row.

package zeek

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"certchains/internal/certmodel"
	"certchains/internal/dn"
)

// Static parse errors: these fire per malformed record on the decode hot
// path, so they must not allocate a formatted string per row.
var (
	errSSLMissingTS  = errors.New("zeek: ssl record missing ts")
	errSSLMissingUID = errors.New("zeek: ssl record missing uid")
	errX509MissingTS = errors.New("zeek: x509 record missing ts")
	errX509MissingID = errors.New("zeek: x509 record missing id")
)

// SSLRecord is one ssl.log row: a TLS connection observation.
type SSLRecord struct {
	TS             time.Time
	UID            string
	OrigH          string
	OrigP          int
	RespH          string
	RespP          int
	Version        string
	Cipher         string
	ServerName     string // SNI; empty when the client sent none
	Resumed        bool
	Established    bool
	CertChainFUIDs []string // x509.log ids of the delivered chain, leaf first
}

// sslFields is the ssl.log schema (the subset of Zeek's ssl.log the paper
// uses, in Zeek's field order).
var sslFields = []string{
	"ts", "uid", "id.orig_h", "id.orig_p", "id.resp_h", "id.resp_p",
	"version", "cipher", "server_name", "resumed", "established",
	"cert_chain_fuids",
}

var sslTypes = []string{
	"time", "string", "addr", "port", "addr", "port",
	"string", "string", "string", "bool", "bool",
	"vector[string]",
}

// SSLWriter writes ssl.log.
type SSLWriter struct{ w *Writer }

// NewSSLWriter creates an ssl.log writer opened at the given time.
func NewSSLWriter(w io.Writer, open time.Time) *SSLWriter {
	return &SSLWriter{w: NewWriter(w, Header{Path: "ssl", Fields: sslFields, Types: sslTypes, Open: open})}
}

// Write emits one connection record.
func (s *SSLWriter) Write(r *SSLRecord) error {
	vals := []string{
		FormatTime(r.TS),
		r.UID,
		r.OrigH,
		strconv.Itoa(r.OrigP),
		r.RespH,
		strconv.Itoa(r.RespP),
		r.Version,
		r.Cipher,
		r.ServerName,
		FormatBool(r.Resumed),
		FormatBool(r.Established),
		strings.Join(r.CertChainFUIDs, SetSeparator),
	}
	return s.w.WriteRecord(vals)
}

// Close finishes the stream.
func (s *SSLWriter) Close(at time.Time) error { return s.w.Close(at) }

// Flush pushes buffered records without closing the stream.
func (s *SSLWriter) Flush() error { return s.w.Flush() }

// Records returns the number of records written.
func (s *SSLWriter) Records() int { return s.w.Records() }

// ParseSSLRecord converts a generic record from an ssl.log stream.
func ParseSSLRecord(rec Record) (*SSLRecord, error) {
	r := &SSLRecord{}
	var ok bool
	if r.TS, ok = rec.GetTime("ts"); !ok {
		return nil, errSSLMissingTS
	}
	r.UID, _ = rec.Get("uid")
	if r.UID == "" {
		return nil, errSSLMissingUID
	}
	r.OrigH, _ = rec.Get("id.orig_h")
	r.OrigP, _ = rec.GetInt("id.orig_p")
	r.RespH, _ = rec.Get("id.resp_h")
	r.RespP, _ = rec.GetInt("id.resp_p")
	r.Version, _ = rec.Get("version")
	r.Cipher, _ = rec.Get("cipher")
	r.ServerName, _ = rec.Get("server_name")
	r.Resumed, _ = rec.GetBool("resumed")
	r.Established, _ = rec.GetBool("established")
	r.CertChainFUIDs = rec.GetVector("cert_chain_fuids")
	return r, nil
}

// X509Record is one x509.log row: a certificate observation.
type X509Record struct {
	TS             time.Time
	ID             string // file-unique id referenced by ssl.log
	Version        int
	Serial         string
	Subject        string
	Issuer         string
	NotValidBefore time.Time
	NotValidAfter  time.Time
	KeyAlg         string
	SigAlg         string
	KeyType        string
	KeyLength      int
	// BasicConstraintsCA mirrors Zeek's basic_constraints.ca: nil when the
	// extension is absent (logged as '-'), otherwise the CA boolean.
	BasicConstraintsCA *bool
	SANDNS             []string
}

var x509Fields = []string{
	"ts", "id", "certificate.version", "certificate.serial",
	"certificate.subject", "certificate.issuer",
	"certificate.not_valid_before", "certificate.not_valid_after",
	"certificate.key_alg", "certificate.sig_alg",
	"certificate.key_type", "certificate.key_length",
	"basic_constraints.ca", "san.dns",
}

var x509Types = []string{
	"time", "string", "count", "string",
	"string", "string",
	"time", "time",
	"string", "string",
	"string", "count",
	"bool", "vector[string]",
}

// X509Writer writes x509.log.
type X509Writer struct{ w *Writer }

// NewX509Writer creates an x509.log writer opened at the given time.
func NewX509Writer(w io.Writer, open time.Time) *X509Writer {
	return &X509Writer{w: NewWriter(w, Header{Path: "x509", Fields: x509Fields, Types: x509Types, Open: open})}
}

// Write emits one certificate record.
func (x *X509Writer) Write(r *X509Record) error {
	bc := ""
	if r.BasicConstraintsCA != nil {
		bc = FormatBool(*r.BasicConstraintsCA)
	}
	vals := []string{
		FormatTime(r.TS),
		r.ID,
		strconv.Itoa(r.Version),
		r.Serial,
		r.Subject,
		r.Issuer,
		FormatTime(r.NotValidBefore),
		FormatTime(r.NotValidAfter),
		r.KeyAlg,
		r.SigAlg,
		r.KeyType,
		strconv.Itoa(r.KeyLength),
		bc,
		strings.Join(r.SANDNS, SetSeparator),
	}
	return x.w.WriteRecord(vals)
}

// Close finishes the stream.
func (x *X509Writer) Close(at time.Time) error { return x.w.Close(at) }

// Flush pushes buffered records without closing the stream.
func (x *X509Writer) Flush() error { return x.w.Flush() }

// Records returns the number of records written.
func (x *X509Writer) Records() int { return x.w.Records() }

// ParseX509Record converts a generic record from an x509.log stream.
func ParseX509Record(rec Record) (*X509Record, error) {
	r := &X509Record{}
	var ok bool
	if r.TS, ok = rec.GetTime("ts"); !ok {
		return nil, errX509MissingTS
	}
	r.ID, _ = rec.Get("id")
	if r.ID == "" {
		return nil, errX509MissingID
	}
	r.Version, _ = rec.GetInt("certificate.version")
	r.Serial, _ = rec.Get("certificate.serial")
	r.Subject, _ = rec.Get("certificate.subject")
	r.Issuer, _ = rec.Get("certificate.issuer")
	r.NotValidBefore, _ = rec.GetTime("certificate.not_valid_before")
	r.NotValidAfter, _ = rec.GetTime("certificate.not_valid_after")
	r.KeyAlg, _ = rec.Get("certificate.key_alg")
	r.SigAlg, _ = rec.Get("certificate.sig_alg")
	r.KeyType, _ = rec.Get("certificate.key_type")
	r.KeyLength, _ = rec.GetInt("certificate.key_length")
	if v, present := rec.GetBool("basic_constraints.ca"); present {
		b := v
		r.BasicConstraintsCA = &b
	}
	r.SANDNS = rec.GetVector("san.dns")
	return r, nil
}

// ToMeta converts an x509.log record to the pipeline certificate model. The
// record ID becomes the fingerprint, exactly how the paper cross-references
// certificates without raw DER.
func (r *X509Record) ToMeta() (*certmodel.Meta, error) {
	issuer, err := dn.Parse(r.Issuer)
	if err != nil {
		return nil, fmt.Errorf("zeek: x509 %s: bad issuer: %w", r.ID, err) //certchain:coldpath malformed-record error path
	}
	subject, err := dn.Parse(r.Subject)
	if err != nil {
		return nil, fmt.Errorf("zeek: x509 %s: bad subject: %w", r.ID, err) //certchain:coldpath malformed-record error path
	}
	m := &certmodel.Meta{
		FP:        certmodel.Fingerprint(r.ID),
		Issuer:    issuer,
		Subject:   subject,
		SerialHex: strings.ToLower(r.Serial),
		NotBefore: r.NotValidBefore,
		NotAfter:  r.NotValidAfter,
		KeyAlg:    certmodel.KeyAlgorithm(r.KeyType),
		KeyBits:   r.KeyLength,
		SigAlg:    r.SigAlg,
		SAN:       r.SANDNS,
	}
	switch {
	case r.BasicConstraintsCA == nil:
		m.BC = certmodel.BCAbsent
	case *r.BasicConstraintsCA:
		m.BC = certmodel.BCTrue
	default:
		m.BC = certmodel.BCFalse
	}
	return m, nil
}

// FromMeta renders a certificate model as an x509.log record with the given
// observation time.
func FromMeta(m *certmodel.Meta, ts time.Time) *X509Record {
	sigAlg := m.SigAlg
	if sigAlg == "" {
		sigAlg = string(m.KeyAlg) + "-sha256"
	}
	r := &X509Record{
		TS:             ts,
		ID:             string(m.FP),
		Version:        3,
		Serial:         strings.ToUpper(m.SerialHex),
		Subject:        m.Subject.String(),
		Issuer:         m.Issuer.String(),
		NotValidBefore: m.NotBefore,
		NotValidAfter:  m.NotAfter,
		KeyAlg:         string(m.KeyAlg),
		SigAlg:         sigAlg,
		KeyType:        string(m.KeyAlg),
		KeyLength:      m.KeyBits,
		SANDNS:         m.SAN,
	}
	switch m.BC {
	case certmodel.BCTrue:
		b := true
		r.BasicConstraintsCA = &b
	case certmodel.BCFalse:
		b := false
		r.BasicConstraintsCA = &b
	}
	return r
}
