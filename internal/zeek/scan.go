//certchain:hotpath — the byte-slice TSV scanner runs once per log line.

package zeek

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"time"
)

// tsvScanner is the zero-allocation analogue of Reader: it reads a Zeek
// ASCII log line by line into a reused row buffer and splits fields as byte
// views, resolving escapes in place on access. Its observable behaviour —
// line accounting, header handling, truncation tolerance, and every error
// string — is pinned byte-identical to Reader by the differential fuzzers
// in equiv_fuzz_test.go.
type tsvScanner struct {
	br   *bufio.Reader
	row  []byte   // owned copy of the current line; cols alias it
	cols [][]byte // field views into row, escapes resolved lazily per access
	// fields is the current #fields directive; gen bumps on every directive
	// so decoders know to recompute their column indices.
	fields []string
	gen    int
	line   int
	eof    bool
}

func newTSVScanner(r io.Reader) *tsvScanner {
	return &tsvScanner{br: bufio.NewReaderSize(r, 1<<16)}
}

// readLine accumulates one line into s.row and reports whether it was
// newline-terminated. The row buffer is reused across lines.
func (s *tsvScanner) readLine() (terminated bool, err error) {
	s.row = s.row[:0]
	for {
		chunk, err := s.br.ReadSlice('\n')
		s.row = append(s.row, chunk...)
		switch err {
		case nil:
			return true, nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			s.eof = true
			return false, nil
		default:
			s.eof = true
			return false, err //certchain:coldpath I/O error path
		}
	}
}

// scan advances to the next data row, handling directives and the same
// mid-write tolerance Reader documents. It returns false at end of stream.
func (s *tsvScanner) scan() (bool, error) {
	for !s.eof {
		terminated, err := s.readLine()
		if err != nil {
			return false, fmt.Errorf("zeek: read: %w", err) //certchain:coldpath I/O error path
		}
		row := s.row
		if terminated {
			row = row[:len(row)-1]
		}
		if n := len(row); n > 0 && row[n-1] == '\r' {
			row = row[:n-1]
		}
		if len(row) == 0 {
			continue
		}
		s.line++
		if row[0] == '#' {
			if !terminated {
				// A directive fragment cut mid-write: not yet a directive.
				continue
			}
			s.directive(row)
			continue
		}
		if len(s.fields) == 0 {
			return false, fmt.Errorf("zeek: line %d: data before #fields header", s.line) //certchain:coldpath malformed-stream error path
		}
		s.split(row)
		if len(s.cols) != len(s.fields) {
			if !terminated {
				// The writer is mid-record; the fragment is not data yet.
				continue
			}
			return false, fmt.Errorf("zeek: line %d: %d values for %d fields", s.line, len(s.cols), len(s.fields)) //certchain:coldpath malformed-line error path
		}
		return true, nil
	}
	return false, nil
}

// directive folds one '#'-prefixed header line. Only #fields affects the
// join; other directives (#separator, #types, #close, ...) are ignored
// exactly as parseDirective ignores them for record decoding.
func (s *tsvScanner) directive(row []byte) {
	const prefix = "#fields\t"
	switch {
	case len(row) >= len(prefix) && string(row[:len(prefix)]) == prefix:
		s.fields = splitFields(string(row[len(prefix):]))
		s.gen++
	case string(row) == "#fields": //certchain:coldpath once per directive line, not per record
		// SplitN yields an empty rest, which Split maps to one empty name.
		s.fields = []string{""}
		s.gen++
	}
}

// splitFields is strings.Split(rest, Separator) — one empty name for an
// empty rest, matching the legacy header parse.
func splitFields(rest string) []string {
	out := make([]string, 0, 16)
	for {
		i := indexByteString(rest, '\t')
		if i < 0 {
			return append(out, rest)
		}
		out = append(out, rest[:i])
		rest = rest[i+1:]
	}
}

func indexByteString(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

// split cuts row into tab-separated field views without copying.
func (s *tsvScanner) split(row []byte) {
	s.cols = s.cols[:0]
	for {
		i := bytes.IndexByte(row, '\t')
		if i < 0 {
			s.cols = append(s.cols, row)
			return
		}
		s.cols = append(s.cols, row[:i])
		row = row[i+1:]
	}
}

// field returns the unescaped bytes of column c and whether the field is
// set: the unset sentinel maps to absent, the empty sentinel to a present
// empty value — Record.Get over byte views. Each column must be accessed at
// most once per row (unescaping rewrites the view in place). c < 0 means
// the header lacks the field.
func (s *tsvScanner) field(c int) ([]byte, bool) {
	if c < 0 {
		return nil, false
	}
	v := unescapeInPlace(s.cols[c])
	s.cols[c] = v
	if string(v) == UnsetField {
		return nil, false
	}
	if string(v) == EmptyField {
		return v[:0], true
	}
	return v, true
}

// fieldTime parses a Zeek time column — Record.GetTime over byte views.
func (s *tsvScanner) fieldTime(c int) (time.Time, bool) {
	v, ok := s.field(c)
	if !ok {
		return time.Time{}, false
	}
	f, ok := parseFloatBytes(v)
	if !ok {
		return time.Time{}, false
	}
	return epochToTime(f), true
}

// fieldInt parses a count/int column — Record.GetInt over byte views.
func (s *tsvScanner) fieldInt(c int) (int, bool) {
	v, ok := s.field(c)
	if !ok {
		return 0, false
	}
	return parseIntBytes(v)
}

// fieldBool parses a Zeek bool column — Record.GetBool over byte views.
func (s *tsvScanner) fieldBool(c int) (value, present bool) {
	v, ok := s.field(c)
	if !ok {
		return false, false
	}
	return string(v) == "T", true
}

// unescapeInPlace resolves the Zeek writer's escapes, rewriting b in place
// (the result is never longer than the input). The state machine mirrors
// unescapeField byte for byte, including its tolerance of dangling and
// malformed escapes.
func unescapeInPlace(b []byte) []byte {
	i := bytes.IndexByte(b, '\\')
	if i < 0 {
		return b
	}
	w := i
	for i < len(b) {
		if b[i] == '\\' && i+1 < len(b) {
			switch b[i+1] {
			case '\\':
				b[w] = '\\'
				w++
				i += 2
				continue
			case 'x':
				if i+3 < len(b) {
					hi, okHi := hexVal(b[i+2])
					lo, okLo := hexVal(b[i+3])
					if okHi && okLo {
						b[w] = hi<<4 | lo
						w++
						i += 4
						continue
					}
				}
			}
		}
		b[w] = b[i]
		w++
		i++
	}
	return b[:w]
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// pow10 holds the exactly-representable powers of ten the fast float path
// divides by (10^0 .. 10^22 are exact in float64).
var pow10 = [23]float64{
	1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// parseFloatBytes parses a decimal float without allocating for the common
// Zeek time shape (plain digits with one optional dot). The fast path only
// fires when the result is provably identical to strconv.ParseFloat: the
// mantissa fits 2^53 (float64(mant) exact) and the scale is an exact power
// of ten, so the IEEE division is the correctly-rounded decimal value.
// Everything else — exponents, underscores, huge mantissas, malformed input
// — falls back to ParseFloat on a copied string.
func parseFloatBytes(b []byte) (float64, bool) {
	var (
		mant    uint64
		digits  int
		frac    int
		seenDot bool
		neg     bool
	)
	i := 0
	if len(b) > 0 && (b[0] == '+' || b[0] == '-') {
		neg = b[0] == '-'
		i++
	}
	fast := i < len(b)
	for ; i < len(b); i++ {
		c := b[i]
		if c == '.' {
			if seenDot {
				fast = false
				break
			}
			seenDot = true
			continue
		}
		if c < '0' || c > '9' {
			fast = false
			break
		}
		mant = mant*10 + uint64(c-'0')
		digits++
		if seenDot {
			frac++
		}
	}
	if fast && digits > 0 && digits <= 19 && mant <= 1<<53 && frac <= 22 {
		f := float64(mant) / pow10[frac]
		if neg {
			f = -f
		}
		return f, true
	}
	f, err := strconv.ParseFloat(string(b), 64) //certchain:coldpath rare shape, exact-oracle fallback
	if err != nil {
		return 0, false
	}
	return f, true
}

// epochToTime converts epoch seconds exactly as Record.GetTime does.
func epochToTime(f float64) time.Time {
	sec := int64(f)
	nsec := int64((f - float64(sec)) * 1e9)
	return time.Unix(sec, nsec).UTC()
}

// parseIntBytes parses a base-10 int with strconv.Atoi's semantics without
// allocating for inputs short enough to preclude overflow; longer inputs
// fall back to Atoi itself for exact range behaviour.
func parseIntBytes(b []byte) (int, bool) {
	i := 0
	if len(b) > 0 && (b[0] == '+' || b[0] == '-') {
		i++
	}
	if i == len(b) || len(b)-i > 18 {
		n, err := strconv.Atoi(string(b)) //certchain:coldpath rare shape, exact-oracle fallback
		if err != nil {
			return 0, false
		}
		return n, true
	}
	n := 0
	for j := i; j < len(b); j++ {
		c := b[j]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	if i == 1 && b[0] == '-' {
		n = -n
	}
	return n, true
}
