package zeek

import (
	"fmt"
	"time"

	"certchains/internal/certmodel"
	"certchains/internal/obs"
)

// IncrementalJoiner joins the two live log streams — ssl.log connections and
// x509.log certificates — as records arrive, without reading either file to
// the end first (the batch Join cannot start until x509.log is complete).
//
// Determinism is the design constraint: the daemon's analysis must not depend
// on how poll cycles interleave the two files. The joiner therefore emits
// connections strictly in ssl.log record order, and a connection is released
// only once the x509 watermark — the largest certificate timestamp consumed
// so far — has passed the connection's own timestamp. Zeek logs a chain's
// certificates at the moment of the handshake, so once the x509 stream has
// moved beyond time t, every certificate belonging to a connection at time t
// has either been seen or will never arrive. Both the emission order and the
// drop/emit decision for every connection are thus functions of the two
// files' contents alone, never of poll timing.
//
// Connections whose chain references a certificate that has not arrived by
// drain time are dropped and counted as orphans — the streaming analogue of
// the per-row join errors the batch loader tolerates across x509 rotation
// gaps.
type IncrementalJoiner struct {
	emit func(*Connection) error

	// certs indexes certificates by file-unique id; fifo remembers insertion
	// order so the index can be bounded (satellite: orphaned fuids must not
	// leak memory — without a cap, every certificate ever logged would stay
	// resident for the daemon's lifetime).
	certs   map[string]*certmodel.Meta
	fifo    []string
	certCap int

	// pending is the FIFO hold queue of ssl records waiting for the x509
	// watermark. pendingCap is a pathology valve: a stream that stops
	// advancing the watermark (e.g. x509.log goes silent while ssl.log keeps
	// growing) would otherwise hold connections forever.
	pending    []*SSLRecord
	pendingCap int

	wm       time.Time
	wmSet    bool
	finished bool

	stats  JoinerStats
	tracer *obs.Tracer
}

// JoinerStats are the joiner's observable counters, all monotone.
type JoinerStats struct {
	SSLRecords  int64 `json:"ssl_records"`
	X509Records int64 `json:"x509_records"`
	Joined      int64 `json:"joined"`
	// Orphans counts connections dropped because a referenced certificate
	// never arrived before their drain point.
	Orphans int64 `json:"orphans,omitempty"`
	// Evictions counts certificates dropped from the bounded index.
	Evictions int64 `json:"evictions,omitempty"`
	// DupCerts counts re-logged certificate ids (first record wins, as in the
	// batch index).
	DupCerts int64 `json:"dup_certs,omitempty"`
	// Forced counts connections drained early by the pending-queue cap; any
	// nonzero value means the watermark guarantee was overridden.
	Forced int64 `json:"forced,omitempty"`
}

// JoinerState is the joiner's full serializable state for daemon snapshots.
type JoinerState struct {
	WM      certmodel.TimeSnapshot   `json:"wm"`
	WMSet   bool                     `json:"wm_set,omitempty"`
	Certs   []certmodel.MetaSnapshot `json:"certs,omitempty"` // insertion order
	Pending []*SSLRecord             `json:"pending,omitempty"`
	Stats   JoinerStats              `json:"stats"`
}

// DefaultCertCap bounds the certificate index. Campus traffic re-references
// the same certificates heavily, so a six-figure cap holds the working set
// with room to spare while keeping worst-case memory flat.
const DefaultCertCap = 1 << 18

// DefaultPendingCap bounds the hold queue of not-yet-drained connections.
const DefaultPendingCap = 1 << 16

// NewIncrementalJoiner creates a joiner emitting joined connections through
// emit. certCap / pendingCap of 0 select the defaults; negative values mean
// unbounded.
func NewIncrementalJoiner(certCap, pendingCap int, emit func(*Connection) error) *IncrementalJoiner {
	if certCap == 0 {
		certCap = DefaultCertCap
	}
	if pendingCap == 0 {
		pendingCap = DefaultPendingCap
	}
	return &IncrementalJoiner{
		emit:       emit,
		certs:      make(map[string]*certmodel.Meta),
		certCap:    certCap,
		pendingCap: pendingCap,
	}
}

// AddSSL feeds the next ssl.log record (in file order).
func (j *IncrementalJoiner) AddSSL(r *SSLRecord) error {
	j.stats.SSLRecords++
	j.pending = append(j.pending, r)
	return j.drain()
}

// AddX509 feeds the next x509.log record (in file order). Zeek writes
// x509.log in timestamp order, so each record advances the watermark
// monotonically; an out-of-order record only delays draining, never breaks
// correctness.
func (j *IncrementalJoiner) AddX509(r *X509Record) error {
	j.stats.X509Records++
	if _, dup := j.certs[r.ID]; dup {
		j.stats.DupCerts++
	} else {
		m, err := r.ToMeta()
		if err != nil {
			return err
		}
		j.certs[r.ID] = m
		j.fifo = append(j.fifo, r.ID)
		if j.certCap > 0 && len(j.fifo) > j.certCap {
			old := j.fifo[0]
			j.fifo = j.fifo[1:]
			delete(j.certs, old)
			j.stats.Evictions++
		}
	}
	if !j.wmSet || r.TS.After(j.wm) {
		j.wm = r.TS
		j.wmSet = true
	}
	return j.drain()
}

// AddSSLRecord parses and feeds a generic ssl.log record.
func (j *IncrementalJoiner) AddSSLRecord(rec Record) error {
	r, err := ParseSSLRecord(rec)
	if err != nil {
		return err
	}
	return j.AddSSL(r)
}

// AddX509Record parses and feeds a generic x509.log record.
func (j *IncrementalJoiner) AddX509Record(rec Record) error {
	r, err := ParseX509Record(rec)
	if err != nil {
		return err
	}
	return j.AddX509(r)
}

// SetTracer attaches a stage tracer; Finish then records a "join-finish"
// span covering the final drain. A nil tracer is the no-op default.
func (j *IncrementalJoiner) SetTracer(t *obs.Tracer) { j.tracer = t }

// Finish declares both streams complete (both files carried #close, or the
// daemon is shutting down) and drains every held connection against the
// final certificate index.
func (j *IncrementalJoiner) Finish() error {
	sp := j.tracer.Start("join-finish", "join/finish").
		SetRecords(int64(len(j.pending))).
		Arg("cert_index", int64(len(j.certs)))
	defer sp.End()
	j.finished = true
	return j.drain()
}

// drain releases the front of the hold queue while the watermark (or stream
// completion, or the capacity valve) allows.
func (j *IncrementalJoiner) drain() error {
	for len(j.pending) > 0 {
		forced := j.pendingCap > 0 && len(j.pending) > j.pendingCap
		if !j.finished && !forced && !(j.wmSet && j.pending[0].TS.Before(j.wm)) {
			return nil
		}
		r := j.pending[0]
		j.pending[0] = nil
		j.pending = j.pending[1:]
		if forced {
			j.stats.Forced++
		}
		chain := make(certmodel.Chain, 0, len(r.CertChainFUIDs))
		complete := true
		for _, fuid := range r.CertChainFUIDs {
			m, ok := j.certs[fuid]
			if !ok {
				complete = false
				break
			}
			chain = append(chain, m)
		}
		if !complete {
			j.stats.Orphans++
			continue
		}
		j.stats.Joined++
		if err := j.emit(&Connection{SSL: r, Chain: chain}); err != nil {
			return err
		}
	}
	return nil
}

// PendingDepth is the current hold-queue length.
func (j *IncrementalJoiner) PendingDepth() int { return len(j.pending) }

// CertIndexSize is the current certificate-index size.
func (j *IncrementalJoiner) CertIndexSize() int { return len(j.certs) }

// Stats returns the counters.
func (j *IncrementalJoiner) Stats() JoinerStats { return j.stats }

// State serializes the joiner for a daemon snapshot.
func (j *IncrementalJoiner) State() *JoinerState {
	s := &JoinerState{
		WM:      certmodel.SnapTime(j.wm),
		WMSet:   j.wmSet,
		Pending: j.pending,
		Stats:   j.stats,
	}
	for _, id := range j.fifo {
		s.Certs = append(s.Certs, j.certs[id].Snapshot())
	}
	return s
}

// RestoreState reinstates a snapshotted joiner. Must be called on a fresh
// joiner before any records are fed.
func (j *IncrementalJoiner) RestoreState(s *JoinerState) error {
	if s == nil {
		return nil
	}
	if len(j.fifo) > 0 || len(j.pending) > 0 {
		return fmt.Errorf("zeek: joiner restore on a non-empty joiner")
	}
	if s.WMSet {
		j.wm, j.wmSet = s.WM.Time(), true
	}
	for _, ms := range s.Certs {
		m := ms.Meta()
		j.certs[string(m.FP)] = m
		j.fifo = append(j.fifo, string(m.FP))
	}
	j.pending = append(j.pending, s.Pending...)
	j.stats = s.Stats
	return nil
}
