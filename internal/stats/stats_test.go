package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDF(t *testing.T) {
	c := NewCDF()
	c.Add(1, 80)
	c.Add(2, 15)
	c.Add(3, 5)
	c.Add(9, 0)  // no-op
	c.Add(9, -3) // no-op
	if c.Total() != 100 {
		t.Errorf("Total = %d", c.Total())
	}
	if got := c.At(1); got != 0.80 {
		t.Errorf("At(1) = %v", got)
	}
	if got := c.At(2); got != 0.95 {
		t.Errorf("At(2) = %v", got)
	}
	if got := c.At(100); got != 1.0 {
		t.Errorf("At(100) = %v", got)
	}
	if got := c.Share(2); got != 0.15 {
		t.Errorf("Share(2) = %v", got)
	}
	if got := c.Share(7); got != 0 {
		t.Errorf("Share(7) = %v", got)
	}
	if vals := c.Values(); len(vals) != 3 || vals[0] != 1 || vals[2] != 3 {
		t.Errorf("Values = %v", vals)
	}
	if q := c.Quantile(0.5); q != 1 {
		t.Errorf("median = %d, want 1", q)
	}
	if q := c.Quantile(0.99); q != 3 {
		t.Errorf("p99 = %d, want 3", q)
	}
	pts := c.Points()
	if len(pts) != 3 || pts[2].Y != 1.0 {
		t.Errorf("Points = %v", pts)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF()
	if c.At(5) != 0 || c.Share(5) != 0 || c.Quantile(0.5) != 0 {
		t.Error("empty CDF must return zeros")
	}
	if len(c.Points()) != 0 {
		t.Error("empty CDF has no points")
	}
}

// Property: CDF is monotone nondecreasing over its observed values.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		c := NewCDF()
		for _, v := range raw {
			c.Add(int(v%20), 1)
		}
		prev := -1.0
		for _, p := range c.Points() {
			if p.Y < prev {
				return false
			}
			prev = p.Y
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	for _, v := range []float64{0.05, 0.15, 0.55, 0.95, 0.5} {
		h.Add(v)
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Bins[0] != 1 || h.Bins[1] != 1 || h.Bins[5] != 2 || h.Bins[9] != 1 {
		t.Errorf("Bins = %v", h.Bins)
	}
	if got := h.ShareAbove(0.5); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("ShareAbove(0.5) = %v, want 0.6", got)
	}
	// Clamping.
	h.Add(-5)
	h.Add(99)
	if h.Bins[0] != 2 || h.Bins[9] != 2 {
		t.Errorf("clamped Bins = %v", h.Bins)
	}
	if !strings.Contains(h.BinLabel(0), "0.00") {
		t.Errorf("BinLabel = %q", h.BinLabel(0))
	}
	empty := NewHistogram(0, 1, 4)
	if empty.ShareAbove(0.5) != 0 {
		t.Error("empty histogram share must be 0")
	}
}

func TestPctAndRatio(t *testing.T) {
	if Pct(0.9769) != "97.69%" {
		t.Errorf("Pct = %q", Pct(0.9769))
	}
	if Ratio(1, 0) != 0 {
		t.Error("Ratio must guard division by zero")
	}
	if Ratio(1, 4) != 0.25 {
		t.Error("Ratio wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "Table X: demo", Headers: []string{"Category", "#"}}
	tb.AddRow("Security & Network", "31")
	tb.AddRow("Other", "3")
	out := tb.String()
	for _, want := range []string{"Table X: demo", "Category", "Security & Network  31", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Errorf("table has %d lines, want 5", len(lines))
	}
}

func TestFormatCount(t *testing.T) {
	cases := map[int64]string{
		0:         "0",
		12:        "12",
		123:       "123",
		1234:      "1,234",
		123456:    "123,456",
		1234567:   "1,234,567",
		259300000: "259,300,000",
	}
	for in, want := range cases {
		if got := FormatCount(in); got != want {
			t.Errorf("FormatCount(%d) = %q, want %q", in, got, want)
		}
	}
}
