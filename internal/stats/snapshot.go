package stats

import "sort"

// Snapshot support: the ingest daemon persists accumulator state across
// restarts, so the mergeable structures need a stable, JSON-friendly
// serialized form whose round trip reproduces the accumulator exactly.
// Restored accumulators must keep merging and rendering byte-identically to
// never-snapshotted ones — the window-ring equivalence suite enforces this.

// CDFSnapshot is the serialized form of a CDF: parallel value/count slices
// sorted by value, so the encoding is deterministic.
type CDFSnapshot struct {
	Values []int   `json:"values,omitempty"`
	Counts []int64 `json:"counts,omitempty"`
}

// Snapshot serializes the distribution.
func (c *CDF) Snapshot() CDFSnapshot {
	values := c.Values()
	counts := make([]int64, len(values))
	for i, v := range values {
		counts[i] = c.counts[v]
	}
	return CDFSnapshot{Values: values, Counts: counts}
}

// CDFFromSnapshot rebuilds a distribution from its serialized form.
func CDFFromSnapshot(s CDFSnapshot) *CDF {
	c := NewCDF()
	for i, v := range s.Values {
		if i < len(s.Counts) {
			c.Add(v, s.Counts[i])
		}
	}
	return c
}

// HistogramSnapshot is the serialized form of a Histogram. The total is
// recomputed from the bins on restore (Add and Merge keep them consistent).
type HistogramSnapshot struct {
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
	Bins []int64 `json:"bins"`
}

// Snapshot serializes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{Lo: h.Lo, Hi: h.Hi, Bins: append([]int64(nil), h.Bins...)}
}

// HistogramFromSnapshot rebuilds a histogram from its serialized form.
func HistogramFromSnapshot(s HistogramSnapshot) *Histogram {
	h := NewHistogram(s.Lo, s.Hi, len(s.Bins))
	copy(h.Bins, s.Bins)
	for _, n := range s.Bins {
		h.total += n
	}
	return h
}

// SortedSet renders a string set as a sorted slice — the canonical set form
// used throughout the snapshot codecs.
func SortedSet(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SetFromSlice rebuilds a string set from its sorted-slice form.
func SetFromSlice(keys []string) map[string]bool {
	out := make(map[string]bool, len(keys))
	for _, k := range keys {
		out[k] = true
	}
	return out
}
