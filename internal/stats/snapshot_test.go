package stats

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestCDFSnapshotRoundTrip(t *testing.T) {
	c := NewCDF()
	c.Add(3, 7)
	c.Add(1, 2)
	c.Add(10, 1)
	c.Add(3, 1)

	data, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap CDFSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	r := CDFFromSnapshot(snap)
	if r.Total() != c.Total() {
		t.Fatalf("total = %d, want %d", r.Total(), c.Total())
	}
	if !reflect.DeepEqual(r.Points(), c.Points()) {
		t.Fatalf("points differ: %v vs %v", r.Points(), c.Points())
	}
	// A restored CDF keeps merging like the original.
	other := NewCDF()
	other.Add(2, 5)
	a, b := CDFFromSnapshot(c.Snapshot()), CDFFromSnapshot(c.Snapshot())
	a.Merge(other)
	c.Merge(other)
	if !reflect.DeepEqual(a.Points(), c.Points()) {
		t.Fatal("restored CDF merges differently")
	}
	_ = b
}

func TestEmptyCDFSnapshot(t *testing.T) {
	r := CDFFromSnapshot(NewCDF().Snapshot())
	if r.Total() != 0 || len(r.Values()) != 0 {
		t.Fatalf("empty round trip: total=%d values=%v", r.Total(), r.Values())
	}
}

func TestHistogramSnapshotRoundTrip(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	for _, v := range []float64{0.05, 0.51, 0.52, 0.99, 1.7, -0.3} {
		h.Add(v)
	}
	data, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap HistogramSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	r := HistogramFromSnapshot(snap)
	if r.Total() != h.Total() {
		t.Fatalf("total = %d, want %d", r.Total(), h.Total())
	}
	if !reflect.DeepEqual(r.Bins, h.Bins) {
		t.Fatalf("bins differ: %v vs %v", r.Bins, h.Bins)
	}
	if r.ShareAbove(0.5) != h.ShareAbove(0.5) {
		t.Fatal("ShareAbove differs after round trip")
	}
	// Restored histograms stay mergeable with live ones.
	live := NewHistogram(0, 1, 10)
	live.Add(0.4)
	r.Merge(live)
	h.Merge(live)
	if !reflect.DeepEqual(r.Bins, h.Bins) || r.Total() != h.Total() {
		t.Fatal("restored histogram merges differently")
	}
}

func TestSortedSetRoundTrip(t *testing.T) {
	set := map[string]bool{"b": true, "a": true, "c": true}
	keys := SortedSet(set)
	if !reflect.DeepEqual(keys, []string{"a", "b", "c"}) {
		t.Fatalf("SortedSet = %v", keys)
	}
	if !reflect.DeepEqual(SetFromSlice(keys), set) {
		t.Fatal("SetFromSlice round trip failed")
	}
	if SortedSet(nil) != nil {
		t.Fatal("SortedSet(nil) should be nil")
	}
}
