package stats

import (
	"math"
	"testing"
)

// TestCDFMerge checks sharded accumulation equals a single pass.
func TestCDFMerge(t *testing.T) {
	whole := NewCDF()
	a, b := NewCDF(), NewCDF()
	samples := []struct {
		v int
		n int64
	}{{1, 5}, {2, 3}, {2, 2}, {7, 1}, {3, 10}, {1, 4}}
	for i, s := range samples {
		whole.Add(s.v, s.n)
		if i%2 == 0 {
			a.Add(s.v, s.n)
		} else {
			b.Add(s.v, s.n)
		}
	}
	// Merge in both orders; both must equal the single pass.
	ab := NewCDF()
	ab.Merge(a)
	ab.Merge(b)
	ba := NewCDF()
	ba.Merge(b)
	ba.Merge(a)
	for _, m := range []*CDF{ab, ba} {
		if m.Total() != whole.Total() {
			t.Fatalf("merged total = %d, want %d", m.Total(), whole.Total())
		}
		for _, v := range whole.Values() {
			if m.Share(v) != whole.Share(v) {
				t.Errorf("merged share(%d) = %v, want %v", v, m.Share(v), whole.Share(v))
			}
			if m.At(v) != whole.At(v) {
				t.Errorf("merged at(%d) = %v, want %v", v, m.At(v), whole.At(v))
			}
		}
	}
	// Merging nil is an identity.
	ab.Merge(nil)
	if ab.Total() != whole.Total() {
		t.Error("nil merge changed the distribution")
	}
}

// TestHistogramMerge checks bin-wise addition and the shape guard.
func TestHistogramMerge(t *testing.T) {
	whole := NewHistogram(0, 1, 10)
	a, b := NewHistogram(0, 1, 10), NewHistogram(0, 1, 10)
	for i := 0; i < 100; i++ {
		v := float64(i) / 100
		whole.Add(v)
		if i%3 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(b)
	a.Merge(nil)
	if a.Total() != whole.Total() {
		t.Fatalf("merged total = %d, want %d", a.Total(), whole.Total())
	}
	for _, th := range []float64{0.0, 0.25, 0.4, 0.9} {
		if got, want := a.ShareAbove(th), whole.ShareAbove(th); math.Abs(got-want) > 1e-12 {
			t.Errorf("merged ShareAbove(%v) = %v, want %v", th, got, want)
		}
	}

	defer func() {
		if recover() == nil {
			t.Error("merging histograms with different shapes did not panic")
		}
	}()
	a.Merge(NewHistogram(0, 2, 10))
}
