// Package stats provides the small statistical and rendering toolkit the
// report generators use: empirical CDFs (Figure 1), histograms (Figure 6),
// percentage tables, and fixed-width text tables mirroring the paper's
// layout.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over integer observations,
// weighted by counts.
type CDF struct {
	counts map[int]int64
	total  int64 //certchain:nosnapshot derived; CDFFromSnapshot rebuilds it through Add
}

// NewCDF returns an empty distribution.
func NewCDF() *CDF {
	return &CDF{counts: make(map[int]int64)}
}

// Add records n occurrences of value v.
func (c *CDF) Add(v int, n int64) {
	if n <= 0 {
		return
	}
	c.counts[v] += n
	c.total += n
}

// Total returns the number of observations.
func (c *CDF) Total() int64 { return c.total }

// Merge folds another distribution into this one. Addition over per-value
// counts is commutative and associative, so sharded accumulation followed by
// any merge order equals a single sequential pass.
func (c *CDF) Merge(o *CDF) {
	if o == nil {
		return
	}
	for v, n := range o.counts {
		c.counts[v] += n
	}
	c.total += o.total
}

// At returns P(X <= v).
func (c *CDF) At(v int) float64 {
	if c.total == 0 {
		return 0
	}
	var cum int64
	for val, n := range c.counts {
		if val <= v {
			cum += n
		}
	}
	return float64(cum) / float64(c.total)
}

// Share returns P(X == v).
func (c *CDF) Share(v int) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.counts[v]) / float64(c.total)
}

// Values returns the observed values in ascending order.
func (c *CDF) Values() []int {
	out := make([]int, 0, len(c.counts))
	for v := range c.counts {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Quantile returns the smallest value v with P(X <= v) >= q.
func (c *CDF) Quantile(q float64) int {
	vals := c.Values()
	if len(vals) == 0 {
		return 0
	}
	var cum int64
	target := q * float64(c.total)
	for _, v := range vals {
		cum += c.counts[v]
		if float64(cum) >= target {
			return v
		}
	}
	return vals[len(vals)-1]
}

// Points returns (value, cumulative probability) pairs for plotting.
func (c *CDF) Points() []Point {
	vals := c.Values()
	out := make([]Point, 0, len(vals))
	var cum int64
	for _, v := range vals {
		cum += c.counts[v]
		out = append(out, Point{X: v, Y: float64(cum) / float64(c.total)})
	}
	return out
}

// Point is one CDF sample.
type Point struct {
	X int
	Y float64
}

// Histogram bins float64 observations into fixed-width buckets over [lo, hi].
type Histogram struct {
	Lo, Hi float64
	Bins   []int64
	total  int64
}

// NewHistogram creates a histogram with n bins spanning [lo, hi].
func NewHistogram(lo, hi float64, n int) *Histogram {
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int64, n)}
}

// Add records one observation; values outside [lo, hi] clamp to the edge
// bins.
func (h *Histogram) Add(v float64) {
	n := len(h.Bins)
	idx := int(float64(n) * (v - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	h.Bins[idx]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Merge folds another histogram into this one. The two must share bounds and
// bin count; mismatched shapes indicate a programming error and panic.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	if h.Lo != o.Lo || h.Hi != o.Hi || len(h.Bins) != len(o.Bins) {
		panic("stats: merging histograms with different shapes")
	}
	for i, n := range o.Bins {
		h.Bins[i] += n
	}
	h.total += o.total
}

// ShareAbove returns the fraction of observations with value >= threshold,
// computed from bin boundaries (threshold should align with a boundary).
func (h *Histogram) ShareAbove(threshold float64) float64 {
	if h.total == 0 {
		return 0
	}
	n := len(h.Bins)
	start := int(float64(n) * (threshold - h.Lo) / (h.Hi - h.Lo))
	if start < 0 {
		start = 0
	}
	var cum int64
	for i := start; i < n; i++ {
		cum += h.Bins[i]
	}
	return float64(cum) / float64(h.total)
}

// BinLabel renders the i-th bin's range.
func (h *Histogram) BinLabel(i int) string {
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	return fmt.Sprintf("[%.2f,%.2f)", h.Lo+float64(i)*w, h.Lo+float64(i+1)*w)
}

// Pct formats a ratio as a percentage with two decimals, like the paper's
// tables.
func Pct(x float64) string {
	return fmt.Sprintf("%.2f%%", 100*x)
}

// Ratio guards division by zero.
func Ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Table renders fixed-width text tables.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row; cells are rendered verbatim.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with padded columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && len(c) < widths[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// FormatCount renders large counts with thousands separators, matching the
// paper's "259.30 M"-style readability for totals.
func FormatCount(n int64) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
		if len(s) > lead {
			b.WriteByte(',')
		}
	}
	for i := lead; i < len(s); i += 3 {
		b.WriteString(s[i : i+3])
		if i+3 < len(s) {
			b.WriteByte(',')
		}
	}
	return b.String()
}
