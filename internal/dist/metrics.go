package dist

import "certchains/internal/obs"

// Metric families for the distributed topology, booked into the shared obs
// registry on both sides: the coordinator tracks the lease protocol's churn
// (assignments, requeues, duplicate completions — the knobs the chaos suite
// turns), the worker its ingest volume. All of it is operational telemetry;
// none of it reaches report bytes, so topology churn never perturbs the
// equivalence claim.

// CoordMetrics books the coordinator's lease-protocol counters.
type CoordMetrics struct {
	assigned   *obs.Series
	completed  *obs.Series
	requeued   *obs.Series
	duplicates *obs.Series
	stateBytes *obs.Series
	mergeSec   *obs.Series
}

// NewCoordMetrics registers the coordinator families in reg.
func NewCoordMetrics(reg *obs.Registry) *CoordMetrics {
	return &CoordMetrics{
		assigned: reg.Counter("certchain_dist_partitions_assigned_total",
			"Partition assignments sent to workers, including reassignments.").With(),
		completed: reg.Counter("certchain_dist_partitions_completed_total",
			"Partitions whose partial state was merged exactly once.").With(),
		requeued: reg.Counter("certchain_dist_partitions_requeued_total",
			"Partitions requeued after lease expiry, worker death, or reported failure.").With(),
		duplicates: reg.Counter("certchain_dist_duplicate_completions_total",
			"Completions discarded because the partition had already been merged.").With(),
		stateBytes: reg.Counter("certchain_dist_state_bytes_total",
			"Encoded partial-state bytes pulled from workers.").With(),
		mergeSec: reg.Histogram("certchain_dist_merge_seconds",
			"Wall time of the coordinator's partial merge.", obs.DefaultDurationBuckets).With(),
	}
}

// WorkerMetrics books a worker's ingest counters.
type WorkerMetrics struct {
	partitions   *obs.Family
	observations *obs.Series
	stateBytes   *obs.Series
}

// NewWorkerMetrics registers the worker families in reg.
func NewWorkerMetrics(reg *obs.Registry) *WorkerMetrics {
	return &WorkerMetrics{
		partitions: reg.Counter("certchain_dist_worker_partitions_total",
			"Partitions this worker finished, by terminal state.", "state"),
		observations: reg.Counter("certchain_dist_worker_observations_total",
			"Observations this worker folded across all partitions.").With(),
		stateBytes: reg.Counter("certchain_dist_worker_state_bytes_total",
			"Encoded partial-state bytes this worker produced.").With(),
	}
}
