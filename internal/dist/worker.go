package dist

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"certchains/internal/analysis"
	"certchains/internal/obs"
	"certchains/internal/resilience"
)

// WorkerConfig configures one shard daemon.
type WorkerConfig struct {
	// Name identifies the worker in status responses and logs.
	Name string
	// Pipeline must be built from the same seed/scale (and lint profile) as
	// the coordinator's: partial state references analyses both sides must
	// compute identically.
	Pipeline *analysis.Pipeline
	// Format is the partition log format.
	Format analysis.Format
	// Goroutines is the in-process pool width per partition ingest; 0
	// selects GOMAXPROCS. Any width produces identical partial state.
	Goroutines int
	// Registry receives the worker's metrics shard; nil allocates one.
	Registry *obs.Registry
	// FS is the partition-read seam; nil uses the real filesystem. The
	// chaos suite injects read faults here.
	FS resilience.FS
	// Throttle, when positive, sleeps this long before each observation —
	// the chaos knob that holds a partition open so lease expiry and
	// mid-partition kills are testable.
	Throttle time.Duration
	// AccessLog, when set, receives one record per HTTP request (route,
	// method, code, bytes — no timestamps beyond the handler's own; latency
	// lives in the Registry's histograms).
	AccessLog *slog.Logger
	// Logf, when set, receives diagnostic lines.
	Logf func(format string, args ...any)
}

// Worker ingests assigned partitions and serves partial state:
//
//	POST /assign                      sealed Assignment
//	GET  /status                      sealed StatusResponse (heartbeat)
//	GET  /partial?partition=ID        sealed PartialResponse (404 until done)
//	GET  /healthz
//	GET  /metrics
//
// Each assignment runs in its own goroutine: the partition streams through
// the Zeek loader into analysis.AccumulateStream, and the resulting state
// is encoded eagerly — a completed partition costs its snapshot bytes, not
// its live accumulator.
type Worker struct {
	cfg     WorkerConfig
	reg     *obs.Registry
	metrics *WorkerMetrics
	fs      resilience.FS

	ctx    context.Context
	cancel context.CancelFunc

	mu    sync.Mutex
	parts map[string]*workerPartition
}

// workerPartition is the per-assignment state machine. Fields are guarded
// by Worker.mu; the ingest goroutine touches them only through setters.
type workerPartition struct {
	part    Partition
	lease   string
	trace   string
	state   string
	errMsg  string
	obsN    int64
	encoded []byte
	inputs  []obs.InputDigest
	// spans is the completed ingest's span set, recorded under trace. A
	// later assignment may swap the lease token freely, but trace stays
	// pinned to the ingest that actually produced the state — the
	// coordinator drops span sets from foreign runs.
	spans []obs.SpanSnapshot
}

// NewWorker builds a worker. Close releases its ingest goroutines.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Goroutines < 1 {
		cfg.Goroutines = 0 // AccumulateStream normalizes to GOMAXPROCS
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	fs := cfg.FS
	if fs == nil {
		fs = resilience.OS
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Worker{
		cfg:     cfg,
		reg:     reg,
		metrics: NewWorkerMetrics(reg),
		fs:      fs,
		ctx:     ctx,
		cancel:  cancel,
		parts:   make(map[string]*workerPartition),
	}
}

// Close cancels in-flight ingests (throttled sleeps return immediately).
func (w *Worker) Close() { w.cancel() }

// Registry exposes the worker's metrics shard.
func (w *Worker) Registry() *obs.Registry { return w.reg }

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// Handler returns the worker's HTTP surface, wrapped in the shared serving
// telemetry: per-route latency/size histograms and the request counter land
// in the worker's registry, so the coordinator's merged WorkerMetrics view
// includes each worker's serving profile alongside its ingest counters.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /assign", w.handleAssign)
	mux.HandleFunc("GET /status", w.handleStatus)
	mux.HandleFunc("GET /partial", w.handlePartial)
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(rw, "{\"status\":\"ok\",\"worker\":%q}\n", w.cfg.Name)
	})
	mux.Handle("GET /metrics", w.reg.Handler())
	return obs.NewHTTPMetrics(w.reg).Middleware(mux, w.cfg.AccessLog,
		"POST /assign", "GET /status", "GET /partial", "GET /healthz", "GET /metrics")
}

func (w *Worker) handleAssign(rw http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(rw, fmt.Sprintf("read body: %v", err), http.StatusBadRequest)
		return
	}
	var a Assignment
	if err := openWire(body, SchemaAssignment, &a); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	if a.Partition.ID == "" || a.Lease == "" {
		http.Error(rw, "assignment missing partition id or lease", http.StatusBadRequest)
		return
	}
	w.mu.Lock()
	wp := w.parts[a.Partition.ID]
	switch {
	case wp == nil:
		wp = &workerPartition{part: a.Partition, lease: a.Lease, trace: a.Trace, state: StateRunning}
		w.parts[a.Partition.ID] = wp
		go w.runPartition(wp)
	case wp.state == StateFailed:
		// Reassignment after a reported failure: restart under the new lease
		// (and the new run's trace — the retry's spans belong to it).
		wp.lease, wp.trace, wp.state, wp.errMsg = a.Lease, a.Trace, StateRunning, ""
		go w.runPartition(wp)
	default:
		// Running or done: adopt the new fencing token; completed state is
		// re-served under it (the result is deterministic, so re-running
		// would produce the same bytes anyway).
		wp.lease = a.Lease
	}
	w.mu.Unlock()
	w.logf("worker %s: assigned %s lease %s", w.cfg.Name, a.Partition.ID, a.Lease)
	rw.WriteHeader(http.StatusNoContent)
}

func (w *Worker) handleStatus(rw http.ResponseWriter, _ *http.Request) {
	w.mu.Lock()
	st := StatusResponse{Worker: w.cfg.Name}
	for _, wp := range w.parts {
		st.Partitions = append(st.Partitions, PartitionStatus{
			ID:           wp.part.ID,
			Lease:        wp.lease,
			State:        wp.state,
			Error:        wp.errMsg,
			Observations: wp.obsN,
		})
	}
	w.mu.Unlock()
	sort.Slice(st.Partitions, func(i, j int) bool { return st.Partitions[i].ID < st.Partitions[j].ID })
	w.writeSealed(rw, SchemaStatus, st)
}

func (w *Worker) handlePartial(rw http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("partition")
	if id == "" {
		http.Error(rw, "missing parameter \"partition\"", http.StatusBadRequest)
		return
	}
	w.mu.Lock()
	wp := w.parts[id]
	var resp PartialResponse
	ready := wp != nil && wp.state == StateDone
	if ready {
		resp = PartialResponse{
			ID:           wp.part.ID,
			Lease:        wp.lease,
			Observations: wp.obsN,
			State:        wp.encoded,
			Inputs:       append([]obs.InputDigest(nil), wp.inputs...),
			Trace:        wp.trace,
			Spans:        append([]obs.SpanSnapshot(nil), wp.spans...),
		}
	}
	w.mu.Unlock()
	if !ready {
		http.Error(rw, fmt.Sprintf("partition %q has no completed state", id), http.StatusNotFound)
		return
	}
	resp.Metrics = w.reg.Snapshot()
	w.writeSealed(rw, SchemaPartial, resp)
}

func (w *Worker) writeSealed(rw http.ResponseWriter, schema string, v any) {
	data, err := sealWire(schema, v)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	rw.Write(data)
}

// runPartition ingests one partition end to end: stream the Zeek join
// through the shard pool, encode the accumulator, retain only the bytes.
func (w *Worker) runPartition(wp *workerPartition) {
	obsN, encoded, inputs, spans, err := w.ingest(wp.part)
	w.mu.Lock()
	if err != nil {
		wp.state, wp.errMsg = StateFailed, err.Error()
	} else {
		wp.state, wp.obsN, wp.encoded, wp.inputs, wp.spans = StateDone, obsN, encoded, inputs, spans
	}
	w.mu.Unlock()
	if err != nil {
		w.metrics.partitions.With(StateFailed).Inc()
		w.logf("worker %s: partition %s failed: %v", w.cfg.Name, wp.part.ID, err)
		return
	}
	w.metrics.partitions.With(StateDone).Inc()
	w.metrics.observations.Add(float64(obsN))
	w.metrics.stateBytes.Add(float64(len(encoded)))
	w.logf("worker %s: partition %s done (%d observations, %d state bytes)",
		w.cfg.Name, wp.part.ID, obsN, len(encoded))
}

func (w *Worker) ingest(part Partition) (int64, []byte, []obs.InputDigest, []obs.SpanSnapshot, error) {
	// Each partition records into its own tracer: its span set ships
	// upstream by itself, and concurrent partitions never interleave spans.
	tracer := obs.NewTracer()
	acc, inputs, err := ingestPartition(w.ctx, w.cfg.Pipeline, w.fs, w.cfg.Format,
		w.cfg.Goroutines, w.cfg.Throttle, part, tracer)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	esp := tracer.Start("dist-encode", "encode/"+part.ID).SetTID(part.Index)
	encoded, err := acc.EncodeState()
	esp.SetRecords(int64(len(encoded)))
	esp.End()
	if err != nil {
		return 0, nil, nil, nil, fmt.Errorf("dist: encode partition %s: %w", part.ID, err)
	}
	return acc.Observations(), encoded, inputs, tracer.Snapshot(), nil
}

// digestReader hashes the raw stream while the loader consumes it, yielding
// the same digest obs.DigestFile would compute — without a second pass.
type digestReader struct {
	r io.Reader
	h interface {
		io.Writer
		Sum(b []byte) []byte
	}
	n int64
}

func newDigestReader(r io.Reader) *digestReader {
	return &digestReader{r: r, h: sha256.New()}
}

func (d *digestReader) Read(b []byte) (int, error) {
	n, err := d.r.Read(b)
	if n > 0 {
		d.h.Write(b[:n])
		d.n += int64(n)
	}
	return n, err
}

func (d *digestReader) digest(path string) obs.InputDigest {
	return obs.InputDigest{Path: path, SHA256: hex.EncodeToString(d.h.Sum(nil)), Bytes: d.n}
}
