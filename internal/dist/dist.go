// Package dist stretches the analysis pipeline's merge contract across
// process boundaries: a coordinator assigns Zeek log partitions to worker
// processes under a lease/heartbeat protocol, pulls each worker's partial
// accumulator state back as versioned canonical-JSON snapshots over HTTP,
// and merges them into the same report a single process would produce.
//
// The equivalence claim has three rungs, and the suite pins all of them
// byte for byte over the same partitioned input:
//
//	1 sequential pass  ≡  N goroutines in one process  ≡  N worker processes
//
// The claim holds because nothing new is invented at this layer: workers
// accumulate through analysis.AccumulateStream exactly as an in-process
// shard would, the shipped state is the same canonical snapshot codec the
// ingest daemon persists, and the coordinator rebases each partition's
// sequence tags by the cumulative observation counts of the partitions
// before it — so the merged outlier list, the only order-sensitive
// artifact, restores global input order exactly. Requeues, duplicate
// deliveries, and worker deaths change only operational metrics, never
// report bytes.
package dist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"certchains/internal/analysis"
	"certchains/internal/campus"
)

// Partition is one shard of the log corpus: a matching ssl/x509 file pair.
// Index is the partition's position in the global input order — the
// concatenation of partitions in index order defines the observation
// sequence every topology must reproduce.
type Partition struct {
	ID    string `json:"id"`
	Index int    `json:"index"`
	SSL   string `json:"ssl"`
	X509  string `json:"x509"`
}

// sslSuffix and x509Suffix name a partition's file pair: <stem>.ssl.log and
// <stem>.x509.log (transparently gunzipped by the loader if compressed).
const (
	sslSuffix  = ".ssl.log"
	x509Suffix = ".x509.log"
)

// DiscoverPartitions scans dir for <stem>.ssl.log/<stem>.x509.log pairs and
// returns them sorted by stem, indexed in that order. A ssl log without its
// x509 counterpart is an error — silently skipping it would silently shrink
// the corpus.
func DiscoverPartitions(dir string) ([]Partition, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("dist: discover partitions: %w", err)
	}
	var stems []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), sslSuffix) {
			continue
		}
		stems = append(stems, strings.TrimSuffix(e.Name(), sslSuffix))
	}
	sort.Strings(stems)
	parts := make([]Partition, 0, len(stems))
	for i, stem := range stems {
		x5 := filepath.Join(dir, stem+x509Suffix)
		if _, err := os.Stat(x5); err != nil {
			return nil, fmt.Errorf("dist: partition %q has no x509 log: %w", stem, err)
		}
		parts = append(parts, Partition{
			ID:    stem,
			Index: i,
			SSL:   filepath.Join(dir, stem+sslSuffix),
			X509:  x5,
		})
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("dist: no *%s partitions in %s", sslSuffix, dir)
	}
	return parts, nil
}

// SplitObservations cuts the observation slice into n contiguous partitions
// (the last ones may be one shorter). Aggregation happens per partition, so
// the partitioning is part of the input definition: every topology rung
// consumes the same partition set.
func SplitObservations(obs []*campus.Observation, n int) [][]*campus.Observation {
	if n < 1 {
		n = 1
	}
	out := make([][]*campus.Observation, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := len(obs)*i/n, len(obs)*(i+1)/n
		out = append(out, obs[lo:hi])
	}
	return out
}

// WritePartitions materializes observations as n partition file pairs in
// dir (created if missing) and returns the discovered set. This is the
// fixture generator the smoke test and examples use: the same scenario a
// single-process run analyzes in memory, split into the on-disk corpus the
// distributed topology starts from.
func WritePartitions(obs []*campus.Observation, dir string, n int, format analysis.Format) ([]Partition, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dist: write partitions: %w", err)
	}
	for i, part := range SplitObservations(obs, n) {
		stem := fmt.Sprintf("part-%03d", i)
		sslF, err := os.Create(filepath.Join(dir, stem+sslSuffix))
		if err != nil {
			return nil, fmt.Errorf("dist: write partitions: %w", err)
		}
		x5F, err := os.Create(filepath.Join(dir, stem+x509Suffix))
		if err != nil {
			sslF.Close()
			return nil, fmt.Errorf("dist: write partitions: %w", err)
		}
		err = analysis.Write(part, sslF, x5F, analysis.WriteOptions{Format: format})
		if cerr := sslF.Close(); err == nil {
			err = cerr
		}
		if cerr := x5F.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("dist: write partition %s: %w", stem, err)
		}
	}
	return DiscoverPartitions(dir)
}
