package dist

import (
	"io"
	"sort"

	"certchains/internal/obs"
)

// Cross-process trace assembly. Each worker ships a partition's spans as
// process-local offsets (the processes' wall clocks are not comparable);
// the coordinator splices them into one Chrome trace with one pid per
// process. Per worker, partition span sets are rebased end-to-end in
// partition-index order — the coordinator's deterministic order, not the
// workers' racy completion order — so equal runs lay out equal tracks even
// though the recorded durations differ.

// ProcessTraces arranges the run's spans for obs.WriteSplicedChromeTrace:
// the coordinator's own tracer first (pid 1), then one process per
// contributing worker in URL order (pid 2+). Workers that shipped no spans
// produce no entry.
func (r *Result) ProcessTraces(coord *obs.Tracer) []obs.ProcessTrace {
	procs := []obs.ProcessTrace{{Process: "coordinator", PID: 1, Spans: coord.Snapshot()}}

	byWorker := make(map[string][]PartitionTrace)
	for _, pt := range r.PartitionTraces {
		byWorker[pt.Worker] = append(byWorker[pt.Worker], pt)
	}
	workers := make([]string, 0, len(byWorker))
	for wk := range byWorker {
		workers = append(workers, wk)
	}
	sort.Strings(workers)

	for i, wk := range workers {
		pts := byWorker[wk]
		sort.Slice(pts, func(a, b int) bool { return pts[a].Partition.Index < pts[b].Partition.Index })
		var spans []obs.SpanSnapshot
		var offset int64
		for _, pt := range pts {
			var end int64
			for _, sp := range pt.Spans {
				sp.StartUS += offset
				args := make(map[string]int64, len(sp.Args)+1)
				for k, v := range sp.Args {
					args[k] = v
				}
				args["partition"] = int64(pt.Partition.Index)
				sp.Args = args
				spans = append(spans, sp)
				if e := sp.StartUS + sp.DurUS; e > end {
					end = e
				}
			}
			offset = end
		}
		procs = append(procs, obs.ProcessTrace{Process: "worker " + wk, PID: 2 + i, Spans: spans})
	}
	return procs
}

// WriteTrace writes the run's spliced cross-process Chrome trace: the
// coordinator's stage spans plus every shipped worker span set. The output
// passes obs.ValidateSplicedChromeTrace with one process per contributor.
func (r *Result) WriteTrace(w io.Writer, coord *obs.Tracer) error {
	return obs.WriteSplicedChromeTrace(w, r.ProcessTraces(coord))
}
