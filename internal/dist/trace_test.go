package dist_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"certchains/internal/analysis"
	"certchains/internal/dist"
	"certchains/internal/obs"
	"certchains/internal/resilience"
)

// TestDistSplicedTrace runs the real topology and requires one Chrome trace
// artifact carrying the coordinator's stage spans plus every worker's
// shipped span sets — the cross-process observability claim end to end.
func TestDistSplicedTrace(t *testing.T) {
	t.Parallel()
	s := scenario(t, 1)
	parts, err := dist.WritePartitions(s.Observations, t.TempDir(), 3, analysis.FormatTSV)
	if err != nil {
		t.Fatal(err)
	}
	workers := startWorkers(t, 2, func(i int) dist.WorkerConfig {
		return dist.WorkerConfig{
			Name:     fmt.Sprintf("w%d", i),
			Pipeline: newPipeline(s, ""),
			Format:   analysis.FormatTSV,
		}
	})
	tracer := obs.NewTracer()
	c := dist.NewCoordinator(dist.CoordConfig{
		Pipeline: newPipeline(s, ""),
		Workers:  workers,
		Format:   analysis.FormatTSV,
		LeaseTTL: 2 * time.Second,
		Poll:     20 * time.Millisecond,
		Retry:    resilience.DefaultPolicy(),
		Tracer:   tracer,
		RunID:    "run-test",
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, err := c.Run(ctx, parts)
	if err != nil {
		t.Fatal(err)
	}

	if res.RunID != "run-test" {
		t.Errorf("RunID = %q, want the configured run-test", res.RunID)
	}
	if len(res.PartitionTraces) != len(parts) {
		t.Fatalf("PartitionTraces = %d, want one per partition (%d)", len(res.PartitionTraces), len(parts))
	}
	for _, pt := range res.PartitionTraces {
		if len(pt.Spans) == 0 {
			t.Errorf("partition %s shipped no spans", pt.Partition.ID)
		}
	}

	var buf bytes.Buffer
	if err := res.WriteTrace(&buf, tracer); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Coordinator + both workers (3 partitions round-robin over 2 workers
	// lands at least one on each), with the full cross-process stage set.
	if err := obs.ValidateSplicedChromeTrace(data, 3,
		"dist-ingest", "dist-merge", "finalize", "observe", "observe-shard", "merge", "dist-encode"); err != nil {
		t.Errorf("spliced trace invalid: %v", err)
	}
	pids, err := obs.ChromeTraceProcesses(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(pids) != 3 {
		t.Errorf("trace has %d processes, want coordinator + 2 workers", len(pids))
	}

	// Per-worker layout is seq-rebased in partition-index order: within one
	// process, a higher-index partition's dist-ingest span never starts
	// before a lower-index one's.
	procs := res.ProcessTraces(tracer)
	for _, proc := range procs[1:] {
		lastIdx, lastStart := int64(-1), int64(-1)
		for _, sp := range proc.Spans {
			if sp.Stage != "dist-ingest" {
				continue
			}
			idx := sp.Args["partition"]
			if idx < lastIdx || (idx > lastIdx && sp.StartUS < lastStart) {
				t.Errorf("%s: partition %d dist-ingest at %dus out of index order (prev partition %d at %dus)",
					proc.Process, idx, sp.StartUS, lastIdx, lastStart)
			}
			lastIdx, lastStart = idx, sp.StartUS
		}
	}
}

// TestDistStaleTraceNotSpliced pins the fencing: a second run against
// workers that completed everything under the first run's trace ID receives
// the state (deterministic, so re-serving is correct) but not the spans —
// they belong to the other run's artifact.
func TestDistStaleTraceNotSpliced(t *testing.T) {
	t.Parallel()
	s := scenario(t, 1)
	parts, err := dist.WritePartitions(s.Observations, t.TempDir(), 2, analysis.FormatTSV)
	if err != nil {
		t.Fatal(err)
	}
	workers := startWorkers(t, 1, func(i int) dist.WorkerConfig {
		return dist.WorkerConfig{Name: "w0", Pipeline: newPipeline(s, ""), Format: analysis.FormatTSV}
	})
	run := func(runID string) (*dist.Result, *obs.Tracer) {
		tracer := obs.NewTracer()
		c := dist.NewCoordinator(dist.CoordConfig{
			Pipeline: newPipeline(s, ""),
			Workers:  workers,
			Format:   analysis.FormatTSV,
			LeaseTTL: 2 * time.Second,
			Poll:     20 * time.Millisecond,
			Retry:    resilience.DefaultPolicy(),
			Tracer:   tracer,
			RunID:    runID,
		})
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		res, err := c.Run(ctx, parts)
		if err != nil {
			t.Fatal(err)
		}
		return res, tracer
	}

	first, _ := run("run-a")
	if len(first.PartitionTraces) != len(parts) {
		t.Fatalf("first run shipped %d span sets, want %d", len(first.PartitionTraces), len(parts))
	}
	second, tracer := run("run-b")
	if len(second.PartitionTraces) != 0 {
		t.Errorf("second run spliced %d stale span sets, want 0", len(second.PartitionTraces))
	}
	// The artifact degrades to coordinator-only — still a valid trace.
	var buf bytes.Buffer
	if err := second.WriteTrace(&buf, tracer); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateSplicedChromeTrace(buf.Bytes(), 1, "dist-ingest", "dist-merge", "finalize"); err != nil {
		t.Errorf("coordinator-only trace invalid: %v", err)
	}
}

// TestRunLocalTrace pins that the reference rung still writes a valid
// single-process trace and ships no partition span sets.
func TestRunLocalTrace(t *testing.T) {
	t.Parallel()
	s := scenario(t, 1)
	parts, err := dist.WritePartitions(s.Observations, t.TempDir(), 2, analysis.FormatTSV)
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer()
	c := dist.NewCoordinator(dist.CoordConfig{
		Pipeline: newPipeline(s, ""),
		Format:   analysis.FormatTSV,
		Tracer:   tracer,
	})
	res, err := c.RunLocal(context.Background(), parts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PartitionTraces) != 0 {
		t.Errorf("RunLocal shipped %d partition span sets, want 0", len(res.PartitionTraces))
	}
	var buf bytes.Buffer
	if err := res.WriteTrace(&buf, tracer); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateSplicedChromeTrace(buf.Bytes(), 1, "dist-ingest", "dist-merge", "finalize"); err != nil {
		t.Errorf("local trace invalid: %v", err)
	}
}
