package dist

import "time"

// wallNow is the package's single wall-clock contact. Only the lease
// protocol consumes real time (deadlines, renewal on heartbeat); everything
// that reaches report bytes is keyed by observation sequence, never by the
// clock. Tests inject a fake clock through CoordConfig.Now, so the lease
// machinery is fully deterministic under test.
func wallNow() time.Time { return time.Now() }
