package dist_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"certchains/internal/analysis"
	"certchains/internal/campus"
	"certchains/internal/certmodel"
	"certchains/internal/dist"
	"certchains/internal/lint"
	"certchains/internal/obs"
	"certchains/internal/resilience"
)

func scenario(t *testing.T, seed int64) *campus.Scenario {
	t.Helper()
	cfg := campus.DefaultConfig()
	cfg.Seed = seed
	cfg.Scale = 0.002
	s, err := campus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newPipeline(s *campus.Scenario, lintProfile string) *analysis.Pipeline {
	p := analysis.FromScenario(s)
	if lintProfile != "" {
		p.Linter = lint.New(s.Classifier, lint.Config{Now: s.End(), Profile: lintProfile})
	}
	return p
}

// startWorkers brings up n in-process shard daemons over httptest.
func startWorkers(t *testing.T, n int, mk func(i int) dist.WorkerConfig) []string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		w := dist.NewWorker(mk(i))
		t.Cleanup(w.Close)
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

// renderings returns every byte surface the equivalence claim pins: the text
// report, the JSON export, and the manifest deterministic subset.
func renderings(t *testing.T, res *dist.Result, tracer *obs.Tracer, seed int64) (string, []byte, []byte) {
	t.Helper()
	text := res.Report.Render()
	jsonBytes, err := res.Report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	man := &obs.Manifest{
		Tool:         "dist-test",
		Seed:         seed,
		Scale:        0.002,
		Workers:      1,
		Inputs:       res.Inputs,
		Stages:       tracer.Stages(),
		ReportSHA256: obs.SHA256Hex([]byte(text)),
		Build:        obs.Build(),
	}
	subset, err := man.DeterministicSubset()
	if err != nil {
		t.Fatal(err)
	}
	return text, jsonBytes, subset
}

// TestDistTopologyEquivalence pins the three-rung claim byte for byte:
// 1 sequential pass ≡ N goroutines in one process ≡ N worker processes,
// across seeds and partition counts, on text, JSON, and manifest subset.
func TestDistTopologyEquivalence(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		seed  int64
		parts int
		lint  string
	}{
		{seed: 1, parts: 1},
		{seed: 1, parts: 3, lint: "paper"},
		{seed: 2, parts: 4},
	} {
		t.Run(fmt.Sprintf("seed%d_parts%d", tc.seed, tc.parts), func(t *testing.T) {
			t.Parallel()
			s := scenario(t, tc.seed)
			parts, err := dist.WritePartitions(s.Observations, t.TempDir(), tc.parts, analysis.FormatTSV)
			if err != nil {
				t.Fatal(err)
			}
			if len(parts) != tc.parts {
				t.Fatalf("wrote %d partitions, want %d", len(parts), tc.parts)
			}

			runLocal := func(goroutines int) (*dist.Result, *obs.Tracer) {
				tracer := obs.NewTracer()
				c := dist.NewCoordinator(dist.CoordConfig{
					Pipeline:   newPipeline(s, tc.lint),
					Format:     analysis.FormatTSV,
					Goroutines: goroutines,
					Tracer:     tracer,
				})
				res, err := c.RunLocal(context.Background(), parts)
				if err != nil {
					t.Fatal(err)
				}
				return res, tracer
			}
			seqRes, seqTr := runLocal(1)
			parRes, parTr := runLocal(4)

			workers := startWorkers(t, 3, func(i int) dist.WorkerConfig {
				return dist.WorkerConfig{
					Name:     fmt.Sprintf("w%d", i),
					Pipeline: newPipeline(s, tc.lint),
					Format:   analysis.FormatTSV,
				}
			})
			distTr := obs.NewTracer()
			c := dist.NewCoordinator(dist.CoordConfig{
				Pipeline: newPipeline(s, tc.lint),
				Workers:  workers,
				Format:   analysis.FormatTSV,
				LeaseTTL: 2 * time.Second,
				Poll:     20 * time.Millisecond,
				Retry:    resilience.DefaultPolicy(),
				Tracer:   distTr,
			})
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			distRes, err := c.Run(ctx, parts)
			if err != nil {
				t.Fatal(err)
			}

			seqText, seqJSON, seqSub := renderings(t, seqRes, seqTr, tc.seed)
			for name, got := range map[string]*struct {
				res *dist.Result
				tr  *obs.Tracer
			}{
				"parallel":    {parRes, parTr},
				"distributed": {distRes, distTr},
			} {
				text, jsonBytes, sub := renderings(t, got.res, got.tr, tc.seed)
				if text != seqText {
					t.Errorf("%s text report diverges from sequential", name)
				}
				if !bytes.Equal(jsonBytes, seqJSON) {
					t.Errorf("%s JSON export diverges from sequential", name)
				}
				if !bytes.Equal(sub, seqSub) {
					t.Errorf("%s manifest subset diverges from sequential:\n%s\nvs\n%s", name, sub, seqSub)
				}
				if got.res.Observations != seqRes.Observations {
					t.Errorf("%s observations = %d, want %d", name, got.res.Observations, seqRes.Observations)
				}
			}
			if distRes.Requeues != 0 || distRes.Duplicates != 0 {
				t.Errorf("healthy topology churned: requeues=%d duplicates=%d", distRes.Requeues, distRes.Duplicates)
			}
			if distRes.WorkerMetrics == nil {
				t.Fatal("distributed run returned no merged worker metrics")
			}
			if text := distRes.WorkerMetrics.Text(); !strings.Contains(text, "certchain_dist_worker_partitions_total") {
				t.Errorf("merged worker metrics missing partition counter:\n%s", text)
			}
		})
	}
}

// TestCoordWorkerDeathRequeue kills a worker mid-partition (its throttle
// guarantees the partition is still open) and requires the lease to expire,
// the partition to requeue to the surviving worker, and the report to come
// out byte-identical to the local reference.
func TestCoordWorkerDeathRequeue(t *testing.T) {
	t.Parallel()
	s := scenario(t, 1)
	parts, err := dist.WritePartitions(s.Observations, t.TempDir(), 1, analysis.FormatTSV)
	if err != nil {
		t.Fatal(err)
	}
	refTr := obs.NewTracer()
	ref, err := dist.NewCoordinator(dist.CoordConfig{
		Pipeline: newPipeline(s, ""), Format: analysis.FormatTSV, Goroutines: 1, Tracer: refTr,
	}).RunLocal(context.Background(), parts)
	if err != nil {
		t.Fatal(err)
	}

	slow := dist.NewWorker(dist.WorkerConfig{
		Name: "slow", Pipeline: newPipeline(s, ""), Format: analysis.FormatTSV,
		Throttle: time.Hour, // holds the partition open until killed
	})
	defer slow.Close()
	slowSrv := httptest.NewServer(slow.Handler())
	defer slowSrv.Close()
	okURLs := startWorkers(t, 1, func(int) dist.WorkerConfig {
		return dist.WorkerConfig{Name: "ok", Pipeline: newPipeline(s, ""), Format: analysis.FormatTSV}
	})

	tracer := obs.NewTracer()
	c := dist.NewCoordinator(dist.CoordConfig{
		Pipeline: newPipeline(s, ""),
		// slow is first: round-robin assigns the only partition to it.
		Workers:  []string{slowSrv.URL, okURLs[0]},
		Format:   analysis.FormatTSV,
		LeaseTTL: 250 * time.Millisecond,
		Poll:     25 * time.Millisecond,
		Tracer:   tracer,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Kill the slow worker once the assignment has landed on it.
	go func() {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			req, _ := http.NewRequestWithContext(ctx, http.MethodGet, slowSrv.URL+"/status", nil)
			resp, err := slowSrv.Client().Do(req)
			if err != nil {
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var st dist.StatusResponse
			if err := openStatus(body, &st); err == nil && len(st.Partitions) > 0 {
				slow.Close() // unblock the throttled ingest
				slowSrv.CloseClientConnections()
				slowSrv.Close() // SIGKILL-equivalent: the endpoint goes dark
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	res, err := c.Run(ctx, parts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requeues < 1 {
		t.Errorf("requeues = %d, want >= 1 (lease must have expired)", res.Requeues)
	}
	if got := res.Report.Render(); got != ref.Report.Render() {
		t.Error("post-requeue report diverges from local reference")
	}
	if res.Observations != ref.Observations {
		t.Errorf("observations = %d, want %d", res.Observations, ref.Observations)
	}
	_, _, refSub := renderings(t, ref, refTr, 1)
	_, _, sub := renderings(t, res, tracer, 1)
	if !bytes.Equal(sub, refSub) {
		t.Errorf("post-requeue manifest subset diverges:\n%s\nvs\n%s", sub, refSub)
	}
}

func openStatus(data []byte, st *dist.StatusResponse) error {
	payload, err := certmodel.Open(data, dist.SchemaStatus, dist.WireVersion)
	if err != nil {
		return err
	}
	return json.Unmarshal(payload, st)
}

// TestCoordDuplicateCompletion plants a stale worker that advertises a
// completed partition under a superseded lease. Exactly-once merging must
// discard it: one duplicate counted, report bytes untouched.
func TestCoordDuplicateCompletion(t *testing.T) {
	t.Parallel()
	s := scenario(t, 1)
	parts, err := dist.WritePartitions(s.Observations, t.TempDir(), 1, analysis.FormatTSV)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := dist.NewCoordinator(dist.CoordConfig{
		Pipeline: newPipeline(s, ""), Format: analysis.FormatTSV, Goroutines: 1,
	}).RunLocal(context.Background(), parts)
	if err != nil {
		t.Fatal(err)
	}

	realURLs := startWorkers(t, 1, func(int) dist.WorkerConfig {
		return dist.WorkerConfig{Name: "real", Pipeline: newPipeline(s, ""), Format: analysis.FormatTSV}
	})
	// The stale worker accepts nothing but forever reports the partition
	// done under a lease token the coordinator never issued this run.
	staleMux := http.NewServeMux()
	staleMux.HandleFunc("POST /assign", func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusNoContent)
	})
	staleMux.HandleFunc("GET /status", func(rw http.ResponseWriter, _ *http.Request) {
		st := dist.StatusResponse{Worker: "stale", Partitions: []dist.PartitionStatus{{
			ID: parts[0].ID, Lease: parts[0].ID + "#999", State: dist.StateDone, Observations: 1,
		}}}
		data, err := certmodel.Seal(dist.SchemaStatus, dist.WireVersion, st)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
		rw.Write(data)
	})
	staleSrv := httptest.NewServer(staleMux)
	defer staleSrv.Close()

	c := dist.NewCoordinator(dist.CoordConfig{
		Pipeline: newPipeline(s, ""),
		Workers:  []string{realURLs[0], staleSrv.URL},
		Format:   analysis.FormatTSV,
		LeaseTTL: 2 * time.Second,
		Poll:     20 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, err := c.Run(ctx, parts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duplicates != 1 {
		t.Errorf("duplicates = %d, want exactly 1 (stale completion counted once)", res.Duplicates)
	}
	if got := res.Report.Render(); got != ref.Report.Render() {
		t.Error("report diverges from reference despite exactly-once merge")
	}
	if res.Observations != ref.Observations {
		t.Errorf("observations = %d, want %d (stale state must not be merged)", res.Observations, ref.Observations)
	}
}

// errFS fails every open: the worker it backs reports the partition failed,
// and the coordinator must requeue to the healthy worker.
type errFS struct{}

func (errFS) Open(string) (resilience.File, error) { return nil, errors.New("injected open fault") }
func (errFS) Stat(string) (fs.FileInfo, error)     { return nil, errors.New("injected stat fault") }

func TestCoordReportedFailureRequeue(t *testing.T) {
	t.Parallel()
	s := scenario(t, 1)
	parts, err := dist.WritePartitions(s.Observations, t.TempDir(), 1, analysis.FormatTSV)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := dist.NewCoordinator(dist.CoordConfig{
		Pipeline: newPipeline(s, ""), Format: analysis.FormatTSV, Goroutines: 1,
	}).RunLocal(context.Background(), parts)
	if err != nil {
		t.Fatal(err)
	}

	urls := startWorkers(t, 2, func(i int) dist.WorkerConfig {
		cfg := dist.WorkerConfig{
			Name: fmt.Sprintf("w%d", i), Pipeline: newPipeline(s, ""), Format: analysis.FormatTSV,
		}
		if i == 0 {
			cfg.FS = errFS{} // first-picked worker can read nothing
		}
		return cfg
	})
	c := dist.NewCoordinator(dist.CoordConfig{
		Pipeline: newPipeline(s, ""),
		Workers:  urls,
		Format:   analysis.FormatTSV,
		LeaseTTL: 2 * time.Second,
		Poll:     20 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, err := c.Run(ctx, parts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requeues < 1 {
		t.Errorf("requeues = %d, want >= 1 (reported failure must requeue)", res.Requeues)
	}
	if got := res.Report.Render(); got != ref.Report.Render() {
		t.Error("post-failure report diverges from local reference")
	}
}

// TestWireVersionRejection pins the cross-version hazard both directions: a
// worker refuses a future-version assignment, and the coordinator surfaces
// a typed schema error from a future-version worker without retrying it
// into oblivion.
func TestWireVersionRejection(t *testing.T) {
	t.Parallel()
	s := scenario(t, 1)
	w := dist.NewWorker(dist.WorkerConfig{Name: "w", Pipeline: newPipeline(s, ""), Format: analysis.FormatTSV})
	defer w.Close()

	a := dist.Assignment{Lease: "p#1", Partition: dist.Partition{ID: "p", SSL: "x.ssl.log", X509: "x.x509.log"}}
	future, err := certmodel.Seal(dist.SchemaAssignment, dist.WireVersion+1, a)
	if err != nil {
		t.Fatal(err)
	}
	for name, body := range map[string][]byte{
		"future version": future,
		"unversioned":    []byte(`{"lease":"p#1"}`),
		"garbage":        []byte("not json"),
	} {
		req := httptest.NewRequest(http.MethodPost, "/assign", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		w.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s assignment: status %d, want 400", name, rec.Code)
		}
	}

	// Coordinator side: a peer speaking a future wire version.
	futureMux := http.NewServeMux()
	futureMux.HandleFunc("GET /status", func(rw http.ResponseWriter, _ *http.Request) {
		data, err := certmodel.Seal(dist.SchemaStatus, dist.WireVersion+1, dist.StatusResponse{Worker: "future"})
		if err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
		rw.Write(data)
	})
	srv := httptest.NewServer(futureMux)
	defer srv.Close()

	parts := []dist.Partition{{ID: "p", Index: 0, SSL: "x.ssl.log", X509: "x.x509.log"}}
	c := dist.NewCoordinator(dist.CoordConfig{
		Pipeline: newPipeline(s, ""),
		Workers:  []string{srv.URL},
		Format:   analysis.FormatTSV,
		Poll:     10 * time.Millisecond,
		Retry:    resilience.Policy{MaxAttempts: 3},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := c.Run(ctx, parts); err == nil {
		t.Fatal("run against future-version worker succeeded")
	}
	// The version mismatch never crosses into a merge; the run dies on the
	// deadline with the worker permanently unhealthy, which is the point.
}

func TestDiscoverPartitionsErrors(t *testing.T) {
	if _, err := dist.DiscoverPartitions(t.TempDir()); err == nil {
		t.Error("empty dir: want error")
	}
}
