package dist

import (
	"encoding/json"
	"fmt"

	"certchains/internal/certmodel"
	"certchains/internal/obs"
)

// Wire protocol: three message kinds, each sealed in a schema-versioned
// envelope (certmodel.Seal) so a coordinator and worker built against
// different codec revisions refuse each other's bytes instead of
// mis-merging them. Payloads are canonical JSON — sorted keys, sorted
// slices — so equal states serialize byte-identically and the coordinator
// can digest what it pulls.
const (
	// WireVersion revs whenever any wire payload shape changes. Version 2
	// added trace propagation: Assignment carries the run's trace ID and
	// PartialResponse echoes it alongside the partition's span snapshots.
	WireVersion = 2

	// SchemaAssignment seals the coordinator→worker partition assignment.
	SchemaAssignment = "certchains/dist-assignment"
	// SchemaStatus seals the worker's status (heartbeat) response.
	SchemaStatus = "certchains/dist-status"
	// SchemaPartial seals the worker's partial-state response.
	SchemaPartial = "certchains/dist-partial"
)

// Assignment hands one partition to a worker. Lease is the coordinator's
// fencing token for this (partition, attempt): the worker echoes it in
// status and partial responses, so state from a superseded attempt is
// recognizably stale.
type Assignment struct {
	Lease     string    `json:"lease"`
	Partition Partition `json:"partition"`
	// Trace is the coordinator's run-scoped trace ID. The worker records the
	// partition's spans under it and echoes it in the partial response, so
	// the coordinator only splices spans that belong to this run — a retried
	// partition adopted from a dead coordinator's attempt cannot smuggle a
	// stale span set into the new run's trace.
	Trace string `json:"trace,omitempty"`
}

// Partition terminal and live states as the worker reports them.
const (
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// PartitionStatus is one partition's state in a heartbeat response.
type PartitionStatus struct {
	ID           string `json:"id"`
	Lease        string `json:"lease"`
	State        string `json:"state"`
	Error        string `json:"error,omitempty"`
	Observations int64  `json:"observations,omitempty"`
}

// StatusResponse is the worker's full status: every partition it has been
// assigned, sorted by ID. A successful poll doubles as the lease heartbeat.
type StatusResponse struct {
	Worker     string            `json:"worker"`
	Partitions []PartitionStatus `json:"partitions,omitempty"`
}

// PartialResponse ships one completed partition's state upstream: the
// sealed accumulator snapshot (analysis.Accumulator.EncodeState bytes,
// themselves enveloped), the partition input digests for the run manifest,
// and the worker's metrics shard. Everything the coordinator needs to
// merge, attribute, and account — nothing that depends on when or where the
// partition ran.
type PartialResponse struct {
	ID           string                `json:"id"`
	Lease        string                `json:"lease"`
	Observations int64                 `json:"observations"`
	State        []byte                `json:"state"`
	Inputs       []obs.InputDigest     `json:"inputs,omitempty"`
	Metrics      *obs.RegistrySnapshot `json:"metrics,omitempty"`
	// Trace echoes the Assignment's trace ID; Spans are the partition's span
	// set as process-local offsets (obs.SpanSnapshot), ready for the
	// coordinator to splice into the run's cross-process trace. Both ride
	// outside the sealed State so trace shipping cannot perturb the
	// accumulator bytes the equivalence claim is pinned on.
	Trace string             `json:"trace,omitempty"`
	Spans []obs.SpanSnapshot `json:"spans,omitempty"`
}

// sealWire envelopes a wire payload under its schema at WireVersion.
func sealWire(schema string, v any) ([]byte, error) {
	return certmodel.Seal(schema, WireVersion, v)
}

// openWire verifies the envelope and decodes the payload into v. Mismatched
// schema or version surfaces the typed *certmodel.SchemaError; the caller
// treats it as permanent, not retryable.
func openWire(data []byte, schema string, v any) error {
	payload, err := certmodel.Open(data, schema, WireVersion)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("dist: decode %s: %w", schema, err)
	}
	return nil
}
