package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"certchains/internal/analysis"
	"certchains/internal/campus"
	"certchains/internal/certmodel"
	"certchains/internal/obs"
	"certchains/internal/resilience"
)

// Lease protocol defaults: a worker that has not acknowledged its partition
// as running within the TTL (renewed on every successful status poll) loses
// it, and the partition is requeued to another worker.
const (
	DefaultLeaseTTL = 3 * time.Second
	DefaultPoll     = 150 * time.Millisecond
)

// DefaultTimeout bounds each coordinator HTTP request.
const DefaultTimeout = 10 * time.Second

var defaultHTTPClient = &http.Client{Timeout: DefaultTimeout}

// maxWireBytes caps any single wire response read (partial states dominate).
const maxWireBytes = 64 << 20

// CoordConfig configures a coordinator.
type CoordConfig struct {
	// Pipeline must match the workers' (seed, scale, lint profile): it
	// decodes their partial state and recomputes the same analyses.
	Pipeline *analysis.Pipeline
	// Workers are the shard daemons' base URLs ("http://127.0.0.1:9001").
	Workers []string
	// Format is the partition log format (RunLocal reads partitions itself).
	Format analysis.Format
	// Goroutines is RunLocal's in-process pool width per partition; 0
	// selects GOMAXPROCS. Any width produces identical reports.
	Goroutines int
	// LeaseTTL and Poll shape the lease protocol; zero selects the
	// defaults above.
	LeaseTTL time.Duration
	Poll     time.Duration
	// Retry is the per-request budget for assignment, status, and partial
	// fetches. The zero value makes single attempts; cmd installs
	// resilience.DefaultPolicy.
	Retry resilience.Policy
	// HTTPClient defaults to a shared client with DefaultTimeout — never
	// http.DefaultClient, which waits forever on a dead worker.
	HTTPClient *http.Client
	// Registry receives the coordinator's lease-protocol metrics; nil
	// allocates one.
	Registry *obs.Registry
	// Tracer, when set, records the dist stage spans (dist-ingest,
	// dist-merge, finalize) — the same fixed set at every topology, so the
	// manifest's deterministic subset stays topology-invariant. Worker span
	// sets never land here; they ride Result.PartitionTraces into the
	// spliced cross-process trace artifact only.
	Tracer *obs.Tracer
	// RunID names this run in trace propagation: assignments carry it, and
	// the coordinator splices only span sets echoed under it, so a worker
	// re-serving a partition ingested for an earlier run cannot put stale
	// spans in this run's trace. Empty derives one from the lease clock.
	RunID string
	// FS is RunLocal's partition-read seam; nil uses the real filesystem.
	FS resilience.FS
	// Now injects the lease clock; nil uses the wall clock. Report bytes
	// never depend on it.
	Now func() time.Time
	// Logf, when set, receives diagnostic lines.
	Logf func(format string, args ...any)
}

// Coordinator drives the distributed run: discover → assign under lease →
// poll → pull partials → rebase → merge → finalize.
type Coordinator struct {
	cfg     CoordConfig
	metrics *CoordMetrics
	fs      resilience.FS
}

// Result is one completed run, whichever topology produced it. Report,
// Inputs, and Observations are topology-invariant; Requeues and Duplicates
// count the lease protocol's churn (always zero in RunLocal).
type Result struct {
	Report       *analysis.Report
	Inputs       []obs.InputDigest
	Observations int64
	Partitions   int
	Requeues     int
	Duplicates   int
	// WorkerMetrics is the merged metric shard of every worker that
	// contributed a partial (nil in RunLocal).
	WorkerMetrics *obs.Registry
	// RunID is the trace ID the run propagated; PartitionTraces are the
	// span sets workers shipped back under it, one per merged partition
	// (empty in RunLocal, and for workers running a pre-trace wire
	// version). ProcessTraces splices them into the cross-process artifact.
	RunID           string
	PartitionTraces []PartitionTrace
}

// PartitionTrace is one merged partition's span set, attributed to the
// worker whose partial won the merge.
type PartitionTrace struct {
	Partition Partition
	Worker    string
	Spans     []obs.SpanSnapshot
}

// NewCoordinator builds a coordinator over cfg.
func NewCoordinator(cfg CoordConfig) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultPoll
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.Now == nil {
		cfg.Now = wallNow
	}
	fs := cfg.FS
	if fs == nil {
		fs = resilience.OS
	}
	return &Coordinator{cfg: cfg, metrics: NewCoordMetrics(cfg.Registry), fs: fs}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

func (c *Coordinator) httpClient() *http.Client {
	if c.cfg.HTTPClient != nil {
		return c.cfg.HTTPClient
	}
	return defaultHTTPClient
}

// lease is the coordinator-side record of one outstanding assignment.
type lease struct {
	part     Partition
	worker   string
	token    string
	deadline time.Time
}

// partResult is one partition's merged-exactly-once contribution.
type partResult struct {
	acc    *analysis.Accumulator
	inputs []obs.InputDigest
}

// Run executes the distributed topology over parts and returns the merged
// result. Partitions are assigned round-robin; leases renew on successful
// status polls showing the partition running or done; expiry, reported
// failure, worker death, and undecodable state all requeue the partition.
// Completions are merged exactly once per partition ID — late arrivals
// from superseded attempts are counted as duplicates and discarded.
func (c *Coordinator) Run(ctx context.Context, parts []Partition) (*Result, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("dist: no partitions")
	}
	if len(c.cfg.Workers) == 0 {
		return nil, fmt.Errorf("dist: no workers")
	}
	runID := c.cfg.RunID
	if runID == "" {
		// Derived from the injected lease clock — operational identity only,
		// never report bytes.
		runID = fmt.Sprintf("run-%d", c.cfg.Now().UnixNano())
	}
	res := &Result{Partitions: len(parts), RunID: runID}
	queue := append([]Partition(nil), parts...)
	leases := make(map[string]*lease)
	completed := make(map[string]*partResult)
	// handled dedupes per (worker, partition, lease token): each attempt's
	// completion is acted on once, whether merged or discarded.
	handled := make(map[string]bool)
	attempts := make(map[string]int)
	lastWorker := make(map[string]string)
	healthy := make(map[string]bool, len(c.cfg.Workers))
	for _, wk := range c.cfg.Workers {
		healthy[wk] = true
	}
	snaps := make(map[string]*obs.RegistrySnapshot)
	cursor := 0

	requeue := func(id, reason string) {
		ls := leases[id]
		if ls == nil {
			return
		}
		delete(leases, id)
		queue = append(queue, ls.part)
		res.Requeues++
		c.metrics.requeued.Inc()
		c.logf("dist: requeued %s from %s (%s)", id, ls.worker, reason)
	}

	for len(completed) < len(parts) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Assign everything queued, round-robin over healthy workers,
		// steering a requeued partition away from its previous holder.
		for pass := len(queue); pass > 0 && len(queue) > 0; pass-- {
			part := queue[0]
			wk, ok := c.pickWorker(healthy, &cursor, lastWorker[part.ID])
			if !ok {
				break
			}
			queue = queue[1:]
			attempts[part.ID]++
			token := fmt.Sprintf("%s#%d", part.ID, attempts[part.ID])
			if err := c.assign(ctx, wk, Assignment{Lease: token, Partition: part, Trace: runID}); err != nil {
				healthy[wk] = false
				queue = append(queue, part)
				c.logf("dist: assign %s to %s: %v", part.ID, wk, err)
				continue
			}
			lastWorker[part.ID] = wk
			leases[part.ID] = &lease{part: part, worker: wk, token: token, deadline: c.cfg.Now().Add(c.cfg.LeaseTTL)}
			c.metrics.assigned.Inc()
		}

		// Poll every worker; a successful poll is the lease heartbeat.
		for _, wk := range c.cfg.Workers {
			st, err := c.fetchStatus(ctx, wk)
			if err != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				healthy[wk] = false
				continue
			}
			healthy[wk] = true
			byID := make(map[string]PartitionStatus, len(st.Partitions))
			for _, ps := range st.Partitions {
				byID[ps.ID] = ps
			}
			now := c.cfg.Now()
			for _, id := range sortedLeaseIDs(leases, wk) {
				ls := leases[id]
				ps, ok := byID[id]
				if !ok || ps.Lease != ls.token {
					// Assignment not (or no longer) acknowledged under this
					// token; the deadline decides.
					continue
				}
				switch ps.State {
				case StateRunning:
					ls.deadline = now.Add(c.cfg.LeaseTTL)
				case StateDone:
					key := wk + "|" + id + "|" + ls.token
					if handled[key] {
						break
					}
					resp, err := c.fetchPartial(ctx, wk, id)
					if err != nil {
						if ctx.Err() != nil {
							return nil, ctx.Err()
						}
						healthy[wk] = false
						break
					}
					if resp.ID != id || resp.Lease != ls.token {
						// Fencing: state from another attempt.
						break
					}
					handled[key] = true
					acc, err := c.cfg.Pipeline.DecodeState(resp.State)
					if err != nil {
						requeue(id, fmt.Sprintf("undecodable state: %v", err))
						break
					}
					completed[id] = &partResult{acc: acc, inputs: resp.Inputs}
					if resp.Trace == runID && len(resp.Spans) > 0 {
						res.PartitionTraces = append(res.PartitionTraces, PartitionTrace{
							Partition: ls.part, Worker: wk, Spans: resp.Spans,
						})
					}
					snaps[wk] = resp.Metrics
					delete(leases, id)
					c.metrics.completed.Inc()
					c.metrics.stateBytes.Add(float64(len(resp.State)))
					c.logf("dist: merged %s from %s (%d observations)", id, wk, acc.Observations())
				case StateFailed:
					requeue(id, "worker reported failure: "+ps.Error)
				}
			}
			// Completions for already-merged partitions from superseded
			// attempts: exactly-once means discard and count.
			for _, ps := range st.Partitions {
				if ps.State != StateDone {
					continue
				}
				if _, done := completed[ps.ID]; !done {
					continue
				}
				key := wk + "|" + ps.ID + "|" + ps.Lease
				if handled[key] {
					continue
				}
				handled[key] = true
				res.Duplicates++
				c.metrics.duplicates.Inc()
				c.logf("dist: duplicate completion of %s from %s discarded", ps.ID, wk)
			}
		}

		// Expire leases whose heartbeat lapsed.
		now := c.cfg.Now()
		for _, id := range sortedIDs(leases) {
			if now.After(leases[id].deadline) {
				requeue(id, "lease expired")
			}
		}
		if len(completed) == len(parts) {
			break
		}
		if err := resilience.Sleep(ctx, c.cfg.Poll); err != nil {
			return nil, err
		}
	}

	if len(snaps) > 0 {
		merged := obs.NewRegistry()
		for _, wk := range c.cfg.Workers {
			s := snaps[wk]
			if s == nil {
				continue
			}
			shard, err := obs.RegistryFromSnapshot(s)
			if err != nil {
				c.logf("dist: worker %s metrics shard: %v", wk, err)
				continue
			}
			if err := merged.Merge(shard); err != nil {
				c.logf("dist: merge %s metrics shard: %v", wk, err)
			}
		}
		res.WorkerMetrics = merged
	}
	return c.assemble(res, parts, completed)
}

// RunLocal executes the same run in-process: every partition is ingested
// locally (Goroutines-wide pool per partition) and merged through the
// identical rebase path, emitting the identical stage set. This is the
// reference rung of the equivalence claim — and the fallback when no
// workers are up.
func (c *Coordinator) RunLocal(ctx context.Context, parts []Partition) (*Result, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("dist: no partitions")
	}
	res := &Result{Partitions: len(parts)}
	completed := make(map[string]*partResult)
	for _, part := range parts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		acc, inputs, err := ingestPartition(ctx, c.cfg.Pipeline, c.fs, c.cfg.Format, c.cfg.Goroutines, 0, part, nil)
		if err != nil {
			return nil, err
		}
		completed[part.ID] = &partResult{acc: acc, inputs: inputs}
	}
	return c.assemble(res, parts, completed)
}

// assemble rebases, merges, and finalizes the completed partials in
// partition-index order. The three stage spans — dist-ingest (total
// observations), dist-merge (partition count), finalize — are the full
// deterministic stage set, identical at every topology.
func (c *Coordinator) assemble(res *Result, parts []Partition, completed map[string]*partResult) (*Result, error) {
	ordered := append([]Partition(nil), parts...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Index < ordered[j].Index })
	var total int64
	for _, part := range ordered {
		pr := completed[part.ID]
		if pr == nil {
			return nil, fmt.Errorf("dist: partition %s never completed", part.ID)
		}
		total += pr.acc.Observations()
	}
	isp := c.cfg.Tracer.Start("dist-ingest", "dist/ingest").SetRecords(total)
	isp.End()

	msp := c.cfg.Tracer.Start("dist-merge", "dist/merge").
		SetRecords(int64(len(ordered))).Arg("partitions", int64(len(ordered)))
	t0 := c.cfg.Now()
	var merged *analysis.Accumulator
	var base int64
	for _, part := range ordered {
		pr := completed[part.ID]
		pr.acc.OffsetSeq(base)
		base += pr.acc.Observations()
		res.Inputs = append(res.Inputs, pr.inputs...)
		if merged == nil {
			merged = pr.acc
		} else {
			merged.Merge(pr.acc)
		}
	}
	msp.End()
	c.metrics.mergeSec.Observe(c.cfg.Now().Sub(t0).Seconds())

	fsp := c.cfg.Tracer.Start("finalize", "finalize")
	res.Report = merged.Finalize()
	fsp.End()
	res.Observations = total
	sort.Slice(res.Inputs, func(i, j int) bool { return res.Inputs[i].Path < res.Inputs[j].Path })
	return res, nil
}

// pickWorker selects the next healthy worker round-robin, steering away
// from avoid when an alternative exists.
func (c *Coordinator) pickWorker(healthy map[string]bool, cursor *int, avoid string) (string, bool) {
	n := len(c.cfg.Workers)
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			wk := c.cfg.Workers[(*cursor+i)%n]
			if !healthy[wk] {
				continue
			}
			if pass == 0 && wk == avoid && n > 1 {
				continue
			}
			*cursor = (*cursor + i + 1) % n
			return wk, true
		}
	}
	return "", false
}

func sortedIDs(leases map[string]*lease) []string {
	ids := make([]string, 0, len(leases))
	for id := range leases {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func sortedLeaseIDs(leases map[string]*lease, worker string) []string {
	ids := make([]string, 0, len(leases))
	for id, ls := range leases {
		if ls.worker == worker {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// assign POSTs a sealed assignment to the worker.
func (c *Coordinator) assign(ctx context.Context, worker string, a Assignment) error {
	body, err := sealWire(SchemaAssignment, a)
	if err != nil {
		return err
	}
	_, err = c.cfg.Retry.Do(ctx, "dist.assign", func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+"/assign", strings.NewReader(string(body)))
		if err != nil {
			return resilience.MarkPermanent(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return fmt.Errorf("dist: assign: %w", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			return fmt.Errorf("dist: assign: %w",
				&resilience.StatusError{Code: resp.StatusCode, Body: strings.TrimSpace(string(msg))})
		}
		return nil
	})
	return err
}

func (c *Coordinator) fetchStatus(ctx context.Context, worker string) (*StatusResponse, error) {
	var st StatusResponse
	if err := c.getSealed(ctx, "dist.status", worker+"/status", SchemaStatus, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

func (c *Coordinator) fetchPartial(ctx context.Context, worker, id string) (*PartialResponse, error) {
	var resp PartialResponse
	url := worker + "/partial?partition=" + id
	if err := c.getSealed(ctx, "dist.partial", url, SchemaPartial, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// getSealed GETs and opens a sealed wire response under the retry budget.
// Schema/version mismatches are permanent: retrying a cross-version peer
// cannot help.
func (c *Coordinator) getSealed(ctx context.Context, op, url, schema string, v any) error {
	_, err := c.cfg.Retry.Do(ctx, op, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return resilience.MarkPermanent(err)
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return fmt.Errorf("dist: %s: %w", op, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			return fmt.Errorf("dist: %s: %w", op,
				&resilience.StatusError{Code: resp.StatusCode, Body: strings.TrimSpace(string(msg))})
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxWireBytes))
		if err != nil {
			return fmt.Errorf("dist: %s: %w", op, err)
		}
		if err := openWire(body, schema, v); err != nil {
			var se *certmodel.SchemaError
			if errors.As(err, &se) {
				return resilience.MarkPermanent(err)
			}
			return err
		}
		return nil
	})
	return err
}

// ingestPartition streams one partition through the Zeek loader into an
// in-process shard pool, digesting the raw inputs on the way past. Both the
// worker daemon and RunLocal ride this one path — the topology rungs differ
// only in where the returned accumulator is merged. tracer, when non-nil,
// receives the partition's spans: a dist-ingest span covering the whole
// ingest plus the stream stages underneath it. RunLocal passes nil — its
// coordinator tracer keeps the fixed topology-invariant stage set.
func ingestPartition(ctx context.Context, p *analysis.Pipeline, fs resilience.FS,
	format analysis.Format, goroutines int, throttle time.Duration, part Partition,
	tracer *obs.Tracer) (*analysis.Accumulator, []obs.InputDigest, error) {

	isp := tracer.Start("dist-ingest", "ingest/"+part.ID).
		SetTID(part.Index).Arg("partition", int64(part.Index))
	defer isp.End()
	sslF, err := fs.Open(part.SSL)
	if err != nil {
		return nil, nil, fmt.Errorf("dist: open %s: %w", part.SSL, err)
	}
	defer sslF.Close()
	x5F, err := fs.Open(part.X509)
	if err != nil {
		return nil, nil, fmt.Errorf("dist: open %s: %w", part.X509, err)
	}
	defer x5F.Close()
	sslR := newDigestReader(sslF)
	x5R := newDigestReader(x5F)

	obsCh := make(chan *campus.Observation, 256)
	loadErr := make(chan error, 1)
	go func() {
		defer close(obsCh)
		loadErr <- analysis.LoadFormatFunc(format, sslR, x5R, func(o *campus.Observation) error {
			if throttle > 0 {
				if err := resilience.Sleep(ctx, throttle); err != nil {
					return err
				}
			}
			obsCh <- o
			return nil
		})
	}()
	acc := p.AccumulateStreamTracer(obsCh, goroutines, tracer)
	if err := <-loadErr; err != nil {
		return nil, nil, fmt.Errorf("dist: load partition %s: %w", part.ID, err)
	}
	isp.SetRecords(acc.Observations())
	inputs := []obs.InputDigest{sslR.digest(part.SSL), x5R.digest(part.X509)}
	return acc, inputs, nil
}
