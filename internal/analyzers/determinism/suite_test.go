package determinism_test

import (
	"path/filepath"
	"testing"

	"certchains/internal/analyzers/analyzertest"
	"certchains/internal/analyzers/determinism"
)

// TestSuiteAdapter checks the analyzers.Analyzer adapter over AnalyzeFile:
// same rules, findings namespaced under the "determinism" analyzer.
func TestSuiteAdapter(t *testing.T) {
	got := analyzertest.Findings(t, determinism.Suite{}, filepath.Join("testdata", "suite"))
	analyzertest.Expect(t, got, []string{
		"clock.go:10 determinism/time-now",
		"clock.go:10 determinism/unseeded-rand",
	})
}
