// Package determinism is a project-specific static analyzer guarding the
// pipeline's byte-identical-output contract: report-producing code must not
// read wall-clock time, draw from the shared (unseeded) math/rand source, or
// print while ranging over a map. The checker mirrors the go/analysis
// single-pass shape but is built on the standard library alone (go/ast,
// go/parser, go/token), because the build environment is offline and must
// not vendor golang.org/x/tools.
//
// Three rules:
//
//   - time-now: any call to time.Now(). Reports must derive their reference
//     time from the scenario or a flag, never from the wall clock.
//   - unseeded-rand: package-level draws from math/rand or math/rand/v2
//     (rand.Intn, rand.Float64, rand.Shuffle, ...). Seeded generators built
//     via rand.New(...) are fine.
//   - map-range-output: a `range` statement over a locally-provable map
//     value whose body directly emits output (fmt print family or Write*
//     methods) — map iteration order would leak into the report.
//
// Findings carry the rule name and position; the allowlist (paths where
// wall-clock time is the point: CLIs, live scanners, servers) is applied by
// the caller at the file level.
package determinism

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"certchains/internal/analyzers"
)

// Finding is one determinism violation.
type Finding struct {
	// Pos locates the violation.
	Pos token.Position
	// Rule is the stable rule name: "time-now", "unseeded-rand", or
	// "map-range-output".
	Rule string
	// Message explains the violation.
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Rule, f.Message)
}

// drawFuncs are the math/rand package-level functions that consume the
// shared global source. Constructors (New, NewPCG, NewSource, NewZipf, ...)
// are deliberately absent: building a seeded generator is the fix, not the
// bug.
var drawFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"UintN": true, "Uint": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true,
}

// outputFuncs are the fmt functions that write program output.
var outputFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// AnalyzeFile runs every rule over one parsed file and returns its findings
// sorted by position.
func AnalyzeFile(fset *token.FileSet, file *ast.File) []Finding {
	a := &analyzer{
		fset:      fset,
		timePkgs:  importNames(file, "time"),
		randPkgs:  importNames(file, "math/rand", "math/rand/v2"),
		fmtPkgs:   importNames(file, "fmt"),
		mapIdents: collectMapIdents(file),
	}
	ast.Inspect(file, a.visit)
	sort.Slice(a.findings, func(i, j int) bool {
		pi, pj := a.findings[i].Pos, a.findings[j].Pos
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return a.findings
}

type analyzer struct {
	fset      *token.FileSet
	timePkgs  map[string]bool
	randPkgs  map[string]bool
	fmtPkgs   map[string]bool
	mapIdents map[*ast.Object]bool
	findings  []Finding
}

func (a *analyzer) report(pos token.Pos, rule, format string, args ...any) {
	a.findings = append(a.findings, Finding{
		Pos:     a.fset.Position(pos),
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

func (a *analyzer) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		a.checkCall(n)
	case *ast.RangeStmt:
		a.checkRange(n)
	}
	return true
}

// pkgCall resolves a call of the form pkg.Fn(...) where pkg is one of the
// given import names (not a shadowing local variable), returning Fn.
func pkgCall(call *ast.CallExpr, pkgs map[string]bool) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || !pkgs[id.Name] {
		return "", false
	}
	// A non-nil Obj means the identifier resolves to a local declaration
	// shadowing the import; a package reference resolves to nothing.
	if id.Obj != nil {
		return "", false
	}
	return sel.Sel.Name, true
}

func (a *analyzer) checkCall(call *ast.CallExpr) {
	if fn, ok := pkgCall(call, a.timePkgs); ok && fn == "Now" {
		a.report(call.Pos(), "time-now",
			"wall-clock read; thread a reference time through config instead")
	}
	if fn, ok := pkgCall(call, a.randPkgs); ok && drawFuncs[fn] {
		a.report(call.Pos(), "unseeded-rand",
			"rand.%s draws from the shared unseeded source; use a seeded rand.New generator", fn)
	}
}

// checkRange flags `for ... := range m` over a provable map when the body
// directly produces output.
func (a *analyzer) checkRange(rng *ast.RangeStmt) {
	id, ok := rng.X.(*ast.Ident)
	if !ok || id.Obj == nil || !a.mapIdents[id.Obj] {
		return
	}
	var out token.Pos
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if out.IsValid() {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := pkgCall(call, a.fmtPkgs); ok && outputFuncs[fn] {
			out = call.Pos()
			return false
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && strings.HasPrefix(sel.Sel.Name, "Write") {
			out = call.Pos()
			return false
		}
		return true
	})
	if out.IsValid() {
		a.report(rng.Pos(), "map-range-output",
			"output emitted while ranging over map %q; iteration order is random — sort the keys first", id.Name)
	}
}

// collectMapIdents gathers identifiers whose declaration proves a map type:
// `var x map[...]...`, `x := make(map[...]...)`, `x := map[...]...{...}`,
// and function parameters/results with explicit map types.
func collectMapIdents(file *ast.File) map[*ast.Object]bool {
	maps := make(map[*ast.Object]bool)
	mark := func(id *ast.Ident) {
		if id != nil && id.Obj != nil {
			maps[id.Obj] = true
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			if _, ok := n.Type.(*ast.MapType); ok {
				for _, id := range n.Names {
					mark(id)
				}
			}
			for i, v := range n.Values {
				if i < len(n.Names) && isMapExpr(v) {
					mark(n.Names[i])
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) || !isMapExpr(rhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					mark(id)
				}
			}
		case *ast.Field:
			if _, ok := n.Type.(*ast.MapType); ok {
				for _, id := range n.Names {
					mark(id)
				}
			}
		}
		return true
	})
	return maps
}

// isMapExpr reports whether an expression evidently yields a map: a map
// composite literal or make(map[...]...).
func isMapExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		_, ok := e.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
			_, ok := e.Args[0].(*ast.MapType)
			return ok
		}
	}
	return false
}

// importNames returns the names (aliases included) under which any of the
// given import paths are visible in the file. Dot and blank imports are
// skipped.
func importNames(file *ast.File, paths ...string) map[string]bool {
	want := make(map[string]bool, len(paths))
	for _, p := range paths {
		want[p] = true
	}
	names := make(map[string]bool)
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || !want[path] {
			continue
		}
		name := defaultImportName(path)
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "." || name == "_" {
			continue
		}
		names[name] = true
	}
	return names
}

// defaultImportName derives a package's default identifier from its import
// path: the last segment, skipping major-version suffixes ("math/rand/v2"
// imports as "rand").
func defaultImportName(path string) string {
	segs := strings.Split(path, "/")
	for i := len(segs) - 1; i >= 0; i-- {
		s := segs[i]
		if len(s) >= 2 && s[0] == 'v' && strings.TrimLeft(s[1:], "0123456789") == "" {
			continue
		}
		return s
	}
	return path
}

// Config controls a directory analysis.
type Config struct {
	// Allowlist holds slash-separated path fragments; a file whose
	// root-relative path contains any fragment is skipped entirely.
	Allowlist []string
	// IncludeTests analyzes _test.go files too (off by default: tests may
	// legitimately use wall-clock time and output helpers).
	IncludeTests bool
}

// Allowed reports whether a root-relative path escapes analysis.
func (c Config) Allowed(rel string) bool {
	rel = filepath.ToSlash(rel)
	for _, frag := range c.Allowlist {
		if strings.Contains(rel, frag) {
			return true
		}
	}
	return false
}

// AnalyzeDir walks every .go file under root and returns the findings in
// deterministic (path, position) order.
func AnalyzeDir(root string, cfg Config) ([]Finding, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		if !cfg.IncludeTests && strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			rel = path
		}
		if cfg.Allowed(rel) {
			return nil
		}
		files = append(files, path)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("determinism: walk %s: %w", root, err)
	}
	sort.Strings(files)

	var findings []Finding
	fset := token.NewFileSet()
	for _, path := range files {
		// Mode 0 keeps object resolution on: the rules rely on Ident.Obj to
		// distinguish package references from shadowing locals.
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return nil, fmt.Errorf("determinism: parse %s: %w", path, err)
		}
		findings = append(findings, AnalyzeFile(fset, file)...)
	}
	return findings, nil
}

// Suite adapts the determinism rules to the certchain-vet analyzer suite
// (internal/analyzers). AnalyzeFile/AnalyzeDir remain for direct use; the
// suite shape lets the unified driver run determinism alongside mergefields,
// resilience, hotpath, and locks under one allowlist and emitter set.
type Suite struct{}

// Name implements analyzers.Analyzer.
func (Suite) Name() string { return "determinism" }

// Doc implements analyzers.Analyzer.
func (Suite) Doc() string {
	return "report-producing code must not read the wall clock, draw unseeded randomness, or emit map-ordered output"
}

// Rules implements analyzers.Analyzer.
func (Suite) Rules() []analyzers.RuleDoc {
	return []analyzers.RuleDoc{
		{ID: "time-now", Description: "wall-clock read in deterministic code; thread a reference time through config"},
		{ID: "unseeded-rand", Description: "draw from the shared unseeded math/rand source; use a seeded rand.New generator"},
		{ID: "map-range-output", Description: "output emitted while ranging over a map; iteration order is random"},
	}
}

// Analyze implements analyzers.Analyzer.
func (Suite) Analyze(fset *token.FileSet, pkg *analyzers.Package) []analyzers.Finding {
	var out []analyzers.Finding
	for _, f := range pkg.Files {
		for _, fd := range AnalyzeFile(fset, f.AST) {
			out = append(out, analyzers.Finding{
				Pos:      fd.Pos,
				Analyzer: "determinism",
				Rule:     fd.Rule,
				Message:  fd.Message,
			})
		}
	}
	analyzers.SortFindings(out)
	return out
}
