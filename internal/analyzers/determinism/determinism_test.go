package determinism

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// analyzeSrc parses one source string and runs the file analyzer.
func analyzeSrc(t *testing.T, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "src.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return AnalyzeFile(fset, file)
}

// rules extracts the rule names of the findings, in order.
func rules(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Rule
	}
	return out
}

func TestTimeNow(t *testing.T) {
	fs := analyzeSrc(t, `package p
import "time"
func f() time.Time { return time.Now() }
`)
	if len(fs) != 1 || fs[0].Rule != "time-now" {
		t.Fatalf("findings = %v", fs)
	}
	if fs[0].Pos.Line != 3 {
		t.Errorf("line = %d, want 3", fs[0].Pos.Line)
	}
}

func TestTimeNowAliasedImport(t *testing.T) {
	fs := analyzeSrc(t, `package p
import clock "time"
func f() clock.Time { return clock.Now() }
`)
	if len(fs) != 1 || fs[0].Rule != "time-now" {
		t.Fatalf("aliased time.Now not flagged: %v", fs)
	}
}

func TestTimeNowShadowedNotFlagged(t *testing.T) {
	fs := analyzeSrc(t, `package p
type fake struct{}
func (fake) Now() int { return 0 }
func f() int {
	time := fake{}
	return time.Now()
}
`)
	if len(fs) != 0 {
		t.Fatalf("shadowed time flagged: %v", fs)
	}
}

func TestOtherTimeFuncsNotFlagged(t *testing.T) {
	fs := analyzeSrc(t, `package p
import "time"
func f() time.Time { return time.Date(2020, 9, 1, 0, 0, 0, 0, time.UTC) }
`)
	if len(fs) != 0 {
		t.Fatalf("time.Date flagged: %v", fs)
	}
}

func TestUnseededRand(t *testing.T) {
	fs := analyzeSrc(t, `package p
import "math/rand/v2"
func f() int { return rand.IntN(10) }
`)
	if len(fs) != 1 || fs[0].Rule != "unseeded-rand" {
		t.Fatalf("findings = %v", fs)
	}
}

func TestSeededRandNotFlagged(t *testing.T) {
	fs := analyzeSrc(t, `package p
import "math/rand/v2"
func f() int {
	rng := rand.New(rand.NewPCG(1, 2))
	return rng.IntN(10)
}
`)
	if len(fs) != 0 {
		t.Fatalf("seeded generator flagged: %v", fs)
	}
}

func TestMapRangeOutput(t *testing.T) {
	fs := analyzeSrc(t, `package p
import "fmt"
func f() {
	m := map[string]int{"a": 1}
	for k, v := range m {
		fmt.Println(k, v)
	}
}
`)
	if len(fs) != 1 || fs[0].Rule != "map-range-output" {
		t.Fatalf("findings = %v", fs)
	}
}

func TestMapRangeWriterOutput(t *testing.T) {
	fs := analyzeSrc(t, `package p
import "strings"
func f() string {
	var b strings.Builder
	m := make(map[string]int)
	for k := range m {
		b.WriteString(k)
	}
	return b.String()
}
`)
	if len(fs) != 1 || fs[0].Rule != "map-range-output" {
		t.Fatalf("findings = %v", fs)
	}
}

func TestMapRangeAccumulateNotFlagged(t *testing.T) {
	fs := analyzeSrc(t, `package p
func f() int {
	m := map[string]int{"a": 1}
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
`)
	if len(fs) != 0 {
		t.Fatalf("pure accumulation flagged: %v", fs)
	}
}

func TestSliceRangeOutputNotFlagged(t *testing.T) {
	fs := analyzeSrc(t, `package p
import "fmt"
func f() {
	s := []int{1, 2}
	for _, v := range s {
		fmt.Println(v)
	}
}
`)
	if len(fs) != 0 {
		t.Fatalf("slice range flagged: %v", fs)
	}
}

func TestMapParamRangeOutput(t *testing.T) {
	fs := analyzeSrc(t, `package p
import "fmt"
func f(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}
`)
	if len(fs) != 1 || fs[0].Rule != "map-range-output" {
		t.Fatalf("map parameter range not flagged: %v", fs)
	}
}

func TestFindingsSortedAndCombined(t *testing.T) {
	fs := analyzeSrc(t, `package p
import (
	"fmt"
	"math/rand/v2"
	"time"
)
func f() {
	m := make(map[int]bool)
	for k := range m {
		fmt.Println(k)
	}
	_ = rand.IntN(3)
	_ = time.Now()
}
`)
	want := []string{"map-range-output", "unseeded-rand", "time-now"}
	got := rules(fs)
	if len(got) != len(want) {
		t.Fatalf("rules = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rules = %v, want %v", got, want)
		}
	}
	for i := 1; i < len(fs); i++ {
		if fs[i].Pos.Line < fs[i-1].Pos.Line {
			t.Errorf("findings out of order: %v", fs)
		}
	}
}

func TestConfigAllowed(t *testing.T) {
	cfg := Config{Allowlist: []string{"cmd/", "internal/scanner/"}}
	for rel, want := range map[string]bool{
		"cmd/certchain-lint/main.go":   true,
		"internal/scanner/scanner.go":  true,
		"internal/analysis/partial.go": false,
	} {
		if got := cfg.Allowed(rel); got != want {
			t.Errorf("Allowed(%q) = %v, want %v", rel, got, want)
		}
	}
}

func TestAnalyzeDir(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("pkg/clean.go", "package pkg\nfunc OK() {}\n")
	write("pkg/dirty.go", "package pkg\nimport \"time\"\nfunc Bad() time.Time { return time.Now() }\n")
	write("pkg/dirty_test.go", "package pkg\nimport \"time\"\nfunc tBad() time.Time { return time.Now() }\n")
	write("cmd/tool/main.go", "package main\nimport \"time\"\nfunc main() { _ = time.Now() }\n")

	fs, err := AnalyzeDir(dir, Config{Allowlist: []string{"cmd/"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want exactly the non-test non-allowlisted one", fs)
	}
	if !strings.HasSuffix(filepath.ToSlash(fs[0].Pos.Filename), "pkg/dirty.go") {
		t.Errorf("finding in %s", fs[0].Pos.Filename)
	}

	// IncludeTests picks up the _test.go violation too.
	fs, err = AnalyzeDir(dir, Config{Allowlist: []string{"cmd/"}, IncludeTests: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		t.Fatalf("with tests: %d findings, want 2", len(fs))
	}
}
