// Fixture for the Suite adapter: one wall-clock read, one unseeded draw.
package fixture

import (
	"math/rand"
	"time"
)

func stamp() (int64, int) {
	return time.Now().Unix(), rand.Intn(10)
}
