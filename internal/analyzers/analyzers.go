// Package analyzers is the shared scaffolding for the project's static
// analysis suite (certchain-vet). Each analyzer guards one hand-maintained
// invariant the runtime equivalence suites can only probe, never prove:
// merge/snapshot field completeness, resilience-layer conventions, hot-path
// allocation discipline, lock discipline, and report determinism. Analyzers
// are built on the standard library alone (go/ast, go/parser, go/token) —
// the build environment is offline and must not vendor golang.org/x/tools —
// and therefore work syntactically, per package, without type information.
//
// The package provides the pieces every analyzer shares: the Finding type,
// the Analyzer interface, a package loader that walks a source tree, and
// helpers for import resolution and //certchain: directive comments.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Finding is one diagnostic from one analyzer.
type Finding struct {
	// Pos locates the violation. Filename is root-relative and
	// slash-separated so findings are stable across checkouts.
	Pos token.Position
	// Analyzer is the reporting analyzer's name (e.g. "mergefields").
	Analyzer string
	// Rule is the stable rule identifier within the analyzer.
	Rule string
	// Message explains the violation and the expected fix.
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s/%s: %s", f.Pos, f.Analyzer, f.Rule, f.Message)
}

// RuleDoc documents one rule for emitters (SARIF rule metadata, -help).
type RuleDoc struct {
	// ID is the rule identifier, unique within the analyzer.
	ID string
	// Description is a one-line statement of the invariant the rule guards.
	Description string
}

// File is one parsed source file.
type File struct {
	// Path is the root-relative, slash-separated file path.
	Path string
	// AST is the parsed file, with comments and object resolution.
	AST *ast.File
}

// Package groups the files of one directory (one Go package in this module;
// the loader does not support multiple packages per directory).
type Package struct {
	// Dir is the root-relative, slash-separated directory ("." for root).
	Dir string
	// Files are the package's files sorted by path.
	Files []*File
}

// Analyzer is one static check suite over parsed packages.
type Analyzer interface {
	// Name is the stable analyzer name used in configuration and output.
	Name() string
	// Doc is a one-line description of what the analyzer guards.
	Doc() string
	// Rules lists the analyzer's rules for emitter metadata.
	Rules() []RuleDoc
	// Analyze inspects one package and returns its findings. Implementations
	// must be deterministic: findings ordered by (file, line, column).
	Analyze(fset *token.FileSet, pkg *Package) []Finding
}

// LoadConfig controls a Load walk.
type LoadConfig struct {
	// IncludeTests parses _test.go files too (off by default: tests may
	// legitimately use wall-clock time, sleeps, and output helpers).
	IncludeTests bool
}

// Load walks every .go file under root, parses it with comments and object
// resolution, and returns the packages grouped by directory in sorted order.
// Hidden directories, testdata, and vendor trees are skipped.
func Load(root string, cfg LoadConfig) (*token.FileSet, []*Package, error) {
	var paths []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		if !cfg.IncludeTests && strings.HasSuffix(path, "_test.go") {
			return nil
		}
		paths = append(paths, path)
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("analyzers: walk %s: %w", root, err)
	}
	sort.Strings(paths)

	fset := token.NewFileSet()
	byDir := make(map[string]*Package)
	var dirs []string
	for _, path := range paths {
		rel, err := filepath.Rel(root, path)
		if err != nil {
			rel = path
		}
		rel = filepath.ToSlash(rel)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("analyzers: read %s: %w", path, err)
		}
		// ParseComments keeps //certchain: directives; object resolution stays
		// on (needed to distinguish package references from shadowing locals).
		file, err := parser.ParseFile(fset, rel, src, parser.ParseComments)
		if err != nil {
			return nil, nil, fmt.Errorf("analyzers: parse %s: %w", path, err)
		}
		dir := filepath.ToSlash(filepath.Dir(rel))
		pkg, ok := byDir[dir]
		if !ok {
			pkg = &Package{Dir: dir}
			byDir[dir] = pkg
			dirs = append(dirs, dir)
		}
		pkg.Files = append(pkg.Files, &File{Path: rel, AST: file})
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkgs = append(pkgs, byDir[dir])
	}
	return fset, pkgs, nil
}

// SortFindings orders findings by (file, line, column, rule) in place.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// ImportNames returns the names (aliases included) under which any of the
// given import paths are visible in the file. Dot and blank imports are
// skipped.
func ImportNames(file *ast.File, paths ...string) map[string]bool {
	want := make(map[string]bool, len(paths))
	for _, p := range paths {
		want[p] = true
	}
	names := make(map[string]bool)
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || !want[path] {
			continue
		}
		name := DefaultImportName(path)
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "." || name == "_" {
			continue
		}
		names[name] = true
	}
	return names
}

// DefaultImportName derives a package's default identifier from its import
// path: the last segment, skipping major-version suffixes ("math/rand/v2"
// imports as "rand").
func DefaultImportName(path string) string {
	segs := strings.Split(path, "/")
	for i := len(segs) - 1; i >= 0; i-- {
		s := segs[i]
		if len(s) >= 2 && s[0] == 'v' && strings.TrimLeft(s[1:], "0123456789") == "" {
			continue
		}
		return s
	}
	return path
}

// PkgCall resolves a call of the form pkg.Fn(...) where pkg is one of the
// given import names (not a shadowing local variable), returning Fn.
func PkgCall(call *ast.CallExpr, pkgs map[string]bool) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || !pkgs[id.Name] {
		return "", false
	}
	// A non-nil Obj means the identifier resolves to a local declaration
	// shadowing the import; a package reference resolves to nothing.
	if id.Obj != nil {
		return "", false
	}
	return sel.Sel.Name, true
}

// DirectivePrefix introduces every analyzer directive comment.
const DirectivePrefix = "//certchain:"

// Directive extracts the directive name and trailing argument from one
// comment. "//certchain:nomerge shared config" yields ("nomerge",
// "shared config", true).
func Directive(c *ast.Comment) (name, arg string, ok bool) {
	text := strings.TrimSpace(c.Text)
	if !strings.HasPrefix(text, DirectivePrefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, DirectivePrefix)
	name, arg, _ = strings.Cut(rest, " ")
	return name, strings.TrimSpace(arg), name != ""
}

// FileHasDirective reports whether any comment in the file carries the named
// directive (e.g. a //certchain:hotpath package annotation).
func FileHasDirective(file *ast.File, name string) bool {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if n, _, ok := Directive(c); ok && n == name {
				return true
			}
		}
	}
	return false
}

// CommentHasDirective reports whether a comment group carries the named
// directive, returning its argument.
func CommentHasDirective(cg *ast.CommentGroup, name string) (arg string, ok bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		if n, a, k := Directive(c); k && n == name {
			return a, true
		}
	}
	return "", false
}

// DirectiveLines maps each line carrying the named directive to true, for
// statement-level suppression: a finding is suppressed when the directive
// sits on the same line or the line immediately above.
func DirectiveLines(fset *token.FileSet, file *ast.File, name string) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if n, _, ok := Directive(c); ok && n == name {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// SuppressedAt reports whether a finding at pos is covered by a directive on
// the same line or the line above it.
func SuppressedAt(lines map[int]bool, pos token.Position) bool {
	return lines[pos.Line] || lines[pos.Line-1]
}

// ExprString renders a restricted expression (identifier chains like "mu" or
// "r.mu.inner") for use in messages and lock-identity comparison. Unsupported
// shapes render as "?".
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprString(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return ExprString(e.X)
	case *ast.ParenExpr:
		return ExprString(e.X)
	case *ast.IndexExpr:
		return ExprString(e.X) + "[...]"
	case *ast.CallExpr:
		return ExprString(e.Fun) + "()"
	}
	return "?"
}
