// Package mergefields statically checks merge/snapshot field completeness:
// for every accumulator type that declares a Merge method and/or a snapshot
// codec, every struct field must be referenced in the Merge body and in the
// snapshot encode/decode pair. A field that is accumulated during observation
// but forgotten in Merge silently breaks shard-merge correctness — only at
// workers>1, where the runtime equivalence suite may or may not exercise the
// dropped field — and a field missing from the codec silently loses state
// across daemon restarts. This analyzer makes both omissions compile-time
// visible.
//
// Conventions recognized (the ones the repo's accumulators already follow):
//
//   - merge method: a method named "Merge" or "merge" on T
//     (partialReport.merge, obs.Registry.Merge, stats.CDF.Merge, ...).
//   - snapshot encode: a method on T whose name contains "Snapshot" or
//     "snapshot" (partialReport.snapshot, graph.Graph.Snapshot, ...).
//   - snapshot decode: any function in the package whose name starts with
//     "Restore"/"restore" or contains "FromSnapshot" and whose parameters or
//     results reference T (Pipeline.restorePartial, graph.FromSnapshot,
//     stats.CDFFromSnapshot, RestoreWindowRing, ...).
//
// A field counts as covered when its name appears as a selector or composite
// literal key anywhere in the relevant bodies — a deliberate
// overapproximation (the analyzer is untyped), tuned to catch omissions
// rather than prove correctness.
//
// Fields that are configuration rather than accumulated state (shared
// pipeline pointers, detectors, linters) are exempted with a field directive
// carrying a mandatory reason:
//
//	p *Pipeline //certchain:nomerge shared read-only pipeline config
//
// Fields that are merged but legitimately absent from the snapshot codec
// because the decode path recomputes them (derived totals, config threaded
// from an authoritative sibling snapshot) use //certchain:nosnapshot with a
// reason; the merge-field check stays active for them.
//
// Mutex, Once, and WaitGroup fields are exempt automatically — they guard
// state but are never merged or persisted.
package mergefields

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"certchains/internal/analyzers"
)

// Analyzer implements analyzers.Analyzer.
type Analyzer struct{}

// Name implements analyzers.Analyzer.
func (Analyzer) Name() string { return "mergefields" }

// Doc implements analyzers.Analyzer.
func (Analyzer) Doc() string {
	return "every accumulator field must be covered by Merge and by the snapshot encode/decode pair"
}

// Rules implements analyzers.Analyzer.
func (Analyzer) Rules() []analyzers.RuleDoc {
	return []analyzers.RuleDoc{
		{ID: "merge-field", Description: "struct field not referenced in the type's Merge body; it would be silently dropped on shard merge"},
		{ID: "snapshot-field", Description: "struct field not referenced in the snapshot encode/decode pair; it would be silently lost across restarts"},
		{ID: "nomerge-reason", Description: "//certchain:nomerge and //certchain:nosnapshot directives require a reason"},
	}
}

// structInfo is one struct type declaration with its field set.
type structInfo struct {
	name   string
	pos    token.Pos
	fields []fieldInfo
}

type fieldInfo struct {
	name string
	pos  token.Pos
	// exemptMerge: //certchain:nomerge (not accumulated state) or a sync
	// guard type. exemptSnapshot additionally covers //certchain:nosnapshot
	// (state recomputed on restore).
	exemptMerge    bool
	exemptSnapshot bool
}

// funcInfo is one function or method declaration.
type funcInfo struct {
	name string
	// recv is the receiver's base type name ("" for plain functions).
	recv string
	// typeRefs are base type names appearing in the parameter and result
	// lists (pointers and errors unwrapped).
	typeRefs map[string]bool
	// fieldRefs are all selector names and composite-literal keys used in
	// the body.
	fieldRefs map[string]bool
}

// Analyze implements analyzers.Analyzer.
func (Analyzer) Analyze(fset *token.FileSet, pkg *analyzers.Package) []analyzers.Finding {
	var structs []*structInfo
	var funcs []*funcInfo
	var findings []analyzers.Finding

	for _, f := range pkg.Files {
		for _, decl := range f.AST.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					si, fs := collectStruct(fset, ts.Name.Name, st)
					structs = append(structs, si)
					findings = append(findings, fs...)
				}
			case *ast.FuncDecl:
				funcs = append(funcs, collectFunc(d))
			}
		}
	}

	for _, si := range structs {
		merge := coverage(funcs, si.name, isMergeFor)
		encode := coverage(funcs, si.name, isEncodeFor)
		decode := coverage(funcs, si.name, isDecodeFor)

		if merge != nil {
			findings = append(findings, missing(fset, si, merge, false,
				"merge-field", "not referenced in %s's Merge body; the field would be silently dropped on shard merge")...)
		}
		if encode != nil && decode != nil {
			union := make(map[string]bool, len(encode)+len(decode))
			for k := range encode {
				union[k] = true
			}
			for k := range decode {
				union[k] = true
			}
			findings = append(findings, missing(fset, si, union, true,
				"snapshot-field", "not referenced in %s's snapshot encode/decode pair; the field would be silently lost on restore")...)
		}
	}
	analyzers.SortFindings(findings)
	return findings
}

// collectStruct gathers a struct's named fields, marking exemptions. Findings
// are emitted for nomerge directives missing their mandatory reason.
func collectStruct(fset *token.FileSet, name string, st *ast.StructType) (*structInfo, []analyzers.Finding) {
	si := &structInfo{name: name, pos: st.Pos()}
	var findings []analyzers.Finding
	for _, field := range st.Fields.List {
		exMerge, exSnap, reasonMissing := fieldExempt(field)
		if reasonMissing {
			findings = append(findings, analyzers.Finding{
				Pos:      fset.Position(field.Pos()),
				Analyzer: "mergefields",
				Rule:     "nomerge-reason",
				Message:  "//certchain:nomerge and //certchain:nosnapshot require a reason (e.g. \"//certchain:nomerge shared config\")",
			})
		}
		names := field.Names
		if len(names) == 0 {
			// Embedded field: track under its type's base name.
			if base := baseTypeName(field.Type); base != "" {
				si.fields = append(si.fields, fieldInfo{name: base, pos: field.Pos(), exemptMerge: exMerge, exemptSnapshot: exSnap})
			}
			continue
		}
		for _, id := range names {
			if id.Name == "_" {
				continue
			}
			si.fields = append(si.fields, fieldInfo{name: id.Name, pos: id.Pos(), exemptMerge: exMerge, exemptSnapshot: exSnap})
		}
	}
	return si, findings
}

// fieldExempt reports how a field escapes coverage checking:
// //certchain:nomerge marks configuration that is never merged or persisted
// (exempt from both rules); //certchain:nosnapshot marks state the decode
// path recomputes (exempt from snapshot-field only). Both directives require
// a reason. Synchronization-guard types are exempt from both automatically.
func fieldExempt(field *ast.Field) (exemptMerge, exemptSnapshot, reasonMissing bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if arg, ok := analyzers.CommentHasDirective(cg, "nomerge"); ok {
			exemptMerge, exemptSnapshot = true, true
			reasonMissing = reasonMissing || arg == ""
		}
		if arg, ok := analyzers.CommentHasDirective(cg, "nosnapshot"); ok {
			exemptSnapshot = true
			reasonMissing = reasonMissing || arg == ""
		}
	}
	if exemptMerge || exemptSnapshot {
		return exemptMerge, exemptSnapshot, reasonMissing
	}
	switch typeText(field.Type) {
	case "sync.Mutex", "sync.RWMutex", "sync.Once", "sync.WaitGroup":
		return true, true, false
	}
	return false, false, false
}

// typeText renders a field type's textual form for the sync-guard check.
func typeText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return typeText(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return typeText(e.X)
	}
	return ""
}

// baseTypeName unwraps pointers/selectors down to the base identifier.
func baseTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return baseTypeName(e.X)
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr: // generic instantiation
		return baseTypeName(e.X)
	}
	return ""
}

// collectFunc records a declaration's name, receiver, signature type
// references, and body field references.
func collectFunc(d *ast.FuncDecl) *funcInfo {
	fi := &funcInfo{
		name:      d.Name.Name,
		typeRefs:  make(map[string]bool),
		fieldRefs: make(map[string]bool),
	}
	if d.Recv != nil && len(d.Recv.List) > 0 {
		fi.recv = baseTypeName(d.Recv.List[0].Type)
	}
	if d.Type.Params != nil {
		for _, p := range d.Type.Params.List {
			markTypeRefs(p.Type, fi.typeRefs)
		}
	}
	if d.Type.Results != nil {
		for _, r := range d.Type.Results.List {
			markTypeRefs(r.Type, fi.typeRefs)
		}
	}
	if d.Body != nil {
		ast.Inspect(d.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				fi.fieldRefs[n.Sel.Name] = true
			case *ast.KeyValueExpr:
				if id, ok := n.Key.(*ast.Ident); ok {
					fi.fieldRefs[id.Name] = true
				}
			}
			return true
		})
	}
	return fi
}

// markTypeRefs records every base identifier a signature type mentions.
func markTypeRefs(e ast.Expr, out map[string]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			out[id.Name] = true
		}
		return true
	})
}

// isMergeFor: a method named Merge/merge on T mentioning T in its signature.
func isMergeFor(f *funcInfo, typ string) bool {
	lower := strings.ToLower(f.name)
	return lower == "merge" && f.recv == typ
}

// isEncodeFor: a method on T whose name mentions "snapshot".
func isEncodeFor(f *funcInfo, typ string) bool {
	return f.recv == typ && strings.Contains(strings.ToLower(f.name), "snapshot")
}

// isDecodeFor: a restore-shaped function whose signature references T.
func isDecodeFor(f *funcInfo, typ string) bool {
	lower := strings.ToLower(f.name)
	restoreShaped := strings.HasPrefix(lower, "restore") || strings.Contains(lower, "fromsnapshot")
	return restoreShaped && (f.typeRefs[typ] || f.recv == typ)
}

// coverage returns the union of body field references across every function
// matching the predicate for typ, or nil when none match.
func coverage(funcs []*funcInfo, typ string, match func(*funcInfo, string) bool) map[string]bool {
	var out map[string]bool
	for _, f := range funcs {
		if !match(f, typ) {
			continue
		}
		if out == nil {
			out = make(map[string]bool)
		}
		for k := range f.fieldRefs {
			out[k] = true
		}
	}
	return out
}

// missing reports each non-exempt field of si absent from covered.
func missing(fset *token.FileSet, si *structInfo, covered map[string]bool, snapshot bool, rule, format string) []analyzers.Finding {
	var out []analyzers.Finding
	for _, f := range si.fields {
		exempt := f.exemptMerge
		if snapshot {
			exempt = f.exemptSnapshot
		}
		if exempt || covered[f.name] {
			continue
		}
		out = append(out, analyzers.Finding{
			Pos:      fset.Position(f.pos),
			Analyzer: "mergefields",
			Rule:     rule,
			Message:  "field " + si.name + "." + f.name + " " + fmt.Sprintf(format, si.name),
		})
	}
	return out
}
