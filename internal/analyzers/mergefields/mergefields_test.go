package mergefields_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"certchains/internal/analyzers/analyzertest"
	"certchains/internal/analyzers/mergefields"
)

func TestIncompleteAccumulator(t *testing.T) {
	got := analyzertest.Findings(t, mergefields.Analyzer{}, filepath.Join("testdata", "incomplete"))
	analyzertest.Expect(t, got, []string{
		"acc.go:7 mergefields/merge-field",
		"acc.go:7 mergefields/snapshot-field",
		"acc.go:8 mergefields/merge-field",
		"acc.go:8 mergefields/snapshot-field",
		"acc.go:9 mergefields/nomerge-reason",
	})
}

func TestCompleteAccumulator(t *testing.T) {
	got := analyzertest.Findings(t, mergefields.Analyzer{}, filepath.Join("testdata", "complete"))
	analyzertest.Expect(t, got, nil)
}

// TestMutationDroppedMergeLine deletes one field's merge line from the clean
// fixture and asserts the analyzer reports exactly that field — the
// regression the whole analyzer exists to catch.
func TestMutationDroppedMergeLine(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "complete", "acc.go"))
	if err != nil {
		t.Fatal(err)
	}
	const marker = "drop-merge-total"
	var kept []string
	dropped := false
	for _, line := range strings.Split(string(src), "\n") {
		if strings.Contains(line, marker) {
			dropped = true
			continue
		}
		kept = append(kept, line)
	}
	if !dropped {
		t.Fatalf("fixture lost its %q mutation marker", marker)
	}

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "acc.go"), []byte(strings.Join(kept, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	got := analyzertest.Findings(t, mergefields.Analyzer{}, dir)
	if len(got) != 1 || !strings.Contains(got[0], "mergefields/merge-field") {
		t.Fatalf("dropping the total merge line should yield one merge-field finding, got %v", got)
	}
}
