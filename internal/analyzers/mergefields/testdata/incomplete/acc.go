// Positive fixture: a Merge body and a snapshot codec that both drop fields.
package fixture

type counter struct {
	hits   int64
	misses int64
	errs   int64   // dropped by Merge and by the codec: two findings
	label  *string // dropped as well: two findings
	skip   int64   //certchain:nomerge
}

func (c *counter) Merge(o *counter) {
	c.hits += o.hits
	c.misses += o.misses
}

type counterSnapshot struct {
	Hits   int64
	Misses int64
}

func (c *counter) Snapshot() counterSnapshot {
	return counterSnapshot{Hits: c.hits, Misses: c.misses}
}

func restoreCounter(s counterSnapshot) *counter {
	return &counter{hits: s.Hits, misses: s.Misses}
}
