// Negative fixture: complete coverage plus every sanctioned exemption.
package fixture

import "sync"

type gauge struct {
	mu    sync.Mutex // guard types are exempt automatically
	cfg   *string    //certchain:nomerge shared configuration, never accumulated
	hits  int64
	total int64 //certchain:nosnapshot derived; restoreGauge rebuilds it from hits
}

func (g *gauge) Merge(o *gauge) {
	g.hits += o.hits
	g.total += o.total // mutation marker: drop-merge-total
}

type gaugeSnapshot struct {
	Hits int64
}

func (g *gauge) Snapshot() gaugeSnapshot {
	return gaugeSnapshot{Hits: g.hits}
}

func restoreGauge(s gaugeSnapshot) *gauge {
	return &gauge{hits: s.Hits}
}
