package vet_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"certchains/internal/analyzers/vet"
)

// writeRepo lays out a tiny tree with one determinism and one resilience
// violation.
func writeRepo(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	src := map[string]string{
		"clock/clock.go": "package clock\n\nimport \"time\"\n\nfunc Now() int64 { return time.Now().Unix() }\n",
		"poll/poll.go":   "package poll\n\nimport \"time\"\n\nfunc Wait() { time.Sleep(time.Second) }\n",
	}
	for rel, s := range src {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func run(t *testing.T, opts vet.Options) *vet.Result {
	t.Helper()
	res, err := vet.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunFindsViolations(t *testing.T) {
	root := writeRepo(t)
	res := run(t, vet.Options{Root: root})
	var got []string
	for _, f := range res.Findings {
		got = append(got, f.Pos.Filename+" "+f.Analyzer+"/"+f.Rule)
	}
	want := []string{
		"clock/clock.go determinism/time-now",
		"poll/poll.go resilience/raw-sleep",
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAllowlistSuppressesAndStaleFails(t *testing.T) {
	root := writeRepo(t)
	cfg := vet.Config{Allow: []vet.AllowEntry{
		{Analyzers: []string{"determinism"}, Path: "clock/", Reason: "the clock seam"},
		{Path: "gone/", Reason: "matches nothing"},
	}}
	res := run(t, vet.Options{Root: root, Config: cfg})
	if res.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", res.Suppressed)
	}
	if len(res.Findings) != 1 || res.Findings[0].Rule != "raw-sleep" {
		t.Errorf("surviving findings = %v, want only raw-sleep", res.Findings)
	}
	if len(res.Stale) != 1 || !strings.Contains(res.Stale[0], `"gone/"`) {
		t.Errorf("stale = %v, want one entry for gone/", res.Stale)
	}

	res = run(t, vet.Options{Root: root, Config: cfg, SkipStaleCheck: true})
	if len(res.Stale) != 0 {
		t.Errorf("SkipStaleCheck left stale entries: %v", res.Stale)
	}
}

func TestRuleFilterInAllowEntry(t *testing.T) {
	root := writeRepo(t)
	cfg := vet.Config{Allow: []vet.AllowEntry{
		// Rule filter that does NOT match the produced rule: nothing suppressed.
		{Analyzers: []string{"resilience"}, Path: "poll/", Rules: []string{"raw-dial"}, Reason: "wrong rule"},
	}}
	res := run(t, vet.Options{Root: root, Config: cfg})
	if res.Suppressed != 0 || len(res.Findings) != 2 {
		t.Errorf("rule-filtered entry must not suppress raw-sleep: suppressed=%d findings=%d",
			res.Suppressed, len(res.Findings))
	}
}

func TestSelectAnalyzers(t *testing.T) {
	root := writeRepo(t)
	res := run(t, vet.Options{Root: root, Analyzers: []string{"determinism"}})
	if len(res.Findings) != 1 || res.Findings[0].Analyzer != "determinism" {
		t.Errorf("analyzer selection leaked findings: %v", res.Findings)
	}
	if _, err := vet.Run(vet.Options{Root: root, Analyzers: []string{"nonsense"}}); err == nil {
		t.Error("unknown analyzer name must error")
	}
}

func TestLoadConfigValidation(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	if _, err := vet.LoadConfig(filepath.Join(dir, "absent.json"), true); err != nil {
		t.Errorf("optional missing config must load empty, got %v", err)
	}
	if _, err := vet.LoadConfig(filepath.Join(dir, "absent.json"), false); err == nil {
		t.Error("required missing config must error")
	}
	if _, err := vet.LoadConfig(write("noreason.json", `{"allow":[{"path":"x/"}]}`), false); err == nil ||
		!strings.Contains(err.Error(), "reason") {
		t.Errorf("missing reason must error, got %v", err)
	}
	if _, err := vet.LoadConfig(write("nopath.json", `{"allow":[{"reason":"r"}]}`), false); err == nil ||
		!strings.Contains(err.Error(), "path") {
		t.Errorf("missing path must error, got %v", err)
	}
	if _, err := vet.LoadConfig(write("badname.json", `{"allow":[{"path":"x/","reason":"r","analyzers":["bogus"]}]}`), false); err == nil ||
		!strings.Contains(err.Error(), "bogus") {
		t.Errorf("unknown analyzer must error, got %v", err)
	}
	cfg, err := vet.LoadConfig(write("ok.json", `{"allow":[{"path":"x/","reason":"r","analyzers":["resilience"]}]}`), false)
	if err != nil || len(cfg.Allow) != 1 {
		t.Errorf("valid config: cfg=%v err=%v", cfg, err)
	}
}

func TestCheckedInConfigIsValid(t *testing.T) {
	// The repo's own allowlist must always load (schema drift breaks make vet).
	if _, err := vet.LoadConfig(filepath.Join("..", "..", "..", vet.DefaultConfigName), false); err != nil {
		t.Fatalf("checked-in %s is invalid: %v", vet.DefaultConfigName, err)
	}
}

func TestWriteJSON(t *testing.T) {
	root := writeRepo(t)
	res := run(t, vet.Options{Root: root})
	var buf bytes.Buffer
	if err := vet.WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Findings []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Rule     string `json:"rule"`
		} `json:"findings"`
		Summary struct {
			Total      int `json:"total"`
			Suppressed int `json:"suppressed"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("emitted JSON does not parse: %v\n%s", err, buf.String())
	}
	if doc.Summary.Total != 2 || len(doc.Findings) != 2 {
		t.Errorf("JSON summary/finding mismatch: %+v", doc)
	}
	if doc.Findings[0].File != "clock/clock.go" || doc.Findings[0].Rule != "time-now" {
		t.Errorf("first JSON finding = %+v", doc.Findings[0])
	}
}

func TestWriteSARIF(t *testing.T) {
	root := writeRepo(t)
	res := run(t, vet.Options{Root: root})
	var buf bytes.Buffer
	if err := vet.WriteSARIF(&buf, res); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("emitted SARIF does not parse: %v\n%s", err, buf.String())
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("SARIF envelope: %+v", doc)
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "certchain-vet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Results) != 2 || run.Results[0].RuleID != "determinism/time-now" {
		t.Errorf("SARIF results = %+v", run.Results)
	}
	// Rule metadata must cover every namespaced rule of the full suite.
	ids := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ids[r.ID] = true
	}
	for _, want := range []string{"determinism/time-now", "mergefields/merge-field", "resilience/raw-sleep", "hotpath/fmt-alloc", "locks/held-across-block"} {
		if !ids[want] {
			t.Errorf("SARIF rules missing %q (have %d rules)", want, len(ids))
		}
	}
}

func TestWriteText(t *testing.T) {
	root := writeRepo(t)
	cfg := vet.Config{Allow: []vet.AllowEntry{{Path: "gone/", Reason: "stale"}}}
	res := run(t, vet.Options{Root: root, Config: cfg})
	var buf bytes.Buffer
	if err := vet.WriteText(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"determinism/time-now", "resilience/raw-sleep", "stale-allowlist:"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}
