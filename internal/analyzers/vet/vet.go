// Package vet is the driver behind cmd/certchain-vet (and the
// cmd/determinism-lint alias): it loads the source tree once, runs the
// selected analyzers from the project suite, applies the checked-in
// allowlist (.certchain-vet.json), and emits text, JSON, or SARIF.
//
// The allowlist replaces the determinism linter's hardcoded path list with
// one reviewed file. Every entry must carry a reason — suppressions are
// design decisions, and the schema makes them documented ones — and every
// entry's path must still match a real file, so entries cannot silently
// outlive the code they excused (the stale-allowlist check fails CI).
package vet

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"certchains/internal/analyzers"
	"certchains/internal/analyzers/determinism"
	"certchains/internal/analyzers/hotpath"
	"certchains/internal/analyzers/locks"
	"certchains/internal/analyzers/mergefields"
	"certchains/internal/analyzers/resilience"
	"certchains/internal/lint"
)

// DefaultConfigName is the checked-in allowlist file looked up under the
// analysis root.
const DefaultConfigName = ".certchain-vet.json"

// All returns the full analyzer suite in stable order.
func All() []analyzers.Analyzer {
	return []analyzers.Analyzer{
		determinism.Suite{},
		hotpath.Analyzer{},
		locks.Analyzer{},
		mergefields.Analyzer{},
		resilience.Analyzer{},
	}
}

// Names returns the suite's analyzer names in stable order.
func Names() []string {
	var out []string
	for _, a := range All() {
		out = append(out, a.Name())
	}
	return out
}

// AllowEntry is one allowlist suppression.
type AllowEntry struct {
	// Analyzers restricts the entry to the named analyzers; empty means all.
	Analyzers []string `json:"analyzers,omitempty"`
	// Path is a slash-separated path fragment; the entry applies to files
	// whose root-relative path contains it. Mandatory.
	Path string `json:"path"`
	// Rules restricts the entry to specific rule IDs; empty suppresses every
	// finding the matching analyzers produce in matching files.
	Rules []string `json:"rules,omitempty"`
	// Reason documents why the suppression is legitimate. Mandatory.
	Reason string `json:"reason"`
}

// Config is the .certchain-vet.json schema.
type Config struct {
	// Allow lists the reviewed suppressions.
	Allow []AllowEntry `json:"allow"`
}

// LoadConfig reads and validates a config file. A missing file at the
// default location is an empty config, not an error.
func LoadConfig(path string, optional bool) (Config, error) {
	var cfg Config
	data, err := os.ReadFile(path)
	if err != nil {
		if optional && os.IsNotExist(err) {
			return cfg, nil
		}
		return cfg, fmt.Errorf("vet: read config: %w", err)
	}
	if err := json.Unmarshal(data, &cfg); err != nil {
		return cfg, fmt.Errorf("vet: parse %s: %w", path, err)
	}
	known := make(map[string]bool)
	for _, n := range Names() {
		known[n] = true
	}
	for i, e := range cfg.Allow {
		if e.Path == "" {
			return cfg, fmt.Errorf("vet: %s: allow[%d]: path is required", path, i)
		}
		if strings.TrimSpace(e.Reason) == "" {
			return cfg, fmt.Errorf("vet: %s: allow[%d] (path %q): reason is required", path, i, e.Path)
		}
		for _, a := range e.Analyzers {
			if !known[a] {
				return cfg, fmt.Errorf("vet: %s: allow[%d]: unknown analyzer %q (have %s)",
					path, i, a, strings.Join(Names(), ", "))
			}
		}
	}
	return cfg, nil
}

// matches reports whether the entry suppresses a finding.
func (e AllowEntry) matches(f analyzers.Finding) bool {
	if !strings.Contains(filepath.ToSlash(f.Pos.Filename), e.Path) {
		return false
	}
	if len(e.Analyzers) > 0 {
		ok := false
		for _, a := range e.Analyzers {
			if a == f.Analyzer {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(e.Rules) > 0 {
		ok := false
		for _, r := range e.Rules {
			if r == f.Rule {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Options configures one Run.
type Options struct {
	// Root is the directory to analyze.
	Root string
	// Analyzers selects analyzers by name; empty runs the whole suite.
	Analyzers []string
	// IncludeTests analyzes _test.go files too.
	IncludeTests bool
	// Config is the loaded allowlist.
	Config Config
	// SkipStaleCheck disables the stale-allowlist-entry check (used by the
	// determinism-lint alias, whose -allow flag takes free-form fragments).
	SkipStaleCheck bool
}

// Result is one Run's outcome.
type Result struct {
	// Findings are the surviving findings in (file, line, column) order.
	Findings []analyzers.Finding
	// Suppressed counts allowlisted findings.
	Suppressed int
	// Stale lists allowlist entries whose path matches no analyzed file.
	Stale []string
	// Analyzers are the analyzers that ran, in order.
	Analyzers []analyzers.Analyzer
}

// Run loads the tree under opts.Root and applies the selected analyzers.
func Run(opts Options) (*Result, error) {
	suite, err := selectAnalyzers(opts.Analyzers)
	if err != nil {
		return nil, err
	}
	fset, pkgs, err := analyzers.Load(opts.Root, analyzers.LoadConfig{IncludeTests: opts.IncludeTests})
	if err != nil {
		return nil, err
	}

	var all []analyzers.Finding
	for _, pkg := range pkgs {
		for _, a := range suite {
			all = append(all, a.Analyze(fset, pkg)...)
		}
	}
	analyzers.SortFindings(all)

	res := &Result{Analyzers: suite}
	for _, f := range all {
		if allowed(opts.Config.Allow, f) {
			res.Suppressed++
			continue
		}
		res.Findings = append(res.Findings, f)
	}

	if !opts.SkipStaleCheck {
		seen := make(map[string]bool)
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				seen[f.Path] = true
			}
		}
		for _, e := range opts.Config.Allow {
			if !pathMatchesAny(e.Path, seen) {
				res.Stale = append(res.Stale,
					fmt.Sprintf("allowlist entry %q matches no analyzed file (reason: %s)", e.Path, e.Reason))
			}
		}
		sort.Strings(res.Stale)
	}
	return res, nil
}

func allowed(entries []AllowEntry, f analyzers.Finding) bool {
	for _, e := range entries {
		if e.matches(f) {
			return true
		}
	}
	return false
}

func pathMatchesAny(frag string, files map[string]bool) bool {
	for path := range files {
		if strings.Contains(path, frag) {
			return true
		}
	}
	return false
}

// selectAnalyzers resolves names against the suite; empty selects all.
func selectAnalyzers(names []string) ([]analyzers.Analyzer, error) {
	suite := All()
	if len(names) == 0 {
		return suite, nil
	}
	byName := make(map[string]analyzers.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name()] = a
	}
	var out []analyzers.Analyzer
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("vet: unknown analyzer %q (have %s)", n, strings.Join(Names(), ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("vet: no analyzers selected")
	}
	return out, nil
}

// WriteText renders findings one per line, in the classic compiler format.
func WriteText(w io.Writer, res *Result) error {
	for _, f := range res.Findings {
		if _, err := fmt.Fprintln(w, f); err != nil {
			return err
		}
	}
	for _, s := range res.Stale {
		if _, err := fmt.Fprintln(w, "stale-allowlist:", s); err != nil {
			return err
		}
	}
	return nil
}

// jsonFinding is the stable JSON form of one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Rule     string `json:"rule"`
	Message  string `json:"message"`
}

// jsonDocument is the JSON emitter's top-level shape.
type jsonDocument struct {
	Findings []jsonFinding `json:"findings"`
	Stale    []string      `json:"stale_allowlist,omitempty"`
	Summary  struct {
		Total      int `json:"total"`
		Suppressed int `json:"suppressed"`
	} `json:"summary"`
}

// WriteJSON emits the result as an indented JSON document with stable field
// names for CI artifacts and downstream tooling.
func WriteJSON(w io.Writer, res *Result) error {
	doc := jsonDocument{Findings: []jsonFinding{}, Stale: res.Stale}
	for _, f := range res.Findings {
		doc.Findings = append(doc.Findings, jsonFinding{
			File:     filepath.ToSlash(f.Pos.Filename),
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Analyzer: f.Analyzer,
			Rule:     f.Rule,
			Message:  f.Message,
		})
	}
	doc.Summary.Total = len(res.Findings)
	doc.Summary.Suppressed = res.Suppressed
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("vet: marshal json: %w", err)
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}

// WriteSARIF emits the result as a SARIF 2.1.0 log through the shared lint
// emitter. Rule IDs are namespaced analyzer/rule; every finding is a
// warning (the driver's exit code, not the level, gates CI).
func WriteSARIF(w io.Writer, res *Result) error {
	var rules []lint.SARIFRuleDesc
	for _, a := range res.Analyzers {
		for _, r := range a.Rules() {
			rules = append(rules, lint.SARIFRuleDesc{
				ID:    a.Name() + "/" + r.ID,
				Short: r.Description,
				Full:  r.Description + " (" + a.Doc() + ")",
			})
		}
	}
	var results []lint.SARIFResultDesc
	for _, f := range res.Findings {
		results = append(results, lint.SARIFResultDesc{
			RuleID:  f.Analyzer + "/" + f.Rule,
			Level:   "warning",
			Message: f.Message,
			URI:     filepath.ToSlash(f.Pos.Filename),
			Line:    f.Pos.Line,
		})
	}
	return lint.WriteSARIFRun(w, "certchain-vet", rules, results)
}

// FindingString formats one finding in the determinism-lint legacy format
// (pos: rule: message) for the alias CLI.
func FindingString(f analyzers.Finding) string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Rule, f.Message)
}
