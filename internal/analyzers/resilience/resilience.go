// Package resilience statically enforces the conventions the fault-injection
// layer (internal/resilience) established: every network and sleep path must
// go through the seams that fault plans and retry policies wrap. A bare
// time.Sleep can't be cancelled and never appears in a fault plan; a dial or
// HTTP helper without a context can't time out under the chaos suite; and
// http.DefaultClient has no timeout at all, so a dead server hangs the
// caller forever. The chaos-equivalence suite only proves resilience for
// code that uses the seams — this analyzer proves the seams are used.
package resilience

import (
	"go/ast"
	"go/token"

	"certchains/internal/analyzers"
)

// Analyzer implements analyzers.Analyzer.
type Analyzer struct{}

// Name implements analyzers.Analyzer.
func (Analyzer) Name() string { return "resilience" }

// Doc implements analyzers.Analyzer.
func (Analyzer) Doc() string {
	return "network and sleep paths must go through internal/resilience seams (cancellable, fault-injectable)"
}

// Rules implements analyzers.Analyzer.
func (Analyzer) Rules() []analyzers.RuleDoc {
	return []analyzers.RuleDoc{
		{ID: "default-client", Description: "http.DefaultClient has no timeout and bypasses the resilience RoundTripper seam"},
		{ID: "no-context-http", Description: "context-less HTTP helper (http.Get/Post/Head/PostForm) cannot be cancelled or fault-injected"},
		{ID: "raw-dial", Description: "context-less dial (net.Dial*, tls.Dial) bypasses Plan.Dial and cannot be cancelled"},
		{ID: "raw-sleep", Description: "bare time.Sleep cannot be cancelled; use a context-aware sleep or resilience.Policy backoff"},
	}
}

// noContextHTTP are the net/http package-level helpers that build requests
// without a caller context.
var noContextHTTP = map[string]bool{
	"Get": true, "Head": true, "Post": true, "PostForm": true,
}

// rawDials are the context-less dial entry points.
var rawDials = map[string]bool{
	"Dial": true, "DialTimeout": true, "DialTCP": true, "DialUDP": true,
	"DialIP": true, "DialUnix": true,
}

// Analyze implements analyzers.Analyzer.
func (Analyzer) Analyze(fset *token.FileSet, pkg *analyzers.Package) []analyzers.Finding {
	var findings []analyzers.Finding
	for _, f := range pkg.Files {
		httpPkgs := analyzers.ImportNames(f.AST, "net/http")
		netPkgs := analyzers.ImportNames(f.AST, "net")
		tlsPkgs := analyzers.ImportNames(f.AST, "crypto/tls")
		timePkgs := analyzers.ImportNames(f.AST, "time")
		report := func(pos token.Pos, rule, msg string) {
			findings = append(findings, analyzers.Finding{
				Pos:      fset.Position(pos),
				Analyzer: "resilience",
				Rule:     rule,
				Message:  msg,
			})
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if id, ok := n.X.(*ast.Ident); ok && id.Obj == nil &&
					httpPkgs[id.Name] && n.Sel.Name == "DefaultClient" {
					report(n.Pos(), "default-client",
						"http.DefaultClient has no timeout and bypasses Plan.RoundTripper; build a client with an explicit timeout or transport seam")
				}
			case *ast.CallExpr:
				if fn, ok := analyzers.PkgCall(n, httpPkgs); ok && noContextHTTP[fn] {
					report(n.Pos(), "no-context-http",
						"http."+fn+" builds a request without a context; use http.NewRequestWithContext and a client wired through internal/resilience")
				}
				if fn, ok := analyzers.PkgCall(n, netPkgs); ok && rawDials[fn] {
					report(n.Pos(), "raw-dial",
						"net."+fn+" cannot be cancelled; use net.Dialer.DialContext wrapped by resilience.Plan.Dial")
				}
				if fn, ok := analyzers.PkgCall(n, tlsPkgs); ok && fn == "Dial" {
					report(n.Pos(), "raw-dial",
						"tls.Dial cannot be cancelled; use tls.Dialer.DialContext over a resilience-wrapped net dialer")
				}
				if fn, ok := analyzers.PkgCall(n, timePkgs); ok && fn == "Sleep" {
					report(n.Pos(), "raw-sleep",
						"bare time.Sleep cannot be cancelled and never appears in a fault plan; use a context-aware sleep or resilience.Policy backoff")
				}
			}
			return true
		})
	}
	analyzers.SortFindings(findings)
	return findings
}
