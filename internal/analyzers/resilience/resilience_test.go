package resilience_test

import (
	"path/filepath"
	"testing"

	"certchains/internal/analyzers/analyzertest"
	"certchains/internal/analyzers/resilience"
)

func TestRawNetworkAndSleep(t *testing.T) {
	got := analyzertest.Findings(t, resilience.Analyzer{}, filepath.Join("testdata", "raw"))
	analyzertest.Expect(t, got, []string{
		"raw.go:12 resilience/no-context-http",
		"raw.go:13 resilience/default-client",
		"raw.go:14 resilience/raw-dial",
		"raw.go:15 resilience/raw-dial",
		"raw.go:16 resilience/raw-sleep",
	})
}

func TestSeamedCodeIsClean(t *testing.T) {
	got := analyzertest.Findings(t, resilience.Analyzer{}, filepath.Join("testdata", "seamed"))
	analyzertest.Expect(t, got, nil)
}
