// Negative fixture: the sanctioned shapes — context-aware requests, an
// explicit client, dialers with contexts, and shadowed package names.
package fixture

import (
	"context"
	"net"
	"net/http"
	"time"
)

var client = &http.Client{Timeout: 5 * time.Second}

func seamed(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://example.test/", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()

	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", "example.test:443")
	if err != nil {
		return err
	}
	defer conn.Close()

	// A local named like the package must not be mistaken for it.
	type sleeper struct{}
	time := struct{ Sleep func(any) }{Sleep: func(any) {}}
	time.Sleep(sleeper{})
	return nil
}
