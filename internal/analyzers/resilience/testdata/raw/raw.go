// Positive fixture: every raw network/sleep form the rules flag.
package fixture

import (
	"crypto/tls"
	"net"
	"net/http"
	"time"
)

func raw() {
	_, _ = http.Get("http://example.test/")
	_ = http.DefaultClient
	_, _ = net.Dial("tcp", "example.test:443")
	_, _ = tls.Dial("tcp", "example.test:443", nil)
	time.Sleep(time.Second)
}
