package analyzers_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"certchains/internal/analyzers"
)

// writeTree lays out a small source tree exercising the walk rules.
func writeTree(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"a.go":                "package a\n",
		"a_test.go":           "package a\n",
		"sub/b.go":            "package sub\n",
		"sub/b2.go":           "package sub\n",
		"sub/testdata/fix.go": "package broken !!!\n", // skipped: never parsed
		".hidden/h.go":        "package h\n",
		"vendor/v.go":         "package v\n",
		"sub/notgo.txt":       "not go\n",
	}
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLoadWalk(t *testing.T) {
	root := writeTree(t)
	_, pkgs, err := analyzers.Load(root, analyzers.LoadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			got = append(got, pkg.Dir+"|"+f.Path)
		}
	}
	want := []string{".|a.go", "sub|sub/b.go", "sub|sub/b2.go"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("file %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

func TestLoadIncludeTests(t *testing.T) {
	root := writeTree(t)
	_, pkgs, err := analyzers.Load(root, analyzers.LoadConfig{IncludeTests: true})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, pkg := range pkgs {
		n += len(pkg.Files)
	}
	if n != 4 {
		t.Fatalf("got %d files with tests included, want 4", n)
	}
}

func TestDirectiveParsing(t *testing.T) {
	fset := token.NewFileSet()
	src := `//certchain:hotpath decode layer

package p

type s struct {
	a int //certchain:nomerge shared config
	b int //certchain:nosnapshot
	c int // a plain comment mentioning certchain: nothing
}
`
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	if !analyzers.FileHasDirective(file, "hotpath") {
		t.Error("file-level hotpath directive not detected")
	}
	if analyzers.FileHasDirective(file, "coldpath") {
		t.Error("absent directive reported present")
	}

	var args []string
	for _, cg := range file.Comments {
		if arg, ok := analyzers.CommentHasDirective(cg, "nomerge"); ok {
			args = append(args, "nomerge="+arg)
		}
		if arg, ok := analyzers.CommentHasDirective(cg, "nosnapshot"); ok {
			args = append(args, "nosnapshot="+arg)
		}
	}
	if len(args) != 2 || args[0] != "nomerge=shared config" || args[1] != "nosnapshot=" {
		t.Errorf("directive args: got %v", args)
	}

	lines := analyzers.DirectiveLines(fset, file, "nomerge")
	if len(lines) != 1 {
		t.Fatalf("DirectiveLines: got %v", lines)
	}
	for line := range lines {
		if !analyzers.SuppressedAt(lines, token.Position{Line: line}) ||
			!analyzers.SuppressedAt(lines, token.Position{Line: line + 1}) ||
			analyzers.SuppressedAt(lines, token.Position{Line: line + 2}) {
			t.Error("SuppressedAt must cover the directive line and the next line only")
		}
	}
}

func TestPkgCallShadowing(t *testing.T) {
	fset := token.NewFileSet()
	src := `package p

import "time"

func direct() { time.Sleep(1) }

func shadowed() {
	time := fake{}
	time.Sleep(1)
}

type fake struct{}

func (fake) Sleep(int) {}
`
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkgs := analyzers.ImportNames(file, "time")
	if !pkgs["time"] {
		t.Fatal("import name not resolved")
	}
	countSleep := 0
	ast.Inspect(file, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn, ok := analyzers.PkgCall(call, pkgs); ok && fn == "Sleep" {
				countSleep++
			}
		}
		return true
	})
	if countSleep != 1 {
		t.Fatalf("PkgCall matched %d Sleep call(s), want 1 (the shadowed call must not match)", countSleep)
	}
}
