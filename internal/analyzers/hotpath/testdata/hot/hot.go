//certchain:hotpath — fixture decode layer.

// Positive fixture: every allocation shape the ratchet flags, plus the two
// suppression forms and the elided map-index conversion.
package fixture

import "fmt"

func decodeOne(b []byte, seen map[string]int) string {
	key := string(b)         // flagged: allocates per record
	seen[string(b)]++        // not flagged: compiler elides the map-index form
	_ = fmt.Sprintf("%s", b) // flagged: per-record formatting
	bs := []byte(key)
	_ = string(bs) // flagged: conversion-declared []byte
	return key
}

func collect(lines [][]byte) []string {
	var out []string
	each(lines, func(b []byte) {
		out = append(out, string(b)) // flagged twice: append-capture and bytestring-alloc
	})
	//certchain:coldpath suppressed on the line above the statement
	_ = fmt.Sprintf("suppressed")
	_ = fmt.Errorf("suppressed too") //certchain:coldpath same-line suppression
	return out
}

//certchain:coldpath whole function is setup
func setup() string {
	return fmt.Sprintf("cold %d", 1)
}

func each(lines [][]byte, f func([]byte)) {
	for _, b := range lines {
		f(b)
	}
}
