// Negative fixture: no //certchain:hotpath directive, so the ratchet does not
// apply no matter how allocation-happy the code is.
package fixture

import "fmt"

func format(b []byte) string {
	return fmt.Sprintf("%s", string(b))
}
