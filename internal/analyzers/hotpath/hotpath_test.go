package hotpath_test

import (
	"path/filepath"
	"testing"

	"certchains/internal/analyzers/analyzertest"
	"certchains/internal/analyzers/hotpath"
)

func TestAnnotatedFileIsRatcheted(t *testing.T) {
	got := analyzertest.Findings(t, hotpath.Analyzer{}, filepath.Join("testdata", "hot"))
	analyzertest.Expect(t, got, []string{
		"hot.go:10 hotpath/bytestring-alloc",
		"hot.go:12 hotpath/fmt-alloc",
		"hot.go:14 hotpath/bytestring-alloc",
		"hot.go:21 hotpath/append-capture",
		"hot.go:21 hotpath/bytestring-alloc",
	})
}

func TestUnannotatedFileIsIgnored(t *testing.T) {
	got := analyzertest.Findings(t, hotpath.Analyzer{}, filepath.Join("testdata", "unannotated"))
	analyzertest.Expect(t, got, nil)
}
