// Package hotpath is the allocation ratchet for per-record code. Files
// annotated with a //certchain:hotpath directive (the Zeek decode layer and
// the pipeline observe stage — ~96% of wall time per BENCH_pipeline.json)
// are held to allocation discipline:
//
//   - fmt-alloc: fmt.Sprintf/Errorf/Sprint/Sprintln allocate on every call;
//     on a per-record path they dominate the profile. Cold paths (error
//     returns for malformed input, one-time setup) are annotated with
//     //certchain:coldpath on the enclosing function or the statement line.
//   - bytestring-alloc: string(b) over a []byte allocates and copies. The
//     one free form — a conversion used directly as a map index, which the
//     compiler elides — is not flagged.
//   - append-capture: append to a slice captured from an enclosing function
//     inside a closure regrows the captured backing array per call; hot
//     loops should preallocate or pass the slice explicitly.
//
// The directive makes the ratchet opt-in and reviewable: annotating a file
// hotpath is a statement that its allocations are budgeted, and the analyzer
// keeps that statement true as the code evolves.
package hotpath

import (
	"go/ast"
	"go/token"

	"certchains/internal/analyzers"
)

// Analyzer implements analyzers.Analyzer.
type Analyzer struct{}

// Name implements analyzers.Analyzer.
func (Analyzer) Name() string { return "hotpath" }

// Doc implements analyzers.Analyzer.
func (Analyzer) Doc() string {
	return "allocation ratchet for //certchain:hotpath files (per-record fmt, []byte→string, closure append)"
}

// Rules implements analyzers.Analyzer.
func (Analyzer) Rules() []analyzers.RuleDoc {
	return []analyzers.RuleDoc{
		{ID: "fmt-alloc", Description: "fmt formatting on a hot path allocates per record; move to a cold path or build bytes directly"},
		{ID: "bytestring-alloc", Description: "[]byte→string conversion allocates and copies; keep bytes or index maps with m[string(b)] directly"},
		{ID: "append-capture", Description: "append to a captured slice inside a closure regrows the backing array per call"},
	}
}

// fmtAlloc are the fmt functions that allocate a fresh string/error per call.
var fmtAlloc = map[string]bool{
	"Sprintf": true, "Errorf": true, "Sprint": true, "Sprintln": true,
}

// Analyze implements analyzers.Analyzer.
func (Analyzer) Analyze(fset *token.FileSet, pkg *analyzers.Package) []analyzers.Finding {
	var findings []analyzers.Finding
	for _, f := range pkg.Files {
		if !analyzers.FileHasDirective(f.AST, "hotpath") {
			continue
		}
		findings = append(findings, analyzeFile(fset, f.AST)...)
	}
	analyzers.SortFindings(findings)
	return findings
}

func analyzeFile(fset *token.FileSet, file *ast.File) []analyzers.Finding {
	cold := analyzers.DirectiveLines(fset, file, "coldpath")
	fmtPkgs := analyzers.ImportNames(file, "fmt")
	byteSlices := collectByteSliceIdents(file)
	var findings []analyzers.Finding
	report := func(pos token.Pos, rule, msg string) {
		p := fset.Position(pos)
		if analyzers.SuppressedAt(cold, p) {
			return
		}
		findings = append(findings, analyzers.Finding{
			Pos: p, Analyzer: "hotpath", Rule: rule, Message: msg,
		})
	}

	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if _, isCold := analyzers.CommentHasDirective(fd.Doc, "coldpath"); isCold {
			continue
		}
		// funcLits tracks enclosing function literals for capture analysis.
		var funcLits []*ast.FuncLit
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				funcLits = append(funcLits, n)
				ast.Inspect(n.Body, walk)
				funcLits = funcLits[:len(funcLits)-1]
				return false
			case *ast.CallExpr:
				if fn, ok := analyzers.PkgCall(n, fmtPkgs); ok && fmtAlloc[fn] {
					report(n.Pos(), "fmt-alloc",
						"fmt."+fn+" allocates per call on a hot path; move to a cold path (//certchain:coldpath) or build bytes directly")
				}
				checkAppendCapture(n, funcLits, report)
				checkByteString(n, byteSlices, report)
			case *ast.IndexExpr:
				// m[string(b)] is compiler-elided: walk the map expression but
				// skip the index conversion itself.
				ast.Inspect(n.X, walk)
				if call, ok := n.Index.(*ast.CallExpr); ok && isStringConv(call) {
					for _, a := range call.Args {
						ast.Inspect(a, walk)
					}
					return false
				}
				ast.Inspect(n.Index, walk)
				return false
			}
			return true
		}
		ast.Inspect(fd.Body, walk)
	}
	return findings
}

// isStringConv reports a call of the form string(x).
func isStringConv(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "string" && len(call.Args) == 1
}

// checkByteString flags string(b) where b provably holds a []byte.
func checkByteString(call *ast.CallExpr, byteSlices map[*ast.Object]bool, report func(token.Pos, string, string)) {
	if !isStringConv(call) {
		return
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok || id.Obj == nil || !byteSlices[id.Obj] {
		return
	}
	report(call.Pos(), "bytestring-alloc",
		"string("+id.Name+") allocates and copies on a hot path; keep bytes, intern, or index maps with m[string(b)] directly")
}

// checkAppendCapture flags append(x, ...) inside a closure when x is declared
// outside the innermost function literal.
func checkAppendCapture(call *ast.CallExpr, funcLits []*ast.FuncLit, report func(token.Pos, string, string)) {
	if len(funcLits) == 0 || len(call.Args) == 0 {
		return
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || fn.Obj != nil {
		return
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok || id.Obj == nil {
		return
	}
	decl, ok := id.Obj.Decl.(ast.Node)
	if !ok {
		return
	}
	innermost := funcLits[len(funcLits)-1]
	if decl.Pos() >= innermost.Pos() && decl.End() <= innermost.End() {
		return // declared inside the closure — not a capture
	}
	report(call.Pos(), "append-capture",
		"append to captured slice "+id.Name+" inside a closure regrows the backing array per call; preallocate or pass the slice explicitly")
}

// collectByteSliceIdents gathers identifiers whose declaration proves []byte:
// `var b []byte`, `b := []byte(...)`, `b := make([]byte, ...)`, and []byte
// parameters/results.
func collectByteSliceIdents(file *ast.File) map[*ast.Object]bool {
	out := make(map[*ast.Object]bool)
	mark := func(id *ast.Ident) {
		if id != nil && id.Obj != nil {
			out[id.Obj] = true
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			if isByteSliceType(n.Type) {
				for _, id := range n.Names {
					mark(id)
				}
			}
			for i, v := range n.Values {
				if i < len(n.Names) && isByteSliceExpr(v) {
					mark(n.Names[i])
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) || !isByteSliceExpr(rhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					mark(id)
				}
			}
		case *ast.Field:
			if isByteSliceType(n.Type) {
				for _, id := range n.Names {
					mark(id)
				}
			}
		}
		return true
	})
	return out
}

// isByteSliceType matches the literal type []byte.
func isByteSliceType(e ast.Expr) bool {
	arr, ok := e.(*ast.ArrayType)
	if !ok || arr.Len != nil {
		return false
	}
	id, ok := arr.Elt.(*ast.Ident)
	return ok && id.Name == "byte"
}

// isByteSliceExpr matches expressions that evidently yield []byte:
// []byte(...), make([]byte, ...), or append over a known byte slice is not
// needed — conversions and make cover the decode layer's idiom.
func isByteSliceExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		if isByteSliceType(e.Fun) {
			return true
		}
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
			return isByteSliceType(e.Args[0])
		}
	case *ast.CompositeLit:
		return isByteSliceType(e.Type)
	}
	return false
}
