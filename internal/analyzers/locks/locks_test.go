package locks_test

import (
	"path/filepath"
	"testing"

	"certchains/internal/analyzers/analyzertest"
	"certchains/internal/analyzers/locks"
)

func TestBlockingUnderLock(t *testing.T) {
	got := analyzertest.Findings(t, locks.Analyzer{}, filepath.Join("testdata", "bad"))
	analyzertest.Expect(t, got, []string{
		"bad.go:18 locks/held-across-block",
		"bad.go:25 locks/held-across-block",
		"bad.go:30 locks/held-across-block",
		"bad.go:31 locks/held-across-block",
		"bad.go:32 locks/held-across-block",
		"bad.go:43 locks/defer-unlock-loop",
		"bad.go:44 locks/held-across-block",
	})
}

func TestDisciplinedLockingIsClean(t *testing.T) {
	got := analyzertest.Findings(t, locks.Analyzer{}, filepath.Join("testdata", "good"))
	analyzertest.Expect(t, got, nil)
}
