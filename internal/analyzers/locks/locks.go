// Package locks statically checks mutex discipline in the concurrent layers
// (worker pools, the metrics registry, the ingest daemon):
//
//   - held-across-block: between mu.Lock() and the matching mu.Unlock() in
//     the same statement list (or to the end of the function after a
//     `defer mu.Unlock()`), a channel send/receive, select, WaitGroup.Wait,
//     or time.Sleep executes while the lock is held. If the channel peer
//     needs the same lock, that's a deadlock; even when it isn't, a blocked
//     send serializes every other lock holder behind it.
//   - defer-unlock-loop: `defer mu.Unlock()` inside a loop body only runs at
//     function return, so the second iteration self-deadlocks (or, with
//     different locks, the function accumulates every lock at once).
//
// The analysis is straight-line and syntactic: it tracks lock/unlock pairs
// by the rendered receiver expression ("mu", "r.mu") within one block, which
// is exactly the shape every accumulator and registry in this repo uses.
// Flow through gotos, early returns, or lock handles passed between
// functions is out of scope.
package locks

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"certchains/internal/analyzers"
)

// isWaitGroupRecv matches receivers that look like a sync.WaitGroup ("wg",
// "waitGroup", trailing "WG", ...) by name — the analyzer is untyped, and
// WaitGroups in this repo are uniformly named wg.
func isWaitGroupRecv(e ast.Expr) bool {
	name := analyzers.ExprString(e)
	if i := strings.LastIndex(name, "."); i >= 0 {
		name = name[i+1:]
	}
	lower := strings.ToLower(name)
	return lower == "wg" || strings.HasSuffix(lower, "wg") || strings.Contains(lower, "waitgroup")
}

// Analyzer implements analyzers.Analyzer.
type Analyzer struct{}

// Name implements analyzers.Analyzer.
func (Analyzer) Name() string { return "locks" }

// Doc implements analyzers.Analyzer.
func (Analyzer) Doc() string {
	return "no blocking operations while holding a mutex; no defer mu.Unlock() inside loops"
}

// Rules implements analyzers.Analyzer.
func (Analyzer) Rules() []analyzers.RuleDoc {
	return []analyzers.RuleDoc{
		{ID: "held-across-block", Description: "channel operation, select, Wait, or sleep while a mutex is held"},
		{ID: "defer-unlock-loop", Description: "defer mu.Unlock() inside a loop runs only at function return; the next iteration deadlocks"},
	}
}

// Analyze implements analyzers.Analyzer.
func (Analyzer) Analyze(fset *token.FileSet, pkg *analyzers.Package) []analyzers.Finding {
	var findings []analyzers.Finding
	for _, f := range pkg.Files {
		timePkgs := analyzers.ImportNames(f.AST, "time")
		a := &checker{fset: fset, timePkgs: timePkgs}
		for _, decl := range f.AST.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				a.checkFunc(fd)
			}
		}
		findings = append(findings, a.findings...)
	}
	analyzers.SortFindings(findings)
	return findings
}

type checker struct {
	fset     *token.FileSet
	timePkgs map[string]bool
	findings []analyzers.Finding
}

func (c *checker) report(pos token.Pos, rule, msg string) {
	c.findings = append(c.findings, analyzers.Finding{
		Pos:      c.fset.Position(pos),
		Analyzer: "locks",
		Rule:     rule,
		Message:  msg,
	})
}

// lockCall matches x.Lock()/x.RLock()/x.Unlock()/x.RUnlock() statements,
// returning the rendered receiver and whether it acquires.
func lockCall(stmt ast.Stmt) (recv string, acquire, release bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", false, false
	}
	return lockExpr(es.X)
}

func lockExpr(e ast.Expr) (recv string, acquire, release bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", false, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return analyzers.ExprString(sel.X), true, false
	case "Unlock", "RUnlock":
		return analyzers.ExprString(sel.X), false, true
	}
	return "", false, false
}

// checkFunc walks one function's blocks.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	// Every block (including closure bodies) gets its own straight-line scan;
	// lock state does not flow across block boundaries.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BlockStmt); ok {
			c.checkBlock(b)
		}
		return true
	})
	// defer-unlock-loop: any defer of *.Unlock() with a loop ancestor.
	var loopDepth int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
			ast.Inspect(loopBody(n), walk)
			loopDepth--
			return false
		case *ast.DeferStmt:
			if _, _, release := lockExpr(n.Call); release && loopDepth > 0 {
				c.report(n.Pos(), "defer-unlock-loop",
					"defer "+analyzers.ExprString(n.Call.Fun)+" inside a loop runs only at function return; unlock explicitly at the end of the iteration")
			}
		case *ast.FuncLit:
			// A closure body is its own function: defers there run when the
			// closure returns, so a loop around the closure is fine.
			saved := loopDepth
			loopDepth = 0
			ast.Inspect(n.Body, walk)
			loopDepth = saved
			return false
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

func loopBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return nil
}

// checkBlock scans one statement list tracking which lock receivers are
// held. A lock released by `defer` stays held through the end of the block.
// Statements executed while a lock is held are inspected (nested statements
// included) for blocking operations; nested blocks that take their own locks
// are scanned separately by checkFunc's walk, so each finding reports once.
func (c *checker) checkBlock(block *ast.BlockStmt) {
	held := map[string]bool{} // receiver -> locked at this point
	for _, stmt := range block.List {
		if recv, acquire, release := lockCall(stmt); recv != "" && (acquire || release) {
			if acquire {
				held[recv] = true
			} else {
				delete(held, recv)
			}
			continue
		}
		if _, ok := stmt.(*ast.DeferStmt); ok {
			// defer mu.Unlock() keeps the lock held to the end of the
			// function; the straight-line scan treats it as held to the end
			// of the block, which is the same set of statements.
			continue
		}
		if len(held) > 0 {
			c.checkStmtBlocking(stmt, heldNames(held))
		}
	}
}

// heldNames renders the currently held receivers for messages,
// deterministically ordered.
func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for r := range held {
		names = append(names, r)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// checkStmtBlocking reports blocking operations within one statement while
// locks are held. Function literals are skipped: goroutines launched under a
// lock run after Unlock in the common case, and flow into them is beyond the
// straight-line model.
func (c *checker) checkStmtBlocking(stmt ast.Stmt, lockDesc string) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			c.report(n.Pos(), "held-across-block",
				"channel send while holding "+lockDesc+"; a blocked receiver stalls every other lock holder")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.report(n.Pos(), "held-across-block",
					"channel receive while holding "+lockDesc+"; a silent sender stalls every other lock holder")
			}
		case *ast.SelectStmt:
			c.report(n.Pos(), "held-across-block",
				"select while holding "+lockDesc+"; any blocked case stalls every other lock holder")
			return false
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" && isWaitGroupRecv(sel.X) {
				// Only WaitGroup-shaped receivers: sync.Cond.Wait must hold
				// the lock, and exec.Cmd.Wait has nothing to do with mutexes.
				c.report(n.Pos(), "held-across-block",
					analyzers.ExprString(sel.X)+".Wait() while holding "+lockDesc+"; workers that need the lock before Done() deadlock")
			}
			if fn, ok := analyzers.PkgCall(n, c.timePkgs); ok && fn == "Sleep" {
				c.report(n.Pos(), "held-across-block",
					"time.Sleep while holding "+lockDesc+"; every other lock holder sleeps too")
			}
		}
		return true
	})
}
