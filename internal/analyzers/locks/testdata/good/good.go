// Negative fixture: disciplined locking — short critical sections, channel
// work outside the lock, sync.Cond (which must hold its lock across Wait),
// and per-iteration closures whose defers run every iteration.
package fixture

import "sync"

type box struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
	ch   chan int
}

func (b *box) bump() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	b.ch <- b.n
}

func (b *box) deferred() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

func (b *box) waitCond() {
	b.mu.Lock()
	for b.n == 0 {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

func (b *box) perIteration(keys []int) {
	for range keys {
		func() {
			b.mu.Lock()
			defer b.mu.Unlock()
			b.n++
		}()
	}
}
