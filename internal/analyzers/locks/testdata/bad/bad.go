// Positive fixture: blocking operations under a mutex and a deferred unlock
// inside a loop.
package fixture

import (
	"sync"
	"time"
)

type pool struct {
	mu sync.Mutex
	wg sync.WaitGroup
	ch chan int
}

func (p *pool) sendHeld() {
	p.mu.Lock()
	p.ch <- 1 // flagged: send while holding p.mu
	p.mu.Unlock()
}

func (p *pool) recvDeferred() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return <-p.ch // flagged: receive while p.mu is defer-held
}

func (p *pool) waitAndSleepHeld() {
	p.mu.Lock()
	p.wg.Wait()             // flagged: WaitGroup wait under p.mu
	time.Sleep(time.Second) // flagged: sleep under p.mu
	select {
	case v := <-p.ch:
		_ = v
	default:
	}
	p.mu.Unlock()
}

func (p *pool) deferInLoop(keys []int) {
	for range keys {
		p.mu.Lock()
		defer p.mu.Unlock() // flagged: runs only at function return
		p.ch <- 2           // flagged: send while p.mu defer-held
	}
}
