// Package analyzertest runs analyzers over golden fixture trees for the
// per-analyzer diagnostics tests. Fixtures live in each analyzer's
// testdata/<case>/ directory — outside the loader's normal walk (Load skips
// directories named testdata), so fixture violations never pollute a real
// repo run, while rooting a Load at the case directory itself analyzes them.
package analyzertest

import (
	"fmt"
	"sort"
	"testing"

	"certchains/internal/analyzers"
)

// Findings runs one analyzer over the tree rooted at root and renders every
// finding as "path:line analyzer/rule", sorted.
func Findings(t *testing.T, a analyzers.Analyzer, root string) []string {
	t.Helper()
	fset, pkgs, err := analyzers.Load(root, analyzers.LoadConfig{})
	if err != nil {
		t.Fatalf("load %s: %v", root, err)
	}
	var out []string
	for _, pkg := range pkgs {
		for _, f := range a.Analyze(fset, pkg) {
			out = append(out, fmt.Sprintf("%s:%d %s/%s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Rule))
		}
	}
	sort.Strings(out)
	return out
}

// Expect fails the test unless got matches want exactly.
func Expect(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d finding(s), want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("finding %d: got %q, want %q", i, got[i], want[i])
		}
	}
}
