package serverfarm

import (
	"crypto/tls"
	"sync"
	"testing"
	"time"

	"certchains/internal/pki"
)

func mintChain(t *testing.T, cn string) []*pki.Certificate {
	t.Helper()
	m := pki.NewMint(time.Now().UnixNano(), time.Now())
	root, err := m.NewRoot(pki.Name("SF Root"))
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := root.IssueLeaf(pki.Name(cn), pki.WithSANs(cn))
	if err != nil {
		t.Fatal(err)
	}
	return pki.Chain(leaf, root.Cert)
}

func TestAddAndHandshake(t *testing.T) {
	f := New()
	defer f.Close()
	srv, err := f.Add("hs.example.test", mintChain(t, "hs.example.test"))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := tls.Dial("tcp", srv.Addr, &tls.Config{
		ServerName:         "hs.example.test",
		InsecureSkipVerify: true,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	state := conn.ConnectionState()
	if len(state.PeerCertificates) != 2 {
		t.Errorf("presented %d certs, want 2", len(state.PeerCertificates))
	}
	if state.Version != tls.VersionTLS12 {
		t.Errorf("negotiated version %x, want TLS 1.2 (the passive-vantage ceiling)", state.Version)
	}
}

func TestConcurrentHandshakes(t *testing.T) {
	f := New()
	defer f.Close()
	srv, err := f.Add("conc.example.test", mintChain(t, "conc.example.test"))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := tls.Dial("tcp", srv.Addr, &tls.Config{InsecureSkipVerify: true})
			if err != nil {
				errs <- err
				return
			}
			conn.Close()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent handshake: %v", err)
	}
}

func TestAddAfterClose(t *testing.T) {
	f := New()
	f.Close()
	if _, err := f.Add("late.example.test", mintChain(t, "late.example.test")); err == nil {
		t.Error("Add after Close must fail")
	}
}

func TestCloseIdempotentAndStopsServers(t *testing.T) {
	f := New()
	srv, err := f.Add("stop.example.test", mintChain(t, "stop.example.test"))
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	f.Close() // second close is a no-op
	if _, err := tls.Dial("tcp", srv.Addr, &tls.Config{InsecureSkipVerify: true}); err == nil {
		t.Error("server must be unreachable after Close")
	}
}

func TestServersSnapshotIsolated(t *testing.T) {
	f := New()
	defer f.Close()
	if _, err := f.Add("a.example.test", mintChain(t, "a.example.test")); err != nil {
		t.Fatal(err)
	}
	snap := f.Servers()
	snap[0] = nil
	if f.Servers()[0] == nil {
		t.Error("Servers must return a copy")
	}
}
