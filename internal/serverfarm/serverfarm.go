// Package serverfarm runs real TLS servers on loopback, each configured to
// present an arbitrary certificate chain — including the misconfigured
// chains the paper observes in the wild (unnecessary certificates appended,
// leaves replaced, roots included). It is the server side of the §5
// retrospective scan: internal/scanner connects with a real TLS client and
// records exactly what each server presents.
package serverfarm

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"

	"certchains/internal/pki"
)

// Server is one running TLS endpoint.
type Server struct {
	// Domain is the name the server answers for (informational; the farm
	// does not require SNI to match).
	Domain string
	// Addr is the listener address (127.0.0.1:port).
	Addr string
	// Chain is the exact certificate sequence presented.
	Chain []*pki.Certificate

	ln net.Listener
}

// Farm manages a set of servers.
type Farm struct {
	mu      sync.Mutex
	servers []*Server
	wg      sync.WaitGroup
	closed  bool
}

// New returns an empty farm.
func New() *Farm {
	return &Farm{}
}

// ErrNoLeafKey is returned when the first chain certificate has no private
// key to serve with.
var ErrNoLeafKey = errors.New("serverfarm: leaf certificate has no private key")

// Add starts a TLS server presenting the chain verbatim. The leaf (index 0)
// must carry its private key. The server accepts connections, completes the
// handshake, and closes; it exists to be scanned.
func (f *Farm) Add(domain string, chain []*pki.Certificate) (*Server, error) {
	if len(chain) == 0 {
		return nil, errors.New("serverfarm: empty chain")
	}
	if chain[0].Key == nil {
		return nil, ErrNoLeafKey
	}
	raw := make([][]byte, len(chain))
	for i, c := range chain {
		raw[i] = c.Raw
	}
	cert := tls.Certificate{
		Certificate: raw,
		PrivateKey:  chain[0].Key,
		Leaf:        chain[0].X509,
	}
	cfg := &tls.Config{
		Certificates: []tls.Certificate{cert},
		MinVersion:   tls.VersionTLS12,
		// TLS 1.2 ceiling: the paper's passive vantage cannot observe
		// TLS 1.3 certificates (§6.3), and the scanner mirrors an
		// OpenSSL-era client.
		MaxVersion: tls.VersionTLS12,
	}
	ln, err := tls.Listen("tcp", "127.0.0.1:0", cfg)
	if err != nil {
		return nil, fmt.Errorf("serverfarm: listen: %w", err)
	}
	s := &Server{Domain: domain, Addr: ln.Addr().String(), Chain: chain, ln: ln}

	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		ln.Close()
		return nil, errors.New("serverfarm: farm is closed")
	}
	f.servers = append(f.servers, s)
	f.mu.Unlock()

	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			f.wg.Add(1)
			go func(c net.Conn) {
				defer f.wg.Done()
				defer c.Close()
				if tc, ok := c.(*tls.Conn); ok {
					// Complete the handshake so the client receives the
					// chain even if it never writes.
					_ = tc.HandshakeContext(context.Background())
				}
			}(conn)
		}
	}()
	return s, nil
}

// Servers returns the running servers.
func (f *Farm) Servers() []*Server {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*Server(nil), f.servers...)
}

// Lookup returns the server for a domain, if any.
func (f *Farm) Lookup(domain string) (*Server, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, s := range f.servers {
		if s.Domain == domain {
			return s, true
		}
	}
	return nil, false
}

// Close stops every server and waits for handlers to finish.
func (f *Farm) Close() {
	f.mu.Lock()
	f.closed = true
	servers := append([]*Server(nil), f.servers...)
	f.mu.Unlock()
	for _, s := range servers {
		s.ln.Close()
	}
	f.wg.Wait()
}
