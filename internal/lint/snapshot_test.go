package lint

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestCorpusSnapshotRoundTrip(t *testing.T) {
	l := testLinter(t)
	c := NewCorpusReport(l)
	for i, ch := range corpusChains() {
		c.Observe(ch, int64(10*(i+1)))
	}

	data, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap CorpusSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	r := CorpusFromSnapshot(l, &snap)
	if !reflect.DeepEqual(r.Summarize(), c.Summarize()) {
		t.Fatal("summary differs after round trip")
	}

	// A restored accumulator keeps observing and merging like the original:
	// re-observing a restored chain must hit the chain-key cache, and fresh
	// chains must fold in identically.
	chains := corpusChains()
	r.Observe(chains[0], 5)
	c.Observe(chains[0], 5)
	other := NewCorpusReport(l)
	other.Observe(chains[2], 7)
	r.Merge(other)
	c.Merge(other)
	if !reflect.DeepEqual(r.Summarize(), c.Summarize()) {
		t.Fatal("restored accumulator diverges after further observations")
	}
	// Snapshots of equal accumulators must serialize identically (JSON map
	// keys are sorted), which the on-disk ring codec relies on.
	a, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("snapshot encoding not canonical")
	}
}

func TestCorpusSnapshotEmpty(t *testing.T) {
	l := testLinter(t)
	r := CorpusFromSnapshot(l, nil)
	if !reflect.DeepEqual(r.Summarize(), NewCorpusReport(l).Summarize()) {
		t.Fatal("nil snapshot should restore an empty accumulator")
	}
}
