package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// emitFinding is the stable JSON form of one finding.
type emitFinding struct {
	Check     string `json:"check"`
	Severity  string `json:"severity"`
	CertIndex int    `json:"cert_index"`
	Message   string `json:"message"`
}

// emitDocument is the JSON emitter's top-level shape.
type emitDocument struct {
	Findings []emitFinding `json:"findings"`
	Summary  emitSummary   `json:"summary"`
}

type emitSummary struct {
	Info  int `json:"info"`
	Warn  int `json:"warn"`
	Error int `json:"error"`
}

// WriteJSON emits findings as an indented JSON document with stable field
// names, for downstream tooling. Findings keep their (already deterministic)
// order.
func WriteJSON(w io.Writer, findings []Finding) error {
	doc := emitDocument{Findings: []emitFinding{}}
	for _, f := range findings {
		doc.Findings = append(doc.Findings, emitFinding{
			Check:     f.Check,
			Severity:  f.Severity.String(),
			CertIndex: f.CertIndex,
			Message:   f.Message,
		})
	}
	doc.Summary.Info, doc.Summary.Warn, doc.Summary.Error = Summary(findings)
	return writeIndented(w, doc, "json")
}

// SARIF 2.1.0 structures — only the subset the emitter populates.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	FullDescription  sarifMessage `json:"fullDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

// sarifLevel maps a severity to the SARIF result level vocabulary.
func sarifLevel(s Severity) string {
	switch s {
	case Info:
		return "note"
	case Warn:
		return "warning"
	default:
		return "error"
	}
}

// SARIFRuleDesc describes one rule for WriteSARIFRun.
type SARIFRuleDesc struct {
	// ID is the stable rule identifier.
	ID string
	// Short is the one-line rule description.
	Short string
	// Full is the long description; empty falls back to Short.
	Full string
}

// SARIFResultDesc describes one result for WriteSARIFRun.
type SARIFResultDesc struct {
	// RuleID names the violated rule.
	RuleID string
	// Level is the SARIF level vocabulary: "note", "warning", or "error".
	Level string
	// Message explains the violation.
	Message string
	// URI locates the artifact (a file path or logical artifact name).
	URI string
	// Line is the 1-based region start; 0 emits no region.
	Line int
}

// WriteSARIFRun emits one SARIF 2.1.0 run for any tool — the shared emitter
// behind certchain-lint's chain reports and certchain-vet's static-analysis
// findings.
func WriteSARIFRun(w io.Writer, toolName string, rules []SARIFRuleDesc, results []SARIFResultDesc) error {
	driver := sarifDriver{Name: toolName, Rules: []sarifRule{}}
	for _, r := range rules {
		full := r.Full
		if full == "" {
			full = r.Short
		}
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               r.ID,
			ShortDescription: sarifMessage{Text: r.Short},
			FullDescription:  sarifMessage{Text: full},
		})
	}
	out := []sarifResult{}
	for _, r := range results {
		res := sarifResult{
			RuleID:  r.RuleID,
			Level:   r.Level,
			Message: sarifMessage{Text: r.Message},
		}
		phys := sarifPhysical{ArtifactLocation: sarifArtifact{URI: r.URI}}
		if r.Line > 0 {
			phys.Region = &sarifRegion{StartLine: r.Line}
		}
		res.Locations = []sarifLocation{{PhysicalLocation: phys}}
		out = append(out, res)
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: out}},
	}
	return writeIndented(w, log, "sarif")
}

// WriteSARIF emits findings as a SARIF 2.1.0 log. The linter's enabled
// checks become the tool's rule set (one rule per check, with description
// and citation), and each finding becomes a result located at the offending
// certificate position within the named artifact (line = position + 1;
// chain-level findings carry no region).
func WriteSARIF(w io.Writer, l *Linter, artifact string, findings []Finding) error {
	if artifact == "" {
		artifact = "chain"
	}
	rules := make([]SARIFRuleDesc, 0, len(l.EnabledChecks()))
	for _, c := range l.EnabledChecks() {
		rules = append(rules, SARIFRuleDesc{
			ID:    c.ID,
			Short: c.Description,
			Full:  c.Description + " (" + c.Citation + ")",
		})
	}
	results := make([]SARIFResultDesc, 0, len(findings))
	for _, f := range findings {
		r := SARIFResultDesc{
			RuleID:  f.Check,
			Level:   sarifLevel(f.Severity),
			Message: f.Message,
			URI:     artifact,
		}
		if f.CertIndex >= 0 {
			r.Line = f.CertIndex + 1
		}
		results = append(results, r)
	}
	return WriteSARIFRun(w, "certchain-lint", rules, results)
}

func writeIndented(w io.Writer, v any, kind string) error {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("lint: marshal %s: %w", kind, err)
	}
	out = append(out, '\n')
	if _, err := w.Write(out); err != nil {
		return fmt.Errorf("lint: write %s: %w", kind, err)
	}
	return nil
}
