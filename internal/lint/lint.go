// Package lint checks individual certificates and delivered chains against
// the deployment hygiene the paper's findings motivate — a minimal,
// log-level zlint analog. Each lint corresponds to a concrete observation in
// the paper:
//
//   - basicConstraints omission (§4.3's 55–78%);
//   - expired leaves served in production (§4.2's >5-year case);
//   - staging placeholders in production chains (the 14 Fake LE chains);
//   - roots included in delivery (Figure 1's root-omission norm);
//   - unnecessary certificates (§4.2's central finding);
//   - self-signed leaves claiming public domains (Appendix B);
//   - missing SANs (modern clients ignore the CN);
//   - excessive validity periods;
//   - the localhost placeholder subject (Appendix F.3's 100 chains).
package lint

import (
	"fmt"
	"strings"
	"time"

	"certchains/internal/certmodel"
	"certchains/internal/chain"
)

// Severity grades a finding.
type Severity int

const (
	// Info findings are observations, not problems.
	Info Severity = iota
	// Warn findings degrade interoperability or efficiency.
	Warn
	// Error findings are likely to break validation for some clients.
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warn:
		return "warn"
	default:
		return "error"
	}
}

// Finding is one lint result.
type Finding struct {
	// Check is the stable identifier of the lint.
	Check string
	// Severity grades the finding.
	Severity Severity
	// CertIndex is the offending certificate's position in the chain, or
	// -1 for chain-level findings.
	CertIndex int
	// Message explains the finding.
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s: %s", f.Severity, f.Check, f.Message)
}

// Config parameterizes the linter.
type Config struct {
	// Now is the reference time for validity checks.
	Now time.Time
	// MaxLeafValidity flags leaves valid longer than this (default 825
	// days, the ecosystem's pre-2020 ceiling).
	MaxLeafValidity time.Duration
}

// Linter runs the checks; the classifier supplies class and structure
// context.
type Linter struct {
	cfg Config
	cl  *chain.Classifier
}

// New builds a linter. A zero Now defaults to the wall clock.
func New(cl *chain.Classifier, cfg Config) *Linter {
	if cfg.Now.IsZero() {
		cfg.Now = time.Now()
	}
	if cfg.MaxLeafValidity == 0 {
		cfg.MaxLeafValidity = 825 * 24 * time.Hour
	}
	return &Linter{cfg: cfg, cl: cl}
}

// Cert lints one certificate in isolation (position -1).
func (l *Linter) Cert(m *certmodel.Meta) []Finding {
	return l.lintCert(m, -1, false)
}

func (l *Linter) lintCert(m *certmodel.Meta, idx int, isLeafPosition bool) []Finding {
	var out []Finding
	add := func(check string, sev Severity, format string, args ...any) {
		out = append(out, Finding{Check: check, Severity: sev, CertIndex: idx,
			Message: fmt.Sprintf(format, args...)})
	}

	if m.BC == certmodel.BCAbsent {
		add("basic-constraints-absent", Warn,
			"basicConstraints extension missing; RFC 5280 requires an explicit CA boolean")
	}
	if m.ExpiredAt(l.cfg.Now) {
		sev := Warn
		if isLeafPosition {
			sev = Error
		}
		add("expired", sev, "certificate expired %s", m.NotAfter.Format("2006-01-02"))
	}
	if l.cfg.Now.Before(m.NotBefore) {
		add("not-yet-valid", Error, "certificate not valid before %s", m.NotBefore.Format("2006-01-02"))
	}
	if isLeafPosition {
		if len(m.SAN) == 0 && !m.SelfSigned() {
			add("missing-san", Warn, "leaf has no subjectAltName; modern clients ignore the CN")
		}
		if v := m.NotAfter.Sub(m.NotBefore); v > l.cfg.MaxLeafValidity {
			add("validity-too-long", Warn, "leaf valid %d days, over the %d-day ceiling",
				int(v.Hours()/24), int(l.cfg.MaxLeafValidity.Hours()/24))
		}
		if m.BC == certmodel.BCTrue {
			add("ca-leaf", Error, "leaf-position certificate asserts CA=TRUE")
		}
	}
	if isLocalhostPlaceholder(m) {
		add("localhost-placeholder", Error,
			"default localhost placeholder subject served in production")
	}
	if isStagingPlaceholder(m) {
		add("staging-placeholder", Error,
			"CA staging-environment certificate (%q) deployed in production", m.Subject.CommonName())
	}
	return out
}

func isLocalhostPlaceholder(m *certmodel.Meta) bool {
	return strings.EqualFold(m.Subject.CommonName(), "localhost")
}

func isStagingPlaceholder(m *certmodel.Meta) bool {
	cn := m.Subject.CommonName()
	icn := m.Issuer.CommonName()
	return strings.HasPrefix(cn, "Fake LE ") || strings.HasPrefix(icn, "Fake LE ") ||
		strings.Contains(cn, "STAGING") || strings.Contains(icn, "STAGING")
}

// Chain lints a delivered chain: per-certificate checks plus the structural
// findings the paper ties to connection failures.
func (l *Linter) Chain(ch certmodel.Chain) []Finding {
	var out []Finding
	a := l.cl.Analyze(ch)

	for i, m := range ch {
		isLeafPos := i == 0 && len(ch) > 1 && chain.IsLeaf(ch, 0)
		if len(ch) == 1 {
			isLeafPos = true
		}
		out = append(out, l.lintCert(m, i, isLeafPos)...)
	}

	addChain := func(check string, sev Severity, format string, args ...any) {
		out = append(out, Finding{Check: check, Severity: sev, CertIndex: -1,
			Message: fmt.Sprintf(format, args...)})
	}

	switch {
	case a.Verdict == chain.VerdictNoPath:
		addChain("no-trust-path", Error,
			"no complete matched path; clients validating the presented chain will fail (establishment drops to ≈57%%)")
	case a.Verdict == chain.VerdictContainsPath:
		addChain("unnecessary-certificates", Warn,
			"%d unnecessary certificate(s); strict validators may reject and every handshake carries dead bytes",
			len(a.Unnecessary))
	}
	if a.Complete != nil && a.Complete.Len() > 1 {
		top := ch[a.Complete.End]
		if top.SelfSigned() {
			addChain("root-included", Info,
				"self-signed root %q included in delivery; clients already hold their anchors", top.Subject.CommonName())
		}
	}
	for i, link := range a.Links {
		if link == chain.LinkCrossSign {
			addChain("cross-signed-link", Info,
				"pair %d chains through a cross-signing relationship; verify both paths stay valid", i)
		}
	}
	return out
}

// Summary tallies findings by severity.
func Summary(findings []Finding) (info, warn, errs int) {
	for _, f := range findings {
		switch f.Severity {
		case Info:
			info++
		case Warn:
			warn++
		default:
			errs++
		}
	}
	return
}
