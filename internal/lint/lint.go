// Package lint checks individual certificates and delivered chains against
// the deployment hygiene the paper's findings motivate — a log-level zlint
// analog (certificate linting is the standard Web-PKI measurement
// methodology, arXiv:2401.18053).
//
// The engine is a pluggable registry: every check is a self-describing
// Check value carrying a stable ID, a default severity, the paper citation
// that motivates it, its scope (certificate- or chain-level), and an
// optional applicability predicate. Profiles ("paper", "strict", "all")
// select which registered checks a Linter runs. Beyond single-chain
// linting, CorpusReport accumulates findings over every distinct chain of a
// whole observation corpus with a commutative Merge, so the sharded
// analysis pipeline can lint at corpus scale and reproduce the §4.3
// prevalence percentages as lint output.
package lint

import (
	"fmt"
	"sort"
	"time"

	"certchains/internal/certmodel"
	"certchains/internal/chain"
)

// Severity grades a finding.
type Severity int

const (
	// Info findings are observations, not problems.
	Info Severity = iota
	// Warn findings degrade interoperability or efficiency.
	Warn
	// Error findings are likely to break validation for some clients.
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warn:
		return "warn"
	default:
		return "error"
	}
}

// Finding is one lint result.
type Finding struct {
	// Check is the stable identifier of the lint.
	Check string
	// Severity grades the finding.
	Severity Severity
	// CertIndex is the offending certificate's position in the chain, or
	// -1 for chain-level findings.
	CertIndex int
	// Message explains the finding.
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s: %s", f.Severity, f.Check, f.Message)
}

// Config parameterizes the linter.
type Config struct {
	// Now is the reference time for validity checks.
	Now time.Time
	// MaxLeafValidity flags leaves valid longer than this (default 825
	// days, the ecosystem's pre-2020 ceiling).
	MaxLeafValidity time.Duration
	// NearExpiry flags unexpired certificates within this much of NotAfter
	// (default 30 days).
	NearExpiry time.Duration
	// Profile selects the enabled check set: ProfilePaper, ProfileStrict,
	// or ProfileAll. Empty selects ProfileAll.
	Profile string
}

// Context carries everything a check implementation may consult.
type Context struct {
	// Cfg is the linter configuration (reference time, thresholds).
	Cfg Config
	// Classifier supplies class and structure context (trust DB,
	// cross-signing registry).
	Classifier *chain.Classifier
	// Chain is the delivered chain under lint; nil when linting one
	// certificate in isolation.
	Chain certmodel.Chain
	// Analysis is the structural analysis of Chain; nil for isolated
	// certificates.
	Analysis *chain.Analysis
}

// LeafPosition reports whether pos is the delivered leaf position of the
// chain under lint. Isolated certificates (pos -1) are never leaf-position.
func (ctx *Context) LeafPosition(pos int) bool {
	if ctx.Chain == nil || pos < 0 {
		return false
	}
	return chain.IsLeafPosition(ctx.Chain, pos)
}

// Linter runs the enabled checks of a registry; the classifier supplies
// class and structure context.
type Linter struct {
	cfg     Config
	cl      *chain.Classifier
	reg     *Registry
	enabled []*Check
}

// New builds a linter over the default registry. A zero Now defaults to the
// wall clock.
func New(cl *chain.Classifier, cfg Config) *Linter {
	return NewWithRegistry(cl, DefaultRegistry(), cfg)
}

// NewWithRegistry builds a linter that runs the registry's checks enabled by
// cfg.Profile.
func NewWithRegistry(cl *chain.Classifier, reg *Registry, cfg Config) *Linter {
	if cfg.Now.IsZero() {
		cfg.Now = time.Now()
	}
	if cfg.MaxLeafValidity == 0 {
		cfg.MaxLeafValidity = 825 * 24 * time.Hour
	}
	if cfg.NearExpiry == 0 {
		cfg.NearExpiry = 30 * 24 * time.Hour
	}
	if cfg.Profile == "" {
		cfg.Profile = ProfileAll
	}
	return &Linter{cfg: cfg, cl: cl, reg: reg, enabled: reg.ProfileChecks(cfg.Profile)}
}

// Registry returns the registry backing this linter.
func (l *Linter) Registry() *Registry { return l.reg }

// EnabledChecks returns the checks the configured profile enables, sorted by
// ID.
func (l *Linter) EnabledChecks() []*Check {
	return append([]*Check(nil), l.enabled...)
}

// Config returns the effective (defaulted) configuration.
func (l *Linter) Config() Config { return l.cfg }

// Cert lints one certificate in isolation (position -1). Only
// certificate-scope checks run; chain structure is not consulted.
func (l *Linter) Cert(m *certmodel.Meta) []Finding {
	ctx := &Context{Cfg: l.cfg, Classifier: l.cl}
	var out []Finding
	for _, c := range l.enabled {
		if c.Scope != ScopeCert {
			continue
		}
		if c.Applies != nil && !c.Applies(ctx, -1) {
			continue
		}
		co := &Collector{check: c}
		c.CertFn(ctx, co, m, -1)
		out = append(out, co.out...)
	}
	sortFindings(out)
	return out
}

// Chain lints a delivered chain: per-certificate checks at every position
// plus the structural chain-level checks.
func (l *Linter) Chain(ch certmodel.Chain) []Finding {
	return l.ChainAnalyzed(ch, l.cl.Analyze(ch))
}

// ChainAnalyzed is Chain with a precomputed structural analysis — the corpus
// pass caches analyses per distinct chain and must not redo them.
func (l *Linter) ChainAnalyzed(ch certmodel.Chain, a *chain.Analysis) []Finding {
	ctx := &Context{Cfg: l.cfg, Classifier: l.cl, Chain: ch, Analysis: a}
	var out []Finding
	for _, c := range l.enabled {
		co := &Collector{check: c}
		switch c.Scope {
		case ScopeCert:
			for i, m := range ch {
				if c.Applies != nil && !c.Applies(ctx, i) {
					continue
				}
				c.CertFn(ctx, co, m, i)
			}
		case ScopeChain:
			if c.Applies != nil && !c.Applies(ctx, -1) {
				continue
			}
			c.ChainFn(ctx, co)
		}
		out = append(out, co.out...)
	}
	sortFindings(out)
	return out
}

// sortFindings orders findings deterministically — by certificate position
// (chain-level findings first), then check ID, then message — so output is
// stable regardless of check registration order.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].CertIndex != fs[j].CertIndex {
			return fs[i].CertIndex < fs[j].CertIndex
		}
		if fs[i].Check != fs[j].Check {
			return fs[i].Check < fs[j].Check
		}
		return fs[i].Message < fs[j].Message
	})
}

// Summary tallies findings by severity.
func Summary(findings []Finding) (info, warn, errs int) {
	for _, f := range findings {
		switch f.Severity {
		case Info:
			info++
		case Warn:
			warn++
		default:
			errs++
		}
	}
	return
}
