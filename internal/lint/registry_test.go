package lint

import (
	"strings"
	"testing"

	"certchains/internal/certmodel"
	"certchains/internal/chain"
	"certchains/internal/trustdb"
)

func certNop(ctx *Context, co *Collector, m *certmodel.Meta, pos int) {}
func chainNop(ctx *Context, co *Collector)                            {}

func TestRegisterValidation(t *testing.T) {
	cases := []struct {
		name string
		c    *Check
		want string
	}{
		{"no-id", &Check{Description: "d", Citation: "c", CertFn: certNop}, "without ID"},
		{"no-description", &Check{ID: "x", Citation: "c", CertFn: certNop}, "without description"},
		{"no-citation", &Check{ID: "x", Description: "d", CertFn: certNop}, "without paper citation"},
		{"cert-scope-missing-fn", &Check{ID: "x", Description: "d", Citation: "c"}, "must set CertFn only"},
		{"cert-scope-both-fns", &Check{ID: "x", Description: "d", Citation: "c", CertFn: certNop, ChainFn: chainNop}, "must set CertFn only"},
		{"chain-scope-wrong-fn", &Check{ID: "x", Description: "d", Citation: "c", Scope: ScopeChain, CertFn: certNop}, "must set ChainFn only"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			err := r.Register(tc.c)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Register = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestRegisterDuplicateID(t *testing.T) {
	r := NewRegistry()
	c := &Check{ID: "dup", Description: "d", Citation: "c", CertFn: certNop}
	if err := r.Register(c); err != nil {
		t.Fatal(err)
	}
	err := r.Register(&Check{ID: "dup", Description: "d2", Citation: "c2", CertFn: certNop})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate Register = %v", err)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d after rejected duplicate", r.Len())
	}
}

func TestMustRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRegister did not panic on invalid check")
		}
	}()
	NewRegistry().MustRegister(&Check{ID: "bad"})
}

func TestLookupAndChecksSorted(t *testing.T) {
	r := NewRegistry()
	for _, id := range []string{"zeta", "alpha", "mid"} {
		r.MustRegister(&Check{ID: id, Description: "d", Citation: "c", CertFn: certNop})
	}
	if _, ok := r.Lookup("alpha"); !ok {
		t.Error("Lookup(alpha) missed")
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Error("Lookup(nope) hit")
	}
	var ids []string
	for _, c := range r.Checks() {
		ids = append(ids, c.ID)
	}
	if strings.Join(ids, ",") != "alpha,mid,zeta" {
		t.Errorf("Checks order = %v", ids)
	}
}

// TestProfilesNest verifies paper ⊂ strict ⊂ all on the default registry.
func TestProfilesNest(t *testing.T) {
	r := DefaultRegistry()
	paper := r.ProfileChecks(ProfilePaper)
	strict := r.ProfileChecks(ProfileStrict)
	all := r.ProfileChecks(ProfileAll)
	if len(paper) == 0 || len(paper) >= len(strict) || len(strict) > len(all) {
		t.Fatalf("profile sizes paper=%d strict=%d all=%d, want paper < strict <= all",
			len(paper), len(strict), len(all))
	}
	if len(all) != r.Len() {
		t.Errorf("ProfileAll enables %d of %d checks", len(all), r.Len())
	}
	inStrict := make(map[string]bool)
	for _, c := range strict {
		inStrict[c.ID] = true
	}
	for _, c := range paper {
		if !inStrict[c.ID] {
			t.Errorf("paper check %q not in strict profile", c.ID)
		}
	}
}

func TestDefaultRegistryMetadata(t *testing.T) {
	for _, c := range DefaultRegistry().Checks() {
		if c.Citation == "" || c.Description == "" {
			t.Errorf("check %q missing metadata", c.ID)
		}
		if strings.ToLower(c.ID) != c.ID || strings.ContainsAny(c.ID, " _") {
			t.Errorf("check ID %q is not kebab-case", c.ID)
		}
	}
}

func TestRegistryProfiles(t *testing.T) {
	got := DefaultRegistry().Profiles()
	want := []string{ProfileAll, ProfilePaper, ProfileStrict}
	if len(got) != len(want) {
		t.Fatalf("Profiles = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Profiles = %v, want %v", got, want)
		}
	}
}

func TestProfileSelectsCheckSet(t *testing.T) {
	db := trustdb.New()
	cl := chain.NewClassifier(db)
	paper := NewWithRegistry(cl, DefaultRegistry(), Config{Now: now, Profile: ProfilePaper})
	// weak-key is a strict-only check; a paper-profile linter must not run it.
	weak := mk("CN=x", "CN=weak.example.com", certmodel.BCFalse, "weak.example.com")
	weak.KeyAlg = "rsa"
	weak.KeyBits = 512
	if cs := checks(paper.Cert(weak)); cs["weak-key"] != 0 {
		t.Errorf("paper profile ran weak-key: %v", cs)
	}
	strict := NewWithRegistry(cl, DefaultRegistry(), Config{Now: now, Profile: ProfileStrict})
	if cs := checks(strict.Cert(weak)); cs["weak-key"] != 1 {
		t.Errorf("strict profile missed weak-key: %v", cs)
	}
}

// TestFindingsOrderIndependentOfRegistration registers the same checks in
// opposite orders and asserts identical output — the deterministic findings
// sort, not registration order, decides it.
func TestFindingsOrderIndependentOfRegistration(t *testing.T) {
	a := &Check{ID: "aaa-flag", Description: "d", Citation: "c", Severity: Warn,
		CertFn: func(ctx *Context, co *Collector, m *certmodel.Meta, pos int) { co.Add(pos, "a fired") }}
	b := &Check{ID: "zzz-flag", Description: "d", Citation: "c", Severity: Warn,
		CertFn: func(ctx *Context, co *Collector, m *certmodel.Meta, pos int) { co.Add(pos, "z fired") }}

	mkLinter := func(order ...*Check) *Linter {
		r := NewRegistry()
		for _, c := range order {
			cc := *c
			r.MustRegister(&cc)
		}
		return NewWithRegistry(chain.NewClassifier(trustdb.New()), r, Config{Now: now})
	}
	ch := certmodel.Chain{mk("CN=i", "CN=s.example.com", certmodel.BCFalse, "s.example.com")}
	fwd := mkLinter(a, b).Chain(ch)
	rev := mkLinter(b, a).Chain(ch)
	if len(fwd) != 2 || len(rev) != 2 {
		t.Fatalf("finding counts %d/%d", len(fwd), len(rev))
	}
	for i := range fwd {
		if fwd[i] != rev[i] {
			t.Errorf("position %d differs: %v vs %v", i, fwd[i], rev[i])
		}
	}
	if fwd[0].Check != "aaa-flag" || fwd[1].Check != "zzz-flag" {
		t.Errorf("sort order: %v", fwd)
	}
}

// TestSortFindingsRegression pins the full ordering contract: chain-level
// findings (-1) first, then by position, then check ID, then message.
func TestSortFindingsRegression(t *testing.T) {
	fs := []Finding{
		{Check: "b", CertIndex: 1, Message: "m"},
		{Check: "a", CertIndex: 1, Message: "m"},
		{Check: "c", CertIndex: -1, Message: "m"},
		{Check: "a", CertIndex: 0, Message: "m2"},
		{Check: "a", CertIndex: 0, Message: "m1"},
	}
	sortFindings(fs)
	want := []Finding{
		{Check: "c", CertIndex: -1, Message: "m"},
		{Check: "a", CertIndex: 0, Message: "m1"},
		{Check: "a", CertIndex: 0, Message: "m2"},
		{Check: "a", CertIndex: 1, Message: "m"},
		{Check: "b", CertIndex: 1, Message: "m"},
	}
	for i := range want {
		if fs[i] != want[i] {
			t.Errorf("position %d = %v, want %v", i, fs[i], want[i])
		}
	}
}

func TestCustomRegistryWithApplies(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(&Check{
		ID: "leaf-only-probe", Description: "d", Citation: "c", Severity: Info,
		Applies: func(ctx *Context, pos int) bool { return ctx.LeafPosition(pos) },
		CertFn:  func(ctx *Context, co *Collector, m *certmodel.Meta, pos int) { co.Add(pos, "at leaf") },
	})
	l := NewWithRegistry(chain.NewClassifier(trustdb.New()), r, Config{Now: now})
	ch := certmodel.Chain{
		mk("CN=i", "CN=leaf.example.com", certmodel.BCFalse, "leaf.example.com"),
		mk("CN=r", "CN=i", certmodel.BCTrue),
	}
	fs := l.Chain(ch)
	if len(fs) != 1 || fs[0].CertIndex != 0 {
		t.Errorf("applies gating: %v", fs)
	}
	// Isolated certificates are never leaf-position, so the probe must skip.
	if fs := l.Cert(ch[0]); len(fs) != 0 {
		t.Errorf("isolated cert hit leaf-gated check: %v", fs)
	}
}
