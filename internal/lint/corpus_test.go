package lint

import (
	"reflect"
	"testing"

	"certchains/internal/certmodel"
	"certchains/internal/chain"
	"certchains/internal/trustdb"
)

// corpusChains returns a small corpus with distinct lint surfaces.
func corpusChains() []certmodel.Chain {
	clean := certmodel.Chain{
		mk("CN=LRoot", "CN=good.example.com", certmodel.BCFalse, "good.example.com"),
		mk("CN=LRoot", "CN=LRoot", certmodel.BCTrue),
	}
	// Mismatched pair: no complete matched path exists in the delivery.
	orphan := certmodel.Chain{
		mk("CN=Nowhere", "CN=lost.example.com", certmodel.BCFalse, "lost.example.com"),
		mk("CN=Elsewhere", "CN=Unrelated", certmodel.BCTrue),
	}
	localhost := certmodel.Chain{
		mk("CN=localhost", "CN=localhost", certmodel.BCAbsent),
	}
	return []certmodel.Chain{clean, orphan, localhost}
}

func TestCorpusObserveAndSummarize(t *testing.T) {
	l := testLinter(t)
	c := NewCorpusReport(l)
	for i, ch := range corpusChains() {
		// Observe each chain twice with different connection weights; the
		// second observation must hit the per-shard cache.
		c.Observe(ch, int64(i+1))
		c.Observe(ch, int64(i+1))
	}
	s := c.Summarize()
	if s.Chains != 3 {
		t.Errorf("Chains = %d", s.Chains)
	}
	if s.Observations != 6 {
		t.Errorf("Observations = %d", s.Observations)
	}
	if s.Conns != 12 {
		t.Errorf("Conns = %d", s.Conns)
	}
	per := make(map[string]CheckPrevalence)
	for _, row := range s.Checks {
		per[row.ID] = row
	}
	if row := per["no-trust-path"]; row.Chains != 1 || row.Conns != 4 {
		t.Errorf("no-trust-path: %+v", row)
	}
	if row := per["localhost-placeholder"]; row.Chains != 1 || row.Findings != 1 || row.Conns != 6 {
		t.Errorf("localhost-placeholder: %+v", row)
	}
	// Rows exist (with zero counts) even for checks that never fired.
	if row, ok := per["staging-placeholder"]; !ok || row.Chains != 0 {
		t.Errorf("staging-placeholder row: %+v ok=%v", row, ok)
	}
}

// TestCorpusMergeCommutative splits a corpus across shards in two different
// ways and merges in opposite orders; the summaries must be identical, and
// identical to the unsharded run. This is the pipeline's merge contract.
func TestCorpusMergeCommutative(t *testing.T) {
	l := testLinter(t)
	chains := corpusChains()

	single := NewCorpusReport(l)
	for i, ch := range chains {
		single.Observe(ch, int64(10*(i+1)))
	}

	build := func(order []int) *CorpusSummary {
		shards := make([]*CorpusReport, 2)
		for i := range shards {
			shards[i] = NewCorpusReport(l)
		}
		for i, ch := range chains {
			shards[i%2].Observe(ch, int64(10*(i+1)))
		}
		dst := NewCorpusReport(l)
		for _, idx := range order {
			dst.Merge(shards[idx])
		}
		return dst.Summarize()
	}

	fwd := build([]int{0, 1})
	rev := build([]int{1, 0})
	want := single.Summarize()
	if !reflect.DeepEqual(fwd, rev) {
		t.Errorf("merge order changed the summary:\n%+v\n%+v", fwd, rev)
	}
	if !reflect.DeepEqual(fwd, want) {
		t.Errorf("sharded summary differs from unsharded:\n%+v\n%+v", fwd, want)
	}
}

// TestCorpusSerialReuseClusters exercises the corpus-level cluster count the
// in-chain serial-reuse check cannot see: the colliding certificates arrive
// in different chains.
func TestCorpusSerialReuseClusters(t *testing.T) {
	l := testLinter(t)
	a := mk("CN=Issuer", "CN=one.example.com", certmodel.BCFalse, "one.example.com")
	b := mk("CN=Issuer", "CN=two.example.com", certmodel.BCFalse, "two.example.com")
	a.SerialHex, b.SerialHex = "7f", "7f"

	shard1 := NewCorpusReport(l)
	shard1.Observe(certmodel.Chain{a}, 1)
	shard2 := NewCorpusReport(l)
	shard2.Observe(certmodel.Chain{b}, 1)
	shard1.Merge(shard2)
	if s := shard1.Summarize(); s.SerialReuseClusters != 1 {
		t.Errorf("SerialReuseClusters = %d, want 1", s.SerialReuseClusters)
	}

	// The same certificate observed in two chains is not a cluster.
	shard3 := NewCorpusReport(l)
	shard3.Observe(certmodel.Chain{a}, 1)
	shard3.Observe(certmodel.Chain{a, mk("CN=LRoot", "CN=LRoot", certmodel.BCTrue)}, 1)
	if s := shard3.Summarize(); s.SerialReuseClusters != 0 {
		t.Errorf("single-cert cluster counted: %d", s.SerialReuseClusters)
	}
}

func TestCorpusRenderMentionsEveryCheck(t *testing.T) {
	l := testLinter(t)
	c := NewCorpusReport(l)
	for _, ch := range corpusChains() {
		c.Observe(ch, 1)
	}
	out := c.Summarize().Render()
	for _, chk := range l.EnabledChecks() {
		if !containsLine(out, chk.ID) {
			t.Errorf("rendered table missing check %q", chk.ID)
		}
	}
}

func containsLine(s, sub string) bool {
	for _, line := range splitLines(s) {
		if len(line) >= len(sub) && line[:len(sub)] == sub {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// TestCorpusObserveAnalyzedMatchesObserve ensures the analysis-caching entry
// point used by the pipeline produces the same accumulator as Observe.
func TestCorpusObserveAnalyzedMatchesObserve(t *testing.T) {
	db := trustdb.New()
	db.AddRoot(trustdb.StoreMozilla, mk("CN=LRoot", "CN=LRoot", certmodel.BCTrue))
	cl := chain.NewClassifier(db)
	l := New(cl, Config{Now: now})

	plain := NewCorpusReport(l)
	pre := NewCorpusReport(l)
	for _, ch := range corpusChains() {
		plain.Observe(ch, 3)
		pre.ObserveAnalyzed(ch, cl.Analyze(ch), 3)
	}
	if !reflect.DeepEqual(plain.Summarize(), pre.Summarize()) {
		t.Error("ObserveAnalyzed diverged from Observe")
	}
}
