package lint

import (
	"strings"
	"testing"
	"time"

	"certchains/internal/certmodel"
	"certchains/internal/chain"
	"certchains/internal/dn"
	"certchains/internal/trustdb"
)

var now = time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)

func mk(issuer, subject string, bc certmodel.BasicConstraints, sans ...string) *certmodel.Meta {
	iss := dn.MustParse(issuer)
	sub := dn.MustParse(subject)
	return &certmodel.Meta{
		FP:        certmodel.SyntheticFingerprint(iss, sub, "01", now.AddDate(-1, 0, 0), now.AddDate(1, 0, 0)),
		Issuer:    iss,
		Subject:   sub,
		NotBefore: now.AddDate(-1, 0, 0),
		NotAfter:  now.AddDate(1, 0, 0),
		BC:        bc,
		SAN:       sans,
	}
}

func testLinter(t *testing.T) *Linter {
	t.Helper()
	db := trustdb.New()
	root := mk("CN=LRoot", "CN=LRoot", certmodel.BCTrue)
	db.AddRoot(trustdb.StoreMozilla, root)
	return New(chain.NewClassifier(db), Config{Now: now})
}

func checks(fs []Finding) map[string]int {
	out := make(map[string]int)
	for _, f := range fs {
		out[f.Check]++
	}
	return out
}

func TestLintCleanChain(t *testing.T) {
	l := testLinter(t)
	ch := certmodel.Chain{
		mk("CN=LRoot", "CN=good.example.com", certmodel.BCFalse, "good.example.com"),
		mk("CN=LRoot", "CN=LRoot", certmodel.BCTrue),
	}
	fs := l.Chain(ch)
	cs := checks(fs)
	// Only the informational root-included finding is expected.
	if cs["root-included"] != 1 {
		t.Errorf("root-included = %d", cs["root-included"])
	}
	_, warn, errs := Summary(fs)
	if warn != 0 || errs != 0 {
		t.Errorf("clean chain: %d warns %d errors: %v", warn, errs, fs)
	}
}

func TestLintBasicConstraintsAbsent(t *testing.T) {
	l := testLinter(t)
	fs := l.Cert(mk("CN=x", "CN=y", certmodel.BCAbsent))
	if checks(fs)["basic-constraints-absent"] != 1 {
		t.Errorf("findings = %v", fs)
	}
}

func TestLintExpiredLeafIsError(t *testing.T) {
	l := testLinter(t)
	leaf := mk("CN=LRoot", "CN=old.example.com", certmodel.BCFalse, "old.example.com")
	leaf.NotAfter = now.AddDate(-1, 0, 0)
	ch := certmodel.Chain{leaf, mk("CN=LRoot", "CN=LRoot", certmodel.BCTrue)}
	fs := l.Chain(ch)
	found := false
	for _, f := range fs {
		if f.Check == "expired" && f.Severity == Error && f.CertIndex == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("expired leaf not flagged as error: %v", fs)
	}
}

func TestLintNotYetValid(t *testing.T) {
	l := testLinter(t)
	c := mk("CN=x", "CN=future.example.com", certmodel.BCFalse)
	c.NotBefore = now.AddDate(1, 0, 0)
	if checks(l.Cert(c))["not-yet-valid"] != 1 {
		t.Error("future cert not flagged")
	}
}

func TestLintMissingSANAndLongValidity(t *testing.T) {
	l := testLinter(t)
	leaf := mk("CN=LRoot", "CN=nosan.example.com", certmodel.BCFalse) // no SANs
	leaf.NotAfter = leaf.NotBefore.AddDate(10, 0, 0)
	ch := certmodel.Chain{leaf, mk("CN=LRoot", "CN=LRoot", certmodel.BCTrue)}
	cs := checks(l.Chain(ch))
	if cs["missing-san"] != 1 {
		t.Error("missing SAN not flagged")
	}
	if cs["validity-too-long"] != 1 {
		t.Error("long validity not flagged")
	}
	// Expired check must not double-fire (NotAfter far future is fine).
	if cs["expired"] != 0 {
		t.Error("unexpired cert flagged expired")
	}
}

func TestLintCALeaf(t *testing.T) {
	l := testLinter(t)
	// Single-certificate chain whose cert asserts CA=TRUE: leaf position.
	fs := l.Chain(certmodel.Chain{mk("CN=a", "CN=b.example.com", certmodel.BCTrue, "b.example.com")})
	if checks(fs)["ca-leaf"] != 1 {
		t.Errorf("CA leaf not flagged: %v", fs)
	}
}

func TestLintLocalhostPlaceholder(t *testing.T) {
	l := testLinter(t)
	d := "EMAILADDRESS=webmaster@localhost,CN=localhost,OU=none,O=none,L=Sometown,ST=Someprovince,C=US"
	fs := l.Cert(mk(d, d, certmodel.BCAbsent))
	if checks(fs)["localhost-placeholder"] != 1 {
		t.Errorf("localhost placeholder not flagged: %v", fs)
	}
}

func TestLintStagingPlaceholder(t *testing.T) {
	l := testLinter(t)
	fake := mk("CN=Fake LE Root X1", "CN=Fake LE Intermediate X1", certmodel.BCTrue)
	if checks(l.Cert(fake))["staging-placeholder"] != 1 {
		t.Error("Fake LE cert not flagged")
	}
	staging := mk("CN=(STAGING) Pretend Pear X1", "CN=(STAGING) Wannabe Watercress R11", certmodel.BCTrue)
	if checks(l.Cert(staging))["staging-placeholder"] != 1 {
		t.Error("STAGING cert not flagged")
	}
}

func TestLintUnnecessaryCertificates(t *testing.T) {
	l := testLinter(t)
	ch := certmodel.Chain{
		mk("CN=LRoot", "CN=extra.example.com", certmodel.BCFalse, "extra.example.com"),
		mk("CN=LRoot", "CN=LRoot", certmodel.BCTrue),
		mk("CN=tester", "CN=tester", certmodel.BCFalse),
	}
	cs := checks(l.Chain(ch))
	if cs["unnecessary-certificates"] != 1 {
		t.Errorf("unnecessary certs not flagged: %v", cs)
	}
}

func TestLintNoTrustPath(t *testing.T) {
	l := testLinter(t)
	ch := certmodel.Chain{
		mk("CN=A", "CN=a.example.com", certmodel.BCFalse, "a.example.com"),
		mk("CN=B", "CN=bee", certmodel.BCTrue),
	}
	fs := l.Chain(ch)
	found := false
	for _, f := range fs {
		if f.Check == "no-trust-path" && f.Severity == Error && f.CertIndex == -1 {
			found = true
		}
	}
	if !found {
		t.Errorf("no-trust-path not flagged: %v", fs)
	}
}

func TestLintCrossSignInfo(t *testing.T) {
	db := trustdb.New()
	db.AddRoot(trustdb.StoreMozilla, mk("CN=LRoot", "CN=LRoot", certmodel.BCTrue))
	cl := chain.NewClassifier(db)
	cl.CrossSigns.Add(dn.MustParse("CN=Variant CA"), dn.MustParse("CN=LRoot"))
	l := New(cl, Config{Now: now})
	ch := certmodel.Chain{
		mk("CN=Variant CA", "CN=x.example.com", certmodel.BCFalse, "x.example.com"),
		mk("CN=LRoot", "CN=LRoot", certmodel.BCTrue),
	}
	if checks(l.Chain(ch))["cross-signed-link"] != 1 {
		t.Error("cross-signed link not reported")
	}
}

func TestSummaryAndStrings(t *testing.T) {
	fs := []Finding{
		{Check: "a", Severity: Info},
		{Check: "b", Severity: Warn},
		{Check: "c", Severity: Warn},
		{Check: "d", Severity: Error},
	}
	i, w, e := Summary(fs)
	if i != 1 || w != 2 || e != 1 {
		t.Errorf("summary = %d/%d/%d", i, w, e)
	}
	if Info.String() != "info" || Warn.String() != "warn" || Error.String() != "error" {
		t.Error("severity strings")
	}
	if !strings.Contains(fs[3].String(), "[error] d") {
		t.Errorf("finding string = %q", fs[3].String())
	}
}

func TestDefaultConfig(t *testing.T) {
	db := trustdb.New()
	l := New(chain.NewClassifier(db), Config{})
	if l.cfg.Now.IsZero() || l.cfg.MaxLeafValidity == 0 {
		t.Error("defaults not applied")
	}
}
