package lint

import (
	"fmt"
	"strings"

	"certchains/internal/certmodel"
	"certchains/internal/chain"
	"certchains/internal/stats"
)

// CorpusReport accumulates lint findings over every distinct chain of an
// observation corpus. It follows the sharded pipeline's merge contract: each
// worker lints its shard into a private CorpusReport, and Merge folds shard
// accumulators together commutatively — chain-keyed maps union (linting is
// deterministic per chain, so duplicate keys carry identical values) and
// connection counters add (each observation belongs to exactly one shard).
// Any merge order therefore summarizes byte-identically.
type CorpusReport struct {
	linter *Linter //certchain:nomerge shared deterministic lint engine, not accumulated state
	// observations / conns count every linted observation additively.
	observations int64
	conns        int64
	// findingsPerChain maps chain key -> check ID -> finding count; it doubles
	// as the shard-local lint cache (each distinct chain is linted once per
	// shard).
	findingsPerChain map[string]map[string]int
	// connsPerCheck maps check ID -> connections to chains that trigger it.
	connsPerCheck map[string]int64
	// serialCerts maps normalized issuer + serial -> distinct certificates,
	// for the corpus-level serial-reuse clusters the in-chain check cannot
	// see (§4.3 non-compliant private issuance).
	serialCerts map[string]map[certmodel.Fingerprint]bool
}

// NewCorpusReport creates an empty accumulator linting with l.
func NewCorpusReport(l *Linter) *CorpusReport {
	return &CorpusReport{
		linter:           l,
		findingsPerChain: make(map[string]map[string]int),
		connsPerCheck:    make(map[string]int64),
		serialCerts:      make(map[string]map[certmodel.Fingerprint]bool),
	}
}

// Observe lints one observed chain delivery carrying conns connections.
func (c *CorpusReport) Observe(ch certmodel.Chain, conns int64) {
	c.ObserveAnalyzed(ch, c.linter.cl.Analyze(ch), conns)
}

// ObserveAnalyzed is Observe with a precomputed structural analysis (the
// pipeline already holds one per distinct chain).
func (c *CorpusReport) ObserveAnalyzed(ch certmodel.Chain, a *chain.Analysis, conns int64) {
	c.observations++
	c.conns += conns
	key := ch.Key()
	perCheck, seen := c.findingsPerChain[key]
	if !seen {
		perCheck = make(map[string]int)
		for _, f := range c.linter.ChainAnalyzed(ch, a) {
			perCheck[f.Check]++
		}
		c.findingsPerChain[key] = perCheck
		for _, m := range ch {
			if m.SerialHex == "" {
				continue
			}
			sk := m.Issuer.Normalized() + "|" + m.SerialHex
			set := c.serialCerts[sk]
			if set == nil {
				set = make(map[certmodel.Fingerprint]bool)
				c.serialCerts[sk] = set
			}
			set[m.FP] = true
		}
	}
	for id := range perCheck {
		c.connsPerCheck[id] += conns
	}
}

// Merge folds another shard's accumulator into this one. Both accumulators
// must lint with the same configuration.
func (c *CorpusReport) Merge(o *CorpusReport) {
	c.observations += o.observations
	c.conns += o.conns
	for k, perCheck := range o.findingsPerChain {
		if _, ok := c.findingsPerChain[k]; !ok {
			c.findingsPerChain[k] = perCheck
		}
	}
	for id, n := range o.connsPerCheck {
		c.connsPerCheck[id] += n
	}
	for sk, set := range o.serialCerts {
		dst := c.serialCerts[sk]
		if dst == nil {
			dst = make(map[certmodel.Fingerprint]bool, len(set))
			c.serialCerts[sk] = dst
		}
		for fp := range set {
			dst[fp] = true
		}
	}
}

// CheckPrevalence is the corpus-wide result for one check.
type CheckPrevalence struct {
	ID          string
	Severity    Severity
	Description string
	Citation    string
	// Chains is the number of distinct chains with at least one finding.
	Chains int
	// ChainShare is Chains over all distinct chains linted.
	ChainShare float64
	// Findings is the total finding count over distinct chains (a chain
	// triggering a check at three positions contributes three).
	Findings int64
	// Conns is the number of connections that delivered a triggering chain.
	Conns int64
}

// CorpusSummary is the finalized corpus lint result.
type CorpusSummary struct {
	// Profile is the check profile the corpus was linted under.
	Profile string
	// Chains / Observations / Conns size the linted corpus.
	Chains       int
	Observations int64
	Conns        int64
	// Checks holds one prevalence row per enabled check, sorted by ID;
	// checks that never fired appear with zero counts.
	Checks []CheckPrevalence
	// SerialReuseClusters counts (issuer, serial) pairs shared by two or
	// more distinct certificates anywhere in the corpus.
	SerialReuseClusters int
}

// Summarize finalizes the (fully merged) accumulator.
func (c *CorpusReport) Summarize() *CorpusSummary {
	s := &CorpusSummary{
		Profile:      c.linter.Config().Profile,
		Chains:       len(c.findingsPerChain),
		Observations: c.observations,
		Conns:        c.conns,
	}
	chainsPer := make(map[string]int)
	findingsPer := make(map[string]int64)
	for _, perCheck := range c.findingsPerChain {
		for id, n := range perCheck {
			chainsPer[id]++
			findingsPer[id] += int64(n)
		}
	}
	for _, chk := range c.linter.EnabledChecks() {
		s.Checks = append(s.Checks, CheckPrevalence{
			ID:          chk.ID,
			Severity:    chk.Severity,
			Description: chk.Description,
			Citation:    chk.Citation,
			Chains:      chainsPer[chk.ID],
			ChainShare:  stats.Ratio(int64(chainsPer[chk.ID]), int64(s.Chains)),
			Findings:    findingsPer[chk.ID],
			Conns:       c.connsPerCheck[chk.ID],
		})
	}
	for _, set := range c.serialCerts {
		if len(set) > 1 {
			s.SerialReuseClusters++
		}
	}
	return s
}

// Render produces the prevalence table as text.
func (s *CorpusSummary) Render() string {
	var b strings.Builder
	t := &stats.Table{
		Title: fmt.Sprintf("Corpus lint (profile %q): %d distinct chains, %s observations, %s conns",
			s.Profile, s.Chains,
			stats.FormatCount(s.Observations), stats.FormatCount(s.Conns)),
		Headers: []string{"Check", "Sev", "#.Chains", "%Chains", "#.Findings", "#.Conns"},
	}
	for _, c := range s.Checks {
		t.AddRow(c.ID, c.Severity.String(), fmt.Sprint(c.Chains), stats.Pct(c.ChainShare),
			fmt.Sprint(c.Findings), stats.FormatCount(c.Conns))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "Corpus-level serial-reuse clusters (issuer+serial shared by distinct certs): %d\n",
		s.SerialReuseClusters)
	return b.String()
}
