package lint

import (
	"certchains/internal/certmodel"
	"certchains/internal/stats"
)

// CorpusSnapshot is the serialized form of a CorpusReport. Per-chain finding
// maps are carried verbatim (linting is deterministic per chain, so restored
// entries are exactly what a re-lint would compute, and ObserveAnalyzed's
// chain-key cache keeps them from being recomputed after restore). The
// linter itself is not serialized — the restoring side must supply one with
// the same configuration.
type CorpusSnapshot struct {
	Observations     int64                     `json:"observations"`
	Conns            int64                     `json:"conns"`
	FindingsPerChain map[string]map[string]int `json:"findings_per_chain,omitempty"`
	ConnsPerCheck    map[string]int64          `json:"conns_per_check,omitempty"`
	SerialCerts      map[string][]string       `json:"serial_certs,omitempty"`
}

// Snapshot serializes the accumulator.
func (c *CorpusReport) Snapshot() *CorpusSnapshot {
	s := &CorpusSnapshot{
		Observations:     c.observations,
		Conns:            c.conns,
		FindingsPerChain: make(map[string]map[string]int, len(c.findingsPerChain)),
		ConnsPerCheck:    make(map[string]int64, len(c.connsPerCheck)),
		SerialCerts:      make(map[string][]string, len(c.serialCerts)),
	}
	for k, perCheck := range c.findingsPerChain {
		cp := make(map[string]int, len(perCheck))
		for id, n := range perCheck {
			cp[id] = n
		}
		s.FindingsPerChain[k] = cp
	}
	for id, n := range c.connsPerCheck {
		s.ConnsPerCheck[id] = n
	}
	for sk, set := range c.serialCerts {
		fps := make(map[string]bool, len(set))
		for fp := range set {
			fps[string(fp)] = true
		}
		s.SerialCerts[sk] = stats.SortedSet(fps)
	}
	return s
}

// CorpusFromSnapshot rebuilds an accumulator linting with l, which must be
// configured identically to the linter the snapshot was taken under.
func CorpusFromSnapshot(l *Linter, s *CorpusSnapshot) *CorpusReport {
	c := NewCorpusReport(l)
	if s == nil {
		return c
	}
	c.observations = s.Observations
	c.conns = s.Conns
	for k, perCheck := range s.FindingsPerChain {
		cp := make(map[string]int, len(perCheck))
		for id, n := range perCheck {
			cp[id] = n
		}
		c.findingsPerChain[k] = cp
	}
	for id, n := range s.ConnsPerCheck {
		c.connsPerCheck[id] = n
	}
	for sk, fps := range s.SerialCerts {
		set := make(map[certmodel.Fingerprint]bool, len(fps))
		for _, fp := range fps {
			set[certmodel.Fingerprint(fp)] = true
		}
		c.serialCerts[sk] = set
	}
	return c
}
