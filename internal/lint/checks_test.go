package lint

import (
	"testing"
	"time"

	"certchains/internal/certmodel"
	"certchains/internal/chain"
	"certchains/internal/dn"
	"certchains/internal/trustdb"
)

// strictLinter mirrors testLinter but under the strict profile (the default
// "all" covers strict too; the explicit profile documents what is under test).
func strictLinter(t *testing.T) *Linter {
	t.Helper()
	db := trustdb.New()
	db.AddRoot(trustdb.StoreMozilla, mk("CN=LRoot", "CN=LRoot", certmodel.BCTrue))
	return New(chain.NewClassifier(db), Config{Now: now, Profile: ProfileStrict})
}

func TestLintValidityNesting(t *testing.T) {
	l := strictLinter(t)
	leaf := mk("CN=LRoot", "CN=nested.example.com", certmodel.BCFalse, "nested.example.com")
	root := mk("CN=LRoot", "CN=LRoot", certmodel.BCTrue)
	// Child outlives its issuer by a year.
	leaf.NotAfter = root.NotAfter.AddDate(1, 0, 0)
	cs := checks(l.Chain(certmodel.Chain{leaf, root}))
	if cs["validity-nesting"] != 1 {
		t.Errorf("validity-nesting = %d", cs["validity-nesting"])
	}
	// Equal windows nest fine.
	ok := certmodel.Chain{
		mk("CN=LRoot", "CN=fine.example.com", certmodel.BCFalse, "fine.example.com"),
		mk("CN=LRoot", "CN=LRoot", certmodel.BCTrue),
	}
	if cs := checks(l.Chain(ok)); cs["validity-nesting"] != 0 {
		t.Errorf("equal windows flagged: %v", cs)
	}
}

func TestLintWeakKey(t *testing.T) {
	l := strictLinter(t)
	cases := []struct {
		alg  certmodel.KeyAlgorithm
		bits int
		want Severity
		hits int
	}{
		{certmodel.KeyRSA, 512, Error, 1},
		{certmodel.KeyRSA, 1024, Warn, 1},
		{certmodel.KeyRSA, 2048, 0, 0},
		{certmodel.KeyRSA, 0, 0, 0}, // unknown size: skip
		{certmodel.KeyECDSA, 192, Warn, 1},
		{certmodel.KeyECDSA, 256, 0, 0},
		{certmodel.KeyDSA, 1024, Warn, 1},
		{certmodel.KeyEd25519, 256, 0, 0},
	}
	for _, tc := range cases {
		m := mk("CN=x", "CN=k.example.com", certmodel.BCFalse)
		m.KeyAlg = tc.alg
		m.KeyBits = tc.bits
		var got []Finding
		for _, f := range l.Cert(m) {
			if f.Check == "weak-key" {
				got = append(got, f)
			}
		}
		if len(got) != tc.hits {
			t.Errorf("%s/%d: %d findings, want %d", tc.alg, tc.bits, len(got), tc.hits)
			continue
		}
		if tc.hits > 0 && got[0].Severity != tc.want {
			t.Errorf("%s/%d: severity %s, want %s", tc.alg, tc.bits, got[0].Severity, tc.want)
		}
	}
}

func TestLintDeprecatedSigAlg(t *testing.T) {
	l := strictLinter(t)
	cases := []struct {
		alg  string
		want Severity
		hits int
	}{
		{"md5-rsa", Error, 1},
		{"sha1-rsa", Warn, 1},
		{"SHA1WithRSA", Warn, 1},
		{"sha256-rsa", 0, 0},
		{"", 0, 0}, // log sources may not record it
	}
	for _, tc := range cases {
		m := mk("CN=x", "CN=s.example.com", certmodel.BCFalse)
		m.SigAlg = tc.alg
		var got []Finding
		for _, f := range l.Cert(m) {
			if f.Check == "deprecated-sig-alg" {
				got = append(got, f)
			}
		}
		if len(got) != tc.hits {
			t.Errorf("%q: %d findings, want %d", tc.alg, len(got), tc.hits)
			continue
		}
		if tc.hits > 0 && got[0].Severity != tc.want {
			t.Errorf("%q: severity %s, want %s", tc.alg, got[0].Severity, tc.want)
		}
	}
}

func TestLintDuplicateInChain(t *testing.T) {
	l := strictLinter(t)
	leaf := mk("CN=LRoot", "CN=dup.example.com", certmodel.BCFalse, "dup.example.com")
	ch := certmodel.Chain{leaf, mk("CN=LRoot", "CN=LRoot", certmodel.BCTrue), leaf}
	fs := l.Chain(ch)
	found := false
	for _, f := range fs {
		if f.Check == "duplicate-in-chain" && f.CertIndex == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("duplicate not flagged at position 2: %v", fs)
	}
}

func TestLintChainOutOfOrder(t *testing.T) {
	l := strictLinter(t)
	leaf := mk("CN=Mid", "CN=ooo.example.com", certmodel.BCFalse, "ooo.example.com")
	mid := mk("CN=LRoot", "CN=Mid", certmodel.BCTrue)
	root := mk("CN=LRoot", "CN=LRoot", certmodel.BCTrue)
	// Root delivered between leaf and its intermediate: adjacent links break,
	// but reordering (leaf, mid, root) matches fully.
	cs := checks(l.Chain(certmodel.Chain{leaf, root, mid}))
	if cs["chain-out-of-order"] != 1 {
		t.Errorf("out-of-order not flagged: %v", cs)
	}
	// Correctly ordered delivery must not fire.
	if cs := checks(l.Chain(certmodel.Chain{leaf, mid, root})); cs["chain-out-of-order"] != 0 {
		t.Errorf("ordered chain flagged: %v", cs)
	}
	// A genuinely unrelated certificate cannot be fixed by reordering.
	stray := mk("CN=Other", "CN=unrelated.example.com", certmodel.BCFalse)
	if cs := checks(l.Chain(certmodel.Chain{leaf, stray})); cs["chain-out-of-order"] != 0 {
		t.Errorf("unfixable chain flagged as reorderable: %v", cs)
	}
}

func TestLintPathLenViolation(t *testing.T) {
	l := strictLinter(t)
	leaf := mk("CN=Mid", "CN=deep.example.com", certmodel.BCFalse, "deep.example.com")
	mid := mk("CN=LRoot", "CN=Mid", certmodel.BCTrue)
	root := mk("CN=LRoot", "CN=LRoot", certmodel.BCTrue)
	// The root allows zero intermediates below it, but the matched path has
	// one (the mid).
	root.HasPathLen = true
	root.PathLen = 0
	fs := l.Chain(certmodel.Chain{leaf, mid, root})
	found := false
	for _, f := range fs {
		if f.Check == "pathlen-violation" && f.CertIndex == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("pathLen violation not flagged: %v", fs)
	}
	// pathLen 1 admits the mid.
	root.PathLen = 1
	if cs := checks(l.Chain(certmodel.Chain{leaf, mid, root})); cs["pathlen-violation"] != 0 {
		t.Errorf("compliant path flagged: %v", cs)
	}
}

func TestLintEKUChecks(t *testing.T) {
	l := strictLinter(t)
	base := func() certmodel.Chain {
		return certmodel.Chain{
			mk("CN=LRoot", "CN=eku.example.com", certmodel.BCFalse, "eku.example.com"),
			mk("CN=LRoot", "CN=LRoot", certmodel.BCTrue),
		}
	}
	ch := base()
	if cs := checks(l.Chain(ch)); cs["eku-absent"] != 1 || cs["eku-mismatch"] != 0 {
		t.Errorf("no-EKU leaf: %v", checks(l.Chain(ch)))
	}
	ch = base()
	ch[0].EKU = []string{"clientAuth"}
	if cs := checks(l.Chain(ch)); cs["eku-mismatch"] != 1 || cs["eku-absent"] != 0 {
		t.Errorf("clientAuth-only leaf: %v", cs)
	}
	ch = base()
	ch[0].EKU = []string{"serverAuth", "clientAuth"}
	if cs := checks(l.Chain(ch)); cs["eku-mismatch"] != 0 || cs["eku-absent"] != 0 {
		t.Errorf("serverAuth leaf flagged: %v", cs)
	}
}

func TestLintSANCNMismatch(t *testing.T) {
	l := strictLinter(t)
	mkLeaf := func(cn string, sans ...string) certmodel.Chain {
		return certmodel.Chain{
			mk("CN=LRoot", "CN="+cn, certmodel.BCFalse, sans...),
			mk("CN=LRoot", "CN=LRoot", certmodel.BCTrue),
		}
	}
	cases := []struct {
		cn   string
		sans []string
		want int
	}{
		{"covered.example.com", []string{"covered.example.com"}, 0},
		{"www.example.com", []string{"*.example.com"}, 0},      // wildcard covers
		{"a.b.example.com", []string{"*.example.com"}, 1},      // wildcards are single-label
		{"other.example.org", []string{"site.example.com"}, 1}, // plainly uncovered
		{"Internal Device CA", []string{"dev.example.com"}, 0}, // CN not DNS-shaped
		{"nosan.example.com", nil, 0},                          // missing-san territory, not mismatch
	}
	for _, tc := range cases {
		cs := checks(l.Chain(mkLeaf(tc.cn, tc.sans...)))
		if cs["san-cn-mismatch"] != tc.want {
			t.Errorf("cn=%q sans=%v: san-cn-mismatch = %d, want %d", tc.cn, tc.sans, cs["san-cn-mismatch"], tc.want)
		}
	}
}

func TestLintSerialReuse(t *testing.T) {
	l := strictLinter(t)
	a := mk("CN=Issuer", "CN=one.example.com", certmodel.BCFalse, "one.example.com")
	b := mk("CN=Issuer", "CN=two.example.com", certmodel.BCFalse, "two.example.com")
	a.SerialHex, b.SerialHex = "2a", "2a"
	cs := checks(l.Chain(certmodel.Chain{a, b}))
	if cs["serial-reuse"] != 1 {
		t.Errorf("serial reuse not flagged: %v", cs)
	}
	// Different issuers may share serials freely.
	c := mk("CN=Another", "CN=three.example.com", certmodel.BCFalse, "three.example.com")
	c.SerialHex = "2a"
	if cs := checks(l.Chain(certmodel.Chain{a, c})); cs["serial-reuse"] != 0 {
		t.Errorf("cross-issuer serial flagged: %v", cs)
	}
	// Empty serials (unrecorded by the log source) never fire.
	d := mk("CN=Issuer", "CN=four.example.com", certmodel.BCFalse)
	e := mk("CN=Issuer", "CN=five.example.com", certmodel.BCFalse)
	if cs := checks(l.Chain(certmodel.Chain{d, e})); cs["serial-reuse"] != 0 {
		t.Errorf("empty serials flagged: %v", cs)
	}
}

func TestLintNearExpiry(t *testing.T) {
	l := strictLinter(t)
	m := mk("CN=x", "CN=soon.example.com", certmodel.BCFalse)
	m.NotAfter = now.Add(10 * 24 * time.Hour)
	if cs := checks(l.Cert(m)); cs["near-expiry"] != 1 {
		t.Errorf("near-expiry missed: %v", cs)
	}
	// Already expired certificates are the expired check's business.
	m.NotAfter = now.Add(-time.Hour)
	cs := checks(l.Cert(m))
	if cs["near-expiry"] != 0 || cs["expired"] != 1 {
		t.Errorf("expired cert: %v", cs)
	}
}

func TestLintEmptyDN(t *testing.T) {
	l := strictLinter(t)
	m := mk("CN=x", "CN=y", certmodel.BCFalse)
	m.Subject = dn.DN{}
	m.Issuer = dn.DN{}
	cs := checks(l.Cert(m))
	if cs["empty-dn"] != 2 {
		t.Errorf("empty-dn = %d, want 2 (subject and issuer)", cs["empty-dn"])
	}
}

func TestLintSelfIssuedIntermediate(t *testing.T) {
	l := strictLinter(t)
	ch := certmodel.Chain{
		mk("CN=LRoot", "CN=sii.example.com", certmodel.BCFalse, "sii.example.com"),
		mk("CN=Island", "CN=Island", certmodel.BCTrue), // interior self-signed CA
		mk("CN=LRoot", "CN=LRoot", certmodel.BCTrue),
	}
	fs := l.Chain(ch)
	found := false
	for _, f := range fs {
		if f.Check == "self-issued-intermediate" && f.CertIndex == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("interior self-issued CA not flagged: %v", fs)
	}
}

func TestLintWildcardApexOverlap(t *testing.T) {
	l := strictLinter(t)
	m := mk("CN=x", "CN=w.example.com", certmodel.BCFalse, "*.example.com", "example.com")
	if cs := checks(l.Cert(m)); cs["wildcard-apex-overlap"] != 1 {
		t.Errorf("overlap missed: %v", cs)
	}
	m2 := mk("CN=x", "CN=w.example.com", certmodel.BCFalse, "*.example.com", "other.org")
	if cs := checks(l.Cert(m2)); cs["wildcard-apex-overlap"] != 0 {
		t.Errorf("non-overlap flagged: %v", cs)
	}
}

func TestLintCrossSignDivergence(t *testing.T) {
	db := trustdb.New()
	db.AddRoot(trustdb.StoreMozilla, mk("CN=LRoot", "CN=LRoot", certmodel.BCTrue))
	cl := chain.NewClassifier(db)
	cl.CrossSigns.Add(dn.MustParse("CN=Variant CA"), dn.MustParse("CN=LRoot"))
	l := New(cl, Config{Now: now, Profile: ProfileStrict})
	ch := certmodel.Chain{
		mk("CN=Variant CA", "CN=d.example.com", certmodel.BCFalse, "d.example.com"),
		mk("CN=LRoot", "CN=LRoot", certmodel.BCTrue),
		// The textual issuer is also delivered, away from the matched slot.
		mk("CN=Some Root", "CN=Variant CA", certmodel.BCTrue),
	}
	cs := checks(l.Chain(ch))
	if cs["cross-sign-divergence"] != 1 {
		t.Errorf("divergence not flagged: %v", cs)
	}
}

func TestSanCoversHelper(t *testing.T) {
	cases := []struct {
		sans []string
		name string
		want bool
	}{
		{[]string{"a.example.com"}, "A.EXAMPLE.COM", true},
		{[]string{"*.example.com"}, "x.example.com", true},
		{[]string{"*.example.com"}, "example.com", false},
		{[]string{"*.example.com"}, "a.b.example.com", false},
		{nil, "a.example.com", false},
	}
	for _, tc := range cases {
		if got := sanCovers(tc.sans, tc.name); got != tc.want {
			t.Errorf("sanCovers(%v, %q) = %v, want %v", tc.sans, tc.name, got, tc.want)
		}
	}
}
