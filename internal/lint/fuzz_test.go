package lint

import (
	"reflect"
	"sync"
	"testing"

	"certchains/internal/campus"
	"certchains/internal/certmodel"
)

// fuzzScenario generates one small campus corpus shared by every fuzz
// execution; regeneration per input would dominate the fuzzing budget.
var fuzzScenario = sync.OnceValues(func() (*campus.Scenario, error) {
	cfg := campus.DefaultConfig()
	cfg.Seed = 7
	cfg.Scale = 0.0005
	return campus.Generate(cfg)
})

// FuzzLintChain drives the full engine over campus-generated chains (every
// class: public, private, interception, placeholder, malformed deliveries)
// plus fuzzer-mutated slicings. The engine must never panic and must be
// deterministic: linting the same chain twice yields identical findings.
func FuzzLintChain(f *testing.F) {
	s, err := fuzzScenario()
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		f.Add(uint32(i*37), uint8(i), uint8(i%3))
	}
	f.Fuzz(func(t *testing.T, idx uint32, cut uint8, profSel uint8) {
		obs := s.Observations
		if len(obs) == 0 {
			t.Skip("empty corpus")
		}
		ch := obs[int(idx)%len(obs)].Chain
		// Mutate the delivery shape: rotate and truncate by the fuzzed cut so
		// the engine also sees orders and prefixes the generator never emits.
		if n := len(ch); n > 0 {
			rot := int(cut) % n
			mutated := make(certmodel.Chain, 0, n)
			mutated = append(mutated, ch[rot:]...)
			mutated = append(mutated, ch[:rot]...)
			keep := 1 + int(cut)%n
			ch = mutated[:keep]
		}
		profile := []string{ProfilePaper, ProfileStrict, ProfileAll}[int(profSel)%3]
		l := New(s.Classifier, Config{Now: s.End(), Profile: profile})

		first := l.Chain(ch)
		second := l.Chain(ch)
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("non-deterministic lint:\n%v\n%v", first, second)
		}
		for i := 1; i < len(first); i++ {
			a, b := first[i-1], first[i]
			if a.CertIndex > b.CertIndex || (a.CertIndex == b.CertIndex && a.Check > b.Check) {
				t.Fatalf("findings out of order at %d: %v", i, first)
			}
		}
		for _, fd := range first {
			if fd.CertIndex < -1 || fd.CertIndex >= len(ch) {
				t.Fatalf("finding position %d outside chain of %d", fd.CertIndex, len(ch))
			}
			if _, ok := l.Registry().Lookup(fd.Check); !ok {
				t.Fatalf("finding carries unregistered check %q", fd.Check)
			}
		}
	})
}
