package lint

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"certchains/internal/certmodel"
	"certchains/internal/chain"
	"certchains/internal/trustdb"
)

var update = flag.Bool("update", false, "rewrite golden files")

// emitFixture lints a fixed chain with a fixed clock so the emitted bytes
// are fully deterministic.
func emitFixture(t *testing.T) (*Linter, []Finding) {
	t.Helper()
	r := NewRegistry()
	registerPaperChecks(r)
	db := trustdb.New()
	db.AddRoot(trustdb.StoreMozilla, mk("CN=LRoot", "CN=LRoot", certmodel.BCTrue))
	l := NewWithRegistry(chain.NewClassifier(db), r, Config{Now: now, Profile: ProfilePaper})

	expired := mk("CN=LRoot", "CN=old.example.com", certmodel.BCFalse, "old.example.com")
	expired.NotAfter = now.AddDate(-1, 0, 0)
	ch := certmodel.Chain{
		expired,
		mk("CN=LRoot", "CN=LRoot", certmodel.BCTrue),
		mk("CN=stray", "CN=stray", certmodel.BCAbsent),
	}
	return l, l.Chain(ch)
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file (run with -update to regenerate):\n%s", name, got)
	}
}

func TestWriteJSONGolden(t *testing.T) {
	_, findings := emitFixture(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, findings); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "findings.json", buf.Bytes())

	// The document must round-trip as valid JSON with the expected shape.
	var doc struct {
		Findings []map[string]any `json:"findings"`
		Summary  map[string]int   `json:"summary"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Findings) == 0 {
		t.Error("no findings emitted")
	}
	if doc.Summary["info"]+doc.Summary["warn"]+doc.Summary["error"] != len(doc.Findings) {
		t.Errorf("summary %v does not tally %d findings", doc.Summary, len(doc.Findings))
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	// Empty findings emit an empty array, not null.
	if !bytes.Contains(buf.Bytes(), []byte(`"findings": []`)) {
		t.Errorf("empty findings: %s", buf.Bytes())
	}
}

func TestWriteSARIFGolden(t *testing.T) {
	l, findings := emitFixture(t)
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, l, "fixture.pem", findings); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "findings.sarif", buf.Bytes())

	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string           `json:"name"`
					Rules []map[string]any `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						Region *struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("log shape: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "certchain-lint" {
		t.Errorf("driver name %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(l.EnabledChecks()) {
		t.Errorf("%d rules for %d enabled checks", len(run.Tool.Driver.Rules), len(l.EnabledChecks()))
	}
	for _, res := range run.Results {
		if len(res.Locations) != 1 {
			t.Errorf("result %q has %d locations", res.RuleID, len(res.Locations))
		}
	}
	// Chain-level findings carry no region; positioned ones start at line 1.
	sawRegion, sawChainLevel := false, false
	for _, res := range run.Results {
		region := res.Locations[0].PhysicalLocation.Region
		if region == nil {
			sawChainLevel = true
		} else if region.StartLine >= 1 {
			sawRegion = true
		}
	}
	if !sawRegion || !sawChainLevel {
		t.Errorf("fixture should produce both positioned and chain-level results (region=%v chain=%v)",
			sawRegion, sawChainLevel)
	}
}

func TestWriteSARIFDefaultArtifact(t *testing.T) {
	l, findings := emitFixture(t)
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, l, "", findings); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"uri": "chain"`)) {
		t.Error("empty artifact did not default to \"chain\"")
	}
}
