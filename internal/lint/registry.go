package lint

import (
	"fmt"
	"sort"

	"certchains/internal/certmodel"
)

// Scope states what a check examines.
type Scope int

const (
	// ScopeCert checks run once per certificate position (and for isolated
	// certificates).
	ScopeCert Scope = iota
	// ScopeChain checks run once per delivered chain with full structural
	// context.
	ScopeChain
)

// String implements fmt.Stringer.
func (s Scope) String() string {
	if s == ScopeChain {
		return "chain"
	}
	return "cert"
}

// Profile names. Profiles nest: paper ⊂ strict ⊂ all.
const (
	// ProfilePaper enables the checks that directly reproduce a finding the
	// paper reports.
	ProfilePaper = "paper"
	// ProfileStrict adds the full hygiene set (weak keys, deprecated
	// algorithms, ordering, pathLen, ...).
	ProfileStrict = "strict"
	// ProfileAll enables every registered check, including custom ones
	// registered without profile tags.
	ProfileAll = "all"
)

// Check is one self-describing lint.
type Check struct {
	// ID is the stable, kebab-case identifier findings carry.
	ID string
	// Severity is the default severity of the check's findings; individual
	// findings may override it via Collector.AddSeverity.
	Severity Severity
	// Scope states whether the check examines one certificate or the whole
	// delivered chain.
	Scope Scope
	// Description is a one-line statement of what the check flags.
	Description string
	// Citation anchors the check to the paper section (or related work)
	// that motivates it.
	Citation string
	// Profiles lists the profiles that enable this check; ProfileAll is
	// implicit for every registered check.
	Profiles []string
	// Applies optionally gates the check: consulted per certificate
	// position for ScopeCert, once with position -1 for ScopeChain. A nil
	// predicate always applies.
	Applies func(ctx *Context, pos int) bool
	// CertFn implements a ScopeCert check.
	CertFn func(ctx *Context, co *Collector, m *certmodel.Meta, pos int)
	// ChainFn implements a ScopeChain check.
	ChainFn func(ctx *Context, co *Collector)
}

// InProfile reports whether the check is enabled under the named profile.
func (c *Check) InProfile(profile string) bool {
	if profile == ProfileAll {
		return true
	}
	for _, p := range c.Profiles {
		if p == profile {
			return true
		}
	}
	return false
}

// Collector gathers a single check's findings, stamping the check ID and
// default severity.
type Collector struct {
	check *Check
	out   []Finding
}

// Add records a finding at the check's default severity. pos is the
// certificate position, or -1 for chain-level findings.
func (co *Collector) Add(pos int, format string, args ...any) {
	co.AddSeverity(co.check.Severity, pos, format, args...)
}

// AddSeverity records a finding with an explicit severity.
func (co *Collector) AddSeverity(sev Severity, pos int, format string, args ...any) {
	co.out = append(co.out, Finding{
		Check:     co.check.ID,
		Severity:  sev,
		CertIndex: pos,
		Message:   fmt.Sprintf(format, args...),
	})
}

// Registry holds the known checks, keyed by stable ID.
type Registry struct {
	byID map[string]*Check
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*Check)}
}

// Register validates and adds a check. Every check must carry a stable ID,
// a description, a paper citation, and exactly the implementation its scope
// requires; duplicate IDs are rejected.
func (r *Registry) Register(c *Check) error {
	switch {
	case c.ID == "":
		return fmt.Errorf("lint: check without ID")
	case c.Description == "":
		return fmt.Errorf("lint: check %q without description", c.ID)
	case c.Citation == "":
		return fmt.Errorf("lint: check %q without paper citation", c.ID)
	case c.Scope == ScopeCert && (c.CertFn == nil || c.ChainFn != nil):
		return fmt.Errorf("lint: cert-scope check %q must set CertFn only", c.ID)
	case c.Scope == ScopeChain && (c.ChainFn == nil || c.CertFn != nil):
		return fmt.Errorf("lint: chain-scope check %q must set ChainFn only", c.ID)
	}
	if _, dup := r.byID[c.ID]; dup {
		return fmt.Errorf("lint: duplicate check ID %q", c.ID)
	}
	r.byID[c.ID] = c
	return nil
}

// MustRegister is Register, panicking on invalid checks (builtin wiring).
func (r *Registry) MustRegister(c *Check) {
	if err := r.Register(c); err != nil {
		panic(err)
	}
}

// Lookup returns the check with the given ID.
func (r *Registry) Lookup(id string) (*Check, bool) {
	c, ok := r.byID[id]
	return c, ok
}

// Len returns the number of registered checks.
func (r *Registry) Len() int { return len(r.byID) }

// Checks returns every registered check, sorted by ID.
func (r *Registry) Checks() []*Check {
	out := make([]*Check, 0, len(r.byID))
	for _, c := range r.byID {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ProfileChecks returns the checks the named profile enables, sorted by ID.
func (r *Registry) ProfileChecks(profile string) []*Check {
	var out []*Check
	for _, c := range r.Checks() {
		if c.InProfile(profile) {
			out = append(out, c)
		}
	}
	return out
}

// Profiles returns the profile names any registered check mentions, plus
// ProfileAll, sorted.
func (r *Registry) Profiles() []string {
	set := map[string]bool{ProfileAll: true}
	for _, c := range r.byID {
		for _, p := range c.Profiles {
			set[p] = true
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
