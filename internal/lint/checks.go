package lint

import (
	"strings"

	"certchains/internal/certmodel"
	"certchains/internal/chain"
)

// Profile tag sets for the builtin checks. Paper checks reproduce a finding
// the paper reports directly; strict adds the wider hygiene set.
var (
	paperProfiles  = []string{ProfilePaper, ProfileStrict}
	strictProfiles = []string{ProfileStrict}
)

// leafPositionOnly gates certificate checks to the delivered leaf position.
func leafPositionOnly(ctx *Context, pos int) bool {
	return ctx.LeafPosition(pos)
}

// DefaultRegistry returns a fresh registry holding every builtin check.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	registerPaperChecks(r)
	registerStrictChecks(r)
	return r
}

// registerPaperChecks adds the checks that correspond one-to-one to findings
// the paper reports.
func registerPaperChecks(r *Registry) {
	r.MustRegister(&Check{
		ID: "basic-constraints-absent", Severity: Warn, Scope: ScopeCert,
		Description: "basicConstraints extension missing entirely",
		Citation:    "§4.3 (absent on 55–78% of non-public certificates)",
		Profiles:    paperProfiles,
		CertFn: func(ctx *Context, co *Collector, m *certmodel.Meta, pos int) {
			if m.BC == certmodel.BCAbsent {
				co.Add(pos, "basicConstraints extension missing; RFC 5280 requires an explicit CA boolean")
			}
		},
	})
	r.MustRegister(&Check{
		ID: "expired", Severity: Warn, Scope: ScopeCert,
		Description: "certificate past its NotAfter date",
		Citation:    "§4.2 (leaves served >5 years past expiry)",
		Profiles:    paperProfiles,
		CertFn: func(ctx *Context, co *Collector, m *certmodel.Meta, pos int) {
			if !m.ExpiredAt(ctx.Cfg.Now) {
				return
			}
			sev := Warn
			if ctx.LeafPosition(pos) {
				sev = Error
			}
			co.AddSeverity(sev, pos, "certificate expired %s", m.NotAfter.Format("2006-01-02"))
		},
	})
	r.MustRegister(&Check{
		ID: "not-yet-valid", Severity: Error, Scope: ScopeCert,
		Description: "certificate before its NotBefore date",
		Citation:    "§4.2 (validity hygiene)",
		Profiles:    paperProfiles,
		CertFn: func(ctx *Context, co *Collector, m *certmodel.Meta, pos int) {
			if ctx.Cfg.Now.Before(m.NotBefore) {
				co.Add(pos, "certificate not valid before %s", m.NotBefore.Format("2006-01-02"))
			}
		},
	})
	r.MustRegister(&Check{
		ID: "missing-san", Severity: Warn, Scope: ScopeCert,
		Description: "leaf without subjectAltName",
		Citation:    "Appendix B (modern clients ignore the CN)",
		Profiles:    paperProfiles,
		Applies:     leafPositionOnly,
		CertFn: func(ctx *Context, co *Collector, m *certmodel.Meta, pos int) {
			if len(m.SAN) == 0 && !m.SelfSigned() {
				co.Add(pos, "leaf has no subjectAltName; modern clients ignore the CN")
			}
		},
	})
	r.MustRegister(&Check{
		ID: "validity-too-long", Severity: Warn, Scope: ScopeCert,
		Description: "leaf validity above the ecosystem ceiling",
		Citation:    "§4.3 (multi-decade private validity periods)",
		Profiles:    paperProfiles,
		Applies:     leafPositionOnly,
		CertFn: func(ctx *Context, co *Collector, m *certmodel.Meta, pos int) {
			if v := m.NotAfter.Sub(m.NotBefore); v > ctx.Cfg.MaxLeafValidity {
				co.Add(pos, "leaf valid %d days, over the %d-day ceiling",
					int(v.Hours()/24), int(ctx.Cfg.MaxLeafValidity.Hours()/24))
			}
		},
	})
	r.MustRegister(&Check{
		ID: "ca-leaf", Severity: Error, Scope: ScopeCert,
		Description: "leaf-position certificate asserting CA=TRUE",
		Citation:    "§4.3 (basicConstraints misuse)",
		Profiles:    paperProfiles,
		Applies:     leafPositionOnly,
		CertFn: func(ctx *Context, co *Collector, m *certmodel.Meta, pos int) {
			if m.BC == certmodel.BCTrue {
				co.Add(pos, "leaf-position certificate asserts CA=TRUE")
			}
		},
	})
	r.MustRegister(&Check{
		ID: "localhost-placeholder", Severity: Error, Scope: ScopeCert,
		Description: "default localhost placeholder subject in production",
		Citation:    "Appendix F.3 (the 100 localhost chains)",
		Profiles:    paperProfiles,
		CertFn: func(ctx *Context, co *Collector, m *certmodel.Meta, pos int) {
			if strings.EqualFold(m.Subject.CommonName(), "localhost") {
				co.Add(pos, "default localhost placeholder subject served in production")
			}
		},
	})
	r.MustRegister(&Check{
		ID: "staging-placeholder", Severity: Error, Scope: ScopeCert,
		Description: "CA staging-environment certificate in production",
		Citation:    "§4.2 (the 14 Fake LE chains)",
		Profiles:    paperProfiles,
		CertFn: func(ctx *Context, co *Collector, m *certmodel.Meta, pos int) {
			if isStagingPlaceholder(m) {
				co.Add(pos, "CA staging-environment certificate (%q) deployed in production", m.Subject.CommonName())
			}
		},
	})
	r.MustRegister(&Check{
		ID: "no-trust-path", Severity: Error, Scope: ScopeChain,
		Description: "no complete matched path in the delivery",
		Citation:    "§4.2/Table 3 (establishment drops to ≈57%)",
		Profiles:    paperProfiles,
		ChainFn: func(ctx *Context, co *Collector) {
			if ctx.Analysis.Verdict == chain.VerdictNoPath {
				co.Add(-1, "no complete matched path; clients validating the presented chain will fail (establishment drops to ≈57%%)")
			}
		},
	})
	r.MustRegister(&Check{
		ID: "unnecessary-certificates", Severity: Warn, Scope: ScopeChain,
		Description: "certificates outside the complete matched path",
		Citation:    "§4.2 (the central unnecessary-certificate finding)",
		Profiles:    paperProfiles,
		ChainFn: func(ctx *Context, co *Collector) {
			if ctx.Analysis.Verdict == chain.VerdictContainsPath {
				co.Add(-1, "%d unnecessary certificate(s); strict validators may reject and every handshake carries dead bytes",
					len(ctx.Analysis.Unnecessary))
			}
		},
	})
	r.MustRegister(&Check{
		ID: "root-included", Severity: Info, Scope: ScopeChain,
		Description: "self-signed root included in the delivery",
		Citation:    "Figure 1/§4.1 (root omission is the norm)",
		Profiles:    paperProfiles,
		ChainFn: func(ctx *Context, co *Collector) {
			a := ctx.Analysis
			if a.Complete != nil && a.Complete.Len() > 1 {
				top := ctx.Chain[a.Complete.End]
				if top.SelfSigned() {
					co.Add(-1, "self-signed root %q included in delivery; clients already hold their anchors", top.Subject.CommonName())
				}
			}
		},
	})
	r.MustRegister(&Check{
		ID: "cross-signed-link", Severity: Info, Scope: ScopeChain,
		Description: "link matched through a cross-signing exemption",
		Citation:    "Appendix D.1 (cross-signing relationships)",
		Profiles:    paperProfiles,
		ChainFn: func(ctx *Context, co *Collector) {
			for i, link := range ctx.Analysis.Links {
				if link == chain.LinkCrossSign {
					co.Add(-1, "pair %d chains through a cross-signing relationship; verify both paths stay valid", i)
				}
			}
		},
	})
}

// registerStrictChecks adds the wider deployment-hygiene set the strict
// profile enables on top of the paper checks.
func registerStrictChecks(r *Registry) {
	r.MustRegister(&Check{
		ID: "validity-nesting", Severity: Warn, Scope: ScopeChain,
		Description: "child certificate validity extends beyond its issuer's",
		Citation:    "§4.2 (path validity hygiene); arXiv:2009.08772",
		Profiles:    strictProfiles,
		ChainFn: func(ctx *Context, co *Collector) {
			for i, link := range ctx.Analysis.Links {
				if !link.Matched() {
					continue
				}
				child, parent := ctx.Chain[i], ctx.Chain[i+1]
				if child.NotBefore.Before(parent.NotBefore) || child.NotAfter.After(parent.NotAfter) {
					co.Add(i, "certificate outlives its issuer: child valid %s–%s, issuer %s–%s",
						child.NotBefore.Format("2006-01-02"), child.NotAfter.Format("2006-01-02"),
						parent.NotBefore.Format("2006-01-02"), parent.NotAfter.Format("2006-01-02"))
				}
			}
		},
	})
	r.MustRegister(&Check{
		ID: "weak-key", Severity: Warn, Scope: ScopeCert,
		Description: "public key below current strength floors",
		Citation:    "arXiv:2401.18053 (linting methodology)",
		Profiles:    strictProfiles,
		CertFn: func(ctx *Context, co *Collector, m *certmodel.Meta, pos int) {
			switch m.KeyAlg {
			case certmodel.KeyRSA:
				switch {
				case m.KeyBits == 0:
				case m.KeyBits < 1024:
					co.AddSeverity(Error, pos, "RSA key of %d bits is trivially breakable", m.KeyBits)
				case m.KeyBits < 2048:
					co.Add(pos, "RSA key of %d bits is below the 2048-bit floor", m.KeyBits)
				}
			case certmodel.KeyECDSA:
				if m.KeyBits > 0 && m.KeyBits < 256 {
					co.Add(pos, "ECDSA key over a %d-bit curve is below the P-256 floor", m.KeyBits)
				}
			case certmodel.KeyDSA:
				co.Add(pos, "DSA keys are retired from the Web PKI")
			}
		},
	})
	r.MustRegister(&Check{
		ID: "deprecated-sig-alg", Severity: Warn, Scope: ScopeCert,
		Description: "signature algorithm deprecated for new issuance",
		Citation:    "arXiv:2401.18053 (linting methodology)",
		Profiles:    strictProfiles,
		CertFn: func(ctx *Context, co *Collector, m *certmodel.Meta, pos int) {
			alg := strings.ToLower(m.SigAlg)
			switch {
			case alg == "":
			case strings.Contains(alg, "md5") || strings.Contains(alg, "md2"):
				co.AddSeverity(Error, pos, "signature algorithm %q is cryptographically broken", m.SigAlg)
			case strings.Contains(alg, "sha1") || strings.Contains(alg, "sha-1"):
				co.Add(pos, "signature algorithm %q is deprecated (SHA-1)", m.SigAlg)
			}
		},
	})
	r.MustRegister(&Check{
		ID: "duplicate-in-chain", Severity: Warn, Scope: ScopeChain,
		Description: "identical certificate delivered twice in one chain",
		Citation:    "§4.2 (unnecessary certificates)",
		Profiles:    strictProfiles,
		ChainFn: func(ctx *Context, co *Collector) {
			first := make(map[certmodel.Fingerprint]int)
			for i, m := range ctx.Chain {
				if j, seen := first[m.FP]; seen {
					co.Add(i, "duplicate of the certificate at position %d", j)
					continue
				}
				first[m.FP] = i
			}
		},
	})
	r.MustRegister(&Check{
		ID: "chain-out-of-order", Severity: Warn, Scope: ScopeChain,
		Description: "delivered order broken but a matched ordering exists",
		Citation:    "§4.2/Appendix F.2 (leaf-first misdelivery)",
		Profiles:    strictProfiles,
		ChainFn: func(ctx *Context, co *Collector) {
			a := ctx.Analysis
			if a.MismatchRatio == 0 || len(ctx.Chain) < 2 {
				return
			}
			if matchedReorderExists(ctx.Chain) {
				co.Add(-1, "links mismatch as delivered, but a reordering of the same certificates forms a matched path")
			}
		},
	})
	r.MustRegister(&Check{
		ID: "pathlen-violation", Severity: Error, Scope: ScopeChain,
		Description: "matched path deeper than an issuer's pathLenConstraint",
		Citation:    "§4.3 (basicConstraints hygiene)",
		Profiles:    strictProfiles,
		ChainFn: func(ctx *Context, co *Collector) {
			a := ctx.Analysis
			if a.Complete == nil || a.Complete.Len() < 2 {
				return
			}
			for j := a.Complete.Start + 1; j <= a.Complete.End; j++ {
				m := ctx.Chain[j]
				// Intermediates strictly between the leaf and this issuer.
				depth := j - a.Complete.Start - 1
				if m.HasPathLen && depth > m.PathLen {
					co.Add(j, "pathLenConstraint %d allows %d intermediate(s) below, but the matched path has %d",
						m.PathLen, m.PathLen, depth)
				}
			}
		},
	})
	r.MustRegister(&Check{
		ID: "eku-absent", Severity: Info, Scope: ScopeCert,
		Description: "leaf without extended key usage",
		Citation:    "§4.3 (minimal private issuance practices)",
		Profiles:    strictProfiles,
		Applies:     leafPositionOnly,
		CertFn: func(ctx *Context, co *Collector, m *certmodel.Meta, pos int) {
			if len(m.EKU) == 0 && !m.SelfSigned() {
				co.Add(pos, "no extended key usage; issuance intent is unverifiable (log-level sources may simply not record it)")
			}
		},
	})
	r.MustRegister(&Check{
		ID: "eku-mismatch", Severity: Warn, Scope: ScopeCert,
		Description: "leaf EKU excludes TLS server authentication",
		Citation:    "§4.3 (certificates serving TLS without serverAuth)",
		Profiles:    strictProfiles,
		Applies:     leafPositionOnly,
		CertFn: func(ctx *Context, co *Collector, m *certmodel.Meta, pos int) {
			if len(m.EKU) == 0 {
				return
			}
			for _, e := range m.EKU {
				if e == "serverAuth" || e == "any" {
					return
				}
			}
			co.Add(pos, "extended key usage %v omits serverAuth on a TLS-served leaf", m.EKU)
		},
	})
	r.MustRegister(&Check{
		ID: "san-cn-mismatch", Severity: Warn, Scope: ScopeCert,
		Description: "DNS-shaped CN not covered by any SAN",
		Citation:    "Appendix B (name mismatch failures)",
		Profiles:    strictProfiles,
		Applies:     leafPositionOnly,
		CertFn: func(ctx *Context, co *Collector, m *certmodel.Meta, pos int) {
			cn := m.Subject.CommonName()
			if len(m.SAN) == 0 || !dnsShaped(cn) {
				return
			}
			if !sanCovers(m.SAN, cn) {
				co.Add(pos, "common name %q is not covered by any subjectAltName entry", cn)
			}
		},
	})
	r.MustRegister(&Check{
		ID: "serial-reuse", Severity: Error, Scope: ScopeChain,
		Description: "one issuer reusing a serial for distinct certificates",
		Citation:    "§4.3 (non-compliant private issuance)",
		Profiles:    strictProfiles,
		ChainFn: func(ctx *Context, co *Collector) {
			for i, m := range ctx.Chain {
				if m.SerialHex == "" {
					continue
				}
				for j := 0; j < i; j++ {
					o := ctx.Chain[j]
					if o.SerialHex == m.SerialHex && o.Issuer.Equal(m.Issuer) && o.FP != m.FP {
						co.Add(i, "issuer %q reused serial %s already seen at position %d for a different certificate",
							m.Issuer.CommonName(), m.SerialHex, j)
						break
					}
				}
			}
		},
	})
	r.MustRegister(&Check{
		ID: "aia-absent", Severity: Info, Scope: ScopeCert,
		Description: "leaf without AIA/OCSP endpoints",
		Citation:    "§6.2 (revocation and repair tooling)",
		Profiles:    strictProfiles,
		Applies:     leafPositionOnly,
		CertFn: func(ctx *Context, co *Collector, m *certmodel.Meta, pos int) {
			if !m.SelfSigned() && len(m.OCSPServers) == 0 && len(m.CAIssuerURLs) == 0 {
				co.Add(pos, "no authority information access; clients cannot fetch the issuer or check revocation")
			}
		},
	})
	r.MustRegister(&Check{
		ID: "wildcard-apex-overlap", Severity: Info, Scope: ScopeCert,
		Description: "wildcard SAN alongside its apex domain",
		Citation:    "Appendix B (naming oddities)",
		Profiles:    strictProfiles,
		CertFn: func(ctx *Context, co *Collector, m *certmodel.Meta, pos int) {
			for _, san := range m.SAN {
				if !strings.HasPrefix(san, "*.") {
					continue
				}
				if sanHas(m.SAN, san[2:]) {
					co.Add(pos, "wildcard %q and its apex %q both listed; the pair is redundant for most validators", san, san[2:])
					return
				}
			}
		},
	})
	r.MustRegister(&Check{
		ID: "near-expiry", Severity: Warn, Scope: ScopeCert,
		Description: "certificate expiring inside the renewal window",
		Citation:    "§4.2 (expired leaves kept in production)",
		Profiles:    strictProfiles,
		CertFn: func(ctx *Context, co *Collector, m *certmodel.Meta, pos int) {
			if m.ExpiredAt(ctx.Cfg.Now) {
				return
			}
			if left := m.NotAfter.Sub(ctx.Cfg.Now); left <= ctx.Cfg.NearExpiry {
				co.Add(pos, "certificate expires %s (within the %d-day renewal window)",
					m.NotAfter.Format("2006-01-02"), int(ctx.Cfg.NearExpiry.Hours()/24))
			}
		},
	})
	r.MustRegister(&Check{
		ID: "empty-dn", Severity: Warn, Scope: ScopeCert,
		Description: "empty issuer or subject distinguished name",
		Citation:    "§4.3 (minimal private issuance practices)",
		Profiles:    strictProfiles,
		CertFn: func(ctx *Context, co *Collector, m *certmodel.Meta, pos int) {
			if m.Subject.Normalized() == "" {
				co.Add(pos, "empty subject DN; clients cannot name-match this certificate")
			}
			if m.Issuer.Normalized() == "" {
				co.Add(pos, "empty issuer DN; the issuing authority is unidentifiable")
			}
		},
	})
	r.MustRegister(&Check{
		ID: "self-issued-intermediate", Severity: Warn, Scope: ScopeChain,
		Description: "self-issued CA certificate in the chain interior",
		Citation:    "§4.3 (self-signed certificates beyond leaves)",
		Profiles:    strictProfiles,
		ChainFn: func(ctx *Context, co *Collector) {
			for i := 1; i < len(ctx.Chain)-1; i++ {
				m := ctx.Chain[i]
				if m.SelfSigned() && m.CanIssue() {
					co.Add(i, "self-issued certificate %q in the chain interior cannot extend any path", m.Subject.CommonName())
				}
			}
		},
	})
	r.MustRegister(&Check{
		ID: "cross-sign-divergence", Severity: Info, Scope: ScopeChain,
		Description: "cross-sign and textual parent both delivered",
		Citation:    "Appendix D.1; arXiv:2009.08772 (cross-sign path divergence)",
		Profiles:    strictProfiles,
		ChainFn: func(ctx *Context, co *Collector) {
			for i, link := range ctx.Analysis.Links {
				if link != chain.LinkCrossSign {
					continue
				}
				want := ctx.Chain[i].Issuer
				for j, m := range ctx.Chain {
					if j != i+1 && m.Subject.Equal(want) {
						co.Add(-1, "pair %d chains through a cross-sign while the textual issuer is also delivered at position %d; validation paths diverge", i, j)
						break
					}
				}
			}
		},
	})
}

func isStagingPlaceholder(m *certmodel.Meta) bool {
	cn := m.Subject.CommonName()
	icn := m.Issuer.CommonName()
	return strings.HasPrefix(cn, "Fake LE ") || strings.HasPrefix(icn, "Fake LE ") ||
		strings.Contains(cn, "STAGING") || strings.Contains(icn, "STAGING")
}

// dnsShaped reports whether a CN plausibly names a DNS identity.
func dnsShaped(cn string) bool {
	return strings.Contains(cn, ".") && !strings.ContainsAny(cn, " \t") &&
		!strings.EqualFold(cn, "localhost")
}

// sanHas reports an exact (case-insensitive) SAN entry.
func sanHas(sans []string, name string) bool {
	for _, s := range sans {
		if strings.EqualFold(s, name) {
			return true
		}
	}
	return false
}

// sanCovers reports whether any SAN entry covers the name, honoring
// single-label wildcards.
func sanCovers(sans []string, name string) bool {
	name = strings.ToLower(name)
	for _, s := range sans {
		s = strings.ToLower(s)
		if s == name {
			return true
		}
		if suffix, ok := strings.CutPrefix(s, "*."); ok {
			rest, matched := strings.CutSuffix(name, "."+suffix)
			if matched && rest != "" && !strings.Contains(rest, ".") {
				return true
			}
		}
	}
	return false
}

// matchedReorderExists reports whether some permutation of the chain forms a
// fully matched path (issuer(i) == subject(i+1) for every adjacent pair).
// Chains longer than 8 certificates are skipped: the search is exponential
// in the worst case and delivered chains that long are already pathological.
func matchedReorderExists(ch certmodel.Chain) bool {
	n := len(ch)
	if n < 2 || n > 8 {
		return false
	}
	issuer := make([]string, n)
	subject := make([]string, n)
	for i, m := range ch {
		issuer[i] = m.Issuer.Normalized()
		subject[i] = m.Subject.Normalized()
	}
	used := make([]bool, n)
	var extend func(cur, placed int) bool
	extend = func(cur, placed int) bool {
		if placed == n {
			return true
		}
		for j := 0; j < n; j++ {
			if used[j] || subject[j] != issuer[cur] {
				continue
			}
			// A self-link (self-signed certificate matching itself) cannot
			// extend the path; skip identical positions.
			if j == cur {
				continue
			}
			used[j] = true
			if extend(j, placed+1) {
				return true
			}
			used[j] = false
		}
		return false
	}
	for start := 0; start < n; start++ {
		used[start] = true
		if extend(start, 1) {
			return true
		}
		used[start] = false
	}
	return false
}
