// Package intercept implements the paper's TLS interception identification
// (§3.2.1, Appendix B): connections whose leaf issuer is absent from the
// public databases are cross-referenced against CT logs — when CT records a
// different issuer for the same domain and validity period, the observed
// issuer is flagged as a possible interception middlebox, and a curated
// registry (standing in for the paper's manual web-search investigation)
// assigns it to one of the Table 1 categories.
package intercept

import (
	"fmt"
	"sync"
	"time"

	"certchains/internal/certmodel"
	"certchains/internal/ctlog"
	"certchains/internal/dn"
	"certchains/internal/trustdb"
)

// Category is the Table 1 issuer sector.
type Category string

// The six sectors of Table 1.
const (
	CategorySecurityNetwork   Category = "Security & Network"
	CategoryBusinessCorporate Category = "Business & Corporate"
	CategoryHealthEducation   Category = "Health & Education"
	CategoryGovernment        Category = "Government & Public Service"
	CategoryBankFinance       Category = "Bank & Finance"
	CategoryOther             Category = "Other"
)

// Categories lists all sectors in the paper's table order.
var Categories = []Category{
	CategorySecurityNetwork,
	CategoryBusinessCorporate,
	CategoryHealthEducation,
	CategoryGovernment,
	CategoryBankFinance,
	CategoryOther,
}

// Issuer is one identified interception entity.
type Issuer struct {
	// DN is the issuer distinguished name observed in intercepted chains.
	DN dn.DN
	// Name is a human-readable label (e.g. "Zscaler", "Fortinet").
	Name string
	// Category is the Table 1 sector.
	Category Category

	// key memoizes DN.Normalized(); Registry.Add fills it so hot-path
	// attribution never re-normalizes.
	key string
}

// Key returns the normalized DN key, memoized by Registry.Add.
func (i *Issuer) Key() string {
	if i.key != "" {
		return i.key
	}
	return i.DN.Normalized()
}

// Registry is the curated set of identified interception issuers — the
// outcome of the paper's manual investigation of CT mismatches (80 issuers).
// It is safe for concurrent use: the detection pass registers issuers while
// pipeline workers attribute observations.
type Registry struct {
	mu   sync.RWMutex
	byDN map[string]*Issuer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byDN: make(map[string]*Issuer)}
}

// Add registers an issuer. Re-adding the same DN overwrites the entry.
func (r *Registry) Add(iss *Issuer) {
	iss.key = iss.DN.Normalized()
	r.mu.Lock()
	r.byDN[iss.key] = iss
	r.mu.Unlock()
}

// Lookup returns the issuer entry for a DN.
func (r *Registry) Lookup(d dn.DN) (*Issuer, bool) {
	return r.LookupKey(d.Normalized())
}

// LookupKey is Lookup for callers that already hold the normalized DN key.
func (r *Registry) LookupKey(key string) (*Issuer, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	i, ok := r.byDN[key]
	return i, ok
}

// Len returns the number of registered issuers.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byDN)
}

// All returns the registered issuers in unspecified order.
func (r *Registry) All() []*Issuer {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Issuer, 0, len(r.byDN))
	for _, i := range r.byDN {
		out = append(out, i)
	}
	return out
}

// Verdict is the outcome of examining one connection.
type Verdict int

const (
	// NotCandidate: the leaf issuer is in the public databases, so the
	// connection is not examined further.
	NotCandidate Verdict = iota
	// NoCTRecord: the domain has no CT-logged certificate overlapping the
	// observed validity window, so no comparison is possible (the paper's
	// acknowledged blind spot, Appendix B).
	NoCTRecord
	// IssuerMatches: CT records the observed issuer for this domain, so
	// the certificate is presumably the server's own.
	IssuerMatches
	// IssuerMismatch: CT records only different issuers — possible
	// interception, queued for manual categorization.
	IssuerMismatch
	// NoSNI: the connection carried no server name, so there is nothing to
	// query CT for.
	NoSNI
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case NotCandidate:
		return "not-candidate"
	case NoCTRecord:
		return "no-ct-record"
	case IssuerMatches:
		return "issuer-matches-ct"
	case IssuerMismatch:
		return "issuer-mismatch"
	case NoSNI:
		return "no-sni"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Detector performs the CT cross-reference. A single detector may be shared
// by concurrent pipeline workers: the verdict cache is lock-protected, and
// Examine is a pure function of its inputs over the immutable trust database
// and CT log, so cached and freshly computed verdicts never diverge.
type Detector struct {
	DB *trustdb.DB
	CT *ctlog.Log

	// mu guards cache. Repeated observations of the same (leaf, SNI, time)
	// triple — common once observations are aggregated per chain — skip the
	// CT queries entirely.
	mu    sync.RWMutex
	cache map[examineKey]Verdict
}

// examineKey identifies one Examine input triple. A comparable struct key
// avoids the string concatenation the cache previously paid per probe.
type examineKey struct {
	fp  certmodel.Fingerprint
	sni string
	at  int64
}

// NewDetector builds a detector over the trust database and CT log.
func NewDetector(db *trustdb.DB, ct *ctlog.Log) *Detector {
	return &Detector{DB: db, CT: ct, cache: make(map[examineKey]Verdict)}
}

// Examine applies the §3.2.1 procedure to one observation: the delivered
// leaf certificate, the connection SNI, and the observation time.
func (d *Detector) Examine(leaf *certmodel.Meta, sni string, at time.Time) Verdict {
	key := examineKey{fp: leaf.FP, sni: sni, at: at.UnixNano()}
	d.mu.RLock()
	v, ok := d.cache[key]
	d.mu.RUnlock()
	if ok {
		return v
	}
	v = d.examine(leaf, sni, at)
	d.mu.Lock()
	d.cache[key] = v
	d.mu.Unlock()
	return v
}

func (d *Detector) examine(leaf *certmodel.Meta, sni string, at time.Time) Verdict {
	if d.DB.Classify(leaf) == trustdb.IssuedByPublicDB {
		return NotCandidate
	}
	if sni == "" {
		return NoSNI
	}
	// Compare against issuers CT recorded for this domain during the
	// observed certificate's validity period (checked at midpoint and at
	// the observation instant to tolerate reissuance).
	recorded := d.CT.IssuersFor(sni, at)
	if len(recorded) == 0 {
		mid := leaf.NotBefore.Add(leaf.NotAfter.Sub(leaf.NotBefore) / 2)
		recorded = d.CT.IssuersFor(sni, mid)
	}
	if len(recorded) == 0 {
		return NoCTRecord
	}
	for _, rec := range recorded {
		if dn.Equalish(rec, leaf.Issuer) {
			return IssuerMatches
		}
	}
	return IssuerMismatch
}
