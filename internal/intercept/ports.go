package intercept

// Port fingerprints: Appendix C observes that interception traffic
// concentrates on vendor-specific non-standard ports — 8013 is Fortinet's
// interception port, and 4437/14430 recur across middlebox deployments.
// The hints supplement the CT cross-reference: they cannot confirm
// interception on their own (the paper's method remains authoritative) but
// they prioritize candidates when no SNI is available for a CT query.

// PortHint grades how strongly a destination port suggests middlebox
// interception.
type PortHint int

const (
	// PortNeutral carries no signal (443 and other common TLS ports).
	PortNeutral PortHint = iota
	// PortUncommon is a non-standard TLS port without a vendor association.
	PortUncommon
	// PortVendor is a port with a known middlebox-vendor association.
	PortVendor
)

// String implements fmt.Stringer.
func (p PortHint) String() string {
	switch p {
	case PortNeutral:
		return "neutral"
	case PortUncommon:
		return "uncommon"
	default:
		return "vendor-associated"
	}
}

// vendorPorts maps ports to the vendor the paper (or the vendor's own
// documentation) associates with interception.
var vendorPorts = map[int]string{
	8013:  "Fortinet FortiGate",  // Appendix C: FortiGate's interception port
	4437:  "middlebox TLS relay", // recurring in the Table 4 interception mix
	14430: "middlebox TLS relay",
}

// commonTLSPorts carry no interception signal.
var commonTLSPorts = map[int]bool{
	443: true, 8443: true, 993: true, 995: true, 465: true, 636: true,
}

// HintForPort grades a destination port.
func HintForPort(port int) PortHint {
	if _, ok := vendorPorts[port]; ok {
		return PortVendor
	}
	if commonTLSPorts[port] {
		return PortNeutral
	}
	return PortUncommon
}

// VendorForPort returns the associated vendor label, if any.
func VendorForPort(port int) (string, bool) {
	v, ok := vendorPorts[port]
	return v, ok
}
