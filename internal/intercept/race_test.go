// Concurrency regression tests: a single Registry and a single Detector are
// shared across all pipeline workers, so registration, lookup, and the
// verdict cache must survive the race detector.
package intercept

import (
	"fmt"
	"sync"
	"testing"

	"certchains/internal/dn"
)

// TestRegistryConcurrent races Add against Lookup, Len and All.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	zs := dn.MustParse("CN=Zscaler Intermediate CA,O=Zscaler Inc.")
	reg.Add(&Issuer{DN: zs, Name: "Zscaler", Category: CategorySecurityNetwork})

	const workers, rounds = 6, 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if w%2 == 0 {
					d := dn.MustParse(fmt.Sprintf("CN=Proxy %d-%d,O=MITM", w, i))
					reg.Add(&Issuer{DN: d, Name: "Proxy", Category: CategoryOther})
				} else {
					if _, ok := reg.Lookup(zs); !ok {
						t.Error("registered issuer disappeared during writes")
						return
					}
					_ = reg.Len()
					_ = reg.All()
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := reg.Len(), 1+(workers/2)*rounds; got != want {
		t.Errorf("registry size = %d, want %d", got, want)
	}
}

// TestDetectorConcurrentExamine shares one detector across goroutines
// examining an overlapping set of leaves, exercising the verdict cache under
// contention; every goroutine must see the same verdicts.
func TestDetectorConcurrentExamine(t *testing.T) {
	d, _ := testDetector(t)
	public := meta("CN=Public Root", "CN=www.ok.com", "www.ok.com")
	noSNI := meta("CN=Mystery CA", "CN=whatever.local")
	noCT := meta("CN=Corp Internal CA", "CN=internal.corp.example", "internal.corp.example")

	const workers, rounds = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if v := d.Examine(public, "www.ok.com", at); v != NotCandidate {
					t.Errorf("public leaf verdict = %v", v)
					return
				}
				if v := d.Examine(noSNI, "", at); v != NoSNI {
					t.Errorf("no-SNI verdict = %v", v)
					return
				}
				if v := d.Examine(noCT, "internal.corp.example", at); v != NoCTRecord {
					t.Errorf("no-CT verdict = %v", v)
					return
				}
			}
		}()
	}
	wg.Wait()
}
