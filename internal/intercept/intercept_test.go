package intercept

import (
	"testing"
	"time"

	"certchains/internal/certmodel"
	"certchains/internal/ctlog"
	"certchains/internal/dn"
	"certchains/internal/trustdb"
)

var at = time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC)

func meta(issuer, subject string, sans ...string) *certmodel.Meta {
	iss := dn.MustParse(issuer)
	sub := dn.MustParse(subject)
	nb := at.AddDate(0, -2, 0)
	na := at.AddDate(1, 0, 0)
	return &certmodel.Meta{
		FP:        certmodel.SyntheticFingerprint(iss, sub, "01", nb, na),
		Issuer:    iss,
		Subject:   sub,
		NotBefore: nb,
		NotAfter:  na,
		SAN:       sans,
	}
}

func testDetector(t *testing.T) (*Detector, *ctlog.Log) {
	t.Helper()
	db := trustdb.New()
	db.AddRoot(trustdb.StoreMozilla, meta("CN=Public Root", "CN=Public Root"))
	ct, err := ctlog.New("test", 5)
	if err != nil {
		t.Fatal(err)
	}
	return NewDetector(db, ct), ct
}

func TestExamineNotCandidate(t *testing.T) {
	d, _ := testDetector(t)
	leaf := meta("CN=Public Root", "CN=www.ok.com", "www.ok.com")
	if v := d.Examine(leaf, "www.ok.com", at); v != NotCandidate {
		t.Errorf("verdict = %v, want not-candidate", v)
	}
}

func TestExamineNoSNI(t *testing.T) {
	d, _ := testDetector(t)
	leaf := meta("CN=Mystery CA", "CN=whatever.local")
	if v := d.Examine(leaf, "", at); v != NoSNI {
		t.Errorf("verdict = %v, want no-sni", v)
	}
}

func TestExamineNoCTRecord(t *testing.T) {
	d, _ := testDetector(t)
	leaf := meta("CN=Corp Internal CA", "CN=internal.corp.example", "internal.corp.example")
	if v := d.Examine(leaf, "internal.corp.example", at); v != NoCTRecord {
		t.Errorf("verdict = %v, want no-ct-record", v)
	}
}

func TestExamineMismatchAndMatch(t *testing.T) {
	d, ct := testDetector(t)
	// CT has the real certificate for www.bank.com from "Honest CA".
	real := meta("CN=Honest CA,O=Honest", "CN=www.bank.com", "www.bank.com")
	if _, err := ct.AddChain(certmodel.Chain{real}, at.AddDate(0, -1, 0)); err != nil {
		t.Fatal(err)
	}

	// Observed: same domain but issuer is a middlebox.
	observed := meta("CN=Zscaler Intermediate Root CA,O=Zscaler Inc.", "CN=www.bank.com", "www.bank.com")
	if v := d.Examine(observed, "www.bank.com", at); v != IssuerMismatch {
		t.Errorf("verdict = %v, want issuer-mismatch", v)
	}

	// Observed issuer matching CT: not interception (a non-public issuer
	// that properly CT-logs, e.g. a government sub-CA).
	if v := d.Examine(real, "www.bank.com", at); v != IssuerMatches {
		t.Errorf("verdict = %v, want issuer-matches", v)
	}
}

func TestExamineMidpointFallback(t *testing.T) {
	d, ct := testDetector(t)
	// CT entry valid only in an earlier window that still overlaps the
	// observed cert's midpoint.
	old := &certmodel.Meta{
		FP:        "Fold",
		Issuer:    dn.MustParse("CN=Honest CA"),
		Subject:   dn.MustParse("CN=shift.example.com"),
		NotBefore: at.AddDate(0, -3, 0),
		NotAfter:  at.AddDate(0, 3, 0),
		SAN:       []string{"shift.example.com"},
	}
	ct.AddChain(certmodel.Chain{old}, at.AddDate(0, -3, 0))

	observed := &certmodel.Meta{
		FP:        "Fobs",
		Issuer:    dn.MustParse("CN=Proxy CA"),
		Subject:   dn.MustParse("CN=shift.example.com"),
		NotBefore: at.AddDate(0, -2, 0),
		NotAfter:  at.AddDate(0, 4, 0),
	}
	// At the observation instant "at", CT has a record (old is valid), so
	// the primary path applies; push observation beyond old's validity to
	// force the midpoint fallback.
	later := at.AddDate(0, 6, 0)
	if v := d.Examine(observed, "shift.example.com", later); v != IssuerMismatch {
		t.Errorf("verdict = %v, want issuer-mismatch via midpoint fallback", v)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	z := &Issuer{DN: dn.MustParse("CN=Zscaler Intermediate Root CA,O=Zscaler Inc."), Name: "Zscaler", Category: CategorySecurityNetwork}
	r.Add(z)
	r.Add(&Issuer{DN: dn.MustParse("CN=FreddieMac Proxy,O=Freddie Mac"), Name: "Freddie Mac", Category: CategoryBusinessCorporate})
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
	got, ok := r.Lookup(dn.MustParse("CN=Zscaler Intermediate Root CA,O=Zscaler Inc."))
	if !ok || got.Name != "Zscaler" {
		t.Errorf("Lookup = %+v, %v", got, ok)
	}
	if _, ok := r.Lookup(dn.MustParse("CN=Unknown")); ok {
		t.Error("unknown DN must miss")
	}
	if len(r.All()) != 2 {
		t.Error("All must return every issuer")
	}
	// Overwrite.
	r.Add(&Issuer{DN: z.DN, Name: "Zscaler Inc", Category: CategorySecurityNetwork})
	if r.Len() != 2 {
		t.Error("re-adding same DN must not grow the registry")
	}
}

func TestCategoriesOrder(t *testing.T) {
	if len(Categories) != 6 || Categories[0] != CategorySecurityNetwork || Categories[5] != CategoryOther {
		t.Errorf("Categories = %v", Categories)
	}
}

func TestVerdictString(t *testing.T) {
	for _, v := range []Verdict{NotCandidate, NoCTRecord, IssuerMatches, IssuerMismatch, NoSNI, Verdict(42)} {
		if v.String() == "" {
			t.Errorf("Verdict %d has empty String", int(v))
		}
	}
}

func TestPortHints(t *testing.T) {
	cases := map[int]PortHint{
		443:   PortNeutral,
		8443:  PortNeutral,
		8013:  PortVendor,
		4437:  PortVendor,
		14430: PortVendor,
		33854: PortUncommon,
		8888:  PortUncommon,
	}
	for port, want := range cases {
		if got := HintForPort(port); got != want {
			t.Errorf("HintForPort(%d) = %v, want %v", port, got, want)
		}
	}
	if v, ok := VendorForPort(8013); !ok || v != "Fortinet FortiGate" {
		t.Errorf("VendorForPort(8013) = %q, %v", v, ok)
	}
	if _, ok := VendorForPort(443); ok {
		t.Error("443 must have no vendor")
	}
	for _, h := range []PortHint{PortNeutral, PortUncommon, PortVendor} {
		if h.String() == "" {
			t.Error("empty hint string")
		}
	}
}

// TestAppendixBFalseClaimScenario documents the Appendix B scenario: a
// self-signed certificate falsely claiming a well-known domain. The CT
// cross-reference flags it the same way it flags middleboxes — CT records a
// different issuer for the domain.
func TestAppendixBFalseClaimScenario(t *testing.T) {
	d, ct := testDetector(t)
	real := meta("CN=Honest CA,O=Honest", "CN=www.popular.example", "www.popular.example")
	if _, err := ct.AddChain(certmodel.Chain{real}, at.AddDate(0, -1, 0)); err != nil {
		t.Fatal(err)
	}
	// The attacker's self-signed forgery: issuer == subject == the domain.
	forged := meta("CN=www.popular.example", "CN=www.popular.example", "www.popular.example")
	if v := d.Examine(forged, "www.popular.example", at); v != IssuerMismatch {
		t.Errorf("forged self-signed cert verdict = %v, want issuer-mismatch", v)
	}
}
