package ingest_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"certchains/internal/analysis"
	"certchains/internal/ingest"
)

// TestDaemonGracefulShutdown runs the full daemon loop against replayed
// logs: the admin surface comes up, ingestion progresses, and cancelling the
// context drains the HTTP server, writes a final restorable snapshot, and
// returns nil.
func TestDaemonGracefulShutdown(t *testing.T) {
	s := scenario(t, 1)
	ssl, x509 := replayBytes(t, s, false)
	dir := t.TempDir()
	sslPath, x509Path := writeLogs(t, dir, ssl, x509)
	cfg := ingest.Config{
		SSLPath:      sslPath,
		X509Path:     x509Path,
		Window:       analysis.WindowConfig{Interval: span(s) / 8, Buckets: 4, Workers: 2},
		SnapshotPath: filepath.Join(dir, "ingest.snapshot"),
	}
	ing := ingest.New(newPipeline(s), cfg)
	d := ingest.NewDaemon(ing, ingest.DaemonConfig{
		Addr:          "127.0.0.1:0",
		Poll:          5 * time.Millisecond,
		SnapshotEvery: -1, // shutdown writes the only snapshot
		ShutdownGrace: 2 * time.Second,
		Logf:          t.Logf,
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- d.Run(ctx) }()

	select {
	case <-d.Started():
	case err := <-runErr:
		t.Fatalf("daemon died before starting: %v", err)
	}
	base := "http://" + d.Addr()

	// Wait for the poll loop to join the capture.
	var joined int64
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		body := httpGet(t, base+"/healthz")
		var health struct {
			Status string `json:"status"`
			Joiner struct {
				Joined int64 `json:"joined"`
			} `json:"joiner"`
		}
		if err := json.Unmarshal(body, &health); err != nil {
			t.Fatalf("/healthz: %v", err)
		}
		if health.Status != "ok" {
			t.Fatalf("/healthz status %q", health.Status)
		}
		if joined = health.Joiner.Joined; joined > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if joined == 0 {
		t.Fatal("daemon never joined a connection")
	}
	if body := httpGet(t, base+"/metrics"); len(body) == 0 {
		t.Fatal("/metrics empty")
	}
	if body := httpGet(t, base+"/report?format=json"); !json.Valid(body) {
		t.Fatal("/report returned invalid JSON")
	}

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run returned %v on clean shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}

	// The listener is down and the final snapshot restores.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still serving after shutdown")
	}
	data, err := os.ReadFile(cfg.SnapshotPath)
	if err != nil {
		t.Fatalf("final snapshot missing: %v", err)
	}
	restored, err := ingest.Restore(newPipeline(s), cfg, data)
	if err != nil {
		t.Fatalf("final snapshot does not restore: %v", err)
	}
	defer restored.Close()
	if err := restored.Finish(); err != nil {
		t.Fatalf("restored ingestor finish: %v", err)
	}
	if text, _ := renderings(t, restored.Report(0)); text == "" {
		t.Error("restored report rendered empty")
	}
}

func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	return body
}
