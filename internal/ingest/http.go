package ingest

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"certchains/internal/obs"
)

// Handler returns the daemon's admin surface:
//
//	GET /report?window=1h|24h|all&format=text|json  — windowed analysis report
//	GET /healthz                                    — liveness + ingest summary
//	GET /metrics                                    — Prometheus exposition text
//	GET /debug/pprof/...                            — runtime profiling
//
// Everything is stdlib; the mux is private so the daemon controls exactly
// what is exposed. The surface is wrapped in the shared serving telemetry
// (obs.HTTPMetrics): per-route latency and response-size histograms, the
// request counter, and the in-flight gauge land in the same registry
// /metrics renders, so a scrape shows the daemon's own serving profile —
// and serve-bench's client-side quantiles have a server-side counterpart.
func (ing *Ingestor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/report", ing.handleReport)
	mux.HandleFunc("/healthz", ing.handleHealthz)
	mux.HandleFunc("/metrics", ing.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return obs.NewHTTPMetrics(ing.reg).Middleware(mux, ing.cfg.AccessLog,
		"/report", "/healthz", "/metrics", "/debug/pprof/")
}

// parseWindow maps the ?window= query to a trailing duration; 0 means all
// time.
func parseWindow(q string) (time.Duration, error) {
	switch strings.ToLower(q) {
	case "", "all", "alltime", "total":
		return 0, nil
	case "hour":
		return time.Hour, nil
	case "day":
		return 24 * time.Hour, nil
	}
	d, err := time.ParseDuration(q)
	if err != nil {
		return 0, fmt.Errorf("bad window %q: use e.g. 1h, 24h, or all", q)
	}
	if d <= 0 {
		return 0, fmt.Errorf("bad window %q: must be positive", q)
	}
	return d, nil
}

func (ing *Ingestor) handleReport(w http.ResponseWriter, r *http.Request) {
	window, err := parseWindow(r.URL.Query().Get("window"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rep := ing.Report(window)
	switch strings.ToLower(r.URL.Query().Get("format")) {
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, rep.Render())
	case "json":
		js, err := rep.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(js)
	default:
		http.Error(w, "bad format: use text or json", http.StatusBadRequest)
	}
}

// handleHealthz reports liveness. Build revision and snapshot age are read
// back out of the shared registry — the same series /metrics exposes — so
// the two admin surfaces can never drift apart.
func (ing *Ingestor) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s := ing.Stats()
	s.Fill(ing.reg)
	doc := struct {
		Status        string `json:"status"`
		BuildRevision string `json:"build_revision"`
		GoVersion     string `json:"go_version,omitempty"`
		Stats
	}{Status: "ok", Stats: s}
	if info := ing.reg.InfoLabels("certchain_build_info"); info != nil {
		doc.BuildRevision = info["revision"]
		doc.GoVersion = info["go_version"]
	} else {
		doc.BuildRevision = obs.Build().Revision()
	}
	if age, ok := ing.reg.Value("certchain_snapshot_age_seconds"); ok {
		doc.SnapshotAge = age
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(doc)
}

func (ing *Ingestor) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ing.Stats().Fill(ing.reg)
	ing.reg.Handler().ServeHTTP(w, r)
}
