// Equivalence suite for the streaming ingest chain: a daemon tailing the
// replayed logs must (with a window wider than the capture) reproduce the
// batch pipeline's report byte for byte, survive a snapshot/restart without
// changing a single byte of the final report, and keep its admin surface
// consistent with the state it serves.
//
// The suite lives in an external test package so it drives the ingestor
// through the same surface cmd/certchain-ingestd uses.
package ingest_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"certchains/internal/analysis"
	"certchains/internal/campus"
	"certchains/internal/certmodel"
	"certchains/internal/ingest"
	"certchains/internal/lint"
)

// equivScale matches the analysis equivalence suite: small enough to be
// fast, large enough to preserve every structural absolute of the paper.
const equivScale = 0.002

// giantInterval is wider than any scenario capture, so every observation
// lands in one window and the final report is comparable to the batch
// pipeline (which aggregates over the whole capture).
const giantInterval = 100 * 365 * 24 * time.Hour

var (
	scenarioMu    sync.Mutex
	scenarioCache = map[int64]*campus.Scenario{}
)

// scenario generates (and caches — generation dominates test time) the
// campus scenario for one seed.
func scenario(tb testing.TB, seed int64) *campus.Scenario {
	tb.Helper()
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	if s, ok := scenarioCache[seed]; ok {
		return s
	}
	cfg := campus.DefaultConfig()
	cfg.Seed = seed
	cfg.Scale = equivScale
	s, err := campus.Generate(cfg)
	if err != nil {
		tb.Fatalf("seed %d: %v", seed, err)
	}
	scenarioCache[seed] = s
	return s
}

// newPipeline builds the scenario pipeline with corpus linting enabled, so
// the ingest equivalence also covers the lint accumulator's streaming path.
func newPipeline(s *campus.Scenario) *analysis.Pipeline {
	p := analysis.FromScenario(s)
	p.Linter = lint.New(s.Classifier, lint.Config{Now: s.End(), Profile: lint.ProfileAll})
	return p
}

// replayBytes renders the scenario as a pair of Zeek logs in memory.
func replayBytes(tb testing.TB, s *campus.Scenario, jsonFormat bool) (ssl, x509 []byte) {
	tb.Helper()
	var sslBuf, x509Buf bytes.Buffer
	err := campus.Replay(s.Observations, &sslBuf, &x509Buf, campus.ReplayOptions{
		MaxConnsPerObservation: 4,
		JSON:                   jsonFormat,
	})
	if err != nil {
		tb.Fatalf("replay: %v", err)
	}
	return sslBuf.Bytes(), x509Buf.Bytes()
}

// writeLogs materializes the two logs in a fresh directory.
func writeLogs(tb testing.TB, dir string, ssl, x509 []byte) (sslPath, x509Path string) {
	tb.Helper()
	sslPath = filepath.Join(dir, "ssl.log")
	x509Path = filepath.Join(dir, "x509.log")
	if err := os.WriteFile(sslPath, ssl, 0o644); err != nil {
		tb.Fatal(err)
	}
	if err := os.WriteFile(x509Path, x509, 0o644); err != nil {
		tb.Fatal(err)
	}
	return sslPath, x509Path
}

func appendFile(tb testing.TB, path string, data []byte) {
	tb.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		tb.Fatal(err)
	}
	if err := f.Close(); err != nil {
		tb.Fatal(err)
	}
}

// renderings captures every externally visible form of a report.
func renderings(tb testing.TB, r *analysis.Report) (text string, js []byte) {
	tb.Helper()
	js, err := r.JSON()
	if err != nil {
		tb.Fatal(err)
	}
	return r.Render(), js
}

// batchReport is the oracle: the batch pipeline over analysis.LoadFormat of
// the very same log bytes the ingestor tails.
func batchReport(tb testing.TB, p *analysis.Pipeline, format analysis.Format, ssl, x509 []byte) *analysis.Report {
	tb.Helper()
	obs, err := analysis.LoadFormat(format, bytes.NewReader(ssl), bytes.NewReader(x509))
	if err != nil {
		tb.Fatalf("load: %v", err)
	}
	return p.RunParallel(obs, 1)
}

// span is the capture's log-time extent.
func span(s *campus.Scenario) time.Duration {
	first, last := s.Observations[0].First, s.Observations[0].Last
	for _, o := range s.Observations {
		if o.First.Before(first) {
			first = o.First
		}
		if o.Last.After(last) {
			last = o.Last
		}
	}
	return last.Sub(first)
}

// drain tails both logs to completion and declares the capture ended.
func drain(tb testing.TB, ing *ingest.Ingestor) {
	tb.Helper()
	// Two polls: the second must be a no-op (poll count must not matter).
	if err := ing.PollOnce(); err != nil {
		tb.Fatalf("poll: %v", err)
	}
	if err := ing.PollOnce(); err != nil {
		tb.Fatalf("re-poll: %v", err)
	}
	if err := ing.Finish(); err != nil {
		tb.Fatalf("finish: %v", err)
	}
}

// TestIngestorMatchesBatch is the core streaming guarantee: tail the
// replayed logs (both formats, several fold-worker widths), finish, and the
// all-time report is byte-identical to the batch pipeline over the same
// bytes.
func TestIngestorMatchesBatch(t *testing.T) {
	s := scenario(t, 1)
	for _, jsonFormat := range []bool{false, true} {
		name := "tsv"
		format := analysis.FormatTSV
		if jsonFormat {
			name, format = "json", analysis.FormatJSON
		}
		t.Run(name, func(t *testing.T) {
			ssl, x509 := replayBytes(t, s, jsonFormat)
			wantText, wantJS := renderings(t, batchReport(t, newPipeline(s), format, ssl, x509))

			for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
				t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
					sslPath, x509Path := writeLogs(t, t.TempDir(), ssl, x509)
					ing := ingest.New(newPipeline(s), ingest.Config{
						SSLPath:  sslPath,
						X509Path: x509Path,
						JSON:     jsonFormat,
						Window:   analysis.WindowConfig{Interval: giantInterval, Buckets: 4, Workers: workers},
					})
					defer ing.Close()
					drain(t, ing)

					gotText, gotJS := renderings(t, ing.Report(0))
					if gotText != wantText {
						t.Errorf("streamed report diverges from batch")
					}
					if !bytes.Equal(gotJS, wantJS) {
						t.Errorf("streamed JSON diverges from batch")
					}
					// Reporting must not mutate state.
					againText, _ := renderings(t, ing.Report(0))
					if againText != gotText {
						t.Errorf("second report differs from first")
					}

					st := ing.Stats()
					if st.Joiner.Orphans != 0 || st.Joiner.Forced != 0 {
						t.Errorf("lossy join on clean replay: %+v", st.Joiner)
					}
					if st.Observations == 0 {
						t.Errorf("no observations folded")
					}
					if st.LateConns != 0 {
						t.Errorf("late connections on a time-ordered replay: %d", st.LateConns)
					}
				})
			}
		})
	}
}

// TestIngestorWindowedFolding runs with an interval much smaller than the
// capture, so windows close and fold while tailing is still in progress. The
// per-window observation split changes chain counts (that is the point of
// windowing) but connection totals are additive and must match the
// single-window run exactly.
func TestIngestorWindowedFolding(t *testing.T) {
	s := scenario(t, 1)
	ssl, x509 := replayBytes(t, s, false)

	run := func(interval time.Duration) (*ingest.Ingestor, ingest.Stats) {
		sslPath, x509Path := writeLogs(t, t.TempDir(), ssl, x509)
		ing := ingest.New(newPipeline(s), ingest.Config{
			SSLPath:  sslPath,
			X509Path: x509Path,
			Window:   analysis.WindowConfig{Interval: interval, Buckets: 4, Workers: 2},
		})
		t.Cleanup(func() { ing.Close() })
		drain(t, ing)
		return ing, ing.Stats()
	}

	_, giant := run(giantInterval)
	windowed, st := run(span(s)/12 + time.Nanosecond)

	if st.FoldedWindows < 2 {
		t.Fatalf("interval 1/12 of the capture folded only %d windows", st.FoldedWindows)
	}
	if st.LiveBuckets > 4 {
		t.Errorf("ring exceeded its depth: %d live buckets", st.LiveBuckets)
	}
	if st.VisibleConns != giant.VisibleConns || st.TLS13Conns != giant.TLS13Conns {
		t.Errorf("windowed conn totals (%d visible, %d tls13) != single-window (%d, %d)",
			st.VisibleConns, st.TLS13Conns, giant.VisibleConns, giant.TLS13Conns)
	}
	for cat, cs := range giant.Categories {
		if got := st.Categories[cat]; got.Conns != cs.Conns {
			t.Errorf("category %v conns: windowed %d != single-window %d", cat, got.Conns, cs.Conns)
		}
	}
	if st.LateConns != 0 {
		t.Errorf("late connections on a time-ordered replay: %d", st.LateConns)
	}
	if text := st.PrometheusText(); !bytes.Contains([]byte(text), []byte("certchain_category_conns_total{category=")) {
		t.Errorf("metrics missing per-category samples after folding")
	}

	// Trailing windows render without disturbing the all-time view.
	allBefore, _ := renderings(t, windowed.Report(0))
	if trailing := windowed.Report(24 * time.Hour); trailing.Render() == "" {
		t.Errorf("trailing report rendered empty")
	}
	if allAfter, _ := renderings(t, windowed.Report(0)); allAfter != allBefore {
		t.Errorf("trailing report mutated the all-time view")
	}
}

// TestIngestorSnapshotRestartEquivalence is the crash-resume guarantee:
// ingest a prefix (cut mid-line), snapshot, restore into a fresh process
// image, append the rest, and the final report is byte-identical to a run
// that never stopped — across seeds and fold-worker widths.
func TestIngestorSnapshotRestartEquivalence(t *testing.T) {
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			s := scenario(t, seed)
			ssl, x509 := replayBytes(t, s, false)
			window := analysis.WindowConfig{Interval: span(s)/10 + time.Nanosecond, Buckets: 6}

			for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
				t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
					window.Workers = workers

					// Oracle: the uninterrupted run over the same bytes.
					sslPath, x509Path := writeLogs(t, t.TempDir(), ssl, x509)
					oracle := ingest.New(newPipeline(s), ingest.Config{
						SSLPath: sslPath, X509Path: x509Path, Window: window,
					})
					defer oracle.Close()
					drain(t, oracle)
					wantText, wantJS := renderings(t, oracle.Report(0))

					// Interrupted run: prefixes cut mid-line at different
					// points per file, so the snapshot catches partial
					// trailing lines and a half-full join buffer.
					dir := t.TempDir()
					sslCut, x509Cut := len(ssl)*55/100, len(x509)*70/100
					sslPath2, x509Path2 := writeLogs(t, dir, ssl[:sslCut], x509[:x509Cut])
					cfg := ingest.Config{
						SSLPath:      sslPath2,
						X509Path:     x509Path2,
						Window:       window,
						SnapshotPath: filepath.Join(dir, "ingest.snapshot"),
					}
					first := ingest.New(newPipeline(s), cfg)
					if err := first.PollOnce(); err != nil {
						t.Fatal(err)
					}
					if err := first.SnapshotToFile(); err != nil {
						t.Fatal(err)
					}
					firstObs := first.Stats().Observations
					if err := first.Close(); err != nil {
						t.Fatal(err)
					}

					// "Restart": restore from the snapshot file, append the
					// rest of both logs, drain.
					second, restored, err := ingest.RestoreOrNew(newPipeline(s), cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !restored {
						t.Fatal("RestoreOrNew ignored the snapshot file")
					}
					defer second.Close()
					if got := second.Stats().Observations; got != firstObs {
						t.Fatalf("restored %d observations, snapshotted %d", got, firstObs)
					}
					appendFile(t, sslPath2, ssl[sslCut:])
					appendFile(t, x509Path2, x509[x509Cut:])
					drain(t, second)

					gotText, gotJS := renderings(t, second.Report(0))
					if gotText != wantText {
						t.Errorf("restarted report diverges from uninterrupted run")
					}
					if !bytes.Equal(gotJS, wantJS) {
						t.Errorf("restarted JSON diverges from uninterrupted run")
					}
					if got, want := second.Stats().Observations, oracle.Stats().Observations; got != want {
						t.Errorf("restarted run folded %d observations, uninterrupted %d", got, want)
					}
				})
			}
		})
	}
}

// TestRestoreRejectsForeignSnapshot pins the cross-version restore hazard:
// state files sealed under a different schema revision — or written before
// envelopes existed at all — must be refused with the typed schema error,
// never part-decoded into a fresh daemon.
func TestRestoreRejectsForeignSnapshot(t *testing.T) {
	s := scenario(t, 1)
	cases := []struct {
		name string
		data []byte
	}{
		{"legacy unversioned", []byte(`{"ssl_tail":{},"x509_tail":{}}`)},
	}
	sealed, err := certmodel.Seal(ingest.SnapshotSchema, ingest.SnapshotVersion+1, map[string]int{})
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, struct {
		name string
		data []byte
	}{"future version", sealed})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ingest.Restore(newPipeline(s), ingest.Config{}, tc.data)
			var se *certmodel.SchemaError
			if !errors.As(err, &se) {
				t.Fatalf("Restore err = %v, want *certmodel.SchemaError", err)
			}
			if se.WantSchema != ingest.SnapshotSchema || se.WantVersion != ingest.SnapshotVersion {
				t.Fatalf("SchemaError wants %q v%d", se.WantSchema, se.WantVersion)
			}
		})
	}
}

// TestHandlerEndpoints exercises the admin mux against a live (unfinished)
// ingestor, including the provisional-report path for still-open windows.
func TestHandlerEndpoints(t *testing.T) {
	s := scenario(t, 1)
	ssl, x509 := replayBytes(t, s, false)
	sslPath, x509Path := writeLogs(t, t.TempDir(), ssl, x509)
	ing := ingest.New(newPipeline(s), ingest.Config{
		SSLPath:  sslPath,
		X509Path: x509Path,
		Window:   analysis.WindowConfig{Interval: giantInterval, Buckets: 4, Workers: 2},
	})
	defer ing.Close()
	if err := ing.PollOnce(); err != nil {
		t.Fatal(err)
	}
	h := ing.Handler()

	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	if rec := get("/report"); rec.Code != http.StatusOK || rec.Body.Len() == 0 {
		t.Errorf("/report: code %d, %d bytes", rec.Code, rec.Body.Len())
	}
	if rec := get("/report?window=hour&format=json"); rec.Code != http.StatusOK || !json.Valid(rec.Body.Bytes()) {
		t.Errorf("/report json: code %d, valid=%v", rec.Code, json.Valid(rec.Body.Bytes()))
	}
	if rec := get("/report?window=36h"); rec.Code != http.StatusOK {
		t.Errorf("/report?window=36h: code %d", rec.Code)
	}
	for _, bad := range []string{"/report?window=bogus", "/report?window=-5m", "/report?format=xml"} {
		if rec := get(bad); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400", bad, rec.Code)
		}
	}

	rec := get("/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz: code %d", rec.Code)
	}
	var health struct {
		Status string `json:"status"`
		Joiner struct {
			Joined int64 `json:"joined"`
		} `json:"joiner"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatalf("/healthz: %v", err)
	}
	if health.Status != "ok" || health.Joiner.Joined == 0 {
		t.Errorf("/healthz: status %q, joined %d", health.Status, health.Joiner.Joined)
	}

	rec = get("/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: code %d", rec.Code)
	}
	body := rec.Body.String()
	for _, series := range []string{
		"certchain_observations_total",
		"certchain_join_joined_total",
		`certchain_tail_lag_bytes{log="ssl"}`,
		`certchain_tail_parse_errors_total{log="x509"}`,
		// Nothing has folded yet (giant window, no Finish), so the category
		// series has its header but no samples.
		"# TYPE certchain_category_conns_total counter",
		"certchain_snapshot_age_seconds -1",
	} {
		if !bytes.Contains([]byte(body), []byte(series)) {
			t.Errorf("/metrics missing %s", series)
		}
	}

	if rec := get("/debug/pprof/cmdline"); rec.Code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: code %d", rec.Code)
	}
}
